/**
 * @file
 * Umbrella header for the rIOMMU reproduction library. Most users
 * want dma::DmaContext (memory + both IOMMUs + the per-mode DMA API)
 * and, for full-system experiments, sys::Machine plus the workloads.
 *
 * Layering (lowest first):
 *   base    — types, logging, Status/Result, RNG, stats, tables
 *   cycles  — calibrated cost model + per-category cycle accounting
 *   mem     — simulated physical memory
 *   des     — discrete-event kernel + the simulated core
 *   iova    — Linux-style and magazine IOVA allocators
 *   iommu   — baseline VT-d-style IOMMU (tables, IOTLB, walker)
 *   riommu  — the paper's contribution (flat tables, rIOTLB, driver)
 *   dma     — protection modes and the unified DMA API
 *   ring    — generic descriptor rings
 *   nic     — NIC device/driver model (mlx / brcm profiles)
 *   nvme    — NVMe-like queue-pair storage device
 *   ahci    — SATA-like 32-slot out-of-order device
 *   net     — packet/segmentation vocabulary
 *   sys     — Machine: one simulated host
 *   workloads — Netperf stream/RR, Apache, Memcached drivers
 *   trace   — DMA trace capture/replay
 *   prefetch — §5.4 TLB prefetchers + replay harness
 */
#ifndef RIO_RIO_H
#define RIO_RIO_H

#include "base/logging.h"
#include "base/rng.h"
#include "base/stats.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/table.h"
#include "base/types.h"
#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"
#include "des/core.h"
#include "des/simulator.h"
#include "dma/dma_context.h"
#include "dma/protection_mode.h"
#include "iommu/iommu.h"
#include "iova/linux_allocator.h"
#include "iova/magazine_allocator.h"
#include "mem/phys_mem.h"
#include "net/packet.h"
#include "nic/nic.h"
#include "nvme/nvme.h"
#include "ahci/ahci.h"
#include "prefetch/replay.h"
#include "riommu/rdevice.h"
#include "riommu/riommu.h"
#include "ring/descriptor_ring.h"
#include "sys/machine.h"
#include "trace/trace.h"
#include "workloads/netperf_rr.h"
#include "workloads/request_load.h"
#include "workloads/stream.h"

#endif // RIO_RIO_H
