#include "mem/phys_mem.h"

#include <algorithm>

#include "base/logging.h"

namespace rio::mem {

PhysicalMemory::PhysicalMemory(u64 size_bytes)
    : capacity_(pageAlignDown(size_bytes))
{
    RIO_ASSERT(capacity_ >= 2 * kPageSize, "memory too small");
}

PhysicalMemory::Frame &
PhysicalMemory::frameFor(PhysAddr addr)
{
    const u64 fn = addr >> kPageShift;
    auto &slot = frames_[fn];
    if (!slot) {
        slot = std::make_unique<Frame>();
        slot->fill(0);
    }
    return *slot;
}

const PhysicalMemory::Frame *
PhysicalMemory::frameForRead(PhysAddr addr) const
{
    const u64 fn = addr >> kPageShift;
    auto it = frames_.find(fn);
    return it == frames_.end() ? nullptr : it->second.get();
}

void
PhysicalMemory::read(PhysAddr addr, void *dst, u64 size) const
{
    RIO_ASSERT(addr + size <= capacity_ && addr + size >= addr,
               "phys read out of range: addr=", addr, " size=", size);
    auto *out = static_cast<u8 *>(dst);
    while (size > 0) {
        const u64 in_page = std::min(size, kPageSize - (addr & kPageMask));
        const Frame *frame = frameForRead(addr);
        if (frame) {
            std::memcpy(out, frame->data() + (addr & kPageMask), in_page);
        } else {
            std::memset(out, 0, in_page);
        }
        out += in_page;
        addr += in_page;
        size -= in_page;
    }
}

void
PhysicalMemory::write(PhysAddr addr, const void *src, u64 size)
{
    RIO_ASSERT(addr + size <= capacity_ && addr + size >= addr,
               "phys write out of range: addr=", addr, " size=", size);
    if (observer_)
        observer_(addr, size);
    const auto *in = static_cast<const u8 *>(src);
    while (size > 0) {
        const u64 in_page = std::min(size, kPageSize - (addr & kPageMask));
        Frame &frame = frameFor(addr);
        std::memcpy(frame.data() + (addr & kPageMask), in, in_page);
        in += in_page;
        addr += in_page;
        size -= in_page;
    }
}

u64
PhysicalMemory::read64(PhysAddr addr) const
{
    u64 v;
    read(addr, &v, sizeof(v));
    return v;
}

void
PhysicalMemory::write64(PhysAddr addr, u64 value)
{
    write(addr, &value, sizeof(value));
}

u32
PhysicalMemory::read32(PhysAddr addr) const
{
    u32 v;
    read(addr, &v, sizeof(v));
    return v;
}

void
PhysicalMemory::write32(PhysAddr addr, u32 value)
{
    write(addr, &value, sizeof(value));
}

u8
PhysicalMemory::read8(PhysAddr addr) const
{
    u8 v;
    read(addr, &v, sizeof(v));
    return v;
}

void
PhysicalMemory::write8(PhysAddr addr, u8 value)
{
    write(addr, &value, sizeof(value));
}

void
PhysicalMemory::fillZero(PhysAddr addr, u64 size)
{
    if (observer_ && size > 0)
        observer_(addr, size);
    while (size > 0) {
        const u64 in_page = std::min(size, kPageSize - (addr & kPageMask));
        Frame &frame = frameFor(addr);
        std::memset(frame.data() + (addr & kPageMask), 0, in_page);
        addr += in_page;
        size -= in_page;
    }
}

PhysAddr
PhysicalMemory::allocFrame()
{
    u64 fn;
    if (!freelist_.empty()) {
        fn = freelist_.back();
        freelist_.pop_back();
    } else {
        fn = next_free_frame_++;
        RIO_ASSERT((fn << kPageShift) < capacity_,
                   "simulated physical memory exhausted");
    }
    ++allocated_frames_;
    const PhysAddr addr = fn << kPageShift;
    fillZero(addr, kPageSize);
    return addr;
}

PhysAddr
PhysicalMemory::allocContiguous(u64 size)
{
    const u64 npages = pagesSpanned(0, size);
    RIO_ASSERT(npages > 0, "allocContiguous(0)");
    // Contiguous runs always come from the bump pointer; the freelist
    // only serves single frames.
    const u64 fn = next_free_frame_;
    next_free_frame_ += npages;
    RIO_ASSERT((next_free_frame_ << kPageShift) <= capacity_,
               "simulated physical memory exhausted");
    allocated_frames_ += npages;
    const PhysAddr addr = fn << kPageShift;
    fillZero(addr, npages * kPageSize);
    return addr;
}

std::vector<u64>
PhysicalMemory::touchedFramesIn(PhysAddr lo, PhysAddr hi) const
{
    std::vector<u64> out;
    const u64 fn_lo = lo >> kPageShift;
    const u64 fn_hi = (hi + kPageMask) >> kPageShift;
    for (const auto &[fn, frame] : frames_)
        if (fn >= fn_lo && fn < fn_hi && frame)
            out.push_back(fn);
    std::sort(out.begin(), out.end());
    return out;
}

void
PhysicalMemory::freeFrame(PhysAddr addr)
{
    RIO_ASSERT(isPageAligned(addr), "freeFrame on unaligned address");
    RIO_ASSERT(allocated_frames_ > 0, "freeFrame with none allocated");
    --allocated_frames_;
    freelist_.push_back(addr >> kPageShift);
}

} // namespace rio::mem
