/**
 * @file
 * Sparse simulated physical memory. All IOMMU/rIOMMU translation
 * structures, ring descriptors and DMA target buffers live here, so
 * the translation hardware models walk *real* memory-resident tables
 * and functional bugs (bad pointer, stale entry) surface as wrong
 * data rather than being structurally impossible.
 */
#ifndef RIO_MEM_PHYS_MEM_H
#define RIO_MEM_PHYS_MEM_H

#include <array>
#include <cstring>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.h"

namespace rio::mem {

/**
 * 4 KB-frame sparse physical memory with a bump-plus-freelist frame
 * allocator. Frames are materialized on first touch; reads of
 * untouched memory return zeros, as DRAM-after-clear would.
 */
class PhysicalMemory
{
  public:
    /**
     * @param size_bytes capacity cap (default 8 GB, the paper's
     * server memory); allocation beyond it panics.
     */
    explicit PhysicalMemory(u64 size_bytes = u64{8} << 30);

    PhysicalMemory(const PhysicalMemory &) = delete;
    PhysicalMemory &operator=(const PhysicalMemory &) = delete;

    // ---- raw access ---------------------------------------------------
    void read(PhysAddr addr, void *dst, u64 size) const;
    void write(PhysAddr addr, const void *src, u64 size);

    u64 read64(PhysAddr addr) const;
    void write64(PhysAddr addr, u64 value);
    u32 read32(PhysAddr addr) const;
    void write32(PhysAddr addr, u32 value);
    u8 read8(PhysAddr addr) const;
    void write8(PhysAddr addr, u8 value);

    /** Read a trivially-copyable struct. */
    template <typename T>
    T
    readObject(PhysAddr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T obj;
        read(addr, &obj, sizeof(T));
        return obj;
    }

    /** Write a trivially-copyable struct. */
    template <typename T>
    void
    writeObject(PhysAddr addr, const T &obj)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &obj, sizeof(T));
    }

    /** Zero [addr, addr+size). */
    void fillZero(PhysAddr addr, u64 size);

    // ---- write observation ----------------------------------------------
    /**
     * Invoked on every mutation of physical memory (all write paths
     * funnel through write()/fillZero()). One observer at a time;
     * null clears it. Used by the migration engine for dirty-page
     * tracking — the hook is host-side only and charges no simulated
     * cycles.
     */
    using WriteObserver = std::function<void(PhysAddr addr, u64 size)>;
    void setWriteObserver(WriteObserver cb) { observer_ = std::move(cb); }

    /**
     * Frame numbers (addr >> kPageShift) of every materialized frame
     * intersecting [lo, hi), sorted ascending. Untouched frames are
     * all-zero by construction and need not be enumerated.
     */
    std::vector<u64> touchedFramesIn(PhysAddr lo, PhysAddr hi) const;

    // ---- allocation -----------------------------------------------------
    /** Allocate one zeroed 4 KB frame; returns its physical address. */
    PhysAddr allocFrame();

    /**
     * Allocate @p size bytes of physically contiguous, page-aligned
     * memory (device rings, table arrays).
     */
    PhysAddr allocContiguous(u64 size);

    /** Return a frame to the freelist. */
    void freeFrame(PhysAddr addr);

    /** Frames currently allocated (for leak checks in tests). */
    u64 allocatedFrames() const { return allocated_frames_; }

    u64 capacity() const { return capacity_; }

  private:
    using Frame = std::array<u8, kPageSize>;

    Frame &frameFor(PhysAddr addr);
    const Frame *frameForRead(PhysAddr addr) const;

    u64 capacity_;
    u64 next_free_frame_ = 1; // frame 0 reserved: catches null derefs
    u64 allocated_frames_ = 0;
    std::vector<u64> freelist_;
    mutable std::unordered_map<u64, std::unique_ptr<Frame>> frames_;
    WriteObserver observer_;
};

} // namespace rio::mem

#endif // RIO_MEM_PHYS_MEM_H
