#include "virt/vm_exit.h"

#include "base/logging.h"
#include "obs/registry.h"
#include "obs/timeline.h"

namespace rio::virt {

const char *
exitReasonName(ExitReason r)
{
    switch (r) {
      case ExitReason::kVregWrite: return "vreg_write";
      case ExitReason::kQiDoorbell: return "qi_doorbell";
      case ExitReason::kQiForward: return "qi_forward";
      case ExitReason::kPteWriteProtect: return "pte_wp";
      case ExitReason::kHypercall: return "hypercall";
      case ExitReason::kNumReasons: break;
    }
    RIO_PANIC("bad ExitReason");
}

VmExitModel::VmExitModel(const cycles::CostModel &cost) : cost_(cost)
{
    for (unsigned i = 0; i < kNumExitReasons; ++i)
        counters_[i] = &obs::registry().counter(
            "virt.vm_exits",
            {{"reason", exitReasonName(static_cast<ExitReason>(i))}});
}

Cycles
VmExitModel::cost(ExitReason r) const
{
    switch (r) {
      case ExitReason::kVregWrite:
      case ExitReason::kQiDoorbell:
        // Full trap-and-emulate path: world switch, exit-reason
        // dispatch, MMIO decode + device-model register update, and
        // the host-side replay of the invalidation.
        return cost_.vmexit_roundtrip + cost_.hyp_dispatch +
               cost_.vreg_emulate + cost_.inval_replay;
      case ExitReason::kQiForward:
        return cost_.vmexit_roundtrip + cost_.hyp_dispatch +
               cost_.inval_replay_nested;
      case ExitReason::kPteWriteProtect:
        return cost_.vmexit_roundtrip + cost_.hyp_dispatch +
               cost_.shadow_sync;
      case ExitReason::kHypercall:
        return cost_.hypercall;
      case ExitReason::kNumReasons: break;
    }
    RIO_PANIC("bad ExitReason");
}

void
VmExitModel::charge(ExitReason r, cycles::CycleAccount *acct,
                    des::Core *core)
{
    const Cycles c = cost(r);
    if (acct)
        acct->charge(cycles::Cat::kVirt, c);
    ++exits_;
    ++by_reason_[static_cast<unsigned>(r)];
    counters_[static_cast<unsigned>(r)]->inc();
    if (core) {
        obs::Event e;
        e.kind = obs::Ev::kVmExit;
        e.arg = static_cast<u64>(r);
        e.dur_ns = static_cast<u64>(static_cast<double>(c) /
                                    cost_.core_ghz);
        // Charged before the timestamp: the span ends "now", after
        // the guest has paid for the round trip.
        e.t = core->virtualNow();
        e.pid = core->obsPid();
        e.tid = core->obsTid();
        obs::timeline().emit(e);
    }
}

} // namespace rio::virt
