/**
 * @file
 * Execution platforms a workload can run on: bare metal (the paper's
 * setup) or inside a guest VM under one of three vIOMMU strategies.
 * The strategy decides what the guest's DMA-management code pays in
 * vmexits, not what it computes — all seven protection modes run
 * unmodified on every platform (DESIGN.md §10).
 */
#ifndef RIO_VIRT_PLATFORM_H
#define RIO_VIRT_PLATFORM_H

#include <array>
#include <optional>
#include <string>

#include "base/types.h"

namespace rio::virt {

enum class Platform : u8 {
    kBare = 0, //!< no hypervisor; the paper's configuration
    kEmulated, //!< trap-and-emulate vIOMMU (QEMU intel-iommu style)
    kShadow,   //!< write-protected guest tables, merged shadow table
    kNested,   //!< hardware 2-D walk through guest + stage-2 tables
};

/** All platforms, bare first (bench sweep order). */
inline constexpr std::array<Platform, 4> kAllPlatforms = {
    Platform::kBare,
    Platform::kEmulated,
    Platform::kShadow,
    Platform::kNested,
};

/** Printable name ("bare", "emulated", "shadow", "nested"). */
const char *platformName(Platform p);

/** Parse a platform name; nullopt on unknown. */
std::optional<Platform> parsePlatform(const std::string &name);

} // namespace rio::virt

#endif // RIO_VIRT_PLATFORM_H
