/**
 * @file
 * virt::Guest: one guest VM wrapped around a sys::Machine. The guest
 * owns a guest-physical address space (GPA == HPA identity, lazily
 * populated like an EPT) backed by a real stage-2 page table in
 * simulated memory, and a vIOMMU strategy that decides which of the
 * machine's driver actions trap to the hypervisor:
 *
 *  - emulated: the vIOMMU is a trap-and-emulate device model. Radix
 *    PTE installs cost a caching-mode invalidation trap and every QI
 *    doorbell is replayed against the host IOMMU. rIOMMU's memory-
 *    only protocol has *nothing* to trap once its tables are
 *    registered by paravirtual hypercalls at boot.
 *  - shadow: guest translation tables are write-protected; every
 *    store (radix PTE or rPTE) takes a wp-trap and is synced into a
 *    hypervisor-owned merged shadow table.
 *  - nested: hardware walks guest tables directly, each step
 *    translated through the stage-2 table — the 2-D walk that costs a
 *    radix miss up to 24 combined references but an rIOMMU flat-table
 *    miss at most 5.
 *
 * The machine's protection-mode handles run unmodified; the guest
 * installs hooks (iommu/virt_hooks.h) around them and removes them on
 * destruction. Construct after the machine's devices are attached and
 * before bringUp() so boot-time traps precede any measurement window.
 */
#ifndef RIO_VIRT_GUEST_H
#define RIO_VIRT_GUEST_H

#include <memory>
#include <vector>

#include "iommu/page_table.h"
#include "iommu/virt_hooks.h"
#include "sys/machine.h"
#include "virt/platform.h"
#include "virt/vm_exit.h"

namespace rio::virt {

/** Aggregate guest counters (tests and bench columns). */
struct GuestStats
{
    u64 vm_exits = 0;     //!< traps taken, registration included
    u64 hypercalls = 0;   //!< paravirtual registrations at boot
    u64 stage2_fills = 0; //!< lazy EPT-style identity fills
    u64 stage2_pages = 0; //!< guest frames currently stage-2 mapped
    u64 shadow_syncs = 0; //!< table writes mirrored into shadows
};

/** One guest VM. Lifetime must be inside the Machine's. */
class Guest final : public iommu::VirtStage2
{
  public:
    /**
     * Attach to @p machine under @p strategy (must not be kBare —
     * bare metal means no Guest at all, keeping the zero-overhead
     * invariant trivially). Binds every NIC handle present at
     * construction; handles attached later run untrapped.
     */
    Guest(sys::Machine &machine, Platform strategy);
    ~Guest() override;

    Guest(const Guest &) = delete;
    Guest &operator=(const Guest &) = delete;

    /** VirtStage2: GPA -> HPA for a device-side access. Walks (and
     * lazily fills) the stage-2 table; identity-valued, so bare and
     * nested runs compute identical physical addresses. */
    PhysAddr deviceTranslate(PhysAddr gpa, int *mem_refs) override;

    Platform strategy() const { return strategy_; }

    VmExitModel &exitModel() { return exits_; }
    const VmExitModel &exitModel() const { return exits_; }

    /** The stage-2 (GPA->HPA) table (tests). */
    iommu::IoPageTable &stage2() { return stage2_; }

    /**
     * Pause the guest's vCPUs (live migration stop-and-copy): table
     * writes and doorbells issued while paused come from the
     * hypervisor's own teardown, which edits tables it owns — the
     * functional side of every trap (shadow mirroring) still runs,
     * but no vmexit is charged. Resume is the target guest's job;
     * a paused source is abandoned, not unpaused.
     */
    void setPaused(bool paused) { paused_ = paused; }
    bool paused() const { return paused_; }

    /**
     * Back guest memory with 2 MB stage-2 leaves: lazy fills install
     * one huge identity mapping per 2 MB region, so each stage-2
     * resolution in the nested 2-D walk reads 3 tables instead of 4
     * (radix nested miss 24 -> 19 combined refs, rIOMMU 5 -> 4).
     * Flip before traffic; mixing granularities is not modeled.
     */
    void setHugeStage2(bool huge) { huge_stage2_ = huge; }

    /**
     * The hypervisor's merged shadow radix table for binding @p i
     * (NIC handles first, in NIC order, then extra handles in
     * bindHandle() order), or null (non-shadow strategy, or an
     * rIOMMU/passthrough handle whose shadow is not a radix table).
     */
    const iommu::IoPageTable *shadowTable(unsigned nic_idx) const;

    /**
     * Bind a handle attached outside the NIC array (e.g. a Cluster
     * machine's RDMA handle, attached via
     * Machine::attachDeviceHandle) under this guest's vIOMMU
     * strategy, with traps charged to @p core. Returns the binding
     * index for shadowTable(). Call before traffic, like the ctor's
     * NIC bindings.
     */
    unsigned bindHandle(dma::DmaHandle &h, des::Core &core);

    /** Bindings installed (NIC + extra). */
    unsigned numBindings() const
    {
        return static_cast<unsigned>(bindings_.size());
    }

    GuestStats stats() const;

  private:
    class TrapBinding;

    sys::Machine &m_;
    Platform strategy_;
    VmExitModel exits_;
    iommu::IoPageTable stage2_;
    std::vector<std::unique_ptr<TrapBinding>> bindings_;
    u64 stage2_fills_ = 0;
    u64 hypercalls_ = 0;
    bool huge_stage2_ = false;
    bool paused_ = false;
};

} // namespace rio::virt

#endif // RIO_VIRT_GUEST_H
