#include "virt/guest.h"

#include "base/logging.h"
#include "dma/baseline_handle.h"
#include "dma/riommu_handle.h"

namespace rio::virt {

/**
 * The hypervisor's per-handle hook endpoint. One per NIC handle;
 * receives table-write and doorbell traps and turns them into vmexits
 * on the NIC's pinned core. Under the shadow strategy it also owns the
 * merged shadow radix table for a baseline handle — per handle, not
 * per guest, because per-handle IOVA allocators can hand out
 * overlapping IOVA pfns across devices.
 */
class Guest::TrapBinding final : public iommu::VirtTraps
{
  public:
    TrapBinding(Guest &owner, des::Core &core)
        : owner_(owner), core_(core)
    {
    }
    ~TrapBinding() override { unbind(); }

    TrapBinding(const TrapBinding &) = delete;
    TrapBinding &operator=(const TrapBinding &) = delete;

    void
    bindBaseline(dma::BaselineDmaHandle &h)
    {
        baseline_ = &h;
        switch (owner_.strategy_) {
          case Platform::kEmulated:
            // Caching-mode vIOMMU: PTE installs trap (the guest must
            // invalidate even on not-present -> present, VT-d CM=1)
            // and so does the QI doorbell.
            h.pageTable().setVirtTraps(this);
            h.invalQueue().setVirtTraps(this);
            break;
          case Platform::kShadow:
            // Guest tables are write-protected; the hypervisor keeps
            // a merged shadow the hardware actually walks. The shadow
            // is hypervisor-owned: coherent, never charged.
            shadow_ = std::make_unique<iommu::IoPageTable>(
                owner_.m_.ctx().memory(), /*coherent=*/true,
                owner_.m_.cost(), /*acct=*/nullptr);
            h.pageTable().setVirtTraps(this);
            h.invalQueue().setVirtTraps(this);
            break;
          case Platform::kNested:
            // Hardware walks the guest table itself; only the
            // doorbell MMIO still reaches the hypervisor.
            h.invalQueue().setVirtTraps(this);
            break;
          case Platform::kBare:
            RIO_PANIC("bare platform has no guest");
        }
    }

    void
    bindRiommu(dma::RiommuDmaHandle &h)
    {
        riommu_ = &h;
        switch (owner_.strategy_) {
          case Platform::kEmulated:
          case Platform::kNested:
            // Paravirtual registration: one hypercall pins the
            // rDEVICE array, one more per ring pins its flat table.
            // After that the memory-only protocol never traps — the
            // paper's update/invalidate path is ordinary stores.
            {
                const unsigned n = 1u + h.rdevice().nrings();
                for (unsigned k = 0; k < n; ++k)
                    owner_.exits_.charge(ExitReason::kHypercall,
                                         &core_.acct(), &core_);
                owner_.hypercalls_ += n;
            }
            break;
          case Platform::kShadow:
            // No paravirt here: the hypervisor discovers rPTE stores
            // the same way it discovers radix stores, by
            // write-protecting the tables.
            h.rdevice().setVirtTraps(this);
            break;
          case Platform::kBare:
            RIO_PANIC("bare platform has no guest");
        }
    }

    void
    unbind()
    {
        if (baseline_) {
            baseline_->pageTable().setVirtTraps(nullptr);
            baseline_->invalQueue().setVirtTraps(nullptr);
            baseline_ = nullptr;
        }
        if (riommu_) {
            riommu_->rdevice().setVirtTraps(nullptr);
            riommu_ = nullptr;
        }
    }

    void
    onTableWrite(const iommu::TableWrite &w,
                 cycles::CycleAccount *acct) override
    {
        switch (owner_.strategy_) {
          case Platform::kEmulated:
            // Only the install direction traps: the caching-mode
            // invalidation accompanies the new PTE. The teardown
            // invalidation is the QI doorbell, trapped separately —
            // charging it here too would double-count.
            if (w.kind == iommu::TableWrite::Kind::kRadixPte && w.valid &&
                !owner_.paused_)
                owner_.exits_.charge(ExitReason::kVregWrite, acct,
                                     &core_);
            break;
          case Platform::kShadow:
            // A paused guest's table writes are the hypervisor's own
            // teardown: the mirror below still runs (the hardware
            // walks the shadow, so it must stay coherent), but there
            // is no vCPU to exit.
            if (!owner_.paused_)
                owner_.exits_.charge(ExitReason::kPteWriteProtect, acct,
                                     &core_);
            ++shadow_syncs_;
            if (w.kind == iommu::TableWrite::Kind::kRadixPte &&
                shadow_) {
                // Mirror into the merged shadow at the guest's
                // granularity. Permissions are hypervisor-side
                // bookkeeping; the guest table stays authoritative
                // for what the workload checks.
                if (w.valid && w.huge)
                    (void)shadow_->mapHuge(w.iova_pfn, w.phys_pfn,
                                           iommu::DmaDir::kBidir);
                else if (w.valid)
                    (void)shadow_->map(w.iova_pfn, w.phys_pfn,
                                       iommu::DmaDir::kBidir);
                else if (w.huge)
                    (void)shadow_->unmapHuge(w.iova_pfn);
                else
                    (void)shadow_->unmap(w.iova_pfn);
            }
            break;
          case Platform::kNested:
          case Platform::kBare:
            // Nested installs no table-write hook; nothing to do.
            break;
        }
    }

    void
    onQiDoorbell(cycles::CycleAccount *acct) override
    {
        if (owner_.paused_)
            return; // hypervisor-side flush: no vCPU to exit
        owner_.exits_.charge(owner_.strategy_ == Platform::kNested
                                 ? ExitReason::kQiForward
                                 : ExitReason::kQiDoorbell,
                             acct, &core_);
    }

    const iommu::IoPageTable *shadow() const { return shadow_.get(); }
    u64 shadowSyncs() const { return shadow_syncs_; }

  private:
    Guest &owner_;
    des::Core &core_;
    dma::BaselineDmaHandle *baseline_ = nullptr;
    dma::RiommuDmaHandle *riommu_ = nullptr;
    std::unique_ptr<iommu::IoPageTable> shadow_;
    u64 shadow_syncs_ = 0;
};

Guest::Guest(sys::Machine &machine, Platform strategy)
    : m_(machine), strategy_(strategy), exits_(machine.cost()),
      // The stage-2 table is hypervisor state: coherent walks, no
      // core ever charged for its upkeep.
      stage2_(machine.ctx().memory(), /*coherent=*/true, machine.cost(),
              /*acct=*/nullptr)
{
    RIO_ASSERT(strategy != Platform::kBare,
               "bare metal means no Guest; construct none");

    bindings_.reserve(m_.numNics());
    for (unsigned i = 0; i < m_.numNics(); ++i)
        bindHandle(m_.handle(i), m_.nicCore(i));

    if (strategy_ == Platform::kNested) {
        m_.ctx().iommu().setStage2(this);
        m_.ctx().riommu().setStage2(this);
    }
}

Guest::~Guest()
{
    if (strategy_ == Platform::kNested) {
        m_.ctx().iommu().setStage2(nullptr);
        m_.ctx().riommu().setStage2(nullptr);
    }
    for (auto &binding : bindings_)
        binding->unbind();
}

PhysAddr
Guest::deviceTranslate(PhysAddr gpa, int *mem_refs)
{
    const u64 gfn = gpa >> kPageShift;
    int levels = 0;
    auto pte = stage2_.walk(gfn, &levels);
    if (!pte.isOk()) {
        // Lazy EPT-style fill: first touch of a guest frame installs
        // the identity GPA->HPA mapping. Hypervisor work, uncharged;
        // after the fill the walk always runs the full hierarchy.
        // With huge stage-2, one 2 MB leaf covers the whole aligned
        // region and walks stop a level early.
        Status st =
            huge_stage2_
                ? stage2_.mapHuge(gfn & ~(iommu::IoPageTable::kHugePfns - 1),
                                  gfn & ~(iommu::IoPageTable::kHugePfns - 1),
                                  iommu::DmaDir::kBidir)
                : stage2_.map(gfn, gfn, iommu::DmaDir::kBidir);
        RIO_ASSERT(st, "stage-2 fill failed");
        ++stage2_fills_;
        levels = 0;
        pte = stage2_.walk(gfn, &levels);
        RIO_ASSERT(pte.isOk(), "stage-2 walk failed after fill");
    }
    if (mem_refs)
        *mem_refs += levels;
    const u64 offset_mask =
        pte.value().huge()
            ? (iommu::IoPageTable::kHugePfns << kPageShift) - 1
            : kPageMask;
    return pte.value().addr() | (gpa & offset_mask);
}

unsigned
Guest::bindHandle(dma::DmaHandle &h, des::Core &core)
{
    auto binding = std::make_unique<TrapBinding>(*this, core);
    if (auto *bh = dynamic_cast<dma::BaselineDmaHandle *>(&h))
        binding->bindBaseline(*bh);
    else if (auto *rh = dynamic_cast<dma::RiommuDmaHandle *>(&h))
        binding->bindRiommu(*rh);
    // Passthrough-style handles (none / hw-pt / sw-pt) manage no
    // translation tables, so no vIOMMU strategy has anything to
    // trap; they run at bare-metal speed inside the guest.
    bindings_.push_back(std::move(binding));
    return static_cast<unsigned>(bindings_.size() - 1);
}

const iommu::IoPageTable *
Guest::shadowTable(unsigned nic_idx) const
{
    return bindings_.at(nic_idx)->shadow();
}

GuestStats
Guest::stats() const
{
    GuestStats s;
    s.vm_exits = exits_.exits();
    s.hypercalls = hypercalls_;
    s.stage2_fills = stage2_fills_;
    s.stage2_pages = stage2_.mappedPages();
    for (const auto &binding : bindings_)
        s.shadow_syncs += binding->shadowSyncs();
    return s;
}

} // namespace rio::virt
