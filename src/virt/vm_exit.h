/**
 * @file
 * VmExitModel: the hypervisor's cost side. Every trap a guest takes
 * is composed from the calibrated CostModel virtualization constants,
 * charged to the trapping core under Cat::kVirt, counted per reason
 * in the obs registry, and emitted as a "vmexit" span on the core's
 * timeline track — so a --timeline trace shows exactly where a
 * guest's time went.
 */
#ifndef RIO_VIRT_VM_EXIT_H
#define RIO_VIRT_VM_EXIT_H

#include <array>

#include "base/types.h"
#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"
#include "des/core.h"

namespace rio::obs {
struct Counter;
}

namespace rio::virt {

/** Why the guest trapped to the hypervisor. */
enum class ExitReason : u8 {
    /** Emulated vIOMMU register write: the caching-mode invalidation
     * a guest must issue when it installs a radix PTE (VT-d CM=1). */
    kVregWrite = 0,
    /** QI tail-doorbell MMIO, replayed against the host IOMMU
     * (emulated and shadow strategies). */
    kQiDoorbell,
    /** QI tail-doorbell under nested translation: hardware walks the
     * guest queue itself, the hypervisor only forwards the kick. */
    kQiForward,
    /** Write-protect trap on a guest translation-table store, synced
     * into the merged shadow table (shadow strategy). */
    kPteWriteProtect,
    /** Explicit paravirtual hypercall (rIOMMU table registration). */
    kHypercall,
    kNumReasons
};

inline constexpr unsigned kNumExitReasons =
    static_cast<unsigned>(ExitReason::kNumReasons);

/** Short stable name ("vreg_write", "qi_doorbell", ...). */
const char *exitReasonName(ExitReason r);

/** Composes, charges and observes vmexit costs. One per Guest. */
class VmExitModel
{
  public:
    explicit VmExitModel(const cycles::CostModel &cost);

    /** World-switch + hypervisor cycles of one @p r exit. */
    Cycles cost(ExitReason r) const;

    /**
     * Take one exit: charge cost(r) to @p acct under Cat::kVirt (null
     * acct: functional-only context, free), bump the per-reason
     * counters, and — when @p core is known — emit a vmexit span on
     * its timeline track.
     */
    void charge(ExitReason r, cycles::CycleAccount *acct,
                des::Core *core);

    /** Exits taken, total and per reason. */
    u64 exits() const { return exits_; }
    u64 exits(ExitReason r) const
    {
        return by_reason_[static_cast<unsigned>(r)];
    }

  private:
    const cycles::CostModel &cost_;
    std::array<obs::Counter *, kNumExitReasons> counters_{};
    std::array<u64, kNumExitReasons> by_reason_{};
    u64 exits_ = 0;
};

} // namespace rio::virt

#endif // RIO_VIRT_VM_EXIT_H
