#include "virt/platform.h"

#include "base/logging.h"

namespace rio::virt {

const char *
platformName(Platform p)
{
    switch (p) {
      case Platform::kBare: return "bare";
      case Platform::kEmulated: return "emulated";
      case Platform::kShadow: return "shadow";
      case Platform::kNested: return "nested";
    }
    RIO_PANIC("bad Platform");
}

std::optional<Platform>
parsePlatform(const std::string &name)
{
    for (Platform p : kAllPlatforms) {
        if (name == platformName(p))
            return p;
    }
    return std::nullopt;
}

} // namespace rio::virt
