/**
 * @file
 * Generic DMA descriptor ring (paper §2.3 / Figure 3): a circular
 * array shared between an OS driver and its device. The array lives
 * in simulated physical memory; the driver writes descriptors
 * directly (it owns the memory) while the device reads them through
 * its DMA translation path.
 */
#ifndef RIO_RING_DESCRIPTOR_RING_H
#define RIO_RING_DESCRIPTOR_RING_H

#include "base/types.h"
#include "mem/phys_mem.h"

namespace rio::ring {

/**
 * One DMA descriptor: target-buffer address (an IOVA when an IOMMU
 * is on), length, and status flags for driver/device synchronization.
 * 16 bytes in memory.
 */
struct Descriptor
{
    u64 addr = 0;
    u32 len = 0;
    u32 flags = 0;

    static constexpr u32 kOwnedByDevice = 1u << 0; //!< posted, not done
    static constexpr u32 kCompleted = 1u << 1;     //!< device finished
    static constexpr u32 kEndOfPacket = 1u << 2;   //!< last buffer of pkt
    static constexpr u64 kBytes = 16;

    bool ownedByDevice() const { return flags & kOwnedByDevice; }
    bool completed() const { return flags & kCompleted; }
    bool endOfPacket() const { return flags & kEndOfPacket; }
};

/**
 * The circular descriptor array plus head/tail bookkeeping. The
 * driver adds at the tail; the device consumes from the head
 * ([head, tail) is device-owned, §2.3).
 */
class DescriptorRing
{
  public:
    DescriptorRing(mem::PhysicalMemory &pm, u32 entries);
    ~DescriptorRing();

    DescriptorRing(const DescriptorRing &) = delete;
    DescriptorRing &operator=(const DescriptorRing &) = delete;

    u32 entries() const { return entries_; }
    PhysAddr base() const { return base_; }
    u64 bytes() const { return static_cast<u64>(entries_) * Descriptor::kBytes; }

    /** Driver-side direct access (driver owns this memory). */
    void write(u32 idx, const Descriptor &desc);
    Descriptor read(u32 idx) const;

    /** Byte offset of descriptor @p idx within the ring array. */
    u64
    offsetOf(u32 idx) const
    {
        return static_cast<u64>(idx % entries_) * Descriptor::kBytes;
    }

    u32 next(u32 idx) const { return (idx + 1) % entries_; }

    // ---- head/tail bookkeeping ([head, tail) is device-owned) ------
    u32 head() const { return head_; }
    u32 tail() const { return tail_; }

    /** Descriptors the driver can still post. */
    u32
    spaceLeft() const
    {
        return entries_ - pending_;
    }

    /** Descriptors currently owned by the device. */
    u32 pending() const { return pending_; }

    /** Driver posts one descriptor at the tail; returns its index. */
    u32 push(const Descriptor &desc);

    /** Device consumed the head descriptor; advance. */
    void pop();

  private:
    mem::PhysicalMemory &pm_;
    u32 entries_;
    PhysAddr base_;
    u32 head_ = 0;
    u32 tail_ = 0;
    u32 pending_ = 0;
};

} // namespace rio::ring

#endif // RIO_RING_DESCRIPTOR_RING_H
