#include "ring/descriptor_ring.h"

#include "base/logging.h"

namespace rio::ring {

DescriptorRing::DescriptorRing(mem::PhysicalMemory &pm, u32 entries)
    : pm_(pm), entries_(entries)
{
    RIO_ASSERT(entries_ >= 2, "ring too small");
    base_ = pm_.allocContiguous(bytes());
}

DescriptorRing::~DescriptorRing()
{
    for (u64 off = 0; off < pageAlignUp(bytes()); off += kPageSize)
        pm_.freeFrame(base_ + off);
}

void
DescriptorRing::write(u32 idx, const Descriptor &desc)
{
    RIO_ASSERT(idx < entries_, "descriptor index out of range");
    pm_.writeObject(base_ + offsetOf(idx), desc);
}

Descriptor
DescriptorRing::read(u32 idx) const
{
    RIO_ASSERT(idx < entries_, "descriptor index out of range");
    return pm_.readObject<Descriptor>(base_ + offsetOf(idx));
}

u32
DescriptorRing::push(const Descriptor &desc)
{
    RIO_ASSERT(spaceLeft() > 0, "pushing into a full ring");
    const u32 idx = tail_;
    write(idx, desc);
    tail_ = next(tail_);
    ++pending_;
    return idx;
}

void
DescriptorRing::pop()
{
    RIO_ASSERT(pending_ > 0, "popping an empty ring");
    head_ = next(head_);
    --pending_;
}

} // namespace rio::ring
