#include "dma/baseline_handle.h"

#include "base/logging.h"
#include "iova/linux_allocator.h"
#include "iova/magazine_allocator.h"

namespace rio::dma {

namespace {

/** Linux allocates IOVAs below the 32-bit boundary: pfn limit. */
constexpr u64 kDmaLimitPfn = (u64{1} << 32) >> kPageShift;

} // namespace

BaselineDmaHandle::BaselineDmaHandle(ProtectionMode mode,
                                     iommu::Iommu &iommu,
                                     mem::PhysicalMemory &pm,
                                     iommu::Bdf bdf,
                                     const cycles::CostModel &cost,
                                     cycles::CycleAccount *acct)
    : mode_(mode), iommu_(iommu), pm_(pm), bdf_(bdf), cost_(cost),
      acct_(acct),
      // The paper's testbed has I/O page walks incoherent with CPU
      // caches (§3.2), hence the barrier+flush in every table update.
      table_(pm, /*coherent=*/false, cost, acct),
      inval_queue_(pm, iommu, cost)
{
    RIO_ASSERT(modeUsesBaselineIommu(mode_),
               "BaselineDmaHandle with non-baseline mode");
    if (modeUsesMagazineAllocator(mode_)) {
        allocator_ = std::make_unique<iova::MagazineIovaAllocator>(
            kDmaLimitPfn, acct, cost);
    } else {
        allocator_ = std::make_unique<iova::LinuxIovaAllocator>(
            kDmaLimitPfn, acct, cost);
    }
    iommu_.attachDevice(bdf_, &table_);
    fault_.bind(&cost_, acct_);
}

BaselineDmaHandle::~BaselineDmaHandle()
{
    if (!detached_)
        iommu_.detachDevice(bdf_);
}

void
BaselineDmaHandle::setIovaCoreCache(u32 rounds)
{
    if (auto *mag =
            dynamic_cast<iova::MagazineIovaAllocator *>(allocator_.get()))
        mag->setCoreCache(rounds);
}

Result<DmaMapping>
BaselineDmaHandle::mapSuper(u16 rid, PhysAddr pa, u32 size,
                            iommu::DmaDir dir, bool *handled)
{
    constexpr u64 kHugePfns = iommu::IoPageTable::kHugePfns;
    constexpr u64 kHugeBytes = kHugePfns << kPageShift;
    const u64 region_base = pa & ~(kHugeBytes - 1);
    if (pa + size > region_base + kHugeBytes) {
        // Straddles a 2 MB boundary; the 4K path handles it.
        *handled = false;
        return DmaMapping{};
    }
    *handled = true;
    const u64 phys_base_pfn = region_base >> kPageShift;
    auto it = super_by_phys_.find(phys_base_pfn);
    if (it == super_by_phys_.end()) {
        // First mapping in this region pays for it: one size-aligned
        // IOVA allocation (the allocators size-align, so the result
        // is 2 MB aligned) and one huge-leaf install. Permissions are
        // kBidir — the region outlives any single mapping's
        // direction, the superpage granularity tradeoff.
        auto range = allocator_->alloc(kHugePfns);
        if (!range.isOk())
            return range.status();
        RIO_ASSERT(range.value().pfn_lo % kHugePfns == 0,
                   "IOVA allocator returned unaligned superpage range");
        Status s = table_.mapHuge(range.value().pfn_lo, phys_base_pfn,
                                  iommu::DmaDir::kBidir);
        if (!s) {
            allocator_->free(range.value().pfn_lo);
            return s;
        }
        it = super_by_phys_
                 .emplace(phys_base_pfn,
                          SuperRegion{range.value().pfn_lo,
                                      phys_base_pfn, 0})
                 .first;
        super_phys_by_iova_[range.value().pfn_lo] = phys_base_pfn;
    }
    charge(cycles::Cat::kMapOther, cost_.map_other);
    ++it->second.refs;
    ++live_;
    DmaMapping m;
    m.device_addr =
        (it->second.iova_base_pfn << kPageShift) + (pa - region_base);
    m.pa = pa;
    m.size = size;
    super_live_.emplace(m.device_addr,
                        LiveMappingInfo{m.device_addr, size, rid});
    (void)dir;
    return m;
}

Status
BaselineDmaHandle::unmapSuper(const DmaMapping &mapping, bool *handled)
{
    constexpr u64 kHugePfns = iommu::IoPageTable::kHugePfns;
    const u64 iova_base_pfn =
        (mapping.device_addr >> kPageShift) & ~(kHugePfns - 1);
    auto pit = super_phys_by_iova_.find(iova_base_pfn);
    if (pit == super_phys_by_iova_.end()) {
        *handled = false;
        return Status::ok();
    }
    *handled = true;
    SuperRegion &region = super_by_phys_.at(pit->second);
    RIO_ASSERT(region.refs > 0, "superpage unmap with no refs");
    RIO_ASSERT(live_ > 0, "unmap with no live mappings");
    --live_;
    if (auto lit = super_live_.find(mapping.device_addr);
        lit != super_live_.end())
        super_live_.erase(lit);
    if (--region.refs > 0) {
        // The region stays translated for its other users; this unmap
        // is bookkeeping only (the superpage amortization).
        charge(cycles::Cat::kUnmapOther, cost_.unmap_other);
        return Status::ok();
    }
    // Last unref: tear the huge leaf down, then invalidate. VT-d's
    // page-selective invalidation takes an address mask, so one
    // descriptor covers the whole 2 MB region; the hardware-side
    // purge of any cached 4K entries inside it is uncharged.
    Status s = table_.unmapHuge(region.iova_base_pfn);
    if (!s)
        return s;
    const u64 iova_lo = region.iova_base_pfn;
    super_phys_by_iova_.erase(pit);
    super_by_phys_.erase(region.phys_base_pfn);
    if (modeDefersInvalidation(mode_)) {
        charge(cycles::Cat::kUnmapIotlbInv, cost_.iotlb_invalidate_queued);
        charge(cycles::Cat::kUnmapOther,
               cost_.unmap_other + cost_.defer_list_op);
        defer_queue_.push_back(iova_lo);
        if (defer_queue_.size() >= kDeferBatch)
            flushDeferred();
        return Status::ok();
    }
    Status qs = inval_queue_.invalidateEntrySync(bdf_, iova_lo, acct_);
    if (!qs.isOk()) {
        qs = recoverInvalidation();
        if (!qs.isOk())
            return qs;
    }
    for (u64 i = 0; i < kHugePfns; ++i)
        iommu_.iotlb().invalidateEntry(bdf_.pack(), iova_lo + i);
    Status fs = allocator_->free(iova_lo);
    if (!fs)
        return fs;
    charge(cycles::Cat::kUnmapOther, cost_.unmap_other);
    return Status::ok();
}

Result<DmaMapping>
BaselineDmaHandle::mapImpl(u16 rid, PhysAddr pa, u32 size,
                       iommu::DmaDir dir)
{
    if (detached_)
        return Status(ErrorCode::kDetached, "map through detached BDF");
    if (size == 0)
        return Status(ErrorCode::kInvalidArgument, "map of empty buffer");
    if (superpages_) {
        bool handled = false;
        auto m = mapSuper(rid, pa, size, dir, &handled);
        if (handled)
            return m;
    }
    const u64 npages = pagesSpanned(pa, size);

    auto range = allocator_->alloc(npages); // charged: map/iova alloc
    if (!range.isOk())
        return range.status();

    Status s = table_.mapRange(range.value().pfn_lo, pa >> kPageShift,
                               npages, dir); // charged: map/page table
    if (!s) {
        allocator_->free(range.value().pfn_lo);
        return s;
    }
    charge(cycles::Cat::kMapOther, cost_.map_other);

    ++live_;
    DmaMapping m;
    m.device_addr = (range.value().pfn_lo << kPageShift) | (pa & kPageMask);
    m.pa = pa;
    m.size = size;
    live_map_[range.value().pfn_lo] =
        LiveMappingInfo{m.device_addr, size, rid};
    return m;
}

Status
BaselineDmaHandle::unmapImpl(const DmaMapping &mapping, bool /*end_of_burst*/)
{
    if (superpages_) {
        bool handled = false;
        Status s = unmapSuper(mapping, &handled);
        if (handled)
            return s;
    }
    const u64 iova_pfn = mapping.device_addr >> kPageShift;

    auto found = allocator_->find(iova_pfn); // charged: unmap/iova find
    if (!found.isOk())
        return found.status();
    const iova::IovaRange range = found.value();

    // Order matters (§3.1): remove the translation, purge the IOTLB,
    // only then recycle the IOVA.
    Status s = table_.unmapRange(range.pfn_lo, range.npages());
    if (!s)
        return s;

    if (modeDefersInvalidation(mode_)) {
        // Queue the invalidation; the IOVA stays allocated until the
        // batched flush — the deferred modes' vulnerability window.
        charge(cycles::Cat::kUnmapIotlbInv, cost_.iotlb_invalidate_queued);
        charge(cycles::Cat::kUnmapOther,
               cost_.unmap_other + cost_.defer_list_op);
        defer_queue_.push_back(range.pfn_lo);
        if (defer_queue_.size() >= kDeferBatch)
            flushDeferred();
    } else {
        for (u64 i = 0; i < range.npages(); ++i) {
            // Through the queued-invalidation interface: descriptor
            // submit + doorbell + hardware round trip + status spin.
            Status qs = inval_queue_.invalidateEntrySync(
                bdf_, range.pfn_lo + i, acct_);
            if (!qs.isOk()) {
                // Invalidation timed out (ITE): run the recovery
                // ladder; once it returns the IOTLB no longer holds
                // this device's translations, so proceeding with the
                // free is safe.
                qs = recoverInvalidation();
                if (!qs.isOk())
                    return qs;
            }
        }
        Status fs = allocator_->free(range.pfn_lo); // charged: iova free
        if (!fs)
            return fs;
        charge(cycles::Cat::kUnmapOther, cost_.unmap_other);
    }
    RIO_ASSERT(live_ > 0, "unmap with no live mappings");
    --live_;
    live_map_.erase(range.pfn_lo);
    return Status::ok();
}

Result<std::vector<DmaMapping>>
BaselineDmaHandle::mapSg(u16 rid, const std::vector<SgEntry> &sg,
                         iommu::DmaDir dir)
{
    if (detached_)
        return Status(ErrorCode::kDetached, "map through detached BDF");
    if (sg.empty())
        return Status(ErrorCode::kInvalidArgument, "empty sg list");
    if (superpages_) {
        // Per-element mapping lets each buffer share its 2 MB region;
        // a contiguous fresh range would defeat the whole point.
        return DmaHandle::mapSg(rid, sg, dir);
    }
    u64 total_pages = 0;
    for (const SgEntry &e : sg) {
        if (e.len == 0)
            return Status(ErrorCode::kInvalidArgument, "empty sg entry");
        total_pages += pagesSpanned(e.pa, e.len);
    }

    auto range = allocator_->alloc(total_pages); // one range, one alloc
    if (!range.isOk())
        return range.status();

    std::vector<DmaMapping> out;
    out.reserve(sg.size());
    u64 pfn = range.value().pfn_lo;
    for (const SgEntry &e : sg) {
        const u64 npages = pagesSpanned(e.pa, e.len);
        Status s = table_.mapRange(pfn, e.pa >> kPageShift, npages, dir);
        if (!s) {
            // Roll back: remove what was installed, free the range.
            for (u64 p = range.value().pfn_lo; p < pfn; ++p)
                (void)table_.unmap(p);
            (void)allocator_->free(range.value().pfn_lo);
            return s;
        }
        DmaMapping m;
        m.device_addr = (pfn << kPageShift) | (e.pa & kPageMask);
        m.pa = e.pa;
        m.size = e.len;
        out.push_back(m);
        pfn += npages;
    }
    charge(cycles::Cat::kMapOther, cost_.map_other);
    ++live_; // the list is one logical mapping (one range)
    u64 total_bytes = 0;
    for (const SgEntry &e : sg)
        total_bytes += e.len;
    live_map_[range.value().pfn_lo] = LiveMappingInfo{
        out.front().device_addr, static_cast<u32>(total_bytes), rid};
    return out;
}

Status
BaselineDmaHandle::unmapSg(const std::vector<DmaMapping> &mappings,
                           bool end_of_burst)
{
    if (mappings.empty())
        return Status(ErrorCode::kInvalidArgument, "empty sg list");
    if (superpages_)
        return DmaHandle::unmapSg(mappings, end_of_burst);
    // The first element's address identifies the shared range; the
    // regular unmap path releases all of its pages at once.
    return unmap(mappings.front(), end_of_burst);
}

void
BaselineDmaHandle::flushDeferred()
{
    if (defer_queue_.empty())
        return;
    // One global flush covers the whole batch; its cost lands in the
    // unmap/"other" row as amortized overhead (Table 1: defer other =
    // 205 vs. strict 26).
    Status qs = inval_queue_.flushAllSync(acct_, cycles::Cat::kUnmapOther);
    if (!qs.isOk()) {
        // The flush itself never stalls hardware; it timed out behind
        // an already frozen queue. Recover, then the frees are safe.
        qs = recoverInvalidation();
        RIO_ASSERT(qs.isOk(), "deferred flush unrecoverable: ",
                   qs.toString());
    }
    for (u64 pfn_lo : defer_queue_) {
        Status s = allocator_->free(pfn_lo); // charged: unmap/iova free
        RIO_ASSERT(s.isOk(), "deferred free failed: ", s.toString());
    }
    defer_queue_.clear();
}

Status
BaselineDmaHandle::quiesceFlush()
{
    flushDeferred();
    return Status::ok();
}

Status
BaselineDmaHandle::detach()
{
    if (detached_)
        return Status::ok();
    // Quiesce ordering: any deferred invalidations must hit hardware
    // before the context entry disappears.
    flushDeferred();
    charge(cycles::Cat::kLifecycle, cost_.lifecycle_quiesce);
    iommu_.detachDevice(bdf_);
    detached_ = true;
    return Status::ok();
}

void
BaselineDmaHandle::surpriseRemove()
{
    if (detached_)
        return;
    // The instant the device vanishes it stops ack'ing invalidation
    // descriptors — later strict invalidations for it hit the ITE
    // path — and the hotplug interrupt tears down its context entry.
    inval_queue_.setDeviceResponsive(bdf_.pack(), false);
    iommu_.detachDevice(bdf_);
    detached_ = true;
}

Status
BaselineDmaHandle::reattach()
{
    if (!detached_)
        return Status::ok();
    inval_queue_.setDeviceResponsive(bdf_.pack(), true);
    if (inval_queue_.queueError()) {
        // The dead descriptor's target answers again; one retry
        // drains everything that was stuck behind it.
        Status s = inval_queue_.recoverRetry(acct_);
        if (!s.isOk())
            return s;
    }
    iommu_.attachDevice(bdf_, &table_);
    detached_ = false;
    return Status::ok();
}

std::vector<LiveMappingInfo>
BaselineDmaHandle::liveMappingList() const
{
    std::vector<LiveMappingInfo> out;
    out.reserve(live_map_.size() + super_live_.size());
    for (const auto &[pfn_lo, info] : live_map_)
        out.push_back(info);
    for (const auto &[addr, info] : super_live_)
        out.push_back(info);
    return out;
}

Status
BaselineDmaHandle::recoverInvalidation()
{
    // Bounded retry-with-backoff: two attempts cover a transiently
    // stalled device (reset in progress) without unbounded spinning.
    constexpr int kQiRetries = 2;
    for (int i = 0; i < kQiRetries; ++i) {
        Status s = inval_queue_.recoverRetry(acct_);
        if (s.isOk())
            return s;
    }
    // Permanent: abort the queue. Each skip steps over one dead
    // descriptor; everything queued behind it executes. The skipped
    // invalidations are replaced by a software purge of the device's
    // whole IOTLB footprint.
    Status s;
    do {
        s = inval_queue_.abortAndSkip(acct_);
    } while (!s.isOk() && inval_queue_.queueError());
    iommu_.iotlb().invalidateDevice(bdf_.pack());
    return s;
}

void
BaselineDmaHandle::onDetachedAccess(const iommu::FaultRecord &rec)
{
    iommu_.faultLog().record(rec);
}

void
BaselineDmaHandle::acknowledgeFaults()
{
    // The fault interrupt handler drains the fault-recording ring and
    // clears the overflow bit; the cycle cost is the engine's
    // fault_report constant.
    iommu_.faultLog().drain();
    iommu_.faultLog().clearOverflow();
}

Status
BaselineDmaHandle::deviceAccess(u64 device_addr,
                                const std::function<Status()> &access)
{
    if (!fault_.armed())
        return access();

    // One draw per top-level access, mirrored by the test oracle.
    if (fault_.shouldInject()) {
        // Damage the live translation the way an errant driver would:
        // zero the leaf PTE behind the IOMMU's back and shoot down
        // the cached copy so the walker sees the damage.
        const u64 pfn = device_addr >> kPageShift;
        const PhysAddr slot = table_.leafSlot(pfn);
        const u64 saved = slot ? pm_.read64(slot) : 0;
        if (slot) {
            pm_.write64(slot, 0);
            iommu_.invalidateIotlbEntry(bdf_, pfn);
        }
        auto repair = [this, slot, saved] {
            acknowledgeFaults();
            if (slot)
                pm_.write64(slot, saved);
        };
        Status s = access();
        if (s.isOk()) {
            // The damaged page was not touched (unmapped hierarchy or
            // access elsewhere); restore silently.
            repair();
            return s;
        }
        return fault_.recover(s, repair, access);
    }

    Status s = access();
    if (s.isOk())
        return s;
    // Organic fault (corrupted table, errant address): recovery can
    // acknowledge the report but has nothing to re-install.
    return fault_.recover(
        s, [this] { acknowledgeFaults(); }, access);
}

Status
BaselineDmaHandle::deviceRead(u64 device_addr, void *dst, u64 len)
{
    if (Status g = guardDetached(device_addr, iommu::Access::kRead); !g)
        return g;
    return deviceAccess(device_addr, [&] {
        return iommu_.dmaRead(bdf_, device_addr, dst, len);
    });
}

Status
BaselineDmaHandle::deviceWrite(u64 device_addr, const void *src, u64 len)
{
    if (Status g = guardDetached(device_addr, iommu::Access::kWrite); !g)
        return g;
    return deviceAccess(device_addr, [&] {
        return iommu_.dmaWrite(bdf_, device_addr, src, len);
    });
}

} // namespace rio::dma
