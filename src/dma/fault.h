/**
 * @file
 * Driver-visible fault recovery. When a device access comes back
 * faulted (the IOMMU refused the translation and recorded a fault),
 * the driver's fault interrupt handler reads the fault state and
 * applies a configurable FaultPolicy. All of this work is charged to
 * Cat::kFaultHandling via the CostModel fault constants.
 *
 * The same engine hosts deterministic fault *injection*: when armed
 * with a nonzero rate, each top-level device access makes exactly one
 * Bernoulli draw from a seeded Rng, so a test oracle that mirrors the
 * stream can predict which accesses fault. With the rate at zero the
 * engine is inert and no RNG draw happens, keeping fault-free runs
 * bit-for-bit identical to builds without the fault layer.
 */
#ifndef RIO_DMA_FAULT_H
#define RIO_DMA_FAULT_H

#include <functional>

#include "base/rng.h"
#include "base/status.h"
#include "base/types.h"
#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"

namespace rio::dma {

/** What the driver does about a faulted device access. */
enum class FaultPolicy : u8 {
    /**
     * Report and give up: the access fails up to the device model,
     * which completes the descriptor as errored (packet lost). The
     * damaged translation is still repaired so subsequent, unrelated
     * DMAs do not keep faulting on the same entry.
     */
    kAbort = 0,
    /**
     * Re-install the translation and replay the access, up to
     * max_retries times (the recoverable-fault path a kernel would
     * take for a transiently bad mapping).
     */
    kRetryRemap = 1,
    /**
     * Repair, but drop this access and charge a backoff penalty
     * (driver parks the request and relies on retransmission).
     */
    kDropBackoff = 2,
};

const char *faultPolicyName(FaultPolicy policy);

/** Deterministic fault-injection knobs. */
struct FaultInjectConfig
{
    double rate = 0.0;       //!< per-access fault probability
    u64 seed = 1;            //!< Rng seed (stream is per handle)
    unsigned max_retries = 3; //!< kRetryRemap attempts before giving up
};

/** Counters kept by the recovery engine. */
struct FaultStats
{
    u64 injected = 0;     //!< accesses damaged by the injector
    u64 faults_seen = 0;  //!< faulted accesses entering recovery
    u64 recovered = 0;    //!< accesses that succeeded after retry
    u64 dropped = 0;      //!< accesses abandoned (abort/drop/retries out)
    u64 retries = 0;      //!< individual replay attempts

    FaultStats &
    operator+=(const FaultStats &o)
    {
        injected += o.injected;
        faults_seen += o.faults_seen;
        recovered += o.recovered;
        dropped += o.dropped;
        retries += o.retries;
        return *this;
    }
};

/**
 * Per-handle fault policy + injection engine. Owned by every
 * DmaHandle; inert until armed (rate > 0) or until a fault actually
 * reaches recover().
 */
class FaultEngine
{
  public:
    /** Point the engine at the handle's cost model and account. */
    void
    bind(const cycles::CostModel *cost, cycles::CycleAccount *acct)
    {
        cost_ = cost;
        acct_ = acct;
    }

    void setPolicy(FaultPolicy policy) { policy_ = policy; }
    FaultPolicy policy() const { return policy_; }

    void
    setInjection(const FaultInjectConfig &cfg)
    {
        cfg_ = cfg;
        rng_ = Rng(cfg.seed);
    }

    const FaultInjectConfig &injection() const { return cfg_; }

    /** Injection armed: device accesses should draw shouldInject(). */
    bool armed() const { return cfg_.rate > 0.0; }

    /**
     * One Bernoulli draw against the configured rate. Call exactly
     * once per top-level device access while armed, so oracles can
     * mirror the stream.
     */
    bool
    shouldInject()
    {
        if (!rng_.chance(cfg_.rate))
            return false;
        ++stats_.injected;
        return true;
    }

    /**
     * Run the recovery policy for an access that failed with
     * @p fail. @p repair undoes whatever damage caused the fault and
     * acknowledges the fault state (drain log / clear latch);
     * @p retry replays the access. Returns the final status of the
     * access: ok only if a retry succeeded.
     */
    Status recover(Status fail, const std::function<void()> &repair,
                   const std::function<Status()> &retry);

    const FaultStats &stats() const { return stats_; }

  private:
    void charge(Cycles c, bool first);

    FaultPolicy policy_ = FaultPolicy::kAbort;
    FaultInjectConfig cfg_;
    Rng rng_;
    FaultStats stats_;
    const cycles::CostModel *cost_ = nullptr;
    cycles::CycleAccount *acct_ = nullptr;
};

} // namespace rio::dma

#endif // RIO_DMA_FAULT_H
