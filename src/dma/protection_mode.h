/**
 * @file
 * The seven IOMMU protection modes the paper evaluates (§5.1), plus
 * the two pass-through control modes used to validate the
 * methodology:
 *
 *   strict   — completely safe Linux baseline: synchronous IOTLB
 *              invalidation on every unmap
 *   strict+  — strict with the authors' constant-time IOVA allocator
 *   defer    — Linux deferred mode: invalidations batched, whole
 *              IOTLB flushed every 250 frees (vulnerability window)
 *   defer+   — defer with the constant-time allocator
 *   riommu-  — the proposed rIOMMU, non-coherent I/O table walks
 *   riommu   — rIOMMU with coherent walks
 *   none     — IOMMU disabled (unprotected optimum)
 *   hw-pt    — hardware pass-through (control, §5.1)
 *   sw-pt    — software pass-through via identity mappings (control)
 */
#ifndef RIO_DMA_PROTECTION_MODE_H
#define RIO_DMA_PROTECTION_MODE_H

#include <array>
#include <optional>
#include <string>

namespace rio::dma {

enum class ProtectionMode {
    kStrict,
    kStrictPlus,
    kDefer,
    kDeferPlus,
    kRiommuNc, //!< riommu- : non-coherent I/O page-table walks
    kRiommu,
    kNone,
    kHwPassthrough,
    kSwPassthrough
};

/** The seven modes of the paper's evaluation, in its display order. */
inline constexpr std::array<ProtectionMode, 7> kEvaluatedModes = {
    ProtectionMode::kStrict,    ProtectionMode::kStrictPlus,
    ProtectionMode::kDefer,     ProtectionMode::kDeferPlus,
    ProtectionMode::kRiommuNc,  ProtectionMode::kRiommu,
    ProtectionMode::kNone,
};

/** Printable name, matching the paper ("strict+", "riommu-", ...). */
const char *modeName(ProtectionMode mode);

/** Parse a mode name; nullopt on unknown. */
std::optional<ProtectionMode> parseMode(const std::string &name);

/** True for the two rIOMMU variants. */
bool modeUsesRiommu(ProtectionMode mode);

/** True for strict/strict+/defer/defer+. */
bool modeUsesBaselineIommu(ProtectionMode mode);

/** True for the modes offering full intra-OS protection
 * (strict, strict+, riommu-, riommu). Deferred modes trade a stale
 * window for speed; pass-through/none offer no protection. */
bool modeIsFullySafe(ProtectionMode mode);

/** True if the mode uses the constant-time ("+") IOVA allocator. */
bool modeUsesMagazineAllocator(ProtectionMode mode);

/** True if the mode batches IOTLB invalidations (defer, defer+). */
bool modeDefersInvalidation(ProtectionMode mode);

} // namespace rio::dma

#endif // RIO_DMA_PROTECTION_MODE_H
