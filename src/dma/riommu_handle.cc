#include "dma/riommu_handle.h"

#include "base/logging.h"

namespace rio::dma {

RiommuDmaHandle::RiommuDmaHandle(ProtectionMode mode,
                                 riommu::Riommu &riommu,
                                 mem::PhysicalMemory &pm, iommu::Bdf bdf,
                                 std::vector<riommu::RingSpec> rings,
                                 const cycles::CostModel &cost,
                                 cycles::CycleAccount *acct)
    : riommu_(riommu), pm_(pm), cost_(cost), acct_(acct),
      rdevice_(riommu, pm, bdf, std::move(rings),
               /*coherent=*/mode == ProtectionMode::kRiommu, cost, acct)
{
    RIO_ASSERT(modeUsesRiommu(mode),
               "RiommuDmaHandle with non-rIOMMU mode");
    fault_.bind(&cost, acct);
}

Result<DmaMapping>
RiommuDmaHandle::mapImpl(u16 rid, PhysAddr pa, u32 size, iommu::DmaDir dir)
{
    if (detached_)
        return Status(ErrorCode::kDetached, "map through detached BDF");
    auto iova = rdevice_.map(rid, pa, size, dir);
    if (!iova.isOk())
        return iova.status();
    DmaMapping m;
    m.device_addr = iova.value().raw;
    m.pa = pa;
    m.size = size;
    return m;
}

Status
RiommuDmaHandle::unmapImpl(const DmaMapping &mapping, bool end_of_burst)
{
    return rdevice_.unmap(riommu::RIova{mapping.device_addr},
                          end_of_burst);
}

Status
RiommuDmaHandle::deviceAccess(u64 device_addr,
                              const std::function<Status()> &access)
{
    if (!fault_.armed())
        return access();

    const riommu::RIova iova{device_addr};
    const iommu::Bdf dev_bdf = rdevice_.bdf();
    const u16 rid = iova.rid();

    // One draw per top-level access, mirrored by the test oracle.
    if (fault_.shouldInject()) {
        // Damage the exact rPTE this access resolves through: clear
        // its valid bit in the flat table and invalidate the ring's
        // rIOTLB entry so the walk sees the damage.
        PhysAddr slot = 0;
        u64 saved_word1 = 0;
        if (rid < rdevice_.nrings() &&
            iova.rentry() < rdevice_.ringSize(rid)) {
            slot = rdevice_.tableAddr(rid) +
                   static_cast<u64>(iova.rentry()) * riommu::RPte::kBytes;
            saved_word1 = pm_.read64(slot + 8);
            constexpr u64 kValid = u64{1} << 32; // size(30) | dir(2) | valid
            pm_.write64(slot + 8, saved_word1 & ~kValid);
            riommu_.invalidateRing(dev_bdf, rid);
        }
        auto repair = [this, slot, saved_word1, dev_bdf, rid] {
            riommu_.clearRingFault(dev_bdf, rid);
            if (slot) {
                pm_.write64(slot + 8, saved_word1);
                riommu_.invalidateRing(dev_bdf, rid);
            }
        };
        Status s = access();
        if (s.isOk()) {
            repair();
            return s;
        }
        return fault_.recover(s, repair, access);
    }

    Status s = access();
    if (s.isOk())
        return s;
    return fault_.recover(
        s, [this, dev_bdf, rid] { riommu_.clearRingFault(dev_bdf, rid); },
        access);
}

Status
RiommuDmaHandle::deviceRead(u64 device_addr, void *dst, u64 len)
{
    if (Status g = guardDetached(device_addr, iommu::Access::kRead); !g)
        return g;
    return deviceAccess(device_addr, [&] {
        return riommu_.dmaRead(rdevice_.bdf(),
                               riommu::RIova{device_addr}, dst, len);
    });
}

Status
RiommuDmaHandle::deviceWrite(u64 device_addr, const void *src, u64 len)
{
    if (Status g = guardDetached(device_addr, iommu::Access::kWrite); !g)
        return g;
    return deviceAccess(device_addr, [&] {
        return riommu_.dmaWrite(rdevice_.bdf(),
                                riommu::RIova{device_addr}, src, len);
    });
}

u64
RiommuDmaHandle::liveMappings() const
{
    u64 live = 0;
    for (u16 rid = 0; rid < rdevice_.nrings(); ++rid)
        live += rdevice_.nmapped(rid);
    return live;
}

Status
RiommuDmaHandle::quiesceFlush()
{
    // Nothing is ever queued (rIOMMU needs no invalidation queue);
    // the flush phase just drops the per-ring rIOTLB entries so no
    // cached translation outlives the quiesce.
    for (u16 rid = 0; rid < rdevice_.nrings(); ++rid) {
        riommu_.invalidateRing(rdevice_.bdf(), rid);
        if (acct_)
            acct_->charge(cycles::Cat::kLifecycle,
                          cost_.iotlb_invalidate_entry);
    }
    return Status::ok();
}

Status
RiommuDmaHandle::detach()
{
    if (detached_)
        return Status::ok();
    if (acct_)
        acct_->charge(cycles::Cat::kLifecycle, cost_.lifecycle_quiesce);
    // Removing the rDEVICE drops every ring's rIOTLB entry with it.
    riommu_.detachDevice(rdevice_.bdf());
    detached_ = true;
    return Status::ok();
}

void
RiommuDmaHandle::surpriseRemove()
{
    if (detached_)
        return;
    riommu_.detachDevice(rdevice_.bdf());
    detached_ = true;
}

Status
RiommuDmaHandle::reattach()
{
    if (!detached_)
        return Status::ok();
    riommu_.attachDevice(rdevice_.bdf(), rdevice_.rdeviceBase(),
                         rdevice_.nrings());
    detached_ = false;
    return Status::ok();
}

std::vector<LiveMappingInfo>
RiommuDmaHandle::liveMappingList() const
{
    // Scan the flat tables for valid rPTEs; each one names its owner
    // ring and reconstructs the rIOVA the driver handed out.
    std::vector<LiveMappingInfo> out;
    for (u16 rid = 0; rid < rdevice_.nrings(); ++rid) {
        for (u32 rentry = 0; rentry < rdevice_.ringSize(rid); ++rentry) {
            const riommu::RPte pte = rdevice_.readPte(rid, rentry);
            if (!pte.valid)
                continue;
            out.push_back(LiveMappingInfo{
                riommu::RIova::pack(0, rentry, rid).raw, pte.size, rid});
        }
    }
    return out;
}

void
RiommuDmaHandle::onDetachedAccess(const iommu::FaultRecord &rec)
{
    riommu_.recordDetachedFault(rec.bdf, riommu::RIova{rec.iova},
                                rec.access);
}

} // namespace rio::dma
