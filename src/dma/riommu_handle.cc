#include "dma/riommu_handle.h"

#include "base/logging.h"

namespace rio::dma {

RiommuDmaHandle::RiommuDmaHandle(ProtectionMode mode,
                                 riommu::Riommu &riommu,
                                 mem::PhysicalMemory &pm, iommu::Bdf bdf,
                                 std::vector<riommu::RingSpec> rings,
                                 const cycles::CostModel &cost,
                                 cycles::CycleAccount *acct)
    : riommu_(riommu),
      rdevice_(riommu, pm, bdf, std::move(rings),
               /*coherent=*/mode == ProtectionMode::kRiommu, cost, acct)
{
    RIO_ASSERT(modeUsesRiommu(mode),
               "RiommuDmaHandle with non-rIOMMU mode");
}

Result<DmaMapping>
RiommuDmaHandle::map(u16 rid, PhysAddr pa, u32 size, iommu::DmaDir dir)
{
    auto iova = rdevice_.map(rid, pa, size, dir);
    if (!iova.isOk())
        return iova.status();
    DmaMapping m;
    m.device_addr = iova.value().raw;
    m.pa = pa;
    m.size = size;
    return m;
}

Status
RiommuDmaHandle::unmap(const DmaMapping &mapping, bool end_of_burst)
{
    return rdevice_.unmap(riommu::RIova{mapping.device_addr},
                          end_of_burst);
}

Status
RiommuDmaHandle::deviceRead(u64 device_addr, void *dst, u64 len)
{
    return riommu_.dmaRead(rdevice_.bdf(), riommu::RIova{device_addr},
                           dst, len);
}

Status
RiommuDmaHandle::deviceWrite(u64 device_addr, const void *src, u64 len)
{
    return riommu_.dmaWrite(rdevice_.bdf(), riommu::RIova{device_addr},
                            src, len);
}

u64
RiommuDmaHandle::liveMappings() const
{
    u64 live = 0;
    for (u16 rid = 0; rid < rdevice_.nrings(); ++rid)
        live += rdevice_.nmapped(rid);
    return live;
}

} // namespace rio::dma
