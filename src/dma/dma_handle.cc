#include "dma/dma_handle.h"

namespace rio::dma {

Result<std::vector<DmaMapping>>
DmaHandle::mapSg(u16 rid, const std::vector<SgEntry> &sg,
                 iommu::DmaDir dir)
{
    if (sg.empty())
        return Status(ErrorCode::kInvalidArgument, "empty sg list");
    std::vector<DmaMapping> out;
    out.reserve(sg.size());
    for (const SgEntry &e : sg) {
        auto m = map(rid, e.pa, e.len, dir);
        if (!m.isOk()) {
            // Roll back what was mapped so far (reverse ring order is
            // irrelevant here: partial lists never reach the device).
            for (auto it = out.rbegin(); it != out.rend(); ++it)
                (void)unmap(*it, /*end_of_burst=*/std::next(it) ==
                                      out.rend());
            return m.status();
        }
        out.push_back(m.value());
    }
    return out;
}

Status
DmaHandle::unmapSg(const std::vector<DmaMapping> &mappings,
                   bool end_of_burst)
{
    for (size_t i = 0; i < mappings.size(); ++i) {
        Status s = unmap(mappings[i],
                         end_of_burst && i + 1 == mappings.size());
        if (!s)
            return s;
    }
    return Status::ok();
}

} // namespace rio::dma
