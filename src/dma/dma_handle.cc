#include "dma/dma_handle.h"

#include "cycles/cycle_account.h"
#include "des/core.h"
#include "obs/registry.h"
#include "obs/timeline.h"

namespace rio::dma {

namespace {

/** Timeline span for one map/unmap call on @p core's track. */
void
emitDmaSpan(obs::Ev kind, des::Core *core, Nanos t0, Cycles cycles,
            u16 bdf, u16 rid)
{
    obs::Event e;
    e.kind = kind;
    e.arg = cycles;
    e.bdf = bdf;
    e.rid = rid;
    if (core) {
        e.t = core->virtualNow();
        e.dur_ns = e.t > t0 ? e.t - t0 : 0;
        e.pid = core->obsPid();
        e.tid = core->obsTid();
    }
    obs::timeline().emit(e);
}

} // namespace

void
DmaHandle::bindObs(const char *mode, cycles::CycleAccount *acct,
                   des::Core *core)
{
    const obs::Labels labels = {{"mode", mode ? mode : "?"}};
    obs_map_cycles_.bind(
        &obs::registry().histogram("dma.map_cycles", labels));
    obs_unmap_cycles_.bind(
        &obs::registry().histogram("dma.unmap_cycles", labels));
    obs_bound_ = true;
    obs_acct_ = acct;
    obs_core_ = core;
}

Result<DmaMapping>
DmaHandle::map(u16 rid, PhysAddr pa, u32 size, iommu::DmaDir dir)
{
    if (!obs_bound_)
        return mapImpl(rid, pa, size, dir);
    const Cycles c0 = obs_acct_ ? obs_acct_->total() : 0;
    const Nanos t0 = obs_core_ ? obs_core_->virtualNow() : 0;
    auto m = mapImpl(rid, pa, size, dir);
    const Cycles dc = obs_acct_ ? obs_acct_->total() - c0 : 0;
    obs_map_cycles_.note(dc);
    emitDmaSpan(obs::Ev::kMap, obs_core_, t0, dc, bdf().pack(), rid);
    return m;
}

Status
DmaHandle::unmap(const DmaMapping &mapping, bool end_of_burst)
{
    if (!obs_bound_)
        return unmapImpl(mapping, end_of_burst);
    const Cycles c0 = obs_acct_ ? obs_acct_->total() : 0;
    const Nanos t0 = obs_core_ ? obs_core_->virtualNow() : 0;
    Status s = unmapImpl(mapping, end_of_burst);
    const Cycles dc = obs_acct_ ? obs_acct_->total() - c0 : 0;
    obs_unmap_cycles_.note(dc);
    if (end_of_burst)
        obs_unmap_cycles_.endBurst();
    emitDmaSpan(obs::Ev::kUnmap, obs_core_, t0, dc, bdf().pack(), 0);
    return s;
}

Result<std::vector<DmaMapping>>
DmaHandle::mapSg(u16 rid, const std::vector<SgEntry> &sg,
                 iommu::DmaDir dir)
{
    if (sg.empty())
        return Status(ErrorCode::kInvalidArgument, "empty sg list");
    std::vector<DmaMapping> out;
    out.reserve(sg.size());
    for (const SgEntry &e : sg) {
        auto m = map(rid, e.pa, e.len, dir);
        if (!m.isOk()) {
            // Roll back what was mapped so far (reverse ring order is
            // irrelevant here: partial lists never reach the device).
            for (auto it = out.rbegin(); it != out.rend(); ++it)
                (void)unmap(*it, /*end_of_burst=*/std::next(it) ==
                                      out.rend());
            return m.status();
        }
        out.push_back(m.value());
    }
    return out;
}

Status
DmaHandle::unmapSg(const std::vector<DmaMapping> &mappings,
                   bool end_of_burst)
{
    for (size_t i = 0; i < mappings.size(); ++i) {
        Status s = unmap(mappings[i],
                         end_of_burst && i + 1 == mappings.size());
        if (!s)
            return s;
    }
    return Status::ok();
}

} // namespace rio::dma
