/**
 * @file
 * DmaContext: one simulated machine's memory + IOMMU hardware bundle
 * and a factory producing the right DmaHandle for each protection
 * mode. This is the main entry point of the library — see
 * examples/quickstart.cc.
 */
#ifndef RIO_DMA_DMA_CONTEXT_H
#define RIO_DMA_DMA_CONTEXT_H

#include <memory>
#include <string>
#include <vector>

#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"
#include "des/spinlock.h"
#include "dma/dma_handle.h"
#include "dma/protection_mode.h"
#include "iommu/iommu.h"
#include "mem/phys_mem.h"
#include "riommu/rdevice.h"
#include "riommu/riommu.h"

namespace rio::dma {

/** One mapping that survived a quiesce/detach — always a bug. */
struct LeakRecord
{
    iommu::Bdf bdf;
    u16 rid = 0;
    u64 device_addr = 0;
    u32 size = 0;
};

/** Result of the stale-mapping leak detector. */
struct LeakReport
{
    u64 leaked = 0; //!< live mappings surviving the teardown
    std::vector<LeakRecord> records;
    u64 stale_iotlb = 0;  //!< IOTLB entries still naming the sid
    u64 stale_riotlb = 0; //!< rIOTLB entries still naming the sid

    bool
    clean() const
    {
        return leaked == 0 && stale_iotlb == 0 && stale_riotlb == 0;
    }

    /** Human-readable summary, one line per leaked mapping. */
    std::string toString() const;
};

/** Memory, baseline IOMMU and rIOMMU of one simulated machine. */
class DmaContext
{
  public:
    explicit DmaContext(
        const cycles::CostModel &cost = cycles::defaultCostModel(),
        iommu::IotlbConfig iotlb_config = {});

    DmaContext(const DmaContext &) = delete;
    DmaContext &operator=(const DmaContext &) = delete;

    mem::PhysicalMemory &memory() { return pm_; }
    iommu::Iommu &iommu() { return iommu_; }
    riommu::Riommu &riommu() { return riommu_; }
    const cycles::CostModel &cost() const { return cost_; }

    /** The context-global IOVA-allocator lock (Linux's per-domain
     * spinlock, the §3.2 scalability pathology). */
    des::SimSpinlock &iovaLock() { return iova_lock_; }
    /** The per-IOMMU invalidation-queue register lock. */
    des::SimSpinlock &invalLock() { return inval_lock_; }

    /**
     * Create the DMA handle implementing @p mode for device @p bdf.
     * @param acct where driver-side cycles are charged (may be null
     *        for purely functional use)
     * @param ring_sizes rRING sizes for the rIOMMU modes; required
     *        non-empty there, ignored elsewhere
     * @param core the simulated core the handle's driver work runs
     *        on. When non-null, the baseline modes serialize their
     *        IOVA allocator and invalidation-queue operations on this
     *        context's shared locks at the core's virtual time —
     *        cores sharing one context then contend, as on real
     *        hardware. The rIOMMU modes take no locks either way.
     */
    std::unique_ptr<DmaHandle> makeHandle(ProtectionMode mode,
                                          iommu::Bdf bdf,
                                          cycles::CycleAccount *acct,
                                          std::vector<u32> ring_sizes = {},
                                          des::Core *core = nullptr);

    /**
     * Same, with explicit per-rRING allocation policies — needed for
     * devices that complete out of order (the 4.x AHCI extension).
     */
    std::unique_ptr<DmaHandle>
    makeHandleWithSpecs(ProtectionMode mode, iommu::Bdf bdf,
                        cycles::CycleAccount *acct,
                        std::vector<riommu::RingSpec> ring_specs,
                        des::Core *core = nullptr);

    /**
     * Stale-mapping leak detector, run after a quiesce or detach:
     * every mapping still live through @p handle is an error (owner
     * ring + device address reported), as is any IOTLB/rIOTLB entry
     * still naming the handle's requester id.
     */
    LeakReport checkHandleLeaks(const DmaHandle &handle) const;

  private:
    const cycles::CostModel &cost_;
    mem::PhysicalMemory pm_;
    iommu::Iommu iommu_;
    riommu::Riommu riommu_;
    des::SimSpinlock iova_lock_;
    des::SimSpinlock inval_lock_;
};

} // namespace rio::dma

#endif // RIO_DMA_DMA_CONTEXT_H
