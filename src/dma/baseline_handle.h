/**
 * @file
 * DMA handle for the four baseline-IOMMU modes (strict, strict+,
 * defer, defer+): a per-device 4-level page table, an IOVA allocator
 * (stock Linux or magazine), and either synchronous per-entry IOTLB
 * invalidation or the Linux deferred scheme that queues 250 frees and
 * then flushes the whole IOTLB (§3.2).
 */
#ifndef RIO_DMA_BASELINE_HANDLE_H
#define RIO_DMA_BASELINE_HANDLE_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"
#include "dma/dma_handle.h"
#include "dma/protection_mode.h"
#include "iommu/inval_queue.h"
#include "iommu/iommu.h"
#include "iova/iova_allocator.h"

namespace rio::dma {

/** strict / strict+ / defer / defer+ DMA management. */
class BaselineDmaHandle : public DmaHandle
{
  public:
    /** Frees accumulated before the deferred modes flush (Linux). */
    static constexpr unsigned kDeferBatch = 250;

    BaselineDmaHandle(ProtectionMode mode, iommu::Iommu &iommu,
                      mem::PhysicalMemory &pm, iommu::Bdf bdf,
                      const cycles::CostModel &cost,
                      cycles::CycleAccount *acct);
    ~BaselineDmaHandle() override;

    Result<DmaMapping> mapImpl(u16 rid, PhysAddr pa, u32 size,
                               iommu::DmaDir dir) override;
    Status unmapImpl(const DmaMapping &mapping, bool end_of_burst) override;

    /**
     * intel-iommu's dma_map_sg: ONE IOVA range covers the whole list
     * (each element rounded up to pages), so the device sees the
     * buffers at consecutive page-aligned offsets of a single range
     * and the driver pays one allocation for the list.
     */
    Result<std::vector<DmaMapping>>
    mapSg(u16 rid, const std::vector<SgEntry> &sg,
          iommu::DmaDir dir) override;

    /** Releases the shared range exactly once. */
    Status unmapSg(const std::vector<DmaMapping> &mappings,
                   bool end_of_burst) override;
    Status deviceRead(u64 device_addr, void *dst, u64 len) override;
    Status deviceWrite(u64 device_addr, const void *src, u64 len) override;
    u64 liveMappings() const override { return live_; }
    iommu::Bdf bdf() const override { return bdf_; }

    // ---- lifecycle ------------------------------------------------------
    /** Push out the deferred queue so no invalidation survives. */
    Status quiesceFlush() override;

    /** Orderly detach: flush, then tear down the context entry. */
    Status detach() override;

    /**
     * Surprise unplug: the device stops ack'ing invalidations (every
     * later strict invalidation for it times out) and the hotplug
     * path tears down its context entry immediately.
     */
    void surpriseRemove() override;

    /** Revive: device answers again, context entry reinstated. */
    Status reattach() override;

    std::vector<LiveMappingInfo> liveMappingList() const override;

    /**
     * Force the deferred queue out now (device quiesce / teardown).
     * No-op in the strict modes.
     */
    void flushDeferred();

    /** Entries waiting in the deferred queue. */
    u64 deferredPending() const { return defer_queue_.size(); }

    /**
     * Share the context-global locks: IOVA-allocator operations run
     * under @p iova_lock and synchronous invalidations under
     * @p inval_lock, both at @p core's virtual time. See
     * DmaContext::makeHandle.
     */
    void
    setContention(des::SimSpinlock *iova_lock,
                  des::SimSpinlock *inval_lock, des::Core *core)
    {
        allocator_->setContention(iova_lock, core);
        inval_queue_.setContention(inval_lock, core);
    }

    /** Per-core magazine pair for the magazine modes; see DmaHandle. */
    void setIovaCoreCache(u32 rounds) override;

    /** Stage-1 superpages; see DmaHandle. */
    void setStage1Superpages(bool on) override { superpages_ = on; }

    /** Live 2 MB stage-1 regions (tests). */
    u64 superRegions() const { return super_by_phys_.size(); }

    iommu::IoPageTable &pageTable() { return table_; }
    iova::IovaAllocator &allocator() { return *allocator_; }
    iommu::InvalQueue &invalQueue() { return inval_queue_; }

  private:
    void
    charge(cycles::Cat cat, Cycles c)
    {
        if (acct_)
            acct_->charge(cat, c);
    }

    /**
     * Device access with the fault engine in the loop: optionally
     * injects a translation fault (zeroed leaf PTE + IOTLB shootdown,
     * undone during recovery), and routes any faulted access through
     * the recovery policy.
     */
    Status deviceAccess(u64 device_addr,
                        const std::function<Status()> &access);

    /** Driver fault-interrupt work: drain the hardware fault log. */
    void acknowledgeFaults();

    /** A detached-BDF DMA is a real fault: log it like hardware. */
    void onDetachedAccess(const iommu::FaultRecord &rec) override;

    /**
     * Recovery ladder for a timed-out invalidation: bounded
     * retry-with-backoff (a transiently stalled device resolves
     * here), then abort-queue + head-skip and a software purge of the
     * device's IOTLB footprint (safe: the device is gone, nothing
     * translates through it anymore).
     */
    Status recoverInvalidation();

    /** One live 2 MB superpage region (stage-1 superpage mode). */
    struct SuperRegion
    {
        u64 iova_base_pfn = 0;
        u64 phys_base_pfn = 0;
        u32 refs = 0;
    };

    /** Superpage-path map body; null result means "fall back to 4K"
     * (buffer straddles a 2 MB boundary). */
    Result<DmaMapping> mapSuper(u16 rid, PhysAddr pa, u32 size,
                                iommu::DmaDir dir, bool *handled);

    /** Superpage-path unmap body; @p handled false means the mapping
     * is a plain 4K-range one. */
    Status unmapSuper(const DmaMapping &mapping, bool *handled);

    ProtectionMode mode_;
    iommu::Iommu &iommu_;
    mem::PhysicalMemory &pm_;
    iommu::Bdf bdf_;
    const cycles::CostModel &cost_;
    cycles::CycleAccount *acct_;
    iommu::IoPageTable table_;
    iommu::InvalQueue inval_queue_;
    std::unique_ptr<iova::IovaAllocator> allocator_;
    std::vector<u64> defer_queue_; //!< pfn_lo of ranges to free at flush
    u64 live_ = 0;
    // Host-side shadow of the live mappings, keyed by the range's
    // pfn_lo, so the leak detector can name ring + IOVA of anything
    // that survives a quiesce. Pure bookkeeping — never charged.
    std::unordered_map<u64, LiveMappingInfo> live_map_;

    // ---- stage-1 superpage state (off unless setStage1Superpages) ---
    bool superpages_ = false;
    std::unordered_map<u64, SuperRegion> super_by_phys_; //!< key: phys base pfn
    std::unordered_map<u64, u64> super_phys_by_iova_;    //!< iova base -> phys base
    std::unordered_multimap<u64, LiveMappingInfo> super_live_; //!< by device_addr
};

} // namespace rio::dma

#endif // RIO_DMA_BASELINE_HANDLE_H
