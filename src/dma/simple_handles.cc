#include "dma/simple_handles.h"

#include "base/logging.h"

namespace rio::dma {

namespace {

/**
 * Fault-injection wrapper for the modes with no (modeled) translation
 * to damage: an injected fault is a synthesized bus abort — the
 * access never ran — and recovery decides whether it is replayed.
 * SWpt also uses this path: its identity table self-heals (every
 * device access re-installs missing PTEs), so persistent damage
 * cannot bite there.
 */
Status
injectedAccess(FaultEngine &fault, const std::function<Status()> &access)
{
    if (!fault.armed())
        return access();
    if (fault.shouldInject()) {
        const Status fail(ErrorCode::kIoPageFault, "injected bus abort");
        return fault.recover(fail, [] {}, access);
    }
    Status s = access();
    if (!s.isOk())
        return fault.recover(s, [] {}, access);
    return s;
}

} // namespace

// ---- NoneDmaHandle ------------------------------------------------------

Result<DmaMapping>
NoneDmaHandle::mapImpl(u16 /*rid*/, PhysAddr pa, u32 size,
                   iommu::DmaDir /*dir*/)
{
    if (detached_)
        return Status(ErrorCode::kDetached, "map through detached BDF");
    ++live_;
    return DmaMapping{pa, pa, size};
}

Status
NoneDmaHandle::unmapImpl(const DmaMapping & /*mapping*/, bool /*end_of_burst*/)
{
    RIO_ASSERT(live_ > 0, "unmap with no live mappings");
    --live_;
    return Status::ok();
}

Status
NoneDmaHandle::deviceRead(u64 device_addr, void *dst, u64 len)
{
    if (Status g = guardDetached(device_addr, iommu::Access::kRead); !g)
        return g;
    return injectedAccess(fault_, [&] {
        pm_.read(device_addr, dst, len);
        return Status::ok();
    });
}

Status
NoneDmaHandle::deviceWrite(u64 device_addr, const void *src, u64 len)
{
    if (Status g = guardDetached(device_addr, iommu::Access::kWrite); !g)
        return g;
    return injectedAccess(fault_, [&] {
        pm_.write(device_addr, src, len);
        return Status::ok();
    });
}

// ---- HwPassthroughDmaHandle ---------------------------------------------

Result<DmaMapping>
HwPassthroughDmaHandle::mapImpl(u16 /*rid*/, PhysAddr pa, u32 size,
                            iommu::DmaDir /*dir*/)
{
    if (detached_)
        return Status(ErrorCode::kDetached, "map through detached BDF");
    if (acct_)
        acct_->charge(cycles::Cat::kMapOther, cost_.passthrough_call);
    ++live_;
    return DmaMapping{pa, pa, size};
}

Status
HwPassthroughDmaHandle::unmapImpl(const DmaMapping & /*mapping*/,
                              bool /*end_of_burst*/)
{
    if (acct_)
        acct_->charge(cycles::Cat::kUnmapOther, cost_.passthrough_call);
    RIO_ASSERT(live_ > 0, "unmap with no live mappings");
    --live_;
    return Status::ok();
}

Status
HwPassthroughDmaHandle::deviceRead(u64 device_addr, void *dst, u64 len)
{
    if (Status g = guardDetached(device_addr, iommu::Access::kRead); !g)
        return g;
    return injectedAccess(fault_, [&] {
        pm_.read(device_addr, dst, len);
        return Status::ok();
    });
}

Status
HwPassthroughDmaHandle::deviceWrite(u64 device_addr, const void *src,
                                    u64 len)
{
    if (Status g = guardDetached(device_addr, iommu::Access::kWrite); !g)
        return g;
    return injectedAccess(fault_, [&] {
        pm_.write(device_addr, src, len);
        return Status::ok();
    });
}

// ---- SwPassthroughDmaHandle ---------------------------------------------

SwPassthroughDmaHandle::SwPassthroughDmaHandle(iommu::Iommu &iommu,
                                               mem::PhysicalMemory &pm,
                                               iommu::Bdf bdf,
                                               const cycles::CostModel &cost,
                                               cycles::CycleAccount *acct)
    : iommu_(iommu), bdf_(bdf), cost_(cost), acct_(acct),
      // The identity table is populated lazily and uncharged: it
      // models a mapping of all memory made once at boot.
      table_(pm, /*coherent=*/false, cost, /*acct=*/nullptr)
{
    fault_.bind(&cost_, acct_);
    iommu_.attachDevice(bdf_, &table_);
}

SwPassthroughDmaHandle::~SwPassthroughDmaHandle()
{
    if (!detached_)
        iommu_.detachDevice(bdf_);
}

Status
SwPassthroughDmaHandle::detach()
{
    if (detached_)
        return Status::ok();
    if (acct_)
        acct_->charge(cycles::Cat::kLifecycle, cost_.lifecycle_quiesce);
    iommu_.detachDevice(bdf_);
    detached_ = true;
    return Status::ok();
}

void
SwPassthroughDmaHandle::surpriseRemove()
{
    if (detached_)
        return;
    iommu_.detachDevice(bdf_);
    detached_ = true;
}

Status
SwPassthroughDmaHandle::reattach()
{
    if (!detached_)
        return Status::ok();
    iommu_.attachDevice(bdf_, &table_);
    detached_ = false;
    return Status::ok();
}

void
SwPassthroughDmaHandle::onDetachedAccess(const iommu::FaultRecord &rec)
{
    iommu_.faultLog().record(rec);
}

void
SwPassthroughDmaHandle::ensureIdentity(u64 addr, u64 len)
{
    const u64 first = addr >> kPageShift;
    const u64 last = (addr + (len ? len - 1 : 0)) >> kPageShift;
    for (u64 pfn = first; pfn <= last; ++pfn) {
        int levels = 0;
        if (!table_.walk(pfn, &levels).isOk()) {
            Status s = table_.map(pfn, pfn, iommu::DmaDir::kBidir);
            RIO_ASSERT(s.isOk(), "identity map failed");
        }
    }
}

Result<DmaMapping>
SwPassthroughDmaHandle::mapImpl(u16 /*rid*/, PhysAddr pa, u32 size,
                            iommu::DmaDir /*dir*/)
{
    if (detached_)
        return Status(ErrorCode::kDetached, "map through detached BDF");
    if (acct_)
        acct_->charge(cycles::Cat::kMapOther, cost_.passthrough_call);
    ensureIdentity(pa, size);
    ++live_;
    return DmaMapping{pa, pa, size};
}

Status
SwPassthroughDmaHandle::unmapImpl(const DmaMapping & /*mapping*/,
                              bool /*end_of_burst*/)
{
    if (acct_)
        acct_->charge(cycles::Cat::kUnmapOther, cost_.passthrough_call);
    RIO_ASSERT(live_ > 0, "unmap with no live mappings");
    --live_;
    return Status::ok();
}

Status
SwPassthroughDmaHandle::deviceRead(u64 device_addr, void *dst, u64 len)
{
    if (Status g = guardDetached(device_addr, iommu::Access::kRead); !g)
        return g;
    return injectedAccess(fault_, [&] {
        ensureIdentity(device_addr, len);
        return iommu_.dmaRead(bdf_, device_addr, dst, len);
    });
}

Status
SwPassthroughDmaHandle::deviceWrite(u64 device_addr, const void *src,
                                    u64 len)
{
    if (Status g = guardDetached(device_addr, iommu::Access::kWrite); !g)
        return g;
    return injectedAccess(fault_, [&] {
        ensureIdentity(device_addr, len);
        return iommu_.dmaWrite(bdf_, device_addr, src, len);
    });
}

} // namespace rio::dma
