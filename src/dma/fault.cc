#include "dma/fault.h"

#include "base/logging.h"
#include "obs/flight.h"
#include "obs/registry.h"
#include "obs/timeline.h"

namespace rio::dma {

const char *
faultPolicyName(FaultPolicy policy)
{
    switch (policy) {
      case FaultPolicy::kAbort: return "abort";
      case FaultPolicy::kRetryRemap: return "retry-remap";
      case FaultPolicy::kDropBackoff: return "drop-backoff";
    }
    RIO_PANIC("bad FaultPolicy");
}

void
FaultEngine::charge(Cycles c, bool first)
{
    if (!acct_)
        return;
    if (first)
        acct_->charge(cycles::Cat::kFaultHandling, c);
    else
        acct_->chargeCont(cycles::Cat::kFaultHandling, c);
}

Status
FaultEngine::recover(Status fail, const std::function<void()> &repair,
                     const std::function<Status()> &retry)
{
    RIO_ASSERT(!fail.isOk(), "recover() on a successful access");
    ++stats_.faults_seen;
    obs::registry()
        .counter("fault.recoveries", {{"policy", faultPolicyName(policy_)}})
        .inc();
    obs::Event ev;
    ev.kind = obs::Ev::kFault;
    ev.arg = static_cast<u64>(policy_);
    obs::timeline().emit(ev);
    obs::flightDump("dma_fault");
    // Every recovery starts with the fault interrupt: read the fault
    // status and drain the record(s). One op per handled fault.
    charge(cost_ ? cost_->fault_report : 0, /*first=*/true);

    switch (policy_) {
      case FaultPolicy::kAbort:
        repair();
        ++stats_.dropped;
        return fail;

      case FaultPolicy::kDropBackoff:
        repair();
        charge(cost_ ? cost_->fault_backoff : 0, /*first=*/false);
        ++stats_.dropped;
        return fail;

      case FaultPolicy::kRetryRemap: {
        Status last = fail;
        const unsigned attempts = cfg_.max_retries ? cfg_.max_retries : 1;
        for (unsigned i = 0; i < attempts; ++i) {
            repair();
            charge(cost_ ? cost_->fault_remap : 0, /*first=*/false);
            ++stats_.retries;
            last = retry();
            if (last.isOk()) {
                ++stats_.recovered;
                return last;
            }
        }
        ++stats_.dropped;
        return last;
      }
    }
    RIO_PANIC("bad FaultPolicy");
}

} // namespace rio::dma
