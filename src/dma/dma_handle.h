/**
 * @file
 * The OS DMA API (paper §3.1, Figures 4 and 6) as seen by a device
 * driver: map a physical target buffer to obtain a device-visible
 * DMA address, let the device access it, unmap when the DMA is done.
 * Concrete handles implement the protection modes.
 *
 * The same object also carries the device-side access path
 * (deviceRead/deviceWrite), i.e. "the bus": every device access goes
 * through whatever translation the mode imposes, so protection
 * properties are enforced — and their violations observable — in one
 * place.
 */
#ifndef RIO_DMA_DMA_HANDLE_H
#define RIO_DMA_DMA_HANDLE_H

#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "dma/fault.h"
#include "iommu/types.h"
#include "obs/deferred.h"

namespace rio::cycles {
class CycleAccount;
}
namespace rio::des {
class Core;
}

namespace rio::dma {

/** A live mapping returned by map() and consumed by unmap(). */
struct DmaMapping
{
    u64 device_addr = 0; //!< what the driver puts in the descriptor
    PhysAddr pa = 0;
    u32 size = 0;
};

/** One element of a scatter-gather list. */
struct SgEntry
{
    PhysAddr pa = 0;
    u32 len = 0;
};

/**
 * One surviving mapping, as reported by the stale-mapping leak
 * detector: enough to name the owner ring and device address in the
 * error message.
 */
struct LiveMappingInfo
{
    u64 device_addr = 0;
    u32 size = 0;
    u16 rid = 0;
};

/**
 * Per-device DMA-management handle. Driver-side calls (map/unmap)
 * charge the core's cycle account; device-side calls (deviceRead/
 * deviceWrite) are free for the core, per the paper's validated
 * model.
 */
class DmaHandle
{
  public:
    virtual ~DmaHandle() = default;

    /**
     * Map @p size bytes at physical @p pa for DMA in direction
     * @p dir.
     * @param rid ring hint: selects the rRING for rIOMMU modes;
     *        ignored by the baseline modes (one hierarchy per
     *        device).
     *
     * Non-virtual: the public call wraps the mode's mapImpl() so the
     * per-mode map-latency histogram and timeline span are recorded
     * at one choke point (when bindObs() armed them).
     */
    Result<DmaMapping> map(u16 rid, PhysAddr pa, u32 size,
                           iommu::DmaDir dir);

    /**
     * Tear down a mapping. @p end_of_burst marks the last unmap of a
     * completion burst: rIOMMU invalidates its single rIOTLB entry
     * only then; other modes ignore the flag. Non-virtual wrapper
     * over unmapImpl(), same observability contract as map().
     */
    Status unmap(const DmaMapping &mapping, bool end_of_burst);

    /**
     * Arm map/unmap observability: cycle-latency histograms labeled
     * {mode=@p mode} fed from @p acct's deltas, timeline spans on
     * @p core's track. Any argument may be null/absent; recording
     * degrades gracefully. Called by DmaContext::makeHandleWithSpecs
     * — decorators stay unbound so nothing double-counts.
     */
    void bindObs(const char *mode, cycles::CycleAccount *acct,
                 des::Core *core);

    /**
     * Map a scatter-gather list (the Linux dma_map_sg path). The
     * default maps each element independently, rolling back on
     * failure; the baseline-IOMMU handle overrides it to allocate one
     * contiguous IOVA range for the whole list, as intel-iommu does.
     * Returns one DmaMapping per element, in order.
     */
    virtual Result<std::vector<DmaMapping>>
    mapSg(u16 rid, const std::vector<SgEntry> &sg, iommu::DmaDir dir);

    /** Tear down a list produced by mapSg (pass the full vector). */
    virtual Status unmapSg(const std::vector<DmaMapping> &mappings,
                           bool end_of_burst);

    /** Device-side read of memory (DMA toward the device). */
    virtual Status deviceRead(u64 device_addr, void *dst, u64 len) = 0;

    /** Device-side write of memory (DMA from the device). */
    virtual Status deviceWrite(u64 device_addr, const void *src,
                               u64 len) = 0;

    /** Mappings currently live through this handle. */
    virtual u64 liveMappings() const = 0;

    /** The device this handle manages DMA for. */
    virtual iommu::Bdf bdf() const = 0;

    // ---- fault recovery & injection -----------------------------------
    // Virtual so decorators (trace::RecordingDmaHandle) can forward to
    // the handle that actually runs the device path.

    /** Select the recovery policy for faulted device accesses. */
    virtual void setFaultPolicy(FaultPolicy policy)
    {
        fault_.setPolicy(policy);
    }

    virtual FaultPolicy faultPolicy() const { return fault_.policy(); }

    /**
     * Arm (rate > 0) or disarm deterministic fault injection on this
     * handle's device-access path.
     */
    virtual void setFaultInjection(const FaultInjectConfig &cfg)
    {
        fault_.setInjection(cfg);
    }

    virtual FaultStats faultStats() const { return fault_.stats(); }

    /**
     * Opt the handle's IOVA allocator into the per-core magazine
     * pair over the shared depot (Bonwick layering; see
     * iova::MagazineIovaAllocator::setCoreCache). Only the magazine
     * modes (strict+/defer+) have the layer; everywhere else this is
     * a no-op so callers can set it unconditionally per mode sweep.
     */
    virtual void setIovaCoreCache(u32 /*rounds*/) {}

    /**
     * Back the handle's own (stage-1) I/O page table with 2 MB
     * superpage leaves: mappings that fit inside one 2 MB physical
     * region share a single huge translation, installed on first
     * touch and torn down (one masked invalidation) on last unref.
     * Protection granularity coarsens to the region — the documented
     * superpage tradeoff — and walks terminate a level early, which
     * is what closes the nested 2-D gap toward the ~15-ref ideal.
     * Only the baseline radix modes have a stage-1 table; everywhere
     * else this is a no-op so sweeps can set it unconditionally.
     * Flip before traffic; mixing with live 4K mappings is not
     * modeled.
     */
    virtual void setStage1Superpages(bool /*on*/) {}

    // ---- device lifecycle (quiesce protocol + surprise removal) -------
    // Virtual for the same reason as the fault API: decorators must
    // forward lifecycle calls to the handle that owns the real state.

    /**
     * Flush phase of the quiesce protocol (stop posting → drain ring
     * → unmap all → flush → detach): push out deferred invalidations
     * and drop any translation-cache state so nothing survives the
     * mappings it guarded. Default: nothing is queued.
     */
    virtual Status quiesceFlush() { return Status::ok(); }

    /**
     * Orderly detach (last phase of quiesce): tear down the device's
     * IOMMU attachment. The handle stays constructed — map() and
     * device access now fail with kDetached — and can be revived
     * with reattach().
     */
    virtual Status
    detach()
    {
        detached_ = true;
        return Status::ok();
    }

    /**
     * Surprise hot-unplug: the device vanished mid-burst, no drain or
     * flush happened first. Marks the handle detached and makes the
     * device unresponsive to invalidations (the ITE trigger); the
     * driver's removal path then unmaps through the detached handle.
     */
    virtual void surpriseRemove() { detached_ = true; }

    /** Re-attach after an unplug or orderly detach. */
    virtual Status
    reattach()
    {
        detached_ = false;
        return Status::ok();
    }

    virtual bool detached() const { return detached_; }

    /**
     * The live mappings, one record each, for the leak detector.
     * Modes with no per-mapping state (None/HWpt/SWpt identity maps)
     * report nothing; their liveMappings() counter still counts.
     */
    virtual std::vector<LiveMappingInfo> liveMappingList() const
    {
        return {};
    }

    /** Typed records of DMA attempts through the detached BDF. */
    virtual const std::vector<iommu::FaultRecord> &detachFaults() const
    {
        return detach_faults_;
    }

    virtual void clearDetachFaults() { detach_faults_.clear(); }

  protected:
    /** Mode-specific body of map(); see the public wrapper. */
    virtual Result<DmaMapping> mapImpl(u16 rid, PhysAddr pa, u32 size,
                                       iommu::DmaDir dir) = 0;

    /** Mode-specific body of unmap(); see the public wrapper. */
    virtual Status unmapImpl(const DmaMapping &mapping,
                             bool end_of_burst) = 0;

    /**
     * Use-after-detach guard, called at the top of every device
     * access path: a DMA through a detached BDF yields one typed
     * fault record (and, where an IOMMU exists, a FaultLog entry via
     * onDetachedAccess) instead of undefined behaviour.
     */
    Status
    guardDetached(u64 device_addr, iommu::Access access)
    {
        if (!detached_)
            return Status::ok();
        const iommu::FaultRecord rec{bdf(), device_addr, access,
                                     iommu::FaultReason::kDetached};
        constexpr size_t kMaxDetachFaults = 65536;
        if (detach_faults_.size() < kMaxDetachFaults)
            detach_faults_.push_back(rec);
        onDetachedAccess(rec);
        return Status(ErrorCode::kDetached,
                      "DMA through detached BDF");
    }

    /** Hook for modes with a FaultLog to record the detached access. */
    virtual void onDetachedAccess(const iommu::FaultRecord &) {}

    FaultEngine fault_;
    bool detached_ = false;
    std::vector<iommu::FaultRecord> detach_faults_;

  private:
    // Observability bindings (bindObs); never read by mode logic.
    // The latency histograms are burst-buffered: each unmap's cycle
    // delta is noted locally and the shared histogram takes the whole
    // completion burst in one observeBatch at end_of_burst (same
    // multiset of observations, one lock hit per burst).
    bool obs_bound_ = false;
    obs::DeferredHistogram obs_map_cycles_;
    obs::DeferredHistogram obs_unmap_cycles_;
    cycles::CycleAccount *obs_acct_ = nullptr;
    des::Core *obs_core_ = nullptr;
};

} // namespace rio::dma

#endif // RIO_DMA_DMA_HANDLE_H
