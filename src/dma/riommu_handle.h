/**
 * @file
 * DMA handle for the two rIOMMU modes (riommu-, riommu): a thin
 * adapter from the generic DMA API onto the RDevice driver of
 * Figure 11 and the rIOMMU hardware model.
 */
#ifndef RIO_DMA_RIOMMU_HANDLE_H
#define RIO_DMA_RIOMMU_HANDLE_H

#include <memory>
#include <vector>

#include "dma/dma_handle.h"
#include "dma/protection_mode.h"
#include "riommu/rdevice.h"

namespace rio::dma {

/** riommu- / riommu DMA management. */
class RiommuDmaHandle : public DmaHandle
{
  public:
    RiommuDmaHandle(ProtectionMode mode, riommu::Riommu &riommu,
                    mem::PhysicalMemory &pm, iommu::Bdf bdf,
                    std::vector<riommu::RingSpec> rings,
                    const cycles::CostModel &cost,
                    cycles::CycleAccount *acct);

    Result<DmaMapping> mapImpl(u16 rid, PhysAddr pa, u32 size,
                               iommu::DmaDir dir) override;
    Status unmapImpl(const DmaMapping &mapping, bool end_of_burst) override;
    Status deviceRead(u64 device_addr, void *dst, u64 len) override;
    Status deviceWrite(u64 device_addr, const void *src, u64 len) override;
    u64 liveMappings() const override;
    iommu::Bdf bdf() const override { return rdevice_.bdf(); }

    // ---- lifecycle ------------------------------------------------------
    /** Drop every ring's rIOTLB entry (nothing is queued in rIOMMU). */
    Status quiesceFlush() override;

    /** Orderly detach: remove the rDEVICE, dropping its rIOTLB state. */
    Status detach() override;

    /**
     * Surprise unplug. rIOMMU has no shared invalidation queue to
     * wedge — teardown is a per-device rDEVICE removal that drops the
     * per-ring rIOTLB entries with it, one of the design's lifecycle
     * advantages.
     */
    void surpriseRemove() override;

    Status reattach() override;

    /** Valid rPTEs across all rings, with owner ring + rIOVA. */
    std::vector<LiveMappingInfo> liveMappingList() const override;

    riommu::RDevice &rdevice() { return rdevice_; }

  private:
    void onDetachedAccess(const iommu::FaultRecord &rec) override;
    /**
     * Device access with the fault engine in the loop: optionally
     * clears the target rPTE's valid bit (undone during recovery) and
     * routes faulted accesses through the recovery policy.
     */
    Status deviceAccess(u64 device_addr,
                        const std::function<Status()> &access);

    riommu::Riommu &riommu_;
    mem::PhysicalMemory &pm_;
    const cycles::CostModel &cost_;
    cycles::CycleAccount *acct_;
    riommu::RDevice rdevice_;
};

} // namespace rio::dma

#endif // RIO_DMA_RIOMMU_HANDLE_H
