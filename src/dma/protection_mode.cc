#include "dma/protection_mode.h"

namespace rio::dma {

const char *
modeName(ProtectionMode mode)
{
    switch (mode) {
      case ProtectionMode::kStrict: return "strict";
      case ProtectionMode::kStrictPlus: return "strict+";
      case ProtectionMode::kDefer: return "defer";
      case ProtectionMode::kDeferPlus: return "defer+";
      case ProtectionMode::kRiommuNc: return "riommu-";
      case ProtectionMode::kRiommu: return "riommu";
      case ProtectionMode::kNone: return "none";
      case ProtectionMode::kHwPassthrough: return "hw-pt";
      case ProtectionMode::kSwPassthrough: return "sw-pt";
    }
    return "unknown";
}

std::optional<ProtectionMode>
parseMode(const std::string &name)
{
    for (ProtectionMode m :
         {ProtectionMode::kStrict, ProtectionMode::kStrictPlus,
          ProtectionMode::kDefer, ProtectionMode::kDeferPlus,
          ProtectionMode::kRiommuNc, ProtectionMode::kRiommu,
          ProtectionMode::kNone, ProtectionMode::kHwPassthrough,
          ProtectionMode::kSwPassthrough}) {
        if (name == modeName(m))
            return m;
    }
    return std::nullopt;
}

bool
modeUsesRiommu(ProtectionMode mode)
{
    return mode == ProtectionMode::kRiommuNc ||
           mode == ProtectionMode::kRiommu;
}

bool
modeUsesBaselineIommu(ProtectionMode mode)
{
    return mode == ProtectionMode::kStrict ||
           mode == ProtectionMode::kStrictPlus ||
           mode == ProtectionMode::kDefer ||
           mode == ProtectionMode::kDeferPlus;
}

bool
modeIsFullySafe(ProtectionMode mode)
{
    return mode == ProtectionMode::kStrict ||
           mode == ProtectionMode::kStrictPlus || modeUsesRiommu(mode);
}

bool
modeUsesMagazineAllocator(ProtectionMode mode)
{
    return mode == ProtectionMode::kStrictPlus ||
           mode == ProtectionMode::kDeferPlus;
}

bool
modeDefersInvalidation(ProtectionMode mode)
{
    return mode == ProtectionMode::kDefer ||
           mode == ProtectionMode::kDeferPlus;
}

} // namespace rio::dma
