/**
 * @file
 * The unprotected and pass-through DMA handles:
 *
 *  - NoneDmaHandle: IOMMU off; DMA addresses are physical addresses
 *    and (un)map are free — the paper's unprotected optimum.
 *  - HwPassthroughDmaHandle: IOMMU on in hardware pass-through; each
 *    (un)map pays only the kernel-abstraction constant the paper
 *    measures (~200 cycles per packet total, §5.1).
 *  - SwPassthroughDmaHandle: identity mappings through a real page
 *    table; the device path suffers genuine IOTLB misses, which is
 *    exactly what the paper's methodology-validation experiment
 *    shows to be performance-neutral.
 */
#ifndef RIO_DMA_SIMPLE_HANDLES_H
#define RIO_DMA_SIMPLE_HANDLES_H

#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"
#include "dma/dma_handle.h"
#include "iommu/iommu.h"
#include "mem/phys_mem.h"

namespace rio::dma {

/** IOMMU disabled: device addresses are physical addresses. */
class NoneDmaHandle : public DmaHandle
{
  public:
    /** @p cost / @p acct only feed the fault engine (there is no
     * IOMMU to fault, but the injector can synthesize bus aborts). */
    NoneDmaHandle(mem::PhysicalMemory &pm, iommu::Bdf bdf,
                  const cycles::CostModel &cost,
                  cycles::CycleAccount *acct)
        : pm_(pm), bdf_(bdf)
    {
        fault_.bind(&cost, acct);
    }

    Result<DmaMapping> mapImpl(u16 rid, PhysAddr pa, u32 size,
                               iommu::DmaDir dir) override;
    Status unmapImpl(const DmaMapping &mapping, bool end_of_burst) override;
    Status deviceRead(u64 device_addr, void *dst, u64 len) override;
    Status deviceWrite(u64 device_addr, const void *src, u64 len) override;
    u64 liveMappings() const override { return live_; }
    iommu::Bdf bdf() const override { return bdf_; }

  private:
    mem::PhysicalMemory &pm_;
    iommu::Bdf bdf_;
    u64 live_ = 0;
};

/** Hardware pass-through (HWpt): translation is identity in hardware. */
class HwPassthroughDmaHandle : public DmaHandle
{
  public:
    HwPassthroughDmaHandle(mem::PhysicalMemory &pm, iommu::Bdf bdf,
                           const cycles::CostModel &cost,
                           cycles::CycleAccount *acct)
        : pm_(pm), bdf_(bdf), cost_(cost), acct_(acct)
    {
        fault_.bind(&cost_, acct_);
    }

    Result<DmaMapping> mapImpl(u16 rid, PhysAddr pa, u32 size,
                               iommu::DmaDir dir) override;
    Status unmapImpl(const DmaMapping &mapping, bool end_of_burst) override;
    Status deviceRead(u64 device_addr, void *dst, u64 len) override;
    Status deviceWrite(u64 device_addr, const void *src, u64 len) override;
    u64 liveMappings() const override { return live_; }
    iommu::Bdf bdf() const override { return bdf_; }

  private:
    mem::PhysicalMemory &pm_;
    iommu::Bdf bdf_;
    const cycles::CostModel &cost_;
    cycles::CycleAccount *acct_;
    u64 live_ = 0;
};

/**
 * Software pass-through (SWpt): a real page table maps every frame to
 * itself, populated lazily and uncharged (it models a boot-time
 * setup); device accesses run through the IOTLB and the walker.
 */
class SwPassthroughDmaHandle : public DmaHandle
{
  public:
    SwPassthroughDmaHandle(iommu::Iommu &iommu, mem::PhysicalMemory &pm,
                           iommu::Bdf bdf, const cycles::CostModel &cost,
                           cycles::CycleAccount *acct);
    ~SwPassthroughDmaHandle() override;

    Result<DmaMapping> mapImpl(u16 rid, PhysAddr pa, u32 size,
                               iommu::DmaDir dir) override;
    Status unmapImpl(const DmaMapping &mapping, bool end_of_burst) override;
    Status deviceRead(u64 device_addr, void *dst, u64 len) override;
    Status deviceWrite(u64 device_addr, const void *src, u64 len) override;
    u64 liveMappings() const override { return live_; }
    iommu::Bdf bdf() const override { return bdf_; }

    // ---- lifecycle ------------------------------------------------------
    /** Orderly detach: drop the identity attachment. */
    Status detach() override;
    void surpriseRemove() override;
    Status reattach() override;

  private:
    /** Install identity PTEs for [addr, addr+len), uncharged. */
    void ensureIdentity(u64 addr, u64 len);

    void onDetachedAccess(const iommu::FaultRecord &rec) override;

    iommu::Iommu &iommu_;
    iommu::Bdf bdf_;
    const cycles::CostModel &cost_;
    cycles::CycleAccount *acct_;
    iommu::IoPageTable table_;
    u64 live_ = 0;
};

} // namespace rio::dma

#endif // RIO_DMA_SIMPLE_HANDLES_H
