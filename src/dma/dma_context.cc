#include "dma/dma_context.h"

#include "base/logging.h"
#include "base/strings.h"
#include "dma/baseline_handle.h"
#include "dma/riommu_handle.h"
#include "dma/simple_handles.h"
#include "obs/flight.h"

namespace rio::dma {

DmaContext::DmaContext(const cycles::CostModel &cost,
                       iommu::IotlbConfig iotlb_config)
    : cost_(cost), pm_(), iommu_(pm_, cost_, iotlb_config),
      riommu_(pm_, cost_), iova_lock_(cost_, "iova"),
      inval_lock_(cost_, "qi")
{
}

std::unique_ptr<DmaHandle>
DmaContext::makeHandle(ProtectionMode mode, iommu::Bdf bdf,
                       cycles::CycleAccount *acct,
                       std::vector<u32> ring_sizes, des::Core *core)
{
    std::vector<riommu::RingSpec> specs;
    specs.reserve(ring_sizes.size());
    for (u32 size : ring_sizes)
        specs.push_back(riommu::RingSpec{size, riommu::RingMode::kSequential});
    return makeHandleWithSpecs(mode, bdf, acct, std::move(specs), core);
}

std::unique_ptr<DmaHandle>
DmaContext::makeHandleWithSpecs(ProtectionMode mode, iommu::Bdf bdf,
                                cycles::CycleAccount *acct,
                                std::vector<riommu::RingSpec> ring_specs,
                                des::Core *core)
{
    std::unique_ptr<DmaHandle> handle;
    switch (mode) {
      case ProtectionMode::kStrict:
      case ProtectionMode::kStrictPlus:
      case ProtectionMode::kDefer:
      case ProtectionMode::kDeferPlus: {
        auto baseline = std::make_unique<BaselineDmaHandle>(mode, iommu_,
                                                            pm_, bdf,
                                                            cost_, acct);
        if (core)
            baseline->setContention(&iova_lock_, &inval_lock_, core);
        handle = std::move(baseline);
        break;
      }
      case ProtectionMode::kRiommuNc:
      case ProtectionMode::kRiommu:
        RIO_ASSERT(!ring_specs.empty(),
                   "rIOMMU modes need ring sizes at handle creation");
        handle = std::make_unique<RiommuDmaHandle>(
            mode, riommu_, pm_, bdf, std::move(ring_specs), cost_, acct);
        break;
      case ProtectionMode::kNone:
        handle = std::make_unique<NoneDmaHandle>(pm_, bdf, cost_, acct);
        break;
      case ProtectionMode::kHwPassthrough:
        handle = std::make_unique<HwPassthroughDmaHandle>(pm_, bdf, cost_,
                                                          acct);
        break;
      case ProtectionMode::kSwPassthrough:
        handle = std::make_unique<SwPassthroughDmaHandle>(iommu_, pm_, bdf,
                                                          cost_, acct);
        break;
    }
    RIO_ASSERT(handle != nullptr, "bad protection mode");
    handle->bindObs(modeName(mode), acct, core);
    return handle;
}

std::string
LeakReport::toString() const
{
    if (clean())
        return "clean";
    std::string s = strprintf(
        "%llu leaked mapping(s), %llu stale IOTLB, %llu stale rIOTLB",
        (unsigned long long)leaked, (unsigned long long)stale_iotlb,
        (unsigned long long)stale_riotlb);
    for (const LeakRecord &r : records) {
        s += strprintf("\n  %s ring %u device_addr 0x%llx size %u",
                       r.bdf.toString().c_str(), r.rid,
                       (unsigned long long)r.device_addr, r.size);
    }
    return s;
}

LeakReport
DmaContext::checkHandleLeaks(const DmaHandle &handle) const
{
    LeakReport report;
    report.leaked = handle.liveMappings();
    for (const LiveMappingInfo &m : handle.liveMappingList()) {
        report.records.push_back(
            LeakRecord{handle.bdf(), m.rid, m.device_addr, m.size});
    }
    const u16 sid = handle.bdf().pack();
    report.stale_iotlb = iommu_.iotlb().validEntriesFor(sid);
    report.stale_riotlb = riommu_.riotlb().entriesFor(sid);
    if (!report.clean())
        obs::flightDump("handle_leak");
    return report;
}

} // namespace rio::dma
