#include "dma/dma_context.h"

#include "base/logging.h"
#include "dma/baseline_handle.h"
#include "dma/riommu_handle.h"
#include "dma/simple_handles.h"

namespace rio::dma {

DmaContext::DmaContext(const cycles::CostModel &cost,
                       iommu::IotlbConfig iotlb_config)
    : cost_(cost), pm_(), iommu_(pm_, cost_, iotlb_config),
      riommu_(pm_, cost_)
{
}

std::unique_ptr<DmaHandle>
DmaContext::makeHandle(ProtectionMode mode, iommu::Bdf bdf,
                       cycles::CycleAccount *acct,
                       std::vector<u32> ring_sizes)
{
    std::vector<riommu::RingSpec> specs;
    specs.reserve(ring_sizes.size());
    for (u32 size : ring_sizes)
        specs.push_back(riommu::RingSpec{size, riommu::RingMode::kSequential});
    return makeHandleWithSpecs(mode, bdf, acct, std::move(specs));
}

std::unique_ptr<DmaHandle>
DmaContext::makeHandleWithSpecs(ProtectionMode mode, iommu::Bdf bdf,
                                cycles::CycleAccount *acct,
                                std::vector<riommu::RingSpec> ring_specs)
{
    switch (mode) {
      case ProtectionMode::kStrict:
      case ProtectionMode::kStrictPlus:
      case ProtectionMode::kDefer:
      case ProtectionMode::kDeferPlus:
        return std::make_unique<BaselineDmaHandle>(mode, iommu_, pm_, bdf,
                                                   cost_, acct);
      case ProtectionMode::kRiommuNc:
      case ProtectionMode::kRiommu:
        RIO_ASSERT(!ring_specs.empty(),
                   "rIOMMU modes need ring sizes at handle creation");
        return std::make_unique<RiommuDmaHandle>(
            mode, riommu_, pm_, bdf, std::move(ring_specs), cost_, acct);
      case ProtectionMode::kNone:
        return std::make_unique<NoneDmaHandle>(pm_, bdf);
      case ProtectionMode::kHwPassthrough:
        return std::make_unique<HwPassthroughDmaHandle>(pm_, bdf, cost_,
                                                        acct);
      case ProtectionMode::kSwPassthrough:
        return std::make_unique<SwPassthroughDmaHandle>(iommu_, pm_, bdf,
                                                        cost_, acct);
    }
    RIO_PANIC("bad protection mode");
}

} // namespace rio::dma
