/**
 * @file
 * Trace replay harness for the §5.4 prefetcher comparison: runs a
 * DMA trace through a small TLB plus a prefetcher and reports hit
 * rates, in both the stock configuration (prefetcher histories drop
 * invalidated IOVAs) and the paper's modified configuration
 * (histories persist, but predictions must pass a live-mapping
 * check before being installed).
 */
#ifndef RIO_PREFETCH_REPLAY_H
#define RIO_PREFETCH_REPLAY_H

#include "prefetch/prefetcher.h"
#include "trace/trace.h"

namespace rio::prefetch {

/** Replay configuration. */
struct ReplayConfig
{
    /** Simulated IOTLB capacity (LRU). */
    unsigned tlb_entries = 64;
    /**
     * false == stock prefetcher: every unmap also purges the pfn from
     * the prefetcher history (the configuration the paper found
     * ineffective). true == the paper's modification.
     */
    bool store_invalidated = false;
    /**
     * Check predictions against the live mapping set before
     * installing them (mandatory in the paper's modified variants —
     * predicting an unmapped IOVA would walk into a fault).
     */
    bool validate_against_live = true;
};

/** Replay outcome. */
struct ReplayResult
{
    u64 accesses = 0;
    u64 hits = 0;          //!< TLB hits of any kind
    u64 prefetch_hits = 0; //!< hits on prefetched entries
    u64 misses = 0;
    u64 predictions = 0;
    u64 rejected_predictions = 0; //!< failed the live check

    double
    hitRate() const
    {
        return accesses ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Run @p trace through @p prefetcher under @p config. */
ReplayResult replayTrace(const trace::DmaTrace &trace,
                         TlbPrefetcher &prefetcher,
                         const ReplayConfig &config);

} // namespace rio::prefetch

#endif // RIO_PREFETCH_REPLAY_H
