#include "prefetch/replay.h"

#include <list>
#include <unordered_map>
#include <unordered_set>

namespace rio::prefetch {

namespace {

/** Tiny LRU TLB with a prefetched-bit per entry. */
class ReplayTlb
{
  public:
    explicit ReplayTlb(unsigned capacity) : capacity_(capacity) {}

    /** Returns 0 == miss, 1 == demand hit, 2 == prefetched hit. */
    int
    lookup(u64 pfn)
    {
        auto it = index_.find(pfn);
        if (it == index_.end())
            return 0;
        const bool prefetched = it->second->prefetched;
        it->second->prefetched = false; // now a demand-resident line
        lru_.splice(lru_.begin(), lru_, it->second);
        return prefetched ? 2 : 1;
    }

    void
    insert(u64 pfn, bool prefetched)
    {
        auto it = index_.find(pfn);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            return;
        }
        if (lru_.size() >= capacity_) {
            index_.erase(lru_.back().pfn);
            lru_.pop_back();
        }
        lru_.push_front(Line{pfn, prefetched});
        index_[pfn] = lru_.begin();
    }

    void
    invalidate(u64 pfn)
    {
        auto it = index_.find(pfn);
        if (it == index_.end())
            return;
        lru_.erase(it->second);
        index_.erase(it);
    }

  private:
    struct Line
    {
        u64 pfn;
        bool prefetched;
    };

    unsigned capacity_;
    std::list<Line> lru_;
    std::unordered_map<u64, std::list<Line>::iterator> index_;
};

} // namespace

ReplayResult
replayTrace(const trace::DmaTrace &trace, TlbPrefetcher &prefetcher,
            const ReplayConfig &config)
{
    ReplayResult result;
    ReplayTlb tlb(config.tlb_entries);
    std::unordered_map<u64, u32> live; // pfn -> map count

    std::vector<u64> predictions;
    for (const trace::TraceEvent &e : trace.events()) {
        switch (e.kind) {
          case trace::TraceEvent::Kind::kMap:
            ++live[e.iova_pfn];
            prefetcher.onMap(e.iova_pfn);
            break;
          case trace::TraceEvent::Kind::kUnmap: {
            auto it = live.find(e.iova_pfn);
            if (it != live.end() && --it->second == 0)
                live.erase(it);
            tlb.invalidate(e.iova_pfn);
            if (!config.store_invalidated)
                prefetcher.invalidate(e.iova_pfn);
            break;
          }
          case trace::TraceEvent::Kind::kAccess: {
            ++result.accesses;
            const int hit = tlb.lookup(e.iova_pfn);
            if (hit) {
                ++result.hits;
                if (hit == 2)
                    ++result.prefetch_hits;
            } else {
                ++result.misses;
                tlb.insert(e.iova_pfn, /*prefetched=*/false);
            }
            predictions.clear();
            prefetcher.access(e.iova_pfn, &predictions);
            for (u64 pred : predictions) {
                ++result.predictions;
                if (config.validate_against_live &&
                    live.find(pred) == live.end()) {
                    ++result.rejected_predictions;
                    continue;
                }
                tlb.insert(pred, /*prefetched=*/true);
            }
            break;
          }
          case trace::TraceEvent::Kind::kFault:
            // Faulted accesses install no translation; nothing to
            // replay into the TLB model.
            break;
        }
    }
    return result;
}

} // namespace rio::prefetch
