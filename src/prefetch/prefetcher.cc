#include "prefetch/prefetcher.h"

#include <algorithm>

namespace rio::prefetch {

// ---- MarkovPrefetcher -------------------------------------------------------

void
MarkovPrefetcher::touch(u64 pfn)
{
    auto it = table_.find(pfn);
    if (it != table_.end()) {
        lru_.erase(it->second.lru_it);
    } else {
        evictIfNeeded();
        table_[pfn] = Entry{};
        it = table_.find(pfn);
    }
    lru_.push_front(pfn);
    it->second.lru_it = lru_.begin();
}

void
MarkovPrefetcher::evictIfNeeded()
{
    while (table_.size() >= capacity_ && !lru_.empty()) {
        table_.erase(lru_.back());
        lru_.pop_back();
    }
}

void
MarkovPrefetcher::access(u64 pfn, std::vector<u64> *predictions)
{
    // Learn: last -> pfn.
    if (has_last_) {
        auto it = table_.find(last_pfn_);
        if (it != table_.end()) {
            it->second.successor = pfn;
            it->second.has_successor = true;
        }
    }
    touch(pfn);
    last_pfn_ = pfn;
    has_last_ = true;

    // Predict pfn's remembered successor.
    auto it = table_.find(pfn);
    if (it != table_.end() && it->second.has_successor && predictions)
        predictions->push_back(it->second.successor);
}

void
MarkovPrefetcher::invalidate(u64 pfn)
{
    auto it = table_.find(pfn);
    if (it != table_.end()) {
        lru_.erase(it->second.lru_it);
        table_.erase(it);
    }
    // Successor links pointing at pfn die lazily: predictions are
    // validated against the live set by the replay harness anyway.
    if (has_last_ && last_pfn_ == pfn)
        has_last_ = false;
}

void
MarkovPrefetcher::reset()
{
    table_.clear();
    lru_.clear();
    has_last_ = false;
}

// ---- RecencyPrefetcher ------------------------------------------------------

void
RecencyPrefetcher::access(u64 pfn, std::vector<u64> *predictions)
{
    auto it = index_.find(pfn);
    if (it != index_.end()) {
        // Predict the pfn's LRU-stack neighbours before moving it.
        if (predictions) {
            auto pos = it->second;
            if (pos != stack_.begin())
                predictions->push_back(*std::prev(pos));
            auto next = std::next(pos);
            if (next != stack_.end())
                predictions->push_back(*next);
        }
        stack_.erase(it->second);
    } else if (stack_.size() >= capacity_) {
        index_.erase(stack_.back());
        stack_.pop_back();
    }
    stack_.push_front(pfn);
    index_[pfn] = stack_.begin();
}

void
RecencyPrefetcher::invalidate(u64 pfn)
{
    auto it = index_.find(pfn);
    if (it != index_.end()) {
        stack_.erase(it->second);
        index_.erase(it);
    }
}

void
RecencyPrefetcher::reset()
{
    stack_.clear();
    index_.clear();
}

// ---- DistancePrefetcher -----------------------------------------------------

void
DistancePrefetcher::access(u64 pfn, std::vector<u64> *predictions)
{
    if (has_last_) {
        const i64 dist = static_cast<i64>(pfn) -
                         static_cast<i64>(last_pfn_);
        if (has_dist_) {
            // Learn: last_dist -> dist.
            if (dist_table_.find(last_dist_) == dist_table_.end()) {
                if (dist_lru_.size() >= capacity_) {
                    dist_table_.erase(dist_lru_.front());
                    dist_lru_.pop_front();
                }
                dist_lru_.push_back(last_dist_);
            }
            dist_table_[last_dist_] = dist;
        }
        // Predict: pfn + successor-distance of dist.
        auto it = dist_table_.find(dist);
        if (it != dist_table_.end() && predictions) {
            const i64 pred =
                static_cast<i64>(pfn) + it->second;
            if (pred > 0)
                predictions->push_back(static_cast<u64>(pred));
        }
        last_dist_ = dist;
        has_dist_ = true;
    }
    last_pfn_ = pfn;
    has_last_ = true;
}

void
DistancePrefetcher::invalidate(u64 pfn)
{
    // Distances are address-relative; dropping an address resets the
    // chain if it was the anchor.
    if (has_last_ && last_pfn_ == pfn) {
        has_last_ = false;
        has_dist_ = false;
    }
}

void
DistancePrefetcher::reset()
{
    dist_table_.clear();
    dist_lru_.clear();
    has_last_ = false;
    has_dist_ = false;
}

// ---- SequentialRingPrefetcher ----------------------------------------------

void
SequentialRingPrefetcher::onMap(u64 pfn)
{
    ring_.push_back(pfn);
    ++epoch_[pfn];
}

void
SequentialRingPrefetcher::access(u64 pfn, std::vector<u64> *predictions)
{
    // Predict the pfn mapped right after this one (the next rPTE of
    // the flat table). A linear scan bounded by a window keeps the
    // model honest about its two-entry footprint: it only needs the
    // current and next entries.
    if (!predictions)
        return;
    for (size_t i = 0; i < ring_.size(); ++i) {
        if (ring_[i] == pfn) {
            if (i + 1 < ring_.size())
                predictions->push_back(ring_[i + 1]);
            return;
        }
    }
}

void
SequentialRingPrefetcher::invalidate(u64 pfn)
{
    auto it = epoch_.find(pfn);
    if (it == epoch_.end())
        return;
    if (--it->second == 0)
        epoch_.erase(it);
    for (size_t i = 0; i < ring_.size(); ++i) {
        if (ring_[i] == pfn) {
            ring_.erase(ring_.begin() + static_cast<long>(i));
            return;
        }
    }
}

void
SequentialRingPrefetcher::reset()
{
    ring_.clear();
    epoch_.clear();
}

} // namespace rio::prefetch
