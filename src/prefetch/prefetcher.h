/**
 * @file
 * TLB prefetchers compared against the rIOTLB in §5.4 of the paper:
 * Markov [31], Recency [44] and Distance [34], as surveyed by
 * Kandiraju & Sivasubramaniam [33]. The paper found their stock
 * versions ineffective on DMA traces (IOVAs are invalidated right
 * after use), and even versions modified to remember invalidated
 * addresses only predict well once their history outgrows the ring —
 * whereas the rIOTLB needs two entries per ring and its "predictions"
 * are always right. SequentialRingPrefetcher models that mechanism.
 */
#ifndef RIO_PREFETCH_PREFETCHER_H
#define RIO_PREFETCH_PREFETCHER_H

#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

#include "base/types.h"

namespace rio::prefetch {

/** Interface shared by all prefetchers in the §5.4 comparison. */
class TlbPrefetcher
{
  public:
    virtual ~TlbPrefetcher() = default;

    virtual const char *name() const = 0;

    /**
     * Observe an access to @p pfn; append up to degree() predicted
     * next pfns to @p predictions.
     */
    virtual void access(u64 pfn, std::vector<u64> *predictions) = 0;

    /** Observe a map (only some prefetchers care). */
    virtual void onMap(u64 pfn) { (void)pfn; }

    /**
     * Forget @p pfn. The *stock* prefetchers must be driven with
     * this on every unmap (their histories drop invalidated IOVAs);
     * the paper's modified variants skip it.
     */
    virtual void invalidate(u64 pfn) = 0;

    virtual void reset() = 0;
};

/** First-order Markov predictor: remembers successors of each pfn. */
class MarkovPrefetcher : public TlbPrefetcher
{
  public:
    explicit MarkovPrefetcher(size_t history_entries)
        : capacity_(history_entries)
    {
    }

    const char *name() const override { return "markov"; }
    void access(u64 pfn, std::vector<u64> *predictions) override;
    void invalidate(u64 pfn) override;
    void reset() override;

    size_t historySize() const { return table_.size(); }

  private:
    void touch(u64 pfn);
    void evictIfNeeded();

    size_t capacity_;
    u64 last_pfn_ = 0;
    bool has_last_ = false;
    struct Entry
    {
        u64 successor = 0;
        bool has_successor = false;
        std::list<u64>::iterator lru_it;
    };
    std::unordered_map<u64, Entry> table_;
    std::list<u64> lru_; // front == most recent
};

/**
 * Recency-based preloading: an LRU stack; on access, predict the
 * stack neighbours of the accessed pfn (Saulsbury et al.).
 */
class RecencyPrefetcher : public TlbPrefetcher
{
  public:
    explicit RecencyPrefetcher(size_t history_entries)
        : capacity_(history_entries)
    {
    }

    const char *name() const override { return "recency"; }
    void access(u64 pfn, std::vector<u64> *predictions) override;
    void invalidate(u64 pfn) override;
    void reset() override;

    size_t historySize() const { return stack_.size(); }

  private:
    size_t capacity_;
    std::list<u64> stack_; // front == most recent
    std::unordered_map<u64, std::list<u64>::iterator> index_;
};

/**
 * Distance prefetching: learns which inter-access strides follow
 * which, predicting current + next-stride (Kandiraju et al.).
 */
class DistancePrefetcher : public TlbPrefetcher
{
  public:
    explicit DistancePrefetcher(size_t history_entries)
        : capacity_(history_entries)
    {
    }

    const char *name() const override { return "distance"; }
    void access(u64 pfn, std::vector<u64> *predictions) override;
    void invalidate(u64 pfn) override;
    void reset() override;

  private:
    size_t capacity_;
    u64 last_pfn_ = 0;
    i64 last_dist_ = 0;
    bool has_last_ = false;
    bool has_dist_ = false;
    std::unordered_map<i64, i64> dist_table_; // distance -> next dist
    std::deque<i64> dist_lru_;
};

/**
 * The rIOTLB mechanism recast as a "prefetcher": on an access,
 * predict the *next entry mapped into the ring* (the flat table's
 * successor). Ring semantics make this prediction always correct,
 * with a two-entry footprint per ring (§5.4's bottom line).
 */
class SequentialRingPrefetcher : public TlbPrefetcher
{
  public:
    const char *name() const override { return "riotlb"; }
    void access(u64 pfn, std::vector<u64> *predictions) override;
    void onMap(u64 pfn) override;
    void invalidate(u64 pfn) override;
    void reset() override;

  private:
    std::deque<u64> ring_; // pfns in map (ring) order
    std::unordered_map<u64, size_t> epoch_; // fast membership
};

} // namespace rio::prefetch

#endif // RIO_PREFETCH_PREFETCHER_H
