/**
 * @file
 * Minimal discrete-event simulation kernel. Time is in nanoseconds.
 * Components (cores, NICs, wires) schedule callbacks; the kernel runs
 * them in timestamp order with a deterministic FIFO tie-break so runs
 * are reproducible.
 */
#ifndef RIO_DES_SIMULATOR_H
#define RIO_DES_SIMULATOR_H

#include <cstddef>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "base/types.h"

namespace rio::des {

/** Handle for cancelling a scheduled event. */
using EventId = u64;

/**
 * Event-queue simulator. Single-threaded; all state lives in the
 * callbacks' captures.
 */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time in nanoseconds. */
    Nanos now() const { return now_; }

    /** Schedule @p cb at absolute time @p when (>= now). */
    EventId scheduleAt(Nanos when, Callback cb);

    /** Schedule @p cb @p delay nanoseconds from now. */
    EventId scheduleAfter(Nanos delay, Callback cb);

    /**
     * Cancel a pending event. Returns true if it had not yet fired.
     * Cancelling an already-fired or unknown id is a harmless no-op.
     */
    bool cancel(EventId id);

    /** Events executed so far (monotone; useful for progress checks). */
    u64 eventsRun() const { return events_run_; }

    /** True if no events remain. */
    bool idle() const { return live_events_ == 0; }

    /** Run until the queue drains. */
    void run();

    /**
     * Run until simulated time reaches @p deadline or the queue
     * drains, whichever is first. Time is left at
     * min(deadline, last event time).
     */
    void runUntil(Nanos deadline);

    /** Drop all pending events and reset the clock. */
    void reset();

  private:
    struct Event
    {
        Nanos when;
        u64 seq; // FIFO tie-break for equal timestamps
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool popRunnable(Event &out, Nanos deadline);

    Nanos now_ = 0;
    u64 next_seq_ = 0;
    EventId next_id_ = 1;
    u64 events_run_ = 0;
    u64 live_events_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::unordered_set<EventId> cancelled_;
};

} // namespace rio::des

#endif // RIO_DES_SIMULATOR_H
