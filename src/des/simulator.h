/**
 * @file
 * Minimal discrete-event simulation kernel. Time is in nanoseconds.
 * Components (cores, NICs, wires) schedule callbacks; the kernel runs
 * them in timestamp order with a deterministic FIFO tie-break so runs
 * are reproducible.
 *
 * One Simulator is one *event lane*: single-threaded by construction,
 * with all state living in the callbacks' captures. Independent lanes
 * (one per sys::Machine) can be driven concurrently by
 * des::ParallelEngine (parallel.h), which synchronizes them only at
 * conservative lookahead horizons — the lane itself never needs a
 * lock.
 *
 * Hot-path design (the simulator itself is a measured artifact, see
 * bench_selfperf): the priority queue holds small POD entries only;
 * callbacks live in a generation-tagged slot table whose cells are
 * recycled the moment an event fires or is cancelled, so cancellation
 * leaves no unbounded tombstone state (stale queue entries are
 * compacted away once they dominate the heap).
 */
#ifndef RIO_DES_SIMULATOR_H
#define RIO_DES_SIMULATOR_H

#include <cstddef>
#include <limits>
#include <queue>
#include <vector>

#include "base/types.h"
#include "des/event_fn.h"

namespace rio::des {

/**
 * Handle for cancelling a scheduled event: slot index + generation
 * tag packed into 64 bits. Ids never repeat while the event they name
 * can still be confused with a live one — a recycled slot bumps its
 * generation, so cancelling a fired, cancelled or pre-reset id is a
 * harmless no-op that touches O(1) state.
 */
using EventId = u64;

/** Event-queue simulator: one deterministic event lane. */
class Simulator
{
  public:
    using Callback = EventFn;

    /** Returned by nextEventTime() when the lane has nothing pending. */
    static constexpr Nanos kNoEvent = std::numeric_limits<Nanos>::max();

    /** Current simulated time in nanoseconds. */
    Nanos now() const { return now_; }

    /** Schedule @p cb at absolute time @p when (>= now). */
    EventId scheduleAt(Nanos when, Callback cb);

    /** Schedule @p cb @p delay nanoseconds from now. */
    EventId scheduleAfter(Nanos delay, Callback cb);

    /**
     * Cancel a pending event. Returns true if it had not yet fired.
     * Cancelling an already-fired or unknown id is a harmless no-op.
     * The event's slot (and callback storage) is reclaimed
     * immediately.
     */
    bool cancel(EventId id);

    /** Events executed so far (monotone; useful for progress checks). */
    u64 eventsRun() const { return events_run_; }

    /** True if no events remain. */
    bool idle() const { return live_events_ == 0; }

    /** Run until the queue drains. */
    void run();

    /**
     * Run until simulated time reaches @p deadline or the queue
     * drains, whichever is first. Events stamped exactly @p deadline
     * do run. Time is left at min(deadline, last event time); a
     * deadline already in the past runs nothing and leaves the clock
     * untouched.
     */
    void runUntil(Nanos deadline);

    /** Drop all pending events and reset the clock. */
    void reset();

    /**
     * Timestamp of the earliest pending event, kNoEvent if idle.
     * Used by ParallelEngine to compute the conservative lookahead
     * horizon. Prunes already-cancelled heap heads as a side effect.
     */
    Nanos nextEventTime();

    // ---- introspection for tests / self-perf ---------------------------
    /** Slot-table cells ever allocated (regression: cancel must not
     * grow this without bound — slots recycle). */
    size_t slotsAllocated() const { return slots_.size(); }

    /** Heap entries currently held, live and stale. */
    size_t queueSize() const { return queue_.size(); }

  private:
    /** What the heap orders: 24-byte POD, callback lives in slots_. */
    struct QEntry
    {
        Nanos when;
        u64 seq; //!< FIFO tie-break for equal timestamps
        u32 slot;
        u32 gen;
    };

    struct Later
    {
        bool
        operator()(const QEntry &a, const QEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** One callback cell; gen changes whenever the cell is freed. */
    struct Slot
    {
        EventFn fn;
        u32 gen = 0;
        bool armed = false;
    };

    static EventId
    packId(u32 slot, u32 gen)
    {
        return (static_cast<u64>(slot) + 1) << 32 | gen;
    }

    bool
    liveEntry(const QEntry &e) const
    {
        const Slot &s = slots_[e.slot];
        return s.armed && s.gen == e.gen;
    }

    u32 allocSlot();
    void freeSlot(u32 idx);
    bool popRunnable(EventFn &fn, Nanos &when, Nanos deadline);
    void compactIfStale();

    Nanos now_ = 0;
    u64 next_seq_ = 0;
    u64 events_run_ = 0;
    u64 live_events_ = 0;
    u64 stale_in_queue_ = 0;
    std::priority_queue<QEntry, std::vector<QEntry>, Later> queue_;
    std::vector<Slot> slots_;
    std::vector<u32> free_slots_;
};

} // namespace rio::des

#endif // RIO_DES_SIMULATOR_H
