/**
 * @file
 * SimSpinlock: a deterministic queued-spinlock model for the
 * multi-core topology. The DES executes one core's work item at a
 * time, so real mutual exclusion is never needed; what the lock
 * models is the *time* a core burns spinning while another core's
 * critical section (in overlapping virtual time) holds the lock.
 *
 * The lock keeps the virtual timestamp at which its last critical
 * section ends. An acquirer whose core-local virtual time is earlier
 * than that spins for the difference: the wait is charged to the
 * acquiring core's CycleAccount under Cat::kLockWait, which (via
 * Core::virtualNow) advances the core to exactly the grant time —
 * ticket-lock semantics in simulated time, bit-reproducible across
 * runs because grant order is the deterministic DES execution order.
 *
 * This is the §3.2 scalability pathology of the baseline modes: the
 * Linux IOVA allocator and the invalidation-queue tail register are
 * globally locked, so map/unmap serializes across cores, while the
 * rIOMMU's per-ring state needs no lock at all.
 */
#ifndef RIO_DES_SPINLOCK_H
#define RIO_DES_SPINLOCK_H

#include "base/types.h"
#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"
#include "des/core.h"
#include "obs/registry.h"

namespace rio::des {

/** Deterministic virtual-time spinlock shared by simulated cores. */
class SimSpinlock
{
  public:
    /** Cumulative contention counters. */
    struct Stats
    {
        u64 acquisitions = 0;  //!< total acquire() calls
        u64 contended = 0;     //!< acquisitions that had to spin
        Cycles wait_cycles = 0; //!< total cycles spent spinning
    };

    SimSpinlock(const cycles::CostModel &cost, const char *name)
        : cost_(cost), name_(name),
          obs_wait_(obs::registry().histogram("lock.wait_cycles",
                                              {{"lock", name}}))
    {
    }

    SimSpinlock(const SimSpinlock &) = delete;
    SimSpinlock &operator=(const SimSpinlock &) = delete;

    /**
     * Acquire at @p core's current virtual time. If the lock's last
     * critical section ends later, the spin-wait is charged to
     * @p acct (Cat::kLockWait) — advancing the core's virtual "now"
     * to the grant time. A null @p core (purely functional use, no
     * simulated time) acquires instantly. Returns the cycles waited.
     */
    Cycles acquire(Core *core, cycles::CycleAccount *acct);

    /** Release at @p core's current virtual time. */
    void release(Core *core);

    const Stats &stats() const { return stats_; }
    const char *name() const { return name_; }

    /** Virtual time at which the lock next becomes free. */
    Nanos freeAt() const { return free_at_; }

  private:
    const cycles::CostModel &cost_;
    const char *name_;
    bool held_ = false;
    Nanos free_at_ = 0;
    Stats stats_;
    obs::Histogram &obs_wait_; //!< per-acquire spin cycles, by lock
};

/** RAII guard; a null lock or core degrades to a no-op / free pass. */
class SpinGuard
{
  public:
    SpinGuard(SimSpinlock *lock, Core *core, cycles::CycleAccount *acct)
        : lock_(lock), core_(core)
    {
        if (lock_)
            lock_->acquire(core_, acct);
    }
    ~SpinGuard()
    {
        if (lock_)
            lock_->release(core_);
    }

    SpinGuard(const SpinGuard &) = delete;
    SpinGuard &operator=(const SpinGuard &) = delete;

  private:
    SimSpinlock *lock_;
    Core *core_;
};

} // namespace rio::des

#endif // RIO_DES_SPINLOCK_H
