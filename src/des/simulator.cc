#include "des/simulator.h"

#include <limits>
#include <utility>

#include "base/logging.h"

namespace rio::des {

EventId
Simulator::scheduleAt(Nanos when, Callback cb)
{
    RIO_ASSERT(when >= now_, "scheduling into the past: when=", when,
               " now=", now_);
    RIO_ASSERT(cb, "scheduling a null callback");
    const EventId id = next_id_++;
    queue_.push(Event{when, next_seq_++, id, std::move(cb)});
    ++live_events_;
    return id;
}

EventId
Simulator::scheduleAfter(Nanos delay, Callback cb)
{
    return scheduleAt(now_ + delay, std::move(cb));
}

bool
Simulator::cancel(EventId id)
{
    // Lazy deletion: remember the id; skip it when popped.
    if (cancelled_.insert(id).second && live_events_ > 0) {
        --live_events_;
        return true;
    }
    return false;
}

bool
Simulator::popRunnable(Event &out, Nanos deadline)
{
    while (!queue_.empty()) {
        const Event &top = queue_.top();
        if (top.when > deadline)
            return false;
        if (cancelled_.erase(top.id)) {
            queue_.pop();
            continue;
        }
        out = top;
        queue_.pop();
        return true;
    }
    return false;
}

void
Simulator::run()
{
    runUntil(std::numeric_limits<Nanos>::max());
}

void
Simulator::runUntil(Nanos deadline)
{
    Event ev;
    while (popRunnable(ev, deadline)) {
        now_ = ev.when;
        --live_events_;
        ++events_run_;
        ev.cb();
    }
    if (now_ < deadline && deadline != std::numeric_limits<Nanos>::max())
        now_ = deadline;
}

void
Simulator::reset()
{
    queue_ = {};
    cancelled_.clear();
    now_ = 0;
    next_seq_ = 0;
    live_events_ = 0;
}

} // namespace rio::des
