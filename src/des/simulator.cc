#include "des/simulator.h"

#include <utility>

#include "base/logging.h"

namespace rio::des {

u32
Simulator::allocSlot()
{
    if (!free_slots_.empty()) {
        const u32 idx = free_slots_.back();
        free_slots_.pop_back();
        return idx;
    }
    slots_.emplace_back();
    return static_cast<u32>(slots_.size() - 1);
}

void
Simulator::freeSlot(u32 idx)
{
    Slot &s = slots_[idx];
    s.fn.clear();
    s.armed = false;
    ++s.gen; // old EventIds (and stale heap entries) stop matching
    free_slots_.push_back(idx);
}

EventId
Simulator::scheduleAt(Nanos when, Callback cb)
{
    RIO_ASSERT(when >= now_, "scheduling into the past: when=", when,
               " now=", now_);
    RIO_ASSERT(cb, "scheduling a null callback");
    const u32 idx = allocSlot();
    Slot &s = slots_[idx];
    s.fn = std::move(cb);
    s.armed = true;
    queue_.push(QEntry{when, next_seq_++, idx, s.gen});
    ++live_events_;
    return packId(idx, s.gen);
}

EventId
Simulator::scheduleAfter(Nanos delay, Callback cb)
{
    return scheduleAt(now_ + delay, std::move(cb));
}

bool
Simulator::cancel(EventId id)
{
    const u64 hi = id >> 32;
    if (hi == 0 || hi > slots_.size())
        return false;
    const u32 idx = static_cast<u32>(hi - 1);
    const u32 gen = static_cast<u32>(id);
    Slot &s = slots_[idx];
    if (!s.armed || s.gen != gen)
        return false; // already fired, cancelled, or pre-reset
    freeSlot(idx);
    --live_events_;
    ++stale_in_queue_; // its heap entry remains until popped/compacted
    compactIfStale();
    return true;
}

void
Simulator::compactIfStale()
{
    // Lazy deletion keeps cancel O(1), but a cancel-heavy workload
    // (1M armed-then-cancelled timers) must not keep dead heap
    // entries around forever: rebuild once they dominate.
    if (stale_in_queue_ < 64 || stale_in_queue_ * 2 < queue_.size())
        return;
    std::vector<QEntry> live;
    live.reserve(queue_.size() - stale_in_queue_);
    while (!queue_.empty()) {
        const QEntry &e = queue_.top();
        if (liveEntry(e))
            live.push_back(e);
        queue_.pop();
    }
    queue_ = std::priority_queue<QEntry, std::vector<QEntry>, Later>(
        Later{}, std::move(live));
    stale_in_queue_ = 0;
}

bool
Simulator::popRunnable(EventFn &fn, Nanos &when, Nanos deadline)
{
    while (!queue_.empty()) {
        const QEntry &top = queue_.top();
        if (!liveEntry(top)) {
            queue_.pop();
            --stale_in_queue_;
            continue;
        }
        if (top.when > deadline)
            return false;
        const u32 idx = top.slot;
        when = top.when;
        fn = std::move(slots_[idx].fn);
        queue_.pop();
        freeSlot(idx);
        return true;
    }
    return false;
}

Nanos
Simulator::nextEventTime()
{
    while (!queue_.empty()) {
        const QEntry &top = queue_.top();
        if (liveEntry(top))
            return top.when;
        queue_.pop();
        --stale_in_queue_;
    }
    return kNoEvent;
}

void
Simulator::run()
{
    runUntil(kNoEvent);
}

void
Simulator::runUntil(Nanos deadline)
{
    EventFn fn;
    Nanos when = 0;
    while (popRunnable(fn, when, deadline)) {
        now_ = when;
        --live_events_;
        ++events_run_;
        fn();
        fn.clear(); // release captures before the next pop
    }
    if (now_ < deadline && deadline != kNoEvent)
        now_ = deadline;
}

void
Simulator::reset()
{
    queue_ = {};
    for (u32 i = 0; i < slots_.size(); ++i)
        if (slots_[i].armed)
            freeSlot(i); // gen bump invalidates outstanding ids
    stale_in_queue_ = 0;
    now_ = 0;
    next_seq_ = 0;
    live_events_ = 0;
}

} // namespace rio::des
