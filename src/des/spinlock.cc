#include "des/spinlock.h"

#include <cmath>

#include "base/logging.h"

namespace rio::des {

Cycles
SimSpinlock::acquire(Core *core, cycles::CycleAccount *acct)
{
    RIO_ASSERT(!held_, "recursive acquire of SimSpinlock ", name_);
    held_ = true;
    ++stats_.acquisitions;
    if (!core)
        return 0;

    const Nanos now = core->virtualNow();
    if (now >= free_at_)
        return 0;

    // Spin until the previous critical section's virtual end. Charging
    // the wait advances the core's virtualNow() to (at least) the
    // grant time, so the critical section that follows is serialized
    // after the previous holder's in simulated time.
    const Nanos wait_ns = free_at_ - now;
    const Cycles wait = static_cast<Cycles>(
        std::ceil(static_cast<double>(wait_ns) * cost_.core_ghz));
    if (acct)
        acct->charge(cycles::Cat::kLockWait, wait);
    ++stats_.contended;
    stats_.wait_cycles += wait;
    return wait;
}

void
SimSpinlock::release(Core *core)
{
    RIO_ASSERT(held_, "release of unheld SimSpinlock ", name_);
    held_ = false;
    if (!core)
        return;
    const Nanos now = core->virtualNow();
    if (now > free_at_)
        free_at_ = now;
}

} // namespace rio::des
