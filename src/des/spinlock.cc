#include "des/spinlock.h"

#include <cmath>

#include "base/logging.h"
#include "obs/timeline.h"

namespace rio::des {

Cycles
SimSpinlock::acquire(Core *core, cycles::CycleAccount *acct)
{
    RIO_ASSERT(!held_, "recursive acquire of SimSpinlock ", name_);
    held_ = true;
    ++stats_.acquisitions;
    if (!core)
        return 0;

    const Nanos now = core->virtualNow();
    if (now >= free_at_) {
        obs_wait_.observe(0);
        return 0;
    }

    // Spin until the previous critical section's virtual end. Charging
    // the wait advances the core's virtualNow() to (at least) the
    // grant time, so the critical section that follows is serialized
    // after the previous holder's in simulated time.
    const Nanos wait_ns = free_at_ - now;
    const Cycles wait = static_cast<Cycles>(
        std::ceil(static_cast<double>(wait_ns) * cost_.core_ghz));
    if (acct)
        acct->charge(cycles::Cat::kLockWait, wait);
    ++stats_.contended;
    stats_.wait_cycles += wait;
    obs_wait_.observe(wait);
    obs::Event e;
    e.kind = obs::Ev::kLockAcquire;
    e.t = core->virtualNow(); // the charge above advanced it to grant
    e.dur_ns = free_at_ - now;
    e.arg = wait;
    e.pid = core->obsPid();
    e.tid = core->obsTid();
    obs::timeline().emit(e);
    return wait;
}

void
SimSpinlock::release(Core *core)
{
    RIO_ASSERT(held_, "release of unheld SimSpinlock ", name_);
    held_ = false;
    if (!core)
        return;
    const Nanos now = core->virtualNow();
    if (now > free_at_)
        free_at_ = now;
    obs::Event e;
    e.kind = obs::Ev::kLockRelease;
    e.t = now;
    e.pid = core->obsPid();
    e.tid = core->obsTid();
    obs::timeline().emit(e);
}

} // namespace rio::des
