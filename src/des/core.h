/**
 * @file
 * A simulated CPU core: a serial execution resource whose busy time
 * is derived from the cycles charged to its CycleAccount. This is the
 * heart of the paper's methodology (§3.3): end-to-end performance is
 * determined by how many cycles the *core* spends per packet, so the
 * simulation advances core time by exactly the charged cycles.
 */
#ifndef RIO_DES_CORE_H
#define RIO_DES_CORE_H

#include <deque>

#include "base/types.h"
#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"
#include "des/simulator.h"

namespace rio::des {

/**
 * Serial core. Work items are closures; a closure's duration is the
 * delta of the core's CycleAccount across its execution, converted at
 * the configured clock. Items queue FIFO when the core is busy
 * (interrupt handlers behind application work, etc.).
 */
class Core
{
  public:
    Core(Simulator &sim, const cycles::CostModel &cost)
        : sim_(sim), cost_(cost)
    {
    }

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    cycles::CycleAccount &acct() { return acct_; }
    const cycles::CycleAccount &acct() const { return acct_; }
    const cycles::CostModel &cost() const { return cost_; }

    /**
     * Enqueue @p fn to run on the core as soon as it is free. The
     * cycles @p fn charges extend the core's busy time.
     */
    void post(EventFn fn);

    /** Total cycles the core has been busy. */
    Cycles busyCycles() const { return busy_cycles_; }

    /**
     * The moment "now" from the executing work item's perspective:
     * its start time plus the cycles it has charged so far. Actions a
     * handler triggers mid-execution (a doorbell write, say) should
     * be timestamped with this, so that expensive driver work really
     * delays the device — essential for the latency results.
     */
    Nanos
    virtualNow() const
    {
        if (!in_item_)
            return sim_.now();
        const Cycles charged = acct_.total() - item_start_cycles_;
        return item_start_time_ +
               static_cast<Nanos>(static_cast<double>(charged) /
                                  cost_.core_ghz);
    }

    /** Earliest time the core is free again. */
    Nanos freeAt() const { return free_at_; }

    /** Work items executed. */
    u64 itemsRun() const { return items_run_; }

    /**
     * Timeline track of this core: (machine ordinal, core ordinal),
     * assigned by sys::Machine via obs::Timeline::allocPid(). Purely
     * observability — never read by simulation logic.
     */
    void
    setObsTrack(u16 pid, u16 tid)
    {
        obs_pid_ = pid;
        obs_tid_ = tid;
    }

    u16 obsPid() const { return obs_pid_; }
    u16 obsTid() const { return obs_tid_; }

    /**
     * Deterministic id for pairing async timeline spans (QI
     * issue→complete) emitted from this core's context: the track
     * identity in the high bits plus a core-confined counter. A core
     * lives on exactly one event lane, so unlike a shared atomic the
     * sequence depends only on simulation content — span ids, and
     * hence Chrome-trace output, are byte-identical across thread
     * counts. The 16-bit sequence wraps; ids only need to be unique
     * among *concurrent* spans of one core, so this is harmless.
     */
    u32
    nextSpanId()
    {
        return (static_cast<u32>(obs_pid_ & 0xff) << 24) |
               (static_cast<u32>(obs_tid_ & 0xff) << 16) |
               static_cast<u32>(++span_seq_ & 0xffff);
    }

    /**
     * Deterministic distributed-trace identity for an op injected on
     * this core: `(machine << 48) | (core << 40) | seq`, with the
     * sequence core-confined for the same thread-count-invariance
     * reason as nextSpanId(). 40 sequence bits never wrap in
     * practice; trace 0 is reserved for "no trace".
     */
    u64
    nextTraceId()
    {
        return (static_cast<u64>(obs_pid_) << 48) |
               (static_cast<u64>(obs_tid_ & 0xff) << 40) |
               (++trace_seq_ & 0xffffffffffULL);
    }

    /** Utilization over [t0, t1], given busy cycles at t0. */
    double
    utilization(Nanos t0, Nanos t1, Cycles busy_at_t0) const
    {
        if (t1 <= t0)
            return 0.0;
        const double busy_ns =
            static_cast<double>(busy_cycles_ - busy_at_t0) / cost_.core_ghz;
        return busy_ns / static_cast<double>(t1 - t0);
    }

  private:
    void scheduleNext();
    void runOne();

    Simulator &sim_;
    const cycles::CostModel &cost_;
    cycles::CycleAccount acct_;
    std::deque<EventFn> queue_;
    bool scheduled_ = false;
    bool in_item_ = false;
    Nanos item_start_time_ = 0;
    Cycles item_start_cycles_ = 0;
    Nanos free_at_ = 0;
    Cycles busy_cycles_ = 0;
    u64 items_run_ = 0;
    u16 obs_pid_ = 0;
    u16 obs_tid_ = 0;
    u32 span_seq_ = 0;
    u64 trace_seq_ = 0;
};

} // namespace rio::des

#endif // RIO_DES_CORE_H
