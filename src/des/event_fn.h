/**
 * @file
 * EventFn: a move-only callable with small-buffer optimization, the
 * event-payload type of the DES hot path. The old kernel stored every
 * scheduled callback in a std::function, which heap-allocates for any
 * capture larger than two pointers and drags its copy machinery
 * through the priority queue; EventFn keeps captures up to
 * kInlineBytes in-place (covering every scheduler callback in the
 * tree) and falls back to one heap cell only beyond that.
 *
 * Deliberately tiny API: construct from any void() callable, move,
 * invoke, test for emptiness. No copies — an event fires once.
 */
#ifndef RIO_DES_EVENT_FN_H
#define RIO_DES_EVENT_FN_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rio::des {

class EventFn
{
  public:
    /** Captures up to this many bytes stay inline (no allocation). */
    static constexpr size_t kInlineBytes = 56;

    EventFn() = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, EventFn> &&
                  std::is_invocable_r_v<void, D &>>>
    EventFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        if constexpr (sizeof(D) <= kInlineBytes &&
                      alignof(D) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<D>) {
            ::new (buf_) D(std::forward<F>(f));
            ops_ = &inlineOps<D>;
        } else {
            *reinterpret_cast<D **>(buf_) = new D(std::forward<F>(f));
            ops_ = &heapOps<D>;
        }
    }

    EventFn(EventFn &&o) noexcept { moveFrom(o); }

    EventFn &
    operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            destroy();
            moveFrom(o);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { destroy(); }

    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Drop the stored callable (empty afterwards). */
    void
    clear()
    {
        destroy();
        ops_ = nullptr;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*move_to)(void *src, void *dst) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename D>
    static void
    inlineInvoke(void *p)
    {
        (*std::launder(reinterpret_cast<D *>(p)))();
    }
    template <typename D>
    static void
    inlineMoveTo(void *src, void *dst) noexcept
    {
        D *s = std::launder(reinterpret_cast<D *>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
    }
    template <typename D>
    static void
    inlineDestroy(void *p) noexcept
    {
        std::launder(reinterpret_cast<D *>(p))->~D();
    }

    template <typename D>
    static void
    heapInvoke(void *p)
    {
        (**reinterpret_cast<D **>(p))();
    }
    template <typename D>
    static void
    heapMoveTo(void *src, void *dst) noexcept
    {
        *reinterpret_cast<D **>(dst) = *reinterpret_cast<D **>(src);
    }
    template <typename D>
    static void
    heapDestroy(void *p) noexcept
    {
        delete *reinterpret_cast<D **>(p);
    }

    template <typename D>
    static constexpr Ops inlineOps = {&inlineInvoke<D>, &inlineMoveTo<D>,
                                      &inlineDestroy<D>};
    template <typename D>
    static constexpr Ops heapOps = {&heapInvoke<D>, &heapMoveTo<D>,
                                    &heapDestroy<D>};

    void
    destroy() noexcept
    {
        if (ops_)
            ops_->destroy(buf_);
    }

    void
    moveFrom(EventFn &o) noexcept
    {
        ops_ = o.ops_;
        if (ops_)
            ops_->move_to(o.buf_, buf_);
        o.ops_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace rio::des

#endif // RIO_DES_EVENT_FN_H
