#include "des/core.h"

#include <utility>

#include "base/logging.h"

namespace rio::des {

void
Core::post(EventFn fn)
{
    RIO_ASSERT(fn, "posting null work");
    queue_.push_back(std::move(fn));
    if (!scheduled_)
        scheduleNext();
}

void
Core::scheduleNext()
{
    if (queue_.empty())
        return;
    scheduled_ = true;
    const Nanos start = std::max(sim_.now(), free_at_);
    sim_.scheduleAt(start, [this] { runOne(); });
}

void
Core::runOne()
{
    RIO_ASSERT(!queue_.empty(), "core woke with no work");
    auto fn = std::move(queue_.front());
    queue_.pop_front();

    in_item_ = true;
    item_start_time_ = sim_.now();
    item_start_cycles_ = acct_.total();
    const Cycles before = acct_.total();
    fn();
    in_item_ = false;
    const Cycles spent = acct_.total() - before;
    busy_cycles_ += spent;
    ++items_run_;
    // The work completes after its charged duration; follow-up items
    // start no earlier.
    free_at_ = sim_.now() +
               static_cast<Nanos>(static_cast<double>(spent) /
                                  cost_.core_ghz);
    scheduled_ = false;
    scheduleNext();
}

} // namespace rio::des
