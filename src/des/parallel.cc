#include "des/parallel.h"

#include <algorithm>
#include <utility>

#include "base/logging.h"
#include "obs/trace_ctx.h"

namespace rio::des {

void
Lane::sendTo(Lane &dst, Nanos when, Simulator::Callback fn)
{
    RIO_ASSERT(fn, "sending null mail");
    const u64 seq = send_seq_++;
    // Capture the sender's trace context so the receiving lane's
    // callback — and every event it emits — attributes to the same
    // distributed op. Host-side metadata only.
    const u64 trace = obs::currentTrace();
    std::lock_guard<std::mutex> g(dst.inbox_mu_);
    dst.inbox_.push_back(Mail{when, id_, seq, trace, std::move(fn)});
}

Nanos
Lane::earliestMail()
{
    std::lock_guard<std::mutex> g(inbox_mu_);
    Nanos t = Simulator::kNoEvent;
    for (const Mail &m : inbox_)
        t = std::min(t, m.when);
    return t;
}

void
Lane::drainInbox()
{
    std::vector<Mail> mail;
    {
        std::lock_guard<std::mutex> g(inbox_mu_);
        mail.swap(inbox_);
    }
    if (mail.empty())
        return;
    // Total order fixed by simulation content, not thread timing:
    // timestamp, then sending lane, then the sender's own sequence.
    std::sort(mail.begin(), mail.end(),
              [](const Mail &a, const Mail &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.seq < b.seq;
              });
    for (Mail &m : mail) {
        // The conservative invariant: drains happen at window
        // barriers, where this lane's clock sits exactly at the end
        // of the last window it ran. Mail sent inside that window
        // from an event at t >= window start carries
        // when = t + wire >= start + lookahead = window end, so
        // when >= now() holds (with equality exactly in the
        // wire == lookahead boundary case). Anything earlier means
        // the wire undercut the configured lookahead.
        RIO_ASSERT(m.when >= sim_.now(),
                   "cross-lane message in the past: when=", m.when,
                   " lane now=", sim_.now(),
                   " (wire latency below engine lookahead?)");
        if (m.trace == 0) {
            sim_.scheduleAt(m.when, std::move(m.fn));
        } else {
            // Re-establish the sender's trace context around the
            // delivery so cross-lane hops keep the op attribution.
            sim_.scheduleAt(m.when,
                            [t = m.trace, fn = std::move(m.fn)]() mutable {
                                obs::TraceScope scope(t);
                                fn();
                            });
        }
        ++mail_delivered_;
    }
}

ParallelEngine::ParallelEngine(unsigned threads)
    : threads_(threads == 0 ? 1 : threads)
{
}

ParallelEngine::~ParallelEngine()
{
    if (pool_.empty())
        return;
    {
        std::lock_guard<std::mutex> g(pool_mu_);
        stopping_ = true;
    }
    cv_work_.notify_all();
    for (std::thread &t : pool_)
        t.join();
}

Lane &
ParallelEngine::addLane()
{
    lanes_.push_back(
        std::make_unique<Lane>(static_cast<u32>(lanes_.size())));
    return *lanes_.back();
}

Nanos
ParallelEngine::nextTime()
{
    Nanos next = Simulator::kNoEvent;
    for (auto &l : lanes_) {
        next = std::min(next, l->sim().nextEventTime());
        next = std::min(next, l->earliestMail());
    }
    return next;
}

void
ParallelEngine::laneWindow(Lane &lane, Nanos window_end)
{
    // No inbox access here: mail is delivered only at the barrier in
    // runWindow(), while every lane is quiescent. Draining from
    // inside the window would race with concurrent senders — mail
    // timestamped exactly at the horizon (wire == lookahead) would
    // land in the current or the next drain batch depending on
    // thread scheduling, perturbing the (when, src, seq) order.
    lane.sim().runUntil(window_end);
}

void
ParallelEngine::startPoolOnce()
{
    if (!pool_.empty() || threads_ <= 1)
        return;
    pool_.reserve(threads_ - 1);
    for (unsigned i = 0; i + 1 < threads_; ++i)
        pool_.emplace_back([this] { workerLoop(); });
}

void
ParallelEngine::workerLoop()
{
    u64 seen = 0;
    for (;;) {
        Nanos window_end;
        {
            std::unique_lock<std::mutex> g(pool_mu_);
            cv_work_.wait(g, [&] {
                return stopping_ || generation_ != seen;
            });
            if (stopping_)
                return;
            seen = generation_;
            window_end = window_end_;
        }
        for (;;) {
            const size_t i =
                next_lane_.fetch_add(1, std::memory_order_relaxed);
            if (i >= lanes_.size())
                break;
            laneWindow(*lanes_[i], window_end);
        }
        {
            std::lock_guard<std::mutex> g(pool_mu_);
            ++workers_done_;
        }
        cv_done_.notify_one();
    }
}

void
ParallelEngine::runWindow(Nanos window_end)
{
    ++rounds_;
    // Deliver all queued mail before any lane starts the window.
    // Every lane is quiescent at this point (between windows), so no
    // sendTo can race the drain: each message is scheduled in exactly
    // one deterministic batch — the barrier following the window that
    // sent it — and the per-lane drain order (ascending lane index on
    // this one thread) fixes the receiving simulators' FIFO sequence
    // numbers independent of thread count or scheduling.
    for (auto &l : lanes_)
        l->drainInbox();
    if (threads_ <= 1 || lanes_.size() <= 1) {
        for (auto &l : lanes_)
            laneWindow(*l, window_end);
        return;
    }
    startPoolOnce();
    {
        std::lock_guard<std::mutex> g(pool_mu_);
        window_end_ = window_end;
        workers_done_ = 0;
        next_lane_.store(0, std::memory_order_relaxed);
        ++generation_;
    }
    cv_work_.notify_all();
    // The caller is a worker too.
    for (;;) {
        const size_t i = next_lane_.fetch_add(1, std::memory_order_relaxed);
        if (i >= lanes_.size())
            break;
        laneWindow(*lanes_[i], window_end);
    }
    std::unique_lock<std::mutex> g(pool_mu_);
    cv_done_.wait(g, [&] { return workers_done_ == pool_.size(); });
}

void
ParallelEngine::run()
{
    runUntil(Simulator::kNoEvent);
}

void
ParallelEngine::runUntil(Nanos deadline)
{
    for (;;) {
        const Nanos next = nextTime();
        if (next == Simulator::kNoEvent || next > deadline)
            break;
        // Conservative horizon; saturate instead of wrapping so an
        // "infinite" lookahead or a late event cannot overflow.
        Nanos horizon = Simulator::kNoEvent;
        if (lookahead_ != Simulator::kNoEvent &&
            next <= Simulator::kNoEvent - lookahead_)
            horizon = next + lookahead_;
        else if (lookahead_ != Simulator::kNoEvent)
            horizon = Simulator::kNoEvent;
        runWindow(std::min(horizon, deadline));
    }
    if (deadline != Simulator::kNoEvent) {
        // No runnable work remains before the deadline; advance every
        // lane's clock to it (same contract as Simulator::runUntil).
        for (auto &l : lanes_)
            l->sim().runUntil(deadline);
    }
}

u64
ParallelEngine::eventsRun() const
{
    u64 n = 0;
    for (const auto &l : lanes_)
        n += l->sim().eventsRun();
    return n;
}

u64
ParallelEngine::messagesDelivered() const
{
    u64 n = 0;
    for (const auto &l : lanes_)
        n += l->mailDelivered();
    return n;
}

} // namespace rio::des
