/**
 * @file
 * Conservative parallel discrete-event engine: N independent event
 * lanes (one Simulator each, one sys::Machine per lane in practice)
 * driven by a pool of real threads, synchronized only at lookahead
 * horizons.
 *
 * The classic conservative argument (Chandy/Misra lookahead): pick
 * horizon = (earliest pending event across all lanes) + lookahead,
 * where lookahead is a lower bound on cross-lane latency (the wire).
 * Every event that fires inside the window does so at t >= the global
 * minimum, so any message it sends lands at t + wire >= horizon —
 * strictly outside the window. Lanes therefore run the whole window
 * in parallel without ever seeing a message from the "future", and
 * messages are exchanged only at the barrier between windows.
 *
 * Determinism: runs are byte-identical regardless of thread count.
 *  - within a window a lane is plain single-threaded Simulator code;
 *  - the horizon sequence depends only on event timestamps, never on
 *    which thread ran what;
 *  - mailboxes are drained only at window barriers, on the one
 *    calling thread, while every lane is quiescent — so a message
 *    sent during window W is scheduled in exactly one batch (the
 *    W -> W+1 barrier) no matter how threads interleaved inside W.
 *    This matters at the boundary: with wire == lookahead a message
 *    lands exactly on the horizon, and an in-window drain would
 *    deliver it in the current or next window depending on timing;
 *  - each barrier batch is sorted by (when, src lane, sender seq) — a
 *    total order fixed by the simulation itself — so the FIFO
 *    tie-break seq numbers each lane assigns to delivered messages
 *    are reproducible.
 * This is enforced by tests (parallel_test) and by the golden
 * selfperf ctest (--threads 1 vs 4 byte-identical bench JSON).
 *
 * Lookahead defaults to "infinite" (kNoEvent): lanes that never talk
 * (a parameter sweep: one independent run per lane) need exactly one
 * window. Coupled lanes (machines on a wire) must set lookahead <=
 * the minimum wire latency before the first send.
 */
#ifndef RIO_DES_PARALLEL_H
#define RIO_DES_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/types.h"
#include "des/simulator.h"

namespace rio::des {

class ParallelEngine;

/**
 * One event lane: a Simulator plus a timestamped inbox for messages
 * from other lanes. All simulation state driven by this lane's
 * events must be touched only from its callbacks; the inbox is the
 * sole cross-thread handoff.
 */
class Lane
{
  public:
    explicit Lane(u32 id) : id_(id) {}

    Lane(const Lane &) = delete;
    Lane &operator=(const Lane &) = delete;

    u32 id() const { return id_; }
    Simulator &sim() { return sim_; }
    const Simulator &sim() const { return sim_; }

    /**
     * Post @p fn to run on @p dst at absolute time @p when — the wire
     * crossing. Called from within this lane's event callbacks only;
     * @p when must be >= the current window's horizon (guaranteed by
     * construction when the wire latency is >= the engine lookahead,
     * asserted at delivery).
     */
    void sendTo(Lane &dst, Nanos when, Simulator::Callback fn);

    /** Messages this lane has received and scheduled. */
    u64 mailDelivered() const { return mail_delivered_; }

  private:
    friend class ParallelEngine;

    struct Mail
    {
        Nanos when;
        u32 src;
        u64 seq;   //!< sender-assigned, monotone per sender
        u64 trace; //!< sender's trace context, restored at delivery
        Simulator::Callback fn;
    };

    /** Earliest queued mail timestamp, kNoEvent if none. */
    Nanos earliestMail();

    /**
     * Schedule all queued mail into the simulator, sorted by
     * (when, src, seq) so delivery order — and hence the receiving
     * simulator's FIFO tie-break numbering — is independent of
     * thread interleaving. Called by the engine only at window
     * barriers (all lanes quiescent), never while a window runs.
     */
    void drainInbox();

    u32 id_;
    Simulator sim_;
    u64 send_seq_ = 0; //!< touched only by this lane's thread
    u64 mail_delivered_ = 0;
    std::mutex inbox_mu_;
    std::vector<Mail> inbox_;
};

/**
 * Drives N lanes over a persistent thread pool. Single-use pattern:
 * construct, addLane() repeatedly (main thread, before running),
 * run()/runUntil(). threads=1 runs every window inline on the
 * calling thread with zero pool machinery — the reference ordering
 * the threaded path must reproduce.
 */
class ParallelEngine
{
  public:
    /** @p threads total workers including the caller (min 1). */
    explicit ParallelEngine(unsigned threads = 1);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /** Create the next lane (ids are dense, in creation order). */
    Lane &addLane();

    Lane &lane(size_t i) { return *lanes_[i]; }
    size_t laneCount() const { return lanes_.size(); }
    unsigned threads() const { return threads_; }

    /**
     * Conservative window size: a lower bound on the latency of any
     * cross-lane message. Must be set (finite) before the first
     * sendTo; uncoupled lanes keep the kNoEvent default and finish
     * in one window.
     */
    void setLookahead(Nanos l) { lookahead_ = l; }
    Nanos lookahead() const { return lookahead_; }

    /** Run until every lane is idle and all mail is delivered. */
    void run();

    /** Run until simulated time @p deadline (every lane's clock ends
     * at @p deadline, like Simulator::runUntil). */
    void runUntil(Nanos deadline);

    // ---- introspection (read after run; summed at barriers) ------------
    /** Horizon windows executed. */
    u64 rounds() const { return rounds_; }

    /** Events run across all lanes. */
    u64 eventsRun() const;

    /** Cross-lane messages delivered across all lanes. */
    u64 messagesDelivered() const;

  private:
    /** Earliest pending work (event or queued mail) across lanes. */
    Nanos nextTime();

    /** Deliver queued mail (barrier; all lanes quiescent), then run
     * one window [.., @p window_end] across all lanes. */
    void runWindow(Nanos window_end);

    /** Lane body for one window: run events up to the horizon. */
    static void laneWindow(Lane &lane, Nanos window_end);

    void startPoolOnce();
    void workerLoop();

    unsigned threads_;
    Nanos lookahead_ = Simulator::kNoEvent;
    std::vector<std::unique_ptr<Lane>> lanes_;
    u64 rounds_ = 0;

    // ---- pool state (created lazily on the first threaded run) ---------
    std::vector<std::thread> pool_;
    std::mutex pool_mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    u64 generation_ = 0;    //!< bumps once per window
    Nanos window_end_ = 0;  //!< the window the pool is running
    size_t workers_done_ = 0;
    bool stopping_ = false;
    std::atomic<size_t> next_lane_{0}; //!< work-stealing claim index
};

} // namespace rio::des

#endif // RIO_DES_PARALLEL_H
