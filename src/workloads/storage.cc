#include "workloads/storage.h"

#include <algorithm>
#include <functional>

#include "base/logging.h"
#include "base/rng.h"
#include "dma/dma_context.h"
#include "des/core.h"

namespace rio::workloads {

RunResult
runStorage(dma::ProtectionMode mode, const StorageParams &params,
           const cycles::CostModel &cost)
{
    des::Simulator sim;
    dma::DmaContext ctx(cost);
    des::Core core(sim, cost);
    auto handle =
        ctx.makeHandle(mode, iommu::Bdf{0, 6, 0}, &core.acct(),
                       nvme::NvmeDevice::riommuRingSizes(params.device));
    nvme::NvmeDevice ssd(sim, core, ctx.memory(), *handle, params.device);
    ssd.bringUp();
    Rng rng(params.seed);

    // One staging buffer per queue slot.
    const u32 block = params.device.block_bytes;
    std::vector<PhysAddr> buffers;
    for (u32 i = 0; i < params.queue_depth; ++i)
        buffers.push_back(ctx.memory().allocContiguous(block));

    u64 submitted = 0;
    u64 done = 0;
    u64 next_lba = 0;
    const u64 total = params.warmup_ios + params.measure_ios;

    Nanos t_start = 0, t_end = 0;
    Cycles busy_start = 0, busy_end = 0;
    cycles::CycleAccount acct_start, acct_end;
    bool started = false, stopped = false;

    std::function<void()> pump = [&] {
        while (!stopped && submitted < total && ssd.submitSpace() > 0 &&
               submitted - done < params.queue_depth) {
            core.acct().charge(cycles::Cat::kProcessing,
                               params.per_io_cycles);
            const bool is_write = rng.chance(params.write_fraction);
            const u64 lba = params.sequential
                                ? next_lba++
                                : rng.below(1 << 20);
            auto cid =
                ssd.submit(is_write ? nvme::Opcode::kWrite
                                    : nvme::Opcode::kRead,
                           lba, 1,
                           buffers[submitted % params.queue_depth]);
            RIO_ASSERT(cid.isOk(), "submit failed: ",
                       cid.status().toString());
            ++submitted;
        }
    };
    ssd.setCompletionCallback([&](u32, Status s) {
        RIO_ASSERT(s.isOk(), "I/O failed: ", s.toString());
        ++done;
        if (!started && done >= params.warmup_ios) {
            started = true;
            t_start = sim.now();
            busy_start = core.busyCycles();
            acct_start = core.acct();
        }
        if (started && !stopped && done >= total) {
            stopped = true;
            t_end = sim.now();
            busy_end = core.busyCycles();
            acct_end = core.acct();
            return;
        }
        pump();
    });
    core.post(pump);
    sim.run();
    RIO_ASSERT(stopped, "storage run ended early at ", done, " I/Os");

    RunResult r;
    r.duration_s = static_cast<double>(t_end - t_start) * 1e-9;
    r.transactions = params.measure_ios;
    r.transactions_per_sec =
        static_cast<double>(r.transactions) / r.duration_s;
    r.throughput_gbps = r.transactions_per_sec * block * 8 / 1e9;
    r.acct = acct_end.since(acct_start);
    r.cpu = std::min(1.0, static_cast<double>(busy_end - busy_start) /
                              cost.core_ghz /
                              static_cast<double>(t_end - t_start));
    r.cycles_per_packet = static_cast<double>(r.acct.total()) /
                          static_cast<double>(r.transactions);
    return r;
}

} // namespace rio::workloads
