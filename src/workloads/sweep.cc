#include "workloads/sweep.h"

#include <memory>

#include "des/parallel.h"

namespace rio::workloads {

namespace {

/**
 * The common shape of both sweeps: add one lane per job, construct
 * the runs sequentially on the calling thread (machine construction
 * registers metrics and timeline pids — keeping that on one thread
 * keeps registration order deterministic), let the engine execute,
 * then collect in job order.
 */
template <typename Job, typename Run>
std::vector<RunResult>
runJobs(const std::vector<Job> &jobs, unsigned threads)
{
    des::ParallelEngine eng(threads);
    std::vector<std::unique_ptr<Run>> runs;
    runs.reserve(jobs.size());
    for (const Job &job : jobs) {
        des::Lane &lane = eng.addLane();
        runs.push_back(std::make_unique<Run>(lane.sim(), job.mode,
                                             job.profile, job.params,
                                             job.cost));
    }
    eng.run();
    std::vector<RunResult> results;
    results.reserve(runs.size());
    for (auto &run : runs)
        results.push_back(run->collect());
    return results;
}

} // namespace

std::vector<RunResult>
runStreamJobs(const std::vector<StreamJob> &jobs, unsigned threads)
{
    return runJobs<StreamJob, StreamRun>(jobs, threads);
}

std::vector<RunResult>
runRrJobs(const std::vector<RrJob> &jobs, unsigned threads)
{
    return runJobs<RrJob, RrRun>(jobs, threads);
}

} // namespace rio::workloads
