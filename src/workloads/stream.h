/**
 * @file
 * Netperf TCP stream model (§5.1): the measured host pushes
 * MSS-sized segments of 16 KB messages as fast as its core can, the
 * remote end sinks them and returns ACKs. Throughput is CPU-bound
 * unless the NIC's line rate caps it first (the brcm regime).
 */
#ifndef RIO_WORKLOADS_STREAM_H
#define RIO_WORKLOADS_STREAM_H

#include <memory>

#include "dma/fault.h"
#include "dma/protection_mode.h"
#include "nic/profile.h"
#include "trace/trace.h"
#include "virt/platform.h"
#include "workloads/result.h"

namespace rio::des {
class Simulator;
}

namespace rio::workloads {

/** Parameters of a Netperf-stream run. */
struct StreamParams
{
    /** Data packets in the measurement window / the warmup. */
    u64 measure_packets = 60000;
    u64 warmup_packets = 15000;
    /** Netperf's default message size; segmented at the MSS. */
    u32 message_bytes = 16384;
    /** Remote ACKs every N data packets (delayed-ACK style). */
    u32 ack_every = 2;
    u32 ack_payload = 4;
    /**
     * Per-data-packet protocol cost on the core (TCP/IP, syscalls,
     * interrupt share) — the "other" bar of Figure 7, calibrated so
     * that the none mode reproduces the paper's C_none.
     */
    Cycles per_packet_cycles = 1516;
    /** Rx-stack cost of processing one ACK. */
    Cycles per_ack_cycles = 600;
    /** Optional DMA trace capture (§5.4). */
    trace::DmaTrace *trace = nullptr;
    /**
     * Deterministic DMA fault injection (0 = off). Armed after
     * bring-up so initialization is always clean; faulted Tx packets
     * are lost on the wire, faulted Rx packets are dropped.
     */
    double fault_rate = 0.0;
    u64 fault_seed = 1;
    dma::FaultPolicy fault_policy = dma::FaultPolicy::kRetryRemap;
    /**
     * Surprise-unplug/replug churn (events/ms of virtual time, 0 =
     * off). Events hit mid-burst; the NIC comes back after
     * churn_down_ns and the run still reaches its packet target.
     */
    double churn_per_ms = 0.0;
    u64 churn_seed = 1;
    Nanos churn_down_ns = 20000;
    /**
     * Execution platform: bare metal, or a guest VM under one of the
     * three vIOMMU strategies (DESIGN.md §10). The guest wraps the
     * measured machine before bring-up, so registration hypercalls
     * and init-time traps land outside the measurement window.
     */
    virt::Platform platform = virt::Platform::kBare;

    /** Back guest memory with 2 MB stage-2 leaves (nested ablation;
     * ignored on bare metal). */
    bool huge_stage2 = false;
};

/** Calibrated parameters for a NIC profile (see workloads/calibrate.cc). */
StreamParams streamParamsFor(const nic::NicProfile &profile);

/**
 * A Netperf-stream run split into setup and collection so the
 * simulator can be driven externally — in particular by a
 * des::ParallelEngine lane (workloads/sweep.h). The constructor
 * builds the machine, arms fault/churn injection, wires every
 * callback, and posts the first pump event; it does NOT run the
 * simulation. After the caller has driven @p sim to completion
 * (sim.run(), or an engine running the owning lane), collect()
 * validates the run reached its packet target and computes the
 * window metrics.
 *
 * The run owns copies of the profile, params, and cost model: the
 * machine keeps a reference to the cost model for its whole life,
 * and a sweep constructs runs long before the engine fires them.
 */
class StreamRun
{
  public:
    StreamRun(des::Simulator &sim, dma::ProtectionMode mode,
              const nic::NicProfile &profile, const StreamParams &params,
              const cycles::CostModel &cost = cycles::defaultCostModel());
    ~StreamRun();
    StreamRun(const StreamRun &) = delete;
    StreamRun &operator=(const StreamRun &) = delete;

    /** Window metrics; asserts the run reached its packet target. */
    RunResult collect();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Run Netperf stream under @p mode and return window metrics. */
RunResult runStream(dma::ProtectionMode mode,
                    const nic::NicProfile &profile,
                    const StreamParams &params,
                    const cycles::CostModel &cost =
                        cycles::defaultCostModel());

} // namespace rio::workloads

#endif // RIO_WORKLOADS_STREAM_H
