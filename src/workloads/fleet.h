/**
 * @file
 * Fleet workload: the scale-out RDMA traffic generator behind
 * bench_cluster_rdma. Every machine of a sys::Cluster runs a closed
 * loop of RDMA writes/reads over its established QPs — connection
 * choice Zipf-skewed (a few hot peers, a long tail), request sizes
 * Zipf over a small ladder, optional synchronized incast bursts into
 * machine 0 and optional connection churn (teardown + reconnect).
 *
 * The knob that stresses the rDEVICE table is `connections`: at 64
 * QPs a completion-poll batch concentrates on few rings, so rIOMMU's
 * end-of-burst invalidation amortizes like the paper's single-NIC
 * netperf; at 16K QPs nearly every completion is its ring's last and
 * every op eats a full invalidation + descriptor fetch — the erosion
 * the bench quantifies, and the regime the two-level rDEVICE cache
 * (riommu::RdCacheConfig) is meant to rescue.
 *
 * Determinism: all decisions are lane-local draws from per-machine
 * Rng streams seeded from params.seed + machine id; results are
 * byte-identical for any Cluster thread count.
 */
#ifndef RIO_WORKLOADS_FLEET_H
#define RIO_WORKLOADS_FLEET_H

#include "obs/slo.h"
#include "riommu/riommu.h"
#include "riommu/riotlb.h"
#include "sys/cluster.h"

namespace rio::workloads {

/** Traffic knobs of one fleet run (cluster shape lives in
 * sys::ClusterConfig). */
struct FleetParams
{
    /** Target QPs per machine, initiated + accepted; each machine
     * initiates half, round-robin over its peers. The cluster's
     * max_qps must leave headroom (fleetMaxQps). */
    u32 connections = 64;

    double zipf_theta = 0.99; //!< skew of the connection choice
    double read_fraction = 0.25;
    u32 credits = 8; //!< closed-loop outstanding ops per machine

    /** Request-size ladder, Zipf-weighted smallest-first (RPC-heavy
     * traffic: mostly small, a tail of bulk). Sizes must be <= the
     * profile's max_req_bytes. */
    std::vector<u32> sizes = {64, 256, 1024, 2048};
    double size_zipf_theta = 1.2;

    u64 warmup_ops = 200;   //!< per machine, before the window opens
    u64 measure_ops = 2000; //!< per machine, inside the window

    /** Every @p incast_period_ops completions, burst @p incast_burst
     * max-size writes at machine 0 (0 = off). */
    u32 incast_period_ops = 0;
    u32 incast_burst = 0;

    /** Every @p churn_period_ops completions, tear one QP down and
     * reconnect it (0 = off) — the fuzz campaign's lifecycle lever. */
    u32 churn_period_ops = 0;

    /** Fraction of churn events that hard-abort the QP (app death:
     * RdmaNic::abortQp) instead of draining gracefully. Aborted QPs
     * strand their in-flight data on the wire — the bulk source of
     * late arrivals at a dead QP. Needs the reliability layer. */
    double churn_abort_fraction = 0.0;

    /** Driver policy when a QP blows its retry budget (hostile wire
     * only; errors cannot happen on the lossless wire). */
    enum class QpErrorPolicy { kAbort, kReconnect };
    QpErrorPolicy qp_error_policy = QpErrorPolicy::kReconnect;

    u64 seed = 1;
};

/** QP slots a Cluster must provision for these params. */
u32 fleetMaxQps(const FleetParams &params, unsigned machines);

/** Aggregate outcome of a fleet run (summed over machines). */
struct FleetReport
{
    u64 measured_ops = 0; //!< completions inside the windows
    u64 total_ops = 0;    //!< completions overall
    Cycles measured_cycles = 0; //!< core cycles inside the windows
    double cycles_per_op = 0;

    u64 posts = 0;
    u64 posts_blocked = 0;
    u64 comp_errors = 0;
    u64 remote_faults = 0;
    u64 local_fault_drops = 0;
    u64 connects = 0;
    u64 teardowns = 0;
    u64 eob_unmaps = 0;
    u64 completions = 0;
    /** Completions per end-of-burst invalidation — the amortization
     * factor whose collapse toward 1.0 is the erosion itself. */
    double avg_burst = 0;

    riommu::RiotlbStats riotlb;   //!< summed (riommu modes only)
    riommu::RdCacheStats rdcache; //!< summed (riommu modes only)

    /** Reliability-layer counters (all zero on a lossless wire). */
    u64 retransmits = 0;
    u64 rto_fires = 0;
    u64 nak_seq = 0; //!< sequence NAKs received by requesters
    u64 qp_errors = 0;
    u64 qp_error_recovered = 0;
    u64 late_arrivals = 0; //!< data for a dead/rebound QP
    u64 late_faulted = 0;  //!< ... stopped by the target IOMMU
    u64 late_landed = 0;   //!< ... that wrote memory (stale window)

    /** Hostile-wire port counters (all zero when the wire is unarmed). */
    u64 wire_drops = 0;
    u64 wire_dups = 0;
    u64 wire_delays = 0;
    u64 wire_congestion_drops = 0;
    u64 wire_peak_queue = 0;

    /** Op latency distribution (post → CQE, every completed op). */
    Nanos p50_latency_ns = 0;
    Nanos p99_latency_ns = 0;

    /** Exact tail report over the per-op SLO records, merged across
     * machines in machine order. Valid only when obs::sloRecording()
     * was on for the run (`--slo`). */
    bool slo_valid = false;
    obs::SloReport slo;

    Nanos end_ns = 0; //!< virtual time when the cluster went idle

    bool leaks_clean = true; //!< post-quiesce audit of every machine
};

/**
 * Drive @p cluster with the fleet load until every machine finishes
 * its measurement window, then quiesce and leak-check. The cluster
 * must be freshly constructed (bringUp is called here).
 */
FleetReport runFleet(sys::Cluster &cluster, const FleetParams &params);

} // namespace rio::workloads

#endif // RIO_WORKLOADS_FLEET_H
