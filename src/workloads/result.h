/**
 * @file
 * Result record shared by all workload drivers — the quantities the
 * paper's evaluation reports: throughput, transactions/latency, CPU
 * consumption and the cycles-per-packet breakdown (Figure 7 /
 * Table 1 categories).
 */
#ifndef RIO_WORKLOADS_RESULT_H
#define RIO_WORKLOADS_RESULT_H

#include "cycles/cycle_account.h"
#include "dma/fault.h"
#include "nic/nic.h"

namespace rio::workloads {

/** Measurement-window results of one workload run. */
struct RunResult
{
    double duration_s = 0;
    u64 tx_packets = 0;
    u64 rx_packets = 0;
    u64 tx_payload_bytes = 0;
    u64 transactions = 0;

    /** Payload goodput in Gbps over the window. */
    double throughput_gbps = 0;
    /** Requests (or RR transactions) per second. */
    double transactions_per_sec = 0;
    /** Core utilization in [0, 1]. */
    double cpu = 0;
    /** Average core cycles per transmitted packet (Figure 7's C). */
    double cycles_per_packet = 0;
    /** Average completion-burst length (the paper observes ~200). */
    double avg_unmap_burst = 0;

    /** Per-category cycle deltas over the window (Table 1 rows). */
    cycles::CycleAccount acct;
    /** NIC counter deltas over the window. */
    nic::NicStats nic;
    /**
     * Fault-injection/recovery counters of the measured machine over
     * the whole run (injection arms after bring-up, so warmup faults
     * are included; zero everywhere when injection is off).
     */
    dma::FaultStats fault;

    /** Lifecycle-churn counters over the whole run (all zero when
     * churn is off). */
    u64 surprise_unplugs = 0;
    u64 replugs = 0;
    u64 detach_faults = 0;

    /** vmexits the measured core took inside the window (zero on
     * bare metal; boot-time hypercalls precede the window). */
    u64 vm_exits = 0;

    /** (r)IOTLB-miss walks over the whole run and the combined
     * stage-1 + stage-2 memory references they cost — device-side
     * latency (uncharged to the core), the huge-page stage-2
     * ablation's metric. */
    u64 walks = 0;
    u64 walk_mem_refs = 0;
};

/** a - b, field-wise, for NIC counter windows. */
nic::NicStats statsDelta(const nic::NicStats &a, const nic::NicStats &b);

} // namespace rio::workloads

#endif // RIO_WORKLOADS_RESULT_H
