#include "workloads/scaling.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "base/logging.h"
#include "net/packet.h"
#include "sys/machine.h"

namespace rio::workloads {

namespace {

/** Window snapshot of one flow's core + NIC. */
struct Snapshot
{
    Nanos t = 0;
    Cycles busy = 0;
    cycles::CycleAccount acct;
    nic::NicStats nic;
};

/** Driver state of one flow (heap-allocated: callbacks keep
 * pointers). */
struct Flow
{
    unsigned idx = 0;
    bool started = false;
    bool stopped = false;
    bool pump_posted = false;
    u64 data_on_wire = 0;
    u64 transactions = 0;
    u64 watchdog_seen = ~u64{0};
    Snapshot start, end;
    std::function<void()> pump;
    std::function<void()> watchdog;
};

Snapshot
snapFlow(sys::Machine &m, unsigned i)
{
    return Snapshot{m.sim().now(), m.nicCore(i).busyCycles(),
                    m.nicCore(i).acct(), m.nic(i).stats()};
}

RunResult
flowResult(const Snapshot &start, const Snapshot &end, double core_ghz)
{
    RunResult r;
    r.duration_s = static_cast<double>(end.t - start.t) * 1e-9;
    r.nic = statsDelta(end.nic, start.nic);
    r.acct = end.acct.since(start.acct);
    r.tx_packets = r.nic.tx_packets;
    r.rx_packets = r.nic.rx_packets;
    r.tx_payload_bytes = r.nic.tx_payload_bytes;
    r.transactions = r.nic.tx_packets;
    r.throughput_gbps = static_cast<double>(r.tx_payload_bytes) * 8 /
                        r.duration_s / 1e9;
    r.transactions_per_sec =
        static_cast<double>(r.transactions) / r.duration_s;
    r.cpu = std::min(1.0, static_cast<double>(end.busy - start.busy) /
                              core_ghz /
                              static_cast<double>(end.t - start.t));
    r.cycles_per_packet =
        static_cast<double>(r.acct.total()) /
        static_cast<double>(std::max<u64>(r.tx_packets, 1));
    return r;
}

ScalingResult
aggregate(std::vector<RunResult> per_flow, sys::Machine &m,
          unsigned ncores)
{
    ScalingResult out;
    out.cores = ncores;
    Cycles total_cycles = 0, lock_wait = 0;
    for (const RunResult &r : per_flow) {
        out.tx_packets += r.tx_packets;
        total_cycles += r.acct.total();
        lock_wait += r.acct.get(cycles::Cat::kLockWait);
        out.throughput_gbps += r.throughput_gbps;
    }
    const double pkts =
        static_cast<double>(std::max<u64>(out.tx_packets, 1));
    out.cycles_per_packet = static_cast<double>(total_cycles) / pkts;
    out.lock_wait_per_packet = static_cast<double>(lock_wait) / pkts;
    out.iova_lock = m.iovaLockStats();
    out.inval_lock = m.invalLockStats();
    out.fault = m.faultStats();
    out.per_flow = std::move(per_flow);
    return out;
}

} // namespace

ScalingResult
runStreamScaling(dma::ProtectionMode mode, const nic::NicProfile &profile,
                 unsigned ncores, const StreamParams &params,
                 const cycles::CostModel &cost)
{
    RIO_ASSERT(ncores > 0, "scaling run with no cores");
    des::Simulator sim;
    sys::Machine m(sim, mode, ncores, cost);
    for (unsigned i = 0; i < ncores; ++i)
        m.attachNic(profile, i, params.trace);
    m.bringUp();
    if (params.fault_rate > 0) {
        m.setFaultPolicy(params.fault_policy);
        m.setFaultInjection(params.fault_rate, params.fault_seed);
    }
    if (params.churn_per_ms > 0) {
        sys::LifecycleChurnConfig churn;
        churn.events_per_ms = params.churn_per_ms;
        churn.seed = params.churn_seed;
        churn.down_ns = params.churn_down_ns;
        m.armLifecycleChurn(churn);
    }

    const u64 total_target =
        params.warmup_packets + params.measure_packets;
    const u64 message_segments =
        std::max<u64>(net::segmentsFor(params.message_bytes), 1);
    const Nanos rtt_ns = 2 * profile.wire_ns;

    // One independent Netperf-stream pump + remote sink per core —
    // the single-flow logic of runStream, replicated. The flows
    // interact only through the context-global locks (and not at all
    // in the rIOMMU/none modes).
    std::vector<std::unique_ptr<Flow>> flows;
    sys::Machine *mp = &m;
    des::Simulator *simp = &sim;
    unsigned stopped_flows = 0;
    unsigned *stopped_flows_p = &stopped_flows;
    for (unsigned i = 0; i < ncores; ++i) {
        flows.push_back(std::make_unique<Flow>());
        Flow *f = flows.back().get();
        f->idx = i;
        nic::Nic *nic = &m.nic(i);
        des::Core *core = &m.nicCore(i);

        f->pump = [mp, f, core, nic, message_segments, params] {
            f->pump_posted = false;
            if (f->stopped)
                return;
            u64 sent = 0;
            while (sent < message_segments &&
                   nic->txSpacePackets(net::kMss) > 0) {
                core->acct().charge(cycles::Cat::kProcessing,
                                    params.per_packet_cycles);
                net::Packet pkt;
                pkt.payload_bytes = net::kMss;
                pkt.kind = 1;
                Status s = nic->sendPacket(pkt);
                RIO_ASSERT(s.isOk(), "sendPacket: ", s.toString());
                ++sent;
            }
            // Next message; Rx (ACK) handlers slot in between.
            if (sent > 0 && nic->txSpacePackets(net::kMss) > 0 &&
                !f->pump_posted) {
                f->pump_posted = true;
                core->post([f] { f->pump(); });
            }
        };
        nic->setTxSpaceCallback([f, core] {
            if (f->pump_posted || f->stopped)
                return;
            f->pump_posted = true;
            core->post([f] { f->pump(); });
        });
        nic->setRxCallback([core, params](const net::Packet &) {
            core->acct().charge(cycles::Cat::kProcessing,
                                params.per_ack_cycles);
        });
        // Remote sink: consume data, ACK every ack_every packets
        // after a round-trip wire delay.
        nic->setWireTxCallback([mp, simp, f, nic, params, total_target,
                                rtt_ns, stopped_flows_p,
                                ncores](const net::Packet &) {
            ++f->data_on_wire;
            if (!f->started &&
                nic->stats().tx_packets >= params.warmup_packets) {
                f->started = true;
                f->start = snapFlow(*mp, f->idx);
            }
            if (f->started && !f->stopped &&
                nic->stats().tx_packets >= total_target) {
                f->stopped = true;
                f->end = snapFlow(*mp, f->idx);
                if (++*stopped_flows_p == ncores &&
                    params.churn_per_ms > 0)
                    mp->disarmLifecycleChurn(); // let the queue drain
            }
            if (!f->stopped &&
                f->data_on_wire % params.ack_every == 0) {
                simp->scheduleAfter(rtt_ns, [nic, params] {
                    net::Packet ack;
                    ack.payload_bytes = params.ack_payload;
                    ack.kind = 2;
                    ack.flow = 0;
                    nic->packetFromWire(ack);
                });
            }
        });
    }

    for (auto &f : flows) {
        f->pump_posted = true;
        Flow *fp = f.get();
        m.nicCore(fp->idx).post([fp] { fp->pump(); });
    }
    sim.run();

    std::vector<RunResult> per_flow;
    for (auto &f : flows) {
        RIO_ASSERT(f->stopped, "stream flow ", f->idx,
                   " ended before reaching its target");
        per_flow.push_back(flowResult(f->start, f->end, cost.core_ghz));
    }
    return aggregate(std::move(per_flow), m, ncores);
}

ScalingResult
runRrScaling(dma::ProtectionMode mode, const nic::NicProfile &profile,
             unsigned ncores, const RrParams &params,
             const cycles::CostModel &cost)
{
    RIO_ASSERT(ncores > 0, "scaling run with no cores");
    des::Simulator sim;
    sys::Machine a(sim, mode, ncores, cost); // initiators (measured)
    sys::Machine b(sim, mode, ncores, cost); // echoers
    for (unsigned i = 0; i < ncores; ++i) {
        a.attachNic(profile, i);
        b.attachNic(profile, i);
    }
    a.bringUp();
    b.bringUp();
    if (params.fault_rate > 0) {
        a.setFaultPolicy(params.fault_policy);
        a.setFaultInjection(params.fault_rate, params.fault_seed);
        b.setFaultPolicy(params.fault_policy);
        // Decorrelate the echoer's fault streams from the initiator's.
        b.setFaultInjection(params.fault_rate, params.fault_seed + 1);
    }
    if (params.churn_per_ms > 0) {
        sys::LifecycleChurnConfig churn;
        churn.events_per_ms = params.churn_per_ms;
        churn.seed = params.churn_seed;
        churn.down_ns = params.churn_down_ns;
        a.armLifecycleChurn(churn);
    }

    std::vector<std::unique_ptr<Flow>> flows;
    sys::Machine *ap = &a;
    sys::Machine *bp = &b;
    des::Simulator *simp = &sim;
    unsigned stopped_flows = 0;
    unsigned *stopped_flows_p = &stopped_flows;

    auto send = [params](sys::Machine *machine, unsigned i) {
        if (!machine->nic(i).isUp())
            return; // mid-outage; the retransmit timer retries
        machine->nicCore(i).acct().charge(cycles::Cat::kProcessing,
                                          params.per_message_cycles);
        net::Packet pkt;
        pkt.payload_bytes = params.payload;
        Status s = machine->nic(i).sendPacket(pkt);
        RIO_ASSERT(s.isOk(), "rr send failed: ", s.toString());
    };

    for (unsigned i = 0; i < ncores; ++i) {
        flows.push_back(std::make_unique<Flow>());
        Flow *f = flows.back().get();
        f->idx = i;
        const Nanos wire_ns = profile.wire_ns;

        // Wire: a full-duplex point-to-point link per flow pair.
        a.nic(i).setWireTxCallback(
            [bp, simp, i, wire_ns](const net::Packet &pkt) {
                simp->scheduleAfter(wire_ns, [bp, i, pkt] {
                    bp->nic(i).packetFromWire(pkt);
                });
            });
        b.nic(i).setWireTxCallback(
            [ap, simp, i, wire_ns](const net::Packet &pkt) {
                simp->scheduleAfter(wire_ns, [ap, i, pkt] {
                    ap->nic(i).packetFromWire(pkt);
                });
            });
        // Echo side: bounce every message straight back.
        b.nic(i).setRxCallback(
            [bp, i, send](const net::Packet &) { send(bp, i); });
        // Initiator: count a transaction per echo, fire the next one.
        a.nic(i).setRxCallback([ap, f, i, send, params, stopped_flows_p,
                                ncores](const net::Packet &) {
            ++f->transactions;
            if (f->transactions == params.warmup_transactions)
                f->start = snapFlow(*ap, i);
            if (f->transactions == params.warmup_transactions +
                                       params.measure_transactions) {
                f->stopped = true;
                f->end = snapFlow(*ap, i);
                if (++*stopped_flows_p == ncores &&
                    params.churn_per_ms > 0)
                    ap->disarmLifecycleChurn(); // let the queue drain
                return;
            }
            if (!f->stopped)
                send(ap, i);
        });
        // Per-flow retransmit timer (see runNetperfRr): with fault
        // injection a dropped request/echo — or a churn outage —
        // would stall this flow's ping-pong forever. Never scheduled
        // when both are off.
        if (params.fault_rate > 0 || params.churn_per_ms > 0) {
            const Nanos retransmit_ns = 1'000'000; // >> worst-case RTT
            f->watchdog = [ap, simp, f, i, send, retransmit_ns] {
                if (f->stopped)
                    return;
                if (f->transactions == f->watchdog_seen)
                    ap->nicCore(i).post([ap, f, i, send] {
                        if (!f->stopped)
                            send(ap, i);
                    });
                f->watchdog_seen = f->transactions;
                simp->scheduleAfter(retransmit_ns,
                                    [f] { f->watchdog(); });
            };
            simp->scheduleAfter(retransmit_ns, [f] { f->watchdog(); });
        }
    }

    for (auto &f : flows) {
        const unsigned i = f->idx;
        a.nicCore(i).post([ap, i, send] { send(ap, i); });
    }
    sim.run();

    std::vector<RunResult> per_flow;
    for (auto &f : flows) {
        RIO_ASSERT(f->stopped, "RR flow ", f->idx, " ended early");
        RunResult r = flowResult(f->start, f->end, cost.core_ghz);
        r.transactions = params.measure_transactions;
        r.transactions_per_sec =
            static_cast<double>(r.transactions) / r.duration_s;
        r.throughput_gbps = r.transactions_per_sec *
                            static_cast<double>(params.payload) * 8 /
                            1e9;
        per_flow.push_back(r);
    }
    return aggregate(std::move(per_flow), a, ncores);
}

} // namespace rio::workloads
