/**
 * @file
 * Request/response server model covering the paper's Apache
 * (ApacheBench, 32 concurrent requests of a 1 KB or 1 MB static
 * page) and Memcached (Memslap, 90% get / 10% set, 64 B keys, 1 KB
 * values, 32 concurrent) benchmarks (§5.1). The measured host runs
 * the server; the load generator is an abstract client that keeps
 * `concurrency` requests outstanding and costs nothing.
 */
#ifndef RIO_WORKLOADS_REQUEST_LOAD_H
#define RIO_WORKLOADS_REQUEST_LOAD_H

#include "base/rng.h"
#include "dma/protection_mode.h"
#include "nic/profile.h"
#include "workloads/result.h"

namespace rio::workloads {

/** Parameters of a request/response run. */
struct RequestLoadParams
{
    u32 concurrency = 32;
    u32 request_payload = 100;   //!< GET line / memcached key packet
    u64 response_bytes = 1024;   //!< page / value size
    /**
     * Small additional Rx/Tx packets per request: TCP handshake and
     * teardown for ApacheBench's one-connection-per-request mode
     * (SYN/ACK/FIN in, SYN-ACK/FIN-ACK out); zero for memcached's
     * persistent connections.
     */
    u32 extra_rx_small = 0;
    u32 extra_tx_small = 0;
    /** Fraction of requests that are uploads (memcached set: the 1 KB
     * value travels client->server and the reply is tiny). */
    double set_fraction = 0.0;
    /** Application cycles per request (HTTP parse + file serve, or
     * the memcached LRU lookup). Dominates Apache 1KB (§5.2). */
    Cycles per_request_cycles = 250000;
    /** Stack cost per transmitted data segment. */
    Cycles per_tx_packet_cycles = 500;
    /** Stack cost per received packet. */
    Cycles per_rx_packet_cycles = 300;
    /** Client ACKs every N response segments (1 MB streaming). */
    u32 ack_every = 2;
    u64 measure_requests = 2000;
    u64 warmup_requests = 300;
    u64 seed = 1;
};

/** ApacheBench serving a file of @p response_bytes. */
RequestLoadParams apacheParams(u64 response_bytes);

/** Memslap against memcached: 90/10 get/set, 1 KB values. */
RequestLoadParams memcachedParams();

/** Run the server under @p mode; transactions are completed requests. */
RunResult runRequestLoad(dma::ProtectionMode mode,
                         const nic::NicProfile &profile,
                         const RequestLoadParams &params,
                         const cycles::CostModel &cost =
                             cycles::defaultCostModel());

} // namespace rio::workloads

#endif // RIO_WORKLOADS_REQUEST_LOAD_H
