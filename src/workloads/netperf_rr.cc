#include "workloads/netperf_rr.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <string_view>

#include "base/logging.h"
#include "des/simulator.h"
#include "net/packet.h"
#include "sys/machine.h"
#include "virt/guest.h"

namespace rio::workloads {

RrParams
rrParamsFor(const nic::NicProfile &profile)
{
    RrParams p;
    if (std::string_view(profile.name) == "brcm") {
        // brcm RTTs are far higher (Table 3: 34.6 us for none) —
        // 10GBASE-T PHY latency plus heavier interrupt moderation;
        // most of that is in the profile's wire/irq delays.
        p.per_message_cycles = 3400;
    } else {
        p.per_message_cycles = 2600;
    }
    return p;
}

/**
 * Stack state of the old runNetperfRr(), promoted to members so the
 * simulator can be driven externally. The cost model is an owned
 * copy declared before the machines (DmaContext keeps a reference);
 * so are the profile and params, which the wire and retransmit
 * callbacks read mid-run.
 */
struct RrRun::Impl
{
    RrParams params;
    nic::NicProfile profile;
    cycles::CostModel cost;

    des::Simulator &sim;
    sys::Machine a; // netperf (measured)
    sys::Machine b; // netserver (echoer)
    // Only the measured machine runs inside a guest; attach before
    // bring-up so boot traps precede the measurement window.
    std::optional<virt::Guest> guest;

    u64 transactions = 0;
    bool stopped = false;
    Nanos t_start = 0, t_end = 0;
    Cycles busy_start = 0, busy_end = 0;
    cycles::CycleAccount acct_start, acct_end;
    u64 watchdog_seen = ~u64{0};

    // Retransmit timer, as in real netperf UDP RR: a request or echo
    // dropped by a fault would otherwise stall the ping-pong forever.
    // The timeout is far above any RTT, so it only fires on a genuine
    // loss; never scheduled when injection is off.
    static constexpr Nanos kRetransmitNs = 1'000'000; // 1 ms >> RTT

    Impl(des::Simulator &s, dma::ProtectionMode mode,
         const nic::NicProfile &prof, const RrParams &p,
         const cycles::CostModel &c)
        : params(p), profile(prof), cost(c), sim(s),
          a(sim, mode, profile, cost), b(sim, mode, profile, cost)
    {
    }

    void
    send(sys::Machine &machine)
    {
        if (!machine.nic().isUp())
            return; // mid-outage; the retransmit timer retries
        machine.core().acct().charge(cycles::Cat::kProcessing,
                                     params.per_message_cycles);
        net::Packet pkt;
        pkt.payload_bytes = params.payload;
        Status s = machine.nic().sendPacket(pkt);
        RIO_ASSERT(s.isOk(), "rr send failed: ", s.toString());
    }

    // Initiator: count a transaction per echo, fire the next one.
    void
    onEcho()
    {
        ++transactions;
        if (transactions == params.warmup_transactions) {
            t_start = sim.now();
            busy_start = a.core().busyCycles();
            acct_start = a.core().acct();
        }
        if (transactions ==
            params.warmup_transactions + params.measure_transactions) {
            stopped = true;
            t_end = sim.now();
            busy_end = a.core().busyCycles();
            acct_end = a.core().acct();
            if (params.churn_per_ms > 0)
                a.disarmLifecycleChurn(); // let the event queue drain
            return;
        }
        if (!stopped)
            send(a);
    }

    void
    watchdog()
    {
        if (stopped)
            return;
        if (transactions == watchdog_seen)
            a.core().post([this] {
                if (!stopped)
                    send(a);
            });
        watchdog_seen = transactions;
        sim.scheduleAfter(kRetransmitNs, [this] { watchdog(); });
    }

    void
    setup()
    {
        if (params.platform != virt::Platform::kBare)
            guest.emplace(a, params.platform);
        a.bringUp();
        b.bringUp();
        if (params.fault_rate > 0) {
            a.setFaultPolicy(params.fault_policy);
            a.setFaultInjection(params.fault_rate, params.fault_seed);
            b.setFaultPolicy(params.fault_policy);
            // Decorrelate the echoer's fault stream from the initiator's.
            b.setFaultInjection(params.fault_rate, params.fault_seed + 1);
        }
        if (params.churn_per_ms > 0) {
            sys::LifecycleChurnConfig churn;
            churn.events_per_ms = params.churn_per_ms;
            churn.seed = params.churn_seed;
            churn.down_ns = params.churn_down_ns;
            a.armLifecycleChurn(churn);
        }

        // Wire: full-duplex point-to-point link.
        a.nic().setWireTxCallback([this](const net::Packet &pkt) {
            sim.scheduleAfter(profile.wire_ns,
                              [this, pkt] { b.nic().packetFromWire(pkt); });
        });
        b.nic().setWireTxCallback([this](const net::Packet &pkt) {
            sim.scheduleAfter(profile.wire_ns,
                              [this, pkt] { a.nic().packetFromWire(pkt); });
        });

        // Echo side: bounce every message straight back.
        b.nic().setRxCallback([this](const net::Packet &) { send(b); });
        a.nic().setRxCallback([this](const net::Packet &) { onEcho(); });

        if (params.fault_rate > 0 || params.churn_per_ms > 0)
            sim.scheduleAfter(kRetransmitNs, [this] { watchdog(); });

        a.core().post([this] { send(a); });
    }

    RunResult
    collect()
    {
        RIO_ASSERT(stopped, "RR run ended early");
        RunResult r;
        r.duration_s = static_cast<double>(t_end - t_start) * 1e-9;
        r.transactions = params.measure_transactions;
        r.transactions_per_sec =
            static_cast<double>(r.transactions) / r.duration_s;
        r.acct = acct_end.since(acct_start);
        r.tx_packets = r.transactions;
        r.cycles_per_packet = static_cast<double>(r.acct.total()) /
                              static_cast<double>(r.transactions);
        r.cpu =
            std::min(1.0, static_cast<double>(busy_end - busy_start) /
                              cost.core_ghz /
                              static_cast<double>(t_end - t_start));
        r.throughput_gbps = r.transactions_per_sec *
                            static_cast<double>(params.payload) * 8 / 1e9;
        r.fault = a.faultStats();
        r.surprise_unplugs = a.lifecycleStats().surprise_unplugs;
        r.replugs = a.lifecycleStats().replugs;
        r.detach_faults = a.detachFaultCount();
        r.vm_exits = r.acct.ops(cycles::Cat::kVirt);
        return r;
    }
};

RrRun::RrRun(des::Simulator &sim, dma::ProtectionMode mode,
             const nic::NicProfile &profile, const RrParams &params,
             const cycles::CostModel &cost)
    : impl_(std::make_unique<Impl>(sim, mode, profile, params, cost))
{
    impl_->setup();
}

RrRun::~RrRun() = default;

RunResult
RrRun::collect()
{
    return impl_->collect();
}

RunResult
runNetperfRr(dma::ProtectionMode mode, const nic::NicProfile &profile,
             const RrParams &params, const cycles::CostModel &cost)
{
    des::Simulator sim;
    RrRun run(sim, mode, profile, params, cost);
    sim.run();
    return run.collect();
}

} // namespace rio::workloads
