#include "workloads/stream.h"

#include <algorithm>
#include <optional>

#include "base/logging.h"
#include "des/simulator.h"
#include "net/packet.h"
#include "sys/machine.h"
#include "virt/guest.h"

namespace rio::workloads {

namespace {

struct Snapshot
{
    Nanos t = 0;
    Cycles busy = 0;
    cycles::CycleAccount acct;
    nic::NicStats nic;
};

} // namespace

nic::NicStats
statsDelta(const nic::NicStats &a, const nic::NicStats &b)
{
    nic::NicStats d;
    d.tx_packets = a.tx_packets - b.tx_packets;
    d.tx_payload_bytes = a.tx_payload_bytes - b.tx_payload_bytes;
    d.tx_irqs = a.tx_irqs - b.tx_irqs;
    d.rx_packets = a.rx_packets - b.rx_packets;
    d.rx_payload_bytes = a.rx_payload_bytes - b.rx_payload_bytes;
    d.rx_dropped = a.rx_dropped - b.rx_dropped;
    d.rx_irqs = a.rx_irqs - b.rx_irqs;
    d.dma_faults = a.dma_faults - b.dma_faults;
    d.unmap_bursts = a.unmap_bursts - b.unmap_bursts;
    d.unmap_burst_len_sum = a.unmap_burst_len_sum - b.unmap_burst_len_sum;
    d.surprise_unplugs = a.surprise_unplugs - b.surprise_unplugs;
    d.replugs = a.replugs - b.replugs;
    return d;
}

StreamParams
streamParamsFor(const nic::NicProfile &profile)
{
    StreamParams p;
    if (std::string_view(profile.name) == "brcm") {
        // Calibrated so the none mode lands near the paper's brcm
        // figures: all modes but strict saturate the 10 GbE line and
        // none consumes ~1/3 of a core (§5.2, Table 2 CPU column).
        p.per_packet_cycles = 1000;
        p.per_ack_cycles = 912;
        p.ack_every = 4;
    } else {
        // mlx: C_none = 1516 + 1200/4 = 1,816 cycles per packet,
        // the bottom grid line of Figure 7.
        p.per_packet_cycles = 1516;
        p.per_ack_cycles = 1200;
        p.ack_every = 4;
    }
    return p;
}

/**
 * All the state runStream() used to keep on its stack, plus the
 * machine itself. Members that the machine or the armed callbacks
 * reference (cost model, profile, params) are owned copies declared
 * before the machine: DmaContext keeps a CostModel reference for its
 * whole life, and under a sweep this object is built long before the
 * engine drives the lane — the constructor's arguments may be gone
 * by then.
 */
struct StreamRun::Impl
{
    StreamParams params;
    nic::NicProfile profile;
    cycles::CostModel cost;

    des::Simulator &sim;
    sys::Machine m;
    // The guest attaches before bring-up: registration hypercalls and
    // Rx-prefill traps are boot cost, outside the snapshot window.
    std::optional<virt::Guest> guest;

    Snapshot start, end;
    bool started = false;
    bool stopped = false;
    u64 total_target = 0;
    u64 message_segments = 1;
    bool pump_posted = false;
    u64 data_on_wire = 0;

    Impl(des::Simulator &s, dma::ProtectionMode mode,
         const nic::NicProfile &prof, const StreamParams &p,
         const cycles::CostModel &c)
        : params(p), profile(prof), cost(c), sim(s),
          m(sim, mode, profile, cost, params.trace)
    {
    }

    Snapshot
    snap()
    {
        return Snapshot{sim.now(), m.core().busyCycles(), m.core().acct(),
                        m.nic().stats()};
    }

    void
    postPump()
    {
        if (pump_posted || stopped)
            return;
        pump_posted = true;
        m.core().post([this] { pump(); });
    }

    // Application side: saturate the socket. Netperf writes one
    // message (16 KB -> ~12 MSS segments) per send call; processing
    // one message per core work-item lets Rx (ACK) interrupt handling
    // interleave with transmission at realistic granularity — which
    // is what keeps resetting the stock allocator's cached node
    // between Tx allocation runs (§3.2).
    void
    pump()
    {
        pump_posted = false;
        if (stopped)
            return;
        auto &nic = m.nic();
        u64 sent = 0;
        while (sent < message_segments &&
               nic.txSpacePackets(net::kMss) > 0) {
            m.core().acct().charge(cycles::Cat::kProcessing,
                                   params.per_packet_cycles);
            net::Packet pkt;
            pkt.payload_bytes = net::kMss;
            pkt.kind = 1;
            Status s = nic.sendPacket(pkt);
            RIO_ASSERT(s.isOk(), "sendPacket: ", s.toString());
            ++sent;
        }
        if (sent > 0 && nic.txSpacePackets(net::kMss) > 0)
            postPump(); // next message; Rx handlers slot in between
    }

    void
    onWireTx()
    {
        auto &nic = m.nic();
        ++data_on_wire;
        if (!started && nic.stats().tx_packets >= params.warmup_packets) {
            started = true;
            start = snap();
        }
        if (started && !stopped &&
            nic.stats().tx_packets >= total_target) {
            stopped = true;
            end = snap();
            if (params.churn_per_ms > 0)
                m.disarmLifecycleChurn(); // let the event queue drain
        }
        if (!stopped && data_on_wire % params.ack_every == 0) {
            sim.scheduleAfter(2 * profile.wire_ns, [this] {
                net::Packet ack;
                ack.payload_bytes = params.ack_payload;
                ack.kind = 2;
                ack.flow = 0; // one TCP connection -> one RSS ring
                m.nic().packetFromWire(ack);
            });
        }
    }

    void
    setup()
    {
        if (params.platform != virt::Platform::kBare) {
            guest.emplace(m, params.platform);
            if (params.huge_stage2)
                guest->setHugeStage2(true);
        }
        m.bringUp();
        if (params.fault_rate > 0) {
            m.setFaultPolicy(params.fault_policy);
            m.setFaultInjection(params.fault_rate, params.fault_seed);
        }
        if (params.churn_per_ms > 0) {
            sys::LifecycleChurnConfig churn;
            churn.events_per_ms = params.churn_per_ms;
            churn.seed = params.churn_seed;
            churn.down_ns = params.churn_down_ns;
            m.armLifecycleChurn(churn);
        }

        total_target = params.warmup_packets + params.measure_packets;
        message_segments =
            std::max<u64>(net::segmentsFor(params.message_bytes), 1);

        m.nic().setTxSpaceCallback([this] { postPump(); });

        // ACK receive path: protocol processing per ACK; the buffer
        // recycling (unmap + map) was already charged by the driver.
        m.nic().setRxCallback([this](const net::Packet &) {
            m.core().acct().charge(cycles::Cat::kProcessing,
                                   params.per_ack_cycles);
        });

        // Remote sink: consumes data, returns an ACK every ack_every
        // packets after a round-trip wire delay.
        m.nic().setWireTxCallback(
            [this](const net::Packet &) { onWireTx(); });

        postPump();
    }

    RunResult
    collect()
    {
        RIO_ASSERT(stopped, "stream run ended before reaching its target");
        RunResult r;
        r.duration_s = static_cast<double>(end.t - start.t) * 1e-9;
        r.nic = statsDelta(end.nic, start.nic);
        r.acct = end.acct.since(start.acct);
        r.tx_packets = r.nic.tx_packets;
        r.rx_packets = r.nic.rx_packets;
        r.tx_payload_bytes = r.nic.tx_payload_bytes;
        r.transactions = r.nic.tx_packets;
        r.throughput_gbps = static_cast<double>(r.tx_payload_bytes) * 8 /
                            r.duration_s / 1e9;
        r.transactions_per_sec =
            static_cast<double>(r.transactions) / r.duration_s;
        r.cpu = std::min(
            1.0, static_cast<double>(end.busy - start.busy) /
                     cost.core_ghz / static_cast<double>(end.t - start.t));
        r.cycles_per_packet =
            static_cast<double>(r.acct.total()) /
            static_cast<double>(std::max<u64>(r.tx_packets, 1));
        r.avg_unmap_burst =
            r.nic.unmap_bursts
                ? static_cast<double>(r.nic.unmap_burst_len_sum) /
                      static_cast<double>(r.nic.unmap_bursts)
                : 0.0;
        r.fault = m.faultStats();
        r.surprise_unplugs = m.lifecycleStats().surprise_unplugs;
        r.replugs = m.lifecycleStats().replugs;
        r.detach_faults = m.detachFaultCount();
        r.vm_exits = r.acct.ops(cycles::Cat::kVirt);
        // One of the two is always zero: modes use either the radix
        // IOMMU or the rIOMMU, never both.
        r.walks = m.ctx().iommu().walkCount() +
                  m.ctx().riommu().riotlb().stats().walks;
        r.walk_mem_refs = m.ctx().iommu().walkMemRefs() +
                          m.ctx().riommu().walkMemRefs();
        return r;
    }
};

StreamRun::StreamRun(des::Simulator &sim, dma::ProtectionMode mode,
                     const nic::NicProfile &profile,
                     const StreamParams &params,
                     const cycles::CostModel &cost)
    : impl_(std::make_unique<Impl>(sim, mode, profile, params, cost))
{
    impl_->setup();
}

StreamRun::~StreamRun() = default;

RunResult
StreamRun::collect()
{
    return impl_->collect();
}

RunResult
runStream(dma::ProtectionMode mode, const nic::NicProfile &profile,
          const StreamParams &params, const cycles::CostModel &cost)
{
    des::Simulator sim;
    StreamRun run(sim, mode, profile, params, cost);
    sim.run();
    return run.collect();
}

} // namespace rio::workloads
