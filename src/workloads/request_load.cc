#include "workloads/request_load.h"

#include <algorithm>
#include <deque>
#include <functional>

#include "base/logging.h"
#include "net/packet.h"
#include "sys/machine.h"

namespace rio::workloads {

namespace {

// Packet kinds on this connection.
constexpr u32 kReqPart = 1;  // handshake / leading request packet
constexpr u32 kReqLast = 2;  // final packet of a request
constexpr u32 kRespData = 3; // response segment
constexpr u32 kRespLast = 4; // final response packet
constexpr u32 kAck = 5;      // client ack during response streaming
constexpr u32 kSmallPayload = 4;

struct Snapshot
{
    Nanos t = 0;
    Cycles busy = 0;
    cycles::CycleAccount acct;
    nic::NicStats nic;
};

} // namespace

RequestLoadParams
apacheParams(u64 response_bytes)
{
    RequestLoadParams p;
    p.concurrency = 32;
    p.request_payload = 100;
    p.response_bytes = response_bytes;
    // ApacheBench opens a connection per request: model the extra
    // handshake/teardown packets both ways.
    p.extra_rx_small = 3;
    p.extra_tx_small = 2;
    // ~250K cycles of HTTP parsing + file serving per request puts
    // the none mode at the paper's ~12K requests/s for 1 KB files on
    // a 3.1 GHz core (§5.2).
    p.per_request_cycles = 235000;
    p.per_tx_packet_cycles = 500;
    p.per_rx_packet_cycles = 300;
    if (response_bytes >= (u64{1} << 20)) {
        p.measure_requests = 600;
        p.warmup_requests = 60;
    } else {
        p.measure_requests = 4000;
        p.warmup_requests = 400;
    }
    return p;
}

RequestLoadParams
memcachedParams()
{
    RequestLoadParams p;
    p.concurrency = 32;
    p.request_payload = 100; // get <64B-key>
    p.response_bytes = 1024; // 1 KB value
    p.extra_rx_small = 0;    // persistent connections
    p.extra_tx_small = 0;
    p.set_fraction = 0.10;   // memslap default 90% get / 10% set
    // Simple LRU-cache logic: an order of magnitude less processing
    // than Apache (§5.2), putting none near ~120K requests/s.
    p.per_request_cycles = 22000;
    p.per_tx_packet_cycles = 450;
    p.per_rx_packet_cycles = 300;
    p.measure_requests = 25000;
    p.warmup_requests = 3000;
    return p;
}

RunResult
runRequestLoad(dma::ProtectionMode mode, const nic::NicProfile &profile,
               const RequestLoadParams &params,
               const cycles::CostModel &cost)
{
    des::Simulator sim;
    sys::Machine m(sim, mode, profile, cost);
    m.bringUp();

    auto &nic = m.nic();
    auto &core = m.core();
    Rng rng(params.seed);

    auto snap = [&] {
        return Snapshot{sim.now(), core.busyCycles(), core.acct(),
                        nic.stats()};
    };
    Snapshot start, end;
    bool started = false;
    bool stopped = false;
    u64 transactions = 0;
    const u64 total_target =
        params.warmup_requests + params.measure_requests;

    // ---- abstract client ---------------------------------------------------
    // Sends the request packets of one slot, staggered on the wire.
    std::function<void(u64)> client_issue = [&](u64 slot) {
        const bool is_set = rng.chance(params.set_fraction);
        const u64 req_bytes =
            is_set ? params.response_bytes : params.request_payload;
        const u64 req_segments = net::segmentsFor(req_bytes);
        const u64 total_pkts = params.extra_rx_small + req_segments;
        for (u64 i = 0; i < total_pkts; ++i) {
            net::Packet pkt;
            if (i < params.extra_rx_small) {
                pkt.payload_bytes = kSmallPayload;
                pkt.kind = kReqPart;
            } else {
                pkt.payload_bytes = static_cast<u32>(std::max<u64>(
                    net::segmentPayload(req_bytes,
                                        i - params.extra_rx_small),
                    1));
                pkt.kind = (i + 1 == total_pkts) ? kReqLast : kReqPart;
            }
            pkt.flow = (slot << 1) | (is_set ? 1 : 0);
            sim.scheduleAfter(profile.wire_ns + i * 150,
                              [&, pkt] { nic.packetFromWire(pkt); });
        }
    };

    // ---- server ------------------------------------------------------------
    std::deque<net::Packet> send_queue;

    std::function<void()> pump = [&] {
        while (!send_queue.empty()) {
            const net::Packet &pkt = send_queue.front();
            if (nic.txSpacePackets(pkt.payload_bytes) == 0)
                return;
            core.acct().charge(cycles::Cat::kProcessing,
                               params.per_tx_packet_cycles);
            Status s = nic.sendPacket(pkt);
            RIO_ASSERT(s.isOk(), "response send failed: ", s.toString());
            send_queue.pop_front();
        }
    };
    nic.setTxSpaceCallback(pump);

    nic.setRxCallback([&](const net::Packet &pkt) {
        core.acct().charge(cycles::Cat::kProcessing,
                           params.per_rx_packet_cycles);
        if (pkt.kind != kReqLast)
            return; // handshake packet or client ack
        // Full request received: run the application, queue the
        // response (data segments + connection-teardown packets).
        core.acct().charge(cycles::Cat::kProcessing,
                           params.per_request_cycles);
        const bool is_set = (pkt.flow & 1) != 0;
        const u64 resp_bytes =
            is_set ? kSmallPayload : params.response_bytes;
        const u64 segments = net::segmentsFor(resp_bytes);
        const u64 total_pkts = segments + params.extra_tx_small;
        for (u64 i = 0; i < total_pkts; ++i) {
            net::Packet out;
            if (i < segments) {
                out.payload_bytes = static_cast<u32>(std::max<u64>(
                    net::segmentPayload(resp_bytes, i), 1));
                out.kind = kRespData;
            } else {
                out.payload_bytes = kSmallPayload;
                out.kind = kRespData;
            }
            if (i + 1 == total_pkts)
                out.kind = kRespLast;
            out.flow = pkt.flow;
            send_queue.push_back(out);
        }
        pump();
    });

    // ---- wire (server -> client) --------------------------------------------
    u64 resp_data_on_wire = 0;
    nic.setWireTxCallback([&](const net::Packet &pkt) {
        if (pkt.kind == kRespData && pkt.payload_bytes >= net::kMss / 2) {
            // Client acks the response stream (matters for 1 MB).
            if (++resp_data_on_wire % params.ack_every == 0 && !stopped) {
                net::Packet ack;
                ack.payload_bytes = kSmallPayload;
                ack.kind = kAck;
                sim.scheduleAfter(2 * profile.wire_ns,
                                  [&, ack] { nic.packetFromWire(ack); });
            }
        }
        if (pkt.kind != kRespLast)
            return;
        ++transactions;
        if (!started && transactions >= params.warmup_requests) {
            started = true;
            start = snap();
        }
        if (started && !stopped && transactions >= total_target) {
            stopped = true;
            end = snap();
            return;
        }
        if (!stopped) {
            const u64 slot = pkt.flow >> 1;
            sim.scheduleAfter(profile.wire_ns,
                              [&, slot] { client_issue(slot); });
        }
    });

    for (u64 slot = 0; slot < params.concurrency; ++slot)
        client_issue(slot);
    sim.run();
    RIO_ASSERT(stopped, "request load ended early at ", transactions,
               " transactions");

    RunResult r;
    r.duration_s = static_cast<double>(end.t - start.t) * 1e-9;
    r.nic = statsDelta(end.nic, start.nic);
    r.acct = end.acct.since(start.acct);
    r.tx_packets = r.nic.tx_packets;
    r.rx_packets = r.nic.rx_packets;
    r.tx_payload_bytes = r.nic.tx_payload_bytes;
    r.transactions = params.measure_requests;
    r.transactions_per_sec =
        static_cast<double>(r.transactions) / r.duration_s;
    r.throughput_gbps = static_cast<double>(r.tx_payload_bytes) * 8 /
                        r.duration_s / 1e9;
    r.cpu = std::min(
        1.0, static_cast<double>(end.busy - start.busy) / cost.core_ghz /
                 static_cast<double>(end.t - start.t));
    r.cycles_per_packet = static_cast<double>(r.acct.total()) /
                          static_cast<double>(std::max<u64>(
                              r.tx_packets + r.rx_packets, 1));
    r.avg_unmap_burst =
        r.nic.unmap_bursts
            ? static_cast<double>(r.nic.unmap_burst_len_sum) /
                  static_cast<double>(r.nic.unmap_bursts)
            : 0.0;
    return r;
}

} // namespace rio::workloads
