/**
 * @file
 * Parameter sweeps on the parallel engine: every benchmark in this
 * repo is a loop over independent runs (one protection mode, one
 * platform, one core count per iteration), which is exactly the
 * embarrassingly-parallel shape des::ParallelEngine handles with
 * zero coupling — each job gets its own lane, its own Simulator, its
 * own Machine(s), and the engine's default infinite lookahead runs
 * them all in a single window.
 *
 * Determinism: each lane replays the exact event sequence the old
 * sequential bench ran in its private simulator, so per-job results
 * are bit-identical for any thread count — including thread count 1,
 * which must also be bit-identical to the pre-sweep sequential code
 * (enforced by the golden_* ctests). Jobs are constructed and
 * collected in order on the calling thread; only the event execution
 * between construction and collection is parallel.
 */
#ifndef RIO_WORKLOADS_SWEEP_H
#define RIO_WORKLOADS_SWEEP_H

#include <vector>

#include "cycles/cost_model.h"
#include "dma/protection_mode.h"
#include "nic/profile.h"
#include "workloads/netperf_rr.h"
#include "workloads/result.h"
#include "workloads/stream.h"

namespace rio::workloads {

/** One Netperf-stream run of a sweep. */
struct StreamJob
{
    dma::ProtectionMode mode;
    nic::NicProfile profile;
    StreamParams params;
    cycles::CostModel cost = cycles::defaultCostModel();
};

/** One RR ping-pong run of a sweep (the machine PAIR is one job). */
struct RrJob
{
    dma::ProtectionMode mode;
    nic::NicProfile profile;
    RrParams params;
    cycles::CostModel cost = cycles::defaultCostModel();
};

/**
 * Run every job, one engine lane each, on @p threads worker threads
 * (1 = sequential, the bench default). Results are in job order and
 * independent of @p threads.
 */
std::vector<RunResult> runStreamJobs(const std::vector<StreamJob> &jobs,
                                     unsigned threads = 1);
std::vector<RunResult> runRrJobs(const std::vector<RrJob> &jobs,
                                 unsigned threads = 1);

} // namespace rio::workloads

#endif // RIO_WORKLOADS_SWEEP_H
