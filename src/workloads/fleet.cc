#include "workloads/fleet.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "base/logging.h"
#include "base/rng.h"
#include "dma/protection_mode.h"

namespace rio::workloads {

namespace {

/** Inverse-CDF Zipf sampler over ranks 0..n-1 (rank 0 hottest). */
class ZipfCdf
{
  public:
    ZipfCdf(u32 n, double theta)
    {
        RIO_ASSERT(n > 0, "empty Zipf support");
        cdf_.reserve(n);
        double acc = 0;
        for (u32 i = 0; i < n; ++i) {
            acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
            cdf_.push_back(acc);
        }
        for (double &c : cdf_)
            c /= acc;
    }

    u32
    sample(Rng &rng) const
    {
        const double u = rng.uniform();
        const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
        return static_cast<u32>(it - cdf_.begin());
    }

  private:
    std::vector<double> cdf_;
};

/** Per-machine closed-loop driver; all state lane-local. */
struct MachineDriver
{
    sys::Cluster *cluster = nullptr;
    const FleetParams *p = nullptr;
    unsigned m = 0;
    Rng rng{1};
    std::unique_ptr<ZipfCdf> conn_zipf;
    std::unique_ptr<ZipfCdf> size_zipf;

    u32 pending_connects = 0;
    std::vector<u32> my_qps; //!< established initiator-side QPs
    std::vector<u32> p0_qps; //!< subset whose peer is machine 0

    u32 outstanding = 0;
    u64 completions = 0;
    bool measuring = false;
    bool done = false;
    bool churning = false;
    Cycles window_start_cycles = 0;
    u64 measured_ops = 0;
    Cycles measured_cycles = 0;

    rdma::RdmaNic &nic() { return cluster->nic(m); }
    des::Core &core() { return cluster->machine(m).core(0); }
    Cycles coreCycles() { return core().acct().total(); }

    void
    startConnects()
    {
        const unsigned machines = cluster->size();
        const u32 target = std::max<u32>(1, p->connections / 2);
        for (u32 k = 0; k < target; ++k) {
            const u32 peer = (m + 1 + k % (machines - 1)) % machines;
            initiateConnect(peer);
        }
    }

    void
    initiateConnect(u32 peer)
    {
        ++pending_connects;
        auto res = nic().connect(peer, [this](u32 qp, bool ok) {
            onConnected(qp, ok);
        });
        if (!res.isOk())
            onConnected(0, false);
    }

    void
    onConnected(u32 qp, bool ok)
    {
        RIO_ASSERT(pending_connects > 0, "spurious connect callback");
        --pending_connects;
        if (ok) {
            my_qps.push_back(qp);
            if (nic().peerNic(qp) == 0 && m != 0)
                p0_qps.push_back(qp);
        }
        if (churning) {
            churning = false;
            if (!done)
                tryPost();
            return;
        }
        if (pending_connects == 0) {
            if (my_qps.empty()) {
                done = true; // degenerate: nothing to drive
                return;
            }
            tryPost();
        }
    }

    void
    tryPost()
    {
        while (!done && outstanding < p->credits && !my_qps.empty()) {
            const u32 rank = conn_zipf->sample(rng);
            const u32 qp = my_qps[rank % my_qps.size()];
            const u32 bytes = p->sizes[size_zipf->sample(rng) %
                                       p->sizes.size()];
            const bool read = rng.chance(p->read_fraction);
            const bool posted = read ? nic().postRead(qp, bytes)
                                     : nic().postWrite(qp, bytes);
            if (!posted)
                return; // window full somewhere; retry on completion
            ++outstanding;
        }
    }

    /** Synchronized burst at machine 0, outside the credit loop. */
    void
    incast()
    {
        if (p0_qps.empty())
            return;
        const u32 bytes = p->sizes.back();
        for (u32 i = 0; i < p->incast_burst; ++i) {
            const u32 qp = p0_qps[i % p0_qps.size()];
            if (nic().postWrite(qp, bytes))
                ++outstanding;
        }
    }

    void
    churn()
    {
        if (churning || my_qps.size() < 2)
            return;
        const u32 pick =
            static_cast<u32>(rng.below(my_qps.size()));
        if (p->churn_abort_fraction > 0.0 &&
            rng.chance(p->churn_abort_fraction)) {
            // App death: no drain, no handshake. Zipf-picked so the
            // abort lands where the traffic is — a busy QP strands
            // its in-flight data, which then arrives late at a dead
            // slot. onQpError() takes the slot out of my_qps and
            // applies the reconnect policy.
            const u32 hot = conn_zipf->sample(rng) %
                            static_cast<u32>(my_qps.size());
            nic().abortQp(my_qps[hot]);
            return;
        }
        const u32 qp = my_qps[pick];
        const u32 peer = nic().peerNic(qp);
        my_qps.erase(my_qps.begin() + pick);
        p0_qps.erase(std::remove(p0_qps.begin(), p0_qps.end(), qp),
                     p0_qps.end());
        churning = true;
        Status s = nic().teardown(qp, [this, peer](u32) {
            if (!done)
                initiateConnect(peer);
            else
                churning = false;
        });
        if (!s)
            churning = false; // raced with a fault-injected close
    }

    /** Driver half of QP error recovery: the NIC has already flushed
     * the slot's ops as error CQEs and freed the QP; decide whether
     * to dial the peer again. Responder-side slots (not in my_qps)
     * are left to the initiating machine's policy. */
    void
    onQpError(u32 qp, u32 peer)
    {
        const auto it = std::find(my_qps.begin(), my_qps.end(), qp);
        // A churn teardown that died mid-close never fires its
        // ClosedCb; release the lever so churn can't wedge.
        churning = false;
        if (it == my_qps.end())
            return;
        my_qps.erase(it);
        p0_qps.erase(std::remove(p0_qps.begin(), p0_qps.end(), qp),
                     p0_qps.end());
        if (p->qp_error_policy == FleetParams::QpErrorPolicy::kReconnect &&
            !done)
            initiateConnect(peer);
    }

    void
    onCompletion(u32 /*qp*/, u32 /*wqe*/, bool /*ok*/)
    {
        RIO_ASSERT(outstanding > 0, "completion without a post");
        --outstanding;
        ++completions;
        if (!measuring && completions >= p->warmup_ops) {
            measuring = true;
            window_start_cycles = coreCycles();
        }
        if (measuring && !done &&
            completions >= p->warmup_ops + p->measure_ops) {
            measured_cycles = coreCycles() - window_start_cycles;
            measured_ops = p->measure_ops;
            done = true; // stop posting; in-flight ops drain
            return;
        }
        if (done)
            return;
        if (p->churn_period_ops &&
            completions % p->churn_period_ops == 0)
            churn();
        if (p->incast_period_ops && m != 0 &&
            completions % p->incast_period_ops == 0)
            incast();
        tryPost();
    }
};

} // namespace

u32
fleetMaxQps(const FleetParams &params, unsigned machines)
{
    RIO_ASSERT(machines >= 2, "fleet needs at least two machines");
    const u32 initiated = std::max<u32>(1, params.connections / 2);
    // Accepted load is balanced by the round-robin peer choice;
    // churn can transiently hold old + new slot at both ends.
    return 2 * initiated + 8;
}

FleetReport
runFleet(sys::Cluster &cluster, const FleetParams &params)
{
    RIO_ASSERT(cluster.size() >= 2, "fleet needs at least two machines");
    for (u32 s : params.sizes)
        RIO_ASSERT(s > 0 && s <= cluster.config().profile.max_req_bytes,
                   "request size outside the profile's MR");
    RIO_ASSERT(params.credits > 0 &&
                   params.credits <= cluster.config().profile.sq_depth,
               "credits above sq_depth can deadlock the closed loop");

    std::vector<std::unique_ptr<MachineDriver>> drivers;
    drivers.reserve(cluster.size());
    for (unsigned m = 0; m < cluster.size(); ++m) {
        auto d = std::make_unique<MachineDriver>();
        d->cluster = &cluster;
        d->p = &params;
        d->m = m;
        d->rng = Rng(params.seed * 0x9E3779B97F4A7C15ULL + m + 1);
        d->conn_zipf = std::make_unique<ZipfCdf>(
            std::max<u32>(1, params.connections / 2), params.zipf_theta);
        d->size_zipf = std::make_unique<ZipfCdf>(
            static_cast<u32>(params.sizes.size()),
            params.size_zipf_theta);
        drivers.push_back(std::move(d));
    }

    cluster.bringUp();
    for (auto &d : drivers) {
        MachineDriver *drv = d.get();
        drv->nic().setCompletionCallback(
            [drv](u32 qp, u32 wqe, bool ok) {
                drv->onCompletion(qp, wqe, ok);
            });
        drv->nic().setQpErrorCallback([drv](u32 qp, u32 peer) {
            drv->onQpError(qp, peer);
        });
        drv->core().post([drv] { drv->startConnects(); });
    }
    cluster.run();

    FleetReport rep;
    for (auto &d : drivers) {
        rep.measured_ops += d->measured_ops;
        rep.measured_cycles += d->measured_cycles;
        rep.total_ops += d->completions;
    }
    if (rep.measured_ops > 0)
        rep.cycles_per_op = static_cast<double>(rep.measured_cycles) /
                            static_cast<double>(rep.measured_ops);

    using RS = rdma::RdmaStats;
    rep.posts = cluster.total(&RS::posts);
    rep.posts_blocked = cluster.total(&RS::posts_blocked);
    rep.comp_errors = cluster.total(&RS::comp_errors);
    rep.remote_faults = cluster.total(&RS::remote_faults);
    rep.local_fault_drops = cluster.total(&RS::local_fault_drops);
    rep.connects = cluster.total(&RS::connects);
    rep.teardowns = cluster.total(&RS::teardowns);
    rep.eob_unmaps = cluster.total(&RS::eob_unmaps);
    rep.completions = cluster.total(&RS::completions);
    if (rep.eob_unmaps > 0)
        rep.avg_burst = static_cast<double>(rep.completions) /
                        static_cast<double>(rep.eob_unmaps);

    rep.retransmits = cluster.total(&RS::retransmits);
    rep.rto_fires = cluster.total(&RS::rto_fires);
    rep.nak_seq = cluster.total(&RS::nak_seq_recv);
    rep.qp_errors = cluster.total(&RS::qp_errors);
    rep.qp_error_recovered = cluster.total(&RS::qp_error_recovered);
    rep.late_arrivals = cluster.total(&RS::late_arrivals);
    rep.late_faulted = cluster.total(&RS::late_faulted);
    rep.late_landed = cluster.total(&RS::late_landed);

    using WS = sys::WireStats;
    rep.wire_drops = cluster.wireTotal(&WS::drops);
    rep.wire_dups = cluster.wireTotal(&WS::dups);
    rep.wire_delays = cluster.wireTotal(&WS::delays);
    rep.wire_congestion_drops = cluster.wireTotal(&WS::congestion_drops);
    rep.wire_peak_queue = cluster.wireTotal(&WS::peak_queue);

    std::vector<Nanos> lat;
    for (unsigned m = 0; m < cluster.size(); ++m) {
        const auto &l = cluster.nic(m).opLatencies();
        lat.insert(lat.end(), l.begin(), l.end());
        rep.end_ns = std::max(rep.end_ns, cluster.lane(m).sim().now());
    }
    if (!lat.empty()) {
        std::sort(lat.begin(), lat.end());
        rep.p50_latency_ns = lat[lat.size() / 2];
        rep.p99_latency_ns = lat[lat.size() * 99 / 100];
    }

    if (obs::sloRecording()) {
        // Exact per-op records, merged in machine order (deterministic;
        // the report itself is permutation-invariant anyway).
        std::vector<obs::OpRecord> records;
        u64 slo_dropped = 0;
        for (unsigned m = 0; m < cluster.size(); ++m) {
            const obs::OpLatencyRecorder &r = cluster.nic(m).sloRecords();
            records.insert(records.end(), r.inOrder().begin(),
                           r.inOrder().end());
            slo_dropped += r.dropped();
        }
        rep.slo = obs::computeSloReport(records);
        rep.slo.dropped = slo_dropped;
        rep.slo_valid = true;
    }

    if (dma::modeUsesRiommu(cluster.config().mode)) {
        for (unsigned m = 0; m < cluster.size(); ++m) {
            riommu::Riommu &r = cluster.machine(m).ctx().riommu();
            const auto &ts = r.riotlb().stats();
            rep.riotlb.lookups += ts.lookups;
            rep.riotlb.hits += ts.hits;
            rep.riotlb.current += ts.current;
            rep.riotlb.synced += ts.synced;
            rep.riotlb.prefetch_hits += ts.prefetch_hits;
            rep.riotlb.walks += ts.walks;
            rep.riotlb.invalidations += ts.invalidations;
            const auto &cs = r.rdCacheStats();
            rep.rdcache.fetches += cs.fetches;
            rep.rdcache.hot_hits += cs.hot_hits;
            rep.rdcache.hot_misses += cs.hot_misses;
        }
    }

    cluster.quiesce();
    for (unsigned m = 0; m < cluster.size(); ++m)
        if (!cluster.checkLeaks(m).clean())
            rep.leaks_clean = false;
    return rep;
}

} // namespace rio::workloads
