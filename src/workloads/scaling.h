/**
 * @file
 * Multi-core scaling workloads: K independent Netperf flows pinned to
 * K cores of ONE machine, all devices sharing one DmaContext. This is
 * the configuration §3.2 reasons about: the baseline modes serialize
 * every map/unmap on the context-global IOVA-allocator lock and the
 * invalidation-queue register, so their per-packet cost grows with
 * core count, while the rIOMMU modes touch only per-ring state and
 * scale flat with exactly zero lock-wait cycles.
 */
#ifndef RIO_WORKLOADS_SCALING_H
#define RIO_WORKLOADS_SCALING_H

#include <vector>

#include "des/spinlock.h"
#include "dma/protection_mode.h"
#include "nic/profile.h"
#include "workloads/netperf_rr.h"
#include "workloads/result.h"
#include "workloads/stream.h"

namespace rio::workloads {

/** Aggregate + per-flow results of one K-core run. */
struct ScalingResult
{
    unsigned cores = 1;

    /** Sum of measurement-window packets across flows. */
    u64 tx_packets = 0;
    /** Aggregate core cycles per packet (incl. lock waits). */
    double cycles_per_packet = 0;
    /** Aggregate lock-wait cycles per packet (0 for rIOMMU/none). */
    double lock_wait_per_packet = 0;
    /** Sum of flow goodputs in Gbps. */
    double throughput_gbps = 0;

    /** Whole-run contention counters of the two context locks. */
    des::SimSpinlock::Stats iova_lock;
    des::SimSpinlock::Stats inval_lock;

    /** Whole-run fault/recovery counters of the measured machine. */
    dma::FaultStats fault;

    /** Per-flow window results (index == core index). */
    std::vector<RunResult> per_flow;
};

/**
 * Netperf TCP stream on each of @p ncores cores — one NIC per core,
 * one shared DmaContext. Flow parameters are per flow.
 */
ScalingResult runStreamScaling(dma::ProtectionMode mode,
                               const nic::NicProfile &profile,
                               unsigned ncores,
                               const StreamParams &params,
                               const cycles::CostModel &cost =
                                   cycles::defaultCostModel());

/**
 * Netperf RR ping-pong on each of @p ncores cores: initiator and
 * echoer machines each have K cores x K NICs sharing their own
 * DmaContext; flow i connects initiator NIC i to echoer NIC i.
 */
ScalingResult runRrScaling(dma::ProtectionMode mode,
                           const nic::NicProfile &profile,
                           unsigned ncores, const RrParams &params,
                           const cycles::CostModel &cost =
                               cycles::defaultCostModel());

} // namespace rio::workloads

#endif // RIO_WORKLOADS_SCALING_H
