/**
 * @file
 * NVMe storage workload (fio-style): queue-depth-N random or
 * sequential 4K reads/writes against the simulated NVMe device. The
 * paper argues (§4) that rIOMMU applies directly to PCIe SSDs because
 * NVMe mandates ring-shaped queues with strict (un)mapping order;
 * this driver quantifies that claim — IOPS and, when the device
 * saturates, the CPU cost of DMA management per protection mode.
 */
#ifndef RIO_WORKLOADS_STORAGE_H
#define RIO_WORKLOADS_STORAGE_H

#include "dma/protection_mode.h"
#include "nvme/nvme.h"
#include "workloads/result.h"

namespace rio::workloads {

/** Parameters of a storage run. */
struct StorageParams
{
    u64 measure_ios = 20000;
    u64 warmup_ios = 2000;
    u32 queue_depth = 32;
    double write_fraction = 0.3;
    bool sequential = false;
    /** Per-I/O submission+completion stack cost (block layer). */
    Cycles per_io_cycles = 4000;
    nvme::NvmeProfile device{};
    u64 seed = 1;
};

/** Run the storage workload under @p mode. transactions == I/Os. */
RunResult runStorage(dma::ProtectionMode mode, const StorageParams &params,
                     const cycles::CostModel &cost =
                         cycles::defaultCostModel());

} // namespace rio::workloads

#endif // RIO_WORKLOADS_STORAGE_H
