/**
 * @file
 * Netperf UDP request-response model (§5.1): two full machines under
 * the same protection mode exchange 1-byte messages in a ping-pong.
 * Latency is the inverse of the transaction rate (Table 3); the
 * workload is latency-sensitive, so rIOMMU's end-of-burst
 * invalidation is NOT amortized here — exactly the regime §4
 * discusses.
 */
#ifndef RIO_WORKLOADS_NETPERF_RR_H
#define RIO_WORKLOADS_NETPERF_RR_H

#include <memory>

#include "dma/fault.h"
#include "dma/protection_mode.h"
#include "nic/profile.h"
#include "virt/platform.h"
#include "workloads/result.h"

namespace rio::des {
class Simulator;
}

namespace rio::workloads {

/** Parameters of a Netperf RR run. */
struct RrParams
{
    u64 measure_transactions = 4000;
    u64 warmup_transactions = 500;
    u32 payload = 1; //!< netperf RR default: one byte each way
    /** Per-message stack cost (UDP path + syscall + wakeup). */
    Cycles per_message_cycles = 2600;
    /**
     * Deterministic DMA fault injection (0 = off), armed on BOTH
     * machines after bring-up. A dropped message would deadlock the
     * ping-pong, so a netperf-style retransmit timer (active only
     * while injecting) re-fires the request when no echo arrives.
     */
    double fault_rate = 0.0;
    u64 fault_seed = 1;
    dma::FaultPolicy fault_policy = dma::FaultPolicy::kRetryRemap;
    /** Surprise-unplug/replug churn on the measured machine
     * (events/ms of virtual time, 0 = off). The retransmit timer
     * restarts the ping-pong after each outage. */
    double churn_per_ms = 0.0;
    u64 churn_seed = 1;
    Nanos churn_down_ns = 20000;
    /**
     * Execution platform of the MEASURED machine (the netserver echo
     * side always runs bare: the paper's question is what the
     * initiator's DMA management costs under virtualization).
     */
    virt::Platform platform = virt::Platform::kBare;
};

/** Calibrated parameters (Table 3's none RTT anchors the wire). */
RrParams rrParamsFor(const nic::NicProfile &profile);

/**
 * A ping-pong run split into setup and collection (see StreamRun in
 * workloads/stream.h for the pattern). BOTH machines — initiator and
 * echoer — live on the one simulator passed in: they are causally
 * coupled every few microseconds of virtual time, far tighter than
 * any useful lookahead, so a sweep parallelizes across RR pairs, not
 * within one.
 */
class RrRun
{
  public:
    RrRun(des::Simulator &sim, dma::ProtectionMode mode,
          const nic::NicProfile &profile, const RrParams &params,
          const cycles::CostModel &cost = cycles::defaultCostModel());
    ~RrRun();
    RrRun(const RrRun &) = delete;
    RrRun &operator=(const RrRun &) = delete;

    /** Initiator metrics; asserts the run hit its transaction target. */
    RunResult collect();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Run the ping-pong. Returns the initiating machine's metrics;
 * transactions_per_sec is the RR rate, so RTT in microseconds is
 * 1e6 / transactions_per_sec.
 */
RunResult runNetperfRr(dma::ProtectionMode mode,
                       const nic::NicProfile &profile,
                       const RrParams &params,
                       const cycles::CostModel &cost =
                           cycles::defaultCostModel());

} // namespace rio::workloads

#endif // RIO_WORKLOADS_NETPERF_RR_H
