/**
 * @file
 * DMA trace capture (§5.4 methodology): the paper logged the DMAs of
 * emulated devices under KVM/QEMU and fed them to simulated TLB
 * prefetchers. Here a RecordingDmaHandle decorates any DmaHandle and
 * records map/unmap/access events at IOVA-page granularity; the
 * prefetch module replays the traces.
 */
#ifndef RIO_TRACE_TRACE_H
#define RIO_TRACE_TRACE_H

#include <string>
#include <vector>

#include "base/status.h"
#include "dma/dma_handle.h"

namespace rio::trace {

/** One event in a DMA trace. */
struct TraceEvent
{
    enum class Kind : u8 {
        kMap = 0,
        kUnmap = 1,
        kAccess = 2,
        kFault = 3 //!< a device access came back faulted
    };

    Kind kind = Kind::kAccess;
    u64 iova_pfn = 0;
};

/** An in-memory DMA trace with text-file (de)serialization. */
class DmaTrace
{
  public:
    void
    add(TraceEvent::Kind kind, u64 iova_pfn)
    {
        events_.push_back({kind, iova_pfn});
    }

    const std::vector<TraceEvent> &events() const { return events_; }
    u64 size() const { return events_.size(); }
    void clear() { events_.clear(); }

    /** "M pfn" / "U pfn" / "A pfn" lines. */
    Status saveText(const std::string &path) const;
    Status loadText(const std::string &path);

  private:
    std::vector<TraceEvent> events_;
};

/**
 * Decorator that forwards to an inner handle and records every map,
 * unmap and device access into a DmaTrace.
 */
class RecordingDmaHandle : public dma::DmaHandle
{
  public:
    RecordingDmaHandle(dma::DmaHandle &inner, DmaTrace &trace)
        : inner_(inner), trace_(trace)
    {
    }

    Status deviceRead(u64 device_addr, void *dst, u64 len) override;
    Status deviceWrite(u64 device_addr, const void *src, u64 len) override;
    u64 liveMappings() const override { return inner_.liveMappings(); }
    iommu::Bdf bdf() const override { return inner_.bdf(); }

    // Fault configuration/observation belongs to the inner handle,
    // which owns the device path the engine instruments.
    void
    setFaultPolicy(dma::FaultPolicy policy) override
    {
        inner_.setFaultPolicy(policy);
    }

    dma::FaultPolicy
    faultPolicy() const override
    {
        return inner_.faultPolicy();
    }

    void
    setFaultInjection(const dma::FaultInjectConfig &cfg) override
    {
        inner_.setFaultInjection(cfg);
    }

    dma::FaultStats faultStats() const override
    {
        return inner_.faultStats();
    }

    // Lifecycle state also belongs to the inner handle: the decorator
    // must not keep its own detached_ flag, or the guard and the real
    // IOMMU state would disagree.
    Status quiesceFlush() override { return inner_.quiesceFlush(); }
    Status detach() override { return inner_.detach(); }
    void surpriseRemove() override { inner_.surpriseRemove(); }
    Status reattach() override { return inner_.reattach(); }
    bool detached() const override { return inner_.detached(); }

    std::vector<dma::LiveMappingInfo> liveMappingList() const override
    {
        return inner_.liveMappingList();
    }

    const std::vector<iommu::FaultRecord> &detachFaults() const override
    {
        return inner_.detachFaults();
    }

    void clearDetachFaults() override { inner_.clearDetachFaults(); }

  protected:
    // The decorator stays obs-unbound (see DmaHandle::bindObs), so the
    // inner handle's instrumentation records each op exactly once.
    Result<dma::DmaMapping> mapImpl(u16 rid, PhysAddr pa, u32 size,
                                    iommu::DmaDir dir) override;
    Status unmapImpl(const dma::DmaMapping &mapping,
                     bool end_of_burst) override;

  private:
    dma::DmaHandle &inner_;
    DmaTrace &trace_;
};

} // namespace rio::trace

#endif // RIO_TRACE_TRACE_H
