#include "trace/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/logging.h"
#include "base/strings.h"

namespace rio::trace {

Status
DmaTrace::saveText(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return Status(ErrorCode::kInvalidArgument, "cannot open " + path);
    static const char kKindChar[] = {'M', 'U', 'A', 'F'};
    for (const TraceEvent &e : events_) {
        std::fprintf(f, "%c %llu\n",
                     kKindChar[static_cast<unsigned>(e.kind)],
                     static_cast<unsigned long long>(e.iova_pfn));
    }
    std::fclose(f);
    return Status::ok();
}

Status
DmaTrace::loadText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status(ErrorCode::kNotFound, "cannot open " + path);
    // Parse line by line so a malformed line is an error naming its
    // number, not a silent truncation of the trace (the old fscanf
    // loop stopped at the first bad pfn and reported success).
    events_.clear();
    std::string line;
    u64 lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::istringstream ls(line);
        char kind = 0;
        if (!(ls >> kind))
            continue; // blank line
        TraceEvent::Kind k;
        switch (kind) {
          case 'M': k = TraceEvent::Kind::kMap; break;
          case 'U': k = TraceEvent::Kind::kUnmap; break;
          case 'A': k = TraceEvent::Kind::kAccess; break;
          case 'F': k = TraceEvent::Kind::kFault; break;
          default:
            return Status(ErrorCode::kInvalidArgument,
                          strprintf("%s:%llu: bad trace event kind '%c'",
                                    path.c_str(),
                                    (unsigned long long)lineno, kind));
        }
        unsigned long long pfn = 0;
        std::string rest;
        if (!(ls >> pfn) || (ls >> rest)) {
            return Status(
                ErrorCode::kInvalidArgument,
                strprintf("%s:%llu: malformed trace line \"%s\"",
                          path.c_str(), (unsigned long long)lineno,
                          line.c_str()));
        }
        events_.push_back({k, pfn});
    }
    return Status::ok();
}

Result<dma::DmaMapping>
RecordingDmaHandle::mapImpl(u16 rid, PhysAddr pa, u32 size,
                            iommu::DmaDir dir)
{
    auto m = inner_.map(rid, pa, size, dir);
    if (m.isOk())
        trace_.add(TraceEvent::Kind::kMap,
                   m.value().device_addr >> kPageShift);
    return m;
}

Status
RecordingDmaHandle::unmapImpl(const dma::DmaMapping &mapping,
                              bool end_of_burst)
{
    Status s = inner_.unmap(mapping, end_of_burst);
    if (s.isOk())
        trace_.add(TraceEvent::Kind::kUnmap,
                   mapping.device_addr >> kPageShift);
    return s;
}

Status
RecordingDmaHandle::deviceRead(u64 device_addr, void *dst, u64 len)
{
    trace_.add(TraceEvent::Kind::kAccess, device_addr >> kPageShift);
    Status s = inner_.deviceRead(device_addr, dst, len);
    if (!s.isOk())
        trace_.add(TraceEvent::Kind::kFault, device_addr >> kPageShift);
    return s;
}

Status
RecordingDmaHandle::deviceWrite(u64 device_addr, const void *src, u64 len)
{
    trace_.add(TraceEvent::Kind::kAccess, device_addr >> kPageShift);
    Status s = inner_.deviceWrite(device_addr, src, len);
    if (!s.isOk())
        trace_.add(TraceEvent::Kind::kFault, device_addr >> kPageShift);
    return s;
}

} // namespace rio::trace
