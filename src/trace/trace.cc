#include "trace/trace.h"

#include <cstdio>

#include "base/logging.h"

namespace rio::trace {

Status
DmaTrace::saveText(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return Status(ErrorCode::kInvalidArgument, "cannot open " + path);
    static const char kKindChar[] = {'M', 'U', 'A', 'F'};
    for (const TraceEvent &e : events_) {
        std::fprintf(f, "%c %llu\n",
                     kKindChar[static_cast<unsigned>(e.kind)],
                     static_cast<unsigned long long>(e.iova_pfn));
    }
    std::fclose(f);
    return Status::ok();
}

Status
DmaTrace::loadText(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return Status(ErrorCode::kNotFound, "cannot open " + path);
    events_.clear();
    char kind = 0;
    unsigned long long pfn = 0;
    while (std::fscanf(f, " %c %llu", &kind, &pfn) == 2) {
        TraceEvent::Kind k;
        switch (kind) {
          case 'M': k = TraceEvent::Kind::kMap; break;
          case 'U': k = TraceEvent::Kind::kUnmap; break;
          case 'A': k = TraceEvent::Kind::kAccess; break;
          case 'F': k = TraceEvent::Kind::kFault; break;
          default:
            std::fclose(f);
            return Status(ErrorCode::kInvalidArgument,
                          "bad trace line kind");
        }
        events_.push_back({k, pfn});
    }
    std::fclose(f);
    return Status::ok();
}

Result<dma::DmaMapping>
RecordingDmaHandle::map(u16 rid, PhysAddr pa, u32 size, iommu::DmaDir dir)
{
    auto m = inner_.map(rid, pa, size, dir);
    if (m.isOk())
        trace_.add(TraceEvent::Kind::kMap,
                   m.value().device_addr >> kPageShift);
    return m;
}

Status
RecordingDmaHandle::unmap(const dma::DmaMapping &mapping, bool end_of_burst)
{
    Status s = inner_.unmap(mapping, end_of_burst);
    if (s.isOk())
        trace_.add(TraceEvent::Kind::kUnmap,
                   mapping.device_addr >> kPageShift);
    return s;
}

Status
RecordingDmaHandle::deviceRead(u64 device_addr, void *dst, u64 len)
{
    trace_.add(TraceEvent::Kind::kAccess, device_addr >> kPageShift);
    Status s = inner_.deviceRead(device_addr, dst, len);
    if (!s.isOk())
        trace_.add(TraceEvent::Kind::kFault, device_addr >> kPageShift);
    return s;
}

Status
RecordingDmaHandle::deviceWrite(u64 device_addr, const void *src, u64 len)
{
    trace_.add(TraceEvent::Kind::kAccess, device_addr >> kPageShift);
    Status s = inner_.deviceWrite(device_addr, src, len);
    if (!s.isOk())
        trace_.add(TraceEvent::Kind::kFault, device_addr >> kPageShift);
    return s;
}

} // namespace rio::trace
