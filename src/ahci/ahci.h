/**
 * @file
 * AHCI/SATA-like disk model: a single 32-slot command queue whose
 * slots the drive may complete in ARBITRARY order — precisely the
 * work mode §4 calls out as incompatible with rIOMMU's flat-table
 * sequencing (and not worth supporting, because SATA drives are too
 * slow for IOMMU overheads to matter; the Bonnie++ experiment shows
 * strict vs. none indistinguishable). Used by the
 * bench_ablation_sata reproduction of that observation.
 */
#ifndef RIO_AHCI_AHCI_H
#define RIO_AHCI_AHCI_H

#include <array>
#include <functional>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "des/core.h"
#include "des/simulator.h"
#include "dma/dma_handle.h"
#include "mem/phys_mem.h"
#include "obs/registry.h"

namespace rio::ahci {

/** Drive timing. Defaults approximate a 7200 RPM SATA HDD. */
struct AhciProfile
{
    u32 sector_bytes = 4096;
    /** Positioning latency for the next random command. */
    Nanos seek_ns = 4000000; // 4 ms
    /** Extra latency when the access is sequential to the last one. */
    Nanos sequential_ns = 25000; // 25 us
    /** Media bandwidth. */
    double bandwidth_gbps = 1.2; // ~150 MB/s
    Nanos doorbell_ns = 700;
    Nanos irq_ns = 3000;
};

/** The 32-slot AHCI port (NCQ-style out-of-order completion). */
class AhciDevice
{
  public:
    static constexpr u32 kSlots = 32;

    using CompletionCallback = std::function<void(u32 slot, Status)>;

    AhciDevice(des::Simulator &sim, des::Core &core,
               mem::PhysicalMemory &pm, dma::DmaHandle &handle,
               AhciProfile profile = {}, u64 seed = 1);

    AhciDevice(const AhciDevice &) = delete;
    AhciDevice &operator=(const AhciDevice &) = delete;

    /** Free command slots. */
    u32 freeSlots() const;

    /**
     * Issue a read/write of @p nsectors at @p lba from/to @p data_pa.
     * Maps the buffer, occupies a slot, returns the slot id.
     */
    Result<u32> issue(bool is_write, u64 lba, u32 nsectors,
                      PhysAddr data_pa);

    void setCompletionCallback(CompletionCallback cb)
    {
        completion_cb_ = std::move(cb);
    }

    // ---- lifecycle --------------------------------------------------------
    /** Surprise hot-unplug: cancel scheduled device events (epoch
     * bump) and forget the NCQ backlog; mappings stay busy for
     * removeCleanup(). */
    void surpriseUnplug();

    /** Driver-side cleanup after a surprise removal: unmap every busy
     * slot through the (detached) handle. */
    void removeCleanup();

    /** Replug a removed drive: the port accepts commands again. */
    void replug();

    bool isUp() const { return up_; }

    u64 completed() const { return completed_; }
    u64 bytesMoved() const { return bytes_moved_; }

  private:
    struct Slot
    {
        bool busy = false;
        bool is_write = false;
        u64 lba = 0;
        u32 nsectors = 0;
        dma::DmaMapping mapping;
    };

    void deviceStart(u32 slot_idx);
    void serviceNext();
    void complete(u32 slot_idx);

    des::Simulator &sim_;
    des::Core &core_;
    mem::PhysicalMemory &pm_;
    dma::DmaHandle &handle_;
    AhciProfile profile_;
    Rng rng_;

    std::array<Slot, kSlots> slots_{};
    std::vector<u32> pending_; //!< queued for the (serial) media
    bool up_ = true;
    // Lifecycle epoch: scheduled device events capture it and bail on
    // mismatch, so unplug cancels everything in flight.
    u64 epoch_ = 0;
    bool media_busy_ = false;
    u64 last_lba_end_ = 0;
    u64 completed_ = 0;
    u64 bytes_moved_ = 0;
    std::vector<u8> scratch_;
    obs::Gauge &obs_slots_busy_; //!< occupied NCQ slots

    CompletionCallback completion_cb_;
};

} // namespace rio::ahci

#endif // RIO_AHCI_AHCI_H
