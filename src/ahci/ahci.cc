#include "ahci/ahci.h"

#include <algorithm>

#include "base/logging.h"

namespace rio::ahci {

AhciDevice::AhciDevice(des::Simulator &sim, des::Core &core,
                       mem::PhysicalMemory &pm, dma::DmaHandle &handle,
                       AhciProfile profile, u64 seed)
    : sim_(sim), core_(core), pm_(pm), handle_(handle), profile_(profile),
      rng_(seed), scratch_(profile.sector_bytes, 0),
      obs_slots_busy_(obs::registry().gauge("ahci.slots_busy"))
{
}

u32
AhciDevice::freeSlots() const
{
    u32 n = 0;
    for (const Slot &slot : slots_)
        n += slot.busy ? 0 : 1;
    return n;
}

Result<u32>
AhciDevice::issue(bool is_write, u64 lba, u32 nsectors, PhysAddr data_pa)
{
    u32 idx = kSlots;
    for (u32 i = 0; i < kSlots; ++i) {
        if (!slots_[i].busy) {
            idx = i;
            break;
        }
    }
    if (!up_)
        return Status(ErrorCode::kDetached, "issue on an unplugged drive");
    if (idx == kSlots)
        return Status(ErrorCode::kOverflow, "all 32 NCQ slots busy");
    if (nsectors == 0)
        return Status(ErrorCode::kInvalidArgument, "empty transfer");

    auto m = handle_.map(0, data_pa, nsectors * profile_.sector_bytes,
                         is_write ? iommu::DmaDir::kToDevice
                                  : iommu::DmaDir::kFromDevice);
    if (!m.isOk())
        return m.status();

    slots_[idx] = Slot{true, is_write, lba, nsectors, m.value()};
    obs_slots_busy_.set(kSlots - freeSlots());
    const Nanos when =
        std::max(sim_.now(), core_.virtualNow()) + profile_.doorbell_ns;
    const u64 e = epoch_;
    sim_.scheduleAt(when, [this, idx, e] {
        if (e != epoch_)
            return;
        deviceStart(idx);
    });
    return idx;
}

void
AhciDevice::deviceStart(u32 slot_idx)
{
    // The media and the SATA link serve one command at a time; NCQ
    // only reorders which queued command goes next.
    pending_.push_back(slot_idx);
    serviceNext();
}

void
AhciDevice::serviceNext()
{
    if (media_busy_ || pending_.empty())
        return;
    media_busy_ = true;
    // NCQ reordering: prefer the command that continues the current
    // head position (what real NCQ scheduling buys), else pick any.
    size_t pick = rng_.below(pending_.size());
    for (size_t i = 0; i < pending_.size(); ++i) {
        if (slots_[pending_[i]].lba == last_lba_end_) {
            pick = i;
            break;
        }
    }
    const u32 slot_idx = pending_[pick];
    pending_.erase(pending_.begin() + static_cast<long>(pick));

    const Slot &slot = slots_[slot_idx];
    const bool sequential = slot.lba == last_lba_end_;
    last_lba_end_ = slot.lba + slot.nsectors;

    Nanos service = sequential ? profile_.sequential_ns : profile_.seek_ns;
    service += static_cast<Nanos>(
        static_cast<double>(slot.nsectors * profile_.sector_bytes) * 8 /
        profile_.bandwidth_gbps);

    const u64 e = epoch_;
    sim_.scheduleAfter(service, [this, slot_idx, e] {
        if (e != epoch_)
            return; // drive unplugged while the command was in flight
        // Data phase through translation.
        Slot &slot = slots_[slot_idx];
        bool bad = false;
        for (u32 s = 0; s < slot.nsectors && !bad; ++s) {
            Status ds;
            const u64 addr = slot.mapping.device_addr +
                             static_cast<u64>(s) * profile_.sector_bytes;
            if (slot.is_write) {
                ds = handle_.deviceRead(addr, scratch_.data(),
                                        profile_.sector_bytes);
            } else {
                ds = handle_.deviceWrite(addr, scratch_.data(),
                                         profile_.sector_bytes);
            }
            bad = !ds.isOk();
        }
        if (!bad)
            bytes_moved_ += slot.nsectors * profile_.sector_bytes;
        media_busy_ = false;
        serviceNext();
        sim_.scheduleAfter(profile_.irq_ns, [this, slot_idx, bad, e] {
            if (e != epoch_)
                return;
            core_.post([this, slot_idx, bad, e] {
                if (e != epoch_)
                    return;
                complete(slot_idx);
                if (completion_cb_) {
                    completion_cb_(slot_idx,
                                   bad ? Status(ErrorCode::kIoPageFault,
                                                "DMA error")
                                       : Status::ok());
                }
            });
        });
    });
}

void
AhciDevice::complete(u32 slot_idx)
{
    Slot &slot = slots_[slot_idx];
    RIO_ASSERT(slot.busy, "completing an idle slot");
    // SATA-style: one unmap per completion; no burst structure to
    // exploit (the queue completes out of order).
    Status s = handle_.unmap(slot.mapping, /*end_of_burst=*/true);
    RIO_ASSERT(s.isOk(), "ahci unmap failed: ", s.toString());
    slot.busy = false;
    obs_slots_busy_.set(kSlots - freeSlots());
    ++completed_;
}

void
AhciDevice::surpriseUnplug()
{
    RIO_ASSERT(up_, "surpriseUnplug while down");
    up_ = false;
    ++epoch_; // every scheduled device event dies on the epoch check
    pending_.clear();
    media_busy_ = false;
}

void
AhciDevice::removeCleanup()
{
    RIO_ASSERT(!up_, "removeCleanup on a live drive");
    for (Slot &slot : slots_) {
        if (!slot.busy)
            continue;
        (void)handle_.unmap(slot.mapping, /*end_of_burst=*/true);
        slot.busy = false;
        obs_slots_busy_.set(kSlots - freeSlots());
    }
}

void
AhciDevice::replug()
{
    RIO_ASSERT(!up_, "replug while up");
    up_ = true;
}

} // namespace rio::ahci
