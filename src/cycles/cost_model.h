/**
 * @file
 * Calibrated primitive-cost model.
 *
 * The paper's methodology (§3.3, §5.1) establishes that end-to-end
 * performance is entirely determined by the number of CPU-core cycles
 * spent per packet; the IOMMU/device hardware runs in parallel and is
 * never the bottleneck. The authors themselves evaluate rIOMMU by
 * executing its driver code and busy-waiting a measured constant per
 * rIOTLB invalidation. We adopt the same model: every driver-side
 * operation is functionally executed against simulated structures and
 * charged cycles from this table.
 *
 * Values are core cycles on the paper's 3.10 GHz Xeon E3-1220 and are
 * calibrated so the component costs that *emerge* from executing the
 * real algorithms land near Table 1 of the paper (see
 * EXPERIMENTS.md for the paper-vs-measured comparison).
 */
#ifndef RIO_CYCLES_COST_MODEL_H
#define RIO_CYCLES_COST_MODEL_H

#include "base/types.h"

namespace rio::cycles {

/**
 * Primitive operation costs, charged by the data-structure code at
 * the point where the work actually happens.
 */
struct CostModel
{
    /** Core clock in GHz (Xeon E3-1220 of the paper's testbed). */
    double core_ghz = 3.1;

    // ---- CPU-side memory system -------------------------------------
    /** Cached load/store hitting L1. */
    Cycles cached_access = 4;
    /** Store to a line that will be written back (page-table update). */
    Cycles table_store = 10;
    /** Full memory barrier (MFENCE). */
    Cycles memory_barrier = 35;
    /**
     * CLFLUSH of a dirty line plus the stall the driver observes.
     * The paper attributes the 500+ cycle page-table insert mostly to
     * barriers + cacheline flushes on non-coherent I/O page walks.
     */
    Cycles cacheline_flush = 250;

    // ---- Red-black tree (Linux IOVA allocator) -----------------------
    /**
     * Cost per rb-tree node visited during search/scan. Pointer
     * chasing over a pool much larger than L1 makes each visit a
     * (partial) cache miss; 25 cycles reproduces both the logarithmic
     * find (~250 cycles at ~3K live IOVAs) and, together with the
     * cached-node pathology, the ~4K-cycle linear allocations.
     */
    Cycles rb_node_visit = 20;
    /** Cost per rebalancing step (rotation/recolor) on insert/erase. */
    Cycles rb_rebalance_step = 18;
    /** Extra constant in the stock allocator's free path (slab free +
     * lock handoff), absent from the magazine allocator. */
    Cycles linux_free_extra = 70;

    /** Fixed lock/slab overhead of any allocator alloc/free call. */
    Cycles iova_op_base = 55;

    // ---- IOVA magazine allocator (strict+ / defer+) ------------------
    /** Constant-time magazine pop/push (the authors' FAST'15 design). */
    Cycles magazine_op = 35;

    // ---- Baseline IOMMU page tables ----------------------------------
    /**
     * Per-level cost of the *driver's* software walk when inserting a
     * translation (cold: descends physical pointers it last touched a
     * full ring-lap ago).
     */
    Cycles pt_walk_level_insert = 65;
    /**
     * Per-level cost when removing: the map() walk just warmed the
     * upper levels, so unmap's walk is cheaper.
     */
    Cycles pt_walk_level_remove = 25;

    // ---- IOTLB ---------------------------------------------------------
    /**
     * Synchronous single-entry IOTLB invalidation (queued invalidation
     * descriptor + wait). The paper measures ~2,127 cycles and uses
     * 2,150 as its own busy-wait constant; we use theirs. The rIOMMU
     * driver charges this constant directly; the baseline modes build
     * the same total from the QI steps below (iommu/inval_queue.h).
     */
    Cycles iotlb_invalidate_entry = 2150;
    /** QI: write one 128-bit descriptor into the queue (2 stores +
     * bookkeeping). */
    Cycles qi_submit = 40;
    /** QI: uncached MMIO write of the queue-tail doorbell. */
    Cycles qi_doorbell = 300;
    /** QI: hardware consumption per descriptor. */
    Cycles qi_hw_per_descriptor = 150;
    /** QI: round-trip + status-writeback latency the core spins
     * through on a wait descriptor. Composed:
     * 2*40 + 300 + 2*150 + 1462 + 8 = 2,150, the paper's constant. */
    Cycles qi_wait_latency = 1462;
    /** Enqueue-only cost under deferred invalidation (Table 1: 9). */
    Cycles iotlb_invalidate_queued = 9;
    /** Full IOTLB flush, paid once per deferred batch (250 frees). */
    Cycles iotlb_global_flush = 2150;
    /** Per-entry management of the deferred-free list (defer mode). */
    Cycles defer_list_op = 170;

    // ---- IOMMU hardware-side walk (charged to the device, not core) --
    /**
     * One dependent DRAM read per radix level during a hardware
     * IOTLB-miss walk; 4 levels == 1,532 cycles, the miss penalty the
     * paper measures with its ibverbs rig (§5.3).
     */
    Cycles hw_walk_level = 383;
    /** rIOMMU flat-table walk: a bounds check plus one rPTE fetch. */
    Cycles hw_rwalk = 400;
    /** IOTLB/rIOTLB lookup hit. */
    Cycles hw_tlb_hit = 2;

    // ---- Fixed driver overheads (Table 1 "other" rows) ----------------
    /** Function-call/pinning/bookkeeping overhead of a map call. */
    Cycles map_other = 44;
    /** Same for unmap (strict; defer adds defer_list_op on top). */
    Cycles unmap_other = 26;

    // ---- Misc ----------------------------------------------------------
    /** Locked (atomic) read-modify-write, e.g. rRING tail bump. */
    Cycles locked_rmw = 20;
    /**
     * Kernel-abstraction overhead of a pass-through (un)map call:
     * the paper measures ~200 cycles per packet of "unrelated kernel
     * abstraction code" under HWpt/SWpt (§5.1); with two buffers per
     * packet that is ~50 per map or unmap.
     */
    Cycles passthrough_call = 50;

    // ---- Fault reporting & recovery -----------------------------------
    /**
     * Reading the fault-recording state after an I/O page fault: an
     * interrupt-context read of the fault-status register plus the
     * uncached reads that drain one fault-log record and the write
     * that clears it. Charged once per recovered fault regardless of
     * policy.
     */
    Cycles fault_report = 750;
    /**
     * Re-installing a damaged translation under the retry-with-remap
     * policy: one leaf-level table store plus barrier, on top of the
     * per-retry device access itself.
     */
    Cycles fault_remap = 350;
    /**
     * Backoff penalty of the drop-with-backoff policy: the driver
     * parks the faulting request and schedules a later retransmit
     * (timer programming + softirq bookkeeping).
     */
    Cycles fault_backoff = 2000;

    // ---- Device lifecycle & invalidation time-out ----------------------
    /**
     * Bounded spin on a queued-invalidation wait descriptor whose
     * status write never lands (ITE analog: the target device stopped
     * ack'ing, e.g. it was surprise-removed). Four full QI round
     * trips before the driver declares a time-out.
     */
    Cycles qi_timeout_spin = 8600;
    /**
     * Back-off before retrying a timed-out invalidation: timer
     * programming plus the modeled wait the driver sleeps through
     * before re-ringing the doorbell.
     */
    Cycles lifecycle_backoff = 4000;
    /**
     * Abort-queue recovery: clear the sticky queue-error state, skip
     * the head past the dead descriptor and restart the queue
     * (fault-status read, head rewrite, doorbell).
     */
    Cycles lifecycle_abort_recovery = 1200;
    /**
     * Per-device quiesce/detach bookkeeping: walking driver state to
     * stop posting, plus context-entry teardown writes.
     */
    Cycles lifecycle_quiesce = 400;

    // ---- Virtualization (guest VMs, src/virt) --------------------------
    /**
     * VM exit + VM entry round trip: world switch, VMCS save/restore
     * and the cache/TLB pollution the guest observes on resume.
     * Calibrated to published VT-x exit latencies (~1,200 cycles on
     * the paper-era Xeon generation).
     */
    Cycles vmexit_roundtrip = 1200;
    /** Hypervisor exit-reason decode + dispatch to the device model. */
    Cycles hyp_dispatch = 400;
    /**
     * Emulating one trapped vIOMMU register access: instruction decode
     * of the faulting MMIO, register-file update in the device model.
     */
    Cycles vreg_emulate = 500;
    /**
     * Replaying one trapped guest invalidation against the host IOMMU
     * under the emulated strategy (host QI submit + doorbell from the
     * hypervisor's context).
     */
    Cycles inval_replay = 800;
    /**
     * Same replay under nested translation: hardware walks guest
     * tables directly, so the hypervisor only forwards the doorbell
     * (no descriptor rewrite, no shadow bookkeeping).
     */
    Cycles inval_replay_nested = 150;
    /**
     * Syncing one write-protect-trapped guest page-table store into
     * the merged shadow table (re-walk + shadow store + unprotect/
     * reprotect dance), on top of the exit round trip.
     */
    Cycles shadow_sync = 350;
    /**
     * One explicit hypercall (e.g. rIOMMU paravirtual ring-table
     * registration at guest boot): vmexit round trip plus argument
     * marshalling and hypervisor-side validation.
     */
    Cycles hypercall = 1500;

    /** Convert cycles to nanoseconds at this model's clock. */
    double toNanos(Cycles c) const
    {
        return static_cast<double>(c) / core_ghz;
    }
    /** Convert cycles to seconds. */
    double toSeconds(Cycles c) const { return toNanos(c) * 1e-9; }
    /** Cycles per second. */
    double hz() const { return core_ghz * 1e9; }
};

/** The default, paper-calibrated cost model. */
const CostModel &defaultCostModel();

} // namespace rio::cycles

#endif // RIO_CYCLES_COST_MODEL_H
