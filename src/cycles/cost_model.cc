#include "cycles/cost_model.h"

namespace rio::cycles {

const CostModel &
defaultCostModel()
{
    static const CostModel model{};
    return model;
}

} // namespace rio::cycles
