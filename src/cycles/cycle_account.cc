#include "cycles/cycle_account.h"

#include "base/logging.h"

namespace rio::cycles {

const char *
catName(Cat cat)
{
    switch (cat) {
      case Cat::kMapIovaAlloc: return "map/iova alloc";
      case Cat::kMapPageTable: return "map/page table";
      case Cat::kMapOther: return "map/other";
      case Cat::kUnmapIovaFind: return "unmap/iova find";
      case Cat::kUnmapIovaFree: return "unmap/iova free";
      case Cat::kUnmapPageTable: return "unmap/page table";
      case Cat::kUnmapIotlbInv: return "unmap/iotlb inv";
      case Cat::kUnmapOther: return "unmap/other";
      case Cat::kProcessing: return "processing";
      case Cat::kLockWait: return "lock wait";
      case Cat::kFaultHandling: return "fault handling";
      case Cat::kLifecycle: return "lifecycle";
      case Cat::kVirt: return "virt";
      case Cat::kNumCats: break;
    }
    RIO_PANIC("bad Cat");
}

Cycles
CycleAccount::total() const
{
    Cycles sum = 0;
    for (auto c : cycles_)
        sum += c;
    return sum;
}

Cycles
CycleAccount::mapTotal() const
{
    return get(Cat::kMapIovaAlloc) + get(Cat::kMapPageTable) +
           get(Cat::kMapOther);
}

Cycles
CycleAccount::unmapTotal() const
{
    return get(Cat::kUnmapIovaFind) + get(Cat::kUnmapIovaFree) +
           get(Cat::kUnmapPageTable) + get(Cat::kUnmapIotlbInv) +
           get(Cat::kUnmapOther);
}

void
CycleAccount::reset()
{
    cycles_.fill(0);
    ops_.fill(0);
}

CycleAccount
CycleAccount::since(const CycleAccount &earlier) const
{
    CycleAccount delta;
    for (unsigned i = 0; i < kNumCats; ++i) {
        delta.cycles_[i] = cycles_[i] - earlier.cycles_[i];
        delta.ops_[i] = ops_[i] - earlier.ops_[i];
    }
    return delta;
}

} // namespace rio::cycles
