/**
 * @file
 * Per-category cycle accounting. The categories are exactly the rows
 * of the paper's Table 1 plus the non-DMA packet-processing work
 * ("other" in Figure 7), so the bench binaries can print the same
 * breakdowns the paper prints.
 */
#ifndef RIO_CYCLES_CYCLE_ACCOUNT_H
#define RIO_CYCLES_CYCLE_ACCOUNT_H

#include <array>
#include <string>

#include "base/types.h"

namespace rio::cycles {

/** Where a charged cycle goes in the Table 1 / Figure 7 breakdowns. */
enum class Cat : unsigned {
    kMapIovaAlloc = 0, //!< map: allocate an IOVA integer
    kMapPageTable,     //!< map: insert translation (incl. sync_mem)
    kMapOther,         //!< map: call overhead, pinning, packing
    kUnmapIovaFind,    //!< unmap: locate the IOVA in allocator state
    kUnmapIovaFree,    //!< unmap: release the IOVA integer
    kUnmapPageTable,   //!< unmap: remove translation (incl. sync_mem)
    kUnmapIotlbInv,    //!< unmap: IOTLB/rIOTLB invalidation
    kUnmapOther,       //!< unmap: call overhead, deferred-list mgmt
    kProcessing,       //!< TCP/IP, interrupts, application logic
    kLockWait,         //!< spinning on a contended driver lock
    kFaultHandling,    //!< fault report read-out + recovery policy work
    kLifecycle,        //!< quiesce/detach work + QI time-out recovery
    kVirt,             //!< vmexit round trips, hypercalls, shadow syncs
    kNumCats
};

inline constexpr unsigned kNumCats =
    static_cast<unsigned>(Cat::kNumCats);

/** Short printable name for @p cat ("iova alloc", ...). */
const char *catName(Cat cat);

/**
 * Accumulates cycles by category. One CycleAccount per simulated
 * core; the DMA layer and workloads charge into it, and the
 * experiment runner reads totals and breakdowns out of it.
 */
class CycleAccount
{
  public:
    CycleAccount() { reset(); }

    /** Charge @p c cycles to @p cat. */
    void
    charge(Cat cat, Cycles c)
    {
        cycles_[static_cast<unsigned>(cat)] += c;
        ops_[static_cast<unsigned>(cat)] += 1;
    }

    /** Charge without bumping the op count (continuation of an op). */
    void
    chargeCont(Cat cat, Cycles c)
    {
        cycles_[static_cast<unsigned>(cat)] += c;
    }

    /**
     * Charge a whole burst at once: @p c cycles covering @p n ops.
     * Identical totals to n charge() calls — the batching entry used
     * by cycles::BatchCharge on paths with no intervening
     * virtualNow() reads.
     */
    void
    chargeBatch(Cat cat, Cycles c, u64 n)
    {
        cycles_[static_cast<unsigned>(cat)] += c;
        ops_[static_cast<unsigned>(cat)] += n;
    }

    Cycles get(Cat cat) const
    {
        return cycles_[static_cast<unsigned>(cat)];
    }

    u64 ops(Cat cat) const { return ops_[static_cast<unsigned>(cat)]; }

    /** Average cycles per operation in @p cat (0 if none). */
    double
    avg(Cat cat) const
    {
        const u64 n = ops(cat);
        return n ? static_cast<double>(get(cat)) / static_cast<double>(n)
                 : 0.0;
    }

    /** Sum over all categories. */
    Cycles total() const;

    /** Sum over the map-side categories. */
    Cycles mapTotal() const;

    /** Sum over the unmap-side categories. */
    Cycles unmapTotal() const;

    /** Sum over DMA-management categories (everything but processing). */
    Cycles dmaTotal() const { return total() - get(Cat::kProcessing); }

    void reset();

    /** A -= style delta: this minus @p earlier, category-wise. */
    CycleAccount since(const CycleAccount &earlier) const;

  private:
    std::array<Cycles, kNumCats> cycles_;
    std::array<u64, kNumCats> ops_;
};

} // namespace rio::cycles

#endif // RIO_CYCLES_CYCLE_ACCOUNT_H
