/**
 * @file
 * Hot-path charge batching. The simulator's fast path (translate /
 * map / unmap in a completion burst) touches the CycleAccount and the
 * obs registry once per packet or per page reference; BatchCharge and
 * the obs::Deferred* accumulators let those paths settle shared state
 * once per burst instead.
 *
 * The cardinal rule: batching may move *when* accounting lands, never
 * its final value — and it must never straddle a Core::virtualNow()
 * read, because virtual time is derived from charged cycles
 * mid-item. BatchCharge is therefore only for spans with no
 * intervening virtualNow (pure per-reference bookkeeping); everything
 * that feeds timestamps keeps charging per op.
 *
 * setBatchingEnabled is the bench_selfperf ablation toggle; the
 * harness (bench_common) turns batching on for benches, unit tests
 * run with it off and see per-op-exact metrics.
 */
#ifndef RIO_CYCLES_BATCH_H
#define RIO_CYCLES_BATCH_H

#include "cycles/cycle_account.h"
#include "obs/deferred.h"

namespace rio::cycles {

/** Runtime toggle for all deferred accounting (obs + BatchCharge). */
inline bool
batchingEnabled()
{
    return obs::deferredEnabled();
}

inline void
setBatchingEnabled(bool on)
{
    obs::setDeferredEnabled(on);
}

/** Settle every deferred accumulator (barrier / pre-snapshot). */
inline void
flushBatches()
{
    obs::flushAllDeferred();
}

/**
 * Accumulates one category's charges across a burst and delivers
 * them with a single chargeBatch() call. RAII: destruction flushes,
 * so early exits cannot drop cycles.
 */
class BatchCharge
{
  public:
    BatchCharge(CycleAccount &acct, Cat cat) : acct_(acct), cat_(cat) {}
    ~BatchCharge() { flush(); }

    BatchCharge(const BatchCharge &) = delete;
    BatchCharge &operator=(const BatchCharge &) = delete;

    /** Charge @p c cycles as one op of the burst. */
    void
    add(Cycles c)
    {
        if (!batchingEnabled()) {
            acct_.charge(cat_, c);
            return;
        }
        cycles_ += c;
        ++ops_;
    }

    void
    flush()
    {
        if (ops_) {
            acct_.chargeBatch(cat_, cycles_, ops_);
            cycles_ = 0;
            ops_ = 0;
        }
    }

    u64 pendingOps() const { return ops_; }

  private:
    CycleAccount &acct_;
    Cat cat_;
    Cycles cycles_ = 0;
    u64 ops_ = 0;
};

} // namespace rio::cycles

#endif // RIO_CYCLES_BATCH_H
