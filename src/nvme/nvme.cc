#include "nvme/nvme.h"

#include <algorithm>
#include <cstring>

#include "base/logging.h"

namespace rio::nvme {

NvmeDevice::NvmeDevice(des::Simulator &sim, des::Core &core,
                       mem::PhysicalMemory &pm, dma::DmaHandle &handle,
                       NvmeProfile profile)
    : sim_(sim), core_(core), pm_(pm), handle_(handle), profile_(profile),
      scratch_(profile.block_bytes, 0),
      obs_sq_inflight_(obs::registry().gauge("nvme.sq_inflight"))
{
    RIO_ASSERT(profile_.queue_entries >= 2 &&
                   profile_.queue_entries <= 65536,
               "NVMe queues hold up to 64K commands");
}

NvmeDevice::~NvmeDevice() = default;

void
NvmeDevice::bringUp()
{
    RIO_ASSERT(!up_, "bringUp twice");
    up_ = true;
    ++epoch_;
    const u64 sq_bytes =
        static_cast<u64>(profile_.queue_entries) * sizeof(Command);
    const u64 cq_bytes =
        static_cast<u64>(profile_.queue_entries) * sizeof(Completion);
    if (!queues_carved_) {
        sq_base_ = pm_.allocContiguous(sq_bytes);
        cq_base_ = pm_.allocContiguous(cq_bytes);
        queues_carved_ = true;
    }

    auto sm = handle_.map(kStaticRid, sq_base_, static_cast<u32>(sq_bytes),
                          iommu::DmaDir::kBidir);
    RIO_ASSERT(sm.isOk(), "SQ map failed");
    sq_mapping_ = sm.value();
    auto cm = handle_.map(kStaticRid, cq_base_, static_cast<u32>(cq_bytes),
                          iommu::DmaDir::kBidir);
    RIO_ASSERT(cm.isOk(), "CQ map failed");
    cq_mapping_ = cm.value();

    slots_.assign(profile_.queue_entries, Slot{});
}

void
NvmeDevice::shutDown()
{
    RIO_ASSERT(up_, "shutDown while down");
    up_ = false;
    ++epoch_; // cancel in-flight device events
    device_busy_ = false;
    kick_scheduled_ = false;
    irq_pending_ = false;
    irq_timer_ = false;
    teardownMappings();
}

void
NvmeDevice::teardownMappings()
{
    u32 idx = sq_head_;
    for (u32 n = 0; n < profile_.queue_entries; ++n) {
        if (slots_[idx].busy) {
            (void)handle_.unmap(slots_[idx].mapping, true);
            slots_[idx].busy = false;
        }
        idx = (idx + 1) % profile_.queue_entries;
    }
    (void)handle_.unmap(sq_mapping_, true);
    (void)handle_.unmap(cq_mapping_, true);
    cid_to_slot_.clear();
    sq_tail_ = 0;
    sq_head_ = 0;
    sq_inflight_ = 0;
    obs_sq_inflight_.set(0);
    cq_tail_ = 0;
    cq_head_ = 0;
    completions_since_irq_ = 0;
}

void
NvmeDevice::surpriseUnplug()
{
    RIO_ASSERT(up_, "surpriseUnplug while down");
    up_ = false;
    ++epoch_; // every scheduled device event dies on the epoch check
    device_busy_ = false;
    kick_scheduled_ = false;
    irq_pending_ = false;
    irq_timer_ = false;
    completions_since_irq_ = 0;
}

void
NvmeDevice::removeCleanup()
{
    RIO_ASSERT(!up_, "removeCleanup on a live device");
    teardownMappings();
}

void
NvmeDevice::replug()
{
    RIO_ASSERT(!up_, "replug while up");
    bringUp();
}

u32
NvmeDevice::submitSpace() const
{
    return profile_.queue_entries - 1 - sq_inflight_;
}

Result<u32>
NvmeDevice::submit(Opcode op, u64 slba, u32 nlb, PhysAddr data_pa)
{
    RIO_ASSERT(up_, "submit on a down device");
    if (submitSpace() == 0)
        return Status(ErrorCode::kOverflow, "submission queue full");
    if (nlb == 0 || nlb > 2)
        return Status(ErrorCode::kInvalidArgument,
                      "this model moves 1..2 blocks per command (PRP1 "
                      "only)");

    const u32 bytes = nlb * profile_.block_bytes;
    const iommu::DmaDir dir = op == Opcode::kRead
                                  ? iommu::DmaDir::kFromDevice
                                  : iommu::DmaDir::kToDevice;
    auto m = handle_.map(kDataRid, data_pa, bytes, dir);
    if (!m.isOk())
        return m.status();

    const u32 idx = sq_tail_;
    Slot &slot = slots_[idx];
    RIO_ASSERT(!slot.busy, "SQ slot still busy");
    slot = Slot{true, m.value(), op, slba, nlb};

    Command cmd;
    cmd.opcode = static_cast<u8>(op);
    cmd.cid = next_cid_++;
    cmd.prp1 = m.value().device_addr;
    cmd.slba = slba;
    cmd.nlb = nlb;
    pm_.writeObject(sq_base_ + idx * sizeof(Command), cmd);
    cid_to_slot_[cmd.cid] = idx;

    sq_tail_ = (sq_tail_ + 1) % profile_.queue_entries;
    ++sq_inflight_;
    obs_sq_inflight_.set(sq_inflight_);
    kick();
    return cmd.cid;
}

void
NvmeDevice::kick()
{
    if (kick_scheduled_ || device_busy_)
        return;
    kick_scheduled_ = true;
    const Nanos when =
        std::max(sim_.now(), core_.virtualNow()) + profile_.doorbell_ns;
    const u64 e = epoch_;
    sim_.scheduleAt(when, [this, e] {
        if (e != epoch_)
            return;
        kick_scheduled_ = false;
        devicePump();
    });
}

void
NvmeDevice::devicePump()
{
    if (device_busy_ || !up_ || sq_head_ == sq_tail_)
        return;
    device_busy_ = true;
    deviceExecute(sq_head_);
}

void
NvmeDevice::deviceExecute(u32 sq_idx)
{
    // Fetch the command through translation, as the controller does.
    Command cmd;
    Status s = handle_.deviceRead(sq_mapping_.device_addr +
                                      sq_idx * sizeof(Command),
                                  &cmd, sizeof(cmd));
    bool fault = false;
    if (!s) {
        ++dma_faults_;
        fault = true;
    }

    const u32 bytes = cmd.nlb * profile_.block_bytes;
    const Nanos xfer_ns = static_cast<Nanos>(
        static_cast<double>(bytes) * 8 / profile_.bandwidth_gbps);
    const Nanos done_at =
        sim_.now() + profile_.access_latency_ns + xfer_ns;

    const u64 e = epoch_;
    sim_.scheduleAt(done_at, [this, cmd, sq_idx, fault, e]() mutable {
        if (e != epoch_)
            return; // device unplugged while the command was in flight
        bool bad = fault;
        if (!bad && cmd.opcode == static_cast<u8>(Opcode::kWrite)) {
            // Pull the data from memory into flash.
            for (u32 b = 0; b < cmd.nlb && !bad; ++b) {
                Status ds = handle_.deviceRead(
                    cmd.prp1 + b * profile_.block_bytes, scratch_.data(),
                    profile_.block_bytes);
                if (!ds) {
                    ++dma_faults_;
                    bad = true;
                    break;
                }
                flash_[cmd.slba + b] = scratch_;
                media_bytes_ += profile_.block_bytes;
            }
        } else if (!bad && cmd.opcode == static_cast<u8>(Opcode::kRead)) {
            for (u32 b = 0; b < cmd.nlb && !bad; ++b) {
                auto it = flash_.find(cmd.slba + b);
                if (it != flash_.end()) {
                    scratch_ = it->second;
                } else {
                    std::fill(scratch_.begin(), scratch_.end(), 0);
                }
                Status ds = handle_.deviceWrite(
                    cmd.prp1 + b * profile_.block_bytes, scratch_.data(),
                    profile_.block_bytes);
                if (!ds) {
                    ++dma_faults_;
                    bad = true;
                    break;
                }
                media_bytes_ += profile_.block_bytes;
            }
        }

        // Completion writeback through translation.
        Completion cqe;
        cqe.cid = cmd.cid;
        cqe.status = bad ? 1 : 0;
        cqe.phase = 1;
        Status cs = handle_.deviceWrite(cq_mapping_.device_addr +
                                            cq_tail_ * sizeof(Completion),
                                        &cqe, sizeof(cqe));
        if (!cs)
            ++dma_faults_;
        cq_tail_ = (cq_tail_ + 1) % profile_.queue_entries;
        sq_head_ = (sq_head_ + 1) % profile_.queue_entries;
        ++completions_since_irq_;
        (void)sq_idx;

        if (completions_since_irq_ >= profile_.irq_batch) {
            raiseIrq();
        } else if (!irq_timer_) {
            irq_timer_ = true;
            const u64 te = epoch_;
            sim_.scheduleAfter(profile_.irq_delay_ns, [this, te] {
                if (te != epoch_)
                    return;
                irq_timer_ = false;
                if (completions_since_irq_ > 0)
                    raiseIrq();
            });
        }
        device_busy_ = false;
        devicePump();
    });
}

void
NvmeDevice::raiseIrq()
{
    completions_since_irq_ = 0;
    if (irq_pending_)
        return;
    irq_pending_ = true;
    const u64 e = epoch_;
    core_.post([this, e] {
        if (e != epoch_)
            return;
        irqHandler();
    });
}

void
NvmeDevice::irqHandler()
{
    irq_pending_ = false;
    if (!up_)
        return;
    // Reap completions in CQ order; strict FIFO per the NVMe model,
    // so the unmap order matches the map order (ring semantics).
    std::vector<std::pair<u32, Status>> done;
    while (cq_head_ != cq_tail_) {
        const Completion cqe = pm_.readObject<Completion>(
            cq_base_ + cq_head_ * sizeof(Completion));
        cq_head_ = (cq_head_ + 1) % profile_.queue_entries;
        auto it = cid_to_slot_.find(cqe.cid);
        RIO_ASSERT(it != cid_to_slot_.end(), "unknown cid completed");
        Slot &slot = slots_[it->second];
        done.emplace_back(cqe.cid,
                          cqe.status == 0
                              ? Status::ok()
                              : Status(ErrorCode::kIoPageFault,
                                       "device reported DMA error"));
        cid_to_slot_.erase(it);
        slot.busy = false;
        --sq_inflight_;
        obs_sq_inflight_.set(sq_inflight_);
        ++completed_;
        // Keep the mapping to unmap in burst order below.
        const bool last = cq_head_ == cq_tail_;
        Status us = handle_.unmap(slot.mapping, /*end_of_burst=*/last);
        RIO_ASSERT(us.isOk(), "nvme unmap failed: ", us.toString());
    }
    for (auto &[cid, status] : done) {
        if (completion_cb_)
            completion_cb_(cid, status);
    }
}

std::vector<u8>
NvmeDevice::flashRead(u64 slba, u32 nlb) const
{
    std::vector<u8> out;
    for (u32 b = 0; b < nlb; ++b) {
        auto it = flash_.find(slba + b);
        if (it != flash_.end())
            out.insert(out.end(), it->second.begin(), it->second.end());
        else
            out.insert(out.end(), profile_.block_bytes, 0);
    }
    return out;
}

void
NvmeDevice::flashWrite(u64 slba, const std::vector<u8> &data)
{
    RIO_ASSERT(data.size() % profile_.block_bytes == 0,
               "flashWrite must be block aligned");
    for (u64 b = 0; b * profile_.block_bytes < data.size(); ++b) {
        std::vector<u8> block(
            data.begin() + static_cast<long>(b * profile_.block_bytes),
            data.begin() +
                static_cast<long>((b + 1) * profile_.block_bytes));
        flash_[slba + b] = std::move(block);
    }
}

} // namespace rio::nvme
