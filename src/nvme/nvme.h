/**
 * @file
 * NVMe-like storage device model. The paper (§4, Applicability)
 * argues rIOMMU fits PCIe SSDs because NVM Express mandates
 * ring-shaped submission/completion queues (up to 64 K queues of up
 * to 64 K commands) with strict (un)mapping order. This model
 * implements that substrate: paired submission/completion queues in
 * simulated memory, command fetch / data transfer / completion
 * writeback all through the configured DMA translation path, and a
 * flash backing store with configurable latency/bandwidth.
 */
#ifndef RIO_NVME_NVME_H
#define RIO_NVME_NVME_H

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "des/core.h"
#include "des/simulator.h"
#include "dma/dma_handle.h"
#include "obs/registry.h"
#include "mem/phys_mem.h"

namespace rio::nvme {

/** Op codes of the NVM command set subset we model. */
enum class Opcode : u8 { kWrite = 0x01, kRead = 0x02, kFlush = 0x00 };

/** A 64-byte NVMe submission-queue entry (subset of fields). */
struct Command
{
    u8 opcode = 0;
    u8 pad0[3] = {};
    u32 cid = 0;    //!< command identifier
    u64 prp1 = 0;   //!< DMA address of the data buffer
    u64 slba = 0;   //!< starting logical block
    u32 nlb = 0;    //!< number of logical blocks (0's based in real
                    //!< NVMe; 1's based here for clarity)
    u8 pad1[36] = {};
};
static_assert(sizeof(Command) == 64, "SQE is 64 bytes");

/** A 16-byte completion-queue entry (subset). */
struct Completion
{
    u32 cid = 0;
    u16 status = 0; //!< 0 == success
    u16 phase = 0;  //!< toggles per CQ wrap
    u64 pad = 0;
};
static_assert(sizeof(Completion) == 16, "CQE is 16 bytes");

/** Device timing/geometry. */
struct NvmeProfile
{
    u32 block_bytes = 4096;
    u32 queue_entries = 256;
    /** Per-command access latency (fast NVMe flash, ~20 us). */
    Nanos access_latency_ns = 20000;
    /** Sustained media bandwidth. */
    double bandwidth_gbps = 25.0;
    /** Completion interrupt coalescing. */
    u32 irq_batch = 8;
    Nanos irq_delay_ns = 4000;
    Nanos doorbell_ns = 700;
};

/**
 * One I/O queue pair plus the device engine behind it. The driver
 * API (submit/poll) runs on the core; command fetch, data DMA and
 * completion writeback run in device context through the DmaHandle.
 */
class NvmeDevice
{
  public:
    /** Called on the core when a command completes. */
    using CompletionCallback =
        std::function<void(u32 cid, Status status)>;

    NvmeDevice(des::Simulator &sim, des::Core &core,
               mem::PhysicalMemory &pm, dma::DmaHandle &handle,
               NvmeProfile profile = {});
    ~NvmeDevice();

    NvmeDevice(const NvmeDevice &) = delete;
    NvmeDevice &operator=(const NvmeDevice &) = delete;

    /** Allocate and map the SQ/CQ rings. */
    void bringUp();
    void shutDown();

    // ---- lifecycle --------------------------------------------------------
    /** Surprise hot-unplug: cancel scheduled device events (epoch
     * bump) and reset the engine; mappings stay for removeCleanup(). */
    void surpriseUnplug();

    /** Driver-side cleanup after a surprise removal: unmap every live
     * mapping through the (detached) handle and reset the queues. */
    void removeCleanup();

    /** Replug a removed device: bringUp() again (queue frames are
     * carved only once). */
    void replug();

    bool isUp() const { return up_; }

    /** rRING sizes an rIOMMU handle needs for this device:
     * rid 0 statics (SQ+CQ), rid 1 data buffers. */
    static std::vector<u32>
    riommuRingSizes(const NvmeProfile &profile = {})
    {
        return {2, profile.queue_entries};
    }

    // ---- driver API (call on the core) ---------------------------------
    /** Free submission slots. */
    u32 submitSpace() const;

    /**
     * Map the data buffer, write the SQE and ring the doorbell.
     * @returns the assigned command id.
     */
    Result<u32> submit(Opcode op, u64 slba, u32 nlb, PhysAddr data_pa);

    void setCompletionCallback(CompletionCallback cb)
    {
        completion_cb_ = std::move(cb);
    }

    // ---- observability ----------------------------------------------------
    u64 completed() const { return completed_; }
    u64 mediaBytes() const { return media_bytes_; }
    u64 dmaFaults() const { return dma_faults_; }

    /** Peek the flash backing store (tests). */
    std::vector<u8> flashRead(u64 slba, u32 nlb) const;
    void flashWrite(u64 slba, const std::vector<u8> &data);

  private:
    static constexpr u16 kStaticRid = 0;
    static constexpr u16 kDataRid = 1;

    struct Slot
    {
        bool busy = false;
        dma::DmaMapping mapping;
        Opcode op = Opcode::kFlush;
        u64 slba = 0;
        u32 nlb = 0;
    };

    void kick();
    void devicePump();
    void deviceExecute(u32 sq_idx);
    void raiseIrq();
    void irqHandler();

    /** Shared unmap-all used by shutDown and removeCleanup. */
    void teardownMappings();

    des::Simulator &sim_;
    des::Core &core_;
    mem::PhysicalMemory &pm_;
    dma::DmaHandle &handle_;
    NvmeProfile profile_;

    bool up_ = false;
    // Lifecycle epoch: scheduled device events capture it and bail on
    // mismatch, so unplug cancels everything in flight.
    u64 epoch_ = 0;
    bool queues_carved_ = false; //!< SQ/CQ frames: carve once
    PhysAddr sq_base_ = 0;
    PhysAddr cq_base_ = 0;
    dma::DmaMapping sq_mapping_;
    dma::DmaMapping cq_mapping_;

    u32 sq_tail_ = 0;  // driver writes
    u32 sq_head_ = 0;  // device reads
    u32 sq_inflight_ = 0;
    u32 cq_tail_ = 0;  // device writes
    u32 cq_head_ = 0;  // driver reads
    u32 next_cid_ = 1;
    bool device_busy_ = false;
    bool kick_scheduled_ = false;
    bool irq_pending_ = false;
    bool irq_timer_ = false;
    u32 completions_since_irq_ = 0;

    std::vector<Slot> slots_; // indexed by SQ index
    std::unordered_map<u32, u32> cid_to_slot_;
    std::unordered_map<u64, std::vector<u8>> flash_; // lba -> block
    std::vector<u8> scratch_;

    u64 completed_ = 0;
    u64 media_bytes_ = 0;
    u64 dma_faults_ = 0;
    obs::Gauge &obs_sq_inflight_; //!< commands the device owns

    CompletionCallback completion_cb_;
};

} // namespace rio::nvme

#endif // RIO_NVME_NVME_H
