/**
 * @file
 * Four-level radix I/O page table, VT-d second-level style, resident
 * in simulated physical memory (paper §2.2 / Figure 2). The OS-side
 * map/unmap operations are charged to the core's cycle account — they
 * are the "page table" rows of Table 1 — while the hardware-side walk
 * is uncharged (it happens in the IOMMU, off the core's critical
 * path) but reports how many levels it touched so the IOTLB-miss cost
 * (§5.3) can be modeled.
 */
#ifndef RIO_IOMMU_PAGE_TABLE_H
#define RIO_IOMMU_PAGE_TABLE_H

#include <array>
#include <memory>

#include "base/status.h"
#include "base/types.h"
#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"
#include "iommu/types.h"
#include "mem/phys_mem.h"

namespace rio::obs {
class DeferredCounter;
}

namespace rio::iommu {

class VirtStage2;
class VirtTraps;

/**
 * A leaf page-table entry: Intel-style bit 0 = device-read allowed,
 * bit 1 = device-write allowed, bits 12+ = physical frame address.
 * Non-leaf entries use the same layout and point at the next table.
 */
struct Pte
{
    u64 raw = 0;

    static constexpr u64 kRead = 1u << 0;
    static constexpr u64 kWrite = 1u << 1;
    /** VT-d PS bit: this level-3 entry is a 2 MB leaf, not a table
     * pointer. Only stage-2 tables install huge leaves today. */
    static constexpr u64 kHuge = 1u << 7;
    /** VT-d second-level entries hold a 52-bit address field; bits
     * 52..63 are reserved and must be zero (checked by the walker). */
    static constexpr u64 kAddrMask = u64{0x000ffffffffff000};
    static constexpr u64 kReservedMask = u64{0xfff0000000000000};

    bool present() const { return (raw & (kRead | kWrite)) != 0; }
    bool huge() const { return (raw & kHuge) != 0; }
    bool allowsRead() const { return (raw & kRead) != 0; }
    bool allowsWrite() const { return (raw & kWrite) != 0; }
    bool reservedBitsSet() const { return (raw & kReservedMask) != 0; }
    PhysAddr addr() const { return raw & kAddrMask; }

    bool
    permits(Access acc) const
    {
        return acc == Access::kRead ? allowsRead() : allowsWrite();
    }

    static Pte
    make(PhysAddr pa, DmaDir dir)
    {
        u64 raw = pa & kAddrMask;
        if (dirPermits(dir, Access::kRead))
            raw |= kRead;
        if (dirPermits(dir, Access::kWrite))
            raw |= kWrite;
        return Pte{raw};
    }

    static Pte
    makeHuge(PhysAddr pa, DmaDir dir)
    {
        return Pte{make(pa, dir).raw | kHuge};
    }
};

/**
 * One device's 4-level translation hierarchy. 48-bit IOVAs: 36-bit
 * virtual page number split into four 9-bit indices, 12-bit page
 * offset.
 */
class IoPageTable
{
  public:
    static constexpr int kLevels = 4;
    static constexpr unsigned kEntriesPerTable = 512;
    /** 4 KB pages covered by one 2 MB huge leaf. */
    static constexpr u64 kHugePfns = 512;

    /**
     * @param coherent whether IOMMU walks snoop CPU caches; if not,
     * every driver update pays a barrier + cacheline flush (§3.2).
     */
    IoPageTable(mem::PhysicalMemory &pm, bool coherent,
                const cycles::CostModel &cost, cycles::CycleAccount *acct);
    ~IoPageTable();

    IoPageTable(const IoPageTable &) = delete;
    IoPageTable &operator=(const IoPageTable &) = delete;

    /** Physical address of the root (level-1) table. */
    PhysAddr rootAddr() const { return root_; }

    /**
     * Install iova_pfn -> phys_pfn with permission @p dir. Charged as
     * map/"page table". Fails with kExists if already mapped.
     */
    Status map(u64 iova_pfn, u64 phys_pfn, DmaDir dir);

    /** Map @p npages consecutive pfns. */
    Status mapRange(u64 iova_pfn, u64 phys_pfn, u64 npages, DmaDir dir);

    /**
     * Install a 2 MB huge leaf at level kLevels-1: one table store
     * covers kHugePfns consecutive pfns, and walks terminate one
     * level early. Both pfns must be kHugePfns-aligned. Fails with
     * kExists if any 4K or huge translation already covers the slot.
     */
    Status mapHuge(u64 iova_pfn, u64 phys_pfn, DmaDir dir);

    /**
     * Remove the translation for @p iova_pfn. Charged as
     * unmap/"page table". Intermediate tables are retained, as Linux
     * retains them.
     */
    Status unmap(u64 iova_pfn);

    /**
     * Remove a 2 MB huge leaf installed by mapHuge(). One table store
     * clears kHugePfns pages of reach; fails with kNotFound if the
     * slot holds no huge leaf (a 4K hierarchy there is not touched).
     */
    Status unmapHuge(u64 iova_pfn);

    /** Unmap @p npages consecutive pfns. */
    Status unmapRange(u64 iova_pfn, u64 npages);

    /**
     * Hardware page walk (uncharged to the core). @p levels_touched,
     * when non-null, receives the number of tables read — the number
     * of dependent memory accesses an IOTLB miss costs.
     *
     * With a stage-2 hook installed (@p s2, nested virtualization)
     * every table address the walker dereferences is itself
     * translated GPA->HPA first, and @p mem_refs accumulates the
     * *combined* reference count: stage-2 references for each table
     * address plus one reference for the table read itself. Without
     * @p s2, @p mem_refs equals levels_touched.
     */
    Result<Pte> walk(u64 iova_pfn, int *levels_touched = nullptr,
                     VirtStage2 *s2 = nullptr,
                     int *mem_refs = nullptr) const;

    /**
     * Physical address of the leaf PTE slot for @p iova_pfn, or 0 if
     * the hierarchy above it is not populated. Uncharged: used by the
     * fault-injection harness to damage (and later repair) a live
     * translation behind the driver's back.
     */
    PhysAddr leafSlot(u64 iova_pfn) const;

    /**
     * Install a guest-write trap sink: every subsequent leaf store
     * (map or unmap) is reported through @p traps with this table's
     * cycle account. Pass nullptr to detach (e.g. guest teardown).
     */
    void setVirtTraps(VirtTraps *traps) { traps_ = traps; }

    /** Translations currently installed (a huge leaf counts as
     * kHugePfns 4K pages of reach). */
    u64 mappedPages() const { return mapped_pages_; }

    /** Huge (2 MB) leaves currently installed. */
    u64 hugeMappings() const { return huge_mappings_; }

    /** 4 KB table pages backing the hierarchy. */
    u64 tablePages() const { return table_pages_; }

  private:
    static unsigned levelIndex(u64 iova_pfn, int level);

    /** Descend to the table holding level @p leaf_level's slot,
     * allocating levels if @p create. Returns 0 if not populated
     * (!create) or if a huge leaf blocks the path. */
    PhysAddr descend(u64 iova_pfn, bool create, int *levels,
                     int leaf_level = kLevels);

    /** Charge one driver-side table-line update (store + sync_mem). */
    void chargeUpdate(cycles::Cat cat, int levels_walked);

    mem::PhysicalMemory &pm_;
    bool coherent_;
    const cycles::CostModel &cost_;
    cycles::CycleAccount *acct_;
    VirtTraps *traps_ = nullptr;
    PhysAddr root_;
    u64 mapped_pages_ = 0;
    u64 huge_mappings_ = 0;
    u64 table_pages_ = 0;
    /** Per-level hardware-walk read counters (obs::Registry),
     * batched: a walk-heavy burst settles the shared atomics once
     * per 256 reads instead of once per table line. */
    std::array<std::unique_ptr<obs::DeferredCounter>, kLevels>
        level_reads_;
};

} // namespace rio::iommu

#endif // RIO_IOMMU_PAGE_TABLE_H
