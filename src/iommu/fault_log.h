/**
 * @file
 * VT-d-style fault-recording model. Hardware appends one 16-byte
 * record per unserviceable DMA into a small ring in simulated
 * physical memory (the "primary fault log" / fault-recording
 * registers of the VT-d spec); when every slot is still occupied the
 * overflow bit is set and further records are dropped, exactly like
 * hardware. The driver drains records — really reading the ring words
 * back out of memory and clearing their valid bits — from its fault
 * interrupt handler.
 *
 * Record layout (two 64-bit words):
 *   word0: faulting IOVA
 *   word1: bit 63 = valid, bits 24..31 = reason code,
 *          bits 16..23 = access type, bits 0..15 = source id (BDF)
 */
#ifndef RIO_IOMMU_FAULT_LOG_H
#define RIO_IOMMU_FAULT_LOG_H

#include <vector>

#include "base/types.h"
#include "iommu/types.h"
#include "mem/phys_mem.h"

namespace rio::iommu {

class FaultLog
{
  public:
    static constexpr u64 kRecordBytes = 16;
    static constexpr unsigned kDefaultCapacity = 64;

    explicit FaultLog(mem::PhysicalMemory &pm,
                      unsigned capacity = kDefaultCapacity);
    ~FaultLog();

    FaultLog(const FaultLog &) = delete;
    FaultLog &operator=(const FaultLog &) = delete;

    /**
     * Hardware side: append @p rec. Returns false (and sets the
     * overflow bit, dropping the record) when all slots are occupied.
     */
    bool record(const FaultRecord &rec);

    /**
     * Driver side: read out every pending record in arrival order and
     * clear their valid bits, freeing the slots. Does NOT clear the
     * overflow bit — like hardware, that takes an explicit write.
     */
    std::vector<FaultRecord> drain();

    /** Fault-status overflow bit (PFO): set once a record was lost. */
    bool overflow() const { return overflow_; }
    void clearOverflow() { overflow_ = false; }

    /** Records successfully written since construction. */
    u64 recorded() const { return recorded_; }
    /** Records lost to overflow since construction. */
    u64 dropped() const { return dropped_; }

    /** Records currently pending (written, not yet drained). */
    unsigned pending() const { return live_; }

    unsigned capacity() const { return capacity_; }

    /** Physical base address of the ring (as programmed in hardware). */
    PhysAddr base() const { return base_; }

  private:
    PhysAddr slotAddr(unsigned idx) const
    {
        return base_ + idx * kRecordBytes;
    }

    mem::PhysicalMemory &pm_;
    unsigned capacity_;
    PhysAddr base_;
    unsigned head_ = 0; //!< next slot hardware writes
    unsigned tail_ = 0; //!< next slot the driver drains
    unsigned live_ = 0;
    bool overflow_ = false;
    u64 recorded_ = 0;
    u64 dropped_ = 0;
};

} // namespace rio::iommu

#endif // RIO_IOMMU_FAULT_LOG_H
