/**
 * @file
 * VT-d-style queued invalidation (QI): the driver does not poke the
 * IOTLB directly — it writes 128-bit invalidation descriptors into a
 * memory-resident ring consumed by the IOMMU, and synchronizes with a
 * wait descriptor whose completion the hardware signals by writing a
 * status word back to memory. The driver then spins on that word.
 *
 * This is where the paper's ~2,127-cycle "iotlb inv" cost comes from
 * (§3.2, consistent with prior work): not the IOTLB lookup itself but
 * the submit + hardware round trip + polling of the synchronous wait.
 * Here the cost *emerges* from those steps: descriptor stores, a
 * doorbell, the modeled hardware consumption latency, and the status
 * poll, calibrated to land at the paper's constant.
 */
#ifndef RIO_IOMMU_INVAL_QUEUE_H
#define RIO_IOMMU_INVAL_QUEUE_H

#include <unordered_set>

#include "base/status.h"
#include "base/types.h"
#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"
#include "des/spinlock.h"
#include "iommu/iommu.h"
#include "mem/phys_mem.h"
#include "obs/registry.h"

namespace rio::iommu {

/** One 128-bit QI descriptor. */
struct QiDescriptor
{
    enum class Type : u8 {
        kIotlbEntry = 1, //!< invalidate one (sid, pfn) translation
        kIotlbGlobal = 2, //!< flush everything
        kWait = 3,        //!< write status word when reached
    };

    u64 word0 = 0; //!< type(8) | sid(16)<<8
    u64 word1 = 0; //!< iova pfn, or status-word physical address

    static QiDescriptor entry(u16 sid, u64 iova_pfn);
    static QiDescriptor global();
    static QiDescriptor wait(PhysAddr status_addr);

    Type type() const { return static_cast<Type>(word0 & 0xff); }
    u16 sid() const { return static_cast<u16>(word0 >> 8); }
};

/** Running counters. */
struct QiStats
{
    u64 submitted = 0;
    u64 entry_invalidations = 0;
    u64 global_flushes = 0;
    u64 waits = 0;
    u64 wraps = 0;
    u64 timeouts = 0;   //!< sync ops whose wait never landed (ITE)
    u64 retries = 0;    //!< recoverRetry attempts
    u64 head_skips = 0; //!< dead descriptors skipped by abortAndSkip
};

/**
 * The invalidation queue shared between the IOMMU driver and the
 * IOMMU hardware model. Driver-side calls charge the core for the
 * work they do; the hardware consumption latency is part of the
 * synchronous wait the driver spins through.
 */
class InvalQueue
{
  public:
    InvalQueue(mem::PhysicalMemory &pm, Iommu &iommu,
               const cycles::CostModel &cost, u32 entries = 256);
    ~InvalQueue();

    InvalQueue(const InvalQueue &) = delete;
    InvalQueue &operator=(const InvalQueue &) = delete;

    /**
     * Synchronously invalidate one translation: submit an
     * iotlb-entry descriptor plus a wait descriptor, process, and
     * spin until the status word flips. Charged to @p acct as
     * unmap/"iotlb inv" — this is the strict mode's 2,150 cycles.
     *
     * The spin is bounded: if the status word never lands (the queue
     * froze on a descriptor targeting an unresponsive device — the
     * VT-d ITE analog), the driver gives up after qi_timeout_spin
     * cycles, charged to Cat::kLifecycle, and kTimedOut is returned.
     * Recovery is recoverRetry() / abortAndSkip() below.
     */
    Status invalidateEntrySync(Bdf bdf, u64 iova_pfn,
                               cycles::CycleAccount *acct);

    /**
     * Synchronously flush the whole IOTLB (the deferred mode's
     * batched flush). Charges @p cat on @p acct without bumping its
     * op count (the cost is amortized bookkeeping of the batch).
     * Same bounded-spin semantics as invalidateEntrySync; a global
     * flush itself never stalls the hardware (it is IOMMU-internal,
     * no device ack needed) but can time out behind an already
     * frozen queue.
     */
    Status flushAllSync(cycles::CycleAccount *acct, cycles::Cat cat);

    // ---- lifecycle robustness (ITE analog) ---------------------------

    /**
     * Mark @p sid (un)responsive. An iotlb-entry descriptor for an
     * unresponsive device freezes the queue when the hardware reaches
     * it — the ATS-style device ack never arrives — which is how a
     * surprise-removed device manifests to every queue user.
     */
    void setDeviceResponsive(u16 sid, bool responsive);

    /** Sticky queue-error state (VT-d ITE bit analog). */
    bool queueError() const { return queue_error_; }

    /**
     * Retry-with-backoff recovery: sleep lifecycle_backoff cycles,
     * clear the error and re-ring the doorbell. Succeeds (the queue
     * drains fully, later descriptors from other devices execute) iff
     * the offending device answered this time; otherwise the queue
     * re-freezes and kTimedOut is returned again. Charged to
     * Cat::kLifecycle.
     */
    Status recoverRetry(cycles::CycleAccount *acct);

    /**
     * Abort-queue recovery: skip the head past the dead descriptor,
     * clear the error and restart the queue. The skipped
     * invalidation is the caller's problem (it must purge the IOTLB
     * in software); every descriptor queued behind it — other
     * devices' invalidations included — executes normally. May
     * return kTimedOut again if another dead descriptor follows;
     * callers loop. Charged to Cat::kLifecycle.
     */
    Status abortAndSkip(cycles::CycleAccount *acct);

    /**
     * Serialize the synchronous operations on @p lock, modeling the
     * per-IOMMU invalidation-queue tail register all cores share
     * (intel-iommu's qi lock): submit + doorbell + status spin happen
     * under the lock, so concurrent invalidations from other cores
     * stack up behind the full ~2,150-cycle round trip.
     */
    void
    setContention(des::SimSpinlock *lock, des::Core *core)
    {
        lock_ = lock;
        lock_core_ = core;
    }

    /**
     * Install a doorbell trap sink: every subsequent tail-doorbell
     * MMIO write is reported through @p traps (the vIOMMU intercepts
     * the register page). Pass nullptr to detach.
     */
    void setVirtTraps(VirtTraps *traps) { traps_ = traps; }

    const QiStats &stats() const { return stats_; }
    PhysAddr base() const { return base_; }
    u32 entries() const { return entries_; }
    u32 tail() const { return tail_; }
    u32 head() const { return head_; }

    /** Raw descriptor readback (tests). */
    QiDescriptor descriptorAt(u32 idx) const;

  private:
    /** Driver writes a descriptor at the tail; returns cycle cost. */
    Cycles submit(const QiDescriptor &desc);

    /** Hardware consumes everything up to the tail. */
    Cycles hardwareDrain();

    mem::PhysicalMemory &pm_;
    Iommu &iommu_;
    const cycles::CostModel &cost_;
    u32 entries_;
    PhysAddr base_ = 0;
    PhysAddr status_addr_ = 0;
    u32 head_ = 0; //!< hardware's consumption point
    u32 tail_ = 0; //!< driver's submission point
    u64 status_cookie_ = 0;
    bool queue_error_ = false; //!< sticky; set when the drain freezes
    std::unordered_set<u16> unresponsive_sids_;
    QiStats stats_;
    des::SimSpinlock *lock_ = nullptr;
    des::Core *lock_core_ = nullptr;
    VirtTraps *traps_ = nullptr;
    obs::Gauge &obs_depth_;       //!< descriptors pending, peak-tracked
    obs::Histogram &obs_sync_;    //!< sync-op completion latency, cycles
    obs::Counter &obs_timeouts_;
};

} // namespace rio::iommu

#endif // RIO_IOMMU_INVAL_QUEUE_H
