/**
 * @file
 * Shared IOMMU vocabulary: PCI bus-device-function identifiers, DMA
 * directions, access types and fault records. Used by both the
 * baseline (VT-d-style) IOMMU and the rIOMMU.
 */
#ifndef RIO_IOMMU_TYPES_H
#define RIO_IOMMU_TYPES_H

#include <functional>
#include <string>

#include "base/types.h"

namespace rio::iommu {

/**
 * PCI requester id: 8-bit bus, 5-bit device, 3-bit function. Every
 * DMA carries one; the IOMMU uses it to locate the device's
 * translation structures (paper §2.2).
 */
struct Bdf
{
    u8 bus = 0;
    u8 dev = 0; // 5 bits
    u8 fn = 0;  // 3 bits

    /** The 16-bit request identifier as it appears on the wire. */
    u16
    pack() const
    {
        return static_cast<u16>((bus << 8) | ((dev & 0x1f) << 3) |
                                (fn & 0x7));
    }

    static Bdf
    unpack(u16 rid)
    {
        return Bdf{static_cast<u8>(rid >> 8),
                   static_cast<u8>((rid >> 3) & 0x1f),
                   static_cast<u8>(rid & 0x7)};
    }

    bool
    operator==(const Bdf &o) const
    {
        return bus == o.bus && dev == o.dev && fn == o.fn;
    }

    std::string toString() const;
};

/**
 * Direction of a DMA relative to memory, matching the 2-bit rPTE.dir
 * field: a device *reads* memory to transmit (kToDevice) and *writes*
 * memory to receive (kFromDevice).
 */
enum class DmaDir : u8 {
    kNone = 0,
    kToDevice = 1,   //!< device reads memory (transmit)
    kFromDevice = 2, //!< device writes memory (receive)
    kBidir = 3
};

/** A single device access, checked against the mapping's DmaDir. */
enum class Access : u8 {
    kRead = 1, //!< device read of memory
    kWrite = 2 //!< device write of memory
};

/** Does mapping direction @p dir permit access @p acc? */
constexpr bool
dirPermits(DmaDir dir, Access acc)
{
    return (static_cast<u8>(dir) & static_cast<u8>(acc)) != 0;
}

/** Why a translation failed. */
enum class FaultReason : u8 {
    kNotPresent,    //!< no valid translation installed
    kPermission,    //!< direction/permission bits forbid the access
    kOutOfRange,    //!< index/offset beyond structure bounds (rIOMMU)
    kNoContext,     //!< device not attached to the IOMMU
    kReservedBit,   //!< reserved bits set in a PTE/rPTE (corruption)
    kDetached       //!< DMA issued through a detached/unplugged BDF
};

const char *faultReasonName(FaultReason reason);

/** Record of one I/O page fault, kept by the IOMMU models. */
struct FaultRecord
{
    Bdf bdf;
    IovaAddr iova = 0;
    Access access = Access::kRead;
    FaultReason reason = FaultReason::kNotPresent;
};

} // namespace rio::iommu

template <>
struct std::hash<rio::iommu::Bdf>
{
    size_t
    operator()(const rio::iommu::Bdf &b) const noexcept
    {
        return std::hash<rio::u16>{}(b.pack());
    }
};

#endif // RIO_IOMMU_TYPES_H
