#include "iommu/page_table.h"

#include <vector>

#include "base/logging.h"
#include "iommu/virt_hooks.h"
#include "obs/deferred.h"
#include "obs/registry.h"

namespace rio::iommu {

IoPageTable::IoPageTable(mem::PhysicalMemory &pm, bool coherent,
                         const cycles::CostModel &cost,
                         cycles::CycleAccount *acct)
    : pm_(pm), coherent_(coherent), cost_(cost), acct_(acct)
{
    root_ = pm_.allocFrame();
    ++table_pages_;
    for (int level = 1; level <= kLevels; ++level)
        level_reads_[level - 1] =
            std::make_unique<obs::DeferredCounter>(
                obs::registry().counter(
                    "iommu.pt_walk.level_reads",
                    {{"level", std::to_string(level)}}));
}

IoPageTable::~IoPageTable()
{
    // Free the hierarchy depth-first so PhysicalMemory leak counters
    // stay meaningful in tests.
    std::vector<std::pair<PhysAddr, int>> stack{{root_, 1}};
    while (!stack.empty()) {
        auto [table, level] = stack.back();
        stack.pop_back();
        if (level < kLevels) {
            for (unsigned i = 0; i < kEntriesPerTable; ++i) {
                Pte e{pm_.read64(table + i * 8)};
                // A huge leaf maps data frames, not a child table.
                if (e.present() && !e.huge())
                    stack.emplace_back(e.addr(), level + 1);
            }
        }
        pm_.freeFrame(table);
    }
}

unsigned
IoPageTable::levelIndex(u64 iova_pfn, int level)
{
    // level 1 indexes with the top 9 bits of the 36-bit vpn.
    const int shift = 9 * (kLevels - level);
    return static_cast<unsigned>((iova_pfn >> shift) & 0x1ff);
}

PhysAddr
IoPageTable::descend(u64 iova_pfn, bool create, int *levels,
                     int leaf_level)
{
    PhysAddr table = root_;
    int walked = 1;
    for (int level = 1; level < leaf_level; ++level, ++walked) {
        const PhysAddr slot = table + levelIndex(iova_pfn, level) * 8;
        Pte entry{pm_.read64(slot)};
        if (!entry.present()) {
            if (!create) {
                if (levels)
                    *levels = walked;
                return 0;
            }
            const PhysAddr next = pm_.allocFrame();
            ++table_pages_;
            pm_.write64(slot, Pte::make(next, DmaDir::kBidir).raw);
            entry = Pte{pm_.read64(slot)};
        }
        if (entry.huge()) {
            // A 2 MB leaf blocks this path; callers report kExists.
            if (levels)
                *levels = walked;
            return 0;
        }
        table = entry.addr();
    }
    if (levels)
        *levels = walked;
    return table;
}

void
IoPageTable::chargeUpdate(cycles::Cat cat, int levels_walked)
{
    if (!acct_)
        return;
    const Cycles per_level = cat == cycles::Cat::kMapPageTable
                                 ? cost_.pt_walk_level_insert
                                 : cost_.pt_walk_level_remove;
    Cycles c = per_level * static_cast<Cycles>(levels_walked) +
               cost_.table_store;
    // sync_mem (paper Fig. 11): a flush is needed only when the
    // I/O page walk is incoherent with the CPU caches.
    if (!coherent_)
        c += cost_.memory_barrier + cost_.cacheline_flush;
    c += cost_.memory_barrier;
    acct_->charge(cat, c);
}

Status
IoPageTable::map(u64 iova_pfn, u64 phys_pfn, DmaDir dir)
{
    RIO_ASSERT(dir != DmaDir::kNone, "mapping with no permitted direction");
    int levels = 0;
    const PhysAddr leaf_table = descend(iova_pfn, true, &levels);
    chargeUpdate(cycles::Cat::kMapPageTable, levels);
    if (!leaf_table) {
        return Status(ErrorCode::kExists,
                      "iova pfn inside a huge mapping: " +
                          std::to_string(iova_pfn));
    }
    const PhysAddr slot = leaf_table + levelIndex(iova_pfn, kLevels) * 8;
    Pte existing{pm_.read64(slot)};
    if (existing.present()) {
        return Status(ErrorCode::kExists,
                      "iova pfn already mapped: " + std::to_string(iova_pfn));
    }
    pm_.write64(slot, Pte::make(phys_pfn << kPageShift, dir).raw);
    ++mapped_pages_;
    if (traps_)
        traps_->onTableWrite({TableWrite::Kind::kRadixPte, iova_pfn,
                              phys_pfn, true},
                             acct_);
    return Status::ok();
}

Status
IoPageTable::mapRange(u64 iova_pfn, u64 phys_pfn, u64 npages, DmaDir dir)
{
    for (u64 i = 0; i < npages; ++i) {
        Status s = map(iova_pfn + i, phys_pfn + i, dir);
        if (!s)
            return s;
    }
    return Status::ok();
}

Status
IoPageTable::mapHuge(u64 iova_pfn, u64 phys_pfn, DmaDir dir)
{
    RIO_ASSERT(dir != DmaDir::kNone, "mapping with no permitted direction");
    RIO_ASSERT(iova_pfn % kHugePfns == 0 && phys_pfn % kHugePfns == 0,
               "huge mapping must be 2 MB aligned");
    int levels = 0;
    const PhysAddr leaf_table =
        descend(iova_pfn, true, &levels, kLevels - 1);
    chargeUpdate(cycles::Cat::kMapPageTable, levels);
    if (!leaf_table) {
        return Status(ErrorCode::kExists,
                      "huge pfn inside a huge mapping: " +
                          std::to_string(iova_pfn));
    }
    const PhysAddr slot =
        leaf_table + levelIndex(iova_pfn, kLevels - 1) * 8;
    Pte existing{pm_.read64(slot)};
    if (existing.present()) {
        // Either a huge leaf or a populated child table: both mean
        // the 2 MB region is not free to claim.
        return Status(ErrorCode::kExists,
                      "huge slot already populated: " +
                          std::to_string(iova_pfn));
    }
    pm_.write64(slot,
                Pte::makeHuge(phys_pfn << kPageShift, dir).raw);
    mapped_pages_ += kHugePfns;
    ++huge_mappings_;
    if (traps_)
        traps_->onTableWrite({TableWrite::Kind::kRadixPte, iova_pfn,
                              phys_pfn, true, /*huge=*/true},
                             acct_);
    return Status::ok();
}

Status
IoPageTable::unmapHuge(u64 iova_pfn)
{
    RIO_ASSERT(iova_pfn % kHugePfns == 0,
               "huge unmap must be 2 MB aligned");
    int levels = 0;
    const PhysAddr leaf_table =
        descend(iova_pfn, false, &levels, kLevels - 1);
    chargeUpdate(cycles::Cat::kUnmapPageTable, levels);
    if (!leaf_table)
        return Status(ErrorCode::kNotFound,
                      "huge unmap of unmapped region");
    const PhysAddr slot =
        leaf_table + levelIndex(iova_pfn, kLevels - 1) * 8;
    Pte existing{pm_.read64(slot)};
    if (!existing.present() || !existing.huge())
        return Status(ErrorCode::kNotFound,
                      "huge unmap of non-huge slot");
    pm_.write64(slot, 0);
    mapped_pages_ -= kHugePfns;
    --huge_mappings_;
    if (traps_)
        traps_->onTableWrite({TableWrite::Kind::kRadixPte, iova_pfn, 0,
                              false, /*huge=*/true},
                             acct_);
    return Status::ok();
}

Status
IoPageTable::unmap(u64 iova_pfn)
{
    int levels = 0;
    const PhysAddr leaf_table = descend(iova_pfn, false, &levels);
    chargeUpdate(cycles::Cat::kUnmapPageTable, levels);
    if (!leaf_table)
        return Status(ErrorCode::kNotFound, "unmap of unmapped iova pfn");
    const PhysAddr slot = leaf_table + levelIndex(iova_pfn, kLevels) * 8;
    Pte existing{pm_.read64(slot)};
    if (!existing.present())
        return Status(ErrorCode::kNotFound, "unmap of unmapped iova pfn");
    pm_.write64(slot, 0);
    --mapped_pages_;
    if (traps_)
        traps_->onTableWrite(
            {TableWrite::Kind::kRadixPte, iova_pfn, 0, false}, acct_);
    return Status::ok();
}

Status
IoPageTable::unmapRange(u64 iova_pfn, u64 npages)
{
    for (u64 i = 0; i < npages; ++i) {
        Status s = unmap(iova_pfn + i);
        if (!s)
            return s;
    }
    return Status::ok();
}

Result<Pte>
IoPageTable::walk(u64 iova_pfn, int *levels_touched, VirtStage2 *s2,
                  int *mem_refs) const
{
    PhysAddr table = root_;
    int touched = 0;
    for (int level = 1; level <= kLevels; ++level) {
        ++touched;
        // Under nested translation the table address the walker holds
        // is guest-physical; resolve it through stage 2 before the
        // hardware can read the entry (the 2-D walk of §"nested").
        if (s2)
            table = s2->deviceTranslate(table, mem_refs);
        if (mem_refs)
            ++*mem_refs;
        level_reads_[level - 1]->bump();
        const PhysAddr slot = table + levelIndex(iova_pfn, level) * 8;
        const Pte entry{pm_.read64(slot)};
        if (!entry.present()) {
            if (levels_touched)
                *levels_touched = touched;
            return Status(ErrorCode::kIoPageFault, "translation not present");
        }
        if (entry.reservedBitsSet()) {
            if (levels_touched)
                *levels_touched = touched;
            return Status(ErrorCode::kCorrupted,
                          "reserved bits set in PTE");
        }
        if (level == kLevels || entry.huge()) {
            // 4K leaf, or a 2 MB leaf terminating the walk one level
            // early (the caller composes the 2 MB offset).
            if (levels_touched)
                *levels_touched = touched;
            return entry;
        }
        table = entry.addr();
    }
    RIO_PANIC("unreachable");
}

PhysAddr
IoPageTable::leafSlot(u64 iova_pfn) const
{
    PhysAddr table = root_;
    for (int level = 1; level < kLevels; ++level) {
        const Pte entry{pm_.read64(table + levelIndex(iova_pfn, level) * 8)};
        if (!entry.present() || entry.huge())
            return 0; // no 4K leaf under a huge mapping
        table = entry.addr();
    }
    return table + levelIndex(iova_pfn, kLevels) * 8;
}

} // namespace rio::iommu
