/**
 * @file
 * Baseline VT-d-style IOMMU hardware model (paper §2.2 / Figure 2):
 * a root table indexed by bus number points at context tables indexed
 * by (device, function); a context entry points at the device's
 * 4-level I/O page table; translations are cached in a small IOTLB.
 *
 * All structures are resident in simulated physical memory and the
 * hardware walker really dereferences them, so stale or corrupted
 * tables misbehave exactly as hardware would. Device accesses are
 * *not* charged to the core's cycle account — the paper's validated
 * model shows device-side translation latency does not affect
 * end-to-end performance — but each translation reports its own
 * hardware cost for the §5.3 IOTLB-miss study.
 */
#ifndef RIO_IOMMU_IOMMU_H
#define RIO_IOMMU_IOMMU_H

#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "cycles/cost_model.h"
#include "iommu/fault_log.h"
#include "iommu/iotlb.h"
#include "iommu/page_table.h"
#include "iommu/types.h"
#include "mem/phys_mem.h"

namespace rio::iommu {

/** Context-cache counters (tests and the lifecycle bench). */
struct CtxCacheStats
{
    u64 hits = 0;
    u64 misses = 0; //!< memory walks of root + context tables
    u64 purges = 0; //!< per-device invalidations (attach/detach)
};

/** Result of one hardware translation. */
struct Translation
{
    PhysAddr pa = 0;
    bool iotlb_hit = false;
    int walk_levels = 0;  //!< page-table reads performed on a miss
    Cycles hw_cycles = 0; //!< device-side latency of this translation
    /** Combined memory references of the walk: equals walk_levels on
     * bare metal; under nested translation every table access adds
     * its stage-2 references (24 worst case for 4x4 levels). */
    int mem_refs = 0;
};

/** The baseline IOMMU. One instance serves all devices on the bus. */
class Iommu
{
  public:
    Iommu(mem::PhysicalMemory &pm, const cycles::CostModel &cost,
          IotlbConfig iotlb_config = {});
    ~Iommu();

    Iommu(const Iommu &) = delete;
    Iommu &operator=(const Iommu &) = delete;

    // ---- OS-side configuration ---------------------------------------
    /**
     * Point the context entry for @p bdf at @p table. The page table
     * is owned by the caller (the DMA layer) and must outlive the
     * attachment.
     */
    void attachDevice(Bdf bdf, IoPageTable *table);

    /**
     * Clear the context entry and purge the device's IOTLB entries
     * *and* its context-cache entry — a detach that leaves either
     * cached lets a stale or malicious device keep translating
     * through structures the OS believes are gone.
     */
    void detachDevice(Bdf bdf);

    /**
     * Drop @p bdf's cached context entry. The model's analog of a
     * VT-d context-cache invalidation descriptor: required whenever
     * software rewrites a context entry in memory behind the
     * hardware's back.
     */
    void invalidateContextCache(Bdf bdf);

    /** Drop every cached context entry (global context invalidation). */
    void invalidateContextCacheAll();

    /**
     * Hardware pass-through (the paper's HWpt control mode):
     * translation returns the IOVA unchanged without touching the
     * IOTLB or tables.
     */
    void setPassthrough(bool on) { passthrough_ = on; }
    bool passthrough() const { return passthrough_; }

    /**
     * Install (or, with nullptr, remove) the stage-2 translation the
     * walker applies to every table access and to the final data
     * page — the nested-virtualization 2-D walk. Bare metal and the
     * emulated/shadow strategies leave this unset.
     */
    void setStage2(VirtStage2 *s2) { stage2_ = s2; }
    VirtStage2 *stage2() const { return stage2_; }

    // ---- hardware-side translation ------------------------------------
    /**
     * Translate @p iova for a DMA by @p bdf. On failure records a
     * FaultRecord and returns kIoPageFault/kPermission. DMAs are not
     * restartable (§2.2): callers treat faults as device-fatal.
     */
    Result<Translation> translate(Bdf bdf, IovaAddr iova, Access access);

    /** Device writes @p len bytes to memory at @p iova (may span pages). */
    Status dmaWrite(Bdf bdf, IovaAddr iova, const void *src, u64 len);

    /** Device reads @p len bytes from memory at @p iova. */
    Status dmaRead(Bdf bdf, IovaAddr iova, void *dst, u64 len);

    // ---- invalidation interface (called by the OS driver) -------------
    /**
     * Drop one IOTLB entry. Mechanical only — the *cost* (Table 1's
     * 2,127-cycle synchronous invalidation) is charged by the DMA
     * layer, which knows whether it is strict or deferred.
     */
    void invalidateIotlbEntry(Bdf bdf, u64 iova_pfn);

    /** Drop the whole IOTLB (deferred mode's batched flush). */
    void flushIotlb();

    // ---- observability ---------------------------------------------------
    const std::vector<FaultRecord> &faults() const { return faults_; }
    void clearFaults() { faults_.clear(); }

    /** The fault-recording ring (memory-resident, drained by the
     * driver's fault interrupt handler). */
    FaultLog &faultLog() { return fault_log_; }
    const FaultLog &faultLog() const { return fault_log_; }

    Iotlb &iotlb() { return iotlb_; }
    const Iotlb &iotlb() const { return iotlb_; }

    const CtxCacheStats &ctxCacheStats() const { return ctx_stats_; }

    /** IOTLB-miss walks taken and the combined (stage-1 + stage-2)
     * memory references they cost — the 2-D-walk quantity the
     * huge-page stage-2 ablation reports (24 -> 19 per radix miss). */
    u64 walkCount() const { return walks_; }
    u64 walkMemRefs() const { return walk_mem_refs_; }

    /** Cached context entries (== attached devices that translated). */
    u64 contextCacheSize() const { return ctx_cache_.size(); }

    /** Root-table physical address (as programmed into hardware). */
    PhysAddr rootTableAddr() const { return root_table_; }

  private:
    /** Locate the page-table root for @p bdf via root+context tables. */
    IoPageTable *lookupContext(Bdf bdf);

    PhysAddr contextSlot(Bdf bdf);

    /** Record a fault in both the debug vector and the hardware log. */
    void recordFault(Bdf bdf, IovaAddr iova, Access access,
                     FaultReason reason);

    mem::PhysicalMemory &pm_;
    const cycles::CostModel &cost_;
    Iotlb iotlb_;
    bool passthrough_ = false;
    VirtStage2 *stage2_ = nullptr;

    PhysAddr root_table_;
    std::vector<PhysAddr> context_tables_; // one frame per bus, lazily
    // The walker reads the in-memory tables for the root pointer, but
    // the IoPageTable object (owner of driver-side charging state) is
    // located via this map, keyed by its root address.
    std::unordered_map<PhysAddr, IoPageTable *> tables_by_root_;
    // Context cache (VT-d caches context entries separately from the
    // IOTLB): successful walks are cached by requester id so repeat
    // translations skip the two memory reads. Purged per device on
    // attach/detach, like hardware requires.
    std::unordered_map<u16, IoPageTable *> ctx_cache_;
    CtxCacheStats ctx_stats_;
    u64 walks_ = 0;
    u64 walk_mem_refs_ = 0;
    std::vector<FaultRecord> faults_;
    FaultLog fault_log_;
};

} // namespace rio::iommu

#endif // RIO_IOMMU_IOMMU_H
