#include "iommu/iotlb.h"

#include "base/logging.h"

namespace rio::iommu {

Iotlb::Iotlb(IotlbConfig config)
    : config_(config),
      obs_hits_(obs::registry().counter("iotlb.hits")),
      obs_misses_(obs::registry().counter("iotlb.misses")),
      obs_evictions_(obs::registry().counter("iotlb.evictions"))
{
    RIO_ASSERT(config_.sets > 0 && config_.ways > 0, "empty IOTLB");
    entries_.resize(static_cast<size_t>(config_.sets) * config_.ways);
}

unsigned
Iotlb::setIndex(u16 sid, u64 iova_pfn) const
{
    // Mix the requester id in so devices do not alias trivially.
    const u64 h = (iova_pfn ^ (static_cast<u64>(sid) * 0x9e3779b9)) *
                  0xff51afd7ed558ccdULL;
    return static_cast<unsigned>(h >> 32) % config_.sets;
}

Iotlb::Entry *
Iotlb::findEntry(u16 sid, u64 iova_pfn)
{
    const unsigned set = setIndex(sid, iova_pfn);
    for (unsigned w = 0; w < config_.ways; ++w) {
        Entry &e = entries_[set * config_.ways + w];
        if (e.valid && e.sid == sid && e.iova_pfn == iova_pfn)
            return &e;
    }
    return nullptr;
}

const Iotlb::Entry *
Iotlb::findEntry(u16 sid, u64 iova_pfn) const
{
    return const_cast<Iotlb *>(this)->findEntry(sid, iova_pfn);
}

std::optional<Pte>
Iotlb::lookup(u16 sid, u64 iova_pfn)
{
    Entry *e = findEntry(sid, iova_pfn);
    if (!e) {
        ++stats_.misses;
        obs_misses_.bump();
        return std::nullopt;
    }
    ++stats_.hits;
    obs_hits_.bump();
    e->lru_tick = ++tick_;
    return e->pte;
}

void
Iotlb::insert(u16 sid, u64 iova_pfn, Pte pte)
{
    if (Entry *hit = findEntry(sid, iova_pfn)) {
        hit->pte = pte;
        hit->lru_tick = ++tick_;
        return;
    }
    const unsigned set = setIndex(sid, iova_pfn);
    Entry *victim = nullptr;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Entry &e = entries_[set * config_.ways + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lru_tick < victim->lru_tick)
            victim = &e;
    }
    if (victim->valid) {
        ++stats_.evictions;
        obs_evictions_.bump();
    }
    *victim = Entry{true, sid, iova_pfn, pte, ++tick_};
    ++stats_.inserts;
}

bool
Iotlb::invalidateEntry(u16 sid, u64 iova_pfn)
{
    ++stats_.single_invalidations;
    if (Entry *e = findEntry(sid, iova_pfn)) {
        e->valid = false;
        return true;
    }
    return false;
}

void
Iotlb::invalidateDevice(u16 sid)
{
    for (Entry &e : entries_) {
        if (e.valid && e.sid == sid)
            e.valid = false;
    }
}

void
Iotlb::flushAll()
{
    ++stats_.global_flushes;
    for (Entry &e : entries_)
        e.valid = false;
}

u64
Iotlb::validEntries() const
{
    u64 n = 0;
    for (const Entry &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

u64
Iotlb::validEntriesFor(u16 sid) const
{
    u64 n = 0;
    for (const Entry &e : entries_)
        n += (e.valid && e.sid == sid) ? 1 : 0;
    return n;
}

bool
Iotlb::contains(u16 sid, u64 iova_pfn) const
{
    return findEntry(sid, iova_pfn) != nullptr;
}

} // namespace rio::iommu
