#include "iommu/iommu.h"

#include <algorithm>
#include <cstring>

#include "base/logging.h"
#include "iommu/virt_hooks.h"

namespace rio::iommu {

namespace {

/** Context entries are 16 bytes in VT-d; we use the low 8 for the
 * page-table root pointer with bit 0 as the present flag. */
constexpr u64 kCtxEntrySize = 16;
constexpr u64 kCtxPresent = 1;

} // namespace

Iommu::Iommu(mem::PhysicalMemory &pm, const cycles::CostModel &cost,
             IotlbConfig iotlb_config)
    : pm_(pm), cost_(cost), iotlb_(iotlb_config), fault_log_(pm)
{
    root_table_ = pm_.allocFrame();
    context_tables_.assign(256, 0);
}

Iommu::~Iommu()
{
    for (PhysAddr ct : context_tables_) {
        if (ct)
            pm_.freeFrame(ct);
    }
    pm_.freeFrame(root_table_);
}

PhysAddr
Iommu::contextSlot(Bdf bdf)
{
    PhysAddr &ct = context_tables_[bdf.bus];
    if (!ct) {
        ct = pm_.allocFrame();
        // Root entry: low 8 bytes hold the context-table pointer.
        pm_.write64(root_table_ + bdf.bus * kCtxEntrySize, ct | kCtxPresent);
    }
    const unsigned devfn = static_cast<unsigned>((bdf.dev << 3) | bdf.fn);
    return ct + devfn * kCtxEntrySize;
}

void
Iommu::attachDevice(Bdf bdf, IoPageTable *table)
{
    RIO_ASSERT(table != nullptr, "attaching null page table");
    pm_.write64(contextSlot(bdf), table->rootAddr() | kCtxPresent);
    tables_by_root_[table->rootAddr()] = table;
    // The context entry just changed in memory; any cached copy is
    // stale (hardware requires a context invalidation here too).
    invalidateContextCache(bdf);
}

void
Iommu::detachDevice(Bdf bdf)
{
    const PhysAddr slot = contextSlot(bdf);
    const u64 entry = pm_.read64(slot);
    if (entry & kCtxPresent)
        tables_by_root_.erase(entry & ~u64{0xfff});
    pm_.write64(slot, 0);
    iotlb_.invalidateDevice(bdf.pack());
    invalidateContextCache(bdf);
}

void
Iommu::invalidateContextCache(Bdf bdf)
{
    if (ctx_cache_.erase(bdf.pack()))
        ++ctx_stats_.purges;
}

void
Iommu::invalidateContextCacheAll()
{
    ctx_stats_.purges += ctx_cache_.size();
    ctx_cache_.clear();
}

void
Iommu::recordFault(Bdf bdf, IovaAddr iova, Access access,
                   FaultReason reason)
{
    // The debug vector is for tests; cap it so fault storms cannot
    // grow memory without bound. The hardware log has its own
    // fixed-size overflow semantics.
    constexpr size_t kMaxDebugFaults = 65536;
    if (faults_.size() < kMaxDebugFaults)
        faults_.push_back({bdf, iova, access, reason});
    fault_log_.record({bdf, iova, access, reason});
}

IoPageTable *
Iommu::lookupContext(Bdf bdf)
{
    // Context cache first: a hit skips the root/context memory reads
    // entirely, exactly like VT-d's context-entry cache.
    auto cached = ctx_cache_.find(bdf.pack());
    if (cached != ctx_cache_.end()) {
        ++ctx_stats_.hits;
        return cached->second;
    }
    ++ctx_stats_.misses;
    // Walk the in-memory root and context tables the way hardware
    // does; the IoPageTable object is then recovered from the root
    // pointer found in memory.
    const u64 root_entry =
        pm_.read64(root_table_ + bdf.bus * kCtxEntrySize);
    if (!(root_entry & kCtxPresent))
        return nullptr;
    const PhysAddr ct = root_entry & ~u64{0xfff};
    const unsigned devfn = static_cast<unsigned>((bdf.dev << 3) | bdf.fn);
    const u64 ctx_entry = pm_.read64(ct + devfn * kCtxEntrySize);
    if (!(ctx_entry & kCtxPresent))
        return nullptr;
    auto it = tables_by_root_.find(ctx_entry & ~u64{0xfff});
    if (it == tables_by_root_.end())
        return nullptr;
    // Only present, resolvable entries are cached; negative results
    // must keep re-reading memory so a later attach is seen.
    ctx_cache_[bdf.pack()] = it->second;
    return it->second;
}

Result<Translation>
Iommu::translate(Bdf bdf, IovaAddr iova, Access access)
{
    if (passthrough_) {
        return Translation{iova, /*iotlb_hit=*/false, /*walk_levels=*/0,
                           /*hw_cycles=*/0};
    }

    const u64 iova_pfn = iova >> kPageShift;
    const u64 offset = iova & kPageMask;
    const u16 sid = bdf.pack();

    if (auto pte = iotlb_.lookup(sid, iova_pfn)) {
        if (!pte->permits(access)) {
            recordFault(bdf, iova, access, FaultReason::kPermission);
            return Status(ErrorCode::kPermission, "DMA direction violation");
        }
        return Translation{pte->addr() + offset, true, 0, cost_.hw_tlb_hit};
    }

    IoPageTable *table = lookupContext(bdf);
    if (!table) {
        recordFault(bdf, iova, access, FaultReason::kNoContext);
        return Status(ErrorCode::kIoPageFault, "device has no context");
    }

    int levels = 0;
    int refs = 0;
    auto pte = table->walk(iova_pfn, &levels, stage2_, &refs);
    PhysAddr page_pa = pte.isOk() ? pte.value().addr() : 0;
    if (pte.isOk() && pte.value().huge()) {
        // A stage-1 2 MB leaf holds the region base; compose the
        // 4K page's address inside it so the per-pfn IOTLB entry and
        // the stage-2 data translation both see the right frame.
        page_pa +=
            (iova_pfn & (IoPageTable::kHugePfns - 1)) << kPageShift;
    }
    if (pte.isOk() && stage2_) {
        // The leaf PTE holds a guest-physical frame; the data access
        // itself needs one more stage-2 translation. This completes
        // the 2-D count: n*m table-address walks + n table reads +
        // m data-page walks = 24 for 4x4 levels.
        page_pa = stage2_->deviceTranslate(page_pa, &refs);
    }
    const Cycles hw =
        cost_.hw_tlb_hit + static_cast<Cycles>(refs) * cost_.hw_walk_level;
    ++walks_;
    walk_mem_refs_ += static_cast<u64>(refs);
    if (!pte.isOk()) {
        if (pte.status().code() == ErrorCode::kCorrupted) {
            recordFault(bdf, iova, access, FaultReason::kReservedBit);
            return Status(ErrorCode::kCorrupted,
                          "reserved bits set in PTE");
        }
        recordFault(bdf, iova, access, FaultReason::kNotPresent);
        return Status(ErrorCode::kIoPageFault, "translation not present");
    }
    if (!pte.value().permits(access)) {
        recordFault(bdf, iova, access, FaultReason::kPermission);
        return Status(ErrorCode::kPermission, "DMA direction violation");
    }
    // The IOTLB caches the *combined* translation (IOVA -> host
    // physical), so hits cost no stage-2 work — like hardware.
    iotlb_.insert(sid, iova_pfn,
                  Pte{(page_pa & Pte::kAddrMask) |
                      (pte.value().raw & ~Pte::kAddrMask)});
    return Translation{page_pa + offset, false, levels, hw, refs};
}

Status
Iommu::dmaWrite(Bdf bdf, IovaAddr iova, const void *src, u64 len)
{
    const auto *bytes = static_cast<const u8 *>(src);
    while (len > 0) {
        const u64 chunk = std::min(len, kPageSize - (iova & kPageMask));
        auto tr = translate(bdf, iova, Access::kWrite);
        if (!tr.isOk())
            return tr.status();
        pm_.write(tr.value().pa, bytes, chunk);
        bytes += chunk;
        iova += chunk;
        len -= chunk;
    }
    return Status::ok();
}

Status
Iommu::dmaRead(Bdf bdf, IovaAddr iova, void *dst, u64 len)
{
    auto *bytes = static_cast<u8 *>(dst);
    while (len > 0) {
        const u64 chunk = std::min(len, kPageSize - (iova & kPageMask));
        auto tr = translate(bdf, iova, Access::kRead);
        if (!tr.isOk())
            return tr.status();
        pm_.read(tr.value().pa, bytes, chunk);
        bytes += chunk;
        iova += chunk;
        len -= chunk;
    }
    return Status::ok();
}

void
Iommu::invalidateIotlbEntry(Bdf bdf, u64 iova_pfn)
{
    iotlb_.invalidateEntry(bdf.pack(), iova_pfn);
}

void
Iommu::flushIotlb()
{
    iotlb_.flushAll();
}

} // namespace rio::iommu
