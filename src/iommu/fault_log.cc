#include "iommu/fault_log.h"

#include "base/logging.h"

namespace rio::iommu {

namespace {

constexpr u64 kValidBit = u64{1} << 63;

u64
encodeWord1(const FaultRecord &rec)
{
    return kValidBit |
           (static_cast<u64>(static_cast<u8>(rec.reason)) << 24) |
           (static_cast<u64>(static_cast<u8>(rec.access)) << 16) |
           rec.bdf.pack();
}

FaultRecord
decode(u64 word0, u64 word1)
{
    FaultRecord rec;
    rec.iova = word0;
    rec.bdf = Bdf::unpack(static_cast<u16>(word1 & 0xffff));
    rec.access = static_cast<Access>((word1 >> 16) & 0xff);
    rec.reason = static_cast<FaultReason>((word1 >> 24) & 0xff);
    return rec;
}

} // namespace

FaultLog::FaultLog(mem::PhysicalMemory &pm, unsigned capacity)
    : pm_(pm), capacity_(capacity)
{
    RIO_ASSERT(capacity_ > 0, "fault log needs at least one slot");
    base_ = pm_.allocContiguous(u64{capacity_} * kRecordBytes);
}

FaultLog::~FaultLog()
{
    const u64 bytes = u64{capacity_} * kRecordBytes;
    for (u64 off = 0; off < bytes; off += kPageSize)
        pm_.freeFrame(base_ + off);
}

bool
FaultLog::record(const FaultRecord &rec)
{
    if (live_ == capacity_) {
        // Every slot still holds an undrained record: hardware sets
        // the fault-overflow status bit and the record is lost.
        overflow_ = true;
        ++dropped_;
        return false;
    }
    pm_.write64(slotAddr(head_), rec.iova);
    pm_.write64(slotAddr(head_) + 8, encodeWord1(rec));
    head_ = (head_ + 1) % capacity_;
    ++live_;
    ++recorded_;
    return true;
}

std::vector<FaultRecord>
FaultLog::drain()
{
    std::vector<FaultRecord> out;
    out.reserve(live_);
    while (live_ > 0) {
        const u64 word0 = pm_.read64(slotAddr(tail_));
        const u64 word1 = pm_.read64(slotAddr(tail_) + 8);
        RIO_ASSERT(word1 & kValidBit, "fault log slot lost its valid bit");
        out.push_back(decode(word0, word1));
        pm_.write64(slotAddr(tail_) + 8, word1 & ~kValidBit);
        tail_ = (tail_ + 1) % capacity_;
        --live_;
    }
    return out;
}

} // namespace rio::iommu
