#include "iommu/types.h"

#include "base/strings.h"

namespace rio::iommu {

std::string
Bdf::toString() const
{
    return strprintf("%02x:%02x.%x", bus, dev, fn);
}

const char *
faultReasonName(FaultReason reason)
{
    switch (reason) {
      case FaultReason::kNotPresent: return "not-present";
      case FaultReason::kPermission: return "permission";
      case FaultReason::kOutOfRange: return "out-of-range";
      case FaultReason::kNoContext: return "no-context";
      case FaultReason::kReservedBit: return "reserved-bit";
      case FaultReason::kDetached: return "detached";
    }
    return "unknown";
}

} // namespace rio::iommu
