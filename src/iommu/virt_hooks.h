/**
 * @file
 * Hook interfaces through which the virtualization layer (src/virt)
 * observes and intercepts the IOMMU data structures without the IOMMU
 * layer depending on virt. Bare-metal runs never install a hook, so
 * every call site is a null-pointer check and the bare paths stay
 * bit-for-bit identical (the golden_virt invariant).
 *
 * Three interception points model the three vIOMMU strategies:
 *
 *  - VirtStage2: GPA->HPA translation applied to each device-side
 *    table access during a walk, turning the 1-D walk into the 2-D
 *    nested walk (n*m + n + m memory references, §"nested" of
 *    DESIGN.md §10). Installed only under the nested strategy.
 *
 *  - VirtTraps::onTableWrite: fired on every guest store into an I/O
 *    page table (radix PTE or rIOMMU rPTE). The shadow strategy
 *    write-protects guest tables, so each store costs a wp-trap +
 *    shadow sync; the emulated strategy traps map-side stores via the
 *    VT-d caching-mode invalidation the guest must issue.
 *
 *  - VirtTraps::onQiDoorbell: fired on every invalidation-queue
 *    doorbell ring. Under emulated and shadow the doorbell is an MMIO
 *    write into the vIOMMU and traps; under nested the hypervisor
 *    merely forwards it.
 */
#ifndef RIO_IOMMU_VIRT_HOOKS_H
#define RIO_IOMMU_VIRT_HOOKS_H

#include "base/types.h"
#include "cycles/cycle_account.h"

namespace rio::iommu {

/**
 * Stage-2 (GPA->HPA) translation applied to device-side accesses.
 * Implemented by virt::Guest; installed into Iommu/Riommu only under
 * the nested strategy.
 */
class VirtStage2
{
  public:
    virtual ~VirtStage2() = default;

    /**
     * Translate a guest-physical address a device walk is about to
     * dereference. @p mem_refs, when non-null, is incremented by the
     * number of stage-2 memory references the translation cost (0 on
     * a stage-2 TLB hit, kLevels on a walk).
     */
    virtual PhysAddr deviceTranslate(PhysAddr gpa, int *mem_refs) = 0;
};

/** One guest store into an I/O translation structure. */
struct TableWrite
{
    enum class Kind : u8 {
        kRadixPte, //!< leaf entry of a 4-level radix table
        kRpte,     //!< rIOMMU flat-table rPTE
    };

    Kind kind = Kind::kRadixPte;
    u64 iova_pfn = 0;   //!< page frame the entry translates
    u64 phys_pfn = 0;   //!< target frame (0 when tearing down)
    bool valid = false; //!< entry made valid (map) or invalid (unmap)
    bool huge = false;  //!< 2 MB leaf (shadow must mirror at the same
                        //!< granularity)
};

/**
 * Trap delivery interface. Implemented by virt::Guest per handle;
 * methods charge the trapping cost into @p acct (the owning core's
 * account) under Cat::kVirt. Null acct means the write happened
 * outside any accounted context (e.g. hypervisor-internal) and is
 * free.
 */
class VirtTraps
{
  public:
    virtual ~VirtTraps() = default;

    /** A guest store into a translation structure completed. */
    virtual void onTableWrite(const TableWrite &w,
                              cycles::CycleAccount *acct) = 0;

    /** The guest rang an invalidation-queue doorbell. */
    virtual void onQiDoorbell(cycles::CycleAccount *acct) = 0;
};

} // namespace rio::iommu

#endif // RIO_IOMMU_VIRT_HOOKS_H
