/**
 * @file
 * Set-associative IOTLB model with LRU replacement, single-entry
 * invalidation and global flush — the structure whose invalidation
 * cost (Table 1: ~2,127 cycles synchronous, 9 cycles queued)
 * motivates both Linux's deferred mode and the rIOMMU redesign.
 */
#ifndef RIO_IOMMU_IOTLB_H
#define RIO_IOMMU_IOTLB_H

#include <optional>
#include <vector>

#include "base/types.h"
#include "iommu/page_table.h"
#include "iommu/types.h"
#include "obs/deferred.h"
#include "obs/registry.h"

namespace rio::iommu {

/** IOTLB geometry. Real VT-d IOTLBs hold a few dozen entries. */
struct IotlbConfig
{
    unsigned sets = 32;
    unsigned ways = 2;
};

/** Running counters, used by tests and the §5.3 bench. */
struct IotlbStats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 inserts = 0;
    u64 evictions = 0;
    u64 single_invalidations = 0;
    u64 global_flushes = 0;
};

/** Cache of (requester-id, iova pfn) -> leaf PTE. */
class Iotlb
{
  public:
    explicit Iotlb(IotlbConfig config = {});

    /** Look up; bumps hit/miss counters and LRU state. */
    std::optional<Pte> lookup(u16 sid, u64 iova_pfn);

    /** Install (evicting LRU within the set if needed). */
    void insert(u16 sid, u64 iova_pfn, Pte pte);

    /** Drop one translation; true if it was present. */
    bool invalidateEntry(u16 sid, u64 iova_pfn);

    /** Drop all translations of one device. */
    void invalidateDevice(u16 sid);

    /** Drop everything (the deferred mode's batched flush). */
    void flushAll();

    /** Entries currently valid (for stale-entry vulnerability tests). */
    u64 validEntries() const;

    /** Valid entries belonging to @p sid (stale-mapping leak checks). */
    u64 validEntriesFor(u16 sid) const;

    /** True if (sid, pfn) is cached — used to probe stale entries. */
    bool contains(u16 sid, u64 iova_pfn) const;

    const IotlbStats &stats() const { return stats_; }
    void resetStats() { stats_ = IotlbStats{}; }

    unsigned capacity() const { return config_.sets * config_.ways; }

  private:
    struct Entry
    {
        bool valid = false;
        u16 sid = 0;
        u64 iova_pfn = 0;
        Pte pte;
        u64 lru_tick = 0;
    };

    unsigned setIndex(u16 sid, u64 iova_pfn) const;
    Entry *findEntry(u16 sid, u64 iova_pfn);
    const Entry *findEntry(u16 sid, u64 iova_pfn) const;

    IotlbConfig config_;
    std::vector<Entry> entries_; // sets * ways, row-major by set
    u64 tick_ = 0;
    IotlbStats stats_;
    // Process-wide mirrors of the hot counters (all IOTLBs
    // aggregate). Deferred: lookups are the hottest per-reference
    // path in the whole simulator, so the shared atomics move once
    // per burst, not once per translation (obs/deferred.h).
    obs::DeferredCounter obs_hits_;
    obs::DeferredCounter obs_misses_;
    obs::DeferredCounter obs_evictions_;
};

} // namespace rio::iommu

#endif // RIO_IOMMU_IOTLB_H
