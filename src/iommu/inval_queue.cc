#include "iommu/inval_queue.h"

#include "base/logging.h"

namespace rio::iommu {

namespace {

constexpr u64 kDescBytes = 16;

} // namespace

QiDescriptor
QiDescriptor::entry(u16 sid, u64 iova_pfn)
{
    QiDescriptor d;
    d.word0 = static_cast<u64>(Type::kIotlbEntry) |
              (static_cast<u64>(sid) << 8);
    d.word1 = iova_pfn;
    return d;
}

QiDescriptor
QiDescriptor::global()
{
    QiDescriptor d;
    d.word0 = static_cast<u64>(Type::kIotlbGlobal);
    return d;
}

QiDescriptor
QiDescriptor::wait(PhysAddr status_addr)
{
    QiDescriptor d;
    d.word0 = static_cast<u64>(Type::kWait);
    d.word1 = status_addr;
    return d;
}

InvalQueue::InvalQueue(mem::PhysicalMemory &pm, Iommu &iommu,
                       const cycles::CostModel &cost, u32 entries)
    : pm_(pm), iommu_(iommu), cost_(cost), entries_(entries)
{
    RIO_ASSERT(entries_ >= 4, "QI ring too small");
    base_ = pm_.allocContiguous(static_cast<u64>(entries_) * kDescBytes);
    status_addr_ = pm_.allocFrame();
}

InvalQueue::~InvalQueue()
{
    for (u64 off = 0;
         off < pageAlignUp(static_cast<u64>(entries_) * kDescBytes);
         off += kPageSize) {
        pm_.freeFrame(base_ + off);
    }
    pm_.freeFrame(status_addr_);
}

QiDescriptor
InvalQueue::descriptorAt(u32 idx) const
{
    RIO_ASSERT(idx < entries_, "QI index out of range");
    QiDescriptor d;
    d.word0 = pm_.read64(base_ + idx * kDescBytes);
    d.word1 = pm_.read64(base_ + idx * kDescBytes + 8);
    return d;
}

Cycles
InvalQueue::submit(const QiDescriptor &desc)
{
    pm_.write64(base_ + tail_ * kDescBytes, desc.word0);
    pm_.write64(base_ + tail_ * kDescBytes + 8, desc.word1);
    tail_ = (tail_ + 1) % entries_;
    if (tail_ == 0)
        ++stats_.wraps;
    ++stats_.submitted;
    return cost_.qi_submit;
}

Cycles
InvalQueue::hardwareDrain()
{
    Cycles hw = 0;
    while (head_ != tail_) {
        const QiDescriptor desc = descriptorAt(head_);
        head_ = (head_ + 1) % entries_;
        hw += cost_.qi_hw_per_descriptor;
        switch (desc.type()) {
          case QiDescriptor::Type::kIotlbEntry:
            iommu_.iotlb().invalidateEntry(desc.sid(), desc.word1);
            ++stats_.entry_invalidations;
            break;
          case QiDescriptor::Type::kIotlbGlobal:
            iommu_.iotlb().flushAll();
            ++stats_.global_flushes;
            break;
          case QiDescriptor::Type::kWait:
            pm_.write64(desc.word1, ++status_cookie_);
            ++stats_.waits;
            break;
        }
    }
    return hw;
}

void
InvalQueue::invalidateEntrySync(Bdf bdf, u64 iova_pfn,
                                cycles::CycleAccount *acct)
{
    des::SpinGuard lock(lock_, lock_core_, acct);
    Cycles c = submit(QiDescriptor::entry(bdf.pack(), iova_pfn));
    c += submit(QiDescriptor::wait(status_addr_));
    c += cost_.qi_doorbell;
    const u64 expected = status_cookie_ + 1;
    c += hardwareDrain();
    // Spin on the status word the hardware writes back.
    c += cost_.qi_wait_latency;
    RIO_ASSERT(pm_.read64(status_addr_) == expected,
               "QI wait did not complete");
    c += 2 * cost_.cached_access;
    if (acct)
        acct->charge(cycles::Cat::kUnmapIotlbInv, c);
}

void
InvalQueue::flushAllSync(cycles::CycleAccount *acct, cycles::Cat cat)
{
    des::SpinGuard lock(lock_, lock_core_, acct);
    Cycles c = submit(QiDescriptor::global());
    c += submit(QiDescriptor::wait(status_addr_));
    c += cost_.qi_doorbell;
    const u64 expected = status_cookie_ + 1;
    c += hardwareDrain();
    c += cost_.qi_wait_latency;
    RIO_ASSERT(pm_.read64(status_addr_) == expected,
               "QI wait did not complete");
    c += 2 * cost_.cached_access;
    if (acct)
        acct->chargeCont(cat, c);
}

} // namespace rio::iommu
