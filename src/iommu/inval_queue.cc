#include "iommu/inval_queue.h"

#include "base/logging.h"
#include "iommu/virt_hooks.h"
#include "obs/flight.h"
#include "obs/timeline.h"

namespace rio::iommu {

namespace {

constexpr u64 kDescBytes = 16;

/** Issue-side half of the QI timeline span. */
obs::Event
qiIssueEvent(des::Core *core, u16 bdf)
{
    obs::Event e;
    e.kind = obs::Ev::kQiIssue;
    e.bdf = bdf;
    if (core) {
        // Span id derived from the core (lane-confined counter), not
        // the shared Timeline atomic: keeps trace output identical
        // across thread counts.
        e.id = core->nextSpanId();
        e.t = core->virtualNow();
        e.pid = core->obsPid();
        e.tid = core->obsTid();
    } else {
        e.id = obs::timeline().nextSpanId();
    }
    return e;
}

/** Completion (or timeout) half, @p c cycles after the issue. */
obs::Event
qiEndEvent(const obs::Event &issue, Cycles c, double core_ghz, bool ok)
{
    obs::Event e = issue;
    e.kind = ok ? obs::Ev::kQiComplete : obs::Ev::kQiTimeout;
    e.t = issue.t + static_cast<Nanos>(static_cast<double>(c) / core_ghz);
    e.dur_ns = e.t - issue.t;
    e.arg = c;
    return e;
}

} // namespace

QiDescriptor
QiDescriptor::entry(u16 sid, u64 iova_pfn)
{
    QiDescriptor d;
    d.word0 = static_cast<u64>(Type::kIotlbEntry) |
              (static_cast<u64>(sid) << 8);
    d.word1 = iova_pfn;
    return d;
}

QiDescriptor
QiDescriptor::global()
{
    QiDescriptor d;
    d.word0 = static_cast<u64>(Type::kIotlbGlobal);
    return d;
}

QiDescriptor
QiDescriptor::wait(PhysAddr status_addr)
{
    QiDescriptor d;
    d.word0 = static_cast<u64>(Type::kWait);
    d.word1 = status_addr;
    return d;
}

InvalQueue::InvalQueue(mem::PhysicalMemory &pm, Iommu &iommu,
                       const cycles::CostModel &cost, u32 entries)
    : pm_(pm), iommu_(iommu), cost_(cost), entries_(entries),
      obs_depth_(obs::registry().gauge("qi.depth")),
      obs_sync_(obs::registry().histogram("qi.sync_cycles")),
      obs_timeouts_(obs::registry().counter("qi.timeouts"))
{
    RIO_ASSERT(entries_ >= 4, "QI ring too small");
    base_ = pm_.allocContiguous(static_cast<u64>(entries_) * kDescBytes);
    status_addr_ = pm_.allocFrame();
}

InvalQueue::~InvalQueue()
{
    for (u64 off = 0;
         off < pageAlignUp(static_cast<u64>(entries_) * kDescBytes);
         off += kPageSize) {
        pm_.freeFrame(base_ + off);
    }
    pm_.freeFrame(status_addr_);
}

QiDescriptor
InvalQueue::descriptorAt(u32 idx) const
{
    RIO_ASSERT(idx < entries_, "QI index out of range");
    QiDescriptor d;
    d.word0 = pm_.read64(base_ + idx * kDescBytes);
    d.word1 = pm_.read64(base_ + idx * kDescBytes + 8);
    return d;
}

Cycles
InvalQueue::submit(const QiDescriptor &desc)
{
    pm_.write64(base_ + tail_ * kDescBytes, desc.word0);
    pm_.write64(base_ + tail_ * kDescBytes + 8, desc.word1);
    tail_ = (tail_ + 1) % entries_;
    if (tail_ == 0)
        ++stats_.wraps;
    ++stats_.submitted;
    return cost_.qi_submit;
}

Cycles
InvalQueue::hardwareDrain()
{
    Cycles hw = 0;
    while (head_ != tail_ && !queue_error_) {
        const QiDescriptor desc = descriptorAt(head_);
        // An entry invalidation needs the target device's ack (ATS
        // semantics); a vanished device never answers, so the queue
        // freezes *at* the descriptor — it stays at the head for
        // abortAndSkip to step over. Global flushes and waits are
        // IOMMU-internal and never stall.
        if (desc.type() == QiDescriptor::Type::kIotlbEntry &&
            unresponsive_sids_.count(desc.sid())) {
            queue_error_ = true;
            break;
        }
        head_ = (head_ + 1) % entries_;
        hw += cost_.qi_hw_per_descriptor;
        switch (desc.type()) {
          case QiDescriptor::Type::kIotlbEntry:
            iommu_.iotlb().invalidateEntry(desc.sid(), desc.word1);
            ++stats_.entry_invalidations;
            break;
          case QiDescriptor::Type::kIotlbGlobal:
            iommu_.iotlb().flushAll();
            ++stats_.global_flushes;
            break;
          case QiDescriptor::Type::kWait:
            pm_.write64(desc.word1, ++status_cookie_);
            ++stats_.waits;
            break;
        }
    }
    return hw;
}

Status
InvalQueue::invalidateEntrySync(Bdf bdf, u64 iova_pfn,
                                cycles::CycleAccount *acct)
{
    des::SpinGuard lock(lock_, lock_core_, acct);
    const obs::Event issue = qiIssueEvent(lock_core_, bdf.pack());
    obs::timeline().emit(issue);
    Cycles c = submit(QiDescriptor::entry(bdf.pack(), iova_pfn));
    c += submit(QiDescriptor::wait(status_addr_));
    c += cost_.qi_doorbell;
    if (traps_)
        traps_->onQiDoorbell(acct);
    obs_depth_.set((tail_ + entries_ - head_) % entries_);
    c += hardwareDrain();
    if (queue_error_ || head_ != tail_) {
        // Bounded spin: the wait never landed. Give up instead of
        // spinning forever in virtual time.
        c += cost_.qi_timeout_spin;
        ++stats_.timeouts;
        obs_timeouts_.inc();
        obs_depth_.set((tail_ + entries_ - head_) % entries_);
        obs::timeline().emit(qiEndEvent(issue, c, cost_.core_ghz, false));
        obs::flightDump("qi_timeout");
        if (acct)
            acct->charge(cycles::Cat::kLifecycle, c);
        return Status(ErrorCode::kTimedOut,
                      "QI wait descriptor timed out (ITE)");
    }
    // Spin on the status word the hardware writes back.
    c += cost_.qi_wait_latency;
    RIO_ASSERT(pm_.read64(status_addr_) == status_cookie_,
               "QI wait did not complete");
    c += 2 * cost_.cached_access;
    obs_sync_.observe(c);
    obs_depth_.set(0);
    obs::timeline().emit(qiEndEvent(issue, c, cost_.core_ghz, true));
    if (acct)
        acct->charge(cycles::Cat::kUnmapIotlbInv, c);
    return Status::ok();
}

Status
InvalQueue::flushAllSync(cycles::CycleAccount *acct, cycles::Cat cat)
{
    des::SpinGuard lock(lock_, lock_core_, acct);
    const obs::Event issue = qiIssueEvent(lock_core_, 0);
    obs::timeline().emit(issue);
    Cycles c = submit(QiDescriptor::global());
    c += submit(QiDescriptor::wait(status_addr_));
    c += cost_.qi_doorbell;
    if (traps_)
        traps_->onQiDoorbell(acct);
    obs_depth_.set((tail_ + entries_ - head_) % entries_);
    c += hardwareDrain();
    if (queue_error_ || head_ != tail_) {
        c += cost_.qi_timeout_spin;
        ++stats_.timeouts;
        obs_timeouts_.inc();
        obs_depth_.set((tail_ + entries_ - head_) % entries_);
        obs::timeline().emit(qiEndEvent(issue, c, cost_.core_ghz, false));
        obs::flightDump("qi_timeout");
        if (acct)
            acct->charge(cycles::Cat::kLifecycle, c);
        return Status(ErrorCode::kTimedOut,
                      "QI wait descriptor timed out (ITE)");
    }
    c += cost_.qi_wait_latency;
    RIO_ASSERT(pm_.read64(status_addr_) == status_cookie_,
               "QI wait did not complete");
    c += 2 * cost_.cached_access;
    obs_sync_.observe(c);
    obs_depth_.set(0);
    obs::timeline().emit(qiEndEvent(issue, c, cost_.core_ghz, true));
    if (acct)
        acct->chargeCont(cat, c);
    return Status::ok();
}

void
InvalQueue::setDeviceResponsive(u16 sid, bool responsive)
{
    if (responsive)
        unresponsive_sids_.erase(sid);
    else
        unresponsive_sids_.insert(sid);
}

Status
InvalQueue::recoverRetry(cycles::CycleAccount *acct)
{
    des::SpinGuard lock(lock_, lock_core_, acct);
    Cycles c = cost_.lifecycle_backoff;
    ++stats_.retries;
    if (queue_error_) {
        queue_error_ = false;
        c += cost_.qi_doorbell;
        if (traps_)
            traps_->onQiDoorbell(acct);
        c += hardwareDrain(); // re-freezes if the device is still dead
    }
    const bool drained = !queue_error_ && head_ == tail_;
    if (acct)
        acct->charge(cycles::Cat::kLifecycle, c);
    if (!drained)
        return Status(ErrorCode::kTimedOut,
                      "QI retry timed out again (device unresponsive)");
    return Status::ok();
}

Status
InvalQueue::abortAndSkip(cycles::CycleAccount *acct)
{
    des::SpinGuard lock(lock_, lock_core_, acct);
    Cycles c = cost_.lifecycle_abort_recovery;
    if (queue_error_) {
        // The dead descriptor is still at the head; step over it.
        // Its invalidation never executed — the caller must purge
        // the IOTLB in software for that device.
        RIO_ASSERT(head_ != tail_, "queue error with empty queue");
        head_ = (head_ + 1) % entries_;
        ++stats_.head_skips;
        queue_error_ = false;
        // Restarting the queue re-rings the doorbell.
        if (traps_)
            traps_->onQiDoorbell(acct);
        c += hardwareDrain(); // may re-freeze on the next dead entry
    }
    const bool drained = !queue_error_ && head_ == tail_;
    if (acct)
        acct->charge(cycles::Cat::kLifecycle, c);
    if (!drained)
        return Status(ErrorCode::kTimedOut,
                      "QI still frozen after head skip");
    return Status::ok();
}

} // namespace rio::iommu
