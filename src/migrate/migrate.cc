#include "migrate/migrate.h"

#include <algorithm>

#include "base/logging.h"
#include "obs/timeline.h"

namespace rio::migrate {

namespace {

/** Tag-type field (bits 32+) of a kMigState chunk; pages use the
 * whole tag for the gfn (type 0). */
constexpr u64 kTagState = 1;
constexpr u64 kTagCommit = 2;
constexpr u64 kTagResume = 3;

/** One serialized ring/device descriptor. */
constexpr u32 kSmallChunk = 64;
/** One replayed mapping record (iova, pfn, perms, rid). */
constexpr u32 kMapChunk = 16;

/** kMigPhase arg values (timeline decoding). */
constexpr u64 kPhaseStart = 0;
constexpr u64 kPhaseRound = 1;
constexpr u64 kPhaseBlackout = 2;
constexpr u64 kPhaseResume = 3;

} // namespace

// ---- GuestDirtier ------------------------------------------------------

void
GuestDirtier::arm(des::Simulator &sim, mem::PhysicalMemory &pm,
                  PhysAddr base, u64 pages, double pages_per_ms, u64 seed)
{
    sim_ = &sim;
    pm_ = &pm;
    base_ = base;
    pages_ = pages;
    rate_ = pages_per_ms;
    rng_ = Rng(seed);
    paused_ = false;
    if (rate_ <= 0.0 || pages_ == 0)
        return; // inert: zero draws, zero events
    scheduleNext();
}

void
GuestDirtier::resume()
{
    if (sim_ == nullptr || rate_ <= 0.0 || !paused_)
        return;
    paused_ = false;
    scheduleNext();
}

void
GuestDirtier::scheduleNext()
{
    const Nanos gap = std::max<Nanos>(
        1, static_cast<Nanos>(rng_.exponential(1e6 / rate_)));
    sim_->scheduleAfter(gap, [this] { tick(); });
}

void
GuestDirtier::tick()
{
    if (paused_)
        return;
    const u64 pfn = rng_.below(pages_);
    const u64 slot = rng_.below(kPageSize / 8);
    // A guest CPU store: functional only (no simulated core cycles —
    // guest compute is not what this model measures), but it marks
    // the page dirty through the write observer like any other store.
    pm_->write64(base_ + pfn * kPageSize + slot * 8, rng_.next());
    ++writes_;
    scheduleNext();
}

// ---- Migrator ----------------------------------------------------------

Migrator::Migrator(sys::Cluster &cluster, const MigrateConfig &cfg)
    : cl_(cluster), cfg_(cfg)
{
    RIO_ASSERT(cl_.hasMigration(),
               "cluster built without the migration overlay");
    RIO_ASSERT(cfg_.src != cfg_.dst, "migration to self");
    RIO_ASSERT(cfg_.src < cl_.size() && cfg_.dst < cl_.size(),
               "migration endpoint out of range");
    RIO_ASSERT(cfg_.guest_pages >= 1, "empty guest arena");
    RIO_ASSERT(cfg_.guest_pages * kPageSize < (1ull << 32),
               "arena exceeds one MR mapping");
}

Migrator::~Migrator()
{
    cleanup();
}

void
Migrator::setGuests(virt::Guest *src_guest, virt::Guest *dst_guest,
                    unsigned src_binding)
{
    src_guest_ = src_guest;
    dst_guest_ = dst_guest;
    src_binding_ = src_binding;
}

void
Migrator::start()
{
    RIO_ASSERT(!started_, "start() called twice");
    started_ = true;

    mem::PhysicalMemory &spm = cl_.machine(cfg_.src).ctx().memory();
    mem::PhysicalMemory &dpm = cl_.machine(cfg_.dst).ctx().memory();
    src_arena_ = spm.allocContiguous(cfg_.guest_pages * kPageSize);
    src_scratch_ = spm.allocContiguous(kPageSize);
    dst_arena_ = dpm.allocContiguous(cfg_.guest_pages * kPageSize);
    dst_scratch_ = dpm.allocContiguous(kPageSize);

    // Deterministic pre-migration guest RAM (before the observer
    // attaches: seed content is round-0 freight, not dirt).
    for (u64 g = 0; g < cfg_.guest_pages; ++g)
        spm.write64(src_arena_ + g * kPageSize + (g % 512) * 8,
                    0x9E3779B97F4A7C15ULL * (g + 1));

    // Target sink: the whole arena stays mapped in the hypervisor
    // handle's static ring for the duration, so every incoming page
    // is a DMA through the target IOMMU (and stage-2 when nested).
    auto sm = cl_.migHandle(cfg_.dst).map(
        0, dst_arena_, static_cast<u32>(cfg_.guest_pages * kPageSize),
        iommu::DmaDir::kFromDevice);
    RIO_ASSERT(sm.isOk(), "sink arena map failed: ",
               sm.status().toString());
    sink_map_ = sm.value();
    sink_mapped_ = true;

    spm.setWriteObserver(
        [this](PhysAddr addr, u64 size) { onSrcWrite(addr, size); });
    observer_on_ = true;
    dirtier_.arm(cl_.lane(cfg_.src).sim(), spm, src_arena_,
                 cfg_.guest_pages, cfg_.dirty_pages_per_ms,
                 cfg_.dirty_seed);

    rdma::RdmaNic &snic = cl_.migNic(cfg_.src);
    snic.setCompletionCallback([this](u32 qp, u32 wqe, bool ok) {
        onStreamCompletion(qp, wqe, ok);
    });
    snic.setQpErrorCallback(
        [this](u32 qp, u32 peer) { onStreamQpError(qp, peer); });
    snic.setMigSink(
        [this](const rdma::WireMsg &msg) { return onSink(msg); });
    rdma::RdmaNic &dnic = cl_.migNic(cfg_.dst);
    dnic.setMigSink(
        [this](const rdma::WireMsg &msg) { return onSink(msg); });
    dnic.setQpErrorCallback([this](u32, u32) {
        // The return path died; a replayed commit will re-arm it.
        resume_pending_ = false;
    });

    // Round 0 is the whole arena.
    for (u64 g = 0; g < cfg_.guest_pages; ++g)
        enqueuePage(g);
    emitPhase(kPhaseStart, 0);
    cl_.machine(cfg_.src).core(0).post([this] { connectStream(); });
}

void
Migrator::connectStream()
{
    if (done_)
        return;
    auto res = cl_.migNic(cfg_.src).connect(
        cl_.size() + cfg_.dst, [this](u32 qp, bool ok) {
            if (done_)
                return;
            if (!ok) {
                fail("migration stream rejected");
                return;
            }
            qp_ = qp;
            connected_ = true;
            // The accepted QP index on the target: where the target
            // posts resume-done. Written here (source lane), read by
            // the target only after a later wire crossing.
            tgt_qp_ = cl_.migNic(cfg_.src).peerQp(qp);
            pump();
            checkProgress();
        });
    if (!res.isOk())
        fail("no migration QP slot");
}

void
Migrator::onSrcWrite(PhysAddr addr, u64 size)
{
    if (done_ || blackout_ || size == 0)
        return;
    const PhysAddr end = addr + size;
    const PhysAddr arena_end = src_arena_ + cfg_.guest_pages * kPageSize;
    if (end <= src_arena_ || addr >= arena_end)
        return;
    const u64 first = (std::max(addr, src_arena_) - src_arena_) >>
                      kPageShift;
    const u64 last = (std::min(end - 1, arena_end - 1) - src_arena_) >>
                     kPageShift;
    for (u64 g = first; g <= last; ++g)
        dirty_.insert(g);
}

void
Migrator::enqueuePage(u64 gfn)
{
    if (!shipped_once_.insert(gfn).second)
        ++rep_.pages_reshipped;
    queue_.push_back({/*state=*/false, gfn,
                      src_arena_ + gfn * kPageSize,
                      static_cast<u32>(kPageSize), 0, chunk_seq_++});
}

void
Migrator::enqueueState(u32 idx)
{
    queue_.push_back({/*state=*/true, (kTagState << 32) | idx,
                      src_scratch_, plan_[idx].bytes, 0, chunk_seq_++});
}

void
Migrator::enqueueCommit()
{
    queue_.push_back({/*state=*/true, kTagCommit << 32, src_scratch_,
                      kSmallChunk, 0, chunk_seq_++});
}

void
Migrator::pump()
{
    if (!connected_ || done_)
        return;
    rdma::RdmaNic &nic = cl_.migNic(cfg_.src);
    while (!queue_.empty()) {
        const Chunk &c = queue_.front();
        const u32 wqe = nic.sqTail(qp_);
        const bool posted =
            c.state ? nic.postMigState(qp_, c.pa, c.bytes, c.tag)
                    : nic.postMigPage(qp_, c.pa, c.bytes, c.tag);
        if (!posted)
            return; // flow-controlled; the next completion re-pumps
        inflight_.emplace(wqe, c);
        queue_.pop_front();
    }
}

void
Migrator::onStreamCompletion(u32 qp, u32 wqe, bool ok)
{
    auto it = inflight_.find(wqe);
    if (qp != qp_ || it == inflight_.end())
        return;
    Chunk c = it->second;
    inflight_.erase(it);
    if (ok) {
        if (c.state) {
            ++rep_.state_chunks;
            rep_.state_bytes += c.bytes;
        } else {
            ++rep_.pages_shipped;
        }
    } else {
        // NAK (target refused the apply) or error-CQE flush: the
        // chunk goes back to the head of the line. Re-applies are
        // idempotent, so replays cannot corrupt the target.
        if (!c.state)
            ++rep_.page_naks;
        if (++c.retries > cfg_.retry_cap) {
            fail("chunk retry budget exhausted");
            return;
        }
        queue_.push_front(c);
    }
    pump();
    checkProgress();
}

void
Migrator::checkProgress()
{
    if (done_ || !connected_ || !queue_.empty() || !inflight_.empty())
        return;
    if (!blackout_) {
        endRound();
        return;
    }
    if (!commit_sent_) {
        // Final pages + state all acked: the target is consistent.
        // One lone commit (never concurrent with other chunks, so a
        // page NAK can never reorder behind it) closes the stream.
        enqueueCommit();
        commit_sent_ = true;
        pump();
    }
}

void
Migrator::endRound()
{
    ++rep_.rounds;
    std::vector<u64> d(dirty_.begin(), dirty_.end());
    std::sort(d.begin(), d.end());
    dirty_.clear();
    if (rep_.rounds >= cfg_.max_rounds || d.size() <= cfg_.converge_dirty) {
        beginBlackout(d);
        return;
    }
    emitPhase(kPhaseRound, rep_.rounds);
    for (u64 g : d)
        enqueuePage(g);
    pump();
}

void
Migrator::beginBlackout(const std::vector<u64> &final_dirty)
{
    blackout_ = true;
    t_blackout_ = cl_.machine(cfg_.src).core(0).virtualNow();
    dirtier_.pause();
    // Stop-and-copy pauses the vCPUs: everything from here is
    // hypervisor teardown, so table edits no longer vmexit (the
    // functional side — shadow mirroring — still runs).
    if (src_guest_ != nullptr)
        src_guest_->setPaused(true);
    emitPhase(kPhaseBlackout, rep_.rounds);
    capturePlan(); // before teardown empties the live state
    // Stop-and-copy: the guest is gone from this machine. Tear its
    // data-plane NIC down with the journaled five-phase protocol —
    // those driver cycles are blackout time — and classify every
    // stray that still arrives into the migrated-away ledger tier.
    rdma::RdmaNic &gnic = cl_.nic(cfg_.src);
    gnic.setMigratedAway(true);
    gnic.quiesceAll();
    // No detach: the NIC stays plugged into the source machine (only
    // the guest leaves), so strays are judged by the protection mode,
    // not the use-after-detach guard.
    const Status qs = cl_.machine(cfg_.src).quiesceHandle(
        cl_.handle(cfg_.src), 0, /*detach=*/false);
    RIO_ASSERT(qs.isOk(), "source quiesce failed: ", qs.toString());
    for (u64 g : final_dirty)
        enqueuePage(g);
    for (u32 i = 0; i < plan_.size(); ++i)
        enqueueState(i);
    pump();
}

void
Migrator::capturePlan()
{
    plan_.clear();
    const bool riommu = dma::modeUsesRiommu(cl_.config().mode);
    const u64 live_maps = cl_.handle(cfg_.src).liveMappings();
    const u64 live_rings = 1 + 2 * cl_.nic(cfg_.src).establishedQps();
    switch (cfg_.platform) {
    case virt::Platform::kBare:
        break; // passthrough guest: only the device chunk below
    case virt::Platform::kEmulated:
        if (riommu) {
            // Flat tables re-register on the target: one hypercall
            // per live rRING, independent of guest memory size.
            for (u64 r = 0; r < live_rings; ++r)
                plan_.push_back({kSmallChunk, 1, Apply::kHypercall});
            rep_.live_rings = live_rings;
            rep_.reg_hypercalls = live_rings;
        } else {
            // Trap-and-emulate: the target replays every live
            // mapping as if the guest had just installed it — one
            // wire message and one install+invalidate exit pair per
            // mapping. The message-per-op tax is what makes the
            // emulated vIOMMU migrate worst.
            for (u64 i = 0; i < live_maps; ++i)
                plan_.push_back({kMapChunk, 1, Apply::kVmExitReplay});
            rep_.mappings_replayed = live_maps;
        }
        break;
    case virt::Platform::kShadow:
        if (riommu) {
            // The hypervisor owns the shadow rDEVICE/rRING entries:
            // copy one descriptor per live ring, no guest exits.
            for (u64 r = 0; r < live_rings; ++r)
                plan_.push_back({kSmallChunk, 0, Apply::kBulk});
            rep_.live_rings = live_rings;
        } else {
            // The merged shadow radix table is hypervisor state and
            // moves wholesale — the cheapest baseline transfer, since
            // it only covers what is actually mapped.
            const iommu::IoPageTable *sh =
                src_guest_ ? src_guest_->shadowTable(src_binding_)
                           : nullptr;
            const u64 pages = sh ? sh->tablePages() : 0;
            for (u64 p = 0; p < pages; ++p)
                plan_.push_back(
                    {static_cast<u32>(kPageSize), 0, Apply::kBulk});
        }
        break;
    case virt::Platform::kNested:
        if (riommu) {
            // Re-registration rebuilds the rDEVICE table and its
            // stage-2 backing per ring; the arena's stage-2 refills
            // lazily like any EPT, so nothing memory-proportional
            // ships.
            for (u64 r = 0; r < live_rings; ++r)
                plan_.push_back({kSmallChunk, 1, Apply::kHypercall});
            rep_.live_rings = live_rings;
            rep_.reg_hypercalls = live_rings;
        } else {
            // Guest radix tables travel inside RAM, but hardware
            // walks them through the stage-2 the moment the guest
            // resumes — so the hypervisor ships a stage-2 covering
            // the whole arena (4-level radix), memory-proportional.
            u64 n = cfg_.guest_pages;
            u64 pages = 0;
            for (int level = 0; level < 4; ++level) {
                n = (n + 511) / 512;
                pages += n;
            }
            for (u64 p = 0; p < pages; ++p)
                plan_.push_back(
                    {static_cast<u32>(kPageSize), 0, Apply::kBulk});
        }
        break;
    }
    // The opaque device-model state (QP context, CQ cursor, ...).
    plan_.push_back({kSmallChunk, 0, Apply::kNone});
}

void
Migrator::onStreamQpError(u32 qp, u32 peer)
{
    (void)peer;
    if (done_ || qp != qp_)
        return;
    ++rep_.stream_qp_errors;
    connected_ = false;
    // Everything unacked goes back on the queue in original order.
    // Commit chunks are dropped: checkProgress re-issues the commit
    // once the re-shipped tail is acked on the new QP.
    std::vector<Chunk> back;
    back.reserve(inflight_.size());
    for (const auto &[wqe, c] : inflight_) {
        (void)wqe;
        if (!(c.state && (c.tag >> 32) == kTagCommit))
            back.push_back(c);
    }
    inflight_.clear();
    std::sort(back.begin(), back.end(),
              [](const Chunk &a, const Chunk &b) { return a.seq > b.seq; });
    for (const Chunk &c : back)
        queue_.push_front(c);
    if (commit_sent_)
        commit_sent_ = false; // commit (or resume-done) died with the QP
    cl_.machine(cfg_.src).core(0).post([this] { connectStream(); });
}

// ---- target half -------------------------------------------------------

Status
Migrator::onSink(const rdma::WireMsg &msg)
{
    if (msg.kind == rdma::MsgKind::kMigPage)
        return applyPage(msg);
    const u64 type = msg.offset >> 32;
    const u32 idx = static_cast<u32>(msg.offset & 0xffffffffULL);
    switch (type) {
    case kTagState:
        if (idx >= plan_.size())
            return Status(ErrorCode::kInvalidArgument,
                          "state chunk outside the plan");
        applyState(idx);
        return Status::ok();
    case kTagCommit:
        onCommit();
        return Status::ok();
    case kTagResume:
        // Back on the source: the target finished rebuilding state.
        if (!done_)
            finish();
        return Status::ok();
    default:
        return Status(ErrorCode::kInvalidArgument,
                      "unknown migration tag");
    }
}

Status
Migrator::applyPage(const rdma::WireMsg &msg)
{
    const u64 gfn = msg.offset;
    if (gfn >= cfg_.guest_pages || msg.payload.size() != kPageSize)
        return Status(ErrorCode::kInvalidArgument, "bad migration page");
    // DMA into the pre-mapped arena: the payload lands through the
    // target IOMMU, so a hostile or buggy stream cannot write outside
    // the sink mapping.
    return cl_.migHandle(cfg_.dst).deviceWrite(
        sink_map_.device_addr + gfn * kPageSize, msg.payload.data(),
        msg.payload.size());
}

void
Migrator::applyState(u32 idx)
{
    const StateChunkPlan plan = plan_[idx];
    des::Core &core = cl_.machine(cfg_.dst).core(0);
    switch (plan.apply) {
    case Apply::kNone:
        break;
    case Apply::kBulk:
        // Wholesale table install: memcpy-grade hypervisor work.
        core.post([&core, plan] {
            core.acct().charge(cycles::Cat::kVirt, plan.bytes / 64);
        });
        break;
    case Apply::kVmExitReplay:
        core.post([this, &core, plan] {
            for (u32 u = 0; u < plan.units; ++u) {
                if (dst_guest_ == nullptr)
                    continue;
                // Install + caching-mode invalidate: exactly the
                // trap pair the guest pays per mapping when live.
                dst_guest_->exitModel().charge(
                    virt::ExitReason::kVregWrite, &core.acct(), &core);
                dst_guest_->exitModel().charge(
                    virt::ExitReason::kQiDoorbell, &core.acct(), &core);
            }
        });
        break;
    case Apply::kHypercall:
        core.post([this, &core, plan] {
            for (u32 u = 0; u < plan.units; ++u)
                if (dst_guest_ != nullptr)
                    dst_guest_->exitModel().charge(
                        virt::ExitReason::kHypercall, &core.acct(),
                        &core);
        });
        break;
    }
}

void
Migrator::onCommit()
{
    if (done_)
        return;
    resume_pending_ = true;
    // FIFO behind the queued state applies: resume-done leaves only
    // after the target core finished rebuilding the vIOMMU.
    cl_.machine(cfg_.dst).core(0).post([this] { sendResumeDone(); });
}

void
Migrator::sendResumeDone()
{
    if (!resume_pending_ || done_)
        return;
    if (cl_.migNic(cfg_.dst).postMigState(tgt_qp_, dst_scratch_,
                                          kSmallChunk,
                                          kTagResume << 32)) {
        resume_pending_ = false;
        return;
    }
    // Flow-blocked; retry after the send queue drains a little.
    cl_.lane(cfg_.dst).sim().scheduleAfter(1000,
                                           [this] { sendResumeDone(); });
}

// ---- completion --------------------------------------------------------

void
Migrator::finish()
{
    done_ = true;
    rep_.completed = true;
    const Nanos now = srcNow();
    rep_.blackout_ns = now - t_blackout_;
    rep_.total_ns = now;
    rep_.dirtier_writes = dirtier_.writes();
    if (observer_on_) {
        cl_.machine(cfg_.src).ctx().memory().setWriteObserver(nullptr);
        observer_on_ = false;
    }
    emitPhase(kPhaseResume, rep_.rounds);
}

void
Migrator::fail(const char *why)
{
    (void)why;
    if (done_)
        return;
    done_ = true;
    rep_.failed = true;
    rep_.dirtier_writes = dirtier_.writes();
    dirtier_.pause();
    if (observer_on_) {
        cl_.machine(cfg_.src).ctx().memory().setWriteObserver(nullptr);
        observer_on_ = false;
    }
}

void
Migrator::cleanup()
{
    if (observer_on_) {
        cl_.machine(cfg_.src).ctx().memory().setWriteObserver(nullptr);
        observer_on_ = false;
    }
    if (sink_mapped_) {
        (void)cl_.migHandle(cfg_.dst).unmap(sink_map_,
                                            /*end_of_burst=*/true);
        sink_mapped_ = false;
    }
}

u64
Migrator::arenaHash(bool target) const
{
    const mem::PhysicalMemory &pm =
        cl_.machine(target ? cfg_.dst : cfg_.src).ctx().memory();
    const PhysAddr base = target ? dst_arena_ : src_arena_;
    u64 h = 1469598103934665603ULL; // FNV-1a offset basis
    std::vector<u8> buf(kPageSize);
    for (u64 g = 0; g < cfg_.guest_pages; ++g) {
        pm.read(base + g * kPageSize, buf.data(), buf.size());
        for (u8 b : buf) {
            h ^= b;
            h *= 1099511628211ULL;
        }
    }
    return h;
}

void
Migrator::emitPhase(u64 arg, u64 arg2)
{
    if (!obs::kObsCompiled)
        return;
    des::Core &core = cl_.machine(cfg_.src).core(0);
    obs::Event ev;
    ev.kind = obs::Ev::kMigPhase;
    ev.t = core.virtualNow();
    ev.arg = arg;
    ev.arg2 = arg2;
    ev.pid = core.obsPid();
    ev.tid = core.obsTid();
    obs::timeline().emit(ev);
}

Nanos
Migrator::srcNow() const
{
    return cl_.machine(cfg_.src).core(0).virtualNow();
}

} // namespace rio::migrate
