/**
 * @file
 * Live guest migration over the RDMA fabric (DESIGN.md §16): a
 * deterministic pre-copy engine that moves a guest — its RAM arena,
 * its vIOMMU state, and its device attachment — from one
 * sys::Cluster machine to another.
 *
 *  - Pre-copy rounds: round 0 ships every arena page as a kMigPage
 *    message on the source machine's *hypervisor* NIC (the Cluster
 *    migration overlay), so migration traffic translates through the
 *    source IOMMU on the way out, the target IOMMU on the way in,
 *    and contends with guest traffic for the hostile wire and the
 *    destination ingress port. Dirty pages — tracked by a
 *    PhysicalMemory write observer over the arena, which sees guest
 *    CPU stores and device DMA alike — are re-shipped each round.
 *  - Convergence: when the dirty set shrinks under a threshold (or a
 *    round cap fires), stop-and-copy begins: the dirtier pauses, the
 *    guest's data-plane NIC is torn down with the journaled
 *    five-phase quiesce, the final dirty pages plus the per-platform
 *    vIOMMU state ship, and the guest resumes on the target. The
 *    blackout window is quiesce-start → resume-done.
 *  - Per-platform state transfer: emulated replays every live
 *    mapping as a vmexit on the target; shadow copies the merged
 *    shadow table wholesale; nested copies the stage-2 table for the
 *    whole arena; rIOMMU modes re-register each live ring with one
 *    hypercall — which is why the rIOMMU blackout is bounded by live
 *    ring count, not memory size.
 *  - Strays: once the source is migrated away, in-flight DMA and
 *    delayed wire duplicates aimed at its old QPs hit the
 *    migrated-away tier of the late-arrival ledger (rdma::RdmaStats)
 *    and, in protected modes, fault rather than land.
 *
 * Determinism: the engine draws random numbers only in the seeded
 * GuestDirtier; all cross-machine interaction rides the existing
 * QP/wire layer, so `--threads 1` ≡ `--threads N` byte-for-byte
 * (pinned by the golden_migrate ctest).
 */
#ifndef RIO_MIGRATE_MIGRATE_H
#define RIO_MIGRATE_MIGRATE_H

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "base/types.h"
#include "sys/cluster.h"
#include "virt/guest.h"
#include "virt/platform.h"

namespace rio::migrate {

/** Knobs of one migration. */
struct MigrateConfig
{
    unsigned src = 0; //!< cluster machine the guest leaves
    unsigned dst = 1; //!< cluster machine the guest lands on
    /** vIOMMU strategy of the migrating guest (kBare = passthrough
     * guest: no vIOMMU state beyond the device chunk). */
    virt::Platform platform = virt::Platform::kBare;

    u64 guest_pages = 1024; //!< RAM arena size, 4 KB pages
    u32 max_rounds = 8;     //!< pre-copy round cap (then stop-and-copy)
    u64 converge_dirty = 32; //!< stop-and-copy when dirty set <= this

    /** Background dirtier: guest CPU stores into the arena at this
     * rate (0 = off, zero RNG draws). */
    double dirty_pages_per_ms = 0.0;
    u64 dirty_seed = 1;

    /** NAK budget per chunk before the migration is declared failed. */
    u32 retry_cap = 64;
};

/** What one migration did (bench columns + test oracles). */
struct MigrationReport
{
    bool completed = false;
    bool failed = false;
    u32 rounds = 0;          //!< pre-copy rounds run (round 0 included)
    u64 pages_shipped = 0;   //!< kMigPage chunks acked
    u64 pages_reshipped = 0; //!< shipped again after a re-dirty
    u64 page_naks = 0;       //!< page applies the target refused
    u64 state_chunks = 0;    //!< kMigState chunks acked (commit incl.)
    u64 state_bytes = 0;     //!< state payload bytes (device chunk incl.)
    u64 mappings_replayed = 0; //!< emulated: vmexit-replayed mappings
    u64 reg_hypercalls = 0;  //!< rIOMMU: per-ring re-registrations
    u64 live_rings = 0;      //!< rIOMMU rings live at blackout
    u64 stream_qp_errors = 0; //!< migration-QP errors survived
    u64 dirtier_writes = 0;
    Nanos blackout_ns = 0; //!< quiesce start -> resume-done
    Nanos total_ns = 0;    //!< start() -> resume-done
};

/**
 * Seeded guest-CPU page dirtier: exponential inter-write gaps at
 * `pages_per_ms`, each write a single u64 store at a drawn offset of
 * a drawn arena page. Lane-local events on the source machine's
 * simulator; zero draws (and zero events) at rate 0.
 */
class GuestDirtier
{
  public:
    void arm(des::Simulator &sim, mem::PhysicalMemory &pm, PhysAddr base,
             u64 pages, double pages_per_ms, u64 seed);
    void pause() { paused_ = true; }
    void resume();
    u64 writes() const { return writes_; }

  private:
    void scheduleNext();
    void tick();

    des::Simulator *sim_ = nullptr;
    mem::PhysicalMemory *pm_ = nullptr;
    PhysAddr base_ = 0;
    u64 pages_ = 0;
    double rate_ = 0.0;
    Rng rng_{1};
    bool paused_ = false;
    u64 writes_ = 0;
};

/**
 * One live migration on a Cluster built with `cfg.migration` on.
 * Construct after the cluster (and any Guests), call start() before
 * the run, then run the engine to idle; done()/report() afterwards.
 * The object is host-shared between the two lanes but each half's
 * mutable state is touched only from its own lane's callbacks, per
 * the ParallelEngine handoff contract.
 */
class Migrator
{
  public:
    Migrator(sys::Cluster &cluster, const MigrateConfig &cfg);
    ~Migrator();

    Migrator(const Migrator &) = delete;
    Migrator &operator=(const Migrator &) = delete;

    /**
     * The migrating guest's two halves (null for kBare). @p src_binding
     * is the source guest's binding index of the machine's guest data
     * handle (what Guest::bindHandle returned), for the shadow-table
     * state capture.
     */
    void setGuests(virt::Guest *src_guest, virt::Guest *dst_guest,
                   unsigned src_binding = 0);

    /** Allocate + seed the arenas, hook dirty tracking, connect the
     * migration QP, and queue round 0. Call once, before running. */
    void start();

    bool done() const { return done_; }
    const MigrationReport &report() const { return rep_; }

    /**
     * Post-run cleanup (host context, after the engine idled and
     * before Cluster::quiesce / leak checks): unmaps the target sink
     * mapping. Idempotent; the destructor calls it too.
     */
    void cleanup();

    PhysAddr srcArena() const { return src_arena_; }
    PhysAddr dstArena() const { return dst_arena_; }

    /** FNV-1a over the full arena bytes (0 = source, else target). */
    u64 arenaHash(bool target) const;

    GuestDirtier &dirtier() { return dirtier_; }

  private:
    /** One unit of work on the migration stream. */
    struct Chunk
    {
        bool state = false;
        u64 tag = 0;    //!< gfn (pages) or (type<<32)|idx (state)
        PhysAddr pa = 0;
        u32 bytes = 0;
        u32 retries = 0;
        u64 seq = 0; //!< enqueue order (re-queue sort after QP error)
    };

    /** How the target applies one planned state chunk. */
    enum class Apply : u8 {
        kNone = 0,     //!< opaque device state
        kBulk,         //!< wholesale table copy (shadow / stage-2)
        kVmExitReplay, //!< one kVregWrite exit per unit (emulated)
        kHypercall     //!< one registration hypercall per unit (rIOMMU)
    };

    struct StateChunkPlan
    {
        u32 bytes = 0;
        u32 units = 0;
        Apply apply = Apply::kNone;
    };

    // Source half (source-lane context only).
    void onSrcWrite(PhysAddr addr, u64 size);
    void connectStream();
    void pump();
    void onStreamCompletion(u32 qp, u32 wqe, bool ok);
    void onStreamQpError(u32 qp, u32 peer);
    void endRound();
    void beginBlackout(const std::vector<u64> &final_dirty);
    void capturePlan();
    void enqueuePage(u64 gfn);
    void enqueueState(u32 idx);
    void enqueueCommit();
    void checkProgress();
    void finish();
    void fail(const char *why);
    void emitPhase(u64 arg, u64 arg2);
    Nanos srcNow() const;

    // Target half (target-lane context only).
    Status onSink(const rdma::WireMsg &msg);
    Status applyPage(const rdma::WireMsg &msg);
    void applyState(u32 idx);
    void onCommit();
    void sendResumeDone();

    sys::Cluster &cl_;
    MigrateConfig cfg_;
    virt::Guest *src_guest_ = nullptr;
    virt::Guest *dst_guest_ = nullptr;
    unsigned src_binding_ = 0;

    // ---- source half ---------------------------------------------------
    PhysAddr src_arena_ = 0;
    PhysAddr src_scratch_ = 0; //!< serialized-state staging page
    GuestDirtier dirtier_;
    std::unordered_set<u64> dirty_; //!< observer collector (gfns)
    std::deque<Chunk> queue_;
    std::unordered_map<u64, Chunk> inflight_; //!< (qp<<32)|wqe -> chunk
    std::unordered_set<u64> shipped_once_;
    u32 qp_ = 0;
    u64 chunk_seq_ = 0;
    bool connected_ = false;
    bool started_ = false;
    bool blackout_ = false;
    bool commit_sent_ = false;
    bool observer_on_ = false;
    bool done_ = false;
    Nanos t_start_ = 0;
    Nanos t_blackout_ = 0;
    MigrationReport rep_;

    // ---- plan: written at blackout (source lane), read strictly
    // after the chunks it describes crossed the wire (target lane) —
    // the mailbox handoff orders the accesses.
    std::vector<StateChunkPlan> plan_;
    u32 tgt_qp_ = 0; //!< target-side (accepted) QP index

    // ---- target half ---------------------------------------------------
    PhysAddr dst_arena_ = 0;
    PhysAddr dst_scratch_ = 0;
    dma::DmaMapping sink_map_;
    bool sink_mapped_ = false;
    bool resume_pending_ = false;
};

} // namespace rio::migrate

#endif // RIO_MIGRATE_MIGRATE_H
