#include "nic/profile.h"

namespace rio::nic {

std::vector<u32>
NicProfile::riommuRingSizes() const
{
    std::vector<u32> sizes;
    // rid 0: static mappings — one per descriptor ring (1 Tx +
    // rx_rings Rx), mapped at bring-up, unmapped at teardown.
    sizes.push_back(1 + rx_rings);
    // rid 1: Tx target buffers; at most one mapping per descriptor.
    sizes.push_back(tx_ring_entries);
    // rid 2+k: Rx ring k target buffers, always fully mapped.
    for (unsigned r = 0; r < rx_rings; ++r)
        sizes.push_back(rx_ring_entries);
    return sizes;
}

const NicProfile &
mlxProfile()
{
    static const NicProfile profile = [] {
        NicProfile p;
        p.name = "mlx";
        p.line_rate_gbps = 40.0;
        p.tx_buffers_per_packet = 2; // header + body, two IOVAs (§5.1)
        p.rx_rings = 3;
        p.rx_ring_entries = 1536; // ~4.6K live Rx mappings (the paper
                                  // observes ~12K addresses in total,
                                  // live + churn)
        p.wire_ns = 1150;
        p.rx_irq_delay_ns = 4000;
        return p;
    }();
    return profile;
}

const NicProfile &
brcmProfile()
{
    static const NicProfile profile = [] {
        NicProfile p;
        p.name = "brcm";
        p.line_rate_gbps = 10.0;
        p.tx_buffers_per_packet = 1; // one buffer/IOVA per packet
        p.rx_rings = 2;
        p.rx_ring_entries = 1024; // ~2K live Rx mappings (~3K total)
        p.wire_ns = 10450;        // 10GBASE-T PHY + switch latency is
                                  // far higher (Table 3: 34.6 us RTT)
        p.rx_irq_delay_ns = 5000;
        return p;
    }();
    return profile;
}

} // namespace rio::nic
