/**
 * @file
 * NIC model parameters for the paper's two experimental setups
 * (§5.1): the Mellanox ConnectX3 40 Gbps NIC ("mlx") and the Broadcom
 * NetXtreme II BCM57810 10 GbE NIC ("brcm"). The two drivers differ
 * exactly as the paper describes: mlx uses two target buffers (and
 * thus two IOVAs) per transmitted packet and keeps a much larger
 * live-IOVA working set (~12 K addresses vs. ~3 K).
 */
#ifndef RIO_NIC_PROFILE_H
#define RIO_NIC_PROFILE_H

#include <vector>

#include "base/types.h"

namespace rio::nic {

/** Static description of a NIC + driver combination. */
struct NicProfile
{
    const char *name = "nic";
    double line_rate_gbps = 10.0;

    /** Target buffers (IOVAs) mapped per transmitted packet. */
    unsigned tx_buffers_per_packet = 1;
    /** Bytes of the separate header buffer (mlx header/body split). */
    u32 header_buf_bytes = 128;
    /** Bytes of one data buffer (holds one MSS). */
    u32 data_buf_bytes = 2048;
    /**
     * Sends at or below this size are inlined into the descriptor
     * (ConnectX BlueFlame-style) and need no mapping at all.
     */
    u32 inline_tx_threshold = 64;

    u32 tx_ring_entries = 1024;
    u32 rx_ring_entries = 2048;
    unsigned rx_rings = 4;

    /** Tx completions coalesced per interrupt (the paper observes
     * ~200-iteration unmap bursts under Netperf stream). */
    u32 tx_completion_batch = 200;
    /** Tx interrupt moderation: fire when the batch fills or this
     * long after the first unsignalled completion. */
    Nanos tx_irq_delay_ns = 30000;
    /** Rx interrupt moderation delay. */
    Nanos rx_irq_delay_ns = 1500;
    /** Doorbell MMIO + PCIe + descriptor fetch latency. */
    Nanos doorbell_ns = 700;
    /** One-way wire latency (calibrated against Table 3's none RTT). */
    Nanos wire_ns = 2500;

    /** Device-owned descriptors per transmitted packet. */
    unsigned txDescsPerPacket(u32 payload_bytes) const
    {
        return payload_bytes <= inline_tx_threshold ? 1
                                                    : tx_buffers_per_packet;
    }

    /** rRING sizes for an rIOMMU handle driving this NIC:
     * rid 0 = static mappings (descriptor rings), rid 1 = Tx target
     * buffers, rid 2+k = Rx ring k target buffers (two flat tables
     * per device ring, as §4 prescribes). */
    std::vector<u32> riommuRingSizes() const;

    /** Steady-state live Rx mappings (the allocator's resident set). */
    u64 rxLiveMappings() const
    {
        return static_cast<u64>(rx_rings) * rx_ring_entries;
    }
};

/** Mellanox ConnectX3 40 Gbps setup (mlx). */
const NicProfile &mlxProfile();

/** Broadcom BCM57810 10 GbE setup (brcm). */
const NicProfile &brcmProfile();

} // namespace rio::nic

#endif // RIO_NIC_PROFILE_H
