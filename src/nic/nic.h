/**
 * @file
 * NIC device + driver model, faithful to the paper's setting (§2.3):
 * descriptor rings shared between driver and device, target buffers
 * mapped just before DMA and unmapped right after (§3.1 Figures 4/6),
 * interrupt coalescing producing the ~200-unmap completion bursts the
 * paper measures, and per-packet device accesses that really traverse
 * the configured translation path (baseline IOMMU, rIOMMU, or none).
 *
 * Driver-side work (map/unmap, ring maintenance) runs on the
 * simulated core and is charged cycles; device-side work (descriptor
 * fetch, buffer DMA, completion writeback) runs in device event
 * context and is charged to no core, per the validated model (§3.3).
 */
#ifndef RIO_NIC_NIC_H
#define RIO_NIC_NIC_H

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "base/status.h"
#include "des/core.h"
#include "des/simulator.h"
#include "dma/dma_handle.h"
#include "net/packet.h"
#include "nic/profile.h"
#include "obs/registry.h"
#include "ring/descriptor_ring.h"

namespace rio::nic {

/** Cumulative NIC counters (sample-and-subtract for windows). */
struct NicStats
{
    u64 tx_packets = 0;
    u64 tx_payload_bytes = 0;
    u64 tx_irqs = 0;
    u64 rx_packets = 0;
    u64 rx_payload_bytes = 0;
    u64 rx_dropped = 0;
    u64 rx_irqs = 0;
    u64 dma_faults = 0;
    u64 unmap_bursts = 0;
    u64 unmap_burst_len_sum = 0;
    u64 surprise_unplugs = 0;
    u64 replugs = 0;
};

/** The NIC: driver API on one side, wire API on the other. */
class Nic
{
  public:
    using RxCallback = std::function<void(const net::Packet &)>;
    using TxSpaceCallback = std::function<void()>;
    using WireTxCallback = std::function<void(const net::Packet &)>;

    Nic(des::Simulator &sim, des::Core &core, mem::PhysicalMemory &pm,
        dma::DmaHandle &handle, const NicProfile &profile);
    ~Nic();

    Nic(const Nic &) = delete;
    Nic &operator=(const Nic &) = delete;

    /**
     * Allocate rings and buffer pools, install the static ring
     * mappings, and prefill every Rx descriptor with a mapped buffer
     * (the long-lived working set the IOVA allocator has to live
     * with). Call once, on the core.
     */
    void bringUp();

    /** Tear down: drain mappings, unmap rings. */
    void shutDown();

    // ---- lifecycle --------------------------------------------------------
    /**
     * Device side of a surprise hot-unplug: the hardware vanishes
     * mid-burst. Every scheduled device event is cancelled (epoch
     * bump) and the posting/irq state machines reset; mappings are
     * untouched — recovering those is removeCleanup()'s job.
     */
    void surpriseUnplug();

    /**
     * Driver-side cleanup after a surprise removal: unmap every live
     * mapping (unmap still works through a detached handle — that is
     * the teardown path), return buffers to their pools and free the
     * rings. Requires the NIC to be down.
     */
    void removeCleanup();

    /** Replug a removed NIC: bringUp() again (pools are carved only
     * once) and restart the stack via the tx-space callback. */
    void replug();

    bool isUp() const { return up_; }

    // ---- driver API (call on the core) ---------------------------------
    /** Whole packets that still fit in the Tx ring. */
    u32 txSpacePackets(u32 payload_bytes) const;

    /**
     * Map the packet's target buffers, post its descriptor(s) and
     * ring the doorbell. Small sends are inlined (no mapping).
     */
    Status sendPacket(const net::Packet &pkt);

    /** Invoked (on the core) for each received packet after the
     * driver has recycled its buffer. */
    void setRxCallback(RxCallback cb) { rx_cb_ = std::move(cb); }

    /** Invoked (on the core) when Tx completions freed ring space. */
    void setTxSpaceCallback(TxSpaceCallback cb)
    {
        tx_space_cb_ = std::move(cb);
    }

    // ---- wire API (device side) ------------------------------------------
    /** Invoked when a packet has fully left the NIC onto the wire. */
    void setWireTxCallback(WireTxCallback cb)
    {
        wire_tx_cb_ = std::move(cb);
    }

    /** A packet arrives from the wire; the device DMAs it to memory. */
    void packetFromWire(const net::Packet &pkt);

    // ---- observability ----------------------------------------------------
    const NicStats &stats() const { return stats_; }
    const NicProfile &profile() const { return profile_; }
    dma::DmaHandle &handle() { return handle_; }

    /** Mappings the driver currently holds (rx prefill + tx inflight). */
    u64 liveMappings() const { return handle_.liveMappings(); }

  private:
    // rIOMMU ring-id convention (NicProfile::riommuRingSizes).
    static constexpr u16 kStaticRid = 0;
    static constexpr u16 kTxRid = 1;
    static u16 rxRid(unsigned ring) { return static_cast<u16>(2 + ring); }

    struct TxMeta
    {
        dma::DmaMapping mapping;
        bool mapped = false;
        bool is_header = false;
        bool eop = false;
        net::Packet pkt;
    };

    struct RxRingState
    {
        std::unique_ptr<ring::DescriptorRing> ring;
        dma::DmaMapping ring_mapping;
        std::vector<dma::DmaMapping> meta; // per-entry buffer mapping
        std::vector<PhysAddr> buf_pa;      // per-entry buffer
        u32 clean_idx = 0;                 // driver's next to recycle
        u32 completed = 0;                 // device-completed, unhandled
        std::deque<net::Packet> inflight;  // payload metadata FIFO
    };

    /** Simple LIFO pool of equally-sized buffers. */
    struct BufferPool
    {
        std::vector<PhysAddr> free;
        PhysAddr pop();
        void push(PhysAddr pa) { free.push_back(pa); }
    };

    // device-side helpers (translated accesses)
    ring::Descriptor deviceReadDesc(const dma::DmaMapping &ring_mapping,
                                    const ring::DescriptorRing &ring,
                                    u32 idx, bool *fault);
    void deviceWriteDesc(const dma::DmaMapping &ring_mapping,
                         const ring::DescriptorRing &ring, u32 idx,
                         const ring::Descriptor &desc);

    void kickTx();
    void deviceTxPump();
    void raiseTxIrq();
    void txIrqHandler();
    void scheduleRxIrq();
    void rxIrqHandler();

    /** Shared unmap-all used by shutDown and removeCleanup. */
    void teardownMappings();

    /** Refresh the ring-occupancy / writeback-lag gauges. */
    void
    updateObsGauges()
    {
        obs_tx_occupancy_.set(tx_ring_ ? tx_ring_->pending() : 0);
        obs_tx_wb_lag_.set(tx_completed_unclean_);
    }

    des::Simulator &sim_;
    des::Core &core_;
    mem::PhysicalMemory &pm_;
    dma::DmaHandle &handle_;
    const NicProfile &profile_;

    bool up_ = false;

    // Lifecycle epoch: bumped on every bringUp/shutDown/unplug; each
    // scheduled device event captures it and bails on mismatch, so a
    // stale timer cannot touch a NIC that was unplugged (or replugged)
    // after it was scheduled.
    u64 epoch_ = 0;
    bool pools_carved_ = false; //!< tx pools + rx buffers: carve once
    std::vector<PhysAddr> rx_buf_base_; //!< per-ring rx buffer carve

    // Tx state
    std::unique_ptr<ring::DescriptorRing> tx_ring_;
    dma::DmaMapping tx_ring_mapping_;
    std::vector<TxMeta> tx_meta_;
    u32 tx_clean_idx_ = 0;
    u32 tx_completed_unclean_ = 0; //!< completed, not yet recycled
    u32 tx_completed_since_irq_ = 0;
    bool tx_kick_scheduled_ = false;
    bool tx_busy_ = false;
    bool tx_irq_pending_ = false;
    bool tx_irq_timer_pending_ = false;
    BufferPool header_pool_;
    BufferPool data_pool_;

    // Rx state
    std::vector<RxRingState> rx_rings_;
    bool rx_irq_scheduled_ = false;

    std::vector<u8> scratch_;
    NicStats stats_;
    obs::Gauge &obs_tx_occupancy_; //!< device-owned tx descriptors
    obs::Gauge &obs_tx_wb_lag_;    //!< completed but not yet recycled

    RxCallback rx_cb_;
    TxSpaceCallback tx_space_cb_;
    WireTxCallback wire_tx_cb_;
};

} // namespace rio::nic

#endif // RIO_NIC_NIC_H
