#include "nic/nic.h"

#include <algorithm>

#include "base/logging.h"

namespace rio::nic {

using ring::Descriptor;

PhysAddr
Nic::BufferPool::pop()
{
    RIO_ASSERT(!free.empty(), "buffer pool exhausted");
    const PhysAddr pa = free.back();
    free.pop_back();
    return pa;
}

Nic::Nic(des::Simulator &sim, des::Core &core, mem::PhysicalMemory &pm,
         dma::DmaHandle &handle, const NicProfile &profile)
    : sim_(sim), core_(core), pm_(pm), handle_(handle), profile_(profile),
      scratch_(profile.data_buf_bytes, 0),
      obs_tx_occupancy_(obs::registry().gauge("nic.tx_ring_occupancy")),
      obs_tx_wb_lag_(obs::registry().gauge("nic.tx_writeback_lag"))
{
}

Nic::~Nic() = default;

void
Nic::bringUp()
{
    RIO_ASSERT(!up_, "bringUp twice");
    up_ = true;
    ++epoch_;
    tx_clean_idx_ = 0;
    tx_completed_unclean_ = 0;
    tx_completed_since_irq_ = 0;

    // Tx descriptor ring + its static mapping (first rRING of the
    // pair in the rIOMMU design: mapped at init, unmapped at bring
    // down, always accessible to the device).
    tx_ring_ = std::make_unique<ring::DescriptorRing>(
        pm_, profile_.tx_ring_entries);
    auto m = handle_.map(kStaticRid, tx_ring_->base(),
                         static_cast<u32>(tx_ring_->bytes()),
                         iommu::DmaDir::kBidir);
    RIO_ASSERT(m.isOk(), "tx ring map failed: ", m.status().toString());
    tx_ring_mapping_ = m.value();
    tx_meta_.assign(profile_.tx_ring_entries, TxMeta{});

    // Tx buffer pools: separate header and data buffers, carved with
    // their natural stride so sub-page neighbours share pages as they
    // do in a real kernel. Carved exactly once: teardown returns every
    // buffer to its pool, so a replug reuses the same frames instead
    // of leaking a fresh carve per lifecycle event.
    if (!pools_carved_) {
        const u64 hbytes = static_cast<u64>(profile_.header_buf_bytes) *
                           profile_.tx_ring_entries;
        PhysAddr hbase = pm_.allocContiguous(hbytes);
        for (u32 i = 0; i < profile_.tx_ring_entries; ++i)
            header_pool_.push(hbase + i * profile_.header_buf_bytes);
        const u64 dbytes = static_cast<u64>(profile_.data_buf_bytes) *
                           profile_.tx_ring_entries;
        PhysAddr dbase = pm_.allocContiguous(dbytes);
        for (u32 i = 0; i < profile_.tx_ring_entries; ++i)
            data_pool_.push(dbase + i * profile_.data_buf_bytes);
    }

    // Rx rings: static ring mapping plus a fully-mapped buffer per
    // descriptor — the long-lived IOVA working set (§3.2).
    rx_rings_.resize(profile_.rx_rings);
    for (unsigned r = 0; r < profile_.rx_rings; ++r) {
        RxRingState &rr = rx_rings_[r];
        rr.ring = std::make_unique<ring::DescriptorRing>(
            pm_, profile_.rx_ring_entries);
        auto rm = handle_.map(kStaticRid, rr.ring->base(),
                              static_cast<u32>(rr.ring->bytes()),
                              iommu::DmaDir::kBidir);
        RIO_ASSERT(rm.isOk(), "rx ring map failed");
        rr.ring_mapping = rm.value();

        rr.meta.resize(profile_.rx_ring_entries);
        rr.buf_pa.resize(profile_.rx_ring_entries);
        if (r >= rx_buf_base_.size())
            rx_buf_base_.push_back(pm_.allocContiguous(
                static_cast<u64>(profile_.data_buf_bytes) *
                profile_.rx_ring_entries));
        const PhysAddr base = rx_buf_base_[r];
        for (u32 i = 0; i < profile_.rx_ring_entries; ++i) {
            rr.buf_pa[i] = base + static_cast<u64>(i) *
                                      profile_.data_buf_bytes;
            auto bm = handle_.map(rxRid(r), rr.buf_pa[i],
                                  profile_.data_buf_bytes,
                                  iommu::DmaDir::kFromDevice);
            RIO_ASSERT(bm.isOk(), "rx buffer map failed");
            rr.meta[i] = bm.value();
            rr.ring->push(Descriptor{bm.value().device_addr,
                                     profile_.data_buf_bytes,
                                     Descriptor::kOwnedByDevice});
        }
    }
    pools_carved_ = true;
}

void
Nic::shutDown()
{
    RIO_ASSERT(up_, "shutDown while down");
    up_ = false;
    ++epoch_; // cancel in-flight device events
    tx_busy_ = false;
    tx_kick_scheduled_ = false;
    tx_irq_pending_ = false;
    tx_irq_timer_pending_ = false;
    rx_irq_scheduled_ = false;
    teardownMappings();
}

void
Nic::teardownMappings()
{
    // Recycle any completed-but-uncleaned and pending Tx mappings in
    // FIFO order, then the Rx buffers, then the static ring mappings.
    if (tx_ring_) {
        u32 idx = tx_clean_idx_;
        for (u32 n = 0; n < profile_.tx_ring_entries; ++n) {
            TxMeta &meta = tx_meta_[idx];
            if (meta.mapped) {
                (void)handle_.unmap(meta.mapping, /*end_of_burst=*/true);
                (meta.is_header ? header_pool_ : data_pool_)
                    .push(meta.mapping.pa);
                meta.mapped = false;
            }
            idx = tx_ring_->next(idx);
        }
    }
    for (unsigned r = 0; r < rx_rings_.size(); ++r) {
        RxRingState &rr = rx_rings_[r];
        u32 i = rr.clean_idx;
        for (u32 n = 0; n < profile_.rx_ring_entries; ++n) {
            (void)handle_.unmap(rr.meta[i],
                                /*end_of_burst=*/n + 1 ==
                                    profile_.rx_ring_entries);
            i = rr.ring->next(i);
        }
        (void)handle_.unmap(rr.ring_mapping, true);
        rr.ring.reset();
    }
    rx_rings_.clear();
    if (tx_ring_) {
        (void)handle_.unmap(tx_ring_mapping_, true);
        tx_ring_.reset();
    }
    tx_clean_idx_ = 0;
    tx_completed_unclean_ = 0;
    tx_completed_since_irq_ = 0;
}

void
Nic::surpriseUnplug()
{
    RIO_ASSERT(up_, "surpriseUnplug while down");
    up_ = false;
    ++epoch_; // every scheduled device event dies on the epoch check
    // The cancelled events can no longer clear the flags they were
    // responsible for; reset the state machines so a later replug
    // starts from a clean slate.
    tx_busy_ = false;
    tx_kick_scheduled_ = false;
    tx_irq_pending_ = false;
    tx_irq_timer_pending_ = false;
    rx_irq_scheduled_ = false;
    tx_completed_since_irq_ = 0;
    ++stats_.surprise_unplugs;
}

void
Nic::removeCleanup()
{
    RIO_ASSERT(!up_, "removeCleanup on a live NIC");
    teardownMappings();
}

void
Nic::replug()
{
    RIO_ASSERT(!up_ && !tx_ring_, "replug without cleanup");
    ++stats_.replugs;
    bringUp();
    // A fresh empty ring means tx space opened up; restart the stack.
    if (tx_space_cb_)
        tx_space_cb_();
}

u32
Nic::txSpacePackets(u32 payload_bytes) const
{
    // A surprise-unplugged NIC has no tx space: the stack stalls here
    // and replug()'s tx-space callback restarts it after the outage.
    if (!up_ || !tx_ring_)
        return 0;
    // Descriptors popped by the device but not yet recycled by the
    // completion handler still pin their target buffers and metadata;
    // the driver may only reuse slots it has cleaned.
    const u32 space = tx_ring_->spaceLeft() > tx_completed_unclean_
                          ? tx_ring_->spaceLeft() - tx_completed_unclean_
                          : 0;
    return space / profile_.txDescsPerPacket(payload_bytes);
}

Status
Nic::sendPacket(const net::Packet &pkt)
{
    RIO_ASSERT(up_, "sendPacket on a down NIC");
    RIO_ASSERT(pkt.payload_bytes <= net::kMss &&
                   pkt.payload_bytes <= profile_.data_buf_bytes,
               "payload exceeds MSS");
    const unsigned descs = profile_.txDescsPerPacket(pkt.payload_bytes);
    if (txSpacePackets(pkt.payload_bytes) == 0)
        return Status(ErrorCode::kOverflow, "tx ring full");

    if (descs == 1 && pkt.payload_bytes <= profile_.inline_tx_threshold) {
        // Inline send: payload travels in the descriptor itself, no
        // target buffer, no mapping (ConnectX BlueFlame-style).
        const u32 idx = tx_ring_->push(
            Descriptor{0, pkt.payload_bytes,
                       Descriptor::kOwnedByDevice |
                           Descriptor::kEndOfPacket});
        TxMeta &meta = tx_meta_[idx];
        meta = TxMeta{};
        meta.eop = true;
        meta.pkt = pkt;
    } else {
        for (unsigned b = 0; b < descs; ++b) {
            const bool is_header = descs > 1 && b == 0;
            const bool last = b + 1 == descs;
            const PhysAddr pa =
                is_header ? header_pool_.pop() : data_pool_.pop();
            const u32 len = is_header ? profile_.header_buf_bytes
                                      : std::max(pkt.payload_bytes, 1u);
            auto m = handle_.map(kTxRid, pa, len, iommu::DmaDir::kToDevice);
            if (!m.isOk()) {
                (is_header ? header_pool_ : data_pool_).push(pa);
                return m.status();
            }
            const u32 idx = tx_ring_->push(Descriptor{
                m.value().device_addr, len,
                Descriptor::kOwnedByDevice |
                    (last ? Descriptor::kEndOfPacket : 0u)});
            TxMeta &meta = tx_meta_[idx];
            meta.mapping = m.value();
            meta.mapped = true;
            meta.is_header = is_header;
            meta.eop = last;
            meta.pkt = pkt;
        }
    }
    updateObsGauges();
    kickTx();
    return Status::ok();
}

void
Nic::kickTx()
{
    if (tx_kick_scheduled_ || tx_busy_)
        return;
    tx_kick_scheduled_ = true;
    // The doorbell MMIO happens after the cycles the driver has
    // charged so far — expensive (un)map work delays the device.
    const Nanos when =
        std::max(sim_.now(), core_.virtualNow()) + profile_.doorbell_ns;
    const u64 e = epoch_;
    sim_.scheduleAt(when, [this, e] {
        if (e != epoch_)
            return;
        tx_kick_scheduled_ = false;
        deviceTxPump();
    });
}

ring::Descriptor
Nic::deviceReadDesc(const dma::DmaMapping &ring_mapping,
                    const ring::DescriptorRing &ring, u32 idx, bool *fault)
{
    Descriptor desc;
    Status s = handle_.deviceRead(ring_mapping.device_addr +
                                      ring.offsetOf(idx),
                                  &desc, sizeof(desc));
    if (!s) {
        ++stats_.dma_faults;
        if (fault)
            *fault = true;
        return Descriptor{};
    }
    return desc;
}

void
Nic::deviceWriteDesc(const dma::DmaMapping &ring_mapping,
                     const ring::DescriptorRing &ring, u32 idx,
                     const ring::Descriptor &desc)
{
    Status s = handle_.deviceWrite(ring_mapping.device_addr +
                                       ring.offsetOf(idx),
                                   &desc, sizeof(desc));
    if (!s)
        ++stats_.dma_faults;
}

void
Nic::deviceTxPump()
{
    if (tx_busy_ || !up_)
        return;
    if (tx_ring_->pending() == 0) {
        if (tx_completed_since_irq_ > 0)
            raiseTxIrq();
        return;
    }

    // Gather the descriptors of the next packet (through the ring's
    // own translation, like real hardware fetching its ring).
    std::vector<u32> idxs;
    bool fault = false;
    u32 idx = tx_ring_->head();
    for (;;) {
        const Descriptor desc =
            deviceReadDesc(tx_ring_mapping_, *tx_ring_, idx, &fault);
        if (!desc.ownedByDevice() && !fault)
            return; // spurious kick; nothing posted yet
        idxs.push_back(idx);
        if (desc.endOfPacket() || fault ||
            idxs.size() >= profile_.tx_buffers_per_packet)
            break;
        idx = tx_ring_->next(idx);
    }

    // Fetch the target buffers through translation.
    for (u32 i : idxs) {
        const TxMeta &meta = tx_meta_[i];
        if (!meta.mapped)
            continue;
        Status s = handle_.deviceRead(meta.mapping.device_addr,
                                      scratch_.data(), meta.mapping.size);
        if (!s) {
            ++stats_.dma_faults;
            fault = true;
        }
    }

    const net::Packet pkt = tx_meta_[idxs.back()].pkt;
    tx_busy_ = true;
    const Nanos tx_ns = static_cast<Nanos>(
        net::wireTimeNs(pkt.payload_bytes, profile_.line_rate_gbps));
    const u64 e = epoch_;
    sim_.scheduleAfter(std::max<Nanos>(tx_ns, 1), [this, idxs, pkt,
                                                   fault, e] {
        if (e != epoch_)
            return; // NIC unplugged while the packet was in flight
        // Completion: write back status through translation, retire
        // the descriptors, maybe coalesce an interrupt.
        for (u32 i : idxs) {
            Descriptor desc = tx_ring_->read(i);
            desc.flags = (desc.flags & ~Descriptor::kOwnedByDevice) |
                         Descriptor::kCompleted;
            deviceWriteDesc(tx_ring_mapping_, *tx_ring_, i, desc);
            tx_ring_->pop();
        }
        tx_completed_since_irq_ += static_cast<u32>(idxs.size());
        tx_completed_unclean_ += static_cast<u32>(idxs.size());
        updateObsGauges();
        ++stats_.tx_packets;
        stats_.tx_payload_bytes += pkt.payload_bytes;
        if (!fault && wire_tx_cb_)
            wire_tx_cb_(pkt);
        tx_busy_ = false;
        if (tx_completed_since_irq_ >= profile_.tx_completion_batch) {
            raiseTxIrq();
        } else if (!tx_irq_timer_pending_) {
            // Interrupt moderation: signal a partial batch only after
            // the moderation delay.
            tx_irq_timer_pending_ = true;
            const u64 te = epoch_;
            sim_.scheduleAfter(profile_.tx_irq_delay_ns, [this, te] {
                if (te != epoch_)
                    return;
                tx_irq_timer_pending_ = false;
                if (tx_completed_since_irq_ > 0)
                    raiseTxIrq();
            });
        }
        deviceTxPump();
    });
}

void
Nic::raiseTxIrq()
{
    tx_completed_since_irq_ = 0;
    if (tx_irq_pending_)
        return;
    tx_irq_pending_ = true;
    ++stats_.tx_irqs;
    const u64 e = epoch_;
    core_.post([this, e] {
        if (e != epoch_)
            return;
        txIrqHandler();
    });
}

void
Nic::txIrqHandler()
{
    tx_irq_pending_ = false;
    if (!up_)
        return;
    // Collect the completion burst, then unmap it back-to-front-aware:
    // only the last unmap of the burst carries end_of_burst (§4).
    std::vector<u32> done;
    while (tx_completed_unclean_ > 0) {
        // Head-write-back style cleanup: descriptors retire strictly
        // in ring order and the IRQ accounting counts exactly the
        // retired ones, so the counter identifies the burst even when
        // a faulted DMA write dropped a descriptor's in-memory
        // completion bit.
        done.push_back(tx_clean_idx_);
        tx_ring_->write(tx_clean_idx_, Descriptor{});
        tx_clean_idx_ = tx_ring_->next(tx_clean_idx_);
        --tx_completed_unclean_;
    }
    updateObsGauges();
    if (done.empty())
        return;

    u32 mapped_left = 0;
    for (u32 i : done)
        mapped_left += tx_meta_[i].mapped ? 1 : 0;
    if (mapped_left > 0) {
        ++stats_.unmap_bursts;
        stats_.unmap_burst_len_sum += mapped_left;
    }
    for (u32 i : done) {
        TxMeta &meta = tx_meta_[i];
        if (!meta.mapped)
            continue;
        --mapped_left;
        Status s = handle_.unmap(meta.mapping,
                                 /*end_of_burst=*/mapped_left == 0);
        RIO_ASSERT(s.isOk(), "tx unmap failed: ", s.toString());
        (meta.is_header ? header_pool_ : data_pool_)
            .push(meta.mapping.pa);
        meta.mapped = false;
    }
    if (tx_space_cb_)
        tx_space_cb_();
}

void
Nic::packetFromWire(const net::Packet &pkt)
{
    if (!up_) {
        ++stats_.rx_dropped;
        return;
    }
    // RSS: a flow always hashes to the same Rx ring (a single
    // netperf connection exercises one ring; 32 ApacheBench
    // connections spread out). Starved rings overflow to neighbours.
    RxRingState *rr = nullptr;
    unsigned ring = static_cast<unsigned>(pkt.flow) % rx_rings_.size();
    for (unsigned probe = 0; probe < rx_rings_.size(); ++probe) {
        RxRingState &cand = rx_rings_[(ring + probe) % rx_rings_.size()];
        if (cand.ring->pending() > 0) {
            rr = &cand;
            break;
        }
    }
    if (!rr) {
        ++stats_.rx_dropped;
        return;
    }

    bool fault = false;
    const u32 idx = rr->ring->head();
    Descriptor desc =
        deviceReadDesc(rr->ring_mapping, *rr->ring, idx, &fault);
    if (!fault && pkt.payload_bytes > 0) {
        const u32 len = std::min(pkt.payload_bytes, desc.len);
        Status s = handle_.deviceWrite(desc.addr, scratch_.data(), len);
        if (!s) {
            ++stats_.dma_faults;
            fault = true;
        }
    }
    if (fault) {
        ++stats_.rx_dropped;
        return;
    }
    desc.flags = (desc.flags & ~Descriptor::kOwnedByDevice) |
                 Descriptor::kCompleted;
    deviceWriteDesc(rr->ring_mapping, *rr->ring, idx, desc);
    rr->ring->pop();
    ++rr->completed;
    rr->inflight.push_back(pkt);
    ++stats_.rx_packets;
    stats_.rx_payload_bytes += pkt.payload_bytes;
    scheduleRxIrq();
}

void
Nic::scheduleRxIrq()
{
    if (rx_irq_scheduled_)
        return;
    rx_irq_scheduled_ = true;
    const u64 e = epoch_;
    sim_.scheduleAfter(profile_.rx_irq_delay_ns, [this, e] {
        if (e != epoch_)
            return;
        rx_irq_scheduled_ = false;
        ++stats_.rx_irqs;
        core_.post([this, e] {
            if (e != epoch_)
                return;
            rxIrqHandler();
        });
    });
}

void
Nic::rxIrqHandler()
{
    if (!up_)
        return;
    for (unsigned r = 0; r < rx_rings_.size(); ++r) {
        RxRingState &rr = rx_rings_[r];
        const u32 burst = rr.completed;
        if (burst == 0)
            continue;
        rr.completed = 0;
        ++stats_.unmap_bursts;
        stats_.unmap_burst_len_sum += burst;
        for (u32 n = 0; n < burst; ++n) {
            const u32 idx = rr.clean_idx;
            // Unmap first; only then is the buffer safe to hand to
            // the stack (Figure 6), and only the burst's last unmap
            // invalidates the ring's rIOTLB entry.
            Status s = handle_.unmap(rr.meta[idx],
                                     /*end_of_burst=*/n + 1 == burst);
            RIO_ASSERT(s.isOk(), "rx unmap failed: ", s.toString());
            // Replenish the slot with a freshly mapped buffer.
            auto m = handle_.map(rxRid(r), rr.buf_pa[idx],
                                 profile_.data_buf_bytes,
                                 iommu::DmaDir::kFromDevice);
            RIO_ASSERT(m.isOk(), "rx remap failed: ",
                       m.status().toString());
            rr.meta[idx] = m.value();
            rr.ring->push(Descriptor{m.value().device_addr,
                                     profile_.data_buf_bytes,
                                     Descriptor::kOwnedByDevice});
            rr.clean_idx = rr.ring->next(rr.clean_idx);

            RIO_ASSERT(!rr.inflight.empty(), "rx bookkeeping mismatch");
            const net::Packet pkt = rr.inflight.front();
            rr.inflight.pop_front();
            if (rx_cb_)
                rx_cb_(pkt);
        }
    }
}

} // namespace rio::nic
