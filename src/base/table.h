/**
 * @file
 * ASCII table formatter used by the bench binaries to print the
 * paper's tables and figure series in an aligned, diff-friendly form.
 */
#ifndef RIO_BASE_TABLE_H
#define RIO_BASE_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace rio {

/**
 * A simple row/column table with left-aligned first column and
 * right-aligned remaining columns, matching how the paper prints its
 * breakdowns.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: first cell is a label, rest are formatted values. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 2);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render with padded columns. */
    std::string toString() const;
    friend std::ostream &operator<<(std::ostream &os, const Table &t);

    /** Format @p v with fixed @p precision; trims to integers cleanly. */
    static std::string num(double v, int precision = 2);

    /** Column names (for machine-readable mirrors of the table). */
    const std::vector<std::string> &header() const { return header_; }

    /** Raw rows in insertion order; an empty row is a separator. */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty row == separator
};

} // namespace rio

#endif // RIO_BASE_TABLE_H
