/**
 * @file
 * Lightweight Status/Result error propagation for recoverable errors
 * (I/O page faults, ring overflow, ...). Unrecoverable internal errors
 * use RIO_PANIC instead.
 */
#ifndef RIO_BASE_STATUS_H
#define RIO_BASE_STATUS_H

#include <string>
#include <utility>
#include <variant>

#include "base/logging.h"

namespace rio {

/** Machine-readable error categories used across the simulator. */
enum class ErrorCode {
    kOk = 0,
    kIoPageFault,      //!< translation fault (missing/invalid mapping)
    kPermission,       //!< DMA direction / R/W permission violation
    kOutOfRange,       //!< offset beyond mapped size, bad index
    kOverflow,         //!< ring / table has no free entry
    kExists,           //!< mapping already present
    kNotFound,         //!< lookup failed
    kInvalidArgument,   //!< caller error
    kResourceExhausted, //!< out of simulated memory, ids, ...
    kCorrupted,         //!< reserved bits set / malformed structure
    kTimedOut,          //!< hardware stopped responding (ITE analog)
    kDetached           //!< operation on a detached/unplugged device
};

/** Human-readable name of @p code. */
const char *errorCodeName(ErrorCode code);

/**
 * Result of an operation that can fail in an expected way. Cheap to
 * copy; carries a code and an optional message.
 */
class Status
{
  public:
    Status() : code_(ErrorCode::kOk) {}
    Status(ErrorCode code, std::string msg)
        : code_(code), msg_(std::move(msg))
    {
    }

    static Status ok() { return Status(); }

    bool isOk() const { return code_ == ErrorCode::kOk; }
    explicit operator bool() const { return isOk(); }

    ErrorCode code() const { return code_; }
    const std::string &message() const { return msg_; }

    /** Render "code: message" for logs and test failures. */
    std::string
    toString() const
    {
        std::string s = errorCodeName(code_);
        if (!msg_.empty()) {
            s += ": ";
            s += msg_;
        }
        return s;
    }

  private:
    ErrorCode code_;
    std::string msg_;
};

/** A value or a Status error. */
template <typename T>
class Result
{
  public:
    Result(T value) : storage_(std::move(value)) {}
    Result(Status status) : storage_(std::move(status))
    {
        RIO_ASSERT(!std::get<Status>(storage_).isOk(),
                   "Result constructed from OK status without a value");
    }

    bool isOk() const { return std::holds_alternative<T>(storage_); }
    explicit operator bool() const { return isOk(); }

    /** The contained value; panics if this holds an error. */
    const T &
    value() const
    {
        RIO_ASSERT(isOk(), "value() on error Result: ", status().toString());
        return std::get<T>(storage_);
    }

    T &
    value()
    {
        RIO_ASSERT(isOk(), "value() on error Result: ", status().toString());
        return std::get<T>(storage_);
    }

    /** The error; Status::ok() if this holds a value. */
    Status
    status() const
    {
        if (isOk())
            return Status::ok();
        return std::get<Status>(storage_);
    }

  private:
    std::variant<T, Status> storage_;
};

} // namespace rio

#endif // RIO_BASE_STATUS_H
