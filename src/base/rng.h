/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 * Every stochastic choice in the simulator draws from an explicitly
 * seeded Rng so that identical seeds give identical cycle counts.
 */
#ifndef RIO_BASE_RNG_H
#define RIO_BASE_RNG_H

#include <array>

#include "base/types.h"

namespace rio {

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * implementation, reimplemented here). Fast, high-quality, and — the
 * property we actually need — fully deterministic across platforms.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    u64 next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    u64 below(u64 bound);

    /** Uniform integer in [lo, hi] inclusive. */
    u64 range(u64 lo, u64 hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /**
     * Exponentially distributed draw with the given mean (used for
     * inter-arrival times in open-loop workloads).
     */
    double exponential(double mean);

    /** Split off an independent stream (for per-component RNGs). */
    Rng fork();

  private:
    static u64 splitmix64(u64 &state);
    static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

    std::array<u64, 4> s_;
};

} // namespace rio

#endif // RIO_BASE_RNG_H
