/**
 * @file
 * Small statistics toolkit: running mean/stddev accumulator, named
 * counters, and a log-scale latency histogram. Used by device models
 * and the experiment runner to report the quantities the paper
 * reports (average cycles, throughput, CPU%, round-trip latency).
 */
#ifndef RIO_BASE_STATS_H
#define RIO_BASE_STATS_H

#include <map>
#include <string>
#include <vector>

#include "base/types.h"

namespace rio {

/**
 * Welford running mean / variance accumulator. Numerically stable and
 * O(1) per sample, so hot paths can use it freely.
 */
class Accumulator
{
  public:
    void add(double x);
    void reset();

    u64 count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    u64 n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Power-of-two bucketed histogram for latencies/sizes. Bucket i holds
 * samples in [2^i, 2^(i+1)).
 */
class Histogram
{
  public:
    void add(u64 x);
    void reset();

    u64 count() const { return total_; }
    /** Value at quantile @p q in [0,1], approximated by bucket lower bound. */
    u64 quantile(double q) const;
    const std::vector<u64> &buckets() const { return buckets_; }

  private:
    std::vector<u64> buckets_;
    u64 total_ = 0;
};

/**
 * A named bag of monotonically increasing counters; cheap string
 * lookup is acceptable because increments are batched per event, not
 * per simulated instruction.
 */
class CounterSet
{
  public:
    void inc(const std::string &name, u64 by = 1) { counters_[name] += by; }
    u64 get(const std::string &name) const;
    void reset() { counters_.clear(); }
    const std::map<std::string, u64> &all() const { return counters_; }

  private:
    std::map<std::string, u64> counters_;
};

} // namespace rio

#endif // RIO_BASE_STATS_H
