#include "base/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rio {

void
Accumulator::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::add(u64 x)
{
    const unsigned bucket = x == 0 ? 0 : std::bit_width(x) - 1;
    if (buckets_.size() <= bucket)
        buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
    ++total_;
}

void
Histogram::reset()
{
    buckets_.clear();
    total_ = 0;
}

u64
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const u64 target = static_cast<u64>(q * static_cast<double>(total_ - 1));
    u64 seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target)
            return u64{1} << i;
    }
    return u64{1} << (buckets_.size() - 1);
}

u64
CounterSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

} // namespace rio
