/**
 * @file
 * Small string helpers shared by benches, examples and tests.
 */
#ifndef RIO_BASE_STRINGS_H
#define RIO_BASE_STRINGS_H

#include <string>
#include <vector>

#include "base/types.h"

namespace rio {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** "1.23 Gbps", "456.7 Mbps" style human bit-rate. */
std::string formatBitRate(double bits_per_sec);

/** "12.3K", "4.56M" style human count. */
std::string formatCount(double count);

/** Split @p s on @p sep (no empty trailing element). */
std::vector<std::string> split(const std::string &s, char sep);

} // namespace rio

#endif // RIO_BASE_STRINGS_H
