#include "base/rng.h"

#include <cmath>

#include "base/logging.h"

namespace rio {

u64
Rng::splitmix64(u64 &state)
{
    u64 z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(u64 seed)
{
    // Seed the four state words via splitmix64 as recommended by the
    // xoshiro authors; guards against the all-zero state.
    u64 sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 1;
}

u64
Rng::next()
{
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

u64
Rng::below(u64 bound)
{
    RIO_ASSERT(bound > 0, "Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = -bound % bound;
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

u64
Rng::range(u64 lo, u64 hi)
{
    RIO_ASSERT(lo <= hi, "Rng::range lo > hi");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    // Clamp away from 0 so log() stays finite.
    if (u < 1e-300)
        u = 1e-300;
    return -mean * std::log(u);
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace rio
