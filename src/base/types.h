/**
 * @file
 * Fundamental fixed-width type aliases used across the rIOMMU
 * simulator, mirroring the bit-level vocabulary of the paper
 * (u16 bdf, u18 rentry, u30 offset, ...).
 */
#ifndef RIO_BASE_TYPES_H
#define RIO_BASE_TYPES_H

#include <cstdint>
#include <cstddef>

namespace rio {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** A physical memory address in the simulated machine. */
using PhysAddr = u64;

/** An I/O virtual address as seen by a device. */
using IovaAddr = u64;

/** Simulated core clock cycles. */
using Cycles = u64;

/** Simulated wall time in nanoseconds (used by the DES kernel). */
using Nanos = u64;

/** Size of a (simulated) base page and cacheline. */
inline constexpr u64 kPageSize = 4096;
inline constexpr u64 kPageShift = 12;
inline constexpr u64 kPageMask = kPageSize - 1;
inline constexpr u64 kCachelineSize = 64;

/** Round @p x down/up to a page boundary. */
constexpr u64 pageAlignDown(u64 x) { return x & ~kPageMask; }
constexpr u64 pageAlignUp(u64 x) { return (x + kPageMask) & ~kPageMask; }
constexpr bool isPageAligned(u64 x) { return (x & kPageMask) == 0; }

/** Number of pages spanned by a buffer [addr, addr+size). */
constexpr u64
pagesSpanned(u64 addr, u64 size)
{
    if (size == 0)
        return 0;
    return (pageAlignUp(addr + size) - pageAlignDown(addr)) >> kPageShift;
}

} // namespace rio

#endif // RIO_BASE_TYPES_H
