#include "base/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/logging.h"

namespace rio {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    RIO_ASSERT(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    RIO_ASSERT(cells.size() == header_.size(),
               "row arity ", cells.size(), " != header ", header_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addRow(const std::string &label, const std::vector<double> &values,
              int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(num(v, precision));
    addRow(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.emplace_back(); // empty row marks a separator
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::toString() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &row,
                         std::ostringstream &oss) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                oss << "  ";
            if (c == 0) {
                oss << row[c]
                    << std::string(widths[c] - row[c].size(), ' ');
            } else {
                oss << std::string(widths[c] - row[c].size(), ' ')
                    << row[c];
            }
        }
        oss << "\n";
    };

    auto renderSep = [&](std::ostringstream &oss) {
        size_t total = 0;
        for (size_t c = 0; c < widths.size(); ++c)
            total += widths[c] + (c > 0 ? 2 : 0);
        oss << std::string(total, '-') << "\n";
    };

    std::ostringstream oss;
    renderRow(header_, oss);
    renderSep(oss);
    for (const auto &row : rows_) {
        if (row.empty())
            renderSep(oss);
        else
            renderRow(row, oss);
    }
    return oss.str();
}

std::ostream &
operator<<(std::ostream &os, const Table &t)
{
    return os << t.toString();
}

} // namespace rio
