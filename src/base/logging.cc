#include "base/logging.h"

#include <atomic>

namespace rio {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(EXIT_FAILURE);
}

void
logImpl(LogLevel level, const char *tag, const std::string &msg)
{
    if (level <= logLevel())
        std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

} // namespace rio
