#include "base/status.h"

namespace rio {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk: return "OK";
      case ErrorCode::kIoPageFault: return "IO_PAGE_FAULT";
      case ErrorCode::kPermission: return "PERMISSION";
      case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
      case ErrorCode::kOverflow: return "OVERFLOW";
      case ErrorCode::kExists: return "EXISTS";
      case ErrorCode::kNotFound: return "NOT_FOUND";
      case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
      case ErrorCode::kCorrupted: return "CORRUPTED";
      case ErrorCode::kTimedOut: return "TIMED_OUT";
      case ErrorCode::kDetached: return "DETACHED";
    }
    return "UNKNOWN";
}

} // namespace rio
