#include "base/strings.h"

#include <cstdarg>
#include <cstdio>

namespace rio {

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

std::string
formatBitRate(double bits_per_sec)
{
    if (bits_per_sec >= 1e9)
        return strprintf("%.2f Gbps", bits_per_sec / 1e9);
    if (bits_per_sec >= 1e6)
        return strprintf("%.2f Mbps", bits_per_sec / 1e6);
    if (bits_per_sec >= 1e3)
        return strprintf("%.2f Kbps", bits_per_sec / 1e3);
    return strprintf("%.0f bps", bits_per_sec);
}

std::string
formatCount(double count)
{
    if (count >= 1e9)
        return strprintf("%.2fG", count / 1e9);
    if (count >= 1e6)
        return strprintf("%.2fM", count / 1e6);
    if (count >= 1e3)
        return strprintf("%.2fK", count / 1e3);
    return strprintf("%.0f", count);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            if (start < s.size())
                out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

} // namespace rio
