/**
 * @file
 * Logging and error-reporting helpers in the spirit of gem5's
 * logging.hh: panic() for internal invariant violations, fatal() for
 * unrecoverable user/configuration errors, warn()/inform() for
 * diagnostics.
 */
#ifndef RIO_BASE_LOGGING_H
#define RIO_BASE_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace rio {

/** Verbosity levels for the global logger. */
enum class LogLevel { kQuiet = 0, kWarn = 1, kInform = 2, kDebug = 3 };

/** Process-wide log verbosity; benches lower it, tests raise it. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void logImpl(LogLevel level, const char *tag, const std::string &msg);

/** Build a message from stream-able parts. */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

} // namespace rio

/** Internal invariant violated: a simulator bug. Aborts. */
#define RIO_PANIC(...) \
    ::rio::detail::panicImpl(__FILE__, __LINE__, ::rio::detail::cat(__VA_ARGS__))

/** Unrecoverable configuration/user error. Exits with failure. */
#define RIO_FATAL(...) \
    ::rio::detail::fatalImpl(__FILE__, __LINE__, ::rio::detail::cat(__VA_ARGS__))

#define RIO_WARN(...) \
    ::rio::detail::logImpl(::rio::LogLevel::kWarn, "warn", \
                           ::rio::detail::cat(__VA_ARGS__))

#define RIO_INFORM(...) \
    ::rio::detail::logImpl(::rio::LogLevel::kInform, "info", \
                           ::rio::detail::cat(__VA_ARGS__))

/** Assert that is always on (simulation correctness beats speed). */
#define RIO_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            RIO_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // RIO_BASE_LOGGING_H
