/**
 * @file
 * RDMA-style NIC device model for the cluster-scale study: per
 * connection a queue pair (send-queue ring + memory region) whose
 * buffers are registered through the machine's DMA handle, so that a
 * remote machine's reads and writes of our memory translate through
 * *our* IOMMU with zero local driver cycles — the VA-RDMA shape that
 * multiplies ring count by connection count and stresses the rDEVICE
 * table far beyond the paper's single-NIC setup.
 *
 * rRING layout under the rIOMMU modes (ignored by baseline modes):
 *   rid 0            — static ring: the completion queue mapping
 *   rid 1 + 2q       — QP q control ring: WQE-ring + MR mappings,
 *                      mapped at connect, unmapped at teardown
 *   rid 2 + 2q       — QP q data ring: one short-lived mapping per
 *                      posted operation (the hot path)
 * A fabric of Q QPs therefore owns 1 + 2Q rDEVICE entries; this is
 * the structure whose erosion bench_cluster_rdma measures.
 *
 * Determinism: the model draws no random numbers and all latencies
 * are profile constants; cross-machine delivery order is fixed by the
 * ParallelEngine's (when, src lane, seq) mail sort.
 */
#ifndef RIO_RDMA_RDMA_H
#define RIO_RDMA_RDMA_H

#include <array>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "des/core.h"
#include "des/simulator.h"
#include "dma/dma_handle.h"
#include "mem/phys_mem.h"
#include "net/packet.h"
#include "obs/slo.h"

namespace rio::rdma {

/** Model parameters of one RDMA NIC + driver ("verbs") stack. */
struct RdmaProfile
{
    const char *name = "rnic40";
    double gbps = 40.0;

    /** One-way wire latency between any two machines. Doubles as the
     * cluster's conservative lookahead, so it must lower-bound every
     * message (serialization time only adds). */
    Nanos wire_ns = 600;
    /** Doorbell MMIO + PCIe + WQE fetch start. */
    Nanos doorbell_ns = 300;
    /** Completion interrupt moderation: CQEs arriving within this
     * window of the first unsignalled one share a poll batch — the
     * lever that amortizes end-of-burst invalidations per ring. */
    Nanos completion_irq_ns = 4000;

    u32 sq_depth = 16;       //!< max in-flight ops per QP
    u32 cq_entries = 4096;   //!< shared completion queue entries
    u32 max_req_bytes = 2048; //!< MR size; request-size upper bound

    Cycles post_cycles = 600;    //!< verbs post_send/post_read path
    Cycles poll_cycles = 250;    //!< per-CQE poll + bookkeeping
    Cycles connect_cycles = 3500; //!< QP create + address handshake
    Cycles teardown_cycles = 1800; //!< QP destroy path
};

/** 40 Gbps RoCE-flavored profile used by the fleet workload. */
const RdmaProfile &rnicProfile();

inline constexpr u32 kWqeBytes = 32;
inline constexpr u32 kCqeBytes = 16;

/** Migration chunk ceiling: one guest page. Mig posts are exempt
 * from RdmaProfile::max_req_bytes (the NIC segments large requests
 * internally; modeled as one wire message) but never exceed this. */
inline constexpr u32 kMigChunkBytes = 4096;

/** rRING id helpers (see file header). */
inline u16 ctrlRid(u32 qp) { return static_cast<u16>(1 + 2 * qp); }
inline u16 dataRid(u32 qp) { return static_cast<u16>(2 + 2 * qp); }

/** rRING geometry for Machine::attachDeviceHandle. */
std::vector<u32> ringSizes(const RdmaProfile &profile, u32 max_qps);

/** Everything that crosses the wire between two RdmaNics. */
enum class MsgKind : u8 {
    kConnect = 0, //!< active open: src_qp + our rkey
    kAccept,      //!< passive side's qp + rkey
    kReject,      //!< no QP slot free
    kWrite,       //!< RDMA write: payload into target MR
    kRead,        //!< RDMA read request
    kReadResp,    //!< read payload (or NAK via ok=false)
    kAck,         //!< write acknowledged
    kNak,         //!< write faulted at the target
    kNakSeq,      //!< out-of-sequence NAK: psn = expected PSN
    kClose,       //!< orderly teardown
    kCloseAck,
    kQpError,     //!< async peer notification of a QP error
    kMigPage,     //!< live-migration page: payload into the target sink
    kMigState     //!< live-migration vIOMMU/device state chunk
};

struct WireMsg
{
    MsgKind kind = MsgKind::kAck;
    u32 src_nic = 0;
    u32 dst_nic = 0; //!< receiver NIC id (routes multi-NIC machines)
    u32 src_qp = 0; //!< sender-side QP index
    u32 dst_qp = 0; //!< receiver-side QP index (except kConnect)
    u32 wqe = 0;    //!< initiator op slot, echoed in replies
    u32 psn = 0;    //!< packet sequence number (reliability layer)
    u64 rkey = 0;   //!< MR device address (handshake / data target)
    u64 offset = 0; //!< byte offset into the target MR
    u32 len = 0;
    bool ok = true;
    /** Distributed-trace identity of the op this packet serves (0 for
     * control-plane traffic). Host-side observability metadata only:
     * never read by protocol logic, costs no simulated bytes. */
    u64 trace = 0;
    std::vector<u8> payload;
};

/**
 * RoCE-style reliability knobs. Off by default: with `enabled`
 * false the NIC byte-for-byte matches the lossless-wire model (no
 * PSN checks, no timers, no extra events) — required by the
 * golden_cluster / golden_wire pins. Enable it whenever the wire
 * can lose or reorder (sys::WireFaultConfig armed).
 */
struct ReliabilityConfig
{
    bool enabled = false;
    /** Base retransmission timeout; doubles per fruitless fire up to
     * `rto_max_backoff` exponents. Must comfortably exceed the RTT
     * (wire_ns*2 + serialization + completion moderation). */
    Nanos rto_ns = 20000;
    u32 rto_max_backoff = 6;
    /** Go-back-N rounds (RTO fires + sequence NAKs) without forward
     * progress before the QP transitions to the error state. */
    u32 retry_limit = 7;
    /** Driver-side cost of the error path: reading the affected QP
     * state, flushing verbs resources, policy decision. Charged under
     * Cat::kFaultHandling when the error drain completes. */
    Cycles recovery_cycles = 4000;
};

/** Counters for the bench and the fuzz oracles. */
struct RdmaStats
{
    u64 connects = 0;  //!< QPs established, either side
    u64 rejects = 0;
    u64 teardowns = 0; //!< QPs fully closed, either side
    u64 posts = 0;
    u64 posts_blocked = 0; //!< window full / ring overflow / closing
    u64 writes_sent = 0;
    u64 reads_sent = 0;
    u64 completions = 0;
    u64 comp_errors = 0;
    u64 remote_writes = 0;
    u64 remote_reads = 0;
    u64 remote_faults = 0; //!< target-side translation faults (NAKs)
    u64 local_fault_drops = 0; //!< initiator-side WQE/payload faults
    u64 bytes_sent = 0;
    u64 cq_irqs = 0;
    u64 cq_polled = 0;      //!< CQEs consumed
    u64 cq_batch_rings = 0; //!< distinct QPs summed over poll batches
    u64 eob_unmaps = 0;     //!< unmaps that closed a per-ring burst

    // Reliability layer (all zero while ReliabilityConfig is off).
    u64 retransmits = 0;  //!< data packets re-sent (go-back-N)
    u64 rto_fires = 0;    //!< RTO expirations that retransmitted
    u64 nak_seq_sent = 0; //!< out-of-sequence NAKs (responder side)
    u64 nak_seq_recv = 0; //!< sequence NAKs acted on (requester side)
    u64 dup_requests = 0; //!< duplicate data packets replayed
    u64 stale_acks = 0;   //!< acks ignored (PSN mismatch / dead op)
    u64 qp_errors = 0;    //!< QPs that entered the error state
    u64 qp_error_flushed = 0;   //!< WQEs flushed as error CQEs
    u64 qp_error_recovered = 0; //!< error QPs drained + freed
    /** Data packets that addressed a dead QP (freed, or its MR
     * already unmapped) — the late-arrival window the headline
     * experiment measures. `late_faulted` were stopped by the
     * target's IOMMU; `late_landed` hit memory (the stale window a
     * deferred-invalidation policy leaves open). */
    u64 late_arrivals = 0;
    u64 late_faulted = 0;
    u64 late_landed = 0;

    // Migration stream (zero unless a Migrator drives this NIC).
    u64 mig_pages_sent = 0;  //!< kMigPage ops posted (requester)
    u64 mig_state_sent = 0;  //!< kMigState ops posted (requester)
    u64 mig_bytes_sent = 0;  //!< payload bytes across both kinds
    u64 mig_applied = 0;     //!< sink applies that succeeded (target)
    u64 mig_apply_faults = 0; //!< sink applies the target IOMMU refused
    /** The "migrated-away" tier of the late-arrival ledger: data
     * packets that reached this NIC after its guest was migrated
     * off the machine. Like late_*, faulted means the source IOMMU
     * (or the detached handle) stopped the stray; landed means it
     * hit memory the guest no longer owns. */
    u64 migrated_away_arrivals = 0;
    u64 migrated_away_faulted = 0;
    u64 migrated_away_landed = 0;
};

/**
 * One RDMA NIC: device model + driver ("verbs") front end sharing a
 * core. Connection setup, teardown, and completions run as driver
 * work on the core; remote accesses land on the device side and cost
 * no local cycles — only translations.
 */
class RdmaNic
{
  public:
    /** void(dst_nic, arrival_time, msg): install by the cluster. */
    using SendFn = std::function<void(u32, Nanos, WireMsg)>;
    /** void(qp, ok): connect() outcome. */
    using ConnectCb = std::function<void(u32, bool)>;
    /** void(qp): teardown finished (initiator side). */
    using ClosedCb = std::function<void(u32)>;
    /** void(qp, wqe, ok): one completed op (after its unmap). */
    using CompletionCb = std::function<void(u32, u32, bool)>;
    /** void(qp, peer_nic): a QP finished its error drain and was
     * freed; the driver decides reconnect vs abandon. */
    using QpErrorCb = std::function<void(u32, u32)>;
    /** Status(msg): target-side apply of one kMigPage / kMigState
     * chunk (the live-migration sink). Must be idempotent — under
     * loss the go-back-N layer replays chunks, and wire duplicates
     * re-deliver them. */
    using MigSinkFn = std::function<Status(const WireMsg &)>;

    RdmaNic(des::Simulator &sim, des::Core &core,
            mem::PhysicalMemory &pm, dma::DmaHandle &handle,
            const RdmaProfile &profile, u32 max_qps, u32 nic_id);

    RdmaNic(const RdmaNic &) = delete;
    RdmaNic &operator=(const RdmaNic &) = delete;

    void setSendFn(SendFn fn) { send_ = std::move(fn); }
    void setCompletionCallback(CompletionCb cb) { on_completion_ = std::move(cb); }
    void setQpErrorCallback(QpErrorCb cb) { on_qp_error_ = std::move(cb); }
    void setMigSink(MigSinkFn fn) { mig_sink_ = std::move(fn); }

    /**
     * Mark the guest this NIC served as migrated off the machine:
     * subsequent late arrivals are attributed to the migrated-away
     * tier of the ledger (see RdmaStats). The NIC itself keeps
     * running — strays must still hit the IOMMU to be classified.
     */
    void setMigratedAway(bool on) { migrated_away_ = on; }

    /** Arm the RoCE reliability layer. Call before any traffic. */
    void setReliability(const ReliabilityConfig &rel) { rel_ = rel; }
    const ReliabilityConfig &reliability() const { return rel_; }

    /** Allocate + map the CQ. Call once before any traffic. */
    void bringUp();

    /** Unmap the CQ (after all QPs are closed) — leak-check hygiene. */
    void shutDown();

    // ---- driver-side verbs (call from this machine's core/lane) -------
    /**
     * Active open toward @p peer_nic: allocates a QP, registers its
     * WQE ring + MR, and starts the handshake. @p cb fires with the
     * outcome. Returns the local QP index, or an error if no slot or
     * registration failed.
     */
    Result<u32> connect(u32 peer_nic, ConnectCb cb);

    /**
     * Post an RDMA write of @p bytes from the QP's source buffer into
     * the peer MR at @p roffset. False = flow-controlled (window or
     * data ring full) or QP not writable; the caller retries after a
     * completion.
     */
    bool postWrite(u32 qp, u32 bytes, u64 roffset = 0);

    /** Post an RDMA read of @p bytes from the peer MR at @p roffset
     * into the QP's read buffer. */
    bool postRead(u32 qp, u32 bytes, u64 roffset = 0);

    /**
     * Post one live-migration page: @p bytes from local physical
     * @p src_pa (mapped into the QP's data ring, so the fetch
     * translates through OUR IOMMU) toward the peer's migration
     * sink, tagged with @p gfn. Rides the same PSN window as writes —
     * exempt from max_req_bytes (pages are 4 KB; the NIC segments
     * internally, modeled as one request). Same false-means-retry
     * contract as postWrite.
     */
    bool postMigPage(u32 qp, PhysAddr src_pa, u32 bytes, u64 gfn);

    /** Post one vIOMMU/device state chunk (blackout phase): same
     * mechanics as postMigPage, delivered as kMigState with @p tag. */
    bool postMigState(u32 qp, PhysAddr src_pa, u32 bytes, u64 tag);

    /** Orderly close (drains in-flight ops first). */
    Status teardown(u32 qp, ClosedCb cb);

    /**
     * Hard local abort — the app died mid-traffic. The QP transitions
     * straight to the error state: outstanding WQEs flush as error
     * CQEs, the peer gets an async kQpError, and whatever data was on
     * the wire arrives at a dead QP (the late-arrival window the
     * hostile-wire experiments measure). Requires the reliability
     * layer (without it the error machinery is disabled). No-op on
     * QPs that are not established or closing.
     */
    Status abortQp(u32 qp);

    /**
     * Force-unmap everything still registered (in-flight ops, QP
     * control mappings, the CQ) without handshakes — end-of-run
     * cleanup so the leak detector sees a quiesced handle.
     */
    void quiesceAll();

    // ---- wire ----------------------------------------------------------
    /** A message arrives (already timestamped by the sender). */
    void fromWire(const WireMsg &msg);

    // ---- introspection -------------------------------------------------
    const RdmaStats &stats() const { return stats_; }
    u32 nicId() const { return nic_id_; }
    u32 maxQps() const { return max_qps_; }
    u64 establishedQps() const { return established_; }
    u64 inflightOps() const { return inflight_total_; }

    /** Virtual-time post→poll latency of every completed op, in
     * completion order (host-side record; free of simulated cost). */
    const std::vector<Nanos> &opLatencies() const { return op_latencies_; }

    /** Exact per-op SLO records (latency + per-Cat breakdown +
     * retransmit count), populated only while obs::sloRecording(). */
    const obs::OpLatencyRecorder &sloRecords() const { return slo_recorder_; }

    /** Physical addresses of a QP's buffers (tests write/verify). */
    PhysAddr srcBuffer(u32 qp) const { return qps_[qp].src_pa; }
    PhysAddr readBuffer(u32 qp) const { return qps_[qp].rd_pa; }
    PhysAddr mrBuffer(u32 qp) const { return qps_[qp].mr_pa; }
    u32 peerQp(u32 qp) const { return qps_[qp].peer_qp; }
    /** Next send-queue slot of @p qp — the WQE index the next
     * successful post will occupy (migration chunk tracking). */
    u32 sqTail(u32 qp) const { return qps_[qp].sq_tail; }
    u32 peerNic(u32 qp) const { return qps_[qp].peer_nic; }
    /** Device address of a QP's MR mapping (what the peer's rkey
     * names) — lets tests replay a remote access as a local DMA. */
    u64 mrDeviceAddr(u32 qp) const { return qps_[qp].mr_map.device_addr; }

  private:
    enum class QpState : u8 {
        kFree = 0,
        kConnecting,
        kEstablished,
        kClosing,   //!< draining, then kClose goes out
        kCloseWait, //!< kClose sent, waiting for kCloseAck
        kError      //!< retry budget blown; flushing error CQEs
    };

    struct Op
    {
        bool active = false;
        bool is_read = false;
        bool is_mig = false;   //!< kMigPage/kMigState op
        bool is_state = false; //!< kMigState (valid when is_mig)
        bool sent = false;  //!< device fetched + transmitted at least once
        bool acked = false; //!< CQE generated; awaiting poll, not retx
        u32 bytes = 0;
        u32 psn = 0;       //!< sequence number (reliability layer)
        u64 roffset = 0;
        Nanos post_ns = 0; //!< verbs post time (latency record)
        Nanos last_tx = 0; //!< most recent transmission (RTO base)
        u64 trace = 0;     //!< distributed-trace id (observability)
        u32 rtx = 0;       //!< retransmit episodes (observability)
        dma::DmaMapping map;
    };

    struct Qp
    {
        QpState state = QpState::kFree;
        u32 peer_nic = 0;
        u32 peer_qp = 0;
        u64 remote_rkey = 0;
        dma::DmaMapping wqe_map, mr_map;
        bool bufs_allocated = false;
        PhysAddr sq_pa = 0; //!< WQE array
        PhysAddr mr_pa = 0; //!< remotely accessed region
        PhysAddr src_pa = 0; //!< local write source
        PhysAddr rd_pa = 0;  //!< local read destination
        u32 sq_tail = 0;     //!< next op slot
        u32 inflight = 0;
        std::vector<Op> ops;
        ConnectCb on_connected;
        ClosedCb on_closed;

        // Reliability state (untouched while the layer is off).
        u32 next_psn = 0;  //!< requester: next PSN to assign
        u32 epsn = 0;      //!< responder: next PSN expected
        bool nak_armed = false; //!< one kNakSeq per ooo episode
        u32 retries = 0;   //!< go-back-N rounds since last progress
        u32 backoff = 0;   //!< RTO exponent since last progress
        bool rto_armed = false;
        des::EventId rto_event = 0;
    };

    struct PendingCqe
    {
        u32 qp = 0;
        u32 wqe = 0;
        bool ok = false;
    };

    void charge(Cycles c);
    /** Current per-Cat totals of this NIC's core (SLO deltas). */
    std::array<u64, obs::kSloMaxCats> sloSnapshot() const;
    void allocQpBuffers(Qp &q);
    /** Register WQE ring + MR in the QP's control ring. */
    Status registerQp(u32 idx);
    void unregisterQp(u32 idx);
    void freeQp(u32 idx);
    /** Shared body of postMigPage/postMigState. */
    bool postMig(u32 qp, PhysAddr src_pa, u32 bytes, u64 tag,
                 bool state);
    void deviceFetchWqe(u32 qp, u32 wqe);
    void completeOp(u32 qp, u32 wqe, bool ok);
    void pollCq();
    void finishClose(u32 qp);
    void sendAt(u32 dst_nic, Nanos when, WireMsg msg);
    Nanos wireArrival(Nanos from, u32 payload_bytes) const;

    // Reliability layer (device-side; no-ops while rel_ is off).
    void armRto(u32 qp);
    void disarmRto(u32 qp);
    void onRto(u32 qp);
    void retransmit(u32 qp);
    bool hasUnacked(const Qp &q, Nanos *oldest_tx) const;
    void enterError(u32 qp, const char *reason, bool notify_peer);
    void finishErrorRecovery(u32 qp);

    // Wire handlers, split by which side of the QP they run on.
    void onConnect(const WireMsg &msg);
    void onAcceptReject(const WireMsg &msg);
    void onDataAccess(const WireMsg &msg);
    void onCompletionMsg(const WireMsg &msg);
    void onNakSeq(const WireMsg &msg);
    void onQpErrorMsg(const WireMsg &msg);
    void onClose(const WireMsg &msg);
    void onCloseAck(const WireMsg &msg);

    des::Simulator &sim_;
    des::Core &core_;
    mem::PhysicalMemory &pm_;
    dma::DmaHandle &handle_;
    const RdmaProfile profile_; //!< stable copy
    u32 max_qps_;
    u32 nic_id_;
    SendFn send_;
    CompletionCb on_completion_;
    QpErrorCb on_qp_error_;
    MigSinkFn mig_sink_;
    bool migrated_away_ = false;
    ReliabilityConfig rel_;

    std::vector<Qp> qps_;
    std::vector<u32> free_slots_; //!< pop_back yields lowest index
    PhysAddr cq_pa_ = 0;
    dma::DmaMapping cq_map_;
    bool cq_mapped_ = false;
    u32 cq_tail_ = 0;
    std::vector<PendingCqe> pending_cqes_;
    bool irq_scheduled_ = false;
    u64 established_ = 0;
    u64 inflight_total_ = 0;
    RdmaStats stats_;
    std::vector<Nanos> op_latencies_;
    obs::OpLatencyRecorder slo_recorder_;
    /** Post-path per-Cat cycle deltas of in-flight ops, merged with
     * the poll-path delta at the terminal CQE. Keyed (qp << 32) | wqe;
     * populated only while obs::sloRecording(). */
    std::unordered_map<u64, std::array<u64, obs::kSloMaxCats>> slo_post_cats_;
};

} // namespace rio::rdma

#endif // RIO_RDMA_RDMA_H
