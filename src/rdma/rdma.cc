#include "rdma/rdma.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "base/logging.h"
#include "base/strings.h"
#include "obs/flight.h"
#include "obs/registry.h"
#include "obs/timeline.h"
#include "obs/trace_ctx.h"
#include "riommu/structures.h"

namespace rio::rdma {

static_assert(cycles::kNumCats <= obs::kSloMaxCats,
              "OpRecord cat array cannot hold every cycles::Cat");

const RdmaProfile &
rnicProfile()
{
    static const RdmaProfile p;
    return p;
}

std::vector<u32>
ringSizes(const RdmaProfile &profile, u32 max_qps)
{
    RIO_ASSERT(max_qps > 0, "NIC with zero QPs");
    RIO_ASSERT(1 + 2ull * max_qps <= riommu::kMaxRingsPerDevice,
               "QP fabric exceeds rDEVICE capacity");
    std::vector<u32> sizes;
    sizes.reserve(1 + 2 * max_qps);
    sizes.push_back(4); // static: the CQ mapping
    for (u32 q = 0; q < max_qps; ++q) {
        sizes.push_back(4); // ctrl: WQE ring + MR, connect-lived
        // Data ring: twice the window so mildly out-of-order
        // completions (a locally-faulted young op finishing before an
        // in-flight older one) never trip the sequential tail check.
        sizes.push_back(2 * profile.sq_depth);
    }
    return sizes;
}

RdmaNic::RdmaNic(des::Simulator &sim, des::Core &core,
                 mem::PhysicalMemory &pm, dma::DmaHandle &handle,
                 const RdmaProfile &profile, u32 max_qps, u32 nic_id)
    : sim_(sim), core_(core), pm_(pm), handle_(handle),
      profile_(profile), max_qps_(max_qps), nic_id_(nic_id)
{
    RIO_ASSERT(profile_.sq_depth > 0, "zero send-queue depth");
    qps_.resize(max_qps_);
    free_slots_.reserve(max_qps_);
    for (u32 q = max_qps_; q > 0; --q)
        free_slots_.push_back(q - 1);
}

void
RdmaNic::charge(Cycles c)
{
    core_.acct().charge(cycles::Cat::kProcessing, c);
}

std::array<u64, obs::kSloMaxCats>
RdmaNic::sloSnapshot() const
{
    std::array<u64, obs::kSloMaxCats> out{};
    for (unsigned c = 0; c < cycles::kNumCats; ++c)
        out[c] = core_.acct().get(static_cast<cycles::Cat>(c));
    return out;
}

Nanos
RdmaNic::wireArrival(Nanos from, u32 payload_bytes) const
{
    // RoCE framing, not the TCP stack net::wireTimeNs assumes.
    const double ser_ns =
        static_cast<double>((payload_bytes + net::kRdmaHeaderBytes) * 8) /
        profile_.gbps;
    return from + profile_.wire_ns + static_cast<Nanos>(ser_ns);
}

void
RdmaNic::sendAt(u32 dst_nic, Nanos when, WireMsg msg)
{
    RIO_ASSERT(send_, "RdmaNic wire not connected");
    msg.src_nic = nic_id_;
    msg.dst_nic = dst_nic;
    if (obs::kObsCompiled && msg.trace) {
        // Wire-transit child span of the op: [send, arrival] on the
        // sender's track (propagation + serialization; hostile-wire
        // extra delay shows up as ingress queueing at the far end).
        obs::Event ev;
        ev.kind = obs::Ev::kWireTx;
        ev.t = when;
        ev.dur_ns = profile_.wire_ns +
                    static_cast<Nanos>(static_cast<double>(
                                           (msg.payload.size() +
                                            net::kRdmaHeaderBytes) *
                                           8) /
                                       profile_.gbps);
        ev.trace = msg.trace;
        ev.arg = msg.len;
        ev.arg2 = msg.psn;
        ev.pid = core_.obsPid();
        ev.tid = core_.obsTid();
        obs::timeline().emit(ev);
    }
    send_(dst_nic, when, std::move(msg));
}

void
RdmaNic::bringUp()
{
    if (cq_mapped_)
        return;
    cq_pa_ = pm_.allocContiguous(
        static_cast<u64>(profile_.cq_entries) * kCqeBytes);
    auto m = handle_.map(/*rid=*/0, cq_pa_,
                         profile_.cq_entries * kCqeBytes,
                         iommu::DmaDir::kFromDevice);
    RIO_ASSERT(m.isOk(), "CQ registration failed");
    cq_map_ = m.value();
    cq_mapped_ = true;
}

void
RdmaNic::shutDown()
{
    if (!cq_mapped_)
        return;
    handle_.unmap(cq_map_, /*end_of_burst=*/true);
    cq_mapped_ = false;
}

void
RdmaNic::allocQpBuffers(Qp &q)
{
    if (q.bufs_allocated)
        return;
    q.sq_pa = pm_.allocContiguous(
        static_cast<u64>(profile_.sq_depth) * kWqeBytes);
    q.mr_pa = pm_.allocContiguous(profile_.max_req_bytes);
    q.src_pa = pm_.allocContiguous(profile_.max_req_bytes);
    q.rd_pa = pm_.allocContiguous(profile_.max_req_bytes);
    q.ops.resize(profile_.sq_depth);
    q.bufs_allocated = true;
}

Status
RdmaNic::registerQp(u32 idx)
{
    Qp &q = qps_[idx];
    allocQpBuffers(q);
    const u16 rid = ctrlRid(idx);
    auto wm = handle_.map(rid, q.sq_pa, profile_.sq_depth * kWqeBytes,
                          iommu::DmaDir::kToDevice);
    if (!wm.isOk())
        return wm.status();
    auto mm = handle_.map(rid, q.mr_pa, profile_.max_req_bytes,
                          iommu::DmaDir::kBidir);
    if (!mm.isOk()) {
        handle_.unmap(wm.value(), /*end_of_burst=*/true);
        return mm.status();
    }
    q.wqe_map = wm.value();
    q.mr_map = mm.value();
    return Status::ok();
}

void
RdmaNic::unregisterQp(u32 idx)
{
    // FIFO order within the control ring (WQE then MR); the MR unmap
    // closes the teardown burst, so a whole QP close costs one
    // explicit invalidation under rIOMMU.
    Qp &q = qps_[idx];
    handle_.unmap(q.wqe_map, /*end_of_burst=*/false);
    handle_.unmap(q.mr_map, /*end_of_burst=*/true);
}

void
RdmaNic::freeQp(u32 idx)
{
    Qp &q = qps_[idx];
    const bool was_established = q.state == QpState::kEstablished ||
                                 q.state == QpState::kClosing ||
                                 q.state == QpState::kCloseWait ||
                                 q.state == QpState::kError;
    disarmRto(idx);
    q.state = QpState::kFree;
    q.peer_nic = q.peer_qp = 0;
    q.remote_rkey = 0;
    q.sq_tail = 0;
    q.inflight = 0;
    q.on_connected = nullptr;
    q.on_closed = nullptr;
    q.next_psn = q.epsn = 0;
    q.nak_armed = false;
    q.retries = q.backoff = 0;
    for (Op &op : q.ops)
        op = Op{};
    if (was_established && established_ > 0)
        --established_;
    free_slots_.push_back(idx);
}

Result<u32>
RdmaNic::connect(u32 peer_nic, ConnectCb cb)
{
    if (free_slots_.empty())
        return Status(ErrorCode::kResourceExhausted, "no free QP");
    const u32 idx = free_slots_.back();
    free_slots_.pop_back();
    Qp &q = qps_[idx];
    Status reg = registerQp(idx);
    if (!reg) {
        free_slots_.push_back(idx);
        return reg;
    }
    charge(profile_.connect_cycles);
    q.state = QpState::kConnecting;
    q.peer_nic = peer_nic;
    q.on_connected = std::move(cb);
    WireMsg msg;
    msg.kind = MsgKind::kConnect;
    msg.src_qp = idx;
    msg.rkey = q.mr_map.device_addr;
    sendAt(peer_nic, wireArrival(core_.virtualNow(), 0), std::move(msg));
    return idx;
}

void
RdmaNic::onConnect(const WireMsg &msg)
{
    // Passive open: driver work on our core.
    const u32 peer_nic = msg.src_nic;
    const u32 peer_qp = msg.src_qp;
    const u64 peer_rkey = msg.rkey;
    core_.post([this, peer_nic, peer_qp, peer_rkey] {
        WireMsg reply;
        reply.dst_qp = peer_qp;
        if (free_slots_.empty()) {
            ++stats_.rejects;
            reply.kind = MsgKind::kReject;
            sendAt(peer_nic, wireArrival(core_.virtualNow(), 0),
                   std::move(reply));
            return;
        }
        const u32 idx = free_slots_.back();
        free_slots_.pop_back();
        Qp &q = qps_[idx];
        Status reg = registerQp(idx);
        if (!reg) {
            free_slots_.push_back(idx);
            ++stats_.rejects;
            reply.kind = MsgKind::kReject;
            sendAt(peer_nic, wireArrival(core_.virtualNow(), 0),
                   std::move(reply));
            return;
        }
        charge(profile_.connect_cycles);
        q.state = QpState::kEstablished;
        q.peer_nic = peer_nic;
        q.peer_qp = peer_qp;
        q.remote_rkey = peer_rkey;
        ++established_;
        ++stats_.connects;
        reply.kind = MsgKind::kAccept;
        reply.src_qp = idx;
        reply.rkey = q.mr_map.device_addr;
        sendAt(peer_nic, wireArrival(core_.virtualNow(), 0),
               std::move(reply));
    });
}

void
RdmaNic::onAcceptReject(const WireMsg &msg)
{
    const WireMsg m = msg;
    core_.post([this, m] {
        Qp &q = qps_[m.dst_qp];
        if (q.state != QpState::kConnecting)
            return; // raced with a force-quiesce
        ConnectCb cb = std::move(q.on_connected);
        q.on_connected = nullptr;
        if (m.kind == MsgKind::kReject) {
            unregisterQp(m.dst_qp);
            freeQp(m.dst_qp);
            if (cb)
                cb(m.dst_qp, false);
            return;
        }
        q.state = QpState::kEstablished;
        q.peer_qp = m.src_qp;
        q.remote_rkey = m.rkey;
        ++established_;
        ++stats_.connects;
        if (cb)
            cb(m.dst_qp, true);
    });
}

bool
RdmaNic::postWrite(u32 qp, u32 bytes, u64 roffset)
{
    Qp &q = qps_[qp];
    if (q.state != QpState::kEstablished ||
        q.inflight >= profile_.sq_depth || bytes == 0 ||
        bytes > profile_.max_req_bytes) {
        ++stats_.posts_blocked;
        return false;
    }
    if (q.ops[q.sq_tail].active) {
        // The SQ is a ring: under loss, acks (and error flushes) can
        // settle a young WQE before an older retransmitting one, so a
        // freed credit does not imply the tail slot drained. Posting
        // over a live WQE would orphan its op — block instead.
        ++stats_.posts_blocked;
        return false;
    }
    const bool slo = obs::sloRecording();
    std::array<u64, obs::kSloMaxCats> cat0{};
    if (slo)
        cat0 = sloSnapshot();
    // Op injection: the distributed-trace identity is allocated here,
    // so the map below — and every downstream hop — attributes to it.
    const u64 trace = core_.nextTraceId();
    obs::TraceScope tscope(trace);
    charge(profile_.post_cycles);
    auto m = handle_.map(dataRid(qp), q.src_pa, bytes,
                         iommu::DmaDir::kToDevice);
    if (!m.isOk()) {
        ++stats_.posts_blocked;
        return false;
    }
    const u32 w = q.sq_tail;
    q.sq_tail = (q.sq_tail + 1) % profile_.sq_depth;
    Op op;
    op.active = true;
    op.bytes = bytes;
    op.psn = q.next_psn++;
    op.roffset = roffset;
    op.post_ns = core_.virtualNow();
    op.trace = trace;
    op.map = m.value();
    q.ops[w] = op;
    // The WQE the device will fetch: opcode/len in word 0, the DMA
    // address of the source in word 1.
    const PhysAddr wqe = q.sq_pa + static_cast<u64>(w) * kWqeBytes;
    pm_.write64(wqe, (u64{1} << 32) | bytes);
    pm_.write64(wqe + 8, m.value().device_addr);
    ++q.inflight;
    ++inflight_total_;
    ++stats_.posts;
    ++stats_.writes_sent;
    stats_.bytes_sent += bytes;
    if (slo) {
        auto delta = sloSnapshot();
        for (size_t c = 0; c < obs::kSloMaxCats; ++c)
            delta[c] -= cat0[c];
        slo_post_cats_[(static_cast<u64>(qp) << 32) | w] = delta;
    }
    if (obs::kObsCompiled) {
        obs::Event ev;
        ev.kind = obs::Ev::kOpPost;
        ev.t = core_.virtualNow();
        ev.trace = trace;
        ev.arg = bytes;
        ev.arg2 = (static_cast<u64>(qp) << 32) | w;
        ev.pid = core_.obsPid();
        ev.tid = core_.obsTid();
        obs::timeline().emit(ev);
    }
    sim_.scheduleAt(core_.virtualNow() + profile_.doorbell_ns,
                    [this, qp, w] { deviceFetchWqe(qp, w); });
    return true;
}

bool
RdmaNic::postRead(u32 qp, u32 bytes, u64 roffset)
{
    Qp &q = qps_[qp];
    if (q.state != QpState::kEstablished ||
        q.inflight >= profile_.sq_depth || bytes == 0 ||
        bytes > profile_.max_req_bytes) {
        ++stats_.posts_blocked;
        return false;
    }
    if (q.ops[q.sq_tail].active) {
        // Same ring-occupancy guard as postWrite.
        ++stats_.posts_blocked;
        return false;
    }
    const bool slo = obs::sloRecording();
    std::array<u64, obs::kSloMaxCats> cat0{};
    if (slo)
        cat0 = sloSnapshot();
    const u64 trace = core_.nextTraceId();
    obs::TraceScope tscope(trace);
    charge(profile_.post_cycles);
    auto m = handle_.map(dataRid(qp), q.rd_pa, bytes,
                         iommu::DmaDir::kFromDevice);
    if (!m.isOk()) {
        ++stats_.posts_blocked;
        return false;
    }
    const u32 w = q.sq_tail;
    q.sq_tail = (q.sq_tail + 1) % profile_.sq_depth;
    Op op;
    op.active = true;
    op.is_read = true;
    op.bytes = bytes;
    op.psn = q.next_psn++;
    op.roffset = roffset;
    op.post_ns = core_.virtualNow();
    op.trace = trace;
    op.map = m.value();
    q.ops[w] = op;
    const PhysAddr wqe = q.sq_pa + static_cast<u64>(w) * kWqeBytes;
    pm_.write64(wqe, (u64{2} << 32) | bytes);
    pm_.write64(wqe + 8, m.value().device_addr);
    ++q.inflight;
    ++inflight_total_;
    ++stats_.posts;
    ++stats_.reads_sent;
    if (slo) {
        auto delta = sloSnapshot();
        for (size_t c = 0; c < obs::kSloMaxCats; ++c)
            delta[c] -= cat0[c];
        slo_post_cats_[(static_cast<u64>(qp) << 32) | w] = delta;
    }
    if (obs::kObsCompiled) {
        obs::Event ev;
        ev.kind = obs::Ev::kOpPost;
        ev.t = core_.virtualNow();
        ev.trace = trace;
        ev.arg = bytes;
        ev.arg2 = (static_cast<u64>(qp) << 32) | w;
        ev.pid = core_.obsPid();
        ev.tid = core_.obsTid();
        obs::timeline().emit(ev);
    }
    sim_.scheduleAt(core_.virtualNow() + profile_.doorbell_ns,
                    [this, qp, w] { deviceFetchWqe(qp, w); });
    return true;
}

bool
RdmaNic::postMigPage(u32 qp, PhysAddr src_pa, u32 bytes, u64 gfn)
{
    return postMig(qp, src_pa, bytes, gfn, /*state=*/false);
}

bool
RdmaNic::postMigState(u32 qp, PhysAddr src_pa, u32 bytes, u64 tag)
{
    return postMig(qp, src_pa, bytes, tag, /*state=*/true);
}

bool
RdmaNic::postMig(u32 qp, PhysAddr src_pa, u32 bytes, u64 tag,
                 bool state)
{
    // postWrite's twin for the hypervisor's migration stream: the
    // payload source is an arbitrary physical page (guest RAM or a
    // serialized-state scratch buffer), mapped per-op into the data
    // ring so the device fetch translates through the source IOMMU
    // and the unmap rides the end-of-burst amortization. The chunk
    // ceiling is a whole page, not max_req_bytes.
    Qp &q = qps_[qp];
    if (q.state != QpState::kEstablished ||
        q.inflight >= profile_.sq_depth || bytes == 0 ||
        bytes > kMigChunkBytes) {
        ++stats_.posts_blocked;
        return false;
    }
    if (q.ops[q.sq_tail].active) {
        // Same ring-occupancy guard as postWrite.
        ++stats_.posts_blocked;
        return false;
    }
    const bool slo = obs::sloRecording();
    std::array<u64, obs::kSloMaxCats> cat0{};
    if (slo)
        cat0 = sloSnapshot();
    const u64 trace = core_.nextTraceId();
    obs::TraceScope tscope(trace);
    charge(profile_.post_cycles);
    auto m = handle_.map(dataRid(qp), src_pa, bytes,
                         iommu::DmaDir::kToDevice);
    if (!m.isOk()) {
        ++stats_.posts_blocked;
        return false;
    }
    const u32 w = q.sq_tail;
    q.sq_tail = (q.sq_tail + 1) % profile_.sq_depth;
    Op op;
    op.active = true;
    op.is_mig = true;
    op.is_state = state;
    op.bytes = bytes;
    op.psn = q.next_psn++;
    op.roffset = tag;
    op.post_ns = core_.virtualNow();
    op.trace = trace;
    op.map = m.value();
    q.ops[w] = op;
    const PhysAddr wqe = q.sq_pa + static_cast<u64>(w) * kWqeBytes;
    pm_.write64(wqe, (static_cast<u64>(state ? 4 : 3) << 32) | bytes);
    pm_.write64(wqe + 8, m.value().device_addr);
    ++q.inflight;
    ++inflight_total_;
    ++stats_.posts;
    if (state)
        ++stats_.mig_state_sent;
    else
        ++stats_.mig_pages_sent;
    stats_.mig_bytes_sent += bytes;
    stats_.bytes_sent += bytes;
    if (slo) {
        auto delta = sloSnapshot();
        for (size_t c = 0; c < obs::kSloMaxCats; ++c)
            delta[c] -= cat0[c];
        slo_post_cats_[(static_cast<u64>(qp) << 32) | w] = delta;
    }
    if (obs::kObsCompiled) {
        obs::Event ev;
        ev.kind = obs::Ev::kOpPost;
        ev.t = core_.virtualNow();
        ev.trace = trace;
        ev.arg = bytes;
        ev.arg2 = (static_cast<u64>(qp) << 32) | w;
        ev.pid = core_.obsPid();
        ev.tid = core_.obsTid();
        obs::timeline().emit(ev);
    }
    sim_.scheduleAt(core_.virtualNow() + profile_.doorbell_ns,
                    [this, qp, w] { deviceFetchWqe(qp, w); });
    return true;
}

void
RdmaNic::deviceFetchWqe(u32 qp, u32 w)
{
    Qp &q = qps_[qp];
    Op &op = q.ops[w];
    if (!op.active || op.acked)
        return; // force-quiesced or flushed under the doorbell
    if (q.state == QpState::kError)
        return; // error drain: no new transmissions
    // Fetch (and any replay of it) runs on behalf of the posted op:
    // re-entering the scope here means retransmissions re-attach to
    // the ORIGINAL trace instead of minting a new one.
    obs::TraceScope tscope(op.trace);
    // Device side: fetch the WQE through our own translation (the
    // control-ring mapping), then the payload for writes (data ring).
    u8 wqe_buf[kWqeBytes];
    Status s = handle_.deviceRead(
        q.wqe_map.device_addr + static_cast<u64>(w) * kWqeBytes, wqe_buf,
        kWqeBytes);
    if (!s) {
        ++stats_.local_fault_drops;
        completeOp(qp, w, false);
        return;
    }
    WireMsg msg;
    msg.src_qp = qp;
    msg.dst_qp = q.peer_qp;
    msg.wqe = w;
    msg.psn = op.psn;
    msg.rkey = q.remote_rkey;
    msg.offset = op.roffset;
    msg.len = op.bytes;
    msg.trace = op.trace;
    if (op.is_read) {
        msg.kind = MsgKind::kRead;
        op.sent = true;
        op.last_tx = sim_.now();
        sendAt(q.peer_nic, wireArrival(sim_.now(), 0), std::move(msg));
        armRto(qp);
        return;
    }
    msg.payload.resize(op.bytes);
    s = handle_.deviceRead(op.map.device_addr, msg.payload.data(),
                           op.bytes);
    if (!s) {
        ++stats_.local_fault_drops;
        completeOp(qp, w, false);
        return;
    }
    msg.kind = op.is_mig ? (op.is_state ? MsgKind::kMigState
                                        : MsgKind::kMigPage)
                         : MsgKind::kWrite;
    op.sent = true;
    op.last_tx = sim_.now();
    sendAt(q.peer_nic, wireArrival(sim_.now(), op.bytes),
           std::move(msg));
    armRto(qp);
}

void
RdmaNic::onDataAccess(const WireMsg &msg)
{
    // Target side of an RDMA write/read: pure device work — the
    // access translates through OUR handle, costing zero local driver
    // cycles. This is the VA-RDMA property under test.
    WireMsg reply;
    reply.dst_qp = msg.src_qp;
    reply.wqe = msg.wqe;
    reply.psn = msg.psn;
    reply.trace = msg.trace;
    bool late = false;
    if (rel_.enabled) {
        Qp *rq = msg.dst_qp < max_qps_ ? &qps_[msg.dst_qp] : nullptr;
        if (rq && rq->state == QpState::kError)
            return; // dead responder; the kQpError notify explains it
        const bool live =
            rq &&
            (rq->state == QpState::kEstablished ||
             rq->state == QpState::kClosing) &&
            rq->mr_map.device_addr == msg.rkey;
        if (!live) {
            // Late arrival: the QP is gone (or its slot was recycled
            // under a new MR). No PSN state survives to consult — the
            // access goes to the IOMMU anyway, which is precisely the
            // VA-RDMA last-line-of-defense moment: a revoked mapping
            // must fault, a stale deferred window lets it land.
            late = true;
            ++stats_.late_arrivals;
            if (migrated_away_)
                ++stats_.migrated_away_arrivals;
        } else if (msg.psn == rq->epsn) {
            ++rq->epsn;
            rq->nak_armed = false;
        } else if (msg.psn > rq->epsn) {
            // Gap: a predecessor was lost. Go-back-N keeps no
            // out-of-order buffer — drop the packet and NAK once per
            // episode with the expected PSN.
            if (!rq->nak_armed) {
                rq->nak_armed = true;
                ++stats_.nak_seq_sent;
                WireMsg nak;
                nak.kind = MsgKind::kNakSeq;
                nak.dst_qp = msg.src_qp;
                nak.psn = rq->epsn;
                nak.trace = msg.trace;
                sendAt(msg.src_nic, wireArrival(sim_.now(), 0),
                       std::move(nak));
            }
            return;
        } else {
            // Duplicate (retransmit overlap or wire dup). Writes and
            // reads are idempotent, so hardware replays the DMA and
            // re-acknowledges under the duplicate's own PSN.
            ++stats_.dup_requests;
        }
    }
    // Target-IOMMU walk instant: the moment the remote access
    // translated (or faulted) on THIS machine's track, stitched into
    // the initiator's op by the carried trace id.
    const auto walkEvent = [&](bool ok) {
        if (!obs::kObsCompiled || !msg.trace)
            return;
        obs::Event ev;
        ev.kind = obs::Ev::kTargetWalk;
        ev.t = sim_.now();
        ev.trace = msg.trace;
        ev.arg = msg.len;
        ev.arg2 = (static_cast<u64>(late) << 1) | (ok ? 1 : 0);
        ev.pid = core_.obsPid();
        ev.tid = core_.obsTid();
        obs::timeline().emit(ev);
    };
    if (msg.kind != MsgKind::kRead) {
        Status s;
        if (msg.kind == MsgKind::kWrite) {
            ++stats_.remote_writes;
            s = handle_.deviceWrite(msg.rkey + msg.offset,
                                    msg.payload.data(), msg.len);
        } else {
            // Migration chunk: the hypervisor sink applies it (a page
            // into guest RAM through THIS machine's IOMMU, or a state
            // blob). A chunk that outlived its stream — or arrived
            // where no migration is in progress — NAKs.
            s = mig_sink_ ? mig_sink_(msg)
                          : Status(ErrorCode::kInvalidArgument,
                                   "no migration sink");
            if (s.isOk())
                ++stats_.mig_applied;
            else
                ++stats_.mig_apply_faults;
        }
        if (late) {
            if (s.isOk()) {
                ++stats_.late_landed;
                if (migrated_away_)
                    ++stats_.migrated_away_landed;
            } else {
                ++stats_.late_faulted;
                if (migrated_away_)
                    ++stats_.migrated_away_faulted;
            }
        }
        walkEvent(s.isOk());
        reply.ok = s.isOk();
        if (!reply.ok)
            ++stats_.remote_faults;
        reply.kind = reply.ok ? MsgKind::kAck : MsgKind::kNak;
        sendAt(msg.src_nic, wireArrival(sim_.now(), 0),
               std::move(reply));
        return;
    }
    ++stats_.remote_reads;
    reply.payload.resize(msg.len);
    Status s = handle_.deviceRead(msg.rkey + msg.offset,
                                  reply.payload.data(), msg.len);
    if (late) {
        if (s.isOk()) {
            ++stats_.late_landed;
            if (migrated_away_)
                ++stats_.migrated_away_landed;
        } else {
            ++stats_.late_faulted;
            if (migrated_away_)
                ++stats_.migrated_away_faulted;
        }
    }
    walkEvent(s.isOk());
    reply.ok = s.isOk();
    if (!reply.ok) {
        ++stats_.remote_faults;
        reply.payload.clear();
    }
    reply.kind = MsgKind::kReadResp;
    reply.len = msg.len;
    sendAt(msg.src_nic, wireArrival(sim_.now(), reply.ok ? msg.len : 0),
           std::move(reply));
}

void
RdmaNic::onCompletionMsg(const WireMsg &msg)
{
    Qp &q = qps_[msg.dst_qp];
    Op &op = q.ops[msg.wqe];
    if (!op.active)
        return; // force-quiesced while the reply was in flight
    if (rel_.enabled) {
        if (q.state == QpState::kError)
            return; // flushed: an error CQE already covers this op
        if (!op.sent || op.acked || op.psn != msg.psn) {
            // Duplicate ack, or an ack for a previous occupant of
            // this WQE slot — the PSN check makes slot reuse safe
            // under arbitrary wire delays.
            ++stats_.stale_acks;
            return;
        }
        // Forward progress: reset the go-back-N budget and backoff.
        q.retries = 0;
        q.backoff = 0;
    }
    bool ok = msg.ok;
    if (msg.kind == MsgKind::kReadResp && ok) {
        // Land the read payload in the local buffer — again through
        // our own translation (the op's data-ring mapping).
        Status s = handle_.deviceWrite(op.map.device_addr,
                                       msg.payload.data(), msg.len);
        if (!s) {
            ++stats_.local_fault_drops;
            ok = false;
        }
    }
    completeOp(msg.dst_qp, msg.wqe, ok);
}

void
RdmaNic::completeOp(u32 qp, u32 w, bool ok)
{
    // The op is now settled: whatever else the wire delivers for this
    // PSN is stale, and the retransmit machinery must leave it alone.
    qps_[qp].ops[w].acked = true;
    // Device writes the CQE through the static-ring mapping, then
    // arms the moderated completion interrupt.
    const PhysAddr slot_off = static_cast<u64>(cq_tail_) * kCqeBytes;
    u8 cqe[kCqeBytes] = {};
    const u64 word0 = (static_cast<u64>(qp) << 32) | w;
    std::memcpy(cqe, &word0, 8);
    cqe[8] = ok ? 1 : 0;
    handle_.deviceWrite(cq_map_.device_addr + slot_off, cqe, kCqeBytes);
    cq_tail_ = (cq_tail_ + 1) % profile_.cq_entries;
    pending_cqes_.push_back(PendingCqe{qp, w, ok});
    if (!irq_scheduled_) {
        irq_scheduled_ = true;
        sim_.scheduleAt(sim_.now() + profile_.completion_irq_ns, [this] {
            irq_scheduled_ = false;
            core_.post([this] { pollCq(); });
        });
    }
}

void
RdmaNic::pollCq()
{
    std::vector<PendingCqe> batch = std::move(pending_cqes_);
    pending_cqes_.clear();
    if (batch.empty())
        return;
    ++stats_.cq_irqs;
    // end_of_burst goes to the LAST completion of each QP in the
    // batch: under rIOMMU that is the one explicit per-ring
    // invalidation the whole burst pays. At low connection counts a
    // batch concentrates on few rings (strong amortization); at 16K
    // connections nearly every completion is its ring's last — the
    // erosion the cluster bench quantifies.
    std::vector<bool> last(batch.size(), false);
    {
        std::unordered_set<u32> seen;
        for (size_t i = batch.size(); i > 0; --i) {
            if (seen.insert(batch[i - 1].qp).second) {
                last[i - 1] = true;
                ++stats_.cq_batch_rings;
            }
        }
    }
    std::vector<u32> drained;
    for (size_t i = 0; i < batch.size(); ++i) {
        const PendingCqe &c = batch[i];
        Qp &q = qps_[c.qp];
        Op &op = q.ops[c.wqe];
        if (!op.active)
            continue;
        // Terminal CQE: the op's trace closes here. Save identity
        // before the slot reset below.
        const u64 trace = op.trace;
        const u32 rtx = op.rtx;
        obs::TraceScope tscope(trace);
        const bool slo = obs::sloRecording();
        std::array<u64, obs::kSloMaxCats> cat0{};
        if (slo)
            cat0 = sloSnapshot();
        charge(profile_.poll_cycles);
        handle_.unmap(op.map, /*end_of_burst=*/last[i]);
        if (last[i])
            ++stats_.eob_unmaps;
        const Nanos latency = sim_.now() - op.post_ns;
        op_latencies_.push_back(latency);
        op = Op{};
        --q.inflight;
        --inflight_total_;
        ++stats_.completions;
        ++stats_.cq_polled;
        if (!c.ok)
            ++stats_.comp_errors;
        if (slo) {
            // Per-op breakdown: poll-path delta (this iteration) plus
            // the post-path delta banked at injection.
            obs::OpRecord rec;
            rec.latency_ns = latency;
            rec.retransmits = rtx;
            rec.error = !c.ok;
            rec.cat_cycles = sloSnapshot();
            for (size_t ci = 0; ci < obs::kSloMaxCats; ++ci)
                rec.cat_cycles[ci] -= cat0[ci];
            const u64 key = (static_cast<u64>(c.qp) << 32) | c.wqe;
            auto it = slo_post_cats_.find(key);
            if (it != slo_post_cats_.end()) {
                for (size_t ci = 0; ci < obs::kSloMaxCats; ++ci)
                    rec.cat_cycles[ci] += it->second[ci];
                slo_post_cats_.erase(it);
            }
            slo_recorder_.record(rec);
        }
        if (obs::kObsCompiled && trace) {
            obs::Event ev;
            ev.kind = obs::Ev::kOpCqe;
            ev.t = core_.virtualNow();
            ev.trace = trace;
            ev.arg = latency;
            ev.arg2 = (static_cast<u64>(rtx) << 1) | (c.ok ? 1 : 0);
            ev.pid = core_.obsPid();
            ev.tid = core_.obsTid();
            obs::timeline().emit(ev);
        }
        if (on_completion_)
            on_completion_(c.qp, c.wqe, c.ok);
        if ((q.state == QpState::kClosing ||
             q.state == QpState::kError) &&
            q.inflight == 0)
            drained.push_back(c.qp);
    }
    for (u32 qp : drained) {
        if (qps_[qp].inflight != 0)
            continue;
        if (qps_[qp].state == QpState::kClosing)
            finishClose(qp);
        else if (qps_[qp].state == QpState::kError)
            finishErrorRecovery(qp);
    }
}

void
RdmaNic::armRto(u32 qp)
{
    // Lazy single timer per QP: armed on the first unacked
    // transmission, re-aimed (not cancelled) when acks make progress,
    // and dead whenever the window is fully acked — zero events at
    // loss 0 would be wrong (the timer must exist to notice a loss),
    // but a fully-acked window keeps no timer alive, so the
    // simulation still drains. Device-side hardware state: uncharged.
    if (!rel_.enabled)
        return;
    Qp &q = qps_[qp];
    if (q.rto_armed)
        return;
    const Nanos rto = rel_.rto_ns
                      << std::min(q.backoff, rel_.rto_max_backoff);
    q.rto_armed = true;
    q.rto_event =
        sim_.scheduleAt(sim_.now() + rto, [this, qp] { onRto(qp); });
}

void
RdmaNic::disarmRto(u32 qp)
{
    Qp &q = qps_[qp];
    if (!q.rto_armed)
        return;
    sim_.cancel(q.rto_event);
    q.rto_armed = false;
}

bool
RdmaNic::hasUnacked(const Qp &q, Nanos *oldest_tx) const
{
    bool any = false;
    Nanos oldest = 0;
    for (const Op &op : q.ops) {
        if (!op.active || !op.sent || op.acked)
            continue;
        if (!any || op.last_tx < oldest)
            oldest = op.last_tx;
        any = true;
    }
    if (oldest_tx)
        *oldest_tx = oldest;
    return any;
}

void
RdmaNic::onRto(u32 qp)
{
    Qp &q = qps_[qp];
    q.rto_armed = false;
    if (q.state != QpState::kEstablished && q.state != QpState::kClosing)
        return;
    Nanos oldest = 0;
    if (!hasUnacked(q, &oldest))
        return; // window fully acked; re-armed by the next send
    const Nanos rto = rel_.rto_ns
                      << std::min(q.backoff, rel_.rto_max_backoff);
    if (sim_.now() < oldest + rto) {
        // Acks made progress since arming: re-aim at the oldest
        // in-flight transmission instead of firing.
        q.rto_armed = true;
        q.rto_event = sim_.scheduleAt(oldest + rto,
                                      [this, qp] { onRto(qp); });
        return;
    }
    ++stats_.rto_fires;
    ++q.retries;
    ++q.backoff;
    if (q.retries > rel_.retry_limit) {
        enterError(qp, "retry budget exhausted", /*notify_peer=*/true);
        return;
    }
    retransmit(qp);
    armRto(qp);
}

void
RdmaNic::retransmit(u32 qp)
{
    // Go-back-N: replay every transmitted-unacked op in PSN order
    // (the responder executes in sequence; duplicates replay
    // idempotently). Ops still waiting on their first doorbell keep
    // higher PSNs and go out behind these, preserving order.
    Qp &q = qps_[qp];
    std::vector<std::pair<u32, u32>> order; // (psn, slot)
    for (u32 w = 0; w < q.ops.size(); ++w) {
        const Op &op = q.ops[w];
        if (op.active && op.sent && !op.acked)
            order.emplace_back(op.psn, w);
    }
    std::sort(order.begin(), order.end());
    for (const auto &[psn, w] : order) {
        Op &op = q.ops[w];
        ++op.rtx;
        ++stats_.retransmits;
        if (obs::kObsCompiled && op.trace) {
            // Retransmit episode: a child instant of the ORIGINAL
            // trace — the replay must not mint a new identity.
            obs::Event ev;
            ev.kind = obs::Ev::kRetransmit;
            ev.t = sim_.now();
            ev.trace = op.trace;
            ev.arg = psn;
            ev.arg2 = op.rtx;
            ev.pid = core_.obsPid();
            ev.tid = core_.obsTid();
            obs::timeline().emit(ev);
        }
        deviceFetchWqe(qp, w);
    }
}

void
RdmaNic::onNakSeq(const WireMsg &msg)
{
    if (!rel_.enabled || msg.dst_qp >= max_qps_)
        return;
    Qp &q = qps_[msg.dst_qp];
    if (q.state != QpState::kEstablished && q.state != QpState::kClosing)
        return;
    ++stats_.nak_seq_recv;
    ++q.retries;
    if (q.retries > rel_.retry_limit) {
        enterError(msg.dst_qp, "sequence-NAK retry budget exhausted",
                   /*notify_peer=*/true);
        return;
    }
    retransmit(msg.dst_qp);
}

void
RdmaNic::enterError(u32 qp, const char *reason, bool notify_peer)
{
    Qp &q = qps_[qp];
    if (q.state == QpState::kError || q.state == QpState::kFree)
        return;
    const QpState prev = q.state;
    disarmRto(qp);
    q.state = QpState::kError;
    ++stats_.qp_errors;
    obs::registry().counter("rdma.qp_errors", {}).inc();
    obs::Event ev;
    ev.kind = obs::Ev::kQpError;
    ev.arg = qp;
    ev.pid = core_.obsPid();
    ev.tid = core_.obsTid();
    obs::timeline().emit(ev);
    // Journal the last 256 events around the transition — the
    // wire-storm debugging trigger (free when rate-limited away).
    obs::flightDump(strprintf("rdma_qp_error nic=%u qp=%u peer=%u: %s",
                              nic_id_, qp, q.peer_nic, reason));
    if (notify_peer &&
        (prev == QpState::kEstablished || prev == QpState::kClosing)) {
        // Async error notify rides the out-of-band CM channel so the
        // peer's half doesn't linger until its own budget blows.
        WireMsg note;
        note.kind = MsgKind::kQpError;
        note.src_qp = qp;
        note.dst_qp = q.peer_qp;
        sendAt(q.peer_nic, wireArrival(sim_.now(), 0), std::move(note));
    }
    // RoCE flush semantics: every outstanding WQE completes in error;
    // their data-ring unmaps happen at the poll, keeping the one-CQE-
    // per-post conservation intact.
    for (u32 w = 0; w < q.ops.size(); ++w) {
        Op &op = q.ops[w];
        if (!op.active || op.acked)
            continue;
        ++stats_.qp_error_flushed;
        // Flush CQEs attribute to the flushed ops' own traces.
        obs::TraceScope tscope(op.trace);
        completeOp(qp, w, false);
    }
    if (q.inflight == 0)
        finishErrorRecovery(qp);
}

void
RdmaNic::finishErrorRecovery(u32 qp)
{
    Qp &q = qps_[qp];
    RIO_ASSERT(q.state == QpState::kError && q.inflight == 0,
               "error recovery before the drain finished");
    // Driver side: read the async error, destroy the verbs objects,
    // decide the policy — the recovery work of the fault-handling
    // budget, not ordinary processing.
    core_.acct().charge(cycles::Cat::kFaultHandling,
                        rel_.recovery_cycles);
    const u32 peer = q.peer_nic;
    unregisterQp(qp);
    ++stats_.qp_error_recovered;
    freeQp(qp);
    if (on_qp_error_)
        on_qp_error_(qp, peer);
}

void
RdmaNic::onQpErrorMsg(const WireMsg &msg)
{
    const u32 qp = msg.dst_qp;
    if (qp >= max_qps_)
        return;
    core_.post([this, qp] {
        Qp &q = qps_[qp];
        if (q.state != QpState::kEstablished &&
            q.state != QpState::kClosing)
            return; // already closed or freed locally
        enterError(qp, "peer QP error", /*notify_peer=*/false);
    });
}

Status
RdmaNic::teardown(u32 qp, ClosedCb cb)
{
    Qp &q = qps_[qp];
    if (q.state != QpState::kEstablished)
        return Status(ErrorCode::kInvalidArgument,
                      "teardown of non-established QP");
    charge(profile_.teardown_cycles);
    q.state = QpState::kClosing;
    q.on_closed = std::move(cb);
    if (q.inflight == 0)
        finishClose(qp);
    return Status::ok();
}

Status
RdmaNic::abortQp(u32 qp)
{
    if (!rel_.enabled)
        return Status(ErrorCode::kInvalidArgument,
                      "abortQp needs the reliability layer");
    if (qp >= max_qps_)
        return Status(ErrorCode::kInvalidArgument, "bad QP index");
    Qp &q = qps_[qp];
    if (q.state != QpState::kEstablished && q.state != QpState::kClosing)
        return Status(ErrorCode::kInvalidArgument,
                      "abort of non-established QP");
    enterError(qp, "local abort", /*notify_peer=*/true);
    return Status::ok();
}

void
RdmaNic::finishClose(u32 qp)
{
    Qp &q = qps_[qp];
    unregisterQp(qp);
    q.state = QpState::kCloseWait;
    WireMsg msg;
    msg.kind = MsgKind::kClose;
    msg.src_qp = qp;
    msg.dst_qp = q.peer_qp;
    sendAt(q.peer_nic, wireArrival(core_.virtualNow(), 0),
           std::move(msg));
}

void
RdmaNic::onClose(const WireMsg &msg)
{
    const WireMsg m = msg;
    core_.post([this, m] {
        Qp &q = qps_[m.dst_qp];
        if (q.state != QpState::kEstablished)
            return; // already quiesced locally
        charge(profile_.teardown_cycles);
        unregisterQp(m.dst_qp);
        freeQp(m.dst_qp);
        ++stats_.teardowns;
        WireMsg reply;
        reply.kind = MsgKind::kCloseAck;
        reply.dst_qp = m.src_qp;
        sendAt(m.src_nic, wireArrival(core_.virtualNow(), 0),
               std::move(reply));
    });
}

void
RdmaNic::onCloseAck(const WireMsg &msg)
{
    const u32 qp = msg.dst_qp;
    core_.post([this, qp] {
        Qp &q = qps_[qp];
        if (q.state != QpState::kCloseWait)
            return;
        ClosedCb cb = std::move(q.on_closed);
        freeQp(qp);
        ++stats_.teardowns;
        if (cb)
            cb(qp);
    });
}

void
RdmaNic::quiesceAll()
{
    for (u32 idx = 0; idx < max_qps_; ++idx) {
        Qp &q = qps_[idx];
        if (q.state == QpState::kFree)
            continue;
        for (Op &op : q.ops) {
            if (!op.active)
                continue;
            handle_.unmap(op.map, /*end_of_burst=*/false);
            op = Op{};
            --q.inflight;
            --inflight_total_;
        }
        if (q.state != QpState::kCloseWait)
            unregisterQp(idx); // kCloseWait already unregistered
        freeQp(idx);
    }
    pending_cqes_.clear();
    slo_post_cats_.clear();
    shutDown();
}

void
RdmaNic::fromWire(const WireMsg &msg)
{
    // Everything this delivery does — translations, CQE writes,
    // NAKs — runs on behalf of the op the packet serves (no-op for
    // control-plane messages, which carry trace 0).
    obs::TraceScope tscope(msg.trace);
    switch (msg.kind) {
    case MsgKind::kConnect:
        onConnect(msg);
        return;
    case MsgKind::kAccept:
    case MsgKind::kReject:
        onAcceptReject(msg);
        return;
    case MsgKind::kWrite:
    case MsgKind::kRead:
    case MsgKind::kMigPage:
    case MsgKind::kMigState:
        onDataAccess(msg);
        return;
    case MsgKind::kAck:
    case MsgKind::kNak:
    case MsgKind::kReadResp:
        onCompletionMsg(msg);
        return;
    case MsgKind::kClose:
        onClose(msg);
        return;
    case MsgKind::kCloseAck:
        onCloseAck(msg);
        return;
    case MsgKind::kNakSeq:
        onNakSeq(msg);
        return;
    case MsgKind::kQpError:
        onQpErrorMsg(msg);
        return;
    }
}

} // namespace rio::rdma
