#include "rdma/rdma.h"

#include <cstring>
#include <unordered_set>

#include "base/logging.h"
#include "riommu/structures.h"

namespace rio::rdma {

const RdmaProfile &
rnicProfile()
{
    static const RdmaProfile p;
    return p;
}

std::vector<u32>
ringSizes(const RdmaProfile &profile, u32 max_qps)
{
    RIO_ASSERT(max_qps > 0, "NIC with zero QPs");
    RIO_ASSERT(1 + 2ull * max_qps <= riommu::kMaxRingsPerDevice,
               "QP fabric exceeds rDEVICE capacity");
    std::vector<u32> sizes;
    sizes.reserve(1 + 2 * max_qps);
    sizes.push_back(4); // static: the CQ mapping
    for (u32 q = 0; q < max_qps; ++q) {
        sizes.push_back(4); // ctrl: WQE ring + MR, connect-lived
        // Data ring: twice the window so mildly out-of-order
        // completions (a locally-faulted young op finishing before an
        // in-flight older one) never trip the sequential tail check.
        sizes.push_back(2 * profile.sq_depth);
    }
    return sizes;
}

RdmaNic::RdmaNic(des::Simulator &sim, des::Core &core,
                 mem::PhysicalMemory &pm, dma::DmaHandle &handle,
                 const RdmaProfile &profile, u32 max_qps, u32 nic_id)
    : sim_(sim), core_(core), pm_(pm), handle_(handle),
      profile_(profile), max_qps_(max_qps), nic_id_(nic_id)
{
    RIO_ASSERT(profile_.sq_depth > 0, "zero send-queue depth");
    qps_.resize(max_qps_);
    free_slots_.reserve(max_qps_);
    for (u32 q = max_qps_; q > 0; --q)
        free_slots_.push_back(q - 1);
}

void
RdmaNic::charge(Cycles c)
{
    core_.acct().charge(cycles::Cat::kProcessing, c);
}

Nanos
RdmaNic::wireArrival(Nanos from, u32 payload_bytes) const
{
    // RoCE framing, not the TCP stack net::wireTimeNs assumes.
    const double ser_ns =
        static_cast<double>((payload_bytes + net::kRdmaHeaderBytes) * 8) /
        profile_.gbps;
    return from + profile_.wire_ns + static_cast<Nanos>(ser_ns);
}

void
RdmaNic::sendAt(u32 dst_nic, Nanos when, WireMsg msg)
{
    RIO_ASSERT(send_, "RdmaNic wire not connected");
    msg.src_nic = nic_id_;
    send_(dst_nic, when, std::move(msg));
}

void
RdmaNic::bringUp()
{
    if (cq_mapped_)
        return;
    cq_pa_ = pm_.allocContiguous(
        static_cast<u64>(profile_.cq_entries) * kCqeBytes);
    auto m = handle_.map(/*rid=*/0, cq_pa_,
                         profile_.cq_entries * kCqeBytes,
                         iommu::DmaDir::kFromDevice);
    RIO_ASSERT(m.isOk(), "CQ registration failed");
    cq_map_ = m.value();
    cq_mapped_ = true;
}

void
RdmaNic::shutDown()
{
    if (!cq_mapped_)
        return;
    handle_.unmap(cq_map_, /*end_of_burst=*/true);
    cq_mapped_ = false;
}

void
RdmaNic::allocQpBuffers(Qp &q)
{
    if (q.bufs_allocated)
        return;
    q.sq_pa = pm_.allocContiguous(
        static_cast<u64>(profile_.sq_depth) * kWqeBytes);
    q.mr_pa = pm_.allocContiguous(profile_.max_req_bytes);
    q.src_pa = pm_.allocContiguous(profile_.max_req_bytes);
    q.rd_pa = pm_.allocContiguous(profile_.max_req_bytes);
    q.ops.resize(profile_.sq_depth);
    q.bufs_allocated = true;
}

Status
RdmaNic::registerQp(u32 idx)
{
    Qp &q = qps_[idx];
    allocQpBuffers(q);
    const u16 rid = ctrlRid(idx);
    auto wm = handle_.map(rid, q.sq_pa, profile_.sq_depth * kWqeBytes,
                          iommu::DmaDir::kToDevice);
    if (!wm.isOk())
        return wm.status();
    auto mm = handle_.map(rid, q.mr_pa, profile_.max_req_bytes,
                          iommu::DmaDir::kBidir);
    if (!mm.isOk()) {
        handle_.unmap(wm.value(), /*end_of_burst=*/true);
        return mm.status();
    }
    q.wqe_map = wm.value();
    q.mr_map = mm.value();
    return Status::ok();
}

void
RdmaNic::unregisterQp(u32 idx)
{
    // FIFO order within the control ring (WQE then MR); the MR unmap
    // closes the teardown burst, so a whole QP close costs one
    // explicit invalidation under rIOMMU.
    Qp &q = qps_[idx];
    handle_.unmap(q.wqe_map, /*end_of_burst=*/false);
    handle_.unmap(q.mr_map, /*end_of_burst=*/true);
}

void
RdmaNic::freeQp(u32 idx)
{
    Qp &q = qps_[idx];
    const bool was_established = q.state == QpState::kEstablished ||
                                 q.state == QpState::kClosing ||
                                 q.state == QpState::kCloseWait;
    q.state = QpState::kFree;
    q.peer_nic = q.peer_qp = 0;
    q.remote_rkey = 0;
    q.sq_tail = 0;
    q.inflight = 0;
    q.on_connected = nullptr;
    q.on_closed = nullptr;
    for (Op &op : q.ops)
        op = Op{};
    if (was_established && established_ > 0)
        --established_;
    free_slots_.push_back(idx);
}

Result<u32>
RdmaNic::connect(u32 peer_nic, ConnectCb cb)
{
    if (free_slots_.empty())
        return Status(ErrorCode::kResourceExhausted, "no free QP");
    const u32 idx = free_slots_.back();
    free_slots_.pop_back();
    Qp &q = qps_[idx];
    Status reg = registerQp(idx);
    if (!reg) {
        free_slots_.push_back(idx);
        return reg;
    }
    charge(profile_.connect_cycles);
    q.state = QpState::kConnecting;
    q.peer_nic = peer_nic;
    q.on_connected = std::move(cb);
    WireMsg msg;
    msg.kind = MsgKind::kConnect;
    msg.src_qp = idx;
    msg.rkey = q.mr_map.device_addr;
    sendAt(peer_nic, wireArrival(core_.virtualNow(), 0), std::move(msg));
    return idx;
}

void
RdmaNic::onConnect(const WireMsg &msg)
{
    // Passive open: driver work on our core.
    const u32 peer_nic = msg.src_nic;
    const u32 peer_qp = msg.src_qp;
    const u64 peer_rkey = msg.rkey;
    core_.post([this, peer_nic, peer_qp, peer_rkey] {
        WireMsg reply;
        reply.dst_qp = peer_qp;
        if (free_slots_.empty()) {
            ++stats_.rejects;
            reply.kind = MsgKind::kReject;
            sendAt(peer_nic, wireArrival(core_.virtualNow(), 0),
                   std::move(reply));
            return;
        }
        const u32 idx = free_slots_.back();
        free_slots_.pop_back();
        Qp &q = qps_[idx];
        Status reg = registerQp(idx);
        if (!reg) {
            free_slots_.push_back(idx);
            ++stats_.rejects;
            reply.kind = MsgKind::kReject;
            sendAt(peer_nic, wireArrival(core_.virtualNow(), 0),
                   std::move(reply));
            return;
        }
        charge(profile_.connect_cycles);
        q.state = QpState::kEstablished;
        q.peer_nic = peer_nic;
        q.peer_qp = peer_qp;
        q.remote_rkey = peer_rkey;
        ++established_;
        ++stats_.connects;
        reply.kind = MsgKind::kAccept;
        reply.src_qp = idx;
        reply.rkey = q.mr_map.device_addr;
        sendAt(peer_nic, wireArrival(core_.virtualNow(), 0),
               std::move(reply));
    });
}

void
RdmaNic::onAcceptReject(const WireMsg &msg)
{
    const WireMsg m = msg;
    core_.post([this, m] {
        Qp &q = qps_[m.dst_qp];
        if (q.state != QpState::kConnecting)
            return; // raced with a force-quiesce
        ConnectCb cb = std::move(q.on_connected);
        q.on_connected = nullptr;
        if (m.kind == MsgKind::kReject) {
            unregisterQp(m.dst_qp);
            freeQp(m.dst_qp);
            if (cb)
                cb(m.dst_qp, false);
            return;
        }
        q.state = QpState::kEstablished;
        q.peer_qp = m.src_qp;
        q.remote_rkey = m.rkey;
        ++established_;
        ++stats_.connects;
        if (cb)
            cb(m.dst_qp, true);
    });
}

bool
RdmaNic::postWrite(u32 qp, u32 bytes, u64 roffset)
{
    Qp &q = qps_[qp];
    if (q.state != QpState::kEstablished ||
        q.inflight >= profile_.sq_depth || bytes == 0 ||
        bytes > profile_.max_req_bytes) {
        ++stats_.posts_blocked;
        return false;
    }
    charge(profile_.post_cycles);
    auto m = handle_.map(dataRid(qp), q.src_pa, bytes,
                         iommu::DmaDir::kToDevice);
    if (!m.isOk()) {
        ++stats_.posts_blocked;
        return false;
    }
    const u32 w = q.sq_tail;
    q.sq_tail = (q.sq_tail + 1) % profile_.sq_depth;
    q.ops[w] = Op{true, false, bytes, roffset, m.value()};
    // The WQE the device will fetch: opcode/len in word 0, the DMA
    // address of the source in word 1.
    const PhysAddr wqe = q.sq_pa + static_cast<u64>(w) * kWqeBytes;
    pm_.write64(wqe, (u64{1} << 32) | bytes);
    pm_.write64(wqe + 8, m.value().device_addr);
    ++q.inflight;
    ++inflight_total_;
    ++stats_.posts;
    ++stats_.writes_sent;
    stats_.bytes_sent += bytes;
    sim_.scheduleAt(core_.virtualNow() + profile_.doorbell_ns,
                    [this, qp, w] { deviceFetchWqe(qp, w); });
    return true;
}

bool
RdmaNic::postRead(u32 qp, u32 bytes, u64 roffset)
{
    Qp &q = qps_[qp];
    if (q.state != QpState::kEstablished ||
        q.inflight >= profile_.sq_depth || bytes == 0 ||
        bytes > profile_.max_req_bytes) {
        ++stats_.posts_blocked;
        return false;
    }
    charge(profile_.post_cycles);
    auto m = handle_.map(dataRid(qp), q.rd_pa, bytes,
                         iommu::DmaDir::kFromDevice);
    if (!m.isOk()) {
        ++stats_.posts_blocked;
        return false;
    }
    const u32 w = q.sq_tail;
    q.sq_tail = (q.sq_tail + 1) % profile_.sq_depth;
    q.ops[w] = Op{true, true, bytes, roffset, m.value()};
    const PhysAddr wqe = q.sq_pa + static_cast<u64>(w) * kWqeBytes;
    pm_.write64(wqe, (u64{2} << 32) | bytes);
    pm_.write64(wqe + 8, m.value().device_addr);
    ++q.inflight;
    ++inflight_total_;
    ++stats_.posts;
    ++stats_.reads_sent;
    sim_.scheduleAt(core_.virtualNow() + profile_.doorbell_ns,
                    [this, qp, w] { deviceFetchWqe(qp, w); });
    return true;
}

void
RdmaNic::deviceFetchWqe(u32 qp, u32 w)
{
    Qp &q = qps_[qp];
    Op &op = q.ops[w];
    if (!op.active)
        return; // force-quiesced under the doorbell
    // Device side: fetch the WQE through our own translation (the
    // control-ring mapping), then the payload for writes (data ring).
    u8 wqe_buf[kWqeBytes];
    Status s = handle_.deviceRead(
        q.wqe_map.device_addr + static_cast<u64>(w) * kWqeBytes, wqe_buf,
        kWqeBytes);
    if (!s) {
        ++stats_.local_fault_drops;
        completeOp(qp, w, false);
        return;
    }
    WireMsg msg;
    msg.src_qp = qp;
    msg.dst_qp = q.peer_qp;
    msg.wqe = w;
    msg.rkey = q.remote_rkey;
    msg.offset = op.roffset;
    msg.len = op.bytes;
    if (op.is_read) {
        msg.kind = MsgKind::kRead;
        sendAt(q.peer_nic, wireArrival(sim_.now(), 0), std::move(msg));
        return;
    }
    msg.payload.resize(op.bytes);
    s = handle_.deviceRead(op.map.device_addr, msg.payload.data(),
                           op.bytes);
    if (!s) {
        ++stats_.local_fault_drops;
        completeOp(qp, w, false);
        return;
    }
    msg.kind = MsgKind::kWrite;
    sendAt(q.peer_nic, wireArrival(sim_.now(), op.bytes),
           std::move(msg));
}

void
RdmaNic::onDataAccess(const WireMsg &msg)
{
    // Target side of an RDMA write/read: pure device work — the
    // access translates through OUR handle, costing zero local driver
    // cycles. This is the VA-RDMA property under test.
    WireMsg reply;
    reply.dst_qp = msg.src_qp;
    reply.wqe = msg.wqe;
    if (msg.kind == MsgKind::kWrite) {
        ++stats_.remote_writes;
        Status s = handle_.deviceWrite(msg.rkey + msg.offset,
                                       msg.payload.data(), msg.len);
        reply.ok = s.isOk();
        if (!reply.ok)
            ++stats_.remote_faults;
        reply.kind = reply.ok ? MsgKind::kAck : MsgKind::kNak;
        sendAt(msg.src_nic, wireArrival(sim_.now(), 0),
               std::move(reply));
        return;
    }
    ++stats_.remote_reads;
    reply.payload.resize(msg.len);
    Status s = handle_.deviceRead(msg.rkey + msg.offset,
                                  reply.payload.data(), msg.len);
    reply.ok = s.isOk();
    if (!reply.ok) {
        ++stats_.remote_faults;
        reply.payload.clear();
    }
    reply.kind = MsgKind::kReadResp;
    reply.len = msg.len;
    sendAt(msg.src_nic, wireArrival(sim_.now(), reply.ok ? msg.len : 0),
           std::move(reply));
}

void
RdmaNic::onCompletionMsg(const WireMsg &msg)
{
    Qp &q = qps_[msg.dst_qp];
    Op &op = q.ops[msg.wqe];
    if (!op.active)
        return; // force-quiesced while the reply was in flight
    bool ok = msg.ok;
    if (msg.kind == MsgKind::kReadResp && ok) {
        // Land the read payload in the local buffer — again through
        // our own translation (the op's data-ring mapping).
        Status s = handle_.deviceWrite(op.map.device_addr,
                                       msg.payload.data(), msg.len);
        if (!s) {
            ++stats_.local_fault_drops;
            ok = false;
        }
    }
    completeOp(msg.dst_qp, msg.wqe, ok);
}

void
RdmaNic::completeOp(u32 qp, u32 w, bool ok)
{
    // Device writes the CQE through the static-ring mapping, then
    // arms the moderated completion interrupt.
    const PhysAddr slot_off = static_cast<u64>(cq_tail_) * kCqeBytes;
    u8 cqe[kCqeBytes] = {};
    const u64 word0 = (static_cast<u64>(qp) << 32) | w;
    std::memcpy(cqe, &word0, 8);
    cqe[8] = ok ? 1 : 0;
    handle_.deviceWrite(cq_map_.device_addr + slot_off, cqe, kCqeBytes);
    cq_tail_ = (cq_tail_ + 1) % profile_.cq_entries;
    pending_cqes_.push_back(PendingCqe{qp, w, ok});
    if (!irq_scheduled_) {
        irq_scheduled_ = true;
        sim_.scheduleAt(sim_.now() + profile_.completion_irq_ns, [this] {
            irq_scheduled_ = false;
            core_.post([this] { pollCq(); });
        });
    }
}

void
RdmaNic::pollCq()
{
    std::vector<PendingCqe> batch = std::move(pending_cqes_);
    pending_cqes_.clear();
    if (batch.empty())
        return;
    ++stats_.cq_irqs;
    // end_of_burst goes to the LAST completion of each QP in the
    // batch: under rIOMMU that is the one explicit per-ring
    // invalidation the whole burst pays. At low connection counts a
    // batch concentrates on few rings (strong amortization); at 16K
    // connections nearly every completion is its ring's last — the
    // erosion the cluster bench quantifies.
    std::vector<bool> last(batch.size(), false);
    {
        std::unordered_set<u32> seen;
        for (size_t i = batch.size(); i > 0; --i) {
            if (seen.insert(batch[i - 1].qp).second) {
                last[i - 1] = true;
                ++stats_.cq_batch_rings;
            }
        }
    }
    std::vector<u32> drained;
    for (size_t i = 0; i < batch.size(); ++i) {
        const PendingCqe &c = batch[i];
        Qp &q = qps_[c.qp];
        Op &op = q.ops[c.wqe];
        if (!op.active)
            continue;
        charge(profile_.poll_cycles);
        handle_.unmap(op.map, /*end_of_burst=*/last[i]);
        if (last[i])
            ++stats_.eob_unmaps;
        op = Op{};
        --q.inflight;
        --inflight_total_;
        ++stats_.completions;
        ++stats_.cq_polled;
        if (!c.ok)
            ++stats_.comp_errors;
        if (on_completion_)
            on_completion_(c.qp, c.wqe, c.ok);
        if (q.state == QpState::kClosing && q.inflight == 0)
            drained.push_back(c.qp);
    }
    for (u32 qp : drained)
        if (qps_[qp].state == QpState::kClosing &&
            qps_[qp].inflight == 0)
            finishClose(qp);
}

Status
RdmaNic::teardown(u32 qp, ClosedCb cb)
{
    Qp &q = qps_[qp];
    if (q.state != QpState::kEstablished)
        return Status(ErrorCode::kInvalidArgument,
                      "teardown of non-established QP");
    charge(profile_.teardown_cycles);
    q.state = QpState::kClosing;
    q.on_closed = std::move(cb);
    if (q.inflight == 0)
        finishClose(qp);
    return Status::ok();
}

void
RdmaNic::finishClose(u32 qp)
{
    Qp &q = qps_[qp];
    unregisterQp(qp);
    q.state = QpState::kCloseWait;
    WireMsg msg;
    msg.kind = MsgKind::kClose;
    msg.src_qp = qp;
    msg.dst_qp = q.peer_qp;
    sendAt(q.peer_nic, wireArrival(core_.virtualNow(), 0),
           std::move(msg));
}

void
RdmaNic::onClose(const WireMsg &msg)
{
    const WireMsg m = msg;
    core_.post([this, m] {
        Qp &q = qps_[m.dst_qp];
        if (q.state != QpState::kEstablished)
            return; // already quiesced locally
        charge(profile_.teardown_cycles);
        unregisterQp(m.dst_qp);
        freeQp(m.dst_qp);
        ++stats_.teardowns;
        WireMsg reply;
        reply.kind = MsgKind::kCloseAck;
        reply.dst_qp = m.src_qp;
        sendAt(m.src_nic, wireArrival(core_.virtualNow(), 0),
               std::move(reply));
    });
}

void
RdmaNic::onCloseAck(const WireMsg &msg)
{
    const u32 qp = msg.dst_qp;
    core_.post([this, qp] {
        Qp &q = qps_[qp];
        if (q.state != QpState::kCloseWait)
            return;
        ClosedCb cb = std::move(q.on_closed);
        freeQp(qp);
        ++stats_.teardowns;
        if (cb)
            cb(qp);
    });
}

void
RdmaNic::quiesceAll()
{
    for (u32 idx = 0; idx < max_qps_; ++idx) {
        Qp &q = qps_[idx];
        if (q.state == QpState::kFree)
            continue;
        for (Op &op : q.ops) {
            if (!op.active)
                continue;
            handle_.unmap(op.map, /*end_of_burst=*/false);
            op = Op{};
            --q.inflight;
            --inflight_total_;
        }
        if (q.state != QpState::kCloseWait)
            unregisterQp(idx); // kCloseWait already unregistered
        freeQp(idx);
    }
    pending_cqes_.clear();
    shutDown();
}

void
RdmaNic::fromWire(const WireMsg &msg)
{
    switch (msg.kind) {
    case MsgKind::kConnect:
        onConnect(msg);
        return;
    case MsgKind::kAccept:
    case MsgKind::kReject:
        onAcceptReject(msg);
        return;
    case MsgKind::kWrite:
    case MsgKind::kRead:
        onDataAccess(msg);
        return;
    case MsgKind::kAck:
    case MsgKind::kNak:
    case MsgKind::kReadResp:
        onCompletionMsg(msg);
        return;
    case MsgKind::kClose:
        onClose(msg);
        return;
    case MsgKind::kCloseAck:
        onCloseAck(msg);
        return;
    }
}

} // namespace rio::rdma
