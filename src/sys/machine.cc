#include "sys/machine.h"

namespace rio::sys {

namespace {

dma::DmaHandle &
wrap(std::unique_ptr<dma::DmaHandle> &handle,
     std::unique_ptr<trace::RecordingDmaHandle> &recorder,
     trace::DmaTrace *trace)
{
    if (!trace)
        return *handle;
    recorder =
        std::make_unique<trace::RecordingDmaHandle>(*handle, *trace);
    return *recorder;
}

} // namespace

Machine::Machine(des::Simulator &sim, dma::ProtectionMode mode,
                 const nic::NicProfile &profile,
                 const cycles::CostModel &cost, trace::DmaTrace *trace)
    : sim_(sim), mode_(mode), profile_(profile), ctx_(cost),
      core_(sim, cost),
      handle_(ctx_.makeHandle(mode, iommu::Bdf{0, 3, 0}, &core_.acct(),
                              profile.riommuRingSizes())),
      nic_(sim, core_, ctx_.memory(), wrap(handle_, recorder_, trace),
           profile_)
{
}

} // namespace rio::sys
