#include "sys/machine.h"

#include <algorithm>

#include "base/logging.h"
#include "obs/registry.h"
#include "obs/timeline.h"

namespace rio::sys {

const char *
lifecyclePhaseName(LifecyclePhase phase)
{
    switch (phase) {
      case LifecyclePhase::kSurpriseUnplug: return "surprise_unplug";
      case LifecyclePhase::kRemoveCleanup: return "remove_cleanup";
      case LifecyclePhase::kReattach: return "reattach";
      case LifecyclePhase::kReplug: return "replug";
      case LifecyclePhase::kStopPosting: return "stop_posting";
      case LifecyclePhase::kDrain: return "drain";
      case LifecyclePhase::kUnmapAll: return "unmap_all";
      case LifecyclePhase::kFlush: return "flush";
      case LifecyclePhase::kDetach: return "detach";
    }
    return "?";
}

Machine::Machine(des::Simulator &sim, dma::ProtectionMode mode,
                 unsigned ncores, const cycles::CostModel &cost)
    : sim_(sim), mode_(mode), ctx_(cost)
{
    RIO_ASSERT(ncores > 0, "machine with no cores");
    cores_.reserve(ncores);
    // One timeline track group per machine, one track per core.
    const u16 obs_pid = obs::timeline().allocPid();
    for (unsigned i = 0; i < ncores; ++i) {
        cores_.push_back(std::make_unique<des::Core>(sim_, cost));
        cores_.back()->setObsTrack(obs_pid, static_cast<u16>(i));
    }
}

Machine::Machine(des::Simulator &sim, dma::ProtectionMode mode,
                 const nic::NicProfile &profile,
                 const cycles::CostModel &cost, trace::DmaTrace *trace)
    : Machine(sim, mode, /*ncores=*/1, cost)
{
    attachNic(profile, 0, trace);
}

iommu::Bdf
Machine::nextBdf()
{
    RIO_ASSERT(next_dev_ < 32, "PCI device numbers exhausted on bus 0");
    return iommu::Bdf{0, next_dev_++, 0};
}

void
Machine::applyFaultConfig(dma::DmaHandle &handle)
{
    handle.setFaultPolicy(fault_policy_);
    dma::FaultInjectConfig cfg;
    cfg.rate = fault_rate_;
    // Per-handle stream: same machine seed, decorrelated by BDF, so
    // attach order cannot change which accesses fault.
    cfg.seed = fault_seed_ ^
               (0x9e3779b97f4a7c15ULL * (handle.bdf().pack() + 1));
    handle.setFaultInjection(cfg);
}

void
Machine::setFaultPolicy(dma::FaultPolicy policy)
{
    fault_policy_ = policy;
    for (auto &node : nodes_)
        node->handle->setFaultPolicy(policy);
    for (auto &handle : extra_handles_)
        handle->setFaultPolicy(policy);
}

void
Machine::setFaultInjection(double rate, u64 seed)
{
    fault_rate_ = rate;
    fault_seed_ = seed;
    for (auto &node : nodes_)
        applyFaultConfig(*node->handle);
    for (auto &handle : extra_handles_)
        applyFaultConfig(*handle);
}

dma::FaultStats
Machine::faultStats() const
{
    dma::FaultStats total;
    for (const auto &node : nodes_)
        total += node->handle->faultStats();
    for (const auto &handle : extra_handles_)
        total += handle->faultStats();
    return total;
}

unsigned
Machine::attachNic(const nic::NicProfile &profile, unsigned core_idx,
                   trace::DmaTrace *trace)
{
    RIO_ASSERT(core_idx < cores_.size(), "pin to nonexistent core ",
               core_idx);
    auto node = std::make_unique<Node>(profile, core_idx);
    des::Core &core = *cores_[core_idx];
    node->handle =
        ctx_.makeHandle(mode_, nextBdf(), &core.acct(),
                        node->profile.riommuRingSizes(), &core);
    applyFaultConfig(*node->handle);
    dma::DmaHandle *handle = node->handle.get();
    if (trace) {
        node->recorder = std::make_unique<trace::RecordingDmaHandle>(
            *handle, *trace);
        handle = node->recorder.get();
    }
    node->nic = std::make_unique<nic::Nic>(sim_, core, ctx_.memory(),
                                           *handle, node->profile);
    nodes_.push_back(std::move(node));
    return static_cast<unsigned>(nodes_.size() - 1);
}

void
Machine::journal(unsigned nic_idx, LifecyclePhase phase)
{
    journalAt(*nodes_[nic_idx]->handle, nodes_[nic_idx]->core_idx,
              nic_idx, phase);
}

void
Machine::journalAt(dma::DmaHandle &h, unsigned core_idx,
                   unsigned log_idx, LifecyclePhase phase)
{
    obs::registry()
        .counter("lifecycle.events",
                 {{"phase", lifecyclePhaseName(phase)}})
        .inc();
    des::Core &core = *cores_[core_idx];
    obs::Event e;
    e.kind = obs::Ev::kQuiescePhase;
    e.t = sim_.now();
    e.arg = static_cast<u64>(phase);
    e.bdf = h.bdf().pack();
    e.pid = core.obsPid();
    e.tid = core.obsTid();
    obs::timeline().emit(e);
    // Capped so churn soaks stay bounded; the stats keep counting.
    constexpr size_t kMaxLog = 1u << 20;
    if (lifecycle_log_.size() < kMaxLog)
        lifecycle_log_.push_back({sim_.now(), log_idx, phase});
}

void
Machine::surpriseUnplugNic(unsigned i)
{
    nic::Nic &n = nic(i);
    RIO_ASSERT(n.isUp(), "surprise unplug of a down NIC");
    // Hardware side first: the device disappears mid-burst and stops
    // answering invalidations; the bus then reports it gone.
    n.surpriseUnplug();
    nodes_[i]->handle->surpriseRemove();
    ++lifecycle_stats_.surprise_unplugs;
    journal(i, LifecyclePhase::kSurpriseUnplug);
}

void
Machine::removeCleanupNic(unsigned i)
{
    nic(i).removeCleanup();
    journal(i, LifecyclePhase::kRemoveCleanup);
}

Status
Machine::replugNic(unsigned i)
{
    Status s = nodes_[i]->handle->reattach();
    if (!s.isOk())
        return s;
    journal(i, LifecyclePhase::kReattach);
    nic(i).replug();
    ++lifecycle_stats_.replugs;
    journal(i, LifecyclePhase::kReplug);
    return Status::ok();
}

Status
Machine::quiesceNic(unsigned i)
{
    RIO_ASSERT(nic(i).isUp(), "quiesce of a down NIC");
    // The quiesce protocol, in order: stop posting, drain the rings,
    // unmap everything, flush invalidations, detach. Nic::shutDown
    // performs the first three at one instant; the journal serializes
    // them in protocol order.
    journal(i, LifecyclePhase::kStopPosting);
    nic(i).shutDown();
    journal(i, LifecyclePhase::kDrain);
    journal(i, LifecyclePhase::kUnmapAll);
    Status fs = nodes_[i]->handle->quiesceFlush();
    if (!fs.isOk())
        return fs;
    journal(i, LifecyclePhase::kFlush);
    Status ds = nodes_[i]->handle->detach();
    if (!ds.isOk())
        return ds;
    journal(i, LifecyclePhase::kDetach);
    ++lifecycle_stats_.quiesces;
    return Status::ok();
}

Status
Machine::quiesceHandle(dma::DmaHandle &h, unsigned core_idx, bool detach)
{
    unsigned log_idx = numNics();
    for (size_t k = 0; k < extra_handles_.size(); ++k) {
        if (extra_handles_[k].get() == &h) {
            log_idx = numNics() + static_cast<unsigned>(k);
            break;
        }
    }
    journalAt(h, core_idx, log_idx, LifecyclePhase::kStopPosting);
    journalAt(h, core_idx, log_idx, LifecyclePhase::kDrain);
    journalAt(h, core_idx, log_idx, LifecyclePhase::kUnmapAll);
    Status fs = h.quiesceFlush();
    if (!fs.isOk())
        return fs;
    journalAt(h, core_idx, log_idx, LifecyclePhase::kFlush);
    if (detach) {
        Status ds = h.detach();
        if (!ds.isOk())
            return ds;
        journalAt(h, core_idx, log_idx, LifecyclePhase::kDetach);
    }
    ++lifecycle_stats_.quiesces;
    return Status::ok();
}

void
Machine::armLifecycleChurn(const LifecycleChurnConfig &cfg)
{
    churn_ = cfg;
    if (cfg.events_per_ms <= 0.0)
        return; // rate 0: no events, no RNG draws — bit-for-bit no-op
    churn_rng_ = Rng(cfg.seed);
    scheduleChurnEvent();
}

void
Machine::scheduleChurnEvent()
{
    if (churn_.events_per_ms <= 0.0)
        return; // disarmed mid-run
    const double mean_gap_ns = 1e6 / churn_.events_per_ms;
    const Nanos gap = std::max<Nanos>(
        1, static_cast<Nanos>(churn_rng_.exponential(mean_gap_ns)));
    if (churn_.until_ns != 0 && sim_.now() + gap >= churn_.until_ns)
        return;
    sim_.scheduleAfter(gap, [this] { churnEvent(); });
}

void
Machine::churnEvent()
{
    if (churn_.events_per_ms <= 0.0)
        return; // disarmed after this event was scheduled
    const unsigned i =
        numNics() <= 1
            ? 0
            : static_cast<unsigned>(churn_rng_.below(numNics()));
    // Skip a NIC still mid-outage; the draw itself stays in the
    // stream so the event schedule is independent of outcome.
    if (nic(i).isUp() && !nodes_[i]->handle->detached()) {
        surpriseUnplugNic(i);
        // The hotplug notification reaches the driver on the NIC's
        // core: orphaned mappings are recovered there (charged work —
        // strict modes eat invalidation time-outs), and the device
        // returns after the configured outage.
        nicCore(i).post([this, i] { removeCleanupNic(i); });
        sim_.scheduleAfter(churn_.down_ns, [this, i] {
            nicCore(i).post([this, i] {
                Status s = replugNic(i);
                RIO_ASSERT(s.isOk(), "replug failed: ", s.toString());
            });
        });
    }
    scheduleChurnEvent();
}

u64
Machine::detachFaultCount() const
{
    u64 n = 0;
    for (const auto &node : nodes_)
        n += node->handle->detachFaults().size();
    for (const auto &handle : extra_handles_)
        n += handle->detachFaults().size();
    return n;
}

dma::DmaHandle &
Machine::attachDeviceHandle(unsigned core_idx, std::vector<u32> ring_sizes)
{
    RIO_ASSERT(core_idx < cores_.size(), "pin to nonexistent core ",
               core_idx);
    des::Core &core = *cores_[core_idx];
    extra_handles_.push_back(ctx_.makeHandle(mode_, nextBdf(),
                                             &core.acct(),
                                             std::move(ring_sizes), &core));
    applyFaultConfig(*extra_handles_.back());
    return *extra_handles_.back();
}

} // namespace rio::sys
