#include "sys/machine.h"

#include "base/logging.h"

namespace rio::sys {

Machine::Machine(des::Simulator &sim, dma::ProtectionMode mode,
                 unsigned ncores, const cycles::CostModel &cost)
    : sim_(sim), mode_(mode), ctx_(cost)
{
    RIO_ASSERT(ncores > 0, "machine with no cores");
    cores_.reserve(ncores);
    for (unsigned i = 0; i < ncores; ++i)
        cores_.push_back(std::make_unique<des::Core>(sim_, cost));
}

Machine::Machine(des::Simulator &sim, dma::ProtectionMode mode,
                 const nic::NicProfile &profile,
                 const cycles::CostModel &cost, trace::DmaTrace *trace)
    : Machine(sim, mode, /*ncores=*/1, cost)
{
    attachNic(profile, 0, trace);
}

iommu::Bdf
Machine::nextBdf()
{
    RIO_ASSERT(next_dev_ < 32, "PCI device numbers exhausted on bus 0");
    return iommu::Bdf{0, next_dev_++, 0};
}

unsigned
Machine::attachNic(const nic::NicProfile &profile, unsigned core_idx,
                   trace::DmaTrace *trace)
{
    RIO_ASSERT(core_idx < cores_.size(), "pin to nonexistent core ",
               core_idx);
    auto node = std::make_unique<Node>(profile, core_idx);
    des::Core &core = *cores_[core_idx];
    node->handle =
        ctx_.makeHandle(mode_, nextBdf(), &core.acct(),
                        node->profile.riommuRingSizes(), &core);
    dma::DmaHandle *handle = node->handle.get();
    if (trace) {
        node->recorder = std::make_unique<trace::RecordingDmaHandle>(
            *handle, *trace);
        handle = node->recorder.get();
    }
    node->nic = std::make_unique<nic::Nic>(sim_, core, ctx_.memory(),
                                           *handle, node->profile);
    nodes_.push_back(std::move(node));
    return static_cast<unsigned>(nodes_.size() - 1);
}

dma::DmaHandle &
Machine::attachDeviceHandle(unsigned core_idx, std::vector<u32> ring_sizes)
{
    RIO_ASSERT(core_idx < cores_.size(), "pin to nonexistent core ",
               core_idx);
    des::Core &core = *cores_[core_idx];
    extra_handles_.push_back(ctx_.makeHandle(mode_, nextBdf(),
                                             &core.acct(),
                                             std::move(ring_sizes), &core));
    return *extra_handles_.back();
}

} // namespace rio::sys
