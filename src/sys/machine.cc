#include "sys/machine.h"

#include "base/logging.h"

namespace rio::sys {

Machine::Machine(des::Simulator &sim, dma::ProtectionMode mode,
                 unsigned ncores, const cycles::CostModel &cost)
    : sim_(sim), mode_(mode), ctx_(cost)
{
    RIO_ASSERT(ncores > 0, "machine with no cores");
    cores_.reserve(ncores);
    for (unsigned i = 0; i < ncores; ++i)
        cores_.push_back(std::make_unique<des::Core>(sim_, cost));
}

Machine::Machine(des::Simulator &sim, dma::ProtectionMode mode,
                 const nic::NicProfile &profile,
                 const cycles::CostModel &cost, trace::DmaTrace *trace)
    : Machine(sim, mode, /*ncores=*/1, cost)
{
    attachNic(profile, 0, trace);
}

iommu::Bdf
Machine::nextBdf()
{
    RIO_ASSERT(next_dev_ < 32, "PCI device numbers exhausted on bus 0");
    return iommu::Bdf{0, next_dev_++, 0};
}

void
Machine::applyFaultConfig(dma::DmaHandle &handle)
{
    handle.setFaultPolicy(fault_policy_);
    dma::FaultInjectConfig cfg;
    cfg.rate = fault_rate_;
    // Per-handle stream: same machine seed, decorrelated by BDF, so
    // attach order cannot change which accesses fault.
    cfg.seed = fault_seed_ ^
               (0x9e3779b97f4a7c15ULL * (handle.bdf().pack() + 1));
    handle.setFaultInjection(cfg);
}

void
Machine::setFaultPolicy(dma::FaultPolicy policy)
{
    fault_policy_ = policy;
    for (auto &node : nodes_)
        node->handle->setFaultPolicy(policy);
    for (auto &handle : extra_handles_)
        handle->setFaultPolicy(policy);
}

void
Machine::setFaultInjection(double rate, u64 seed)
{
    fault_rate_ = rate;
    fault_seed_ = seed;
    for (auto &node : nodes_)
        applyFaultConfig(*node->handle);
    for (auto &handle : extra_handles_)
        applyFaultConfig(*handle);
}

dma::FaultStats
Machine::faultStats() const
{
    dma::FaultStats total;
    for (const auto &node : nodes_)
        total += node->handle->faultStats();
    for (const auto &handle : extra_handles_)
        total += handle->faultStats();
    return total;
}

unsigned
Machine::attachNic(const nic::NicProfile &profile, unsigned core_idx,
                   trace::DmaTrace *trace)
{
    RIO_ASSERT(core_idx < cores_.size(), "pin to nonexistent core ",
               core_idx);
    auto node = std::make_unique<Node>(profile, core_idx);
    des::Core &core = *cores_[core_idx];
    node->handle =
        ctx_.makeHandle(mode_, nextBdf(), &core.acct(),
                        node->profile.riommuRingSizes(), &core);
    applyFaultConfig(*node->handle);
    dma::DmaHandle *handle = node->handle.get();
    if (trace) {
        node->recorder = std::make_unique<trace::RecordingDmaHandle>(
            *handle, *trace);
        handle = node->recorder.get();
    }
    node->nic = std::make_unique<nic::Nic>(sim_, core, ctx_.memory(),
                                           *handle, node->profile);
    nodes_.push_back(std::move(node));
    return static_cast<unsigned>(nodes_.size() - 1);
}

dma::DmaHandle &
Machine::attachDeviceHandle(unsigned core_idx, std::vector<u32> ring_sizes)
{
    RIO_ASSERT(core_idx < cores_.size(), "pin to nonexistent core ",
               core_idx);
    des::Core &core = *cores_[core_idx];
    extra_handles_.push_back(ctx_.makeHandle(mode_, nextBdf(),
                                             &core.acct(),
                                             std::move(ring_sizes), &core));
    applyFaultConfig(*extra_handles_.back());
    return *extra_handles_.back();
}

} // namespace rio::sys
