#include "sys/wire.h"

#include <algorithm>
#include <utility>

#include "base/logging.h"
#include "net/packet.h"
#include "obs/timeline.h"

namespace rio::sys {

WirePort::WirePort(des::Simulator &sim, const WireFaultConfig &cfg,
                   rdma::RdmaNic &target, unsigned machine, u16 obs_pid,
                   u16 obs_tid)
    : sim_(sim), cfg_(cfg), target_(target),
      // One stream per destination machine: draws happen in the
      // deterministic mail-drain order of that machine's lane.
      rng_(cfg.seed * 0xBF58476D1CE4E5B9ULL + machine + 1),
      obs_pid_(obs_pid), obs_tid_(obs_tid)
{
    RIO_ASSERT(cfg_.delay_min_ns <= cfg_.delay_max_ns,
               "empty wire delay range");
    RIO_ASSERT(cfg_.port_gbps > 0.0, "port with zero drain rate");
}

bool
WirePort::isDataPlane(rdma::MsgKind kind)
{
    switch (kind) {
    case rdma::MsgKind::kWrite:
    case rdma::MsgKind::kRead:
    case rdma::MsgKind::kReadResp:
    case rdma::MsgKind::kAck:
    case rdma::MsgKind::kNak:
    case rdma::MsgKind::kNakSeq:
    case rdma::MsgKind::kMigPage:
    case rdma::MsgKind::kMigState:
        return true;
    case rdma::MsgKind::kConnect:
    case rdma::MsgKind::kAccept:
    case rdma::MsgKind::kReject:
    case rdma::MsgKind::kClose:
    case rdma::MsgKind::kCloseAck:
    case rdma::MsgKind::kQpError:
        return false;
    }
    return false;
}

rdma::RdmaNic &
WirePort::sink(const rdma::WireMsg &msg)
{
    if (alt_ && msg.dst_nic == alt_->nicId())
        return *alt_;
    return target_;
}

Nanos
WirePort::delayDraw()
{
    return static_cast<Nanos>(
        rng_.range(static_cast<u64>(cfg_.delay_min_ns),
                   static_cast<u64>(cfg_.delay_max_ns)));
}

Nanos
WirePort::serviceNs(const rdma::WireMsg &msg) const
{
    const u64 bits =
        (static_cast<u64>(msg.payload.size()) + net::kRdmaHeaderBytes) * 8;
    return cfg_.port_overhead_ns +
           static_cast<Nanos>(static_cast<double>(bits) / cfg_.port_gbps);
}

void
WirePort::deliver(rdma::WireMsg msg)
{
    if (!isDataPlane(msg.kind)) {
        // Control plane: out-of-band reliable CM, untouched.
        sink(msg).fromWire(msg);
        return;
    }
    ++stats_.data_seen;
    // Every knob gated on rate > 0: the inert config draws nothing.
    if (cfg_.drop_rate > 0.0 && rng_.chance(cfg_.drop_rate)) {
        ++stats_.drops;
        return;
    }
    if (cfg_.dup_rate > 0.0 && rng_.chance(cfg_.dup_rate)) {
        ++stats_.dups;
        // The copy re-enters the port later (lane-local reschedule);
        // it skips the fault stage so a duplicate cannot multiply.
        rdma::WireMsg copy = msg;
        sim_.scheduleAt(sim_.now() + delayDraw(),
                        [this, copy = std::move(copy)]() mutable {
                            enqueue(std::move(copy));
                        });
    }
    if (cfg_.delay_rate > 0.0 && rng_.chance(cfg_.delay_rate)) {
        ++stats_.delays;
        sim_.scheduleAt(sim_.now() + delayDraw(),
                        [this, msg = std::move(msg)]() mutable {
                            enqueue(std::move(msg));
                        });
        return;
    }
    enqueue(std::move(msg));
}

void
WirePort::enqueue(rdma::WireMsg msg)
{
    if (cfg_.ingress_cap == 0) {
        ++stats_.delivered;
        sink(msg).fromWire(msg);
        return;
    }
    // Deterministic incast collapse: the port serializes messages at
    // port_gbps; arrivals finding the queue full are tail-dropped.
    if (queued_ >= cfg_.ingress_cap) {
        ++stats_.congestion_drops;
        return;
    }
    ++queued_;
    stats_.peak_queue = std::max<u64>(stats_.peak_queue, queued_);
    const Nanos start = std::max(sim_.now(), busy_until_);
    busy_until_ = start + serviceNs(msg);
    if (obs::kObsCompiled && msg.trace) {
        // Ingress-queueing child span: arrival → drain through the
        // serializing port, on the destination machine's track.
        obs::Event ev;
        ev.kind = obs::Ev::kIngressQ;
        ev.t = busy_until_;
        ev.dur_ns = busy_until_ - sim_.now();
        ev.trace = msg.trace;
        ev.arg = queued_;
        ev.arg2 = msg.psn;
        ev.pid = obs_pid_;
        ev.tid = obs_tid_;
        obs::timeline().emit(ev);
    }
    sim_.scheduleAt(busy_until_, [this, msg = std::move(msg)]() mutable {
        --queued_;
        ++stats_.delivered;
        sink(msg).fromWire(msg);
    });
}

} // namespace rio::sys
