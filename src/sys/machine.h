/**
 * @file
 * Machine: one simulated host — memory + IOMMUs (one shared
 * DmaContext), N cores, and a set of attached devices, each pinned to
 * a core. The paper's servers are configured to use one core (§5.1),
 * and the single-core constructor reproduces exactly that setup; the
 * N-core form exists to measure what §3.2 predicts about it: the
 * baseline modes serialize every map/unmap on the context-global IOVA
 * and invalidation-queue locks, while rIOMMU's per-ring state scales
 * lock-free. Workloads are built on one or more Machines sharing a
 * discrete-event Simulator.
 */
#ifndef RIO_SYS_MACHINE_H
#define RIO_SYS_MACHINE_H

#include <memory>
#include <vector>

#include "base/rng.h"
#include "des/core.h"
#include "des/simulator.h"
#include "dma/dma_context.h"
#include "nic/nic.h"
#include "trace/trace.h"

namespace rio::sys {

/** One step of a device lifecycle transition, for the journal. */
enum class LifecyclePhase : u8 {
    kSurpriseUnplug = 0, //!< device vanished, handle force-detached
    kRemoveCleanup,      //!< driver unmapped the orphaned mappings
    kReattach,           //!< handle re-attached to the IOMMU
    kReplug,             //!< device brought back up
    kStopPosting,        //!< orderly quiesce: no new DMA posted
    kDrain,              //!< orderly quiesce: in-flight work retired
    kUnmapAll,           //!< orderly quiesce: every mapping unmapped
    kFlush,              //!< orderly quiesce: invalidations flushed
    kDetach              //!< orderly quiesce: handle detached
};

const char *lifecyclePhaseName(LifecyclePhase phase);

/** One journal record: what happened to which NIC, and when. */
struct LifecycleLogEntry
{
    Nanos t = 0;
    unsigned nic_idx = 0;
    LifecyclePhase phase = LifecyclePhase::kSurpriseUnplug;
};

/** Aggregate lifecycle counters. */
struct LifecycleStats
{
    u64 surprise_unplugs = 0;
    u64 replugs = 0;
    u64 quiesces = 0;
};

/**
 * Deterministic surprise-unplug/replug churn: events arrive as a
 * Poisson process from a dedicated Rng stream, entirely in virtual
 * time. A rate of zero arms nothing and draws nothing, so workloads
 * run bit-for-bit identically to a build without churn.
 */
struct LifecycleChurnConfig
{
    double events_per_ms = 0.0; //!< mean surprise-unplug rate; 0 = off
    u64 seed = 1;
    Nanos down_ns = 20000; //!< outage between unplug and replug
    Nanos until_ns = 0;    //!< stop scheduling events at this time
                           //!< (0 = never; the workload should bound
                           //!< it or the event queue never drains)
};

/** A host under a given protection mode: N cores x M devices. */
class Machine
{
  public:
    /**
     * Single-core, single-NIC machine — the paper's configuration.
     * Equivalent to the N-core constructor with ncores = 1 followed
     * by attachNic(profile, 0, trace).
     *
     * @param trace when non-null, every map/unmap/device access of
     * this machine's NIC is recorded (for the §5.4 prefetcher study).
     */
    Machine(des::Simulator &sim, dma::ProtectionMode mode,
            const nic::NicProfile &profile,
            const cycles::CostModel &cost = cycles::defaultCostModel(),
            trace::DmaTrace *trace = nullptr);

    /**
     * Bare N-core machine sharing one DmaContext; attach devices
     * (and thereby pin them to cores) before bringUp().
     */
    Machine(des::Simulator &sim, dma::ProtectionMode mode,
            unsigned ncores,
            const cycles::CostModel &cost = cycles::defaultCostModel());

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /**
     * Attach a NIC driven by core @p core_idx. Its DMA handle shares
     * this machine's context (and, for the baseline modes, the
     * context-global locks). Returns the NIC's index.
     */
    unsigned attachNic(const nic::NicProfile &profile, unsigned core_idx,
                       trace::DmaTrace *trace = nullptr);

    /**
     * Create a DMA handle for an additional non-NIC device (NVMe,
     * AHCI, ...) pinned to core @p core_idx, sharing this machine's
     * context and BDF space. The machine keeps ownership; pass the
     * reference to the device model's constructor. @p ring_sizes is
     * required for the rIOMMU modes (e.g. NvmeDevice::riommuRingSizes).
     */
    dma::DmaHandle &attachDeviceHandle(unsigned core_idx,
                                       std::vector<u32> ring_sizes = {});

    /** Bring every attached NIC up (ring allocation, Rx prefill).
     * Do this before starting a workload; init-time charges precede
     * any measurement window. */
    void
    bringUp()
    {
        for (auto &node : nodes_)
            node->nic->bringUp();
    }

    unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }
    unsigned numNics() const { return static_cast<unsigned>(nodes_.size()); }

    des::Simulator &sim() { return sim_; }
    des::Core &core(unsigned i = 0) { return *cores_[i]; }
    cycles::CycleAccount &acct(unsigned i = 0) { return cores_[i]->acct(); }
    dma::DmaContext &ctx() { return ctx_; }
    dma::DmaHandle &handle(unsigned i = 0) { return *nodes_[i]->handle; }
    nic::Nic &nic(unsigned i = 0) { return *nodes_[i]->nic; }
    dma::ProtectionMode mode() const { return mode_; }
    const nic::NicProfile &profile(unsigned i = 0) const
    {
        return nodes_[i]->profile;
    }
    const cycles::CostModel &cost() const { return ctx_.cost(); }

    /** The core a NIC is pinned to. */
    des::Core &nicCore(unsigned i) { return *cores_[nodes_[i]->core_idx]; }

    /** Contention counters of the context-global locks. */
    const des::SimSpinlock::Stats &iovaLockStats()
    {
        return ctx_.iovaLock().stats();
    }
    const des::SimSpinlock::Stats &invalLockStats()
    {
        return ctx_.invalLock().stats();
    }

    // ---- device lifecycle ----------------------------------------------
    /**
     * Surprise hot-unplug of NIC @p i: the device vanishes mid-burst
     * (scheduled device events die), stops answering invalidations,
     * and the bus reports it gone (handle force-detached). Mapping
     * recovery is removeCleanupNic()'s job.
     */
    void surpriseUnplugNic(unsigned i);

    /** Driver response to the hotplug notification: unmap all
     * orphaned mappings through the detached handle (charged work —
     * strict modes eat invalidation time-outs here). */
    void removeCleanupNic(unsigned i);

    /** Re-attach the handle (recovering the invalidation queue if the
     * unplug wedged it) and bring the NIC back up. */
    Status replugNic(unsigned i);

    /**
     * Orderly quiesce of NIC @p i, in protocol order: stop posting,
     * drain, unmap all, flush invalidations, detach. Each completed
     * phase is journaled.
     */
    Status quiesceNic(unsigned i);

    /**
     * The same journaled five-phase protocol for a handle attached
     * via attachDeviceHandle() (whose device model lives outside this
     * Machine, e.g. a Cluster's RDMA NIC). The caller must have
     * stopped posting and drained the device before calling; the
     * kStopPosting/kDrain phases are journaled here so the protocol
     * reads identically in the log. Journal entries carry the index
     * numNics() + k for extra handle k.
     *
     * @p detach false runs the protocol without the final BDF detach:
     * the device stays attached to the machine (live migration — the
     * guest leaves, the NIC does not), so a subsequent stray DMA is
     * judged by the protection mode alone instead of bouncing off the
     * use-after-detach guard.
     */
    Status quiesceHandle(dma::DmaHandle &h, unsigned core_idx = 0,
                         bool detach = true);

    /** Arm surprise-unplug churn (no-op at rate 0; see
     * LifecycleChurnConfig). Call after bringUp(). */
    void armLifecycleChurn(const LifecycleChurnConfig &cfg);

    /** Stop generating churn events so the event queue can drain
     * (workloads call this when their measurement target is hit). */
    void disarmLifecycleChurn() { churn_.events_per_ms = 0.0; }

    const std::vector<LifecycleLogEntry> &lifecycleLog() const
    {
        return lifecycle_log_;
    }
    const LifecycleStats &lifecycleStats() const
    {
        return lifecycle_stats_;
    }

    /** Use-after-detach fault records across all device handles. */
    u64 detachFaultCount() const;

    // ---- fault recovery & injection -----------------------------------
    /** Recovery policy for every current and future device handle. */
    void setFaultPolicy(dma::FaultPolicy policy);

    /**
     * Arm deterministic fault injection on every current and future
     * handle at @p rate. Each handle's Rng stream is seeded from
     * @p seed and its BDF, so multi-device runs stay deterministic
     * regardless of attach order. rate = 0 disarms.
     */
    void setFaultInjection(double rate, u64 seed);

    /** Aggregate fault/recovery counters across all handles. */
    dma::FaultStats faultStats() const;

  private:
    struct Node
    {
        // By value: callers may pass temporaries; devices keep
        // pointing at this stable copy.
        const nic::NicProfile profile;
        unsigned core_idx;
        std::unique_ptr<dma::DmaHandle> handle;
        std::unique_ptr<trace::RecordingDmaHandle> recorder;
        std::unique_ptr<nic::Nic> nic;

        Node(const nic::NicProfile &p, unsigned c)
            : profile(p), core_idx(c)
        {
        }
    };

    iommu::Bdf nextBdf();

    /** Push the machine-wide fault config down into one handle. */
    void applyFaultConfig(dma::DmaHandle &handle);

    void journal(unsigned nic_idx, LifecyclePhase phase);
    void journalAt(dma::DmaHandle &h, unsigned core_idx,
                   unsigned log_idx, LifecyclePhase phase);
    void scheduleChurnEvent();
    void churnEvent();

    des::Simulator &sim_;
    dma::ProtectionMode mode_;
    dma::DmaContext ctx_;
    std::vector<std::unique_ptr<des::Core>> cores_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<dma::DmaHandle>> extra_handles_;
    u8 next_dev_ = 3; //!< next PCI device number (bus 0, fn 0)
    dma::FaultPolicy fault_policy_ = dma::FaultPolicy::kAbort;
    double fault_rate_ = 0.0;
    u64 fault_seed_ = 1;

    LifecycleChurnConfig churn_;
    Rng churn_rng_;
    std::vector<LifecycleLogEntry> lifecycle_log_;
    LifecycleStats lifecycle_stats_;
};

} // namespace rio::sys

#endif // RIO_SYS_MACHINE_H
