/**
 * @file
 * Machine: one simulated host — memory + IOMMUs (DmaContext), a
 * single core (the paper's servers are configured to use one core,
 * §5.1), a DMA handle implementing the chosen protection mode, and a
 * NIC. Workloads are built on top of one or two Machines sharing a
 * discrete-event Simulator.
 */
#ifndef RIO_SYS_MACHINE_H
#define RIO_SYS_MACHINE_H

#include <memory>

#include "des/core.h"
#include "des/simulator.h"
#include "dma/dma_context.h"
#include "nic/nic.h"
#include "trace/trace.h"

namespace rio::sys {

/** A host under a given protection mode with one NIC. */
class Machine
{
  public:
    /**
     * @param trace when non-null, every map/unmap/device access of
     * this machine's NIC is recorded (for the §5.4 prefetcher study).
     */
    Machine(des::Simulator &sim, dma::ProtectionMode mode,
            const nic::NicProfile &profile,
            const cycles::CostModel &cost = cycles::defaultCostModel(),
            trace::DmaTrace *trace = nullptr);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Bring the NIC up (ring allocation, Rx prefill). Do this before
     * starting a workload; init-time charges precede any measurement
     * window. */
    void bringUp() { nic_.bringUp(); }

    des::Simulator &sim() { return sim_; }
    des::Core &core() { return core_; }
    cycles::CycleAccount &acct() { return core_.acct(); }
    dma::DmaContext &ctx() { return ctx_; }
    dma::DmaHandle &handle() { return *handle_; }
    nic::Nic &nic() { return nic_; }
    dma::ProtectionMode mode() const { return mode_; }
    const nic::NicProfile &profile() const { return profile_; }
    const cycles::CostModel &cost() const { return ctx_.cost(); }

  private:
    des::Simulator &sim_;
    dma::ProtectionMode mode_;
    // By value: callers may pass temporaries; devices keep pointing
    // at this stable copy.
    const nic::NicProfile profile_;
    dma::DmaContext ctx_;
    des::Core core_;
    std::unique_ptr<dma::DmaHandle> handle_;
    std::unique_ptr<trace::RecordingDmaHandle> recorder_;
    nic::Nic nic_;
};

} // namespace rio::sys

#endif // RIO_SYS_MACHINE_H
