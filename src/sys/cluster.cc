#include "sys/cluster.h"

#include "base/logging.h"

namespace rio::sys {

Cluster::Cluster(const ClusterConfig &cfg)
    : cfg_(cfg), engine_(cfg.threads)
{
    RIO_ASSERT(cfg_.machines >= 1, "empty cluster");
    RIO_ASSERT(!cfg_.wire.armed() || cfg_.reliability.enabled,
               "hostile wire without the reliability layer would stall "
               "the closed loop forever");
    // Conservative lookahead: every wire crossing pays at least
    // wire_ns beyond the sender's now, so this is a valid lower bound
    // (serialization only adds). Must precede the first sendTo.
    engine_.setLookahead(cfg_.profile.wire_ns);

    const std::vector<u32> ring_sizes =
        rdma::ringSizes(cfg_.profile, cfg_.max_qps);
    machines_.reserve(cfg_.machines);
    nics_.reserve(cfg_.machines);
    for (unsigned m = 0; m < cfg_.machines; ++m) {
        des::Lane &lane = engine_.addLane();
        machines_.push_back(std::make_unique<Machine>(
            lane.sim(), cfg_.mode, /*ncores=*/1u));
        Machine &mach = *machines_.back();
        dma::DmaHandle &handle = mach.attachDeviceHandle(0, ring_sizes);
        handles_.push_back(&handle);
        if (dma::modeUsesRiommu(cfg_.mode))
            mach.ctx().riommu().setRdCache(cfg_.rdcache);
        handle.setIovaCoreCache(cfg_.iova_cache_rounds);
        if (cfg_.fault_rate > 0.0)
            mach.setFaultInjection(cfg_.fault_rate, cfg_.fault_seed);
        nics_.push_back(std::make_unique<rdma::RdmaNic>(
            lane.sim(), mach.core(0), mach.ctx().memory(), handle,
            cfg_.profile, cfg_.max_qps, m));
        nics_.back()->setReliability(cfg_.reliability);
        if (cfg_.migration) {
            // Hypervisor NIC (id = machines + m): the migration
            // stream's own verbs stack behind the same IOMMU and core.
            dma::DmaHandle &mh = mach.attachDeviceHandle(
                0, rdma::ringSizes(cfg_.profile, cfg_.mig_qps));
            mig_handles_.push_back(&mh);
            mh.setIovaCoreCache(cfg_.iova_cache_rounds);
            mig_nics_.push_back(std::make_unique<rdma::RdmaNic>(
                lane.sim(), mach.core(0), mach.ctx().memory(), mh,
                cfg_.profile, cfg_.mig_qps, cfg_.machines + m));
            mig_nics_.back()->setReliability(cfg_.reliability);
        }
    }
    // Hostile wire, when armed: each machine owns an ingress port
    // living on its *own* lane — faults and congestion are decided in
    // the destination lane's deterministic mail-drain order.
    if (cfg_.wire.armed()) {
        ports_.reserve(cfg_.machines);
        for (unsigned m = 0; m < cfg_.machines; ++m) {
            ports_.push_back(std::make_unique<WirePort>(
                engine_.lane(m).sim(), cfg_.wire, *nics_[m], m,
                machines_[m]->core(0).obsPid(),
                machines_[m]->core(0).obsTid()));
            if (cfg_.migration)
                ports_.back()->setAltTarget(mig_nics_[m].get());
        }
    }
    // The wire: a send from NIC i lands in lane(dst) at the
    // pre-computed arrival time. The target NIC is touched only from
    // its own lane's callbacks — the ParallelEngine handoff contract.
    // Unarmed, the hook is byte-identical to the lossless wire.
    // NIC id space: guest NICs are 0..machines-1, hypervisor NICs
    // machines..2*machines-1; both live on lane (id % machines).
    const unsigned nmach = cfg_.machines;
    auto installSend = [this, nmach](rdma::RdmaNic *src, unsigned m) {
        if (cfg_.wire.armed()) {
            src->setSendFn([this, m, nmach](u32 dst, Nanos when,
                                            rdma::WireMsg msg) {
                const unsigned dm = dst % nmach;
                RIO_ASSERT(dst < (hasMigration() ? 2 : 1) * nmach,
                           "send to unknown machine");
                WirePort *port = ports_[dm].get();
                engine_.lane(m).sendTo(
                    engine_.lane(dm), when,
                    [port, msg = std::move(msg)]() mutable {
                        port->deliver(std::move(msg));
                    });
            });
            return;
        }
        src->setSendFn([this, m, nmach](u32 dst, Nanos when,
                                        rdma::WireMsg msg) {
            const unsigned dm = dst % nmach;
            RIO_ASSERT(dst < (hasMigration() ? 2 : 1) * nmach,
                       "send to unknown machine");
            rdma::RdmaNic *target = dst < nmach ? nics_[dm].get()
                                                : mig_nics_[dm].get();
            engine_.lane(m).sendTo(
                engine_.lane(dm), when,
                [target, msg = std::move(msg)] { target->fromWire(msg); });
        });
    };
    for (unsigned m = 0; m < cfg_.machines; ++m) {
        installSend(nics_[m].get(), m);
        if (cfg_.migration)
            installSend(mig_nics_[m].get(), m);
    }
}

void
Cluster::bringUp()
{
    for (auto &nic : nics_)
        nic->bringUp();
    for (auto &nic : mig_nics_)
        nic->bringUp();
}

void
Cluster::quiesce()
{
    for (unsigned m = 0; m < size(); ++m) {
        // A migrated-away source's guest handle is already detached
        // (five-phase quiesce during blackout); leave it be.
        if (!handles_[m]->detached()) {
            nics_[m]->quiesceAll();
            handles_[m]->quiesceFlush();
        }
        if (hasMigration()) {
            mig_nics_[m]->quiesceAll();
            if (!mig_handles_[m]->detached())
                mig_handles_[m]->quiesceFlush();
        }
    }
}

dma::LeakReport
Cluster::checkLeaks(unsigned m) const
{
    return machines_[m]->ctx().checkHandleLeaks(*handles_[m]);
}

dma::LeakReport
Cluster::checkMigLeaks(unsigned m) const
{
    return machines_[m]->ctx().checkHandleLeaks(*mig_handles_[m]);
}

} // namespace rio::sys
