#include "sys/cluster.h"

#include "base/logging.h"

namespace rio::sys {

Cluster::Cluster(const ClusterConfig &cfg)
    : cfg_(cfg), engine_(cfg.threads)
{
    RIO_ASSERT(cfg_.machines >= 1, "empty cluster");
    RIO_ASSERT(!cfg_.wire.armed() || cfg_.reliability.enabled,
               "hostile wire without the reliability layer would stall "
               "the closed loop forever");
    // Conservative lookahead: every wire crossing pays at least
    // wire_ns beyond the sender's now, so this is a valid lower bound
    // (serialization only adds). Must precede the first sendTo.
    engine_.setLookahead(cfg_.profile.wire_ns);

    const std::vector<u32> ring_sizes =
        rdma::ringSizes(cfg_.profile, cfg_.max_qps);
    machines_.reserve(cfg_.machines);
    nics_.reserve(cfg_.machines);
    for (unsigned m = 0; m < cfg_.machines; ++m) {
        des::Lane &lane = engine_.addLane();
        machines_.push_back(std::make_unique<Machine>(
            lane.sim(), cfg_.mode, /*ncores=*/1u));
        Machine &mach = *machines_.back();
        dma::DmaHandle &handle = mach.attachDeviceHandle(0, ring_sizes);
        handles_.push_back(&handle);
        if (dma::modeUsesRiommu(cfg_.mode))
            mach.ctx().riommu().setRdCache(cfg_.rdcache);
        handle.setIovaCoreCache(cfg_.iova_cache_rounds);
        if (cfg_.fault_rate > 0.0)
            mach.setFaultInjection(cfg_.fault_rate, cfg_.fault_seed);
        nics_.push_back(std::make_unique<rdma::RdmaNic>(
            lane.sim(), mach.core(0), mach.ctx().memory(), handle,
            cfg_.profile, cfg_.max_qps, m));
        nics_.back()->setReliability(cfg_.reliability);
    }
    // Hostile wire, when armed: each machine owns an ingress port
    // living on its *own* lane — faults and congestion are decided in
    // the destination lane's deterministic mail-drain order.
    if (cfg_.wire.armed()) {
        ports_.reserve(cfg_.machines);
        for (unsigned m = 0; m < cfg_.machines; ++m)
            ports_.push_back(std::make_unique<WirePort>(
                engine_.lane(m).sim(), cfg_.wire, *nics_[m], m,
                machines_[m]->core(0).obsPid(),
                machines_[m]->core(0).obsTid()));
    }
    // The wire: a send from NIC i lands in lane(dst) at the
    // pre-computed arrival time. The target NIC is touched only from
    // its own lane's callbacks — the ParallelEngine handoff contract.
    // Unarmed, the hook is byte-identical to the lossless wire.
    for (unsigned m = 0; m < cfg_.machines; ++m) {
        rdma::RdmaNic *src = nics_[m].get();
        if (cfg_.wire.armed()) {
            src->setSendFn(
                [this, m](u32 dst, Nanos when, rdma::WireMsg msg) {
                    RIO_ASSERT(dst < machines_.size(),
                               "send to unknown machine");
                    WirePort *port = ports_[dst].get();
                    engine_.lane(m).sendTo(
                        engine_.lane(dst), when,
                        [port, msg = std::move(msg)]() mutable {
                            port->deliver(std::move(msg));
                        });
                });
            continue;
        }
        src->setSendFn([this, m](u32 dst, Nanos when, rdma::WireMsg msg) {
            RIO_ASSERT(dst < machines_.size(), "send to unknown machine");
            rdma::RdmaNic *target = nics_[dst].get();
            engine_.lane(m).sendTo(
                engine_.lane(dst), when,
                [target, msg = std::move(msg)] { target->fromWire(msg); });
        });
    }
}

void
Cluster::bringUp()
{
    for (auto &nic : nics_)
        nic->bringUp();
}

void
Cluster::quiesce()
{
    for (unsigned m = 0; m < size(); ++m) {
        nics_[m]->quiesceAll();
        handles_[m]->quiesceFlush();
    }
}

dma::LeakReport
Cluster::checkLeaks(unsigned m) const
{
    return machines_[m]->ctx().checkHandleLeaks(*handles_[m]);
}

} // namespace rio::sys
