/**
 * @file
 * Hostile-wire model for sys::Cluster: a seeded fault injector
 * (Bernoulli drop / duplicate / bounded extra delay) plus a bounded
 * ingress port per destination machine whose overflow under incast
 * drops messages — congestion without any randomness.
 *
 * Placement and determinism: all state is *receiver-side* and
 * lane-local. The cluster's send hook still ships every message
 * through the ParallelEngine mailbox at the sender-computed arrival
 * time (>= lookahead, as before); the fault model runs inside the
 * delivered callback on the destination lane, where mail is drained
 * in the engine's fixed (when, src lane, seq) order. RNG draws
 * therefore happen in an order independent of the worker-thread
 * count, and re-deliveries (duplicates, delays, queue drains) are
 * plain lane-local scheduleAt events — no second lookahead crossing
 * is ever needed. `--threads 1` ≡ `--threads N` byte-for-byte, the
 * same contract the lossless wire had (DESIGN.md §14).
 *
 * Inertness: every knob is gated on `rate > 0`, so the default
 * config draws zero random numbers and the Cluster bypasses the
 * port entirely (bit-for-bit identical to the lossless wire; pinned
 * by the golden_wire ctest).
 *
 * Scope: faults apply to the RDMA *data plane* only (kWrite/kRead/
 * kReadResp/kAck/kNak/kNakSeq). Connection management (connect/
 * accept/close/error notify) models an out-of-band reliable CM
 * channel, as real RDMA CM runs over its own retransmitting
 * transport — otherwise a dropped handshake would wedge a QP
 * forever in a layer that has no timer to notice.
 */
#ifndef RIO_SYS_WIRE_H
#define RIO_SYS_WIRE_H

#include "base/rng.h"
#include "base/types.h"
#include "des/simulator.h"
#include "rdma/rdma.h"

namespace rio::sys {

/** Knobs of the hostile wire; defaults are fully inert. */
struct WireFaultConfig
{
    double drop_rate = 0.0; //!< Bernoulli loss per data-plane message
    double dup_rate = 0.0;  //!< Bernoulli duplication (copy re-enters
                            //!< the port after a delay draw)
    double delay_rate = 0.0; //!< Bernoulli extra-delay injection

    /** Extra delay drawn uniform in [min, max]. The minimum defaults
     * to the profile wire latency (= the engine lookahead), honoring
     * the "all added latency >= lookahead" contract even though the
     * receiver-side placement would tolerate any value. */
    Nanos delay_min_ns = 600;
    Nanos delay_max_ns = 5000;

    u64 seed = 1;

    /** Bounded ingress port: >0 arms the congestion model. Messages
     * are serialized through the destination port at @p port_gbps
     * (+ fixed per-message overhead); arrivals beyond @p ingress_cap
     * queued messages are tail-dropped. Purely deterministic. */
    u32 ingress_cap = 0;
    double port_gbps = 40.0;
    Nanos port_overhead_ns = 50;

    bool
    armed() const
    {
        return drop_rate > 0.0 || dup_rate > 0.0 || delay_rate > 0.0 ||
               ingress_cap > 0;
    }
};

/** Per-destination-port counters (summed by the bench). */
struct WireStats
{
    u64 data_seen = 0;   //!< data-plane messages entering the port
    u64 delivered = 0;   //!< handed to the NIC (incl. duplicates)
    u64 drops = 0;       //!< Bernoulli losses
    u64 dups = 0;        //!< duplicates injected
    u64 delays = 0;      //!< extra-delay injections
    u64 congestion_drops = 0; //!< ingress-queue tail drops
    u64 peak_queue = 0;  //!< high-water mark of the ingress queue
};

/**
 * One machine's ingress port. Owned by the Cluster, touched only
 * from the destination lane's callbacks.
 */
class WirePort
{
  public:
    /** @p obs_pid / @p obs_tid: timeline track of the destination
     * machine's core, for ingress-queueing spans (0 = unlabeled). */
    WirePort(des::Simulator &sim, const WireFaultConfig &cfg,
             rdma::RdmaNic &target, unsigned machine, u16 obs_pid = 0,
             u16 obs_tid = 0);

    WirePort(const WirePort &) = delete;
    WirePort &operator=(const WirePort &) = delete;

    /** Deliver @p msg through the fault model (dst-lane context). */
    void deliver(rdma::WireMsg msg);

    /**
     * Second NIC behind the same port (the machine's hypervisor
     * migration NIC): messages whose dst_nic matches it are routed
     * there, so migration traffic shares — and contends for — the
     * guest port's ingress queue and fault stream.
     */
    void setAltTarget(rdma::RdmaNic *alt) { alt_ = alt; }

    const WireStats &stats() const { return stats_; }

  private:
    static bool isDataPlane(rdma::MsgKind kind);
    rdma::RdmaNic &sink(const rdma::WireMsg &msg);
    Nanos delayDraw();
    Nanos serviceNs(const rdma::WireMsg &msg) const;
    void enqueue(rdma::WireMsg msg);

    des::Simulator &sim_;
    const WireFaultConfig cfg_; //!< stable copy
    rdma::RdmaNic &target_;
    rdma::RdmaNic *alt_ = nullptr;
    Rng rng_;
    u16 obs_pid_;
    u16 obs_tid_;
    u32 queued_ = 0;
    Nanos busy_until_ = 0;
    WireStats stats_;
};

} // namespace rio::sys

#endif // RIO_SYS_WIRE_H
