/**
 * @file
 * Cluster: N Machines — one per ParallelEngine lane — each carrying
 * one RdmaNic, connected all-to-all by a constant-latency wire. The
 * scale-out companion to sys::Machine: where Machine reproduces the
 * paper's single-host testbed, Cluster is the fabric on which
 * bench_cluster_rdma measures how the rIOMMU flat-table advantage
 * erodes as per-connection rings multiply (thousands of QPs = 2x
 * thousands of rRINGs per rDEVICE) and per-ring bursts shrink toward
 * one completion per invalidation.
 *
 * Wire model: every message pays profile.wire_ns one-way latency plus
 * RoCE serialization; wire_ns doubles as the engine's conservative
 * lookahead, so lanes run whole windows in parallel and runs are
 * byte-identical for any --threads value (the ParallelEngine
 * determinism contract, re-asserted by cluster_test and the
 * golden_cluster ctest).
 */
#ifndef RIO_SYS_CLUSTER_H
#define RIO_SYS_CLUSTER_H

#include <memory>
#include <vector>

#include "des/parallel.h"
#include "dma/dma_context.h"
#include "rdma/rdma.h"
#include "sys/machine.h"
#include "sys/wire.h"

namespace rio::sys {

/** Knobs of a Cluster build; defaults give a 2-machine smoke rig. */
struct ClusterConfig
{
    unsigned machines = 2;
    unsigned threads = 1; //!< ParallelEngine workers
    dma::ProtectionMode mode = dma::ProtectionMode::kRiommu;
    rdma::RdmaProfile profile = rdma::rnicProfile();
    u32 max_qps = 64; //!< QP slots per machine (initiated + accepted)

    /** rDEVICE descriptor-fetch model + optional hot tier, applied to
     * each machine's rIOMMU (ignored by non-rIOMMU modes). */
    riommu::RdCacheConfig rdcache;

    /** Per-core magazine-pair depth for the "+" allocator modes
     * (0 = legacy per-handle depot); no-op elsewhere. */
    u32 iova_cache_rounds = 0;

    /** Deterministic DMA fault injection on every handle (0 = off). */
    double fault_rate = 0.0;
    u64 fault_seed = 1;

    /** Hostile-wire faults/congestion (defaults inert; see wire.h).
     * Arming any knob requires reliability.enabled — a drop with no
     * retransmit layer stalls the closed-loop workload forever. */
    WireFaultConfig wire;

    /** RoCE-style retransmit/RTO/QP-error layer (default off). */
    rdma::ReliabilityConfig reliability;

    /**
     * Live-migration overlay (default off — byte-for-bit inert): each
     * machine additionally carries a *hypervisor* NIC (id = machines
     * + m) with its own DMA handle, on which a migrate::Migrator runs
     * the pre-copy stream. It shares the machine's core, IOMMU, and —
     * under a hostile wire — the destination's ingress port, so
     * migration traffic contends with guest traffic end to end.
     */
    bool migration = false;
    u32 mig_qps = 4; //!< QP slots on each hypervisor NIC
};

/** N machines on a wire; see file header. */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &cfg);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    unsigned size() const { return static_cast<unsigned>(machines_.size()); }
    const ClusterConfig &config() const { return cfg_; }

    Machine &machine(unsigned m) { return *machines_[m]; }
    rdma::RdmaNic &nic(unsigned m) { return *nics_[m]; }
    dma::DmaHandle &handle(unsigned m) { return *handles_[m]; }

    // ---- migration overlay (valid only with cfg.migration) -------------
    bool hasMigration() const { return !mig_nics_.empty(); }
    rdma::RdmaNic &migNic(unsigned m) { return *mig_nics_[m]; }
    dma::DmaHandle &migHandle(unsigned m) { return *mig_handles_[m]; }
    des::ParallelEngine &engine() { return engine_; }
    des::Lane &lane(unsigned m) { return engine_.lane(m); }

    /** Map every NIC's CQ. Call once before traffic. */
    void bringUp();

    /** Run all lanes until idle / until @p deadline. */
    void run() { engine_.run(); }
    void runUntil(Nanos deadline) { engine_.runUntil(deadline); }

    /**
     * End-of-run cleanup: force-unmap every NIC's surviving state and
     * push out deferred invalidations, so checkLeaks() on a healthy
     * run reports clean handles.
     */
    void quiesce();

    /** Stale-mapping/IOTLB audit of machine @p m's RDMA handle. */
    dma::LeakReport checkLeaks(unsigned m) const;

    /** Same audit for machine @p m's hypervisor (migration) handle. */
    dma::LeakReport checkMigLeaks(unsigned m) const;

    /** Sum of a stat over all NICs, e.g. totals(&RdmaStats::posts). */
    u64
    total(u64 rdma::RdmaStats::*field) const
    {
        u64 sum = 0;
        for (const auto &nic : nics_)
            sum += nic->stats().*field;
        return sum;
    }

    /** Same sum over the hypervisor NICs (0 when the overlay is off). */
    u64
    migTotal(u64 rdma::RdmaStats::*field) const
    {
        u64 sum = 0;
        for (const auto &nic : mig_nics_)
            sum += nic->stats().*field;
        return sum;
    }

    /** Sum of a wire-port stat over all machines (0 when unarmed). */
    u64
    wireTotal(u64 WireStats::*field) const
    {
        u64 sum = 0;
        for (const auto &port : ports_)
            sum += port->stats().*field;
        return sum;
    }

  private:
    ClusterConfig cfg_;
    des::ParallelEngine engine_;
    std::vector<std::unique_ptr<Machine>> machines_;
    std::vector<dma::DmaHandle *> handles_; //!< owned by the machines
    std::vector<std::unique_ptr<rdma::RdmaNic>> nics_;
    std::vector<std::unique_ptr<WirePort>> ports_; //!< armed wire only
    // Migration overlay (empty unless cfg.migration).
    std::vector<dma::DmaHandle *> mig_handles_;
    std::vector<std::unique_ptr<rdma::RdmaNic>> mig_nics_;
};

} // namespace rio::sys

#endif // RIO_SYS_CLUSTER_H
