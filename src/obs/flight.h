/**
 * @file
 * Flight recorder: the same typed events as the timeline, kept in a
 * small always-on ring regardless of the recording gate, so that when
 * something goes wrong — a DMA fault record, a stale-mapping leak, a
 * QI timeout, a test assertion — the last moments before the failure
 * can be dumped as a self-describing artifact instead of being lost.
 *
 * Dumps are rate-limited (first kDefaultDumpLimit per process reach
 * stderr; all are counted and the most recent texts retained) so a
 * fault-storm bench does not drown in its own diagnostics.
 */
#ifndef RIO_OBS_FLIGHT_H
#define RIO_OBS_FLIGHT_H

#include <string>
#include <vector>

#include "obs/timeline.h"

namespace rio::obs {

/** One completed dump: why it fired and what the ring held. */
struct FlightDump
{
    u64 seq = 0;
    u16 pid = 0; //!< machine label of the newest ring event (origin)
    u16 tid = 0; //!< core/lane label of the newest ring event
    std::string reason;
    std::string text; //!< one line per event, oldest first
};

/** The always-on low-capacity ring + its dump machinery. */
class FlightRecorder
{
  public:
    static constexpr size_t kDefaultCapacity = 256;
    static constexpr u64 kDefaultDumpLimit = 4;

    FlightRecorder() : ring_(kDefaultCapacity) {}

    /** Called by Timeline::emit for every event, always. */
    void record(const Event &e) { ring_.push(e); }

    /**
     * Fire a dump: snapshot the ring as text, keep it (up to the dump
     * limit), and print the first few to stderr. Returns the dump
     * sequence number (1-based).
     */
    u64 dump(const std::string &reason);

    /** Render the current ring contents without firing a dump. */
    std::string renderText() const;

    u64 dumpCount() const { return dump_seq_; }
    const std::vector<FlightDump> &dumps() const { return dumps_; }
    const FlightDump *lastDump() const
    {
        return dumps_.empty() ? nullptr : &dumps_.back();
    }

    /** Dumps reaching stderr / retained in dumps() (tests raise it). */
    void setDumpLimit(u64 n) { dump_limit_ = n; }

    void setCapacity(size_t n);
    const EventRing &ring() const { return ring_; }

    void clear();

  private:
    EventRing ring_;
    u64 dump_seq_ = 0;
    u64 dump_limit_ = kDefaultDumpLimit;
    std::vector<FlightDump> dumps_;
};

/** The calling thread's flight recorder (fed by the global
 * timeline). Thread-local so lanes record without locking; in a
 * single-threaded run it behaves exactly like the old process-wide
 * singleton. Only the hot record() path is thread-confined: every
 * retained dump is also published to the process-wide archive below,
 * so a dump fired on a worker-lane thread survives the pool and is
 * visible to main-thread post-mortem inspection and trace export. */
FlightRecorder &flightRecorder();

/**
 * Process-wide dump archive: a copy of every retained FlightDump, in
 * publication order, regardless of which thread's recorder fired it.
 * This is what Timeline::writeChromeTrace embeds and what post-run
 * inspection should read — per-recorder dumps() only sees the calling
 * thread's own dumps. Each recorder's dump limit bounds what it
 * publishes.
 */
std::vector<FlightDump> flightDumpArchive();

/** Drop everything published to the archive (tests/bench resets). */
void clearFlightDumpArchive();

/**
 * Convenience trigger used by the failure paths: fire a flight dump
 * (subject to the rate limit) and mirror it into the timeline as an
 * instant event so `--timeline` output carries the dump marker.
 * No-op (returns 0) when observability is compiled out.
 */
u64 flightDump(const std::string &reason);

/** Render one event as the flight recorder's text line (tests). */
std::string eventLine(const Event &e);

} // namespace rio::obs

#endif // RIO_OBS_FLIGHT_H
