/**
 * @file
 * Virtual-time event timeline: typed trace events pushed into
 * per-core bounded rings as the simulation runs, exported as Chrome
 * trace_event JSON so a run opens directly in Perfetto — one track
 * per (machine, core), async arrows for QI issue→complete spans.
 *
 * Gating, from cheapest to most detailed:
 *  - compiled out entirely with -DRIO_OBS=OFF (RIO_OBS_ENABLED=0):
 *    emit() collapses to nothing;
 *  - compiled in, recording off (the default): every event still
 *    lands in the small always-on flight-recorder ring (see
 *    flight.h), but the big per-core rings stay empty;
 *  - recording on (`--timeline out.json` on any bench, or
 *    setRecording(true)): events are kept per core and exported.
 *
 * Like the metrics registry, emitting an event charges zero simulated
 * cycles and draws zero RNG values; timelines are a pure projection
 * of the deterministic replay.
 */
#ifndef RIO_OBS_TIMELINE_H
#define RIO_OBS_TIMELINE_H

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/types.h"

#ifndef RIO_OBS_ENABLED
#define RIO_OBS_ENABLED 1
#endif

namespace rio::obs {

/** Compile-time master switch (the RIO_OBS CMake option). */
inline constexpr bool kObsCompiled = RIO_OBS_ENABLED != 0;

/** What happened. Keep in sync with evName()/evPhase(). */
enum class Ev : u8 {
    kMap = 0,      //!< DMA map completed (span; dur = driver cycles)
    kUnmap,        //!< DMA unmap completed (span)
    kQiIssue,      //!< invalidation submitted (async span begin)
    kQiComplete,   //!< invalidation wait landed (async span end)
    kQiTimeout,    //!< invalidation wait never landed (instant)
    kFault,        //!< device access faulted (instant)
    kQuiescePhase, //!< lifecycle phase journaled (instant; arg=phase)
    kLockAcquire,  //!< contended lock granted (span; dur = spin wait)
    kLockRelease,  //!< lock released (instant)
    kFlightDump,   //!< flight recorder fired (instant; arg=dump #)
    kVmExit,       //!< guest trapped to the hypervisor (span; arg=reason)
    kQpError,      //!< RDMA QP entered error state (instant; arg=qp)
    kOpPost,       //!< traced op injected (async-nestable begin; arg=bytes)
    kOpCqe,        //!< terminal CQE closed the op (async end; arg=latency)
    kWireTx,       //!< wire transit (async span; dur = transit+serialize)
    kIngressQ,     //!< ingress port queueing (async span; dur = wait)
    kRetransmit,   //!< go-back-N replay episode (instant; arg=psn)
    kTargetWalk,   //!< remote access walked the target IOMMU (instant)
    kMigPhase,     //!< live-migration phase edge (instant; arg=phase)
    kNumEvents
};

/** Short stable name ("map", "qi_issue", ...). */
const char *evName(Ev ev);

/** One timeline event (compact POD; rings hold millions). */
struct Event
{
    Nanos t = 0;   //!< virtual end time of the event
    u64 arg = 0;   //!< pfn / phase / wait cycles / reason-specific
    u64 dur_ns = 0; //!< span length; 0 for instants
    u64 trace = 0; //!< owning distributed trace id; 0 = none (emit()
                   //!< fills it from the thread's current TraceScope)
    u64 arg2 = 0;  //!< second event-specific payload (psn, status, ...)
    u32 id = 0;    //!< async span id pairing kQiIssue/kQiComplete
    u16 pid = 0;   //!< track group: machine ordinal
    u16 tid = 0;   //!< track: core ordinal within the machine
    u16 bdf = 0;   //!< packed requester id, 0 if n/a
    u16 rid = 0;   //!< ring id, 0 if n/a
    Ev kind = Ev::kMap;
};

/** Bounded ring: keeps the newest @p capacity events, counts drops. */
class EventRing
{
  public:
    explicit EventRing(size_t capacity) : capacity_(capacity) {}

    void
    push(const Event &e)
    {
        if (buf_.size() < capacity_) {
            buf_.push_back(e);
        } else {
            buf_[next_] = e;
            next_ = (next_ + 1) % capacity_;
            ++dropped_;
        }
        ++pushed_;
    }

    /** Events oldest-first. */
    std::vector<Event> inOrder() const;

    u64 pushed() const { return pushed_; }
    u64 dropped() const { return dropped_; }
    size_t size() const { return buf_.size(); }
    void clear() { buf_.clear(); next_ = 0; pushed_ = dropped_ = 0; }

  private:
    size_t capacity_;
    size_t next_ = 0; //!< overwrite cursor once full
    u64 pushed_ = 0;
    u64 dropped_ = 0;
    std::vector<Event> buf_;
};

/**
 * The process-wide timeline: one bounded ring per (machine, core)
 * track, populated only while recording. Track ids are handed out by
 * allocPid() so independent Machines in one bench do not collide.
 */
class Timeline
{
  public:
    bool
    recording() const
    {
        return kObsCompiled &&
               recording_.load(std::memory_order_relaxed);
    }
    void
    setRecording(bool on)
    {
        recording_.store(on, std::memory_order_relaxed);
    }

    /** Ring capacity per (pid, tid) track (newest events win).
     * Main-thread-only: set before lanes start. */
    void setCapacity(size_t per_track);
    size_t capacity() const { return capacity_; }

    /** Next unused track-group id (one per Machine). Atomic as a
     * safety net, but determinism requires what every bench does:
     * construct all Machines sequentially on the main thread during
     * setup, before any lane runs — then pid assignment is fixed by
     * construction order, independent of thread count. */
    u16
    allocPid()
    {
        return next_pid_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Unique id for pairing async issue/complete events — fallback
     * for emitters with no core context only. Instrumentation running
     * on a simulated core must use des::Core::nextSpanId() instead:
     * this shared counter hands out ids in thread-schedule order, so
     * ids drawn here are only reproducible single-threaded. */
    u32
    nextSpanId()
    {
        return next_span_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /** Record @p e (flight ring always; per-core ring if recording).
     * Defined in flight.cc to avoid a header cycle. */
    void emit(const Event &e);

    /** All recorded events, grouped per track, oldest-first. */
    std::map<u32, std::vector<Event>> tracks() const;

    /** Total events recorded into (and dropped from) track rings. */
    u64 recorded() const;
    u64 dropped() const;

    /** Drop all recorded events and reset track/span ids. */
    void clear();

    /**
     * Export everything recorded (plus any flight-recorder dumps) as
     * Chrome trace_event JSON for Perfetto. False on I/O error.
     */
    bool writeChromeTrace(const std::string &path) const;

  private:
    std::atomic<bool> recording_{false};
    size_t capacity_ = 1u << 16;
    std::atomic<u16> next_pid_{1};
    std::atomic<u32> next_span_{0};
    /** Guards rings_ — only taken while recording (the default-off
     * path touches no shared state beyond the thread-local flight
     * ring). */
    mutable std::mutex mu_;
    std::map<u32, EventRing> rings_; //!< key = pid<<16 | tid
};

/** The global timeline every instrumentation point uses. */
Timeline &timeline();

} // namespace rio::obs

#endif // RIO_OBS_TIMELINE_H
