/**
 * @file
 * Deferred metric accumulators: the registry's counters are shared
 * atomics and its histograms take a spinlock, which is cheap — but
 * the translate/map/unmap fast path hits some of them once per
 * *reference* (IOTLB hits, page-walk level reads), so even a relaxed
 * fetch_add each shows up in bench_selfperf. A Deferred* wrapper
 * accumulates those updates in plain thread-confined storage and
 * pushes them to the shared metric once per burst.
 *
 * Correctness contract: deferral changes *when* a metric moves, never
 * by how much. Every accumulator flushes at burst boundaries, at its
 * owner's destruction, when deferral is switched off
 * (setDeferredEnabled(false)), before a value reset
 * (Registry::resetValues()), and — the backstop — from
 * flushAllDeferred(), which Registry::snapshot() calls first, so any
 * snapshot (golden JSON, textDump, test assertion via snapshot)
 * always sees fully settled totals.
 *
 * Deferral is an opt-in fast path: it defaults OFF so unit tests can
 * read a counter right after the op that bumps it; the bench harness
 * turns it on (see cycles::setBatchingEnabled), and bench_selfperf
 * ablates it both ways.
 *
 * Thread model: bump()/note() are thread-confined to the owning
 * lane; flushAllDeferred() may only run at a barrier (no lane
 * executing), which is exactly when snapshots are taken.
 */
#ifndef RIO_OBS_DEFERRED_H
#define RIO_OBS_DEFERRED_H

#include <vector>

#include "base/types.h"
#include "obs/registry.h"

namespace rio::obs {

/** Master switch for deferral (cycles::setBatchingEnabled wraps it). */
bool deferredEnabled();
void setDeferredEnabled(bool on);

/**
 * Base for anything holding locally accumulated metric state. The
 * constructor registers the object in a process-wide list so
 * flushAllDeferred() can settle everything before a snapshot.
 */
class Deferred
{
  public:
    Deferred();
    virtual ~Deferred();

    Deferred(const Deferred &) = delete;
    Deferred &operator=(const Deferred &) = delete;

    /** Push all locally held updates into the shared metric. */
    virtual void flush() = 0;
};

/** Settle every live accumulator. Barrier points only. */
void flushAllDeferred();

/**
 * Deferred mirror of one Counter: bump() is a plain add to a local
 * u64; the shared atomic moves once per kFlushEvery bumps or at
 * flush. With deferral disabled it degenerates to Counter::inc.
 */
class DeferredCounter : public Deferred
{
  public:
    static constexpr u64 kFlushEvery = 256;

    explicit DeferredCounter(Counter &target) : target_(target) {}
    ~DeferredCounter() override { DeferredCounter::flush(); }

    void
    bump(u64 n = 1)
    {
        if (!deferredEnabled()) {
            // Self-heal if the global was flipped off without the
            // setter's flush: stranded deltas must land before this
            // direct increment to preserve accumulation order.
            if (pending_)
                flush();
            target_.inc(n);
            return;
        }
        pending_ += n;
        if (pending_ >= kFlushEvery)
            flush();
    }

    void
    flush() override
    {
        if (pending_) {
            target_.inc(pending_);
            pending_ = 0;
        }
    }

    u64 pending() const { return pending_; }

  private:
    Counter &target_;
    u64 pending_ = 0;
};

/**
 * Burst buffer for one Histogram: note() appends to a local vector,
 * endBurst() delivers the whole burst through observeBatch — one lock
 * acquisition per completion burst instead of one per unmap. The
 * final histogram state is the same multiset of observations either
 * way.
 */
class DeferredHistogram : public Deferred
{
  public:
    static constexpr size_t kMaxPending = 1024;

    ~DeferredHistogram() override { DeferredHistogram::flush(); }

    /** Late binding: DmaHandle learns its histogram at bindObs. */
    void
    bind(Histogram *h)
    {
        flush();
        target_ = h;
    }

    void
    note(u64 v)
    {
        if (!target_)
            return;
        if (!deferredEnabled()) {
            // Same self-heal as DeferredCounter::bump: deliver any
            // stranded burst before the direct observation.
            if (!pending_.empty())
                flush();
            target_->observe(v);
            return;
        }
        pending_.push_back(v);
        if (pending_.size() >= kMaxPending)
            flush();
    }

    void endBurst() { flush(); }

    void
    flush() override
    {
        if (target_ && !pending_.empty())
            target_->observeBatch(pending_.data(), pending_.size());
        pending_.clear();
    }

    size_t pendingCount() const { return pending_.size(); }

  private:
    Histogram *target_ = nullptr;
    std::vector<u64> pending_;
};

} // namespace rio::obs

#endif // RIO_OBS_DEFERRED_H
