#include "obs/timeline.h"

#include <cstdio>

#include "base/logging.h"
#include "base/strings.h"
#include "obs/flight.h"
#include "obs/trace_ctx.h"

namespace rio::obs {

const char *
evName(Ev ev)
{
    switch (ev) {
      case Ev::kMap: return "map";
      case Ev::kUnmap: return "unmap";
      case Ev::kQiIssue: return "qi_issue";
      case Ev::kQiComplete: return "qi_complete";
      case Ev::kQiTimeout: return "qi_timeout";
      case Ev::kFault: return "fault";
      case Ev::kQuiescePhase: return "quiesce_phase";
      case Ev::kLockAcquire: return "lock_acquire";
      case Ev::kLockRelease: return "lock_release";
      case Ev::kFlightDump: return "flight_dump";
      case Ev::kVmExit: return "vmexit";
      case Ev::kQpError: return "qp_error";
      case Ev::kOpPost: return "op_post";
      case Ev::kOpCqe: return "op_cqe";
      case Ev::kWireTx: return "wire";
      case Ev::kIngressQ: return "ingress";
      case Ev::kRetransmit: return "retransmit";
      case Ev::kTargetWalk: return "target_walk";
      case Ev::kMigPhase: return "mig_phase";
      case Ev::kNumEvents: break;
    }
    RIO_PANIC("bad Ev");
}

std::vector<Event>
EventRing::inOrder() const
{
    std::vector<Event> out;
    out.reserve(buf_.size());
    for (size_t i = 0; i < buf_.size(); ++i)
        out.push_back(buf_[(next_ + i) % buf_.size()]);
    return out;
}

void
Timeline::setCapacity(size_t per_track)
{
    RIO_ASSERT(per_track > 0, "timeline capacity must be positive");
    capacity_ = per_track;
}

void
Timeline::emit(const Event &e)
{
    if (!kObsCompiled)
        return;
    // Auto-attach the thread's current trace context: any event
    // emitted while a TraceScope is live (a mail delivery, a wire
    // handler, a replay) becomes a child span of that op without the
    // emitter knowing about tracing at all.
    Event rec = e;
    if (rec.trace == 0)
        rec.trace = currentTrace();
    flightRecorder().record(rec);
    if (!recording_.load(std::memory_order_relaxed))
        return;
    const u32 key = (static_cast<u32>(rec.pid) << 16) | rec.tid;
    std::lock_guard<std::mutex> g(mu_);
    auto it = rings_.find(key);
    if (it == rings_.end())
        it = rings_.emplace(key, EventRing(capacity_)).first;
    it->second.push(rec);
}

std::map<u32, std::vector<Event>>
Timeline::tracks() const
{
    std::lock_guard<std::mutex> g(mu_);
    std::map<u32, std::vector<Event>> out;
    for (const auto &[key, ring] : rings_)
        out.emplace(key, ring.inOrder());
    return out;
}

u64
Timeline::recorded() const
{
    std::lock_guard<std::mutex> g(mu_);
    u64 n = 0;
    for (const auto &[key, ring] : rings_)
        n += ring.pushed();
    return n;
}

u64
Timeline::dropped() const
{
    std::lock_guard<std::mutex> g(mu_);
    u64 n = 0;
    for (const auto &[key, ring] : rings_)
        n += ring.dropped();
    return n;
}

void
Timeline::clear()
{
    std::lock_guard<std::mutex> g(mu_);
    rings_.clear();
    next_pid_.store(1, std::memory_order_relaxed);
    next_span_.store(0, std::memory_order_relaxed);
}

namespace {

/** One trace_event object. @p first tracks comma placement. */
void
emitJson(std::FILE *f, bool *first, const std::string &obj)
{
    std::fprintf(f, "%s\n  %s", *first ? "" : ",", obj.c_str());
    *first = false;
}

std::string
argsJson(const Event &e)
{
    std::string out =
        strprintf("{\"bdf\": %u, \"rid\": %u, \"arg\": %llu", e.bdf,
                  e.rid, (unsigned long long)e.arg);
    if (e.arg2)
        out += strprintf(", \"arg2\": %llu", (unsigned long long)e.arg2);
    if (e.trace)
        out += strprintf(", \"trace\": \"0x%llx\"",
                         (unsigned long long)e.trace);
    out += "}";
    return out;
}

/** Async-nestable id shared by every span of one distributed trace:
 * same (cat "op", global id) groups post → wire → walk → CQE across
 * machine tracks into a single stitched tree in Perfetto. */
std::string
traceId2(const Event &e)
{
    return strprintf("{\"global\": \"0x%llx\"}",
                     (unsigned long long)e.trace);
}

} // namespace

bool
Timeline::writeChromeTrace(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::lock_guard<std::mutex> g(mu_);
    std::fprintf(f, "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    bool first = true;
    // Track naming so Perfetto shows "machine N" / "core N" labels.
    for (const auto &[key, ring] : rings_) {
        const u16 pid = static_cast<u16>(key >> 16);
        const u16 tid = static_cast<u16>(key & 0xffff);
        emitJson(f, &first,
                 strprintf("{\"name\": \"process_name\", \"ph\": \"M\", "
                           "\"pid\": %u, \"args\": {\"name\": "
                           "\"machine %u\"}}",
                           pid, pid));
        emitJson(f, &first,
                 strprintf("{\"name\": \"thread_name\", \"ph\": \"M\", "
                           "\"pid\": %u, \"tid\": %u, \"args\": "
                           "{\"name\": \"core %u\"}}",
                           pid, tid, tid));
        (void)ring;
    }
    for (const auto &[key, ring] : rings_) {
        (void)key;
        for (const Event &e : ring.inOrder()) {
            const double end_us = static_cast<double>(e.t) / 1000.0;
            const double dur_us =
                static_cast<double>(e.dur_ns) / 1000.0;
            std::string obj;
            switch (e.kind) {
              case Ev::kMap:
              case Ev::kUnmap:
              case Ev::kLockAcquire:
              case Ev::kVmExit:
                // Complete spans: ts is the span start.
                obj = strprintf(
                    "{\"name\": \"%s\", \"cat\": \"dma\", \"ph\": "
                    "\"X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": %u, "
                    "\"tid\": %u, \"args\": %s}",
                    evName(e.kind), end_us - dur_us, dur_us, e.pid,
                    e.tid, argsJson(e).c_str());
                break;
              case Ev::kQiIssue:
              case Ev::kQiComplete:
                // Async span: Perfetto draws the issue→complete arrow
                // from the matching (cat, id, name) pair.
                obj = strprintf(
                    "{\"name\": \"qi\", \"cat\": \"qi\", \"ph\": "
                    "\"%s\", \"id\": %u, \"ts\": %.3f, \"pid\": %u, "
                    "\"tid\": %u, \"args\": %s}",
                    e.kind == Ev::kQiIssue ? "b" : "e", e.id, end_us,
                    e.pid, e.tid, argsJson(e).c_str());
                break;
              case Ev::kOpPost:
              case Ev::kOpCqe:
                // Async-nestable op envelope: "b" at injection, "e" at
                // the terminal CQE, paired by the global trace id so
                // the envelope stitches across machine tracks.
                obj = strprintf(
                    "{\"name\": \"op\", \"cat\": \"op\", \"ph\": "
                    "\"%s\", \"id2\": %s, \"ts\": %.3f, \"pid\": %u, "
                    "\"tid\": %u, \"args\": %s}",
                    e.kind == Ev::kOpPost ? "b" : "e",
                    traceId2(e).c_str(), end_us, e.pid, e.tid,
                    argsJson(e).c_str());
                break;
              case Ev::kWireTx:
              case Ev::kIngressQ:
                // Child spans of the op envelope: emitted as a
                // begin/end pair under the same global id so they nest
                // inside the op by timestamp.
                obj = strprintf(
                    "{\"name\": \"%s\", \"cat\": \"op\", \"ph\": "
                    "\"b\", \"id2\": %s, \"ts\": %.3f, \"pid\": %u, "
                    "\"tid\": %u, \"args\": %s},\n  "
                    "{\"name\": \"%s\", \"cat\": \"op\", \"ph\": "
                    "\"e\", \"id2\": %s, \"ts\": %.3f, \"pid\": %u, "
                    "\"tid\": %u, \"args\": {}}",
                    evName(e.kind), traceId2(e).c_str(),
                    end_us - dur_us, e.pid, e.tid, argsJson(e).c_str(),
                    evName(e.kind), traceId2(e).c_str(), end_us, e.pid,
                    e.tid);
                break;
              case Ev::kRetransmit:
              case Ev::kTargetWalk:
                // Instants inside the op envelope (ph "n" attaches
                // them to the nestable async track of the trace id).
                obj = strprintf(
                    "{\"name\": \"%s\", \"cat\": \"op\", \"ph\": "
                    "\"n\", \"id2\": %s, \"ts\": %.3f, \"pid\": %u, "
                    "\"tid\": %u, \"args\": %s}",
                    evName(e.kind), traceId2(e).c_str(), end_us, e.pid,
                    e.tid, argsJson(e).c_str());
                break;
              default:
                obj = strprintf(
                    "{\"name\": \"%s\", \"cat\": \"event\", \"ph\": "
                    "\"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": %u, "
                    "\"tid\": %u, \"args\": %s}",
                    evName(e.kind), end_us, e.pid, e.tid,
                    argsJson(e).c_str());
                break;
            }
            emitJson(f, &first, obj);
        }
    }
    // Flight-recorder dumps ride along as named instants so a
    // `--timeline` artifact is self-contained evidence of failures.
    // Read the process-wide archive, not this thread's recorder:
    // dumps fired on worker-lane threads must appear too.
    for (const FlightDump &d : flightDumpArchive()) {
        // Dumps carry the (machine, core) labels of their newest
        // event, so multi-machine cluster dumps are attributable.
        emitJson(
            f, &first,
            strprintf("{\"name\": \"flight_dump\", \"cat\": \"flight\", "
                      "\"ph\": \"i\", \"s\": \"g\", \"ts\": 0, \"pid\": "
                      "%u, \"tid\": %u, \"args\": {\"seq\": %llu, "
                      "\"reason\": \"%s\", \"machine\": %u, "
                      "\"lane\": %u}}",
                      d.pid, d.tid, (unsigned long long)d.seq,
                      d.reason.c_str(), d.pid, d.tid));
    }
    u64 n_rec = 0, n_drop = 0;
    for (const auto &[key, ring] : rings_) {
        (void)key;
        n_rec += ring.pushed();
        n_drop += ring.dropped();
    }
    std::fprintf(f,
                 "\n], \"rioMeta\": {\"recorded\": %llu, "
                 "\"dropped\": %llu}}\n",
                 (unsigned long long)n_rec, (unsigned long long)n_drop);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

Timeline &
timeline()
{
    static Timeline t;
    return t;
}

} // namespace rio::obs
