#include "obs/timeline.h"

#include <cstdio>

#include "base/logging.h"
#include "base/strings.h"
#include "obs/flight.h"

namespace rio::obs {

const char *
evName(Ev ev)
{
    switch (ev) {
      case Ev::kMap: return "map";
      case Ev::kUnmap: return "unmap";
      case Ev::kQiIssue: return "qi_issue";
      case Ev::kQiComplete: return "qi_complete";
      case Ev::kQiTimeout: return "qi_timeout";
      case Ev::kFault: return "fault";
      case Ev::kQuiescePhase: return "quiesce_phase";
      case Ev::kLockAcquire: return "lock_acquire";
      case Ev::kLockRelease: return "lock_release";
      case Ev::kFlightDump: return "flight_dump";
      case Ev::kVmExit: return "vmexit";
      case Ev::kQpError: return "qp_error";
      case Ev::kNumEvents: break;
    }
    RIO_PANIC("bad Ev");
}

std::vector<Event>
EventRing::inOrder() const
{
    std::vector<Event> out;
    out.reserve(buf_.size());
    for (size_t i = 0; i < buf_.size(); ++i)
        out.push_back(buf_[(next_ + i) % buf_.size()]);
    return out;
}

void
Timeline::setCapacity(size_t per_track)
{
    RIO_ASSERT(per_track > 0, "timeline capacity must be positive");
    capacity_ = per_track;
}

void
Timeline::emit(const Event &e)
{
    if (!kObsCompiled)
        return;
    flightRecorder().record(e);
    if (!recording_.load(std::memory_order_relaxed))
        return;
    const u32 key = (static_cast<u32>(e.pid) << 16) | e.tid;
    std::lock_guard<std::mutex> g(mu_);
    auto it = rings_.find(key);
    if (it == rings_.end())
        it = rings_.emplace(key, EventRing(capacity_)).first;
    it->second.push(e);
}

std::map<u32, std::vector<Event>>
Timeline::tracks() const
{
    std::lock_guard<std::mutex> g(mu_);
    std::map<u32, std::vector<Event>> out;
    for (const auto &[key, ring] : rings_)
        out.emplace(key, ring.inOrder());
    return out;
}

u64
Timeline::recorded() const
{
    std::lock_guard<std::mutex> g(mu_);
    u64 n = 0;
    for (const auto &[key, ring] : rings_)
        n += ring.pushed();
    return n;
}

u64
Timeline::dropped() const
{
    std::lock_guard<std::mutex> g(mu_);
    u64 n = 0;
    for (const auto &[key, ring] : rings_)
        n += ring.dropped();
    return n;
}

void
Timeline::clear()
{
    std::lock_guard<std::mutex> g(mu_);
    rings_.clear();
    next_pid_.store(1, std::memory_order_relaxed);
    next_span_.store(0, std::memory_order_relaxed);
}

namespace {

/** One trace_event object. @p first tracks comma placement. */
void
emitJson(std::FILE *f, bool *first, const std::string &obj)
{
    std::fprintf(f, "%s\n  %s", *first ? "" : ",", obj.c_str());
    *first = false;
}

std::string
argsJson(const Event &e)
{
    return strprintf("{\"bdf\": %u, \"rid\": %u, \"arg\": %llu}", e.bdf,
                     e.rid, (unsigned long long)e.arg);
}

} // namespace

bool
Timeline::writeChromeTrace(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::lock_guard<std::mutex> g(mu_);
    std::fprintf(f, "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    bool first = true;
    // Track naming so Perfetto shows "machine N" / "core N" labels.
    for (const auto &[key, ring] : rings_) {
        const u16 pid = static_cast<u16>(key >> 16);
        const u16 tid = static_cast<u16>(key & 0xffff);
        emitJson(f, &first,
                 strprintf("{\"name\": \"process_name\", \"ph\": \"M\", "
                           "\"pid\": %u, \"args\": {\"name\": "
                           "\"machine %u\"}}",
                           pid, pid));
        emitJson(f, &first,
                 strprintf("{\"name\": \"thread_name\", \"ph\": \"M\", "
                           "\"pid\": %u, \"tid\": %u, \"args\": "
                           "{\"name\": \"core %u\"}}",
                           pid, tid, tid));
        (void)ring;
    }
    for (const auto &[key, ring] : rings_) {
        (void)key;
        for (const Event &e : ring.inOrder()) {
            const double end_us = static_cast<double>(e.t) / 1000.0;
            const double dur_us =
                static_cast<double>(e.dur_ns) / 1000.0;
            std::string obj;
            switch (e.kind) {
              case Ev::kMap:
              case Ev::kUnmap:
              case Ev::kLockAcquire:
              case Ev::kVmExit:
                // Complete spans: ts is the span start.
                obj = strprintf(
                    "{\"name\": \"%s\", \"cat\": \"dma\", \"ph\": "
                    "\"X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": %u, "
                    "\"tid\": %u, \"args\": %s}",
                    evName(e.kind), end_us - dur_us, dur_us, e.pid,
                    e.tid, argsJson(e).c_str());
                break;
              case Ev::kQiIssue:
              case Ev::kQiComplete:
                // Async span: Perfetto draws the issue→complete arrow
                // from the matching (cat, id, name) pair.
                obj = strprintf(
                    "{\"name\": \"qi\", \"cat\": \"qi\", \"ph\": "
                    "\"%s\", \"id\": %u, \"ts\": %.3f, \"pid\": %u, "
                    "\"tid\": %u, \"args\": %s}",
                    e.kind == Ev::kQiIssue ? "b" : "e", e.id, end_us,
                    e.pid, e.tid, argsJson(e).c_str());
                break;
              default:
                obj = strprintf(
                    "{\"name\": \"%s\", \"cat\": \"event\", \"ph\": "
                    "\"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": %u, "
                    "\"tid\": %u, \"args\": %s}",
                    evName(e.kind), end_us, e.pid, e.tid,
                    argsJson(e).c_str());
                break;
            }
            emitJson(f, &first, obj);
        }
    }
    // Flight-recorder dumps ride along as named instants so a
    // `--timeline` artifact is self-contained evidence of failures.
    // Read the process-wide archive, not this thread's recorder:
    // dumps fired on worker-lane threads must appear too.
    for (const FlightDump &d : flightDumpArchive()) {
        emitJson(
            f, &first,
            strprintf("{\"name\": \"flight_dump\", \"cat\": \"flight\", "
                      "\"ph\": \"i\", \"s\": \"g\", \"ts\": 0, \"pid\": "
                      "0, \"tid\": 0, \"args\": {\"seq\": %llu, "
                      "\"reason\": \"%s\"}}",
                      (unsigned long long)d.seq, d.reason.c_str()));
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

Timeline &
timeline()
{
    static Timeline t;
    return t;
}

} // namespace rio::obs
