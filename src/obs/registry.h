/**
 * @file
 * Metrics registry: named counters, gauges and fixed-bucket
 * histograms the simulation layers update as they run, so a bench or
 * test can ask *when and where* cycles went (IOTLB churn, QI depth,
 * lock waits) instead of only reading end-of-run CycleAccount totals.
 *
 * Two invariants carried by every metric:
 *  - zero simulated cost: updating a metric never charges cycles,
 *    never draws RNG, never touches simulated memory — golden benches
 *    replay bit-for-bit with instrumentation compiled in;
 *  - determinism: metrics live in registration order, and a
 *    deterministic run produces an identical snapshot() every time.
 *
 * Metrics are identified by name + labels (e.g. "dma.map_cycles"
 * {mode=strict}); registering the same identity twice returns the
 * same object, so per-mode/per-device instances aggregate naturally.
 * Each metric's hot state is alignas(kCachelineSize) so one update
 * touches one line.
 *
 * Thread model (for des::ParallelEngine): Counter/Gauge updates are
 * relaxed atomics, Histogram serializes behind a per-histogram
 * spinlock, and the registry's structural maps take a mutex — so
 * concurrent lanes may hammer disjoint *or shared* metrics freely.
 * Relaxed ordering is enough because metrics are only *read* at
 * barriers (snapshot after all lanes joined), never used to
 * communicate between lanes.
 */
#ifndef RIO_OBS_REGISTRY_H
#define RIO_OBS_REGISTRY_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/types.h"

namespace rio::obs {

/** Metric labels, e.g. {{"mode", "strict"}, {"bdf", "0:3.0"}}. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonic event count. */
struct alignas(kCachelineSize) Counter
{
    std::atomic<u64> value{0};

    void inc(u64 n = 1) { value.fetch_add(n, std::memory_order_relaxed); }
    u64 get() const { return value.load(std::memory_order_relaxed); }
    void reset() { value.store(0, std::memory_order_relaxed); }
};

/** Instantaneous level plus its high-water mark. */
struct alignas(kCachelineSize) Gauge
{
    std::atomic<i64> value{0};
    std::atomic<i64> high{0};

    void
    set(i64 v)
    {
        value.store(v, std::memory_order_relaxed);
        raiseHigh(v);
    }

    void
    add(i64 d)
    {
        raiseHigh(value.fetch_add(d, std::memory_order_relaxed) + d);
    }

    void
    reset()
    {
        value.store(0, std::memory_order_relaxed);
        high.store(0, std::memory_order_relaxed);
    }

  private:
    /** CAS-max: lift the high-water mark to at least @p v. */
    void
    raiseHigh(i64 v)
    {
        i64 h = high.load(std::memory_order_relaxed);
        while (v > h &&
               !high.compare_exchange_weak(h, v,
                                           std::memory_order_relaxed))
            ;
    }
};

/**
 * Fixed-bucket histogram. Bucket i counts observations with
 * v <= bounds[i] (first matching bucket); one extra overflow bucket
 * catches everything above the last bound.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<u64> bounds);

    void observe(u64 v);

    /**
     * Observe @p n values in one lock acquisition — the hot-path
     * batching entry (cycles::BatchCharge, burst-coalesced DMA
     * spans). Identical final state to n observe() calls.
     */
    void observeBatch(const u64 *vs, size_t n);

    u64 count() const;
    u64 sum() const;
    double avg() const;
    const std::vector<u64> &bounds() const { return bounds_; }
    /** bounds().size() + 1 entries; last is the overflow bucket. */
    std::vector<u64> buckets() const;

    /**
     * Estimate of quantile @p q (0..1]: finds the bucket holding the
     * nearest-rank target and linearly interpolates within it
     * (observations assumed uniform over the bucket's range; the
     * overflow bucket collapses to its lower bound, the last finite
     * bound). Exact when a bucket's range is a single value; for
     * exact tail order statistics use obs::OpLatencyRecorder.
     */
    u64 quantileBound(double q) const;

    /** Zero all buckets and totals; bounds stay. */
    void reset();

  private:
    void observeLocked(u64 v);

    /** Contention is rare (one observer per lane, short sections) so
     * a spinlock beats a mutex on the per-op path. */
    struct SpinGuard
    {
        explicit SpinGuard(std::atomic_flag &f) : f_(f)
        {
            while (f_.test_and_set(std::memory_order_acquire))
                ;
        }
        ~SpinGuard() { f_.clear(std::memory_order_release); }
        std::atomic_flag &f_;
    };

    std::vector<u64> bounds_; //!< ascending upper bounds; immutable
    std::vector<u64> buckets_;
    u64 count_ = 0;
    u64 sum_ = 0;
    mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
};

/** Default bucket ladder for cycle-valued histograms (1..64K, x4). */
std::vector<u64> cycleBuckets();

/** One registered metric and everything needed to print it. */
struct MetricEntry
{
    enum class Type : u8 { kCounter, kGauge, kHistogram };

    Type type;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;

    /** "name{k=v,...}" — the canonical identity string. */
    std::string key() const;
};

/** One metric's values, flattened for comparisons. */
struct SnapshotEntry
{
    std::string key;
    std::vector<u64> values;

    bool operator==(const SnapshotEntry &o) const
    {
        return key == o.key && values == o.values;
    }
};

/**
 * The process-wide metric table. Components register on first use and
 * keep the returned pointer; the registry owns the storage for the
 * life of the process (or until clear(), which only tests call — any
 * cached pointer dangles after that).
 */
class Registry
{
  public:
    Counter &counter(const std::string &name, Labels labels = {});
    Gauge &gauge(const std::string &name, Labels labels = {});
    /** @p bounds used only on first registration of this identity. */
    Histogram &histogram(const std::string &name, Labels labels = {},
                         std::vector<u64> bounds = cycleBuckets());

    /** Metrics in registration order. */
    const std::vector<std::unique_ptr<MetricEntry>> &metrics() const
    {
        return entries_;
    }

    /** Flattened values in registration order (determinism checks). */
    std::vector<SnapshotEntry> snapshot() const;

    /** Zero every value, keep registrations (between bench runs).
     * Flushes pending Deferred accumulators first (like snapshot()),
     * so batched pre-reset deltas are wiped rather than leaking into
     * post-reset totals. Barrier points only. */
    void resetValues();

    /** Drop everything — invalidates cached metric pointers; tests
     * only, between fixtures that re-create their components. */
    void clear();

    /** Prometheus-flavored text dump, one "key value..." per line. */
    std::string textDump() const;

  private:
    MetricEntry &findOrCreate(MetricEntry::Type type,
                              const std::string &name,
                              Labels labels);

    /** Guards the structural maps (registration), not metric values —
     * those have their own synchronization. snapshot()/resetValues()
     * also take it so a concurrent registration cannot reallocate
     * entries_ under them. */
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<MetricEntry>> entries_;
    std::map<std::string, size_t> index_; //!< key -> entries_ index
};

/** The global registry every instrumentation point uses. */
Registry &registry();

} // namespace rio::obs

#endif // RIO_OBS_REGISTRY_H
