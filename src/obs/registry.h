/**
 * @file
 * Metrics registry: named counters, gauges and fixed-bucket
 * histograms the simulation layers update as they run, so a bench or
 * test can ask *when and where* cycles went (IOTLB churn, QI depth,
 * lock waits) instead of only reading end-of-run CycleAccount totals.
 *
 * Two invariants carried by every metric:
 *  - zero simulated cost: updating a metric never charges cycles,
 *    never draws RNG, never touches simulated memory — golden benches
 *    replay bit-for-bit with instrumentation compiled in;
 *  - determinism: metrics live in registration order, and a
 *    deterministic run produces an identical snapshot() every time.
 *
 * Metrics are identified by name + labels (e.g. "dma.map_cycles"
 * {mode=strict}); registering the same identity twice returns the
 * same object, so per-mode/per-device instances aggregate naturally.
 * Each metric's hot state is alignas(kCachelineSize) so one update
 * touches one line.
 */
#ifndef RIO_OBS_REGISTRY_H
#define RIO_OBS_REGISTRY_H

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/types.h"

namespace rio::obs {

/** Metric labels, e.g. {{"mode", "strict"}, {"bdf", "0:3.0"}}. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonic event count. */
struct alignas(kCachelineSize) Counter
{
    u64 value = 0;

    void inc(u64 n = 1) { value += n; }
};

/** Instantaneous level plus its high-water mark. */
struct alignas(kCachelineSize) Gauge
{
    i64 value = 0;
    i64 high = 0;

    void
    set(i64 v)
    {
        value = v;
        if (v > high)
            high = v;
    }

    void add(i64 d) { set(value + d); }
};

/**
 * Fixed-bucket histogram. Bucket i counts observations with
 * v <= bounds[i] (first matching bucket); one extra overflow bucket
 * catches everything above the last bound.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<u64> bounds);

    void observe(u64 v);

    u64 count() const { return count_; }
    u64 sum() const { return sum_; }
    double avg() const;
    const std::vector<u64> &bounds() const { return bounds_; }
    /** bounds().size() + 1 entries; last is the overflow bucket. */
    const std::vector<u64> &buckets() const { return buckets_; }

    /**
     * Upper bound of the bucket holding quantile @p q (0..1], using
     * the overflow bucket's own bound as "max". Coarse by design —
     * good enough for "p99 landed in the timeout bucket" assertions.
     */
    u64 quantileBound(double q) const;

  private:
    std::vector<u64> bounds_; //!< ascending upper bounds
    std::vector<u64> buckets_;
    u64 count_ = 0;
    u64 sum_ = 0;
};

/** Default bucket ladder for cycle-valued histograms (1..64K, x4). */
std::vector<u64> cycleBuckets();

/** One registered metric and everything needed to print it. */
struct MetricEntry
{
    enum class Type : u8 { kCounter, kGauge, kHistogram };

    Type type;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;

    /** "name{k=v,...}" — the canonical identity string. */
    std::string key() const;
};

/** One metric's values, flattened for comparisons. */
struct SnapshotEntry
{
    std::string key;
    std::vector<u64> values;

    bool operator==(const SnapshotEntry &o) const
    {
        return key == o.key && values == o.values;
    }
};

/**
 * The process-wide metric table. Components register on first use and
 * keep the returned pointer; the registry owns the storage for the
 * life of the process (or until clear(), which only tests call — any
 * cached pointer dangles after that).
 */
class Registry
{
  public:
    Counter &counter(const std::string &name, Labels labels = {});
    Gauge &gauge(const std::string &name, Labels labels = {});
    /** @p bounds used only on first registration of this identity. */
    Histogram &histogram(const std::string &name, Labels labels = {},
                         std::vector<u64> bounds = cycleBuckets());

    /** Metrics in registration order. */
    const std::vector<std::unique_ptr<MetricEntry>> &metrics() const
    {
        return entries_;
    }

    /** Flattened values in registration order (determinism checks). */
    std::vector<SnapshotEntry> snapshot() const;

    /** Zero every value, keep registrations (between bench runs). */
    void resetValues();

    /** Drop everything — invalidates cached metric pointers; tests
     * only, between fixtures that re-create their components. */
    void clear();

    /** Prometheus-flavored text dump, one "key value..." per line. */
    std::string textDump() const;

  private:
    MetricEntry &findOrCreate(MetricEntry::Type type,
                              const std::string &name,
                              Labels labels);

    std::vector<std::unique_ptr<MetricEntry>> entries_;
    std::map<std::string, size_t> index_; //!< key -> entries_ index
};

/** The global registry every instrumentation point uses. */
Registry &registry();

} // namespace rio::obs

#endif // RIO_OBS_REGISTRY_H
