#include "obs/deferred.h"

#include <algorithm>
#include <atomic>
#include <mutex>

namespace rio::obs {

namespace {

std::atomic<bool> g_deferred_enabled{false};

/** Live accumulators; guards registration churn, not bump/note. */
std::mutex &
listMutex()
{
    static std::mutex m;
    return m;
}

std::vector<Deferred *> &
liveList()
{
    static std::vector<Deferred *> l;
    return l;
}

} // namespace

bool
deferredEnabled()
{
    return g_deferred_enabled.load(std::memory_order_relaxed);
}

void
setDeferredEnabled(bool on)
{
    g_deferred_enabled.store(on, std::memory_order_relaxed);
}

Deferred::Deferred()
{
    std::lock_guard<std::mutex> g(listMutex());
    liveList().push_back(this);
}

Deferred::~Deferred()
{
    std::lock_guard<std::mutex> g(listMutex());
    auto &l = liveList();
    l.erase(std::remove(l.begin(), l.end(), this), l.end());
}

void
flushAllDeferred()
{
    std::lock_guard<std::mutex> g(listMutex());
    for (Deferred *d : liveList())
        d->flush();
}

} // namespace rio::obs
