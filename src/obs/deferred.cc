#include "obs/deferred.h"

#include <algorithm>
#include <atomic>
#include <mutex>

namespace rio::obs {

namespace {

std::atomic<bool> g_deferred_enabled{false};

/** Live accumulators; guards registration churn, not bump/note. */
std::mutex &
listMutex()
{
    static std::mutex m;
    return m;
}

std::vector<Deferred *> &
liveList()
{
    static std::vector<Deferred *> l;
    return l;
}

} // namespace

bool
deferredEnabled()
{
    return g_deferred_enabled.load(std::memory_order_relaxed);
}

void
setDeferredEnabled(bool on)
{
    const bool was = g_deferred_enabled.exchange(
        on, std::memory_order_relaxed);
    // Turning deferral off settles everything that was batched while
    // it was on: otherwise pending deltas would strand until the next
    // snapshot/destructor, and direct inc()s issued after the switch
    // would land *before* amounts accumulated earlier. Like every
    // flush, this is a barrier-point operation (no lane mid-bump).
    if (was && !on)
        flushAllDeferred();
}

Deferred::Deferred()
{
    std::lock_guard<std::mutex> g(listMutex());
    liveList().push_back(this);
}

Deferred::~Deferred()
{
    std::lock_guard<std::mutex> g(listMutex());
    auto &l = liveList();
    l.erase(std::remove(l.begin(), l.end(), this), l.end());
}

void
flushAllDeferred()
{
    std::lock_guard<std::mutex> g(listMutex());
    for (Deferred *d : liveList())
        d->flush();
}

} // namespace rio::obs
