#include "obs/slo.h"

#include <algorithm>

namespace rio::obs {

namespace {

std::atomic<bool> g_slo_recording{false};

/** Nearest-rank quantile over latencies sorted ascending:
 * rank = ceil(q * n), clamped to [1, n]; returns sorted[rank-1]. */
Nanos
nearestRank(const std::vector<Nanos> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const double n = static_cast<double>(sorted.size());
    auto rank = static_cast<size_t>(q * n);
    if (static_cast<double>(rank) < q * n)
        ++rank; // ceil
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

} // namespace

bool
sloRecording()
{
    return g_slo_recording.load(std::memory_order_relaxed);
}

void
setSloRecording(bool on)
{
    g_slo_recording.store(on, std::memory_order_relaxed);
}

SloReport
computeSloReport(const std::vector<OpRecord> &records)
{
    SloReport rep;
    rep.count = records.size();
    if (records.empty())
        return rep;

    std::vector<Nanos> lat;
    lat.reserve(records.size());
    u64 sum = 0;
    for (const OpRecord &r : records) {
        lat.push_back(r.latency_ns);
        sum += r.latency_ns;
        if (r.error)
            ++rep.errors;
        for (size_t c = 0; c < kSloMaxCats; ++c)
            rep.all_cat_cycles[c] += r.cat_cycles[c];
    }
    std::sort(lat.begin(), lat.end());

    rep.p50 = nearestRank(lat, 0.50);
    rep.p99 = nearestRank(lat, 0.99);
    rep.p999 = nearestRank(lat, 0.999);
    rep.max = lat.back();
    rep.mean_ns = static_cast<double>(sum) / static_cast<double>(records.size());

    // Tail membership is by latency value (>= p99), not by sort
    // position, so the tail set — and thus the attribution — is
    // deterministic for any input permutation.
    for (const OpRecord &r : records) {
        if (r.latency_ns < rep.p99)
            continue;
        ++rep.tail_ops;
        rep.tail_retransmits += r.retransmits;
        for (size_t c = 0; c < kSloMaxCats; ++c)
            rep.tail_cat_cycles[c] += r.cat_cycles[c];
    }

    u64 tail_total = 0;
    for (size_t c = 0; c < kSloMaxCats; ++c) {
        tail_total += rep.tail_cat_cycles[c];
        if (rep.tail_cat_cycles[c] > rep.tail_cat_cycles[rep.top_cat])
            rep.top_cat = c;
    }
    if (tail_total)
        rep.top_cat_share = static_cast<double>(rep.tail_cat_cycles[rep.top_cat]) /
                            static_cast<double>(tail_total);
    return rep;
}

} // namespace rio::obs
