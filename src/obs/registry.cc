#include "obs/registry.h"

#include <algorithm>

#include "base/logging.h"
#include "base/strings.h"
#include "obs/deferred.h"

namespace rio::obs {

Histogram::Histogram(std::vector<u64> bounds) : bounds_(std::move(bounds))
{
    RIO_ASSERT(!bounds_.empty(), "histogram needs at least one bound");
    RIO_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must ascend");
    buckets_.assign(bounds_.size() + 1, 0);
}

void
Histogram::observeLocked(u64 v)
{
    size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), v) -
               bounds_.begin();
    ++buckets_[i];
    ++count_;
    sum_ += v;
}

void
Histogram::observe(u64 v)
{
    SpinGuard g(lock_);
    observeLocked(v);
}

void
Histogram::observeBatch(const u64 *vs, size_t n)
{
    SpinGuard g(lock_);
    for (size_t i = 0; i < n; ++i)
        observeLocked(vs[i]);
}

u64
Histogram::count() const
{
    SpinGuard g(lock_);
    return count_;
}

u64
Histogram::sum() const
{
    SpinGuard g(lock_);
    return sum_;
}

std::vector<u64>
Histogram::buckets() const
{
    SpinGuard g(lock_);
    return buckets_;
}

void
Histogram::reset()
{
    SpinGuard g(lock_);
    std::fill(buckets_.begin(), buckets_.end(), u64{0});
    count_ = 0;
    sum_ = 0;
}

double
Histogram::avg() const
{
    SpinGuard g(lock_);
    return count_ ? static_cast<double>(sum_) /
                        static_cast<double>(count_)
                  : 0.0;
}

u64
Histogram::quantileBound(double q) const
{
    SpinGuard g(lock_);
    if (count_ == 0)
        return 0;
    double target = q * static_cast<double>(count_);
    if (target < 1.0)
        target = 1.0;
    if (target > static_cast<double>(count_))
        target = static_cast<double>(count_);
    u64 seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (static_cast<double>(seen + buckets_[i]) >= target) {
            // Linear interpolation within the bucket: assume the
            // bucket's observations are uniform over (lo, hi].
            const u64 lo = i == 0 ? 0 : bounds_[i - 1];
            const u64 hi =
                i < bounds_.size() ? bounds_[i] : bounds_.back();
            if (hi <= lo)
                return hi;
            const double frac = (target - static_cast<double>(seen)) /
                                static_cast<double>(buckets_[i]);
            return lo + static_cast<u64>(
                            static_cast<double>(hi - lo) * frac + 0.5);
        }
        seen += buckets_[i];
    }
    return bounds_.back();
}

std::vector<u64>
cycleBuckets()
{
    // 1..65536 in x4 steps: resolves the paper's landmark costs
    // (9-cycle queued inval, ~2,150 sync inval, 8,600 timeout spin).
    return {1, 4, 16, 64, 256, 1024, 4096, 16384, 65536};
}

std::string
MetricEntry::key() const
{
    std::string k = name;
    if (!labels.empty()) {
        k += '{';
        for (size_t i = 0; i < labels.size(); ++i) {
            if (i)
                k += ',';
            k += labels[i].first + '=' + labels[i].second;
        }
        k += '}';
    }
    return k;
}

MetricEntry &
Registry::findOrCreate(MetricEntry::Type type, const std::string &name,
                       Labels labels)
{
    // Caller holds mu_.
    // Canonical identity: labels sorted by key.
    std::sort(labels.begin(), labels.end());
    MetricEntry probe;
    probe.name = name;
    probe.labels = labels;
    const std::string key = probe.key();
    auto it = index_.find(key);
    if (it != index_.end()) {
        MetricEntry &e = *entries_[it->second];
        RIO_ASSERT(e.type == type, "metric ", key,
                   " re-registered with a different type");
        return e;
    }
    auto entry = std::make_unique<MetricEntry>();
    entry->type = type;
    entry->name = name;
    entry->labels = std::move(labels);
    entries_.push_back(std::move(entry));
    index_[key] = entries_.size() - 1;
    return *entries_.back();
}

Counter &
Registry::counter(const std::string &name, Labels labels)
{
    std::lock_guard<std::mutex> g(mu_);
    MetricEntry &e = findOrCreate(MetricEntry::Type::kCounter, name,
                                  std::move(labels));
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
Registry::gauge(const std::string &name, Labels labels)
{
    std::lock_guard<std::mutex> g(mu_);
    MetricEntry &e =
        findOrCreate(MetricEntry::Type::kGauge, name, std::move(labels));
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram &
Registry::histogram(const std::string &name, Labels labels,
                    std::vector<u64> bounds)
{
    std::lock_guard<std::mutex> g(mu_);
    MetricEntry &e = findOrCreate(MetricEntry::Type::kHistogram, name,
                                  std::move(labels));
    if (!e.histogram)
        e.histogram = std::make_unique<Histogram>(std::move(bounds));
    return *e.histogram;
}

std::vector<SnapshotEntry>
Registry::snapshot() const
{
    // Settle any batched hot-path updates first so a snapshot is
    // always exact, whether or not deferral is on. Snapshots happen
    // at barriers, so no lane is mid-bump here.
    flushAllDeferred();
    std::lock_guard<std::mutex> g(mu_);
    std::vector<SnapshotEntry> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_) {
        SnapshotEntry s;
        s.key = e->key();
        switch (e->type) {
          case MetricEntry::Type::kCounter:
            s.values = {e->counter->get()};
            break;
          case MetricEntry::Type::kGauge:
            s.values = {static_cast<u64>(e->gauge->value.load(
                            std::memory_order_relaxed)),
                        static_cast<u64>(e->gauge->high.load(
                            std::memory_order_relaxed))};
            break;
          case MetricEntry::Type::kHistogram:
            s.values = e->histogram->buckets();
            s.values.push_back(e->histogram->count());
            s.values.push_back(e->histogram->sum());
            break;
        }
        out.push_back(std::move(s));
    }
    return out;
}

void
Registry::resetValues()
{
    // Settle pending Deferred accumulators *before* zeroing, same as
    // snapshot(): pre-reset deltas land pre-reset and are wiped with
    // everything else, so post-reset totals count only post-reset
    // activity. Without this, deltas batched before the reset would
    // flush into the freshly zeroed metrics later — deferral must
    // change when a metric moves, never by how much, including
    // across a reset boundary. Like snapshot(), this may only run at
    // a barrier (no lane mid-bump).
    flushAllDeferred();
    std::lock_guard<std::mutex> g(mu_);
    for (auto &e : entries_) {
        if (e->counter)
            e->counter->reset();
        if (e->gauge)
            e->gauge->reset();
        if (e->histogram)
            e->histogram->reset();
    }
}

void
Registry::clear()
{
    std::lock_guard<std::mutex> g(mu_);
    entries_.clear();
    index_.clear();
}

std::string
Registry::textDump() const
{
    std::string out;
    for (const SnapshotEntry &s : snapshot()) {
        out += s.key;
        for (u64 v : s.values)
            out += strprintf(" %llu", (unsigned long long)v);
        out += '\n';
    }
    return out;
}

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace rio::obs
