/**
 * @file
 * Exact per-op tail-latency recording and SLO reporting.
 *
 * The registry's Histogram answers "which bucket" (now with linear
 * interpolation), but tail attribution needs *exact* order statistics
 * plus a per-category cycle breakdown for the ops that actually live
 * in the tail. This module provides:
 *
 *  - OpRecord: one completed op — end-to-end latency, retransmit
 *    count, error flag, and the op's per-cycles::Cat charge vector.
 *  - OpLatencyRecorder: a bounded overwrite-free ring of OpRecords
 *    (drops new records when full, counts the drops — dropping the
 *    *newest* keeps the retained set deterministic and prefix-stable
 *    across capacities).
 *  - computeSloReport(): exact nearest-rank p50/p99/p999/max over a
 *    set of records, plus "top contributor Cat at p99": among the ops
 *    at or above the p99 latency, which category burned the most
 *    cycles.
 *
 * Recording is gated by a process-wide flag (`--slo` in benches) so
 * that the default path stays allocation-free; everything here is
 * host-side bookkeeping — zero simulated cycles, zero RNG draws.
 *
 * Layering note: rio_cycles links rio_obs, so this header must not
 * include cycles/ headers. kSloMaxCats is a neutral upper bound on
 * cycles::kNumCats; callers that bridge the two static_assert the
 * relation (see rdma.cc).
 */
#ifndef RIO_OBS_SLO_H
#define RIO_OBS_SLO_H

#include <array>
#include <atomic>
#include <cstddef>
#include <vector>

#include "base/types.h"

namespace rio::obs {

/** Upper bound on the number of cycle categories an OpRecord can
 * carry. Must stay >= cycles::kNumCats (static_asserted where both
 * headers are visible). */
inline constexpr size_t kSloMaxCats = 16;

/** One completed op, as seen at its terminal CQE. */
struct OpRecord
{
    Nanos latency_ns = 0;  //!< post → terminal CQE, simulated time
    u32 retransmits = 0;   //!< go-back-N episodes this op survived
    bool error = false;    //!< completed with error status (QP flush)
    std::array<u64, kSloMaxCats> cat_cycles{}; //!< per-cycles::Cat charge
};

/** Process-wide gate for per-op recording (set by `--slo`). */
bool sloRecording();
void setSloRecording(bool on);

/**
 * Bounded ring of per-op records. Unlike obs::EventRing this does NOT
 * overwrite: once full, new records are counted as dropped. That
 * choice makes the retained set a deterministic prefix of the op
 * stream, so reports are byte-identical across runs regardless of
 * capacity (an overwriting ring would retain a suffix whose start
 * depends on total volume).
 *
 * Not thread-safe: each recorder belongs to one NIC, which belongs to
 * one engine lane.
 */
class OpLatencyRecorder
{
  public:
    explicit OpLatencyRecorder(size_t capacity = 1u << 16) : capacity_(capacity)
    {
    }

    void record(const OpRecord &r)
    {
        if (records_.size() >= capacity_) {
            ++dropped_;
            return;
        }
        records_.push_back(r);
    }

    const std::vector<OpRecord> &inOrder() const { return records_; }
    size_t pushed() const { return records_.size() + dropped_; }
    u64 dropped() const { return dropped_; }

    void clear()
    {
        records_.clear();
        dropped_ = 0;
    }

  private:
    size_t capacity_;
    u64 dropped_ = 0;
    std::vector<OpRecord> records_;
};

/**
 * Exact tail report over a set of OpRecords. Quantiles are
 * nearest-rank (rank = ceil(q*n), 1-based) over latencies sorted
 * ascending — exact order statistics, no bucketing.
 */
struct SloReport
{
    u64 count = 0;   //!< ops in the report
    u64 dropped = 0; //!< ops lost to recorder capacity (caller-summed)
    u64 errors = 0;  //!< ops that completed with error status

    Nanos p50 = 0;
    Nanos p99 = 0;
    Nanos p999 = 0;
    Nanos max = 0;
    double mean_ns = 0.0;

    u64 tail_ops = 0;          //!< ops with latency >= p99
    u64 tail_retransmits = 0;  //!< retransmit episodes among tail ops
    std::array<u64, kSloMaxCats> tail_cat_cycles{}; //!< cycles by Cat, tail ops
    std::array<u64, kSloMaxCats> all_cat_cycles{};  //!< cycles by Cat, all ops

    size_t top_cat = 0;        //!< argmax Cat over tail_cat_cycles
    double top_cat_share = 0.0; //!< top cat's share of tail cycles [0,1]
};

/** Build a report from @p records (order irrelevant — membership in
 * the tail is by latency value, so the result is deterministic for
 * any permutation of the same multiset). */
SloReport computeSloReport(const std::vector<OpRecord> &records);

} // namespace rio::obs

#endif // RIO_OBS_SLO_H
