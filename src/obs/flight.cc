#include "obs/flight.h"

#include <cstdio>

#include "base/strings.h"
#include "obs/registry.h"

namespace rio::obs {

std::string
eventLine(const Event &e)
{
    std::string s = strprintf(
        "t=%llu machine=%u core=%u %s bdf=0x%04x rid=%u arg=%llu",
        (unsigned long long)e.t, e.pid, e.tid, evName(e.kind), e.bdf,
        e.rid, (unsigned long long)e.arg);
    if (e.dur_ns)
        s += strprintf(" dur_ns=%llu", (unsigned long long)e.dur_ns);
    if (e.id)
        s += strprintf(" span=%u", e.id);
    return s;
}

std::string
FlightRecorder::renderText() const
{
    std::string out;
    for (const Event &e : ring_.inOrder()) {
        out += eventLine(e);
        out += '\n';
    }
    if (ring_.dropped())
        out += strprintf("(%llu older events overwritten)\n",
                         (unsigned long long)ring_.dropped());
    return out;
}

u64
FlightRecorder::dump(const std::string &reason)
{
    const u64 seq = ++dump_seq_;
    if (seq <= dump_limit_) {
        FlightDump d;
        d.seq = seq;
        d.reason = reason;
        d.text = renderText();
        std::fprintf(stderr,
                     "=== flight recorder dump #%llu (%s), last %zu "
                     "events ===\n%s=== end of dump ===\n",
                     (unsigned long long)seq, reason.c_str(),
                     ring_.size(), d.text.c_str());
        dumps_.push_back(std::move(d));
    }
    return seq;
}

void
FlightRecorder::setCapacity(size_t n)
{
    ring_ = EventRing(n);
}

void
FlightRecorder::clear()
{
    ring_.clear();
    dump_seq_ = 0;
    dumps_.clear();
}

FlightRecorder &
flightRecorder()
{
    // Thread-local: every event lands in the *emitting thread's* ring
    // with zero synchronization, keeping Timeline::emit lock-free on
    // the recording-off default path. A worker lane that trips a dump
    // prints its own last moments — which is exactly the context that
    // matters — and the main thread's recorder keeps serving the
    // tests and trace export that run after lanes join.
    static thread_local FlightRecorder fr;
    return fr;
}

u64
flightDump(const std::string &reason)
{
    if (!kObsCompiled)
        return 0;
    registry().counter("flight.dumps").inc();
    const u64 seq = flightRecorder().dump(reason);
    // Mirror the dump into the timeline so `--timeline` output shows
    // where in virtual time the failure hit. Timestamp: the newest
    // event the ring saw (the dump has no clock of its own).
    Event marker;
    marker.kind = Ev::kFlightDump;
    marker.arg = seq;
    const auto events = flightRecorder().ring().inOrder();
    if (!events.empty()) {
        marker.t = events.back().t;
        marker.pid = events.back().pid;
        marker.tid = events.back().tid;
    }
    timeline().emit(marker);
    return seq;
}

} // namespace rio::obs
