#include "obs/flight.h"

#include <cstdio>
#include <mutex>

#include "base/strings.h"
#include "obs/registry.h"

namespace rio::obs {

namespace {

/** Process-wide dump archive (see flight.h). Dumps are rare and
 * rate-limited, so a plain mutex-guarded vector is fine; the hot
 * record() path never touches it. */
std::mutex &
archiveMutex()
{
    static std::mutex m;
    return m;
}

std::vector<FlightDump> &
archiveList()
{
    static std::vector<FlightDump> l;
    return l;
}

} // namespace

std::vector<FlightDump>
flightDumpArchive()
{
    std::lock_guard<std::mutex> g(archiveMutex());
    return archiveList();
}

void
clearFlightDumpArchive()
{
    std::lock_guard<std::mutex> g(archiveMutex());
    archiveList().clear();
}

std::string
eventLine(const Event &e)
{
    std::string s = strprintf(
        "t=%llu machine=%u core=%u %s bdf=0x%04x rid=%u arg=%llu",
        (unsigned long long)e.t, e.pid, e.tid, evName(e.kind), e.bdf,
        e.rid, (unsigned long long)e.arg);
    if (e.dur_ns)
        s += strprintf(" dur_ns=%llu", (unsigned long long)e.dur_ns);
    if (e.id)
        s += strprintf(" span=%u", e.id);
    if (e.trace)
        s += strprintf(" trace=0x%llx", (unsigned long long)e.trace);
    return s;
}

std::string
FlightRecorder::renderText() const
{
    std::string out;
    for (const Event &e : ring_.inOrder()) {
        out += eventLine(e);
        out += '\n';
    }
    if (ring_.dropped())
        out += strprintf("(%llu older events overwritten)\n",
                         (unsigned long long)ring_.dropped());
    return out;
}

u64
FlightRecorder::dump(const std::string &reason)
{
    const u64 seq = ++dump_seq_;
    if (seq <= dump_limit_) {
        FlightDump d;
        d.seq = seq;
        d.reason = reason;
        d.text = renderText();
        // Label the dump with the (machine, lane) of the newest event
        // so cluster dumps from different machines are attributable.
        const auto events = ring_.inOrder();
        if (!events.empty()) {
            d.pid = events.back().pid;
            d.tid = events.back().tid;
        }
        std::fprintf(stderr,
                     "=== flight recorder dump #%llu (%s), last %zu "
                     "events ===\n%s=== end of dump ===\n",
                     (unsigned long long)seq, reason.c_str(),
                     ring_.size(), d.text.c_str());
        {
            // Publish to the process-wide archive so a dump fired on
            // a worker-lane thread outlives the pool and is readable
            // from the main thread (dumps_ is thread-confined).
            std::lock_guard<std::mutex> g(archiveMutex());
            archiveList().push_back(d);
        }
        dumps_.push_back(std::move(d));
    }
    return seq;
}

void
FlightRecorder::setCapacity(size_t n)
{
    ring_ = EventRing(n);
}

void
FlightRecorder::clear()
{
    ring_.clear();
    dump_seq_ = 0;
    dumps_.clear();
}

FlightRecorder &
flightRecorder()
{
    // Thread-local: every event lands in the *emitting thread's* ring
    // with zero synchronization, keeping Timeline::emit lock-free on
    // the recording-off default path. A worker lane that trips a dump
    // renders its own last moments — which is exactly the context
    // that matters — and the dump is both printed to stderr and
    // published to the process-wide archive (flightDumpArchive()), so
    // it stays inspectable from the main thread after lanes join and
    // the pool thread (with its thread-local recorder) is gone.
    static thread_local FlightRecorder fr;
    return fr;
}

u64
flightDump(const std::string &reason)
{
    if (!kObsCompiled)
        return 0;
    registry().counter("flight.dumps").inc();
    const u64 seq = flightRecorder().dump(reason);
    // Mirror the dump into the timeline so `--timeline` output shows
    // where in virtual time the failure hit. Timestamp: the newest
    // event the ring saw (the dump has no clock of its own).
    Event marker;
    marker.kind = Ev::kFlightDump;
    marker.arg = seq;
    const auto events = flightRecorder().ring().inOrder();
    if (!events.empty()) {
        marker.t = events.back().t;
        marker.pid = events.back().pid;
        marker.tid = events.back().tid;
    }
    timeline().emit(marker);
    return seq;
}

} // namespace rio::obs
