/**
 * @file
 * Distributed trace context: a per-op identity allocated where the op
 * is injected (a verbs post, a DMA map on behalf of a workload) and
 * propagated across every layer the op touches — the ParallelEngine
 * mailbox, sys::WireMsg, the rdma retransmit/replay paths — so the
 * Chrome-trace export can stitch one op's spans across machines into
 * a single tree, closed at the terminal CQE.
 *
 * Identity layout (64 bits, never 0 for a real trace):
 *
 *   [63:48] origin machine (obs pid)   — where the op was injected
 *   [47:40] origin core (obs tid)
 *   [39:0]  lane-confined sequence     — des::Core::nextTraceId()
 *
 * Determinism: the sequence counter lives on the injecting core,
 * which lives on exactly one event lane — ids depend only on
 * simulation content, never on thread scheduling, so traces are
 * byte-identical at `--threads 1` and `--threads N` (the PR 4 / PR 6
 * contract). Propagation is a thread-local "current trace" slot set
 * by TraceScope RAII around delivery callbacks; Timeline::emit()
 * auto-attaches it to any event that doesn't carry its own trace, so
 * every existing instrumentation point (map/unmap spans, QI spans,
 * lock waits, faults) becomes a child span of the op for free.
 *
 * Everything here is host-only bookkeeping: zero simulated cycles,
 * zero RNG draws (golden_obs / golden_cluster byte-for-byte pins).
 */
#ifndef RIO_OBS_TRACE_CTX_H
#define RIO_OBS_TRACE_CTX_H

#include "base/types.h"

namespace rio::obs {

/**
 * Decoded view of a trace identity plus the current span within it.
 * The wire carries only the packed u64 (WireMsg::trace); origin
 * machine/core are recoverable from the high bits.
 */
struct TraceContext
{
    u64 trace = 0; //!< packed identity; 0 = "no trace"
    u32 span = 0;  //!< current span id within the trace (optional)

    static u16 originMachine(u64 trace) { return static_cast<u16>(trace >> 48); }
    static u16 originCore(u64 trace) { return static_cast<u16>((trace >> 40) & 0xff); }
    static u64 seq(u64 trace) { return trace & 0xffffffffffULL; }
};

/** The calling thread's current trace (0 when outside any op). A
 * lane's callbacks run on exactly one thread at a time, so a
 * thread-local slot is lane-confined state — no synchronization, no
 * cross-thread visibility needed. */
inline u64 &
currentTraceSlot()
{
    static thread_local u64 slot = 0;
    return slot;
}

inline u64
currentTrace()
{
    return currentTraceSlot();
}

/**
 * RAII scope: "the code below runs on behalf of trace @p t". A zero
 * @p t keeps the enclosing scope (a control-plane message carries no
 * trace and must not sever an outer one). Always restores on exit,
 * so nesting — a retransmit replay inside an RTO callback inside a
 * mail delivery — unwinds correctly.
 */
class TraceScope
{
  public:
    explicit TraceScope(u64 t) : prev_(currentTraceSlot())
    {
        if (t)
            currentTraceSlot() = t;
    }
    ~TraceScope() { currentTraceSlot() = prev_; }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    u64 prev_;
};

} // namespace rio::obs

#endif // RIO_OBS_TRACE_CTX_H
