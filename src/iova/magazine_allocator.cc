#include "iova/magazine_allocator.h"

#include "base/logging.h"

namespace rio::iova {

namespace {

constexpr u64 kStartPfn = 1;

} // namespace

MagazineIovaAllocator::MagazineIovaAllocator(u64 limit_pfn,
                                             cycles::CycleAccount *acct,
                                             const cycles::CostModel &cost)
    : IovaAllocator(acct, cost), limit_pfn_(limit_pfn), next_top_(limit_pfn)
{
    RIO_ASSERT(limit_pfn_ > kStartPfn, "degenerate IOVA space");
}

Result<IovaRange>
MagazineIovaAllocator::alloc(u64 npages)
{
    RIO_ASSERT(npages > 0, "alloc(0)");
    if (rounds_ > 0)
        return allocCached(npages);
    auto lock = lockScope();
    ++alloc_calls_;

    auto it = magazines_.find(npages);
    if (it != magazines_.end() && !it->second.empty()) {
        RbTree::Node *node = it->second.back();
        it->second.pop_back();
        ++magazine_hits_;
        charge(cycles::Cat::kMapIovaAlloc,
               cost_.iova_op_base + cost_.magazine_op);
        return takeNode(node);
    }
    return carveFresh(npages);
}

IovaRange
MagazineIovaAllocator::takeNode(RbTree::Node *node)
{
    RIO_ASSERT(!node->live, "live node parked in magazine");
    node->live = true;
    ++live_;
    return IovaRange{node->pfn_lo, node->pfn_hi};
}

Result<IovaRange>
MagazineIovaAllocator::carveFresh(u64 npages)
{
    // Magazine miss: carve fresh space just below everything used so
    // far. Parked ranges never leave the tree, so the space below
    // next_top_ is virgin and this stays O(log n) — the design's
    // whole point is that no linear scan ever happens. The caller
    // holds the allocator lock (tree surgery is depot-side work on
    // both layouts).
    const u64 pad = (next_top_ + 1) % npages;
    if (next_top_ < kStartPfn + npages + pad) {
        charge(cycles::Cat::kMapIovaAlloc, cost_.iova_op_base);
        return Status(ErrorCode::kResourceExhausted, "IOVA space exhausted");
    }
    const u64 pfn_lo = next_top_ - (npages + pad) + 1;
    const u64 pfn_hi = pfn_lo + npages - 1;
    next_top_ = pfn_lo - 1;

    u64 visits = 0;
    u64 rebalances = 0;
    RbTree::Node *node = tree_.insert(pfn_lo, pfn_hi, &visits, &rebalances);
    node->live = true;
    ++live_;
    charge(cycles::Cat::kMapIovaAlloc,
           cost_.iova_op_base + cost_.magazine_op +
               visits * cost_.rb_node_visit +
               rebalances * cost_.rb_rebalance_step);
    return IovaRange{node->pfn_lo, node->pfn_hi};
}

Result<IovaRange>
MagazineIovaAllocator::allocCached(u64 npages)
{
    ++alloc_calls_;
    CorePair &cp = core_pairs_[npages];
    // Loaded magazine: the lock-free common case.
    if (!cp.loaded.empty()) {
        RbTree::Node *node = cp.loaded.back();
        cp.loaded.pop_back();
        ++core_hits_;
        ++magazine_hits_;
        charge(cycles::Cat::kMapIovaAlloc,
               cost_.iova_op_base + cost_.magazine_op);
        return takeNode(node);
    }
    // Previous full: swap the pair in place, still lock-free.
    if (!cp.previous.empty()) {
        std::swap(cp.loaded, cp.previous);
        RbTree::Node *node = cp.loaded.back();
        cp.loaded.pop_back();
        ++core_hits_;
        ++magazine_hits_;
        charge(cycles::Cat::kMapIovaAlloc,
               cost_.iova_op_base + cost_.magazine_op +
                   cost_.cached_access);
        return takeNode(node);
    }
    // Both dry: exchange with the depot under the lock — the only
    // locked step, amortized over `rounds_` subsequent allocations.
    {
        auto lock = lockScope();
        auto it = depot_.find(npages);
        if (it != depot_.end() && !it->second.empty()) {
            cp.loaded = std::move(it->second.back());
            it->second.pop_back();
            ++depot_exchanges_;
            RbTree::Node *node = cp.loaded.back();
            cp.loaded.pop_back();
            ++magazine_hits_;
            charge(cycles::Cat::kMapIovaAlloc,
                   cost_.iova_op_base + cost_.magazine_op +
                       cost_.locked_rmw);
            return takeNode(node);
        }
    }
    auto lock = lockScope();
    return carveFresh(npages);
}

Result<IovaRange>
MagazineIovaAllocator::find(u64 pfn)
{
    auto lock = lockScope();
    u64 visits = 0;
    RbTree::Node *node = tree_.findContaining(pfn, &visits);
    charge(cycles::Cat::kUnmapIovaFind,
           visits * cost_.rb_node_visit + cost_.cached_access);
    if (!node || !node->live)
        return Status(ErrorCode::kNotFound, "IOVA not allocated");
    return IovaRange{node->pfn_lo, node->pfn_hi};
}

Status
MagazineIovaAllocator::free(u64 pfn_lo)
{
    if (rounds_ > 0) {
        // Lookup is mechanical (the driver located the range via
        // find() already); parking happens in the core pair.
        RbTree::Node *node = tree_.findContaining(pfn_lo, nullptr);
        if (!node || node->pfn_lo != pfn_lo || !node->live)
            return Status(ErrorCode::kNotFound,
                          "free of unallocated IOVA");
        return freeCached(node);
    }
    auto lock = lockScope();
    RbTree::Node *node = tree_.findContaining(pfn_lo, nullptr);
    if (!node || node->pfn_lo != pfn_lo || !node->live)
        return Status(ErrorCode::kNotFound, "free of unallocated IOVA");
    node->live = false;
    --live_;
    magazines_[node->pfn_hi - node->pfn_lo + 1].push_back(node);
    charge(cycles::Cat::kUnmapIovaFree,
           cost_.magazine_op + cost_.cached_access + cost_.locked_rmw);
    return Status::ok();
}

Status
MagazineIovaAllocator::freeCached(RbTree::Node *node)
{
    node->live = false;
    --live_;
    const u64 npages = node->pfn_hi - node->pfn_lo + 1;
    CorePair &cp = core_pairs_[npages];
    if (cp.loaded.size() >= rounds_) {
        if (cp.previous.size() < rounds_) {
            // Previous is empty (it is only ever empty or full):
            // swap, then park in the fresh loaded magazine.
            std::swap(cp.loaded, cp.previous);
            charge(cycles::Cat::kUnmapIovaFree, cost_.cached_access);
        } else {
            // Both full: hand the previous magazine to the depot
            // whole — the one locked step on the free path.
            auto lock = lockScope();
            depot_[npages].push_back(std::move(cp.previous));
            cp.previous = std::move(cp.loaded);
            cp.loaded = Magazine{};
            cp.loaded.reserve(rounds_);
            ++depot_exchanges_;
            charge(cycles::Cat::kUnmapIovaFree, cost_.locked_rmw);
        }
    }
    cp.loaded.push_back(node);
    ++core_hits_;
    charge(cycles::Cat::kUnmapIovaFree,
           cost_.magazine_op + cost_.cached_access);
    return Status::ok();
}

void
MagazineIovaAllocator::setCoreCache(u32 rounds)
{
    if (rounds == rounds_)
        return;
    // Re-layout: flush every parked range back into the flat depot
    // stacks, then adopt the new geometry. Pure configuration — no
    // cycles charged, no range leaves the tree.
    for (auto &[npages, pair] : core_pairs_) {
        for (RbTree::Node *n : pair.loaded)
            magazines_[npages].push_back(n);
        for (RbTree::Node *n : pair.previous)
            magazines_[npages].push_back(n);
    }
    core_pairs_.clear();
    for (auto &[npages, mags] : depot_)
        for (Magazine &m : mags)
            for (RbTree::Node *n : m)
                magazines_[npages].push_back(n);
    depot_.clear();
    rounds_ = rounds;
    if (rounds_ == 0)
        return;
    // Seed the new depot with full magazines from the flat stacks;
    // any remainder short of a full magazine goes to the core pair.
    for (auto &[npages, stack] : magazines_) {
        CorePair &cp = core_pairs_[npages];
        cp.loaded.reserve(rounds_);
        for (RbTree::Node *n : stack) {
            if (cp.loaded.size() < rounds_) {
                cp.loaded.push_back(n);
                continue;
            }
            if (depot_[npages].empty() ||
                depot_[npages].back().size() >= rounds_)
                depot_[npages].emplace_back();
            depot_[npages].back().push_back(n);
        }
    }
    magazines_.clear();
}

} // namespace rio::iova
