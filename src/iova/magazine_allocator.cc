#include "iova/magazine_allocator.h"

#include "base/logging.h"

namespace rio::iova {

namespace {

constexpr u64 kStartPfn = 1;

} // namespace

MagazineIovaAllocator::MagazineIovaAllocator(u64 limit_pfn,
                                             cycles::CycleAccount *acct,
                                             const cycles::CostModel &cost)
    : IovaAllocator(acct, cost), limit_pfn_(limit_pfn), next_top_(limit_pfn)
{
    RIO_ASSERT(limit_pfn_ > kStartPfn, "degenerate IOVA space");
}

Result<IovaRange>
MagazineIovaAllocator::alloc(u64 npages)
{
    RIO_ASSERT(npages > 0, "alloc(0)");
    auto lock = lockScope();
    ++alloc_calls_;

    auto it = magazines_.find(npages);
    if (it != magazines_.end() && !it->second.empty()) {
        RbTree::Node *node = it->second.back();
        it->second.pop_back();
        RIO_ASSERT(!node->live, "live node parked in magazine");
        node->live = true;
        ++live_;
        ++magazine_hits_;
        charge(cycles::Cat::kMapIovaAlloc,
               cost_.iova_op_base + cost_.magazine_op);
        return IovaRange{node->pfn_lo, node->pfn_hi};
    }

    // Magazine miss: carve fresh space just below everything used so
    // far. Parked ranges never leave the tree, so the space below
    // next_top_ is virgin and this stays O(log n) — the design's
    // whole point is that no linear scan ever happens.
    const u64 pad = (next_top_ + 1) % npages;
    if (next_top_ < kStartPfn + npages + pad) {
        charge(cycles::Cat::kMapIovaAlloc, cost_.iova_op_base);
        return Status(ErrorCode::kResourceExhausted, "IOVA space exhausted");
    }
    const u64 pfn_lo = next_top_ - (npages + pad) + 1;
    const u64 pfn_hi = pfn_lo + npages - 1;
    next_top_ = pfn_lo - 1;

    u64 visits = 0;
    u64 rebalances = 0;
    RbTree::Node *node = tree_.insert(pfn_lo, pfn_hi, &visits, &rebalances);
    node->live = true;
    ++live_;
    charge(cycles::Cat::kMapIovaAlloc,
           cost_.iova_op_base + cost_.magazine_op +
               visits * cost_.rb_node_visit +
               rebalances * cost_.rb_rebalance_step);
    return IovaRange{node->pfn_lo, node->pfn_hi};
}

Result<IovaRange>
MagazineIovaAllocator::find(u64 pfn)
{
    auto lock = lockScope();
    u64 visits = 0;
    RbTree::Node *node = tree_.findContaining(pfn, &visits);
    charge(cycles::Cat::kUnmapIovaFind,
           visits * cost_.rb_node_visit + cost_.cached_access);
    if (!node || !node->live)
        return Status(ErrorCode::kNotFound, "IOVA not allocated");
    return IovaRange{node->pfn_lo, node->pfn_hi};
}

Status
MagazineIovaAllocator::free(u64 pfn_lo)
{
    auto lock = lockScope();
    RbTree::Node *node = tree_.findContaining(pfn_lo, nullptr);
    if (!node || node->pfn_lo != pfn_lo || !node->live)
        return Status(ErrorCode::kNotFound, "free of unallocated IOVA");
    node->live = false;
    --live_;
    magazines_[node->pfn_hi - node->pfn_lo + 1].push_back(node);
    charge(cycles::Cat::kUnmapIovaFree,
           cost_.magazine_op + cost_.cached_access + cost_.locked_rmw);
    return Status::ok();
}

} // namespace rio::iova
