/**
 * @file
 * Faithful model of the Linux 3.4 IOVA allocator
 * (drivers/iommu/iova.c): top-down allocation below a DMA limit pfn,
 * a red-black tree of allocated ranges, and the cached32_node
 * heuristic whose reset behaviour causes the allocation pathology the
 * paper measures (§3.2): after certain frees the next allocation
 * linearly scans the tree from the rightmost node across all live
 * mappings.
 */
#ifndef RIO_IOVA_LINUX_ALLOCATOR_H
#define RIO_IOVA_LINUX_ALLOCATOR_H

#include "iova/iova_allocator.h"
#include "iova/rbtree.h"

namespace rio::iova {

/**
 * The stock allocator used by the strict and defer modes.
 *
 * Algorithm (== __alloc_and_insert_iova_range of Linux 3.4):
 *  - allocation starts from the cached node (or rb_last when the
 *    cache is empty) and walks left looking for a size-aligned gap;
 *  - on insert the cache points at the new (lowest) node;
 *  - on free of a range at-or-above the cached node, the cache moves
 *    to the freed node's successor, or empties if there is none —
 *    the reset that triggers the linear rescans.
 */
class LinuxIovaAllocator : public IovaAllocator
{
  public:
    /**
     * @param limit_pfn allocate at or below this pfn (Linux uses the
     * 32-bit DMA limit, 0xFFFFF for 4 KB pages).
     */
    LinuxIovaAllocator(u64 limit_pfn, cycles::CycleAccount *acct,
                       const cycles::CostModel &cost);

    Result<IovaRange> alloc(u64 npages) override;
    Result<IovaRange> find(u64 pfn) override;
    Status free(u64 pfn_lo) override;

    u64 live() const override { return tree_.size(); }
    u64 treeSize() const override { return tree_.size(); }

    /** Scan-length statistics, used to demonstrate the pathology. */
    u64 lastAllocVisits() const { return last_alloc_visits_; }
    u64 totalAllocVisits() const { return total_alloc_visits_; }
    u64 allocCalls() const { return alloc_calls_; }

    /** True when the cached-node heuristic currently has a node. */
    bool hasCachedNode() const { return cached_node_ != nullptr; }

    /** Tree structural check, for property tests. */
    bool validate() const { return tree_.validate(); }

  private:
    static u64 padSize(u64 size, u64 limit_pfn) { return (limit_pfn + 1) % size; }

    void cachedInsertUpdate(RbTree::Node *node) { cached_node_ = node; }
    void cachedDeleteUpdate(RbTree::Node *freed, u64 *visits);

    u64 limit_pfn_;
    RbTree tree_;
    RbTree::Node *cached_node_ = nullptr;

    u64 last_alloc_visits_ = 0;
    u64 total_alloc_visits_ = 0;
    u64 alloc_calls_ = 0;
};

} // namespace rio::iova

#endif // RIO_IOVA_LINUX_ALLOCATOR_H
