#include "iova/rbtree.h"

#include "base/logging.h"

namespace rio::iova {

RbTree::RbTree()
{
    nil_.red = false;
    nil_.parent = nil_.left = nil_.right = &nil_;
    root_ = &nil_;
}

RbTree::~RbTree()
{
    clear();
}

void
RbTree::clear()
{
    destroySubtree(root_);
    root_ = &nil_;
    size_ = 0;
}

void
RbTree::destroySubtree(Node *n)
{
    if (isNil(n))
        return;
    destroySubtree(n->left);
    destroySubtree(n->right);
    delete n;
}

void
RbTree::rotateLeft(Node *x)
{
    Node *y = x->right;
    x->right = y->left;
    if (!isNil(y->left))
        y->left->parent = x;
    y->parent = x->parent;
    if (isNil(x->parent))
        root_ = y;
    else if (x == x->parent->left)
        x->parent->left = y;
    else
        x->parent->right = y;
    y->left = x;
    x->parent = y;
}

void
RbTree::rotateRight(Node *x)
{
    Node *y = x->left;
    x->left = y->right;
    if (!isNil(y->right))
        y->right->parent = x;
    y->parent = x->parent;
    if (isNil(x->parent))
        root_ = y;
    else if (x == x->parent->right)
        x->parent->right = y;
    else
        x->parent->left = y;
    y->right = x;
    x->parent = y;
}

RbTree::Node *
RbTree::insert(u64 pfn_lo, u64 pfn_hi, u64 *visits, u64 *rebalances)
{
    RIO_ASSERT(pfn_lo <= pfn_hi, "inverted range");
    Node *z = new Node();
    z->pfn_lo = pfn_lo;
    z->pfn_hi = pfn_hi;
    z->left = z->right = z->parent = &nil_;
    z->red = true;

    Node *y = &nil_;
    Node *x = root_;
    while (!isNil(x)) {
        if (visits)
            ++*visits;
        y = x;
        RIO_ASSERT(pfn_hi < x->pfn_lo || pfn_lo > x->pfn_hi,
                   "inserting overlapping IOVA range [", pfn_lo, ",",
                   pfn_hi, "] vs [", x->pfn_lo, ",", x->pfn_hi, "]");
        x = (pfn_lo < x->pfn_lo) ? x->left : x->right;
    }
    z->parent = y;
    if (isNil(y))
        root_ = z;
    else if (pfn_lo < y->pfn_lo)
        y->left = z;
    else
        y->right = z;

    insertFixup(z, rebalances);
    ++size_;
    return z;
}

void
RbTree::insertFixup(Node *z, u64 *rebalances)
{
    while (z->parent->red) {
        if (rebalances)
            ++*rebalances;
        Node *gp = z->parent->parent;
        if (z->parent == gp->left) {
            Node *uncle = gp->right;
            if (uncle->red) {
                z->parent->red = false;
                uncle->red = false;
                gp->red = true;
                z = gp;
            } else {
                if (z == z->parent->right) {
                    z = z->parent;
                    rotateLeft(z);
                }
                z->parent->red = false;
                gp->red = true;
                rotateRight(gp);
            }
        } else {
            Node *uncle = gp->left;
            if (uncle->red) {
                z->parent->red = false;
                uncle->red = false;
                gp->red = true;
                z = gp;
            } else {
                if (z == z->parent->left) {
                    z = z->parent;
                    rotateRight(z);
                }
                z->parent->red = false;
                gp->red = true;
                rotateLeft(gp);
            }
        }
    }
    root_->red = false;
}

void
RbTree::transplant(Node *u, Node *v)
{
    if (isNil(u->parent))
        root_ = v;
    else if (u == u->parent->left)
        u->parent->left = v;
    else
        u->parent->right = v;
    v->parent = u->parent;
}

RbTree::Node *
RbTree::minimum(Node *n, u64 *visits) const
{
    while (!isNil(n->left)) {
        if (visits)
            ++*visits;
        n = n->left;
    }
    return n;
}

void
RbTree::erase(Node *z, u64 *visits, u64 *rebalances)
{
    RIO_ASSERT(z != nullptr && !isNil(z), "erasing null node");
    Node *y = z;
    Node *x;
    bool y_was_red = y->red;
    if (isNil(z->left)) {
        x = z->right;
        transplant(z, z->right);
    } else if (isNil(z->right)) {
        x = z->left;
        transplant(z, z->left);
    } else {
        y = minimum(z->right, visits);
        y_was_red = y->red;
        x = y->right;
        if (y->parent == z) {
            x->parent = y;
        } else {
            transplant(y, y->right);
            y->right = z->right;
            y->right->parent = y;
        }
        transplant(z, y);
        y->left = z->left;
        y->left->parent = y;
        y->red = z->red;
    }
    if (!y_was_red)
        eraseFixup(x, rebalances);
    delete z;
    --size_;
}

void
RbTree::eraseFixup(Node *x, u64 *rebalances)
{
    while (x != root_ && !x->red) {
        if (rebalances)
            ++*rebalances;
        if (x == x->parent->left) {
            Node *w = x->parent->right;
            if (w->red) {
                w->red = false;
                x->parent->red = true;
                rotateLeft(x->parent);
                w = x->parent->right;
            }
            if (!w->left->red && !w->right->red) {
                w->red = true;
                x = x->parent;
            } else {
                if (!w->right->red) {
                    w->left->red = false;
                    w->red = true;
                    rotateRight(w);
                    w = x->parent->right;
                }
                w->red = x->parent->red;
                x->parent->red = false;
                w->right->red = false;
                rotateLeft(x->parent);
                x = root_;
            }
        } else {
            Node *w = x->parent->left;
            if (w->red) {
                w->red = false;
                x->parent->red = true;
                rotateRight(x->parent);
                w = x->parent->left;
            }
            if (!w->right->red && !w->left->red) {
                w->red = true;
                x = x->parent;
            } else {
                if (!w->left->red) {
                    w->right->red = false;
                    w->red = true;
                    rotateLeft(w);
                    w = x->parent->left;
                }
                w->red = x->parent->red;
                x->parent->red = false;
                w->left->red = false;
                rotateRight(x->parent);
                x = root_;
            }
        }
    }
    x->red = false;
}

RbTree::Node *
RbTree::findContaining(u64 pfn, u64 *visits) const
{
    Node *n = root_;
    while (!isNil(n)) {
        if (visits)
            ++*visits;
        if (pfn < n->pfn_lo)
            n = n->left;
        else if (pfn > n->pfn_hi)
            n = n->right;
        else
            return n;
    }
    return nullptr;
}

RbTree::Node *
RbTree::first() const
{
    if (isNil(root_))
        return nullptr;
    Node *n = root_;
    while (!isNil(n->left))
        n = n->left;
    return n;
}

RbTree::Node *
RbTree::last() const
{
    if (isNil(root_))
        return nullptr;
    Node *n = root_;
    while (!isNil(n->right))
        n = n->right;
    return n;
}

RbTree::Node *
RbTree::next(Node *node) const
{
    RIO_ASSERT(node && !isNil(node), "next(null)");
    if (!isNil(node->right)) {
        Node *n = node->right;
        while (!isNil(n->left))
            n = n->left;
        return n;
    }
    Node *p = node->parent;
    while (!isNil(p) && node == p->right) {
        node = p;
        p = p->parent;
    }
    return isNil(p) ? nullptr : p;
}

RbTree::Node *
RbTree::prev(Node *node) const
{
    RIO_ASSERT(node && !isNil(node), "prev(null)");
    if (!isNil(node->left)) {
        Node *n = node->left;
        while (!isNil(n->right))
            n = n->right;
        return n;
    }
    Node *p = node->parent;
    while (!isNil(p) && node == p->left) {
        node = p;
        p = p->parent;
    }
    return isNil(p) ? nullptr : p;
}

bool
RbTree::validateNode(const Node *n, int black_depth, int &expected,
                     u64 lo_bound, u64 hi_bound) const
{
    if (isNil(n)) {
        if (expected == -1)
            expected = black_depth;
        return black_depth == expected;
    }
    if (n->pfn_lo > n->pfn_hi)
        return false;
    if (n->pfn_lo < lo_bound || n->pfn_hi > hi_bound)
        return false;
    if (n->red && (n->left->red || n->right->red))
        return false;
    const int depth = black_depth + (n->red ? 0 : 1);
    const u64 left_hi = n->pfn_lo == 0 ? 0 : n->pfn_lo - 1;
    if (!isNil(n->left) && n->pfn_lo == 0)
        return false;
    return validateNode(n->left, depth, expected, lo_bound, left_hi) &&
           validateNode(n->right, depth, expected, n->pfn_hi + 1, hi_bound);
}

bool
RbTree::validate() const
{
    if (isNil(root_))
        return true;
    if (root_->red)
        return false;
    int expected = -1;
    return validateNode(root_, 0, expected, 0, ~u64{0});
}

} // namespace rio::iova
