/**
 * @file
 * Red-black tree of IOVA ranges, modeled on the Linux kernel's
 * lib/rbtree.c as used by drivers/iommu/iova.c. Implemented from
 * scratch so that the allocators can count the *actual* node visits
 * and rebalancing steps their algorithms perform — the quantity the
 * paper's Table 1 costs are made of.
 */
#ifndef RIO_IOVA_RBTREE_H
#define RIO_IOVA_RBTREE_H

#include "base/types.h"

namespace rio::iova {

/**
 * A red-black tree whose nodes are disjoint [pfn_lo, pfn_hi] IOVA
 * ranges, ordered by pfn_lo. Nodes are owned by the tree.
 */
class RbTree
{
  public:
    struct Node
    {
        u64 pfn_lo = 0;
        u64 pfn_hi = 0;
        /**
         * True while the range is handed out to a caller; false when
         * it is parked in a magazine (strict+ keeps freed ranges in
         * the tree, which is why its tree is fuller — §3.2).
         */
        bool live = true;

      private:
        friend class RbTree;
        Node *parent = nullptr;
        Node *left = nullptr;
        Node *right = nullptr;
        bool red = false;
    };

    RbTree();
    ~RbTree();
    RbTree(const RbTree &) = delete;
    RbTree &operator=(const RbTree &) = delete;

    /**
     * Insert a new disjoint range. @p visits / @p rebalances are
     * incremented per node examined / per fixup step, for cycle
     * charging. Returns the owned node.
     */
    Node *insert(u64 pfn_lo, u64 pfn_hi, u64 *visits, u64 *rebalances);

    /** Remove and destroy @p node. */
    void erase(Node *node, u64 *visits, u64 *rebalances);

    /** Find the range containing @p pfn, or nullptr. */
    Node *findContaining(u64 pfn, u64 *visits) const;

    /** Leftmost / rightmost nodes (nullptr when empty). */
    Node *first() const;
    Node *last() const;

    /** In-order neighbors (nullptr at the ends). */
    Node *next(Node *node) const;
    Node *prev(Node *node) const;

    u64 size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Destroy all nodes. */
    void clear();

    /**
     * Check the red-black invariants (root black, no red-red edges,
     * equal black heights, ordered disjoint ranges). For tests.
     */
    bool validate() const;

  private:
    bool isNil(const Node *n) const { return n == &nil_; }
    Node *nil() { return &nil_; }

    void rotateLeft(Node *x);
    void rotateRight(Node *x);
    void insertFixup(Node *z, u64 *rebalances);
    void eraseFixup(Node *x, u64 *rebalances);
    void transplant(Node *u, Node *v);
    Node *minimum(Node *n, u64 *visits) const;
    void destroySubtree(Node *n);
    bool validateNode(const Node *n, int black_depth, int &expected,
                      u64 lo_bound, u64 hi_bound) const;

    // Sentinel nil node (CLRS-style): simplifies erase fixup.
    mutable Node nil_;
    Node *root_;
    u64 size_ = 0;
};

} // namespace rio::iova

#endif // RIO_IOVA_RBTREE_H
