/**
 * @file
 * IOVA allocator interface. The baseline IOMMU driver needs an
 * allocator of I/O-virtual page ranges; the paper contrasts the stock
 * Linux allocator (whose cached-node heuristic exhibits an O(live)
 * pathology, Table 1 "iova alloc": 3,986 cycles) with the authors'
 * constant-time allocator (strict+/defer+: 92 cycles).
 */
#ifndef RIO_IOVA_IOVA_ALLOCATOR_H
#define RIO_IOVA_IOVA_ALLOCATOR_H

#include "base/status.h"
#include "base/types.h"
#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"
#include "des/spinlock.h"

namespace rio::iova {

/** An allocated IOVA page range [pfn_lo, pfn_hi], inclusive. */
struct IovaRange
{
    u64 pfn_lo = 0;
    u64 pfn_hi = 0;

    u64 npages() const { return pfn_hi - pfn_lo + 1; }
    IovaAddr addr() const { return pfn_lo << kPageShift; }
};

/**
 * Allocator of IOVA page ranges. Implementations charge cycles into
 * the supplied CycleAccount at the point where work happens, so the
 * Table 1 component costs emerge from the algorithms themselves.
 *
 * The three-call protocol mirrors the Linux unmap path: the driver
 * first *finds* the range for an address (charged as "iova find"),
 * then *frees* it (charged as "iova free"). alloc() is charged as
 * "iova alloc".
 */
class IovaAllocator
{
  public:
    IovaAllocator(cycles::CycleAccount *acct, const cycles::CostModel &cost)
        : acct_(acct), cost_(cost)
    {
    }
    virtual ~IovaAllocator() = default;

    IovaAllocator(const IovaAllocator &) = delete;
    IovaAllocator &operator=(const IovaAllocator &) = delete;

    /**
     * Allocate @p npages contiguous IOVA pages, size-aligned as the
     * Linux allocator does. Fails with kResourceExhausted when the
     * space is full.
     */
    virtual Result<IovaRange> alloc(u64 npages) = 0;

    /**
     * Look up the live range containing @p pfn (the unmap path's
     * find_iova()). Returns kNotFound for unknown or already-freed
     * pfns — the double-unmap case callers must handle.
     */
    virtual Result<IovaRange> find(u64 pfn) = 0;

    /**
     * Release the range whose low pfn is @p pfn_lo. Must have been
     * returned by alloc() and not yet freed.
     */
    virtual Status free(u64 pfn_lo) = 0;

    /** Ranges currently allocated-and-not-freed. */
    virtual u64 live() const = 0;

    /** Nodes resident in the search structure (>= live for strict+). */
    virtual u64 treeSize() const = 0;

    /**
     * Model Linux's globally locked allocator (§3.2): every public
     * operation runs under @p lock, with spin-waits charged to this
     * allocator's account at @p core's virtual time. The lock is
     * typically shared by every baseline handle of one DmaContext so
     * cores contend on it; unset (the default) means uncontended use.
     */
    void
    setContention(des::SimSpinlock *lock, des::Core *core)
    {
        lock_ = lock;
        lock_core_ = core;
    }

  protected:
    /** Serialize a public operation on the shared allocator lock. */
    des::SpinGuard
    lockScope()
    {
        return des::SpinGuard(lock_, lock_core_, acct_);
    }

    void
    charge(cycles::Cat cat, Cycles c)
    {
        if (acct_)
            acct_->charge(cat, c);
    }

    cycles::CycleAccount *acct_;
    const cycles::CostModel &cost_;
    des::SimSpinlock *lock_ = nullptr;
    des::Core *lock_core_ = nullptr;
};

} // namespace rio::iova

#endif // RIO_IOVA_IOVA_ALLOCATOR_H
