#include "iova/linux_allocator.h"

#include "base/logging.h"

namespace rio::iova {

namespace {

/** Lowest allocatable pfn (Linux's IOVA_START_PFN). */
constexpr u64 kStartPfn = 1;

} // namespace

LinuxIovaAllocator::LinuxIovaAllocator(u64 limit_pfn,
                                       cycles::CycleAccount *acct,
                                       const cycles::CostModel &cost)
    : IovaAllocator(acct, cost), limit_pfn_(limit_pfn)
{
    RIO_ASSERT(limit_pfn_ > kStartPfn, "degenerate IOVA space");
}

Result<IovaRange>
LinuxIovaAllocator::alloc(u64 npages)
{
    RIO_ASSERT(npages > 0, "alloc(0)");
    auto lock = lockScope();
    u64 visits = 0;
    u64 rebalances = 0;
    u64 limit_pfn = limit_pfn_;

    // __get_cached_rbnode: resume just below the cached node, or
    // start from the rightmost node after a cache reset — the path
    // that makes some allocations linear in the live-IOVA count.
    RbTree::Node *curr;
    if (cached_node_) {
        limit_pfn = cached_node_->pfn_lo - 1;
        curr = tree_.prev(cached_node_);
        ++visits;
    } else {
        curr = tree_.last();
        if (curr)
            ++visits;
    }

    while (curr) {
        ++visits;
        if (limit_pfn < curr->pfn_lo) {
            // Entirely above the remaining window; move left.
        } else if (limit_pfn <= curr->pfn_hi) {
            // Window top lands inside this range; skip below it.
            limit_pfn = curr->pfn_lo - 1;
        } else {
            const u64 pad = padSize(npages, limit_pfn);
            if (curr->pfn_hi + npages + pad <= limit_pfn)
                break; // found a free, size-aligned slot
            limit_pfn = curr->pfn_lo - 1;
        }
        curr = tree_.prev(curr);
    }

    const u64 pad = padSize(npages, limit_pfn);
    if (!curr) {
        if (kStartPfn + npages + pad > limit_pfn) {
            charge(cycles::Cat::kMapIovaAlloc,
                   visits * cost_.rb_node_visit + cost_.iova_op_base);
            return Status(ErrorCode::kResourceExhausted,
                          "IOVA space exhausted");
        }
    }

    const u64 pfn_lo = limit_pfn - (npages + pad) + 1;
    const u64 pfn_hi = pfn_lo + npages - 1;
    RbTree::Node *node = tree_.insert(pfn_lo, pfn_hi, &visits, &rebalances);
    cachedInsertUpdate(node);

    ++alloc_calls_;
    last_alloc_visits_ = visits;
    total_alloc_visits_ += visits;
    charge(cycles::Cat::kMapIovaAlloc,
           visits * cost_.rb_node_visit +
               rebalances * cost_.rb_rebalance_step + cost_.iova_op_base);
    return IovaRange{pfn_lo, pfn_hi};
}

Result<IovaRange>
LinuxIovaAllocator::find(u64 pfn)
{
    auto lock = lockScope();
    u64 visits = 0;
    RbTree::Node *node = tree_.findContaining(pfn, &visits);
    charge(cycles::Cat::kUnmapIovaFind,
           visits * cost_.rb_node_visit + cost_.cached_access);
    if (!node)
        return Status(ErrorCode::kNotFound, "IOVA not allocated");
    return IovaRange{node->pfn_lo, node->pfn_hi};
}

Status
LinuxIovaAllocator::free(u64 pfn_lo)
{
    auto lock = lockScope();
    // The driver already located the range via find(); Linux's
    // __free_iova() takes that pointer directly, so this lookup is
    // mechanical and not charged.
    RbTree::Node *node = tree_.findContaining(pfn_lo, nullptr);
    if (!node || node->pfn_lo != pfn_lo)
        return Status(ErrorCode::kNotFound, "free of unallocated IOVA");

    u64 visits = 0;
    u64 rebalances = 0;
    cachedDeleteUpdate(node, &visits);
    tree_.erase(node, &visits, &rebalances);
    charge(cycles::Cat::kUnmapIovaFree,
           visits * cost_.rb_node_visit +
               rebalances * cost_.rb_rebalance_step + cost_.iova_op_base +
               cost_.linux_free_extra);
    return Status::ok();
}

void
LinuxIovaAllocator::cachedDeleteUpdate(RbTree::Node *freed, u64 *visits)
{
    // __cached_rbnode_delete_update: freeing at or above the cached
    // node moves the cache to the freed node's successor — or resets
    // it entirely when the rightmost range is freed, forcing the next
    // allocation to rescan from rb_last.
    if (!cached_node_)
        return;
    if (freed->pfn_lo >= cached_node_->pfn_lo) {
        RbTree::Node *succ = tree_.next(freed);
        ++*visits;
        if (succ && succ->pfn_lo < limit_pfn_)
            cached_node_ = succ;
        else
            cached_node_ = nullptr;
    }
}

} // namespace rio::iova
