/**
 * @file
 * Constant-time IOVA allocator modeled on the authors' design (their
 * companion FAST'15 paper, cited as [37]): freed ranges are parked in
 * per-size magazines and remain resident in the red-black tree, so
 * reallocation of a same-size range is a magazine pop — O(1) — and
 * the tree only ever grows toward the steady-state working set.
 *
 * Side effect the paper calls out (§3.2): because parked ranges stay
 * in the tree, the tree is *fuller* than the stock allocator's, so
 * the unmap-path lookup ("iova find") is deeper and costlier
 * (Table 1: 418 vs. 249 cycles) while alloc and free become ~100 and
 * ~60 cycles. Both effects emerge here from the same mechanism.
 */
#ifndef RIO_IOVA_MAGAZINE_ALLOCATOR_H
#define RIO_IOVA_MAGAZINE_ALLOCATOR_H

#include <unordered_map>
#include <vector>

#include "iova/iova_allocator.h"
#include "iova/rbtree.h"

namespace rio::iova {

/** The allocator behind the paper's strict+ and defer+ modes. */
class MagazineIovaAllocator : public IovaAllocator
{
  public:
    MagazineIovaAllocator(u64 limit_pfn, cycles::CycleAccount *acct,
                          const cycles::CostModel &cost);

    Result<IovaRange> alloc(u64 npages) override;
    Result<IovaRange> find(u64 pfn) override;
    Status free(u64 pfn_lo) override;

    u64 live() const override { return live_; }
    u64 treeSize() const override { return tree_.size(); }

    /** Ranges currently parked in magazines. */
    u64 parked() const { return tree_.size() - live_; }

    /** Allocations served from a magazine (steady state: ~all). */
    u64 magazineHits() const { return magazine_hits_; }
    u64 allocCalls() const { return alloc_calls_; }

    bool validate() const { return tree_.validate(); }

  private:
    u64 limit_pfn_;
    /** Top of the never-yet-used address space (fresh carve point). */
    u64 next_top_;
    RbTree tree_;
    std::unordered_map<u64, std::vector<RbTree::Node *>> magazines_;
    u64 live_ = 0;
    u64 magazine_hits_ = 0;
    u64 alloc_calls_ = 0;
};

} // namespace rio::iova

#endif // RIO_IOVA_MAGAZINE_ALLOCATOR_H
