/**
 * @file
 * Constant-time IOVA allocator modeled on the authors' design (their
 * companion FAST'15 paper, cited as [37]): freed ranges are parked in
 * per-size magazines and remain resident in the red-black tree, so
 * reallocation of a same-size range is a magazine pop — O(1) — and
 * the tree only ever grows toward the steady-state working set.
 *
 * Side effect the paper calls out (§3.2): because parked ranges stay
 * in the tree, the tree is *fuller* than the stock allocator's, so
 * the unmap-path lookup ("iova find") is deeper and costlier
 * (Table 1: 418 vs. 249 cycles) while alloc and free become ~100 and
 * ~60 cycles. Both effects emerge here from the same mechanism.
 *
 * Depot granularity: by default every operation goes straight to the
 * shared depot under the allocator lock — one lock acquisition and
 * one locked RMW per op, the per-handle layering the ROADMAP lists
 * as perf debt. setCoreCache() installs the full Bonwick scheme: a
 * per-core pair of bounded magazines (loaded + previous) served
 * without the lock, exchanging whole magazines with the locked depot
 * only when both run dry or both fill — amortizing the lock to one
 * acquisition per `rounds` operations.
 */
#ifndef RIO_IOVA_MAGAZINE_ALLOCATOR_H
#define RIO_IOVA_MAGAZINE_ALLOCATOR_H

#include <unordered_map>
#include <vector>

#include "iova/iova_allocator.h"
#include "iova/rbtree.h"

namespace rio::iova {

/** The allocator behind the paper's strict+ and defer+ modes. */
class MagazineIovaAllocator : public IovaAllocator
{
  public:
    MagazineIovaAllocator(u64 limit_pfn, cycles::CycleAccount *acct,
                          const cycles::CostModel &cost);

    Result<IovaRange> alloc(u64 npages) override;
    Result<IovaRange> find(u64 pfn) override;
    Status free(u64 pfn_lo) override;

    u64 live() const override { return live_; }
    u64 treeSize() const override { return tree_.size(); }

    /** Ranges currently parked in magazines. */
    u64 parked() const { return tree_.size() - live_; }

    /** Allocations served from a magazine (steady state: ~all). */
    u64 magazineHits() const { return magazine_hits_; }
    u64 allocCalls() const { return alloc_calls_; }

    /**
     * Install the per-core magazine pair in front of the depot.
     * @p rounds is the magazine capacity M (ops between depot
     * exchanges in steady state); 0 restores the direct-depot layout.
     * Call only while nothing is parked in the core pair (fresh
     * allocator or right after construction).
     */
    void setCoreCache(u32 rounds);
    u32 coreCacheRounds() const { return rounds_; }

    /** Ops served by the core pair without touching the lock. */
    u64 coreHits() const { return core_hits_; }
    /** Whole-magazine exchanges with the locked depot. */
    u64 depotExchanges() const { return depot_exchanges_; }

    bool validate() const { return tree_.validate(); }

  private:
    using Magazine = std::vector<RbTree::Node *>;

    /** The core's loaded/previous pair for one size class. */
    struct CorePair
    {
        Magazine loaded;
        Magazine previous;
    };

    Result<IovaRange> allocCached(u64 npages);
    Status freeCached(RbTree::Node *node);
    Result<IovaRange> carveFresh(u64 npages);
    IovaRange takeNode(RbTree::Node *node);

    u64 limit_pfn_;
    /** Top of the never-yet-used address space (fresh carve point). */
    u64 next_top_;
    RbTree tree_;
    /** Depot. rounds_ == 0: flat per-size stacks of single ranges
     * (the legacy layout). rounds_ > 0: per-size stacks of *full*
     * magazines, exchanged whole. */
    std::unordered_map<u64, std::vector<RbTree::Node *>> magazines_;
    std::unordered_map<u64, std::vector<Magazine>> depot_;
    std::unordered_map<u64, CorePair> core_pairs_;
    u32 rounds_ = 0;
    u64 live_ = 0;
    u64 magazine_hits_ = 0;
    u64 alloc_calls_ = 0;
    u64 core_hits_ = 0;
    u64 depot_exchanges_ = 0;
};

} // namespace rio::iova

#endif // RIO_IOVA_MAGAZINE_ALLOCATOR_H
