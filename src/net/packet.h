/**
 * @file
 * Minimal packet/segmentation vocabulary shared by the NIC model and
 * the workloads: Ethernet MTU framing, TCP-like MSS segmentation and
 * wire-occupancy accounting.
 */
#ifndef RIO_NET_PACKET_H
#define RIO_NET_PACKET_H

#include "base/types.h"

namespace rio::net {

/** Ethernet payload MTU and the TCP-like MSS under 40 B of headers. */
inline constexpr u32 kMtu = 1500;
inline constexpr u32 kMss = 1448; // 1500 - 20 (IP) - 32 (TCP w/ tstamp)

/** Protocol headers per packet (Ethernet 14 + IP 20 + TCP 32). */
inline constexpr u32 kHeaderBytes = 66;

/**
 * Extra wire occupancy per frame beyond the payload: headers, CRC
 * (4), preamble+SFD (8) and inter-packet gap (12).
 */
inline constexpr u32 kWireOverhead = kHeaderBytes + 4 + 8 + 12;

/**
 * RoCEv2-style RDMA framing per message: Ethernet 14 + IP 20 + UDP 8
 * + BTH 12 + ICRC 4 (RETH/AETH folded in). Used by the RDMA NIC's
 * serialization accounting instead of the TCP header stack.
 */
inline constexpr u32 kRdmaHeaderBytes = 58;

/** Number of MSS-sized segments a message of @p bytes occupies. */
constexpr u64
segmentsFor(u64 bytes)
{
    if (bytes == 0)
        return 1; // a bare ACK / zero-length message still frames
    return (bytes + kMss - 1) / kMss;
}

/** Payload bytes of segment @p i (0-based) of a message. */
constexpr u32
segmentPayload(u64 bytes, u64 i)
{
    const u64 full = bytes / kMss;
    if (i < full)
        return kMss;
    return static_cast<u32>(bytes - full * kMss);
}

/** Nanoseconds a frame with @p payload bytes occupies a link. */
constexpr double
wireTimeNs(u32 payload_bytes, double gbps)
{
    return static_cast<double>((payload_bytes + kWireOverhead) * 8) / gbps;
}

/** A packet in flight on the simulated wire. */
struct Packet
{
    u32 payload_bytes = 0;
    u64 flow = 0;   //!< opaque flow/slot tag for request tracking
    u32 kind = 0;   //!< workload-defined (data/ack/request/response)
};

} // namespace rio::net

#endif // RIO_NET_PACKET_H
