/**
 * @file
 * The rIOMMU hardware model: the rtranslate / rtable_walk /
 * riotlb_entry_sync / rprefetch routines of Figure 10, operating on
 * the memory-resident rDEVICE / rRING / rPTE structures and a
 * one-entry-per-ring rIOTLB.
 *
 * As with the baseline model, translation cost is reported per call
 * for the §5.3 study but never charged to the core: the paper's
 * validated performance model (§3.3) shows only driver-side cycles
 * matter end to end.
 */
#ifndef RIO_RIOMMU_RIOMMU_H
#define RIO_RIOMMU_RIOMMU_H

#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "cycles/cost_model.h"
#include "mem/phys_mem.h"
#include "riommu/riotlb.h"
#include "riommu/structures.h"

namespace rio::iommu {
class VirtStage2;
}

namespace rio::riommu {

/**
 * Configuration of the rDEVICE/rRING descriptor-fetch model — the
 * cluster-scale ablation. The base model (model_fetch = false, the
 * default and the paper's single-NIC setting) treats the descriptors
 * as free: with a handful of rings their working set trivially fits
 * any on-chip cache. At fleet scale a device with tens of thousands
 * of per-connection QP rings has hundreds of kilobytes of rRING
 * descriptors, and each rtable_walk's descriptor load becomes a real
 * dependent memory reference. Turning model_fetch on charges that
 * reference; hot_entries > 0 additionally models a small
 * direct-mapped on-chip tier over the flat rDEVICE table (two-level
 * rDEVICE: SRAM tier + in-memory table) that absorbs fetches for
 * recently-walked rings.
 */
struct RdCacheConfig
{
    bool model_fetch = false; //!< charge descriptor fetches at all?
    u32 hot_entries = 0;      //!< direct-mapped tier slots (pow2); 0 = none
};

/** Counters of the descriptor-fetch model (all zero while off). */
struct RdCacheStats
{
    u64 fetches = 0;    //!< descriptor loads on the translation path
    u64 hot_hits = 0;   //!< absorbed by the on-chip tier
    u64 hot_misses = 0; //!< paid a memory reference
};

/** Result of one rtranslate call. */
struct RTranslation
{
    PhysAddr pa = 0;
    bool riotlb_hit = false;   //!< ring entry was cached
    bool prefetch_hit = false; //!< satisfied from the next field
    Cycles hw_cycles = 0;
    /** Memory references of this translation: 1 (the rPTE fetch) on a
     * flat-table walk, plus stage-2 references for the data page
     * under nested virtualization (at most 5 total); 0 on a hit. */
    int mem_refs = 0;
};

/** The rIOMMU hardware. One instance serves all rings of all devices. */
class Riommu
{
  public:
    Riommu(mem::PhysicalMemory &pm, const cycles::CostModel &cost,
           bool prefetch_enabled = true);

    Riommu(const Riommu &) = delete;
    Riommu &operator=(const Riommu &) = delete;

    // ---- OS-side configuration ---------------------------------------
    /**
     * Bind @p bdf to its rDEVICE array (the analogue of a context
     * table entry pointing at an rDEVICE, §4).
     * @param rdevice_base physical address of the rRING descriptor
     *        array
     * @param nrings number of rRING descriptors in it
     */
    void attachDevice(Bdf bdf, PhysAddr rdevice_base, u16 nrings);

    /** Unbind and drop all of the device's rIOTLB entries. */
    void detachDevice(Bdf bdf);

    // ---- hardware-side translation ------------------------------------
    /**
     * rtranslate (Figure 10), extended with the access length so a
     * burst DMA is bounds-checked against rPTE.size in one call:
     * faults unless [offset, offset+len) fits the mapping and @p
     * access is permitted by rPTE.dir.
     */
    Result<RTranslation> translate(Bdf bdf, RIova iova, Access access,
                                   u64 len = 1);

    /** Device writes @p len bytes at @p iova. */
    Status dmaWrite(Bdf bdf, RIova iova, const void *src, u64 len);

    /** Device reads @p len bytes from @p iova. */
    Status dmaRead(Bdf bdf, RIova iova, void *dst, u64 len);

    // ---- invalidation interface ----------------------------------------
    /**
     * riotlb_invalidate: drop the single rIOTLB entry of (bdf, rid).
     * Cost (the paper models 2,150 cycles, like a baseline IOTLB
     * invalidation) is charged by the driver at end-of-burst.
     */
    void invalidateRing(Bdf bdf, u16 rid);

    // ---- observability ---------------------------------------------------
    const std::vector<iommu::FaultRecord> &faults() const { return faults_; }
    void clearFaults() { faults_.clear(); }

    /**
     * Per-ring fault latch. The flat table makes every fault
     * attributable to a single ring, so instead of a shared fault log
     * the rIOMMU latches the *first* fault of each (device, ring) in
     * a per-ring register; later faults on the same ring are dropped
     * until the driver clears the latch. Returns null if no fault is
     * latched.
     */
    const iommu::FaultRecord *ringFault(Bdf bdf, u16 rid) const;

    /** Driver acknowledges and clears the (bdf, rid) latch. */
    void clearRingFault(Bdf bdf, u16 rid);

    /** Number of rings with a currently-latched fault. */
    size_t latchedRingFaults() const { return ring_faults_.size(); }

    Riotlb &riotlb() { return riotlb_; }
    const Riotlb &riotlb() const { return riotlb_; }

    /** Combined memory references paid by rIOTLB-miss walks (stage-1
     * rPTE fetches + stage-2, summed over the run) — the huge-page
     * stage-2 ablation's counterpart to Iommu::walkMemRefs(). */
    u64 walkMemRefs() const { return walk_mem_refs_; }

    bool prefetchEnabled() const { return prefetch_enabled_; }
    void setPrefetchEnabled(bool on) { prefetch_enabled_ = on; }

    /**
     * Install the descriptor-fetch model. hot_entries must be a power
     * of two (or 0). Resets the hot tier and its stats; with
     * model_fetch false this is a no-op model-wise, preserving the
     * paper's single-NIC cost accounting bit for bit.
     */
    void setRdCache(const RdCacheConfig &cfg);
    const RdCacheConfig &rdCacheConfig() const { return rdcache_cfg_; }
    const RdCacheStats &rdCacheStats() const { return rdcache_stats_; }

    /**
     * Install (or remove) the nested-virtualization stage-2 hook.
     * The rDEVICE / rRING descriptors and the flat rPTE tables are
     * registered with the host by a paravirtual hypercall at guest
     * boot (and pinned), so only the rPTE fetch itself and the final
     * data page cost stage-combined references — the flat-table walk
     * stays ~5 references where the radix walk balloons to 24.
     */
    void setStage2(iommu::VirtStage2 *s2) { stage2_ = s2; }
    iommu::VirtStage2 *stage2() const { return stage2_; }

    /** Is @p bdf currently attached (has an rDEVICE)? */
    bool attached(Bdf bdf) const
    {
        return getDomain(bdf.pack()) != nullptr;
    }

    /**
     * Record a use-after-detach DMA attempt: the lifecycle guard
     * intercepts the access before it reaches translate(), but the
     * fault still lands in the debug vector and the per-ring latch
     * like any hardware-detected one.
     */
    void
    recordDetachedFault(Bdf bdf, RIova iova, iommu::Access access)
    {
        fault(bdf.pack(), iova, access, iommu::FaultReason::kDetached);
    }

  private:
    struct RDeviceInfo
    {
        PhysAddr base = 0;
        u16 nrings = 0;
    };

    /** get_domain of Figure 10. */
    const RDeviceInfo *getDomain(u16 sid) const;

    /** Read rRING descriptor @p rid of the device. */
    RRingDesc readRingDesc(const RDeviceInfo &dev, u16 rid) const;

    /**
     * Account one translation-path rRING descriptor load under the
     * fetch model: probe the hot tier, charge a dependent memory
     * reference on a miss, and install the tag. No-op while
     * model_fetch is off.
     */
    void chargeDescFetch(u16 sid, u16 rid, Cycles *hw, int *mem_refs);

    /** Read rPTE @p rentry from a flat table. */
    RPte readPte(const RRingDesc &ring, u32 rentry) const;

    /** rtable_walk: validate indices and build a fresh rIOTLB entry.
     * @p mem_refs accumulates the rPTE fetch (pinned descriptors are
     * free — see setStage2). */
    Result<RiotlbEntry> tableWalk(u16 sid, RIova iova, Cycles *hw,
                                  int *mem_refs);

    /** rprefetch: try to stash the next rPTE into @p entry. */
    void prefetch(const RDeviceInfo &dev, RiotlbEntry &entry);

    /** riotlb_entry_sync: advance @p entry to iova.rentry. */
    Status entrySync(u16 sid, RIova iova, RiotlbEntry &entry, Cycles *hw,
                     bool *prefetch_hit, int *mem_refs);

    void fault(u16 sid, RIova iova, Access access,
               iommu::FaultReason reason);

    static u32
    latchKey(u16 sid, u16 rid)
    {
        return (static_cast<u32>(sid) << 16) | rid;
    }

    mem::PhysicalMemory &pm_;
    const cycles::CostModel &cost_;
    bool prefetch_enabled_;
    iommu::VirtStage2 *stage2_ = nullptr;
    Riotlb riotlb_;
    std::unordered_map<u16, RDeviceInfo> devices_;
    std::vector<iommu::FaultRecord> faults_;
    std::unordered_map<u32, iommu::FaultRecord> ring_faults_;
    RdCacheConfig rdcache_cfg_;
    RdCacheStats rdcache_stats_;
    u64 walk_mem_refs_ = 0;
    /** Direct-mapped hot-tier tags, tag+1 per slot (0 = empty). */
    std::vector<u32> rdcache_tags_;
};

} // namespace rio::riommu

#endif // RIO_RIOMMU_RIOMMU_H
