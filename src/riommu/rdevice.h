/**
 * @file
 * Driver-side rIOMMU state for one device: owns the memory-resident
 * rDEVICE descriptor array and flat rPTE tables, plus the
 * software-only tail/nmapped fields of Figure 9b, and implements the
 * map/unmap functions of Figure 11.
 *
 * Cycle charging mirrors the paper's accounting: the locked tail
 * bump is the (trivial) "IOVA allocation", the rPTE update plus
 * sync_mem is the "page table" work, and the end-of-burst
 * riotlb_invalidate is the only explicit IOTLB invalidation.
 */
#ifndef RIO_RIOMMU_RDEVICE_H
#define RIO_RIOMMU_RDEVICE_H

#include <vector>

#include "base/status.h"
#include "cycles/cost_model.h"
#include "cycles/cycle_account.h"
#include "riommu/riommu.h"

namespace rio::iommu {
class VirtTraps;
}

namespace rio::riommu {

/** Geometry + allocation policy of one rRING. */
struct RingSpec
{
    u32 size = 0;
    RingMode mode = RingMode::kSequential;
};

/** One device's driver-side rIOMMU handle. */
class RDevice
{
  public:
    /**
     * Allocate and register the rDEVICE array and one flat table per
     * ring.
     * @param ring_sizes rRING sizes, N entries each; the paper's
     *        guidance is N >= L, the max number of in-flight IOVAs.
     * @param coherent whether rIOMMU table walks snoop CPU caches;
     *        false models the riommu- variant (extra barrier+flush
     *        per update, ~1.1K extra cycles per mlx packet, §5.2).
     */
    RDevice(Riommu &riommu, mem::PhysicalMemory &pm, Bdf bdf,
            std::vector<u32> ring_sizes, bool coherent,
            const cycles::CostModel &cost, cycles::CycleAccount *acct);

    /** Same, with per-ring allocation policy (§4's AHCI extension). */
    RDevice(Riommu &riommu, mem::PhysicalMemory &pm, Bdf bdf,
            std::vector<RingSpec> rings, bool coherent,
            const cycles::CostModel &cost, cycles::CycleAccount *acct);
    ~RDevice();

    RDevice(const RDevice &) = delete;
    RDevice &operator=(const RDevice &) = delete;

    /**
     * map (Figure 11): allocate the ring's tail rPTE, fill it, make
     * it visible, and pack the rIOVA (offset 0). Returns kOverflow
     * when the ring has no free entry — legal, means "slow down".
     */
    Result<RIova> map(u16 rid, PhysAddr pa, u32 size, DmaDir dir);

    /**
     * unmap (Figure 11): invalidate the rPTE, make it visible, and —
     * only when @p end_of_burst — invalidate the ring's single
     * rIOTLB entry (2,150 cycles, amortized over the burst).
     */
    Status unmap(RIova iova, bool end_of_burst);

    // ---- introspection -------------------------------------------------
    Bdf bdf() const { return bdf_; }
    u16 nrings() const { return static_cast<u16>(rings_.size()); }
    u32 ringSize(u16 rid) const { return rings_.at(rid).size; }
    u32 tail(u16 rid) const { return rings_.at(rid).tail; }
    u32 nmapped(u16 rid) const { return rings_.at(rid).nmapped; }

    /** Read an rPTE back from memory (tests). */
    RPte readPte(u16 rid, u32 rentry) const;

    PhysAddr rdeviceBase() const { return rdevice_base_; }

    /**
     * Install a guest-write trap sink for rPTE stores. Only the
     * shadow strategy traps these (rIOMMU's memory-only protocol has
     * no MMIO register per map; emulated and nested guests run the
     * rPTE path untrapped once the tables are registered).
     */
    void setVirtTraps(iommu::VirtTraps *traps) { traps_ = traps; }

    /** Physical address of ring @p rid's flat rPTE table (tests and
     * the fault-injection harness). */
    PhysAddr tableAddr(u16 rid) const { return rings_.at(rid).table; }

  private:
    struct RingState
    {
        PhysAddr table = 0;
        u32 size = 0;
        RingMode mode = RingMode::kSequential;
        u32 tail = 0;    // SW only (sequential mode)
        u32 nmapped = 0; // SW only
        std::vector<u32> free_slots; // SW only (free-list mode)
    };

    /** Charge one sync_mem (Figure 11) to @p cat. */
    void chargeSync(cycles::Cat cat, Cycles update_cost);

    void
    charge(cycles::Cat cat, Cycles c)
    {
        if (acct_)
            acct_->charge(cat, c);
    }

    Riommu &riommu_;
    mem::PhysicalMemory &pm_;
    Bdf bdf_;
    bool coherent_;
    const cycles::CostModel &cost_;
    cycles::CycleAccount *acct_;
    iommu::VirtTraps *traps_ = nullptr;

    PhysAddr rdevice_base_ = 0;
    u64 rdevice_bytes_ = 0;
    std::vector<RingState> rings_;
};

} // namespace rio::riommu

#endif // RIO_RIOMMU_RDEVICE_H
