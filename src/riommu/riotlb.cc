#include "riommu/riotlb.h"

namespace rio::riommu {

RiotlbEntry *
Riotlb::find(u16 bdf, u16 rid)
{
    auto it = entries_.find(key(bdf, rid));
    return it == entries_.end() ? nullptr : &it->second;
}

void
Riotlb::insert(const RiotlbEntry &entry)
{
    auto [it, fresh] = entries_.emplace(key(entry.bdf, entry.rid), entry);
    if (!fresh) {
        // Replacing the ring's single entry implicitly invalidates the
        // previous translation (§4) — the count the rIOMMU design
        // trades explicit QI descriptors against.
        obs_implicit_.inc();
        it->second = entry;
    }
}

bool
Riotlb::invalidate(u16 bdf, u16 rid)
{
    ++stats_.invalidations;
    return entries_.erase(key(bdf, rid)) > 0;
}

const RiotlbEntry *
Riotlb::peek(u16 bdf, u16 rid) const
{
    auto it = entries_.find(key(bdf, rid));
    return it == entries_.end() ? nullptr : &it->second;
}

} // namespace rio::riommu
