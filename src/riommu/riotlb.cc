#include "riommu/riotlb.h"

namespace rio::riommu {

RiotlbEntry *
Riotlb::find(u16 bdf, u16 rid)
{
    auto it = entries_.find(key(bdf, rid));
    return it == entries_.end() ? nullptr : &it->second;
}

void
Riotlb::insert(const RiotlbEntry &entry)
{
    entries_[key(entry.bdf, entry.rid)] = entry;
}

bool
Riotlb::invalidate(u16 bdf, u16 rid)
{
    ++stats_.invalidations;
    return entries_.erase(key(bdf, rid)) > 0;
}

const RiotlbEntry *
Riotlb::peek(u16 bdf, u16 rid) const
{
    auto it = entries_.find(key(bdf, rid));
    return it == entries_.end() ? nullptr : &it->second;
}

} // namespace rio::riommu
