#include "riommu/riommu.h"

#include <algorithm>

#include "base/logging.h"
#include "iommu/virt_hooks.h"

namespace rio::riommu {

Riommu::Riommu(mem::PhysicalMemory &pm, const cycles::CostModel &cost,
               bool prefetch_enabled)
    : pm_(pm), cost_(cost), prefetch_enabled_(prefetch_enabled)
{
}

void
Riommu::attachDevice(Bdf bdf, PhysAddr rdevice_base, u16 nrings)
{
    devices_[bdf.pack()] = RDeviceInfo{rdevice_base, nrings};
}

void
Riommu::detachDevice(Bdf bdf)
{
    const u16 sid = bdf.pack();
    auto it = devices_.find(sid);
    if (it == devices_.end())
        return;
    for (u16 rid = 0; rid < it->second.nrings; ++rid)
        riotlb_.invalidate(sid, rid);
    devices_.erase(it);
    // The hot tier caches descriptor identities of the departed
    // device; a detach is rare enough that a full flush is the
    // hardware-honest move (context-cache invalidation flushes
    // dependent structures).
    std::fill(rdcache_tags_.begin(), rdcache_tags_.end(), 0u);
}

void
Riommu::setRdCache(const RdCacheConfig &cfg)
{
    RIO_ASSERT(cfg.hot_entries == 0 ||
                   (cfg.hot_entries & (cfg.hot_entries - 1)) == 0,
               "hot_entries must be a power of two");
    rdcache_cfg_ = cfg;
    rdcache_stats_ = RdCacheStats{};
    rdcache_tags_.assign(cfg.model_fetch ? cfg.hot_entries : 0, 0u);
}

void
Riommu::chargeDescFetch(u16 sid, u16 rid, Cycles *hw, int *mem_refs)
{
    if (!rdcache_cfg_.model_fetch)
        return;
    ++rdcache_stats_.fetches;
    const u32 tag = (static_cast<u32>(sid) << 16) | rid;
    if (!rdcache_tags_.empty()) {
        // Direct-mapped: Fibonacci-hash the tag into the tier. A hit
        // is an on-chip SRAM access, folded into the walk's base cost.
        const u32 slot = (tag * 0x9E3779B9u) >>
                         (32 - __builtin_ctz(rdcache_cfg_.hot_entries));
        if (rdcache_tags_[slot] == tag + 1) {
            ++rdcache_stats_.hot_hits;
            return;
        }
        rdcache_tags_[slot] = tag + 1;
    }
    // Tier miss (or no tier): the descriptor load is a dependent
    // memory reference ahead of the rPTE fetch.
    ++rdcache_stats_.hot_misses;
    *hw += cost_.hw_walk_level;
    if (mem_refs)
        ++*mem_refs;
}

void
Riommu::fault(u16 sid, RIova iova, Access access,
              iommu::FaultReason reason)
{
    const iommu::FaultRecord rec{Bdf::unpack(sid), iova.raw, access,
                                 reason};
    // Debug vector for tests, capped so fault storms stay bounded.
    constexpr size_t kMaxDebugFaults = 65536;
    if (faults_.size() < kMaxDebugFaults)
        faults_.push_back(rec);
    // First fault wins the per-ring latch; emplace keeps an existing
    // record, matching a hardware latch register.
    ring_faults_.emplace(latchKey(sid, iova.rid()), rec);
}

const iommu::FaultRecord *
Riommu::ringFault(Bdf bdf, u16 rid) const
{
    auto it = ring_faults_.find(latchKey(bdf.pack(), rid));
    return it == ring_faults_.end() ? nullptr : &it->second;
}

void
Riommu::clearRingFault(Bdf bdf, u16 rid)
{
    ring_faults_.erase(latchKey(bdf.pack(), rid));
}

const Riommu::RDeviceInfo *
Riommu::getDomain(u16 sid) const
{
    auto it = devices_.find(sid);
    return it == devices_.end() ? nullptr : &it->second;
}

RRingDesc
Riommu::readRingDesc(const RDeviceInfo &dev, u16 rid) const
{
    RRingDesc desc;
    const PhysAddr slot = dev.base + static_cast<u64>(rid) * RRingDesc::kBytes;
    desc.table = pm_.read64(slot);
    desc.size = pm_.read32(slot + 8);
    return desc;
}

RPte
Riommu::readPte(const RRingDesc &ring, u32 rentry) const
{
    const PhysAddr slot =
        ring.table + static_cast<u64>(rentry) * RPte::kBytes;
    return RPte::fromWords(pm_.read64(slot), pm_.read64(slot + 8));
}

void
Riommu::prefetch(const RDeviceInfo &dev, RiotlbEntry &entry)
{
    // rprefetch (Figure 10): stash a copy of the subsequent rPTE if
    // it is already valid. May run asynchronously in hardware; the
    // design works without it, so it is gated for the ablation bench.
    entry.next.valid = false;
    if (!prefetch_enabled_)
        return;
    const RRingDesc ring = readRingDesc(dev, entry.rid);
    if (ring.size <= 1)
        return;
    const u32 next = (entry.rentry + 1) % ring.size;
    const RPte pte = readPte(ring, next);
    if (pte.valid)
        entry.next = pte;
}

Result<RiotlbEntry>
Riommu::tableWalk(u16 sid, RIova iova, Cycles *hw, int *mem_refs)
{
    // rtable_walk (Figure 10): bounds-check rid/rentry against the
    // rDEVICE limits and require a valid rPTE; noncompliance is an
    // I/O page fault (errant DMA or buggy driver). One dependent
    // memory reference: the rPTE fetch. By default the rDEVICE/rRING
    // descriptors are treated as cached by the hardware (and under
    // nested virtualization pinned + pre-translated at registration);
    // the opt-in fetch model below instead charges the descriptor
    // load through the two-level rDEVICE tier — the honest accounting
    // once ring counts reach QP-fabric scale.
    *hw += cost_.hw_rwalk;
    if (mem_refs)
        ++*mem_refs;
    const RDeviceInfo *dev = getDomain(sid);
    if (!dev) {
        fault(sid, iova, Access::kRead, iommu::FaultReason::kNoContext);
        return Status(ErrorCode::kIoPageFault, "device has no rDEVICE");
    }
    if (iova.rid() >= dev->nrings) {
        fault(sid, iova, Access::kRead, iommu::FaultReason::kOutOfRange);
        return Status(ErrorCode::kIoPageFault, "rid out of range");
    }
    chargeDescFetch(sid, iova.rid(), hw, mem_refs);
    const RRingDesc ring = readRingDesc(*dev, iova.rid());
    if (iova.rentry() >= ring.size) {
        fault(sid, iova, Access::kRead, iommu::FaultReason::kOutOfRange);
        return Status(ErrorCode::kIoPageFault, "rentry out of range");
    }
    const RPte pte = readPte(ring, iova.rentry());
    if (!pte.valid) {
        fault(sid, iova, Access::kRead, iommu::FaultReason::kNotPresent);
        return Status(ErrorCode::kIoPageFault, "rPTE invalid");
    }
    if (pte.reserved_set) {
        fault(sid, iova, Access::kRead, iommu::FaultReason::kReservedBit);
        return Status(ErrorCode::kCorrupted, "reserved bits set in rPTE");
    }

    RiotlbEntry entry;
    entry.bdf = sid;
    entry.rid = iova.rid();
    entry.rentry = iova.rentry();
    entry.rpte = pte;
    prefetch(*dev, entry);
    ++riotlb_.stats().walks;
    return entry;
}

Status
Riommu::entrySync(u16 sid, RIova iova, RiotlbEntry &entry, Cycles *hw,
                  bool *prefetch_hit, int *mem_refs)
{
    // riotlb_entry_sync (Figure 10): the cached entry points at a
    // different rentry than this rIOVA. If the prefetched next rPTE
    // matches, advance in place; otherwise do a full walk.
    const RDeviceInfo *dev = getDomain(sid);
    if (!dev) {
        fault(sid, iova, Access::kRead, iommu::FaultReason::kNoContext);
        return Status(ErrorCode::kIoPageFault, "device has no rDEVICE");
    }
    // The sync path needs the ring's size (wrap arithmetic) before it
    // can tell prefetch hit from miss — a descriptor load even on the
    // happy path. A tableWalk fallback re-reads it, which the hot
    // tier (just primed here) absorbs.
    chargeDescFetch(sid, entry.rid, hw, mem_refs);
    const RRingDesc ring = readRingDesc(*dev, entry.rid);
    const u32 next = (entry.rentry + 1) % ring.size;

    if (entry.next.valid && iova.rentry() == next) {
        entry.rpte = entry.next;
        entry.rentry = next;
        entry.next.valid = false;
        *prefetch_hit = true;
        *hw += cost_.hw_tlb_hit;
        ++riotlb_.stats().prefetch_hits;
    } else {
        auto walked = tableWalk(sid, iova, hw, mem_refs);
        if (!walked.isOk())
            return walked.status();
        entry = walked.value();
        // tableWalk already prefetched into the fresh entry.
        return Status::ok();
    }
    prefetch(*dev, entry);
    return Status::ok();
}

Result<RTranslation>
Riommu::translate(Bdf bdf, RIova iova, Access access, u64 len)
{
    const u16 sid = bdf.pack();
    RiotlbStats &st = riotlb_.stats();
    ++st.lookups;

    RTranslation out;
    out.hw_cycles = cost_.hw_tlb_hit;

    RiotlbEntry *e = riotlb_.find(sid, iova.rid());
    if (!e) {
        auto walked = tableWalk(sid, iova, &out.hw_cycles, &out.mem_refs);
        if (!walked.isOk())
            return walked.status();
        riotlb_.insert(walked.value());
        e = riotlb_.find(sid, iova.rid());
        RIO_ASSERT(e, "entry vanished after insert");
    } else {
        out.riotlb_hit = true;
        ++st.hits;
        if (e->rentry != iova.rentry()) {
            ++st.synced;
            Status s = entrySync(sid, iova, *e, &out.hw_cycles,
                                 &out.prefetch_hit, &out.mem_refs);
            if (!s)
                return s;
        } else {
            ++st.current;
        }
    }

    // Permission and fine-grained bounds checks (rtranslate tail).
    const RPte &pte = e->rpte;
    if (len == 0 || iova.offset() >= pte.size ||
        len > pte.size - iova.offset()) {
        fault(sid, iova, access, iommu::FaultReason::kOutOfRange);
        return Status(ErrorCode::kIoPageFault,
                      "offset/length beyond mapping size");
    }
    if (!dirPermits(pte.dir, access)) {
        fault(sid, iova, access, iommu::FaultReason::kPermission);
        return Status(ErrorCode::kPermission, "DMA direction violation");
    }
    PhysAddr page_pa = pte.phys_addr;
    if (stage2_ && out.mem_refs > 0) {
        // A walk fetched a guest-physical rPTE: the data access needs
        // one stage-2 translation. rIOTLB/prefetch hits hold the
        // combined translation and pay nothing.
        int s2_refs = 0;
        page_pa = stage2_->deviceTranslate(page_pa, &s2_refs);
        out.mem_refs += s2_refs;
        out.hw_cycles +=
            static_cast<Cycles>(s2_refs) * cost_.hw_walk_level;
    }
    out.pa = page_pa + iova.offset();
    walk_mem_refs_ += static_cast<u64>(out.mem_refs);
    return out;
}

Status
Riommu::dmaWrite(Bdf bdf, RIova iova, const void *src, u64 len)
{
    auto tr = translate(bdf, iova, Access::kWrite, len);
    if (!tr.isOk())
        return tr.status();
    pm_.write(tr.value().pa, src, len);
    return Status::ok();
}

Status
Riommu::dmaRead(Bdf bdf, RIova iova, void *dst, u64 len)
{
    auto tr = translate(bdf, iova, Access::kRead, len);
    if (!tr.isOk())
        return tr.status();
    pm_.read(tr.value().pa, dst, len);
    return Status::ok();
}

void
Riommu::invalidateRing(Bdf bdf, u16 rid)
{
    riotlb_.invalidate(bdf.pack(), rid);
}

} // namespace rio::riommu
