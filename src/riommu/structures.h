/**
 * @file
 * The rIOMMU data structures of Figure 9, bit-widths included:
 *
 *   rDEVICE { u16 size; rRING rings[size]; }         (hardware-read)
 *   rRING   { u18 size; rPTE ring[size];
 *             u18 tail; u18 nmapped; }               (tail/nmapped SW-only)
 *   rPTE    { u64 phys_addr; u30 size; u02 dir;
 *             u01 valid; u31 unused; }               (128 bits)
 *   rIOVA   { u30 offset; u18 rentry; u16 rid; }     (64 bits)
 *
 * rPTE and the rDEVICE/rRING descriptors are memory-resident (the
 * hardware model really reads them from simulated physical memory);
 * rIOVA is a value type packed exactly as the paper lays it out.
 */
#ifndef RIO_RIOMMU_STRUCTURES_H
#define RIO_RIOMMU_STRUCTURES_H

#include "base/types.h"
#include "iommu/types.h"

namespace rio::riommu {

using iommu::Access;
using iommu::Bdf;
using iommu::DmaDir;

/**
 * How a rRING hands out its flat-table entries.
 *
 * kSequential is the paper's design: a tail pointer, two integer
 * bumps per map, FIFO unmaps. kFreeList is the extension sketched in
 * §4 ("It would be easy to extend rIOMMU to support [AHCI's
 * arbitrary-order] work mode as well"): entries are allocated from a
 * free list so maps and unmaps may happen in any order; the hardware
 * side is untouched (rIOVAs are just indices into the 1-D table),
 * only the next-entry prefetch loses its payoff.
 */
enum class RingMode : u8 { kSequential = 0, kFreeList = 1 };

/** Field widths fixed by the rIOVA layout. */
inline constexpr unsigned kOffsetBits = 30;
inline constexpr unsigned kRentryBits = 18;
inline constexpr unsigned kRidBits = 16;
inline constexpr u64 kMaxOffset = (u64{1} << kOffsetBits) - 1;
inline constexpr u64 kMaxRingSize = u64{1} << kRentryBits;   // 256 K entries
inline constexpr u64 kMaxRingsPerDevice = u64{1} << kRidBits;

/**
 * A packed rIOVA. The I/O device treats it as an opaque 64-bit DMA
 * address; the rIOMMU decodes it as (rid, rentry, offset).
 */
struct RIova
{
    u64 raw = 0;

    u32
    offset() const
    {
        return static_cast<u32>(raw & kMaxOffset);
    }

    u32
    rentry() const
    {
        return static_cast<u32>((raw >> kOffsetBits) &
                                ((u64{1} << kRentryBits) - 1));
    }

    u16
    rid() const
    {
        return static_cast<u16>(raw >> (kOffsetBits + kRentryBits));
    }

    /** pack_iova of Figure 11: the driver always packs offset = 0. */
    static RIova
    pack(u32 offset, u32 rentry, u16 rid)
    {
        return RIova{(static_cast<u64>(rid) << (kOffsetBits + kRentryBits)) |
                     (static_cast<u64>(rentry) << kOffsetBits) |
                     (offset & kMaxOffset)};
    }

    /** Same rIOVA with its offset adjusted by the caller (§4). */
    RIova
    withOffset(u32 offset) const
    {
        return RIova{(raw & ~kMaxOffset) | (offset & kMaxOffset)};
    }

    bool operator==(const RIova &o) const { return raw == o.raw; }
};

/**
 * In-memory rPTE image: 128 bits. Word 0 is the physical address
 * (not necessarily page aligned — rIOMMU protects at byte
 * granularity); word 1 packs size(30) | dir(2) | valid(1).
 */
struct RPte
{
    u64 phys_addr = 0;
    u32 size = 0;   // 30 bits used
    DmaDir dir = DmaDir::kNone;
    bool valid = false;
    /** Decode-only flag: reserved word-1 bits (33..63) were nonzero.
     * Never serialized — word1() always writes them as zero. */
    bool reserved_set = false;

    static constexpr u64 kBytes = 16; //!< footprint in the flat table
    /** Word-1 bits beyond size/dir/valid must be zero. */
    static constexpr u64 kWord1ReservedMask = ~u64{0} << 33;

    /** Serialize to the two memory words. */
    u64 word0() const { return phys_addr; }

    u64
    word1() const
    {
        return (static_cast<u64>(size) & kMaxOffset) |
               (static_cast<u64>(dir) << kOffsetBits) |
               (static_cast<u64>(valid) << (kOffsetBits + 2));
    }

    static RPte
    fromWords(u64 w0, u64 w1)
    {
        RPte pte;
        pte.phys_addr = w0;
        pte.size = static_cast<u32>(w1 & kMaxOffset);
        pte.dir = static_cast<DmaDir>((w1 >> kOffsetBits) & 0x3);
        pte.valid = ((w1 >> (kOffsetBits + 2)) & 0x1) != 0;
        pte.reserved_set = (w1 & kWord1ReservedMask) != 0;
        return pte;
    }
};

/**
 * In-memory rRING descriptor inside the rDEVICE array (16 bytes):
 * word 0 = physical address of the flat rPTE table, word 1 = size.
 * The tail and nmapped fields of Figure 9b are software-only state
 * and live in the driver (RDevice), invisible to hardware.
 */
struct RRingDesc
{
    PhysAddr table = 0;
    u32 size = 0;

    static constexpr u64 kBytes = 16;
};

} // namespace rio::riommu

#endif // RIO_RIOMMU_STRUCTURES_H
