#include "riommu/rdevice.h"

#include "base/logging.h"
#include "iommu/virt_hooks.h"

namespace rio::riommu {

namespace {

std::vector<RingSpec>
sequentialSpecs(const std::vector<u32> &sizes)
{
    std::vector<RingSpec> specs;
    specs.reserve(sizes.size());
    for (u32 size : sizes)
        specs.push_back(RingSpec{size, RingMode::kSequential});
    return specs;
}

} // namespace

RDevice::RDevice(Riommu &riommu, mem::PhysicalMemory &pm, Bdf bdf,
                 std::vector<u32> ring_sizes, bool coherent,
                 const cycles::CostModel &cost, cycles::CycleAccount *acct)
    : RDevice(riommu, pm, bdf, sequentialSpecs(ring_sizes), coherent,
              cost, acct)
{
}

RDevice::RDevice(Riommu &riommu, mem::PhysicalMemory &pm, Bdf bdf,
                 std::vector<RingSpec> rings, bool coherent,
                 const cycles::CostModel &cost, cycles::CycleAccount *acct)
    : riommu_(riommu), pm_(pm), bdf_(bdf), coherent_(coherent),
      cost_(cost), acct_(acct)
{
    RIO_ASSERT(!rings.empty(), "device needs at least one rRING");
    RIO_ASSERT(rings.size() <= kMaxRingsPerDevice, "too many rRINGs");

    rdevice_bytes_ = rings.size() * RRingDesc::kBytes;
    rdevice_base_ = pm_.allocContiguous(rdevice_bytes_);

    rings_.reserve(rings.size());
    for (size_t rid = 0; rid < rings.size(); ++rid) {
        const u32 size = rings[rid].size;
        RIO_ASSERT(size >= 1 && size <= kMaxRingSize,
                   "bad rRING size ", size);
        RingState ring;
        ring.size = size;
        ring.mode = rings[rid].mode;
        if (ring.mode == RingMode::kFreeList) {
            // Descending so the first allocation takes entry 0.
            ring.free_slots.reserve(size);
            for (u32 i = size; i > 0; --i)
                ring.free_slots.push_back(i - 1);
        }
        ring.table = pm_.allocContiguous(static_cast<u64>(size) *
                                         RPte::kBytes);
        rings_.push_back(std::move(ring));

        const PhysAddr slot = rdevice_base_ + rid * RRingDesc::kBytes;
        pm_.write64(slot, rings_.back().table);
        pm_.write32(slot + 8, size);
    }
    riommu_.attachDevice(bdf_, rdevice_base_,
                         static_cast<u16>(rings_.size()));
}

RDevice::~RDevice()
{
    riommu_.detachDevice(bdf_);
    for (const RingState &ring : rings_) {
        const u64 bytes = static_cast<u64>(ring.size) * RPte::kBytes;
        for (u64 off = 0; off < pageAlignUp(bytes); off += kPageSize)
            pm_.freeFrame(ring.table + off);
    }
    for (u64 off = 0; off < pageAlignUp(rdevice_bytes_); off += kPageSize)
        pm_.freeFrame(rdevice_base_ + off);
}

void
RDevice::chargeSync(cycles::Cat cat, Cycles update_cost)
{
    // sync_mem (Figure 11): non-coherent walks need a barrier plus a
    // cacheline flush before the trailing barrier; coherent walks
    // need the trailing barrier only.
    Cycles c = update_cost;
    if (!coherent_)
        c += cost_.memory_barrier + cost_.cacheline_flush;
    c += cost_.memory_barrier;
    charge(cat, c);
}

Result<RIova>
RDevice::map(u16 rid, PhysAddr pa, u32 size, DmaDir dir)
{
    if (rid >= rings_.size())
        return Status(ErrorCode::kInvalidArgument, "bad rid");
    if (size == 0 || size > kMaxOffset)
        return Status(ErrorCode::kInvalidArgument, "bad mapping size");
    if (dir == DmaDir::kNone)
        return Status(ErrorCode::kInvalidArgument, "no direction");
    RingState &r = rings_[rid];

    // Locked section of Figure 11: the whole "IOVA allocation" is
    // two integer bumps — the contrast with Table 1's 3,986 cycles.
    charge(cycles::Cat::kMapIovaAlloc, cost_.locked_rmw);
    if (r.nmapped == r.size)
        return Status(ErrorCode::kOverflow, "rRING overflow");

    u32 t;
    if (r.mode == RingMode::kFreeList) {
        // §4's AHCI extension: entries come from a free list, so
        // (un)maps may happen in any order.
        t = r.free_slots.back();
        r.free_slots.pop_back();
    } else {
        t = r.tail;
        // Out-of-order unmaps can leave the tail entry still valid
        // even though nmapped < size; ring semantics forbid reusing
        // it.
        if (readPte(rid, t).valid) {
            return Status(ErrorCode::kOverflow,
                          "tail rPTE still valid (out-of-order unmap)");
        }
        r.tail = (r.tail + 1) % r.size;
    }
    ++r.nmapped;

    RPte pte;
    pte.phys_addr = pa;
    pte.size = size;
    pte.dir = dir;
    pte.valid = true;
    const PhysAddr slot = r.table + static_cast<u64>(t) * RPte::kBytes;
    pm_.write64(slot, pte.word0());
    pm_.write64(slot + 8, pte.word1());
    chargeSync(cycles::Cat::kMapPageTable, cost_.table_store);
    if (traps_)
        traps_->onTableWrite({iommu::TableWrite::Kind::kRpte,
                              RIova::pack(0, t, rid).raw,
                              pa >> kPageShift, true},
                             acct_);

    charge(cycles::Cat::kMapOther, cost_.map_other);
    return RIova::pack(0, t, rid);
}

Status
RDevice::unmap(RIova iova, bool end_of_burst)
{
    if (iova.rid() >= rings_.size())
        return Status(ErrorCode::kInvalidArgument, "bad rid");
    RingState &r = rings_[iova.rid()];
    if (iova.rentry() >= r.size)
        return Status(ErrorCode::kInvalidArgument, "bad rentry");

    const PhysAddr slot =
        r.table + static_cast<u64>(iova.rentry()) * RPte::kBytes;
    RPte pte = RPte::fromWords(pm_.read64(slot), pm_.read64(slot + 8));
    if (!pte.valid)
        return Status(ErrorCode::kNotFound, "unmap of invalid rPTE");

    pte.valid = false;
    pm_.write64(slot + 8, pte.word1());
    chargeSync(cycles::Cat::kUnmapPageTable, cost_.table_store);
    if (traps_)
        traps_->onTableWrite(
            {iommu::TableWrite::Kind::kRpte, iova.raw, 0, false}, acct_);

    RIO_ASSERT(r.nmapped > 0, "nmapped underflow");
    --r.nmapped;
    if (r.mode == RingMode::kFreeList) {
        r.free_slots.push_back(iova.rentry());
        // Out-of-order rings cannot amortize invalidations: a freed
        // slot may be remapped immediately, and a stale single-entry
        // rIOTLB copy of its old rPTE would then mistranslate. Every
        // unmap must invalidate — which is exactly why §4 judges
        // rIOMMU support for AHCI-style devices not worthwhile.
        end_of_burst = true;
    }
    charge(cycles::Cat::kUnmapIovaFree, cost_.locked_rmw);

    if (end_of_burst) {
        riommu_.invalidateRing(bdf_, iova.rid());
        charge(cycles::Cat::kUnmapIotlbInv, cost_.iotlb_invalidate_entry);
    }
    charge(cycles::Cat::kUnmapOther, cost_.unmap_other);
    return Status::ok();
}

RPte
RDevice::readPte(u16 rid, u32 rentry) const
{
    const RingState &r = rings_.at(rid);
    RIO_ASSERT(rentry < r.size, "rentry out of range");
    const PhysAddr slot =
        r.table + static_cast<u64>(rentry) * RPte::kBytes;
    return RPte::fromWords(pm_.read64(slot), pm_.read64(slot + 8));
}

} // namespace rio::riommu
