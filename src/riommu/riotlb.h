/**
 * @file
 * The rIOTLB (Figure 9e): at most ONE entry per (device, ring), each
 * caching the ring's current rPTE plus an optionally prefetched copy
 * of the next one. Because every new translation for a ring replaces
 * that ring's single entry, inserting is an *implicit* invalidation
 * of the previous translation — the property that lets the driver
 * issue explicit invalidations only at the end of a burst (§4).
 */
#ifndef RIO_RIOMMU_RIOTLB_H
#define RIO_RIOMMU_RIOTLB_H

#include <optional>
#include <unordered_map>

#include "base/types.h"
#include "obs/registry.h"
#include "riommu/structures.h"

namespace rio::riommu {

/** One rIOTLB entry (Figure 9e). */
struct RiotlbEntry
{
    u16 bdf = 0; //!< packed requester id
    u16 rid = 0;
    u32 rentry = 0;
    RPte rpte;
    RPte next; //!< prefetched successor; next.valid gates its use
};

/** Counters for tests and the §5.3/§5.4 benches. */
struct RiotlbStats
{
    u64 lookups = 0;
    u64 hits = 0;      //!< entry present for the ring
    u64 current = 0;   //!< ... and rentry already matched
    u64 synced = 0;    //!< ... advanced via riotlb_entry_sync
    u64 prefetch_hits = 0; //!< sync satisfied from the next field
    u64 walks = 0;     //!< full rtable_walks (miss or prefetch miss)
    u64 invalidations = 0;
};

/** The per-ring-single-entry TLB. */
class Riotlb
{
  public:
    /** riotlb_find: the entry for (bdf, rid), if any. */
    RiotlbEntry *find(u16 bdf, u16 rid);

    /** riotlb_insert: install/replace the ring's single entry. */
    void insert(const RiotlbEntry &entry);

    /** riotlb_invalidate: drop the ring's entry; true if present. */
    bool invalidate(u16 bdf, u16 rid);

    /** Drop everything (device reset). */
    void invalidateAll() { entries_.clear(); }

    /** Entries currently cached == number of active rings. */
    u64 size() const { return entries_.size(); }

    /** Entries cached for @p bdf (stale-mapping leak checks). */
    u64
    entriesFor(u16 bdf) const
    {
        u64 n = 0;
        for (const auto &[k, e] : entries_)
            n += ((k >> 16) == bdf) ? 1 : 0;
        return n;
    }

    /** Probe without stats side effects (for staleness tests). */
    const RiotlbEntry *peek(u16 bdf, u16 rid) const;

    RiotlbStats &stats() { return stats_; }
    const RiotlbStats &stats() const { return stats_; }
    void resetStats() { stats_ = RiotlbStats{}; }

  private:
    static u32
    key(u16 bdf, u16 rid)
    {
        return (static_cast<u32>(bdf) << 16) | rid;
    }

    std::unordered_map<u32, RiotlbEntry> entries_;
    RiotlbStats stats_;
    obs::Counter &obs_implicit_ =
        obs::registry().counter("riotlb.implicit_invalidations");
};

} // namespace rio::riommu

#endif // RIO_RIOMMU_RIOTLB_H
