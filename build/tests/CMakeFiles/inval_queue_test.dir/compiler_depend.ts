# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for inval_queue_test.
