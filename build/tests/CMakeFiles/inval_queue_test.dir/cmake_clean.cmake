file(REMOVE_RECURSE
  "CMakeFiles/inval_queue_test.dir/inval_queue_test.cc.o"
  "CMakeFiles/inval_queue_test.dir/inval_queue_test.cc.o.d"
  "inval_queue_test"
  "inval_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inval_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
