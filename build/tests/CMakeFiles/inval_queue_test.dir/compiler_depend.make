# Empty compiler generated dependencies file for inval_queue_test.
# This may be replaced when dependencies are built.
