file(REMOVE_RECURSE
  "CMakeFiles/ahci_test.dir/ahci_test.cc.o"
  "CMakeFiles/ahci_test.dir/ahci_test.cc.o.d"
  "ahci_test"
  "ahci_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
