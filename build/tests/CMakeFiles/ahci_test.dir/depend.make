# Empty dependencies file for ahci_test.
# This may be replaced when dependencies are built.
