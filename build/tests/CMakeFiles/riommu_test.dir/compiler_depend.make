# Empty compiler generated dependencies file for riommu_test.
# This may be replaced when dependencies are built.
