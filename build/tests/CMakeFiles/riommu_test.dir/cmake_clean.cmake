file(REMOVE_RECURSE
  "CMakeFiles/riommu_test.dir/riommu_test.cc.o"
  "CMakeFiles/riommu_test.dir/riommu_test.cc.o.d"
  "riommu_test"
  "riommu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riommu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
