file(REMOVE_RECURSE
  "CMakeFiles/cycles_test.dir/cycles_test.cc.o"
  "CMakeFiles/cycles_test.dir/cycles_test.cc.o.d"
  "cycles_test"
  "cycles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
