# Empty dependencies file for iova_test.
# This may be replaced when dependencies are built.
