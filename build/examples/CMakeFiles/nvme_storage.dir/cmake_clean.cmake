file(REMOVE_RECURSE
  "CMakeFiles/nvme_storage.dir/nvme_storage.cc.o"
  "CMakeFiles/nvme_storage.dir/nvme_storage.cc.o.d"
  "nvme_storage"
  "nvme_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvme_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
