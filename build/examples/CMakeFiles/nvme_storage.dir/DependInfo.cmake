
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/nvme_storage.cc" "examples/CMakeFiles/nvme_storage.dir/nvme_storage.cc.o" "gcc" "examples/CMakeFiles/nvme_storage.dir/nvme_storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dma/CMakeFiles/rio_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/rio_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/riommu/CMakeFiles/rio_riommu.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/rio_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rio_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/iova/CMakeFiles/rio_iova.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/rio_des.dir/DependInfo.cmake"
  "/root/repo/build/src/cycles/CMakeFiles/rio_cycles.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rio_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
