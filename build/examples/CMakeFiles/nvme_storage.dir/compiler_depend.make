# Empty compiler generated dependencies file for nvme_storage.
# This may be replaced when dependencies are built.
