file(REMOVE_RECURSE
  "CMakeFiles/out_of_order_disk.dir/out_of_order_disk.cc.o"
  "CMakeFiles/out_of_order_disk.dir/out_of_order_disk.cc.o.d"
  "out_of_order_disk"
  "out_of_order_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_order_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
