# Empty dependencies file for out_of_order_disk.
# This may be replaced when dependencies are built.
