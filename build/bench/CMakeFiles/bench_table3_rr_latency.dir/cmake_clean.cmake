file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_rr_latency.dir/bench_table3_rr_latency.cc.o"
  "CMakeFiles/bench_table3_rr_latency.dir/bench_table3_rr_latency.cc.o.d"
  "bench_table3_rr_latency"
  "bench_table3_rr_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_rr_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
