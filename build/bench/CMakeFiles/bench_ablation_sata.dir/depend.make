# Empty dependencies file for bench_ablation_sata.
# This may be replaced when dependencies are built.
