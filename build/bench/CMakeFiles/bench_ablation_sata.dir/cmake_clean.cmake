file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sata.dir/bench_ablation_sata.cc.o"
  "CMakeFiles/bench_ablation_sata.dir/bench_ablation_sata.cc.o.d"
  "bench_ablation_sata"
  "bench_ablation_sata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
