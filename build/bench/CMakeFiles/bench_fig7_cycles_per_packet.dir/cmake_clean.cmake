file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_cycles_per_packet.dir/bench_fig7_cycles_per_packet.cc.o"
  "CMakeFiles/bench_fig7_cycles_per_packet.dir/bench_fig7_cycles_per_packet.cc.o.d"
  "bench_fig7_cycles_per_packet"
  "bench_fig7_cycles_per_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cycles_per_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
