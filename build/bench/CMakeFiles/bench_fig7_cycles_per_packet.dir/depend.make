# Empty dependencies file for bench_fig7_cycles_per_packet.
# This may be replaced when dependencies are built.
