file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nvme.dir/bench_ablation_nvme.cc.o"
  "CMakeFiles/bench_ablation_nvme.dir/bench_ablation_nvme.cc.o.d"
  "bench_ablation_nvme"
  "bench_ablation_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
