# Empty compiler generated dependencies file for bench_ablation_nvme.
# This may be replaced when dependencies are built.
