# Empty dependencies file for bench_sec53_iotlb_miss.
# This may be replaced when dependencies are built.
