file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_iotlb_miss.dir/bench_sec53_iotlb_miss.cc.o"
  "CMakeFiles/bench_sec53_iotlb_miss.dir/bench_sec53_iotlb_miss.cc.o.d"
  "bench_sec53_iotlb_miss"
  "bench_sec53_iotlb_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_iotlb_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
