# Empty compiler generated dependencies file for bench_ablation_riommu.
# This may be replaced when dependencies are built.
