file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_riommu.dir/bench_ablation_riommu.cc.o"
  "CMakeFiles/bench_ablation_riommu.dir/bench_ablation_riommu.cc.o.d"
  "bench_ablation_riommu"
  "bench_ablation_riommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_riommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
