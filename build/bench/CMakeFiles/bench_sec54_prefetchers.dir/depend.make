# Empty dependencies file for bench_sec54_prefetchers.
# This may be replaced when dependencies are built.
