file(REMOVE_RECURSE
  "CMakeFiles/bench_sec54_prefetchers.dir/bench_sec54_prefetchers.cc.o"
  "CMakeFiles/bench_sec54_prefetchers.dir/bench_sec54_prefetchers.cc.o.d"
  "bench_sec54_prefetchers"
  "bench_sec54_prefetchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec54_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
