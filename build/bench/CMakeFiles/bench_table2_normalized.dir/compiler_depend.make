# Empty compiler generated dependencies file for bench_table2_normalized.
# This may be replaced when dependencies are built.
