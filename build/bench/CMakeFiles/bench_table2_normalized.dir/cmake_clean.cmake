file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_normalized.dir/bench_table2_normalized.cc.o"
  "CMakeFiles/bench_table2_normalized.dir/bench_table2_normalized.cc.o.d"
  "bench_table2_normalized"
  "bench_table2_normalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
