# Empty compiler generated dependencies file for rio_des.
# This may be replaced when dependencies are built.
