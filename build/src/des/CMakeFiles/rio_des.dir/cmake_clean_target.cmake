file(REMOVE_RECURSE
  "librio_des.a"
)
