file(REMOVE_RECURSE
  "CMakeFiles/rio_des.dir/core.cc.o"
  "CMakeFiles/rio_des.dir/core.cc.o.d"
  "CMakeFiles/rio_des.dir/simulator.cc.o"
  "CMakeFiles/rio_des.dir/simulator.cc.o.d"
  "librio_des.a"
  "librio_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
