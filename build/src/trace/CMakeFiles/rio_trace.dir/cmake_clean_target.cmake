file(REMOVE_RECURSE
  "librio_trace.a"
)
