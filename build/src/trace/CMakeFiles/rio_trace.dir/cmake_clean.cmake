file(REMOVE_RECURSE
  "CMakeFiles/rio_trace.dir/trace.cc.o"
  "CMakeFiles/rio_trace.dir/trace.cc.o.d"
  "librio_trace.a"
  "librio_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
