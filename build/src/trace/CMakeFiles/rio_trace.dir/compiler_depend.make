# Empty compiler generated dependencies file for rio_trace.
# This may be replaced when dependencies are built.
