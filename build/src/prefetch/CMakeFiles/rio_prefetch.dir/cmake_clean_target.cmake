file(REMOVE_RECURSE
  "librio_prefetch.a"
)
