file(REMOVE_RECURSE
  "CMakeFiles/rio_prefetch.dir/prefetcher.cc.o"
  "CMakeFiles/rio_prefetch.dir/prefetcher.cc.o.d"
  "CMakeFiles/rio_prefetch.dir/replay.cc.o"
  "CMakeFiles/rio_prefetch.dir/replay.cc.o.d"
  "librio_prefetch.a"
  "librio_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
