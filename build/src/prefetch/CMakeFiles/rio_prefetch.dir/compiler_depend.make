# Empty compiler generated dependencies file for rio_prefetch.
# This may be replaced when dependencies are built.
