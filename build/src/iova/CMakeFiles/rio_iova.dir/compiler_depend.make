# Empty compiler generated dependencies file for rio_iova.
# This may be replaced when dependencies are built.
