file(REMOVE_RECURSE
  "librio_iova.a"
)
