file(REMOVE_RECURSE
  "CMakeFiles/rio_iova.dir/linux_allocator.cc.o"
  "CMakeFiles/rio_iova.dir/linux_allocator.cc.o.d"
  "CMakeFiles/rio_iova.dir/magazine_allocator.cc.o"
  "CMakeFiles/rio_iova.dir/magazine_allocator.cc.o.d"
  "CMakeFiles/rio_iova.dir/rbtree.cc.o"
  "CMakeFiles/rio_iova.dir/rbtree.cc.o.d"
  "librio_iova.a"
  "librio_iova.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_iova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
