# Empty compiler generated dependencies file for rio_mem.
# This may be replaced when dependencies are built.
