file(REMOVE_RECURSE
  "CMakeFiles/rio_mem.dir/phys_mem.cc.o"
  "CMakeFiles/rio_mem.dir/phys_mem.cc.o.d"
  "librio_mem.a"
  "librio_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
