file(REMOVE_RECURSE
  "librio_mem.a"
)
