# Empty dependencies file for rio_cycles.
# This may be replaced when dependencies are built.
