file(REMOVE_RECURSE
  "CMakeFiles/rio_cycles.dir/cost_model.cc.o"
  "CMakeFiles/rio_cycles.dir/cost_model.cc.o.d"
  "CMakeFiles/rio_cycles.dir/cycle_account.cc.o"
  "CMakeFiles/rio_cycles.dir/cycle_account.cc.o.d"
  "librio_cycles.a"
  "librio_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
