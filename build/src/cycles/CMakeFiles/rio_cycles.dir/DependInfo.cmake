
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cycles/cost_model.cc" "src/cycles/CMakeFiles/rio_cycles.dir/cost_model.cc.o" "gcc" "src/cycles/CMakeFiles/rio_cycles.dir/cost_model.cc.o.d"
  "/root/repo/src/cycles/cycle_account.cc" "src/cycles/CMakeFiles/rio_cycles.dir/cycle_account.cc.o" "gcc" "src/cycles/CMakeFiles/rio_cycles.dir/cycle_account.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rio_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
