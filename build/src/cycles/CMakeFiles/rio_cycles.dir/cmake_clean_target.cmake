file(REMOVE_RECURSE
  "librio_cycles.a"
)
