# Empty compiler generated dependencies file for rio_ring.
# This may be replaced when dependencies are built.
