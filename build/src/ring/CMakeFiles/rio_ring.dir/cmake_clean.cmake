file(REMOVE_RECURSE
  "CMakeFiles/rio_ring.dir/descriptor_ring.cc.o"
  "CMakeFiles/rio_ring.dir/descriptor_ring.cc.o.d"
  "librio_ring.a"
  "librio_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
