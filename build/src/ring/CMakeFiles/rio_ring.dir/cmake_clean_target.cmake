file(REMOVE_RECURSE
  "librio_ring.a"
)
