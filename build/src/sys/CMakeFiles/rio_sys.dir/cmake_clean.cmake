file(REMOVE_RECURSE
  "CMakeFiles/rio_sys.dir/machine.cc.o"
  "CMakeFiles/rio_sys.dir/machine.cc.o.d"
  "librio_sys.a"
  "librio_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
