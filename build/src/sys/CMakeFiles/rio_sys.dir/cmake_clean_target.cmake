file(REMOVE_RECURSE
  "librio_sys.a"
)
