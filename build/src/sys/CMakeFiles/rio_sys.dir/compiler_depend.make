# Empty compiler generated dependencies file for rio_sys.
# This may be replaced when dependencies are built.
