file(REMOVE_RECURSE
  "CMakeFiles/rio_ahci.dir/ahci.cc.o"
  "CMakeFiles/rio_ahci.dir/ahci.cc.o.d"
  "librio_ahci.a"
  "librio_ahci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_ahci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
