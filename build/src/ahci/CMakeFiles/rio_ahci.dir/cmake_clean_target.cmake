file(REMOVE_RECURSE
  "librio_ahci.a"
)
