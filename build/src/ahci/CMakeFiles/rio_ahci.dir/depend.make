# Empty dependencies file for rio_ahci.
# This may be replaced when dependencies are built.
