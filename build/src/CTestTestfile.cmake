# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("cycles")
subdirs("mem")
subdirs("des")
subdirs("iova")
subdirs("iommu")
subdirs("riommu")
subdirs("dma")
subdirs("ring")
subdirs("nic")
subdirs("nvme")
subdirs("ahci")
subdirs("net")
subdirs("workloads")
subdirs("sys")
subdirs("trace")
subdirs("prefetch")
