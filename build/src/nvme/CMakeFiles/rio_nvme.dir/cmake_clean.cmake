file(REMOVE_RECURSE
  "CMakeFiles/rio_nvme.dir/nvme.cc.o"
  "CMakeFiles/rio_nvme.dir/nvme.cc.o.d"
  "librio_nvme.a"
  "librio_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
