file(REMOVE_RECURSE
  "librio_nvme.a"
)
