# Empty compiler generated dependencies file for rio_nvme.
# This may be replaced when dependencies are built.
