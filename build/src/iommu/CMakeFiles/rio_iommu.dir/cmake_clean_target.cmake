file(REMOVE_RECURSE
  "librio_iommu.a"
)
