
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iommu/inval_queue.cc" "src/iommu/CMakeFiles/rio_iommu.dir/inval_queue.cc.o" "gcc" "src/iommu/CMakeFiles/rio_iommu.dir/inval_queue.cc.o.d"
  "/root/repo/src/iommu/iommu.cc" "src/iommu/CMakeFiles/rio_iommu.dir/iommu.cc.o" "gcc" "src/iommu/CMakeFiles/rio_iommu.dir/iommu.cc.o.d"
  "/root/repo/src/iommu/iotlb.cc" "src/iommu/CMakeFiles/rio_iommu.dir/iotlb.cc.o" "gcc" "src/iommu/CMakeFiles/rio_iommu.dir/iotlb.cc.o.d"
  "/root/repo/src/iommu/page_table.cc" "src/iommu/CMakeFiles/rio_iommu.dir/page_table.cc.o" "gcc" "src/iommu/CMakeFiles/rio_iommu.dir/page_table.cc.o.d"
  "/root/repo/src/iommu/types.cc" "src/iommu/CMakeFiles/rio_iommu.dir/types.cc.o" "gcc" "src/iommu/CMakeFiles/rio_iommu.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rio_base.dir/DependInfo.cmake"
  "/root/repo/build/src/cycles/CMakeFiles/rio_cycles.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rio_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
