# Empty dependencies file for rio_iommu.
# This may be replaced when dependencies are built.
