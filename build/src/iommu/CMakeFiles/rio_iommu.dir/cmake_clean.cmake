file(REMOVE_RECURSE
  "CMakeFiles/rio_iommu.dir/inval_queue.cc.o"
  "CMakeFiles/rio_iommu.dir/inval_queue.cc.o.d"
  "CMakeFiles/rio_iommu.dir/iommu.cc.o"
  "CMakeFiles/rio_iommu.dir/iommu.cc.o.d"
  "CMakeFiles/rio_iommu.dir/iotlb.cc.o"
  "CMakeFiles/rio_iommu.dir/iotlb.cc.o.d"
  "CMakeFiles/rio_iommu.dir/page_table.cc.o"
  "CMakeFiles/rio_iommu.dir/page_table.cc.o.d"
  "CMakeFiles/rio_iommu.dir/types.cc.o"
  "CMakeFiles/rio_iommu.dir/types.cc.o.d"
  "librio_iommu.a"
  "librio_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
