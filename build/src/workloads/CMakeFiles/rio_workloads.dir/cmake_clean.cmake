file(REMOVE_RECURSE
  "CMakeFiles/rio_workloads.dir/netperf_rr.cc.o"
  "CMakeFiles/rio_workloads.dir/netperf_rr.cc.o.d"
  "CMakeFiles/rio_workloads.dir/request_load.cc.o"
  "CMakeFiles/rio_workloads.dir/request_load.cc.o.d"
  "CMakeFiles/rio_workloads.dir/storage.cc.o"
  "CMakeFiles/rio_workloads.dir/storage.cc.o.d"
  "CMakeFiles/rio_workloads.dir/stream.cc.o"
  "CMakeFiles/rio_workloads.dir/stream.cc.o.d"
  "librio_workloads.a"
  "librio_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
