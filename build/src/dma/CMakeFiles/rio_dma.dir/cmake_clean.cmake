file(REMOVE_RECURSE
  "CMakeFiles/rio_dma.dir/baseline_handle.cc.o"
  "CMakeFiles/rio_dma.dir/baseline_handle.cc.o.d"
  "CMakeFiles/rio_dma.dir/dma_context.cc.o"
  "CMakeFiles/rio_dma.dir/dma_context.cc.o.d"
  "CMakeFiles/rio_dma.dir/dma_handle.cc.o"
  "CMakeFiles/rio_dma.dir/dma_handle.cc.o.d"
  "CMakeFiles/rio_dma.dir/protection_mode.cc.o"
  "CMakeFiles/rio_dma.dir/protection_mode.cc.o.d"
  "CMakeFiles/rio_dma.dir/riommu_handle.cc.o"
  "CMakeFiles/rio_dma.dir/riommu_handle.cc.o.d"
  "CMakeFiles/rio_dma.dir/simple_handles.cc.o"
  "CMakeFiles/rio_dma.dir/simple_handles.cc.o.d"
  "librio_dma.a"
  "librio_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
