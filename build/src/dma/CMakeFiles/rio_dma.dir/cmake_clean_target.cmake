file(REMOVE_RECURSE
  "librio_dma.a"
)
