# Empty compiler generated dependencies file for rio_dma.
# This may be replaced when dependencies are built.
