
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dma/baseline_handle.cc" "src/dma/CMakeFiles/rio_dma.dir/baseline_handle.cc.o" "gcc" "src/dma/CMakeFiles/rio_dma.dir/baseline_handle.cc.o.d"
  "/root/repo/src/dma/dma_context.cc" "src/dma/CMakeFiles/rio_dma.dir/dma_context.cc.o" "gcc" "src/dma/CMakeFiles/rio_dma.dir/dma_context.cc.o.d"
  "/root/repo/src/dma/dma_handle.cc" "src/dma/CMakeFiles/rio_dma.dir/dma_handle.cc.o" "gcc" "src/dma/CMakeFiles/rio_dma.dir/dma_handle.cc.o.d"
  "/root/repo/src/dma/protection_mode.cc" "src/dma/CMakeFiles/rio_dma.dir/protection_mode.cc.o" "gcc" "src/dma/CMakeFiles/rio_dma.dir/protection_mode.cc.o.d"
  "/root/repo/src/dma/riommu_handle.cc" "src/dma/CMakeFiles/rio_dma.dir/riommu_handle.cc.o" "gcc" "src/dma/CMakeFiles/rio_dma.dir/riommu_handle.cc.o.d"
  "/root/repo/src/dma/simple_handles.cc" "src/dma/CMakeFiles/rio_dma.dir/simple_handles.cc.o" "gcc" "src/dma/CMakeFiles/rio_dma.dir/simple_handles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rio_base.dir/DependInfo.cmake"
  "/root/repo/build/src/cycles/CMakeFiles/rio_cycles.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rio_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/rio_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/riommu/CMakeFiles/rio_riommu.dir/DependInfo.cmake"
  "/root/repo/build/src/iova/CMakeFiles/rio_iova.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
