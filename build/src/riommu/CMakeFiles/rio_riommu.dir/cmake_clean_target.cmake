file(REMOVE_RECURSE
  "librio_riommu.a"
)
