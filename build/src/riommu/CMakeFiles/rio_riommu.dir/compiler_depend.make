# Empty compiler generated dependencies file for rio_riommu.
# This may be replaced when dependencies are built.
