file(REMOVE_RECURSE
  "CMakeFiles/rio_riommu.dir/rdevice.cc.o"
  "CMakeFiles/rio_riommu.dir/rdevice.cc.o.d"
  "CMakeFiles/rio_riommu.dir/riommu.cc.o"
  "CMakeFiles/rio_riommu.dir/riommu.cc.o.d"
  "CMakeFiles/rio_riommu.dir/riotlb.cc.o"
  "CMakeFiles/rio_riommu.dir/riotlb.cc.o.d"
  "librio_riommu.a"
  "librio_riommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_riommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
