file(REMOVE_RECURSE
  "CMakeFiles/rio_nic.dir/nic.cc.o"
  "CMakeFiles/rio_nic.dir/nic.cc.o.d"
  "CMakeFiles/rio_nic.dir/profile.cc.o"
  "CMakeFiles/rio_nic.dir/profile.cc.o.d"
  "librio_nic.a"
  "librio_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
