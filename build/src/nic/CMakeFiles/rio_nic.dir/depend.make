# Empty dependencies file for rio_nic.
# This may be replaced when dependencies are built.
