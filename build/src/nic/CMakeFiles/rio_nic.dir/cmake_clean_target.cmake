file(REMOVE_RECURSE
  "librio_nic.a"
)
