file(REMOVE_RECURSE
  "CMakeFiles/rio_base.dir/logging.cc.o"
  "CMakeFiles/rio_base.dir/logging.cc.o.d"
  "CMakeFiles/rio_base.dir/rng.cc.o"
  "CMakeFiles/rio_base.dir/rng.cc.o.d"
  "CMakeFiles/rio_base.dir/stats.cc.o"
  "CMakeFiles/rio_base.dir/stats.cc.o.d"
  "CMakeFiles/rio_base.dir/status.cc.o"
  "CMakeFiles/rio_base.dir/status.cc.o.d"
  "CMakeFiles/rio_base.dir/strings.cc.o"
  "CMakeFiles/rio_base.dir/strings.cc.o.d"
  "CMakeFiles/rio_base.dir/table.cc.o"
  "CMakeFiles/rio_base.dir/table.cc.o.d"
  "librio_base.a"
  "librio_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
