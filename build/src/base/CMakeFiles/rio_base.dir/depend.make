# Empty dependencies file for rio_base.
# This may be replaced when dependencies are built.
