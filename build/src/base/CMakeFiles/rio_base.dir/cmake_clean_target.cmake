file(REMOVE_RECURSE
  "librio_base.a"
)
