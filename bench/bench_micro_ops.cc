/**
 * @file
 * google-benchmark microbenchmarks of the hot driver paths: the
 * map/unmap implementations of each protection mode, the IOVA
 * allocators and the translation routines. These measure *real*
 * wall-clock time of the reproduction's data-structure code (the
 * simulated-cycle accounting is exercised by the other benches).
 */
#include <benchmark/benchmark.h>

#include <deque>

#include "dma/dma_context.h"
#include "iova/linux_allocator.h"
#include "iova/magazine_allocator.h"
#include "riommu/rdevice.h"

using namespace rio;

namespace {

void
BM_LinuxIovaAllocFree(benchmark::State &state)
{
    cycles::CostModel cost;
    cycles::CycleAccount acct;
    iova::LinuxIovaAllocator alloc((u64{1} << 32) >> kPageShift, &acct,
                                   cost);
    // Pre-populate a live working set comparable to the NIC's.
    std::deque<u64> live;
    for (int i = 0; i < state.range(0); ++i)
        live.push_back(alloc.alloc(1).value().pfn_lo);
    for (auto _ : state) {
        auto r = alloc.alloc(1);
        benchmark::DoNotOptimize(r);
        (void)alloc.free(r.value().pfn_lo);
    }
}
BENCHMARK(BM_LinuxIovaAllocFree)->Arg(256)->Arg(4096);

void
BM_MagazineIovaAllocFree(benchmark::State &state)
{
    cycles::CostModel cost;
    cycles::CycleAccount acct;
    iova::MagazineIovaAllocator alloc((u64{1} << 32) >> kPageShift,
                                      &acct, cost);
    std::deque<u64> live;
    for (int i = 0; i < state.range(0); ++i)
        live.push_back(alloc.alloc(1).value().pfn_lo);
    for (auto _ : state) {
        auto r = alloc.alloc(1);
        benchmark::DoNotOptimize(r);
        (void)alloc.free(r.value().pfn_lo);
    }
}
BENCHMARK(BM_MagazineIovaAllocFree)->Arg(256)->Arg(4096);

void
BM_BaselineMapUnmap(benchmark::State &state)
{
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    auto handle =
        ctx.makeHandle(static_cast<dma::ProtectionMode>(state.range(0)),
                       iommu::Bdf{0, 3, 0}, &acct);
    const PhysAddr pa = ctx.memory().allocFrame();
    for (auto _ : state) {
        auto m = handle->map(0, pa, 1500, iommu::DmaDir::kBidir);
        benchmark::DoNotOptimize(m);
        (void)handle->unmap(m.value(), true);
    }
}
BENCHMARK(BM_BaselineMapUnmap)
    ->Arg(static_cast<int>(dma::ProtectionMode::kStrict))
    ->Arg(static_cast<int>(dma::ProtectionMode::kStrictPlus))
    ->Arg(static_cast<int>(dma::ProtectionMode::kDefer))
    ->Arg(static_cast<int>(dma::ProtectionMode::kDeferPlus));

void
BM_RiommuMapUnmap(benchmark::State &state)
{
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    auto handle = ctx.makeHandle(dma::ProtectionMode::kRiommu,
                                 iommu::Bdf{0, 3, 0}, &acct, {1024});
    const PhysAddr pa = ctx.memory().allocFrame();
    for (auto _ : state) {
        auto m = handle->map(0, pa, 1500, iommu::DmaDir::kBidir);
        benchmark::DoNotOptimize(m);
        (void)handle->unmap(m.value(), true);
    }
}
BENCHMARK(BM_RiommuMapUnmap);

void
BM_BaselineTranslateHit(benchmark::State &state)
{
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    auto handle = ctx.makeHandle(dma::ProtectionMode::kStrict,
                                 iommu::Bdf{0, 3, 0}, &acct);
    const PhysAddr pa = ctx.memory().allocFrame();
    auto m = handle->map(0, pa, 1500, iommu::DmaDir::kBidir).value();
    u64 sink = 0;
    for (auto _ : state) {
        auto t = ctx.iommu().translate(iommu::Bdf{0, 3, 0},
                                       m.device_addr, iommu::Access::kRead);
        sink += t.value().pa;
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_BaselineTranslateHit);

void
BM_RiommuTranslateSequential(benchmark::State &state)
{
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    riommu::RDevice dev(ctx.riommu(), ctx.memory(), iommu::Bdf{0, 4, 0},
                        std::vector<u32>{1024}, true, ctx.cost(), &acct);
    const PhysAddr buf = ctx.memory().allocContiguous(kPageSize);
    std::vector<riommu::RIova> iovas;
    for (u32 i = 0; i < 1024; ++i)
        iovas.push_back(
            dev.map(0, buf, 64, iommu::DmaDir::kToDevice).value());
    u64 i = 0;
    u64 sink = 0;
    for (auto _ : state) {
        auto t = ctx.riommu().translate(iommu::Bdf{0, 4, 0},
                                        iovas[i++ % 1024],
                                        iommu::Access::kRead, 1);
        sink += t.value().pa;
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RiommuTranslateSequential);

} // namespace

BENCHMARK_MAIN();
