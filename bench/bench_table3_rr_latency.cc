/**
 * @file
 * Reproduces Table 3 of the paper: Netperf RR round-trip time in
 * microseconds for the seven modes on both NICs. RTT is the inverse
 * of the transaction rate.
 *
 * Paper reference (us):
 *   NIC   strict strict+ defer defer+ riommu- riommu none
 *   mlx    17.3   15.1   14.9   14.4   14.1    13.9  13.4
 *   brcm   41.9   36.7   36.6   35.8   35.1    34.7  34.6
 */
#include "bench_common.h"

using namespace rio;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::JsonWriter json("table3_rr_latency", args.threads);
    bench::printHeader("Table 3: Netperf RR round-trip time (microseconds)");

    const double paper_mlx[] = {17.3, 15.1, 14.9, 14.4, 14.1, 13.9, 13.4};
    const double paper_brcm[] = {41.9, 36.7, 36.6, 35.8, 35.1, 34.7, 34.6};

    for (const nic::NicProfile *profile :
         {&nic::mlxProfile(), &nic::brcmProfile()}) {
        const double *paper =
            std::string_view(profile->name) == "mlx" ? paper_mlx
                                                     : paper_brcm;
        Table t({"mode", "rtt (us)", "paper (us)", "cpu (%)"});
        size_t i = 0;
        for (dma::ProtectionMode mode : bench::evaluatedModes()) {
            workloads::RrParams p = workloads::rrParamsFor(*profile);
            p.measure_transactions = bench::scaled(4000);
            p.warmup_transactions = bench::scaled(500);
            const auto r = workloads::runNetperfRr(mode, *profile, p);
            const double rtt_us = 1e6 / r.transactions_per_sec;
            t.addRow(dma::modeName(mode),
                     {rtt_us, paper[i], r.cpu * 100.0}, 1);
            ++i;
        }
        std::printf("-- %s --\n%s\n", profile->name,
                    t.toString().c_str());
        json.addTable(t, "nic", profile->name);
    }
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
