/**
 * @file
 * Virtualization sweep (DESIGN.md §10): cycles per packet for the
 * seven protection modes on each execution platform — bare metal and
 * guest VMs under the emulated, shadow and nested vIOMMU strategies —
 * for Netperf stream and Netperf RR on the mlx setup.
 *
 * The headline result: virtualization *widens* rIOMMU's advantage.
 * The baselines' map/unmap path is MMIO-driven, so every packet eats
 * vmexits (emulated/shadow) or 24-reference 2-D walks (nested), while
 * rIOMMU's memory-only protocol needs no exits after its registration
 * hypercalls and its flat table costs a nested miss at most 5
 * references. C_strict - C_riommu is strictly larger on every guest
 * platform than on bare metal.
 *
 * --platform bare reproduces bench_fig7 byte for byte (the golden_virt
 * invariant: an idle virtualization layer is a perfect no-op).
 */
#include "bench_common.h"

#include "cycles/cycle_account.h"
#include "virt/platform.h"
#include "workloads/sweep.h"

using namespace rio;
using cycles::Cat;

namespace {

/** Exactly bench_fig7's flow, so --platform bare stays byte-identical
 * to the checked-in fig7 golden (modulo the bench name). */
int
runBareGolden(const bench::BenchArgs &args)
{
    bench::printHeader("Virtualization, bare platform: identical to "
                       "Figure 7 (golden_virt invariant)");

    workloads::StreamParams params =
        workloads::streamParamsFor(nic::mlxProfile());
    params.measure_packets = bench::scaled(40000);
    params.warmup_packets = bench::scaled(10000);

    struct Row
    {
        dma::ProtectionMode mode;
        double inv, pt, iova, other, total;
    };
    std::vector<workloads::StreamJob> jobs;
    for (dma::ProtectionMode mode : bench::evaluatedModes())
        jobs.push_back({mode, nic::mlxProfile(), params});
    const std::vector<workloads::RunResult> results =
        workloads::runStreamJobs(jobs, args.threads);

    std::vector<Row> rows;
    for (size_t i = 0; i < jobs.size(); ++i) {
        const workloads::RunResult &r = results[i];
        const double pkts = static_cast<double>(r.tx_packets);
        Row row;
        row.mode = jobs[i].mode;
        row.inv =
            static_cast<double>(r.acct.get(Cat::kUnmapIotlbInv)) / pkts;
        row.pt = static_cast<double>(r.acct.get(Cat::kMapPageTable) +
                                     r.acct.get(Cat::kUnmapPageTable)) /
                 pkts;
        row.iova = static_cast<double>(r.acct.get(Cat::kMapIovaAlloc) +
                                       r.acct.get(Cat::kUnmapIovaFind) +
                                       r.acct.get(Cat::kUnmapIovaFree)) /
                   pkts;
        row.total = r.cycles_per_packet;
        row.other = row.total - row.inv - row.pt - row.iova;
        rows.push_back(row);
    }
    const double c_none = rows.back().total; // none is listed last

    Table t({"mode", "iotlb inv", "page table", "iova (de)alloc",
             "other", "C (total)", "C/C_none"});
    for (const Row &row : rows) {
        std::vector<std::string> cells = {dma::modeName(row.mode),
                                          Table::num(row.inv, 0),
                                          Table::num(row.pt, 0),
                                          Table::num(row.iova, 0),
                                          Table::num(row.other, 0),
                                          Table::num(row.total, 0),
                                          Table::num(row.total / c_none,
                                                     2)};
        t.addRow(cells);
    }
    std::printf("%s\n", t.toString().c_str());

    bench::JsonWriter json("virt_bare", args.threads);
    for (const Row &row : rows) {
        json.beginRow();
        json.add("mode", dma::modeName(row.mode));
        json.add("iotlb_inv", row.inv);
        json.add("page_table", row.pt);
        json.add("iova", row.iova);
        json.add("other", row.other);
        json.add("total", row.total);
        json.add("ratio_vs_none", row.total / c_none);
    }
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}

/**
 * Huge-page (2 MB) stage-2 ablation (--huge): the ROADMAP perf-debt
 * item. Nested stream runs for every mode with 4K vs 2 MB stage-2
 * leaves; each stage-2 resolution in the 2-D walk reads one fewer
 * table, cutting a radix nested miss from 24 to 19 combined
 * references and an rIOMMU flat miss from 5 to 4 (virt_test pins).
 */
int
runHugeAblation(const bench::BenchArgs &args)
{
    bench::printHeader("Huge-page (2 MB) stage-2 ablation, nested "
                       "platform: Netperf stream on mlx");

    workloads::StreamParams sp =
        workloads::streamParamsFor(nic::mlxProfile());
    sp.measure_packets = bench::scaled(40000);
    sp.warmup_packets = bench::scaled(10000);
    sp.platform = virt::Platform::kNested;

    std::vector<workloads::StreamJob> jobs;
    for (const bool huge : {false, true}) {
        sp.huge_stage2 = huge;
        for (const dma::ProtectionMode mode : bench::evaluatedModes())
            jobs.push_back({mode, nic::mlxProfile(), sp});
    }
    const std::vector<workloads::RunResult> results =
        workloads::runStreamJobs(jobs, args.threads);

    // The walk cost is device-side latency (uncharged to the core),
    // so the ablation metric is combined memory references per
    // (r)IOTLB-miss walk, not cycles/packet: 24 -> 19 for radix
    // modes, 5 -> 4 for rIOMMU (virt_test pins the exact counts).
    const auto refs_per_walk = [](const workloads::RunResult &r) {
        return r.walks ? static_cast<double>(r.walk_mem_refs) /
                             static_cast<double>(r.walks)
                       : 0.0;
    };
    const size_t nmodes = bench::evaluatedModes().size();
    bench::JsonWriter json("virt_huge", args.threads);
    Table t({"mode", "walks", "refs/walk 4K", "refs/walk 2MB",
             "saved/walk"});
    for (size_t mi = 0; mi < nmodes; ++mi) {
        const dma::ProtectionMode mode = bench::evaluatedModes()[mi];
        const workloads::RunResult &r4k = results[mi];
        const workloads::RunResult &r2m = results[nmodes + mi];
        const double f4k = refs_per_walk(r4k);
        const double f2m = refs_per_walk(r2m);
        t.addRow(dma::modeName(mode),
                 {static_cast<double>(r4k.walks), f4k, f2m, f4k - f2m},
                 2);
        json.beginRow();
        json.add("mode", dma::modeName(mode));
        json.add("walks", static_cast<double>(r4k.walks));
        json.add("refs_per_walk_4k", f4k);
        json.add("refs_per_walk_2m", f2m);
        json.add("saved_per_walk", f4k - f2m);
    }
    std::printf("%s\n", t.toString().c_str());

    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    std::string which = "all";
    bool huge = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--platform" && i + 1 < argc)
            which = argv[i + 1];
        if (std::string_view(argv[i]) == "--huge")
            huge = true;
    }

    if (huge)
        return runHugeAblation(args);
    if (which == "bare")
        return runBareGolden(args);

    std::vector<virt::Platform> platforms;
    if (which == "all") {
        platforms.assign(virt::kAllPlatforms.begin(),
                         virt::kAllPlatforms.end());
    } else {
        const auto p = virt::parsePlatform(which);
        if (!p) {
            std::fprintf(stderr, "unknown --platform %s\n",
                         which.c_str());
            return 1;
        }
        // Always include bare for the advantage comparison.
        platforms = {virt::Platform::kBare, *p};
    }

    bench::printHeader("Virtualization: cycles/packet by platform, "
                       "Netperf stream + RR on mlx");
    bench::JsonWriter json("virt_platforms", args.threads);

    workloads::StreamParams sp =
        workloads::streamParamsFor(nic::mlxProfile());
    sp.measure_packets = bench::scaled(40000);
    sp.warmup_packets = bench::scaled(10000);

    // mode x platform totals so the advantage summary can be computed.
    std::vector<std::vector<double>> totals(
        bench::evaluatedModes().size(),
        std::vector<double>(platforms.size(), 0.0));

    // The whole platform x mode grid is one sweep: every cell is an
    // independent run, so all of them go to the engine at once.
    std::vector<workloads::StreamJob> sjobs;
    for (const virt::Platform platform : platforms) {
        sp.platform = platform;
        for (const dma::ProtectionMode mode : bench::evaluatedModes())
            sjobs.push_back({mode, nic::mlxProfile(), sp});
    }
    const std::vector<workloads::RunResult> sresults =
        workloads::runStreamJobs(sjobs, args.threads);

    for (size_t pi = 0; pi < platforms.size(); ++pi) {
        const virt::Platform platform = platforms[pi];
        struct Cell
        {
            double total, virt_c, exits_pkt;
        };
        std::vector<Cell> cells;
        for (size_t mi = 0; mi < bench::evaluatedModes().size(); ++mi) {
            const workloads::RunResult &r =
                sresults[pi * bench::evaluatedModes().size() + mi];
            const double pkts = static_cast<double>(r.tx_packets);
            totals[mi][pi] = r.cycles_per_packet;
            cells.push_back(
                {r.cycles_per_packet,
                 static_cast<double>(r.acct.get(Cat::kVirt)) / pkts,
                 static_cast<double>(r.vm_exits) / pkts});
        }
        const double c_none = cells.back().total; // none is listed last
        Table t({"mode", "C (total)", "virt", "vmexits/pkt",
                 "C/C_none"});
        for (size_t mi = 0; mi < cells.size(); ++mi) {
            const dma::ProtectionMode mode = bench::evaluatedModes()[mi];
            t.addRow(dma::modeName(mode),
                     {cells[mi].total, cells[mi].virt_c,
                      cells[mi].exits_pkt, cells[mi].total / c_none},
                     2);
            json.beginRow();
            json.add("workload", "stream");
            json.add("platform", virt::platformName(platform));
            json.add("mode", dma::modeName(mode));
            json.add("total", cells[mi].total);
            json.add("virt_cycles", cells[mi].virt_c);
            json.add("vm_exits_per_pkt", cells[mi].exits_pkt);
            json.add("ratio_vs_none", cells[mi].total / c_none);
        }
        std::printf("-- stream, %s --\n%s\n",
                    virt::platformName(platform), t.toString().c_str());
    }

    // Advantage summary: what the guest saves by running rIOMMU
    // instead of strict, per platform. Monotonically growing from
    // bare metal to nested is the PR's acceptance assertion.
    {
        const auto &modes = bench::evaluatedModes();
        size_t strict_i = 0, riommu_i = 0;
        for (size_t i = 0; i < modes.size(); ++i) {
            if (std::string_view(dma::modeName(modes[i])) == "strict")
                strict_i = i;
            if (std::string_view(dma::modeName(modes[i])) == "riommu")
                riommu_i = i;
        }
        Table t({"platform", "C_strict", "C_riommu",
                 "advantage (cycles/pkt)"});
        double adv_bare = 0.0, adv_nested = 0.0;
        bool have_bare = false, have_nested = false;
        for (size_t pi = 0; pi < platforms.size(); ++pi) {
            const double adv = totals[strict_i][pi] - totals[riommu_i][pi];
            if (platforms[pi] == virt::Platform::kBare) {
                adv_bare = adv;
                have_bare = true;
            } else if (platforms[pi] == virt::Platform::kNested) {
                adv_nested = adv;
                have_nested = true;
            }
            t.addRow(virt::platformName(platforms[pi]),
                     {totals[strict_i][pi], totals[riommu_i][pi], adv},
                     1);
            json.beginRow();
            json.add("workload", "advantage");
            json.add("platform", virt::platformName(platforms[pi]));
            json.add("c_strict", totals[strict_i][pi]);
            json.add("c_riommu", totals[riommu_i][pi]);
            json.add("advantage", adv);
        }
        std::printf("-- rIOMMU advantage --\n%s\n", t.toString().c_str());
        if (have_bare && have_nested && adv_nested <= adv_bare) {
            std::fprintf(stderr,
                         "FAIL: nested advantage %.1f <= bare %.1f — "
                         "the 2-D walk should widen the gap\n",
                         adv_nested, adv_bare);
            return 1;
        }
    }

    // RR: latency-sensitive regime — vmexits land directly on the RTT.
    // Each ping-pong PAIR is one job; the grid sweeps in parallel.
    std::vector<workloads::RrJob> rjobs;
    for (const virt::Platform platform : platforms) {
        workloads::RrParams rp = workloads::rrParamsFor(nic::mlxProfile());
        rp.measure_transactions = bench::scaled(4000);
        rp.warmup_transactions = bench::scaled(500);
        rp.platform = platform;
        for (const dma::ProtectionMode mode : bench::evaluatedModes())
            rjobs.push_back({mode, nic::mlxProfile(), rp});
    }
    const std::vector<workloads::RunResult> rresults =
        workloads::runRrJobs(rjobs, args.threads);

    for (size_t pi = 0; pi < platforms.size(); ++pi) {
        const virt::Platform platform = platforms[pi];
        Table t({"mode", "rtt (us)", "vmexits/txn", "cpu (%)"});
        for (size_t mi = 0; mi < bench::evaluatedModes().size(); ++mi) {
            const dma::ProtectionMode mode = bench::evaluatedModes()[mi];
            const workloads::RunResult &r =
                rresults[pi * bench::evaluatedModes().size() + mi];
            const double rtt_us = 1e6 / r.transactions_per_sec;
            const double exits_txn =
                static_cast<double>(r.vm_exits) /
                static_cast<double>(r.transactions);
            t.addRow(dma::modeName(mode),
                     {rtt_us, exits_txn, r.cpu * 100.0}, 2);
            json.beginRow();
            json.add("workload", "rr");
            json.add("platform", virt::platformName(platform));
            json.add("mode", dma::modeName(mode));
            json.add("rtt_us", rtt_us);
            json.add("vm_exits_per_txn", exits_txn);
        }
        std::printf("-- rr, %s --\n%s\n", virt::platformName(platform),
                    t.toString().c_str());
    }

    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
