/**
 * @file
 * Reproduces Table 2 of the paper: throughput and CPU consumption of
 * the two rIOMMU variants normalized to the other five modes, for
 * both NICs and all five benchmarks.
 *
 * Paper highlights: mlx/stream riommu = 7.56x strict and 0.77x none
 * throughput; brcm/stream all modes but strict reach line rate, so
 * the CPU column carries the signal (riommu = 0.36x strict's CPU).
 */
#include <map>

#include "bench_common.h"

using namespace rio;

namespace {

struct Cell
{
    double tput = 0;
    double cpu = 0;
};

Cell
runCell(const std::string &bench, dma::ProtectionMode mode,
        const nic::NicProfile &profile)
{
    Cell c;
    if (bench == "stream") {
        workloads::StreamParams p = workloads::streamParamsFor(profile);
        p.measure_packets = bench::scaled(40000);
        p.warmup_packets = bench::scaled(10000);
        auto r = workloads::runStream(mode, profile, p);
        c = {r.throughput_gbps, r.cpu};
    } else if (bench == "rr") {
        workloads::RrParams p = workloads::rrParamsFor(profile);
        p.measure_transactions = bench::scaled(4000);
        p.warmup_transactions = bench::scaled(500);
        auto r = workloads::runNetperfRr(mode, profile, p);
        c = {r.transactions_per_sec, r.cpu};
    } else if (bench == "apache 1M") {
        workloads::RequestLoadParams p =
            workloads::apacheParams(u64{1} << 20);
        p.measure_requests = bench::scaled(600);
        p.warmup_requests = bench::scaled(100);
        auto r = workloads::runRequestLoad(mode, profile, p);
        c = {r.throughput_gbps, r.cpu};
    } else if (bench == "apache 1K") {
        workloads::RequestLoadParams p = workloads::apacheParams(1024);
        p.measure_requests = bench::scaled(3000);
        p.warmup_requests = bench::scaled(300);
        auto r = workloads::runRequestLoad(mode, profile, p);
        c = {r.transactions_per_sec, r.cpu};
    } else {
        workloads::RequestLoadParams p = workloads::memcachedParams();
        p.measure_requests = bench::scaled(20000);
        p.warmup_requests = bench::scaled(2000);
        auto r = workloads::runRequestLoad(mode, profile, p);
        c = {r.transactions_per_sec, r.cpu};
    }
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::JsonWriter json("table2_normalized", args.threads);
    bench::printHeader("Table 2: riommu-/riommu divided by the other "
                       "modes (throughput and CPU)");

    const std::vector<std::string> benches = {"stream", "rr", "apache 1M",
                                              "apache 1K", "memcached"};
    const std::vector<dma::ProtectionMode> denom = {
        dma::ProtectionMode::kStrict, dma::ProtectionMode::kStrictPlus,
        dma::ProtectionMode::kDefer, dma::ProtectionMode::kDeferPlus,
        dma::ProtectionMode::kNone};

    for (const nic::NicProfile *profile :
         {&nic::mlxProfile(), &nic::brcmProfile()}) {
        std::printf("\n-- %s --\n", profile->name);
        Table t({"benchmark", "variant",
                 "tput/strict", "tput/strict+", "tput/defer",
                 "tput/defer+", "tput/none", "cpu/strict",
                 "cpu/strict+", "cpu/defer", "cpu/defer+", "cpu/none"});
        for (const std::string &bench : benches) {
            std::map<dma::ProtectionMode, Cell> cells;
            for (dma::ProtectionMode mode : bench::evaluatedModes())
                cells[mode] = runCell(bench, mode, *profile);
            for (dma::ProtectionMode variant :
                 {dma::ProtectionMode::kRiommuNc,
                  dma::ProtectionMode::kRiommu}) {
                std::vector<double> vals;
                for (dma::ProtectionMode d : denom)
                    vals.push_back(cells[variant].tput / cells[d].tput);
                for (dma::ProtectionMode d : denom)
                    vals.push_back(cells[variant].cpu / cells[d].cpu);
                std::vector<std::string> row = {bench,
                                                dma::modeName(variant)};
                for (double v : vals)
                    row.push_back(Table::num(v, 2));
                t.addRow(row);
            }
        }
        std::printf("%s", t.toString().c_str());
        json.addTable(t, "nic", profile->name);
    }
    std::printf("\npaper anchors (mlx/stream): riommu- 5.12x strict / "
                "0.52x none; riommu 7.56x strict / 0.77x none.\n"
                "paper anchors (brcm/stream CPU): riommu- 0.40x strict, "
                "riommu 0.36x strict, 1.09-1.21x none.\n");
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
