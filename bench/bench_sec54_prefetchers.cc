/**
 * @file
 * Reproduces §5.4 of the paper: feeding DMA traces (captured from
 * the Netperf stream workload) to the Markov, Recency and Distance
 * TLB prefetchers. Expected findings, per the paper:
 *
 *  - the stock prefetchers are ineffective, because IOVAs are
 *    invalidated immediately after use;
 *  - the modified versions (remember invalidated addresses, validate
 *    predictions against live mappings) predict well only once their
 *    history grows larger than the ring;
 *  - the rIOTLB mechanism needs two entries per ring and its
 *    "predictions" are always correct.
 */
#include "bench_common.h"

#include "prefetch/replay.h"

using namespace rio;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::printHeader("Sec 5.4: TLB prefetchers vs. the rIOTLB on a "
                       "Netperf-stream DMA trace");

    // Capture a trace from the strict-mode stream run (IOVAs, not
    // physical addresses, as in the paper's QEMU logging).
    trace::DmaTrace dma_trace;
    workloads::StreamParams params =
        workloads::streamParamsFor(nic::mlxProfile());
    params.measure_packets = bench::scaled(15000);
    params.warmup_packets = bench::scaled(2000);
    params.trace = &dma_trace;
    (void)workloads::runStream(dma::ProtectionMode::kStrict,
                               nic::mlxProfile(), params);
    std::printf("trace: %llu events\n\n",
                static_cast<unsigned long long>(dma_trace.size()));

    const u64 ring_size = nic::mlxProfile().tx_ring_entries;
    const std::vector<size_t> history_sizes = {
        ring_size / 8, ring_size / 2, ring_size, ring_size * 4,
        ring_size * 16};

    Table table({"prefetcher", "history", "config", "hit rate (%)",
                 "prefetch hits (%)", "rejected preds (%)"});
    for (const char *kind : {"markov", "recency", "distance"}) {
        for (size_t history : history_sizes) {
            for (bool modified : {false, true}) {
                std::unique_ptr<prefetch::TlbPrefetcher> p;
                if (std::string_view(kind) == "markov")
                    p = std::make_unique<prefetch::MarkovPrefetcher>(
                        history);
                else if (std::string_view(kind) == "recency")
                    p = std::make_unique<prefetch::RecencyPrefetcher>(
                        history);
                else
                    p = std::make_unique<prefetch::DistancePrefetcher>(
                        history);
                prefetch::ReplayConfig cfg;
                cfg.store_invalidated = modified;
                cfg.validate_against_live = true;
                const auto r =
                    prefetch::replayTrace(dma_trace, *p, cfg);
                table.addRow(
                    {kind, std::to_string(history),
                     modified ? "modified" : "stock",
                     Table::num(100.0 * r.hitRate(), 1),
                     Table::num(
                         100.0 * static_cast<double>(r.prefetch_hits) /
                             static_cast<double>(
                                 std::max<u64>(r.accesses, 1)),
                         1),
                     Table::num(
                         100.0 *
                             static_cast<double>(r.rejected_predictions) /
                             static_cast<double>(
                                 std::max<u64>(r.predictions, 1)),
                         1)});
            }
        }
    }
    // The rIOTLB line: two entries per ring, always-correct
    // prediction of the next mapped entry.
    {
        prefetch::SequentialRingPrefetcher p;
        prefetch::ReplayConfig cfg;
        cfg.tlb_entries = 2 * (2 + nic::mlxProfile().rx_rings);
        cfg.store_invalidated = true;
        cfg.validate_against_live = true;
        const auto r = prefetch::replayTrace(dma_trace, p, cfg);
        table.addRow(
            {"riotlb", "2/ring", "-",
             Table::num(100.0 * r.hitRate(), 1),
             Table::num(100.0 * static_cast<double>(r.prefetch_hits) /
                            static_cast<double>(
                                std::max<u64>(r.accesses, 1)),
                        1),
             Table::num(
                 100.0 * static_cast<double>(r.rejected_predictions) /
                     static_cast<double>(std::max<u64>(r.predictions, 1)),
                 1)});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("ring size for reference: %llu descriptors\n",
                static_cast<unsigned long long>(ring_size));
    bench::JsonWriter json("sec54_prefetchers", args.threads);
    json.addTable(table);
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
