/**
 * @file
 * Live-migration bench: a migrate::Migrator moves a guest between the
 * two machines of a Cluster while dirty-rate, wire-loss, platform
 * (bare / emulated / shadow / nested) and the seven protection modes
 * sweep. Reported per point: pre-copy rounds, pages shipped and
 * re-shipped, vIOMMU state-transfer bytes, the blackout window
 * (quiesce start -> resume-done), and the migrated-away tier of the
 * late-arrival ledger — strays a peer keeps firing at the source
 * after the guest left.
 *
 * The headline claims, asserted:
 *  - Per-platform state transfer orders the baseline blackout:
 *    shadow (merged shadow table moves wholesale, only what is
 *    mapped) < nested (a stage-2 covering the whole arena ships,
 *    memory-proportional) < emulated (every live mapping is replayed
 *    as an install+invalidate exit pair on the target).
 *  - The rIOMMU blackout is re-registration-dominated: one hypercall
 *    per live rRING, so it grows with the ring count (QPs) and stays
 *    flat in guest memory size — the flat-table analogue of the
 *    paper's O(rings) argument, now for migration downtime.
 *  - Protected modes stop every post-migration stray
 *    (migrated_away_landed == 0); mode none cannot fault and lands
 *    them all.
 *  - Guest RAM is byte-identical on the target (FNV-1a arena hash),
 *    at every dirty rate and loss rate, QP errors included.
 *
 * `--loss 0` emits compat rows instead: the exact bench_cluster_rdma
 * base rows on a migration-*disabled* cluster — the golden_migrate
 * ctest diffs them against the checked-in cluster golden to prove the
 * whole migration subsystem is bit-for-bit inert when off.
 */
#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.h"
#include "migrate/migrate.h"
#include "sys/cluster.h"
#include "virt/guest.h"
#include "virt/platform.h"
#include "workloads/fleet.h"

using namespace rio;

namespace {

/** Stray peer: machine 1 keeps posting RDMA writes at the guest's
 * old QP on machine 0, before and after the migration — the source
 * of migrated-away arrivals. Fixed gap, zero RNG draws. The gap is
 * sized so even the most trap-expensive platform x mode combination
 * (shadow/strict: wp-trap sync plus synchronous invalidation per op)
 * stays under the posting core's capacity — the stray peer is
 * background noise, not a core-saturating storm whose queueing delay
 * would masquerade as blackout time. */
constexpr Nanos kStrayGapNs = 8000;
constexpr u32 kStrayBytes = 512;

struct Stray
{
    sys::Cluster *cl = nullptr;
    u32 qp = 0;
    u64 remaining = 0;
    bool connected = false;
};

void
strayTick(const std::shared_ptr<Stray> &s)
{
    if (s->remaining == 0)
        return;
    --s->remaining;
    if (s->connected)
        (void)s->cl->nic(1).postWrite(s->qp, kStrayBytes, 0);
    s->cl->lane(1).sim().scheduleAfter(kStrayGapNs,
                                       [s] { strayTick(s); });
}

/** One migration experiment. */
struct MigRun
{
    dma::ProtectionMode mode = dma::ProtectionMode::kRiommu;
    virt::Platform platform = virt::Platform::kBare;
    double dirty = 0.0; //!< guest-CPU dirty rate, pages/ms
    double loss = 0.0;  //!< hostile-wire drop rate
    u64 pages = 4096;
    unsigned app_qps = 8; //!< guest data QPs live at blackout
    unsigned threads = 1;
    u64 dirty_seed = 1;
    bool strays = true;
};

struct MigOut
{
    migrate::MigrationReport rep;
    u64 stray_arrivals = 0;
    u64 stray_faulted = 0;
    u64 stray_landed = 0;
    bool hash_ok = false;
};

MigOut
runMigration(const MigRun &r)
{
    sys::ClusterConfig cfg;
    cfg.machines = 2;
    cfg.threads = r.threads;
    cfg.mode = r.mode;
    cfg.max_qps = r.app_qps + 4;
    cfg.migration = true;
    // The reliability layer stays on even at loss 0: its responder-side
    // liveness check is what classifies post-migration strays into the
    // migrated-away ledger (a bare wire never inspects the dead QP).
    cfg.reliability.enabled = true;
    if (r.loss > 0.0) {
        // The wire-storm recipe: duplicates and stragglers ride well
        // above the drop rate, long enough to outlive the blackout.
        cfg.wire.drop_rate = r.loss;
        cfg.wire.dup_rate = std::min(0.25, 3 * r.loss);
        cfg.wire.delay_rate = std::min(0.5, 10 * r.loss);
        cfg.wire.delay_max_ns = 60000;
    }
    sys::Cluster cl(cfg);

    // Guests wrap the machines when a vIOMMU platform is under test;
    // each binds its machine's guest data handle. The hypervisor
    // (migration) handles stay unbound — pre-copy is host work.
    std::unique_ptr<virt::Guest> sg, dg;
    unsigned src_binding = 0;
    if (r.platform != virt::Platform::kBare) {
        sg = std::make_unique<virt::Guest>(cl.machine(0), r.platform);
        dg = std::make_unique<virt::Guest>(cl.machine(1), r.platform);
        src_binding = sg->bindHandle(cl.handle(0), cl.machine(0).core(0));
        (void)dg->bindHandle(cl.handle(1), cl.machine(1).core(0));
    }
    cl.bringUp();

    // Establish the guest's data-plane QPs (the live rings the rIOMMU
    // blackout is bounded by) and the stray peer's reverse QP.
    auto stray = std::make_shared<Stray>();
    stray->cl = &cl;
    unsigned connected = 0;
    cl.machine(0).core(0).post([&] {
        for (unsigned q = 0; q < r.app_qps; ++q) {
            auto res = cl.nic(0).connect(1, [&connected](u32, bool ok) {
                if (ok)
                    ++connected;
            });
            RIO_ASSERT(res.isOk(), "app QP connect failed");
        }
    });
    if (r.strays) {
        cl.machine(1).core(0).post([&cl, stray] {
            auto res = cl.nic(1).connect(0, [stray](u32 qp, bool ok) {
                stray->qp = qp;
                stray->connected = ok;
            });
            RIO_ASSERT(res.isOk(), "stray QP connect failed");
        });
    }
    cl.run();
    RIO_ASSERT(connected == r.app_qps, "only ", connected, " of ",
               r.app_qps, " app QPs established");
    RIO_ASSERT(!r.strays || stray->connected,
               "stray QP failed to establish");

    migrate::MigrateConfig mc;
    mc.src = 0;
    mc.dst = 1;
    mc.platform = r.platform;
    mc.guest_pages = r.pages;
    mc.dirty_pages_per_ms = r.dirty;
    mc.dirty_seed = r.dirty_seed;
    mc.converge_dirty = 16;
    migrate::Migrator mig(cl, mc);
    mig.setGuests(sg.get(), dg.get(), src_binding);
    mig.start();
    if (r.strays) {
        // Open-loop fire at the old QP, overlapping every pre-copy
        // round, the blackout, and a long post-resume tail.
        stray->remaining = r.pages * 8;
        cl.lane(1).sim().scheduleAfter(kStrayGapNs,
                                       [stray] { strayTick(stray); });
    }
    cl.run();

    MigOut out;
    out.rep = mig.report();
    RIO_ASSERT(out.rep.completed && !out.rep.failed,
               "migration did not complete at ", dma::modeName(r.mode),
               "/", virt::platformName(r.platform), " loss=", r.loss);
    out.hash_ok = mig.arenaHash(false) == mig.arenaHash(true);
    RIO_ASSERT(out.hash_ok, "guest RAM diverged at ",
               dma::modeName(r.mode), "/",
               virt::platformName(r.platform), " dirty=", r.dirty,
               " loss=", r.loss);
    const rdma::RdmaStats &src_stats = cl.nic(0).stats();
    out.stray_arrivals = src_stats.migrated_away_arrivals;
    out.stray_faulted = src_stats.migrated_away_faulted;
    out.stray_landed = src_stats.migrated_away_landed;

    mig.cleanup();
    cl.quiesce();
    for (unsigned m = 0; m < 2; ++m) {
        RIO_ASSERT(cl.checkLeaks(m).clean(), "guest handle leak on ",
                   m, " at ", dma::modeName(r.mode));
        RIO_ASSERT(cl.checkMigLeaks(m).clean(),
                   "hypervisor handle leak on ", m, " at ",
                   dma::modeName(r.mode));
    }
    return out;
}

bool
isProtectedMode(std::string_view n)
{
    return n == "riommu-" || n == "riommu" || n == "strict" ||
           n == "strict+";
}

void
jsonRow(bench::JsonWriter &json, const char *variant, const MigRun &r,
        const MigOut &o)
{
    json.beginRow();
    json.add("variant", variant);
    json.add("mode", dma::modeName(r.mode));
    json.add("platform", virt::platformName(r.platform));
    json.add("dirty_pages_per_ms", r.dirty);
    json.add("loss", r.loss);
    json.add("pages", r.pages);
    json.add("app_qps", static_cast<u64>(r.app_qps));
    json.add("strays", static_cast<u64>(r.strays));
    json.add("rounds", static_cast<u64>(o.rep.rounds));
    json.add("pages_shipped", o.rep.pages_shipped);
    json.add("pages_reshipped", o.rep.pages_reshipped);
    json.add("page_naks", o.rep.page_naks);
    json.add("state_chunks", o.rep.state_chunks);
    json.add("state_bytes", o.rep.state_bytes);
    json.add("mappings_replayed", o.rep.mappings_replayed);
    json.add("reg_hypercalls", o.rep.reg_hypercalls);
    json.add("live_rings", o.rep.live_rings);
    json.add("stream_qp_errors", o.rep.stream_qp_errors);
    json.add("dirtier_writes", o.rep.dirtier_writes);
    json.add("blackout_ns", static_cast<u64>(o.rep.blackout_ns));
    json.add("total_ns", static_cast<u64>(o.rep.total_ns));
    json.add("stray_arrivals", o.stray_arrivals);
    json.add("stray_faulted", o.stray_faulted);
    json.add("stray_landed", o.stray_landed);
    json.add("hash_ok", static_cast<u64>(o.hash_ok));
}

void
tableRow(Table &t, const MigRun &r, const MigOut &o)
{
    t.addRow(strprintf("%s/%s", dma::modeName(r.mode),
                       virt::platformName(r.platform)),
             {r.dirty, r.loss, static_cast<double>(r.pages),
              static_cast<double>(r.app_qps),
              static_cast<double>(o.rep.rounds),
              static_cast<double>(o.rep.pages_shipped),
              static_cast<double>(o.rep.pages_reshipped),
              static_cast<double>(o.rep.state_bytes) / 1024.0,
              static_cast<double>(o.rep.live_rings),
              static_cast<double>(o.rep.blackout_ns) / 1e3,
              static_cast<double>(o.rep.total_ns) / 1e6,
              static_cast<double>(o.stray_faulted),
              static_cast<double>(o.stray_landed)},
             2);
}

/** The bench_cluster_rdma base rows on a migration-disabled cluster,
 * for the golden_migrate inertness diff (exact bench_wire_storm
 * recipe; byte-identical rows by construction). */
int
runCompat(const bench::BenchArgs &args, bool quick)
{
    bench::printHeader(
        "Migration, --loss 0: migration-disabled compat rows "
        "(byte-identical to bench_cluster_rdma; golden_migrate gate)");
    workloads::FleetParams p;
    p.connections = 64;
    p.credits = 16;
    p.warmup_ops = quick ? 100 : 300;
    p.measure_ops = quick ? 500 : 3000;
    p.seed = 3;

    Table t({"mode", "conns", "cycles/op", "avg burst"});
    bench::JsonWriter json("migration_compat", args.threads);
    for (const dma::ProtectionMode mode : bench::evaluatedModes()) {
        sys::ClusterConfig cfg;
        cfg.machines = 2;
        cfg.threads = args.threads;
        cfg.mode = mode;
        cfg.max_qps = workloads::fleetMaxQps(p, 2);
        cfg.migration = false; // the subsystem under inertness test
        sys::Cluster cluster(cfg);
        const workloads::FleetReport rep =
            workloads::runFleet(cluster, p);
        RIO_ASSERT(rep.leaks_clean && rep.comp_errors == 0 &&
                       rep.remote_faults == 0,
                   "compat row must match the lossless fabric at ",
                   dma::modeName(mode));
        const double hitrate =
            rep.rdcache.fetches
                ? 100.0 * static_cast<double>(rep.rdcache.hot_hits) /
                      static_cast<double>(rep.rdcache.fetches)
                : 0.0;
        t.addRow(dma::modeName(mode),
                 {static_cast<double>(p.connections),
                  rep.cycles_per_op, rep.avg_burst},
                 2);
        json.beginRow();
        json.add("mode", dma::modeName(mode));
        json.add("variant", "base");
        json.add("connections", static_cast<u64>(p.connections));
        json.add("cycles_per_op", rep.cycles_per_op);
        json.add("avg_burst", rep.avg_burst);
        json.add("measured_ops", rep.measured_ops);
        json.add("completions", rep.completions);
        json.add("posts_blocked", rep.posts_blocked);
        json.add("eob_unmaps", rep.eob_unmaps);
        json.add("riotlb_invalidations", rep.riotlb.invalidations);
        json.add("riotlb_walks", rep.riotlb.walks);
        json.add("rdcache_fetches", rep.rdcache.fetches);
        json.add("rdcache_hot_hits", rep.rdcache.hot_hits);
        json.add("rdcache_hit_rate", hitrate);
    }
    std::printf("%s\n", t.toString().c_str());
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}

u64
pctNs(std::vector<u64> v, double q)
{
    std::sort(v.begin(), v.end());
    const size_t n = v.size();
    size_t idx = static_cast<size_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(n))));
    return v[std::min(idx, n) - 1];
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bool quick = bench::runScale() < 1.0;
    double loss = -1.0;
    u64 pages_override = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--quick")
            quick = true;
        else if (arg == "--loss" && i + 1 < argc)
            loss = std::atof(argv[i + 1]);
        else if (arg == "--pages" && i + 1 < argc)
            pages_override = static_cast<u64>(
                std::max(64LL, std::atoll(argv[i + 1])));
    }
    if (loss == 0.0)
        return runCompat(args, quick);

    const u64 P = pages_override ? pages_override : (quick ? 4096 : 8192);
    const double armed_loss = loss > 0.0 ? loss : 0.02;
    const double base_dirty = 50.0;

    bench::printHeader(strprintf(
        "Live migration: %llu-page guest, dirty x loss x platform x "
        "mode — rounds, freight, blackout, strays",
        static_cast<unsigned long long>(P)));

    Table t({"mode/platform", "dirty", "loss", "pages", "qps", "rounds",
             "shipped", "reship", "state KB", "rings", "blackout us",
             "total ms", "stray flt", "stray land"});
    bench::JsonWriter json("migration", args.threads);

    // ---- base sweep: every platform x every mode, moderate dirt ----
    struct Key
    {
        std::string mode;
        virt::Platform platform;
        MigOut out;
    };
    std::vector<Key> base;
    for (const virt::Platform plat : virt::kAllPlatforms) {
        for (const dma::ProtectionMode mode : bench::evaluatedModes()) {
            MigRun r;
            r.mode = mode;
            r.platform = plat;
            r.dirty = base_dirty;
            r.pages = P;
            r.threads = args.threads;
            const MigOut o = runMigration(r);
            tableRow(t, r, o);
            jsonRow(json, "migrate", r, o);

            const std::string_view n(dma::modeName(mode));
            RIO_ASSERT(o.stray_arrivals > 0,
                       "no stray ever reached the migrated-away "
                       "ledger at ", n, "/", virt::platformName(plat));
            if (isProtectedMode(n)) {
                RIO_ASSERT(o.stray_landed == 0, n,
                           " must stop every post-migration stray, "
                           "but ", o.stray_landed, " landed");
                RIO_ASSERT(o.stray_faulted > 0,
                           "protected mode never faulted a stray");
            }
            if (n == "none") {
                RIO_ASSERT(o.stray_faulted == 0,
                           "mode none cannot fault, but ",
                           o.stray_faulted, " strays faulted");
                RIO_ASSERT(o.stray_landed > 0,
                           "mode none should land strays");
            }
            if (dma::modeUsesRiommu(mode) &&
                (plat == virt::Platform::kEmulated ||
                 plat == virt::Platform::kNested)) {
                RIO_ASSERT(o.rep.reg_hypercalls == o.rep.live_rings &&
                               o.rep.live_rings > 0,
                           "rIOMMU state transfer must be one "
                           "hypercall per live ring");
            }
            base.push_back({std::string(n), plat, o});
        }
        t.addSeparator();
    }

    // The per-platform blackout ordering, on the representative
    // baseline mode: shadow (only what is mapped) < nested (stage-2
    // for the whole arena) < emulated (per-mapping exit replay).
    const auto find = [&base](const char *m, virt::Platform p) -> const MigOut & {
        for (const Key &k : base)
            if (k.mode == m && k.platform == p)
                return k.out;
        RIO_PANIC("missing base point");
    };
    {
        const MigOut &sh = find("strict", virt::Platform::kShadow);
        const MigOut &ne = find("strict", virt::Platform::kNested);
        const MigOut &em = find("strict", virt::Platform::kEmulated);
        RIO_ASSERT(sh.rep.state_bytes < ne.rep.state_bytes,
                   "shadow must ship less state than nested: ",
                   sh.rep.state_bytes, " vs ", ne.rep.state_bytes);
        RIO_ASSERT(sh.rep.blackout_ns < ne.rep.blackout_ns,
                   "shadow blackout (", sh.rep.blackout_ns,
                   " ns) not under nested (", ne.rep.blackout_ns, ")");
        RIO_ASSERT(ne.rep.blackout_ns < em.rep.blackout_ns,
                   "nested blackout (", ne.rep.blackout_ns,
                   " ns) not under emulated (", em.rep.blackout_ns,
                   ")");
    }

    // ---- rIOMMU scaling: blackout ~ rings, flat in memory ----------
    const auto scaled_run = [&](dma::ProtectionMode mode, unsigned qps,
                                u64 pages) {
        MigRun r;
        r.mode = mode;
        r.platform = virt::Platform::kNested;
        r.dirty = 0.0; // clean scaling: state transfer only
        r.pages = pages;
        r.app_qps = qps;
        r.threads = args.threads;
        r.strays = false;
        const MigOut o = runMigration(r);
        tableRow(t, r, o);
        jsonRow(json, "scaling", r, o);
        return o;
    };
    const MigOut rq4 = scaled_run(dma::ProtectionMode::kRiommu, 4, P);
    const MigOut rq12 = scaled_run(dma::ProtectionMode::kRiommu, 12, P);
    const MigOut rp4 = scaled_run(dma::ProtectionMode::kRiommu, 4, 4 * P);
    const MigOut sp1 = scaled_run(dma::ProtectionMode::kStrict, 4, P);
    const MigOut sp4 = scaled_run(dma::ProtectionMode::kStrict, 4, 4 * P);
    t.addSeparator();
    RIO_ASSERT(rq12.rep.live_rings == rq4.rep.live_rings + 16,
               "ring count must track QP count: ", rq4.rep.live_rings,
               " -> ", rq12.rep.live_rings);
    RIO_ASSERT(rq12.rep.blackout_ns > rq4.rep.blackout_ns,
               "rIOMMU blackout must grow with live rings: ",
               rq4.rep.blackout_ns, " -> ", rq12.rep.blackout_ns);
    RIO_ASSERT(static_cast<double>(rp4.rep.blackout_ns) <=
                   1.10 * static_cast<double>(rq4.rep.blackout_ns),
               "rIOMMU blackout must stay flat in guest memory: ",
               rq4.rep.blackout_ns, " ns at ", P, " pages vs ",
               rp4.rep.blackout_ns, " ns at ", 4 * P);
    RIO_ASSERT(static_cast<double>(sp4.rep.blackout_ns) >
                   1.30 * static_cast<double>(sp1.rep.blackout_ns),
               "nested baseline blackout must be memory-proportional: ",
               sp1.rep.blackout_ns, " -> ", sp4.rep.blackout_ns);

    // ---- dirty-rate pressure: the round cap earns its keep ---------
    for (const dma::ProtectionMode mode :
         {dma::ProtectionMode::kRiommu, dma::ProtectionMode::kStrict}) {
        MigRun r;
        r.mode = mode;
        r.platform = virt::Platform::kNested;
        r.dirty = 800.0;
        r.pages = P;
        r.threads = args.threads;
        const MigOut o = runMigration(r);
        tableRow(t, r, o);
        jsonRow(json, "dirty", r, o);
        RIO_ASSERT(o.rep.rounds > 1 && o.rep.pages_reshipped > 0,
                   "a hot dirtier must force extra pre-copy rounds");
    }
    t.addSeparator();

    // ---- hostile wire: loss on the migration stream ----------------
    for (const dma::ProtectionMode mode :
         {dma::ProtectionMode::kRiommu, dma::ProtectionMode::kStrict}) {
        MigRun r;
        r.mode = mode;
        r.platform = virt::Platform::kNested;
        r.dirty = base_dirty;
        r.loss = armed_loss;
        r.pages = P;
        r.threads = args.threads;
        const MigOut o = runMigration(r);
        tableRow(t, r, o);
        jsonRow(json, "loss", r, o);
    }

    std::printf("%s\n", t.toString().c_str());

    // ---- --slo: blackout percentiles over dirtier seeds ------------
    if (args.slo) {
        bench::printHeader(
            "Blackout tail over 5 dirtier seeds (p50/p99, ns)");
        Table st({"mode/platform", "p50 us", "p99 us"});
        for (const virt::Platform plat : virt::kAllPlatforms) {
            for (const dma::ProtectionMode mode :
                 {dma::ProtectionMode::kRiommu,
                  dma::ProtectionMode::kStrict}) {
                std::vector<u64> blk;
                for (u64 seed = 1; seed <= 5; ++seed) {
                    MigRun r;
                    r.mode = mode;
                    r.platform = plat;
                    r.dirty = base_dirty;
                    r.pages = P;
                    r.threads = args.threads;
                    r.dirty_seed = seed;
                    blk.push_back(static_cast<u64>(
                        runMigration(r).rep.blackout_ns));
                }
                const u64 p50 = pctNs(blk, 0.50);
                const u64 p99 = pctNs(blk, 0.99);
                st.addRow(strprintf("%s/%s", dma::modeName(mode),
                                    virt::platformName(plat)),
                          {static_cast<double>(p50) / 1e3,
                           static_cast<double>(p99) / 1e3},
                          2);
                json.beginRow();
                json.add("variant", "slo");
                json.add("mode", dma::modeName(mode));
                json.add("platform", virt::platformName(plat));
                json.add("blackout_p50_ns", p50);
                json.add("blackout_p99_ns", p99);
            }
        }
        std::printf("%s\n", st.toString().c_str());
    }

    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
