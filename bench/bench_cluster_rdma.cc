/**
 * @file
 * Scale-out RDMA fabric bench: cycles per RDMA op across the seven
 * protection modes as the per-machine connection count sweeps
 * 64 -> 16K — the regime where the paper's single-NIC result (a
 * handful of rings, long completion bursts, one rIOTLB invalidation
 * amortized over ~hundreds of unmaps) erodes: with thousands of QP
 * data rings, a completion-poll batch touches mostly *distinct*
 * rings, every unmap closes its ring's burst, and rIOMMU pays the
 * full invalidation per op while the deferred baselines keep
 * amortizing globally (250 frees per flush regardless of ring
 * count). The bench reports the crossover connection count where
 * riommu's cycles/op overtakes defer+.
 *
 * Ablations in the same JSON:
 *   - variant=rdfetch       riommu with the rDEVICE descriptor-fetch
 *                           model on (every rtable_walk pays a
 *                           descriptor memory reference — the
 *                           hardware-side erosion);
 *   - variant=rdfetch+tier  same plus a small direct-mapped hot tier
 *                           (riommu::RdCacheConfig.hot_entries): the
 *                           Zipf-hot rings are absorbed on chip, the
 *                           tail still walks — reported as hit rate;
 *   - variant=coredepot     strict+/defer+ with the magazine
 *                           allocator's per-core loaded/previous pair
 *                           in front of the depot (the ROADMAP
 *                           perf-debt fix) instead of the legacy
 *                           per-handle depot.
 *
 * Simulated results are byte-identical for any --threads value; the
 * golden_cluster ctest pins `--connections 64 --quick` JSON across
 * thread counts and this bench itself asserts the fig7-equivalent
 * mode ordering at the smallest sweep point.
 */
#include "bench_common.h"

#include <string>
#include <vector>

#include "base/logging.h"
#include "sys/cluster.h"
#include "workloads/fleet.h"

using namespace rio;

namespace {

struct RowResult
{
    dma::ProtectionMode mode;
    std::string variant;
    u32 connections = 0;
    workloads::FleetReport rep;
};

workloads::FleetParams
fleetParamsFor(u32 connections, bool quick)
{
    workloads::FleetParams p;
    p.connections = connections;
    p.credits = 16; // = sq_depth: fill the CQ batches
    p.warmup_ops = quick ? 100 : 300;
    p.measure_ops = quick ? 500 : 3000;
    p.seed = 3;
    return p;
}

RowResult
runPoint(dma::ProtectionMode mode, const std::string &variant,
         u32 connections, unsigned machines, unsigned threads,
         bool quick)
{
    const workloads::FleetParams p = fleetParamsFor(connections, quick);
    sys::ClusterConfig cfg;
    cfg.machines = machines;
    cfg.threads = threads;
    cfg.mode = mode;
    cfg.max_qps = workloads::fleetMaxQps(p, machines);
    if (variant == "rdfetch" || variant == "rdfetch+tier")
        cfg.rdcache.model_fetch = true;
    if (variant == "rdfetch+tier")
        cfg.rdcache.hot_entries = 512;
    if (variant == "coredepot")
        cfg.iova_cache_rounds = 16;

    sys::Cluster cluster(cfg);
    RowResult row;
    row.mode = mode;
    row.variant = variant;
    row.connections = connections;
    row.rep = workloads::runFleet(cluster, p);
    RIO_ASSERT(row.rep.leaks_clean, "leaked mappings at ",
               dma::modeName(mode), " conns=", connections);
    RIO_ASSERT(row.rep.comp_errors == 0 && row.rep.remote_faults == 0,
               "unexpected faults at ", dma::modeName(mode));
    return row;
}

double
perOp(u64 count, const workloads::FleetReport &rep)
{
    return rep.completions
               ? static_cast<double>(count) /
                     static_cast<double>(rep.completions)
               : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bool quick = false;
    u32 max_connections = 0;
    unsigned machines = 2;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--quick")
            quick = true;
        else if (arg == "--connections" && i + 1 < argc)
            max_connections =
                static_cast<u32>(std::max(2, std::atoi(argv[i + 1])));
        else if (arg == "--machines" && i + 1 < argc)
            machines = static_cast<unsigned>(
                std::max(2, std::atoi(argv[i + 1])));
    }
    if (max_connections == 0)
        max_connections = quick ? 256 : 16384;

    std::vector<u32> sweep;
    for (u32 c : {64u, 256u, 1024u, 4096u, 16384u})
        if (c <= max_connections)
            sweep.push_back(c);
    if (sweep.empty())
        sweep.push_back(max_connections);

    bench::printHeader(strprintf(
        "Cluster RDMA fabric: %u machines, %u..%u QPs/machine, "
        "cycles per RDMA op (erosion of the flat-table win)",
        machines, sweep.front(), sweep.back()));

    std::vector<RowResult> rows;
    for (const u32 conns : sweep) {
        for (const dma::ProtectionMode mode : bench::evaluatedModes())
            rows.push_back(runPoint(mode, "base", conns, machines,
                                    args.threads, quick));
        // Ablations ride the same sweep point.
        rows.push_back(runPoint(dma::ProtectionMode::kRiommu, "rdfetch",
                                conns, machines, args.threads, quick));
        rows.push_back(runPoint(dma::ProtectionMode::kRiommu,
                                "rdfetch+tier", conns, machines,
                                args.threads, quick));
        for (const dma::ProtectionMode mode :
             {dma::ProtectionMode::kStrictPlus,
              dma::ProtectionMode::kDeferPlus})
            rows.push_back(runPoint(mode, "coredepot", conns, machines,
                                    args.threads, quick));
    }

    // Fig7-equivalent ordering gate at the bare (smallest) point: the
    // unprotected optimum is cheapest and rIOMMU beats strict — the
    // single-connection-regime result the paper's Figure 7 pins.
    {
        double none = 0, riommu = 0, strict_c = 0, min_cpo = 1e100;
        for (const RowResult &r : rows) {
            if (r.connections != sweep.front() || r.variant != "base")
                continue;
            min_cpo = std::min(min_cpo, r.rep.cycles_per_op);
            if (r.mode == dma::ProtectionMode::kNone)
                none = r.rep.cycles_per_op;
            if (r.mode == dma::ProtectionMode::kRiommu)
                riommu = r.rep.cycles_per_op;
            if (r.mode == dma::ProtectionMode::kStrict)
                strict_c = r.rep.cycles_per_op;
        }
        RIO_ASSERT(none > 0 && none <= min_cpo + 1e-9,
                   "fig7 equivalence: none must be the cheapest mode");
        RIO_ASSERT(riommu < strict_c,
                   "fig7 equivalence: riommu must beat strict at ",
                   sweep.front(), " connections (", riommu, " vs ",
                   strict_c, ")");
    }

    // Crossover: smallest sweep point where riommu (base) stops
    // beating defer+ (base) on cycles/op; 0 = never within the sweep.
    u32 crossover = 0;
    for (const u32 conns : sweep) {
        double riommu = 0, deferp = 0;
        for (const RowResult &r : rows) {
            if (r.connections != conns || r.variant != "base")
                continue;
            if (r.mode == dma::ProtectionMode::kRiommu)
                riommu = r.rep.cycles_per_op;
            if (r.mode == dma::ProtectionMode::kDeferPlus)
                deferp = r.rep.cycles_per_op;
        }
        if (riommu > deferp) {
            crossover = conns;
            break;
        }
    }

    Table t({"mode/variant", "conns", "cycles/op", "avg burst",
             "riotlb inv/op", "rdfetch hit%", "blocked"});
    bench::JsonWriter json("cluster_rdma", args.threads);
    for (const RowResult &r : rows) {
        const double hitrate =
            r.rep.rdcache.fetches
                ? 100.0 * static_cast<double>(r.rep.rdcache.hot_hits) /
                      static_cast<double>(r.rep.rdcache.fetches)
                : 0.0;
        t.addRow(strprintf("%s/%s", dma::modeName(r.mode),
                           r.variant.c_str()),
                 {static_cast<double>(r.connections),
                  r.rep.cycles_per_op, r.rep.avg_burst,
                  perOp(r.rep.riotlb.invalidations, r.rep), hitrate,
                  static_cast<double>(r.rep.posts_blocked)},
                 2);
        json.beginRow();
        json.add("mode", dma::modeName(r.mode));
        json.add("variant", r.variant);
        json.add("connections", static_cast<u64>(r.connections));
        json.add("cycles_per_op", r.rep.cycles_per_op);
        json.add("avg_burst", r.rep.avg_burst);
        json.add("measured_ops", r.rep.measured_ops);
        json.add("completions", r.rep.completions);
        json.add("posts_blocked", r.rep.posts_blocked);
        json.add("eob_unmaps", r.rep.eob_unmaps);
        json.add("riotlb_invalidations", r.rep.riotlb.invalidations);
        json.add("riotlb_walks", r.rep.riotlb.walks);
        json.add("rdcache_fetches", r.rep.rdcache.fetches);
        json.add("rdcache_hot_hits", r.rep.rdcache.hot_hits);
        json.add("rdcache_hit_rate", hitrate);
    }
    json.beginRow();
    json.add("mode", "summary");
    json.add("variant", "crossover");
    json.add("crossover_connections", static_cast<u64>(crossover));
    std::printf("%s\n", t.toString().c_str());
    if (crossover)
        std::printf("flat-table win erodes at ~%u QPs/machine "
                    "(riommu cycles/op > defer+)\n",
                    crossover);
    else
        std::printf("no riommu/defer+ crossover within %u QPs/machine\n",
                    sweep.back());

    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
