/**
 * @file
 * Fault storm: cycles/packet under deterministic DMA fault injection.
 * Sweeps injected fault rates (0 / 0.1% / 1%) over the seven
 * evaluated protection modes running the Netperf stream workload,
 * then compares the three recovery policies at 1%, and finally runs
 * the latency-sensitive RR ping-pong at 1% to show every mode
 * degrades gracefully (retransmits, not aborts).
 *
 * Expected shape: at rate 0 the numbers are bit-identical to
 * bench_fig7 (the injection path is completely disarmed); with
 * injection on, every mode completes and reports a nonzero
 * "fault handling" share that grows with the rate; drop-with-backoff
 * is the costliest policy per fault, retry-with-remap the cheapest
 * that still delivers the packet.
 */
#include "bench_common.h"

#include <algorithm>

#include "cycles/cycle_account.h"
#include "dma/fault.h"

using namespace rio;

namespace {

struct Row
{
    dma::ProtectionMode mode;
    double rate;
    dma::FaultPolicy policy;
    workloads::RunResult r;
};

double
faultCyclesPerPacket(const workloads::RunResult &r)
{
    return static_cast<double>(
               r.acct.get(cycles::Cat::kFaultHandling)) /
           static_cast<double>(std::max<u64>(r.tx_packets, 1));
}

void
addJsonRow(bench::JsonWriter &json, const char *workload, const Row &row)
{
    json.beginRow();
    json.add("workload", workload);
    json.add("mode", dma::modeName(row.mode));
    json.add("rate", row.rate);
    json.add("policy", dma::faultPolicyName(row.policy));
    json.add("cycles_per_packet", row.r.cycles_per_packet);
    json.add("fault_cycles_per_packet", faultCyclesPerPacket(row.r));
    json.add("fault_share_pct", 100.0 * faultCyclesPerPacket(row.r) /
                                    row.r.cycles_per_packet);
    json.add("throughput_gbps", row.r.throughput_gbps);
    json.add("tx_packets", row.r.tx_packets);
    json.add("injected", row.r.fault.injected);
    json.add("faults_seen", row.r.fault.faults_seen);
    json.add("recovered", row.r.fault.recovered);
    json.add("dropped", row.r.fault.dropped);
    json.add("retries", row.r.fault.retries);
}

void
printRows(const std::vector<Row> &rows, bool with_policy)
{
    Table t({with_policy ? "policy" : "mode",
             with_policy ? "mode" : "fault rate", "cycles/pkt",
             "fault cyc/pkt", "fault %", "injected", "recovered",
             "dropped", "Gbps"});
    for (const Row &row : rows) {
        const double f = faultCyclesPerPacket(row.r);
        t.addRow({with_policy ? dma::faultPolicyName(row.policy)
                              : dma::modeName(row.mode),
                  with_policy ? std::string(dma::modeName(row.mode))
                              : strprintf("%.1f%%", 100.0 * row.rate),
                  Table::num(row.r.cycles_per_packet, 0),
                  Table::num(f, 1),
                  Table::num(100.0 * f / row.r.cycles_per_packet, 2),
                  strprintf("%llu",
                            (unsigned long long)row.r.fault.injected),
                  strprintf("%llu",
                            (unsigned long long)row.r.fault.recovered),
                  strprintf("%llu",
                            (unsigned long long)row.r.fault.dropped),
                  Table::num(row.r.throughput_gbps, 2)});
    }
    std::printf("%s\n", t.toString().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::printHeader(
        "Fault storm: cycles/packet vs injected DMA fault rate, "
        "Netperf stream + RR (mlx)");

    workloads::StreamParams sp =
        workloads::streamParamsFor(nic::mlxProfile());
    sp.measure_packets = bench::scaled(20000);
    sp.warmup_packets = bench::scaled(5000);

    const double rates[] = {0.0, 0.001, 0.01};
    bench::JsonWriter json("fault_storm", args.threads);

    // -- Rate sweep, retry-with-remap (the production-shaped policy).
    std::vector<Row> rate_rows;
    for (dma::ProtectionMode mode : bench::evaluatedModes()) {
        for (double rate : rates) {
            workloads::StreamParams p = sp;
            p.fault_rate = rate;
            p.fault_policy = dma::FaultPolicy::kRetryRemap;
            rate_rows.push_back(
                {mode, rate, p.fault_policy,
                 workloads::runStream(mode, nic::mlxProfile(), p)});
        }
    }
    std::printf("stream, policy = retry-with-remap:\n");
    printRows(rate_rows, /*with_policy=*/false);
    for (const Row &row : rate_rows)
        addJsonRow(json, "stream", row);

    // -- Policy sweep at 1%: what each recovery strategy costs.
    const dma::FaultPolicy policies[] = {dma::FaultPolicy::kAbort,
                                         dma::FaultPolicy::kRetryRemap,
                                         dma::FaultPolicy::kDropBackoff};
    std::vector<Row> policy_rows;
    for (dma::FaultPolicy policy : policies) {
        for (dma::ProtectionMode mode : bench::evaluatedModes()) {
            workloads::StreamParams p = sp;
            p.fault_rate = 0.01;
            p.fault_policy = policy;
            policy_rows.push_back(
                {mode, 0.01, policy,
                 workloads::runStream(mode, nic::mlxProfile(), p)});
        }
    }
    std::printf("stream at 1%% injected faults, by recovery policy:\n");
    printRows(policy_rows, /*with_policy=*/true);
    for (const Row &row : policy_rows)
        addJsonRow(json, "stream", row);

    // -- RR ping-pong at 1%: latency-sensitive path survives drops
    // via the retransmit timer instead of deadlocking.
    workloads::RrParams rp = workloads::rrParamsFor(nic::mlxProfile());
    rp.measure_transactions = bench::scaled(2000);
    rp.warmup_transactions = bench::scaled(250);
    rp.fault_rate = 0.01;
    rp.fault_policy = dma::FaultPolicy::kRetryRemap;
    std::vector<Row> rr_rows;
    for (dma::ProtectionMode mode : bench::evaluatedModes())
        rr_rows.push_back(
            {mode, rp.fault_rate, rp.fault_policy,
             workloads::runNetperfRr(mode, nic::mlxProfile(), rp)});
    Table rr({"mode", "trans/s", "RTT us", "fault cyc/pkt", "injected",
              "recovered", "dropped"});
    for (const Row &row : rr_rows) {
        rr.addRow({dma::modeName(row.mode),
                   Table::num(row.r.transactions_per_sec, 0),
                   Table::num(1e6 / row.r.transactions_per_sec, 1),
                   Table::num(faultCyclesPerPacket(row.r), 1),
                   strprintf("%llu",
                             (unsigned long long)row.r.fault.injected),
                   strprintf("%llu",
                             (unsigned long long)row.r.fault.recovered),
                   strprintf("%llu",
                             (unsigned long long)row.r.fault.dropped)});
        addJsonRow(json, "rr", row);
    }
    std::printf("RR at 1%% injected faults, retry-with-remap:\n%s\n",
                rr.toString().c_str());

    std::printf("expected: rate 0 matches bench_fig7 exactly; fault "
                "share grows with rate; fault cycles per packet are "
                "drop-with-backoff > retry-with-remap > abort (retry "
                "pays the remap but saves the packet); no mode "
                "aborts\n");

    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
