/**
 * @file
 * Multi-core scaling of the seven IOMMU modes: K independent Netperf
 * stream flows, each pinned to its own core and NIC, all sharing one
 * DmaContext. §3.2 of the paper argues the baseline Linux design
 * cannot scale because every map/unmap serializes on the context-
 * global IOVA-allocator lock and on the invalidation-queue tail
 * register; rIOMMU touches only per-ring state. This bench measures
 * exactly that: aggregate cycles per packet and lock-wait cycles per
 * packet as the core count doubles.
 *
 * Expected shape: strict/defer per-packet cost grows with cores
 * (nonzero, rising lock-wait share); riommu/riommu- lock-wait is
 * exactly zero and per-packet cost stays flat.
 */
#include "bench_common.h"

#include "cycles/cycle_account.h"
#include "workloads/scaling.h"

using namespace rio;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::printHeader(
        "Scaling: cycles/packet vs core count, Netperf stream x K "
        "flows on one DmaContext (mlx)");

    workloads::StreamParams params =
        workloads::streamParamsFor(nic::mlxProfile());
    params.measure_packets = bench::scaled(20000);
    params.warmup_packets = bench::scaled(5000);

    // `--cores 1,2,4` overrides the default sweep (the golden-output
    // regression test pins {1,2} for a fast deterministic run).
    std::vector<unsigned> core_counts = {1, 2, 4, 8};
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string_view(argv[i]) != "--cores")
            continue;
        core_counts.clear();
        unsigned v = 0;
        for (const char *p = argv[i + 1]; *p; ++p) {
            if (*p == ',') {
                core_counts.push_back(v);
                v = 0;
            } else if (*p >= '0' && *p <= '9') {
                v = v * 10 + static_cast<unsigned>(*p - '0');
            }
        }
        core_counts.push_back(v);
    }

    struct Row
    {
        dma::ProtectionMode mode;
        workloads::ScalingResult r;
    };
    std::vector<Row> rows;
    for (dma::ProtectionMode mode : bench::evaluatedModes())
        for (unsigned cores : core_counts)
            rows.push_back({mode, workloads::runStreamScaling(
                                      mode, nic::mlxProfile(), cores,
                                      params)});

    Table t({"mode", "cores", "cycles/pkt", "lock wait/pkt",
             "lock wait %", "vs 1 core", "iova contended",
             "qi contended"});
    const Row *base = nullptr;
    for (const Row &row : rows) {
        if (row.r.cores == core_counts.front() || !base)
            base = &row;
        const double wait_pct = 100.0 * row.r.lock_wait_per_packet /
                                row.r.cycles_per_packet;
        t.addRow({dma::modeName(row.mode),
                  strprintf("%u", row.r.cores),
                  Table::num(row.r.cycles_per_packet, 0),
                  Table::num(row.r.lock_wait_per_packet, 0),
                  Table::num(wait_pct, 1),
                  Table::num(row.r.cycles_per_packet /
                                 base->r.cycles_per_packet,
                             2),
                  strprintf("%llu", (unsigned long long)
                                        row.r.iova_lock.contended),
                  strprintf("%llu", (unsigned long long)
                                        row.r.inval_lock.contended)});
    }
    std::printf("%s\n", t.toString().c_str());
    std::printf("expected: strict/defer grow with cores (lock wait > 0); "
                "riommu/riommu-/none stay flat with zero lock wait\n");

    bench::JsonWriter json("scaling_cores", args.threads);
    for (const Row &row : rows) {
        json.beginRow();
        json.add("mode", dma::modeName(row.mode));
        json.add("cores", row.r.cores);
        json.add("tx_packets", row.r.tx_packets);
        json.add("cycles_per_packet", row.r.cycles_per_packet);
        json.add("lock_wait_per_packet", row.r.lock_wait_per_packet);
        json.add("throughput_gbps", row.r.throughput_gbps);
        json.add("iova_lock_acquisitions", row.r.iova_lock.acquisitions);
        json.add("iova_lock_contended", row.r.iova_lock.contended);
        json.add("iova_lock_wait_cycles", row.r.iova_lock.wait_cycles);
        json.add("inval_lock_acquisitions",
                 row.r.inval_lock.acquisitions);
        json.add("inval_lock_contended", row.r.inval_lock.contended);
        json.add("inval_lock_wait_cycles", row.r.inval_lock.wait_cycles);
    }
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
