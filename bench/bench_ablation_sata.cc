/**
 * @file
 * Reproduces the §4 applicability observation: for slow SATA drives
 * (AHCI: a single 32-slot queue completed in arbitrary order),
 * Bonnie++-style sequential I/O performs indistinguishably with
 * strict IOMMU protection and with the IOMMU disabled — the device,
 * not the core, is the bottleneck, so rIOMMU support for AHCI's
 * out-of-order mode "seems unneeded".
 */
#include "bench_common.h"

#include "ahci/ahci.h"
#include "dma/dma_context.h"

using namespace rio;

namespace {

double
runSequentialIo(dma::ProtectionMode mode, bool hdd)
{
    des::Simulator sim;
    dma::DmaContext ctx;
    des::Core core(sim, ctx.cost());
    auto handle = ctx.makeHandle(mode, iommu::Bdf{0, 5, 0}, &core.acct(),
                                 {ahci::AhciDevice::kSlots + 1});
    ahci::AhciProfile profile;
    if (!hdd) {
        profile.seek_ns = 60000; // SATA SSD: no mechanical seek
        profile.sequential_ns = 30000;
        profile.bandwidth_gbps = 4.0; // ~500 MB/s
    }
    ahci::AhciDevice disk(sim, core, ctx.memory(), *handle, profile);

    const u64 total_ios = bench::scaled(4000);
    const PhysAddr buf = ctx.memory().allocContiguous(64 * kPageSize);
    u64 issued = 0;
    u64 done = 0;
    u64 next_lba = 0;

    std::function<void()> fill = [&] {
        while (issued < total_ios && disk.freeSlots() > 0) {
            // Bonnie++ sequential read: 16 sectors per request.
            auto r = disk.issue(false, next_lba, 16,
                                buf + (issued % 4) * 16 * kPageSize);
            RIO_ASSERT(r.isOk(), "issue failed: ", r.status().toString());
            next_lba += 16;
            ++issued;
        }
    };
    disk.setCompletionCallback([&](u32, Status s) {
        RIO_ASSERT(s.isOk(), "I/O failed");
        ++done;
        fill();
    });
    core.post(fill);
    sim.run();
    RIO_ASSERT(done == total_ios, "lost I/Os");
    const double seconds = static_cast<double>(sim.now()) * 1e-9;
    return static_cast<double>(disk.bytesMoved()) / seconds / 1e6; // MB/s
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::printHeader("SATA/AHCI: strict vs none on sequential I/O "
                       "(Bonnie++-style)");
    Table t({"drive", "strict (MB/s)", "none (MB/s)", "ratio"});
    for (bool hdd : {true, false}) {
        const double strict =
            runSequentialIo(dma::ProtectionMode::kStrict, hdd);
        const double none =
            runSequentialIo(dma::ProtectionMode::kNone, hdd);
        t.addRow(hdd ? "SATA HDD" : "SATA SSD",
                 {strict, none, strict / none}, 2);
    }
    std::printf("%s\n", t.toString().c_str());
    std::printf("paper: \"indistinguishable performance results ... "
                "regardless of whether we use a SATA HDD or a SATA "
                "SSD\" (Sec. 4)\n");
    bench::JsonWriter json("ablation_sata", args.threads);
    json.addTable(t);
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
