/**
 * @file
 * Shared helpers for the reproduction bench binaries: mode sweeps,
 * formatting, and the paper's reference numbers for side-by-side
 * printing.
 */
#ifndef RIO_BENCH_BENCH_COMMON_H
#define RIO_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "base/strings.h"
#include "base/table.h"
#include "dma/protection_mode.h"
#include "nic/profile.h"
#include "workloads/netperf_rr.h"
#include "workloads/request_load.h"
#include "workloads/result.h"
#include "workloads/stream.h"

namespace rio::bench {

/** Scale factor for run lengths: RIO_BENCH_QUICK=1 shrinks runs for
 * smoke testing; default is full length. */
inline double
runScale()
{
    const char *quick = std::getenv("RIO_BENCH_QUICK");
    return (quick && quick[0] == '1') ? 0.15 : 1.0;
}

inline u64
scaled(u64 n)
{
    const u64 s = static_cast<u64>(static_cast<double>(n) * runScale());
    return s < 100 ? 100 : s;
}

/** The seven evaluated modes in the paper's display order. */
inline const std::vector<dma::ProtectionMode> &
evaluatedModes()
{
    static const std::vector<dma::ProtectionMode> modes(
        dma::kEvaluatedModes.begin(), dma::kEvaluatedModes.end());
    return modes;
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace rio::bench

#endif // RIO_BENCH_BENCH_COMMON_H
