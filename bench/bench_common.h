/**
 * @file
 * Shared helpers for the reproduction bench binaries: mode sweeps,
 * formatting, and the paper's reference numbers for side-by-side
 * printing.
 */
#ifndef RIO_BENCH_BENCH_COMMON_H
#define RIO_BENCH_BENCH_COMMON_H

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "base/strings.h"
#include "base/table.h"
#include "dma/protection_mode.h"
#include "nic/profile.h"
#include "obs/slo.h"
#include "obs/timeline.h"
#include "workloads/netperf_rr.h"
#include "workloads/request_load.h"
#include "workloads/result.h"
#include "workloads/stream.h"

namespace rio::bench {

/** Scale factor for run lengths: RIO_BENCH_QUICK=1 shrinks runs for
 * smoke testing; default is full length. */
inline double
runScale()
{
    const char *quick = std::getenv("RIO_BENCH_QUICK");
    return (quick && quick[0] == '1') ? 0.15 : 1.0;
}

inline u64
scaled(u64 n)
{
    const u64 s = static_cast<u64>(static_cast<double>(n) * runScale());
    return s < 100 ? 100 : s;
}

/** The seven evaluated modes in the paper's display order. */
inline const std::vector<dma::ProtectionMode> &
evaluatedModes()
{
    static const std::vector<dma::ProtectionMode> modes(
        dma::kEvaluatedModes.begin(), dma::kEvaluatedModes.end());
    return modes;
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/** Host wall-clock anchor for JsonWriter's host_ms field; first call
 * wins, and parseBenchArgs() makes that call at bench startup. */
inline std::chrono::steady_clock::time_point
benchStartTime()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

/** Arguments every bench binary understands. */
struct BenchArgs
{
    const char *json_path = nullptr;     //!< --json <path>
    const char *timeline_path = nullptr; //!< --timeline <path>
    /**
     * --threads N: worker threads for the engine-backed sweeps
     * (workloads/sweep.h). Simulation results are byte-identical for
     * any value — only host wall-clock changes (golden_selfperf
     * enforces this) — so benches that still run sequentially simply
     * record the flag in their JSON and ignore it.
     */
    unsigned threads = 1;
    /** --slo: turn on exact per-op tail recording (obs::SloReport). */
    bool slo = false;
    /** --timeline-cap N: per-track event-ring capacity override. */
    size_t timeline_cap = 0;
};

/**
 * Parse the uniform bench arguments (bench-specific flags like
 * --cores are parsed by the bench itself and ignored here). Passing
 * --timeline turns the event timeline's recording gate on for the
 * whole run; pair with finishBench() to write the trace at exit.
 * --slo flips the obs::sloRecording() gate for the whole run.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv)
{
    benchStartTime(); // anchor host_ms at startup
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--json" && i + 1 < argc)
            args.json_path = argv[++i];
        else if (arg == "--timeline" && i + 1 < argc)
            args.timeline_path = argv[++i];
        else if (arg == "--threads" && i + 1 < argc)
            args.threads = std::max(1, std::atoi(argv[++i]));
        else if (arg == "--timeline-cap" && i + 1 < argc)
            args.timeline_cap = static_cast<size_t>(
                std::max(1LL, std::atoll(argv[++i])));
        else if (arg == "--slo")
            args.slo = true;
    }
    if (args.timeline_cap)
        obs::timeline().setCapacity(args.timeline_cap);
    if (args.timeline_path) {
        if (!obs::kObsCompiled)
            std::fprintf(stderr,
                         "warning: --timeline requested but "
                         "observability is compiled out (RIO_OBS=OFF); "
                         "the trace will be empty\n");
        obs::timeline().setRecording(true);
    }
    if (args.slo)
        obs::setSloRecording(true);
    return args;
}

/** Export the Chrome trace if --timeline was given. Call at exit. */
inline void
finishBench(const BenchArgs &args)
{
    if (args.timeline_path)
        obs::timeline().writeChromeTrace(args.timeline_path);
}

/**
 * Mirrors a bench's table into a machine-readable file (conventionally
 * BENCH_<name>.json) for plotting and CI diffing:
 *
 *   {"bench": "...", "threads": 1, "host_ms": 42,
 *    "rows": [{"mode": "strict", "total": 17650.0}, ...]}
 *
 * Rows are flat objects of string and number fields, added in call
 * order. Writing is a no-op when the path is null (no --json given).
 *
 * The meta header records how the bench ran: `threads` is the
 * --threads value, `host_ms` the host wall-clock from bench startup
 * to writeTo(). host_ms is the one legitimately nondeterministic
 * field in an otherwise bit-reproducible file, so the golden_* tests
 * (and any other byte-for-byte diffing) set RIO_JSON_STABLE=1, which
 * pins it to 0.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::string bench, unsigned threads = 1)
        : bench_(std::move(bench)), threads_(threads)
    {
    }

    void beginRow() { rows_.emplace_back(); }
    void add(const std::string &key, const std::string &value)
    {
        sink().push_back(
            strprintf("\"%s\": \"%s\"", key.c_str(), value.c_str()));
    }
    void add(const std::string &key, const char *value)
    {
        add(key, std::string(value));
    }
    void add(const std::string &key, double value)
    {
        sink().push_back(strprintf("\"%s\": %.6g", key.c_str(), value));
    }
    void add(const std::string &key, u64 value)
    {
        sink().push_back(strprintf("\"%s\": %llu", key.c_str(),
                                   (unsigned long long)value));
    }
    void add(const std::string &key, unsigned value)
    {
        add(key, static_cast<u64>(value));
    }

    /** Open a nested object inside the current row; subsequent add()
     * calls land in it until the matching endObject(). Nests. */
    void beginObject(const std::string &key)
    {
        open_.push_back({key, {}});
    }
    void
    endObject()
    {
        OpenObject obj = std::move(open_.back());
        open_.pop_back();
        std::string joined;
        for (size_t i = 0; i < obj.fields.size(); ++i) {
            if (i)
                joined += ", ";
            joined += obj.fields[i];
        }
        sink().push_back(strprintf("\"%s\": {%s}", obj.key.c_str(),
                                   joined.c_str()));
    }

    /** Mirror a formatted Table: one JSON row per table row (separator
     * rows skipped), keys from the header, cells that parse fully as
     * numbers emitted as numbers. A non-empty @p tag_key prepends a
     * constant field to every row — use it to tell multiple tables in
     * one bench apart. */
    void
    addTable(const Table &t, const std::string &tag_key = {},
             const std::string &tag_value = {})
    {
        for (const auto &row : t.rows()) {
            if (row.empty())
                continue; // separator
            beginRow();
            if (!tag_key.empty())
                add(tag_key, tag_value);
            const size_t n = std::min(row.size(), t.header().size());
            for (size_t j = 0; j < n; ++j) {
                const std::string &cell = row[j];
                char *end = nullptr;
                std::strtod(cell.c_str(), &end);
                if (!cell.empty() && end && *end == '\0')
                    sink().push_back(strprintf(
                        "\"%s\": %s", t.header()[j].c_str(),
                        cell.c_str()));
                else
                    add(t.header()[j], cell);
            }
        }
    }

    /** Write to @p path; returns false (with a message) on I/O error.
     * Null @p path: nothing to do, returns true. */
    bool
    writeTo(const char *path) const
    {
        if (!path)
            return true;
        std::FILE *f = std::fopen(path, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path);
            return false;
        }
        // RIO_JSON_STABLE pins the wall-clock field for byte-for-byte
        // golden diffs; everything else in the file is deterministic.
        const char *stable = std::getenv("RIO_JSON_STABLE");
        unsigned long long host_ms = 0;
        if (!(stable && stable[0] == '1'))
            host_ms = static_cast<unsigned long long>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - benchStartTime())
                    .count());
        std::fprintf(f,
                     "{\"bench\": \"%s\", \"threads\": %u, "
                     "\"host_ms\": %llu, \"rows\": [",
                     bench_.c_str(), threads_, host_ms);
        for (size_t i = 0; i < rows_.size(); ++i) {
            std::fprintf(f, "%s{", i ? ", " : "");
            for (size_t j = 0; j < rows_[i].size(); ++j)
                std::fprintf(f, "%s%s", j ? ", " : "",
                             rows_[i][j].c_str());
            std::fprintf(f, "}");
        }
        std::fprintf(f, "]}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path);
        return true;
    }

  private:
    struct OpenObject
    {
        std::string key;
        std::vector<std::string> fields;
    };

    /** Where the next field goes: deepest open object, else the row. */
    std::vector<std::string> &
    sink()
    {
        return open_.empty() ? rows_.back() : open_.back().fields;
    }

    std::string bench_;
    unsigned threads_ = 1;
    std::vector<std::vector<std::string>> rows_;
    std::vector<OpenObject> open_;
};

} // namespace rio::bench

#endif // RIO_BENCH_BENCH_COMMON_H
