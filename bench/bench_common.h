/**
 * @file
 * Shared helpers for the reproduction bench binaries: mode sweeps,
 * formatting, and the paper's reference numbers for side-by-side
 * printing.
 */
#ifndef RIO_BENCH_BENCH_COMMON_H
#define RIO_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "base/strings.h"
#include "base/table.h"
#include "dma/protection_mode.h"
#include "nic/profile.h"
#include "workloads/netperf_rr.h"
#include "workloads/request_load.h"
#include "workloads/result.h"
#include "workloads/stream.h"

namespace rio::bench {

/** Scale factor for run lengths: RIO_BENCH_QUICK=1 shrinks runs for
 * smoke testing; default is full length. */
inline double
runScale()
{
    const char *quick = std::getenv("RIO_BENCH_QUICK");
    return (quick && quick[0] == '1') ? 0.15 : 1.0;
}

inline u64
scaled(u64 n)
{
    const u64 s = static_cast<u64>(static_cast<double>(n) * runScale());
    return s < 100 ? 100 : s;
}

/** The seven evaluated modes in the paper's display order. */
inline const std::vector<dma::ProtectionMode> &
evaluatedModes()
{
    static const std::vector<dma::ProtectionMode> modes(
        dma::kEvaluatedModes.begin(), dma::kEvaluatedModes.end());
    return modes;
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/** The `--json <path>` argument, or null when absent. */
inline const char *
jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string_view(argv[i]) == "--json")
            return argv[i + 1];
    return nullptr;
}

/**
 * Mirrors a bench's table into a machine-readable file (conventionally
 * BENCH_<name>.json) for plotting and CI diffing:
 *
 *   {"bench": "...", "rows": [{"mode": "strict", "total": 17650.0}, ...]}
 *
 * Rows are flat objects of string and number fields, added in call
 * order. Writing is a no-op when the path is null (no --json given).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::string bench) : bench_(std::move(bench)) {}

    void beginRow() { rows_.emplace_back(); }
    void add(const std::string &key, const std::string &value)
    {
        rows_.back().push_back(
            strprintf("\"%s\": \"%s\"", key.c_str(), value.c_str()));
    }
    void add(const std::string &key, const char *value)
    {
        add(key, std::string(value));
    }
    void add(const std::string &key, double value)
    {
        rows_.back().push_back(
            strprintf("\"%s\": %.6g", key.c_str(), value));
    }
    void add(const std::string &key, u64 value)
    {
        rows_.back().push_back(strprintf("\"%s\": %llu", key.c_str(),
                                         (unsigned long long)value));
    }
    void add(const std::string &key, unsigned value)
    {
        add(key, static_cast<u64>(value));
    }

    /** Write to @p path; returns false (with a message) on I/O error.
     * Null @p path: nothing to do, returns true. */
    bool
    writeTo(const char *path) const
    {
        if (!path)
            return true;
        std::FILE *f = std::fopen(path, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path);
            return false;
        }
        std::fprintf(f, "{\"bench\": \"%s\", \"rows\": [", bench_.c_str());
        for (size_t i = 0; i < rows_.size(); ++i) {
            std::fprintf(f, "%s{", i ? ", " : "");
            for (size_t j = 0; j < rows_[i].size(); ++j)
                std::fprintf(f, "%s%s", j ? ", " : "",
                             rows_[i][j].c_str());
            std::fprintf(f, "}");
        }
        std::fprintf(f, "]}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path);
        return true;
    }

  private:
    std::string bench_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rio::bench

#endif // RIO_BENCH_BENCH_COMMON_H
