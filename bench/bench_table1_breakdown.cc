/**
 * @file
 * Reproduces Table 1 of the paper: the average cycles breakdown of
 * the IOMMU driver's map and unmap functions under the four baseline
 * protection modes (strict, strict+, defer, defer+), measured while
 * running Netperf TCP stream on the mlx setup. The component costs
 * emerge from executing the real allocator / page-table / IOTLB
 * algorithms under the NIC's (un)map churn.
 *
 * Paper reference (Table 1, cycles):
 *                    strict  strict+  defer  defer+
 *   map/iova alloc     3986       92   1674     108
 *   map/page table      588      590    533     577
 *   map/other            44       45     44      42
 *   map/sum            4618      727   2251     727
 *   unmap/iova find     249      418    263     454
 *   unmap/iova free     159       62    189      57
 *   unmap/page table    438      427    471     504
 *   unmap/iotlb inv    2127     2135      9       9
 *   unmap/other          26       25    205     216
 *   unmap/sum          2999     3067   1137    1240
 */
#include "bench_common.h"

#include "cycles/cycle_account.h"

using namespace rio;
using cycles::Cat;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::printHeader(
        "Table 1: average cycles of the (un)map functions, "
        "Netperf stream on mlx");

    const std::vector<dma::ProtectionMode> modes = {
        dma::ProtectionMode::kStrict, dma::ProtectionMode::kStrictPlus,
        dma::ProtectionMode::kDefer, dma::ProtectionMode::kDeferPlus};

    std::vector<workloads::RunResult> results;
    for (dma::ProtectionMode mode : modes) {
        workloads::StreamParams params =
            workloads::streamParamsFor(nic::mlxProfile());
        params.measure_packets = bench::scaled(40000);
        params.warmup_packets = bench::scaled(10000);
        results.push_back(
            workloads::runStream(mode, nic::mlxProfile(), params));
    }

    Table t({"function", "component", "strict", "strict+", "defer",
             "defer+", "paper(strict)"});
    const struct
    {
        const char *function;
        const char *component;
        Cat cat;
        double paper_strict;
    } rows[] = {
        {"map", "iova alloc", Cat::kMapIovaAlloc, 3986},
        {"map", "page table", Cat::kMapPageTable, 588},
        {"map", "other", Cat::kMapOther, 44},
        {"unmap", "iova find", Cat::kUnmapIovaFind, 249},
        {"unmap", "iova free", Cat::kUnmapIovaFree, 159},
        {"unmap", "page table", Cat::kUnmapPageTable, 438},
        {"unmap", "iotlb inv", Cat::kUnmapIotlbInv, 2127},
        {"unmap", "other", Cat::kUnmapOther, 26},
    };
    for (const auto &row : rows) {
        std::vector<std::string> cells = {row.function, row.component};
        for (const auto &r : results)
            cells.push_back(Table::num(r.acct.avg(row.cat), 0));
        cells.push_back(Table::num(row.paper_strict, 0));
        t.addRow(cells);
    }
    t.addSeparator();
    {
        std::vector<std::string> cells = {"map", "sum"};
        for (const auto &r : results) {
            cells.push_back(Table::num(
                r.acct.avg(Cat::kMapIovaAlloc) +
                    r.acct.avg(Cat::kMapPageTable) +
                    r.acct.avg(Cat::kMapOther),
                0));
        }
        cells.push_back(Table::num(4618, 0));
        t.addRow(cells);
    }
    {
        std::vector<std::string> cells = {"unmap", "sum"};
        for (const auto &r : results) {
            cells.push_back(Table::num(
                r.acct.avg(Cat::kUnmapIovaFind) +
                    r.acct.avg(Cat::kUnmapIovaFree) +
                    r.acct.avg(Cat::kUnmapPageTable) +
                    r.acct.avg(Cat::kUnmapIotlbInv) +
                    r.acct.avg(Cat::kUnmapOther),
                0));
        }
        cells.push_back(Table::num(2999, 0));
        t.addRow(cells);
    }
    std::printf("%s\n", t.toString().c_str());

    bench::JsonWriter json("table1_breakdown", args.threads);
    json.addTable(t);

    std::printf("map ops / unmap ops per mode:\n");
    for (size_t i = 0; i < modes.size(); ++i) {
        std::printf("  %-8s maps=%llu unmaps=%llu avg-burst=%.0f "
                    "tput=%.2f Gbps\n",
                    dma::modeName(modes[i]),
                    static_cast<unsigned long long>(
                        results[i].acct.ops(Cat::kMapIovaAlloc)),
                    static_cast<unsigned long long>(
                        results[i].acct.ops(Cat::kUnmapIovaFree)),
                    results[i].avg_unmap_burst,
                    results[i].throughput_gbps);
        json.beginRow();
        json.add("mode", dma::modeName(modes[i]));
        json.beginObject("ops");
        json.add("maps", results[i].acct.ops(Cat::kMapIovaAlloc));
        json.add("unmaps", results[i].acct.ops(Cat::kUnmapIovaFree));
        json.endObject();
        json.add("avg_unmap_burst", results[i].avg_unmap_burst);
        json.add("throughput_gbps", results[i].throughput_gbps);
    }
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
