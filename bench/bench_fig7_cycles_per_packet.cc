/**
 * @file
 * Reproduces Figure 7 of the paper: CPU cycles spent processing one
 * packet under each of the seven IOMMU modes, Netperf TCP stream on
 * the mlx setup, stacked by component (IOTLB invalidation, page
 * table updates, IOVA (de)allocation, and everything else).
 *
 * Paper reference: C_none = 1,816 cycles (bottom grid line);
 * C_strict ~ 9.4x C_none; the deferred modes eliminate the IOTLB
 * invalidation bar; the "+" modes shrink the IOVA bar; the rIOMMU
 * modes shrink everything.
 */
#include "bench_common.h"

#include "cycles/cycle_account.h"
#include "workloads/sweep.h"

using namespace rio;
using cycles::Cat;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::printHeader("Figure 7: cycles per packet by component, "
                       "Netperf stream on mlx (paper C_none = 1816)");

    workloads::StreamParams params =
        workloads::streamParamsFor(nic::mlxProfile());
    params.measure_packets = bench::scaled(40000);
    params.warmup_packets = bench::scaled(10000);

    struct Row
    {
        dma::ProtectionMode mode;
        double inv, pt, iova, other, total;
    };
    // One job per mode on the parallel engine; results are in job
    // order and byte-identical for any --threads value.
    std::vector<workloads::StreamJob> jobs;
    for (dma::ProtectionMode mode : bench::evaluatedModes())
        jobs.push_back({mode, nic::mlxProfile(), params});
    const std::vector<workloads::RunResult> results =
        workloads::runStreamJobs(jobs, args.threads);

    std::vector<Row> rows;
    for (size_t i = 0; i < jobs.size(); ++i) {
        const workloads::RunResult &r = results[i];
        const double pkts = static_cast<double>(r.tx_packets);
        Row row;
        row.mode = jobs[i].mode;
        row.inv =
            static_cast<double>(r.acct.get(Cat::kUnmapIotlbInv)) / pkts;
        row.pt = static_cast<double>(r.acct.get(Cat::kMapPageTable) +
                                     r.acct.get(Cat::kUnmapPageTable)) /
                 pkts;
        row.iova = static_cast<double>(r.acct.get(Cat::kMapIovaAlloc) +
                                       r.acct.get(Cat::kUnmapIovaFind) +
                                       r.acct.get(Cat::kUnmapIovaFree)) /
                   pkts;
        row.total = r.cycles_per_packet;
        row.other = row.total - row.inv - row.pt - row.iova;
        rows.push_back(row);
    }
    const double c_none = rows.back().total; // none is listed last

    Table t({"mode", "iotlb inv", "page table", "iova (de)alloc",
             "other", "C (total)", "C/C_none"});
    for (const Row &row : rows) {
        std::vector<std::string> cells = {dma::modeName(row.mode),
                                          Table::num(row.inv, 0),
                                          Table::num(row.pt, 0),
                                          Table::num(row.iova, 0),
                                          Table::num(row.other, 0),
                                          Table::num(row.total, 0),
                                          Table::num(row.total / c_none,
                                                     2)};
        t.addRow(cells);
    }
    std::printf("%s\n", t.toString().c_str());
    std::printf("paper ratios: strict 9.4x, strict+ 5.2x, defer 4.7x, "
                "defer+ 3.2x, riommu- ~1.9x, riommu ~1.3x, none 1.0x\n");

    bench::JsonWriter json("fig7_cycles_per_packet", args.threads);
    for (const Row &row : rows) {
        json.beginRow();
        json.add("mode", dma::modeName(row.mode));
        json.add("iotlb_inv", row.inv);
        json.add("page_table", row.pt);
        json.add("iova", row.iova);
        json.add("other", row.other);
        json.add("total", row.total);
        json.add("ratio_vs_none", row.total / c_none);
    }
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
