/**
 * @file
 * Quantifies §4's NVMe applicability claim: an fio-style 4K
 * random-I/O workload (queue depth 32) against the NVMe model under
 * every protection mode, on a fast and a very fast device.
 *
 * Expected shape: on the fast-but-not-extreme device the SSD is the
 * bottleneck and all modes deliver similar IOPS (with strict costing
 * the most CPU); on the extreme device the strict mode's per-I/O
 * (un)map cycles cap IOPS well below the rIOMMU/none modes — NVMe
 * queues are rings, so the rIOMMU applies as-is.
 */
#include "bench_common.h"

#include "workloads/storage.h"

using namespace rio;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::JsonWriter json("ablation_nvme", args.threads);
    for (bool extreme : {false, true}) {
        workloads::StorageParams p;
        p.measure_ios = bench::scaled(15000);
        p.warmup_ios = bench::scaled(2000);
        if (extreme) {
            // An Optane-class device: latency so low the core's DMA
            // management becomes the bottleneck.
            p.device.access_latency_ns = 1200;
            p.device.bandwidth_gbps = 60.0;
            p.device.irq_batch = 4;
            p.device.irq_delay_ns = 1000;
        }
        bench::printHeader(
            std::string("NVMe 4K random I/O, QD32, ") +
            (extreme ? "extreme device (1.2 us)" : "flash device (20 us)"));
        Table t({"mode", "K IOPS", "cpu (%)", "dma cycles / IO"});
        for (dma::ProtectionMode mode : bench::evaluatedModes()) {
            const auto r = workloads::runStorage(mode, p);
            t.addRow(dma::modeName(mode),
                     {r.transactions_per_sec / 1e3, r.cpu * 100.0,
                      static_cast<double>(r.acct.dmaTotal()) /
                          static_cast<double>(r.transactions)},
                     1);
        }
        std::printf("%s\n", t.toString().c_str());
        json.addTable(t, "device", extreme ? "extreme" : "flash");
    }
    std::printf("NVMe queues impose ring order (Sec. 4), so the rIOMMU "
                "serves SSDs exactly as it serves NICs.\n");
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
