/**
 * @file
 * Simulator self-performance: how fast does the HOST execute the
 * simulation? Every other bench in this directory reports simulated
 * metrics (cycles, Gbps); this one reports host wall-clock, simulated
 * packets per host-second, and DES events per host-second, across the
 * two axes this PR added:
 *
 *   - threads:  the same four-lane sweep on the sequential engine
 *               (--threads 1) vs the worker pool (--threads N);
 *   - batching: hot-path metric accounting charged per operation vs
 *               accumulated per burst (cycles/batch.h).
 *
 * The workload is four independent Netperf-stream runs — strict,
 * defer, riommu, none — one engine lane each, the exact shape
 * workloads/sweep.h gives every mode sweep. Simulated results are
 * asserted identical across all configurations: threads and batching
 * may only change how fast the host gets there, never where it
 * lands. (Byte-level enforcement of the same property on real bench
 * output is the golden_selfperf ctest.)
 *
 * Speedup expectations are hardware-dependent: lanes outnumbering
 * physical cores — or a 1-CPU CI box — serialize the pool, so the
 * table reports whatever the host delivers; see EXPERIMENTS.md.
 */
#include "bench_common.h"

#include <array>
#include <chrono>

#include "base/logging.h"
#include "cycles/batch.h"
#include "des/parallel.h"
#include "workloads/stream.h"

using namespace rio;

namespace {

struct SelfResult
{
    double host_ms = 0;
    u64 events = 0;
    u64 packets = 0;
    double check = 0; //!< determinism probe: sum of cycles_per_packet
};

constexpr std::array<dma::ProtectionMode, 4> kModes = {
    dma::ProtectionMode::kStrict, dma::ProtectionMode::kDefer,
    dma::ProtectionMode::kRiommu, dma::ProtectionMode::kNone};

SelfResult
runConfig(unsigned threads, bool batch, const workloads::StreamParams &params)
{
    cycles::setBatchingEnabled(batch);
    const auto t0 = std::chrono::steady_clock::now();

    des::ParallelEngine eng(threads);
    std::vector<std::unique_ptr<workloads::StreamRun>> runs;
    for (const dma::ProtectionMode mode : kModes) {
        des::Lane &lane = eng.addLane();
        runs.push_back(std::make_unique<workloads::StreamRun>(
            lane.sim(), mode, nic::mlxProfile(), params));
    }
    eng.run();

    SelfResult sr;
    sr.events = eng.eventsRun();
    for (auto &run : runs) {
        const workloads::RunResult r = run->collect();
        sr.packets += r.tx_packets + r.rx_packets;
        sr.check += r.cycles_per_packet;
    }
    sr.host_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    cycles::flushBatches();
    cycles::setBatchingEnabled(false);
    return sr;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--quick")
            quick = true;

    workloads::StreamParams params =
        workloads::streamParamsFor(nic::mlxProfile());
    params.measure_packets = bench::scaled(quick ? 8000 : 40000);
    params.warmup_packets = bench::scaled(quick ? 2000 : 10000);

    // Threaded configs use --threads when given, else one thread per
    // lane — the engine's sweet spot for this four-lane workload.
    const unsigned par = args.threads > 1 ? args.threads : 4;
    bench::printHeader(
        strprintf("Simulator self-performance: 4-lane mode sweep, "
                  "sequential vs %u threads, batching off/on",
                  par));

    struct Config
    {
        const char *label;
        unsigned threads;
        bool batch;
    };
    const std::array<Config, 4> configs = {{
        {"seq", 1, false},
        {"seq+batch", 1, true},
        {"par", par, false},
        {"par+batch", par, true},
    }};

    std::array<SelfResult, 4> results;
    for (size_t i = 0; i < configs.size(); ++i)
        results[i] = runConfig(configs[i].threads, configs[i].batch,
                               params);

    // Determinism across every configuration: same events, same
    // packets, same simulated costs.
    for (size_t i = 1; i < configs.size(); ++i) {
        RIO_ASSERT(results[i].events == results[0].events,
                   "config ", configs[i].label, " ran ",
                   results[i].events, " events, seq ran ",
                   results[0].events);
        RIO_ASSERT(results[i].packets == results[0].packets &&
                       results[i].check == results[0].check,
                   "config ", configs[i].label,
                   " diverged from the sequential run");
    }

    Table t({"config", "threads", "batch", "host ms", "events/s (M)",
             "sim pkts/s (K)", "speedup vs seq"});
    bench::JsonWriter json("selfperf", args.threads);
    for (size_t i = 0; i < configs.size(); ++i) {
        const SelfResult &sr = results[i];
        const double evps = static_cast<double>(sr.events) /
                            (sr.host_ms * 1e3); // M events / s
        const double ppks = static_cast<double>(sr.packets) /
                            sr.host_ms; // K pkts / s
        const double speedup = results[0].host_ms / sr.host_ms;
        t.addRow(configs[i].label,
                 {static_cast<double>(configs[i].threads),
                  static_cast<double>(configs[i].batch), sr.host_ms,
                  evps, ppks, speedup},
                 2);
        json.beginRow();
        json.add("config", configs[i].label);
        json.add("threads", static_cast<u64>(configs[i].threads));
        json.add("batch", static_cast<u64>(configs[i].batch));
        json.add("host_ms", sr.host_ms);
        json.add("events", sr.events);
        json.add("sim_packets", sr.packets);
        json.add("events_per_sec", static_cast<double>(sr.events) /
                                       (sr.host_ms * 1e-3));
        json.add("sim_packets_per_sec",
                 static_cast<double>(sr.packets) / (sr.host_ms * 1e-3));
        json.add("speedup_vs_seq", speedup);
    }
    std::printf("%s\n", t.toString().c_str());
    std::printf("events per run: %llu; simulated packets per run: %llu\n",
                static_cast<unsigned long long>(results[0].events),
                static_cast<unsigned long long>(results[0].packets));

    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
