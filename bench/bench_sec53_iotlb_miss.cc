/**
 * @file
 * Reproduces §5.3 of the paper: the IOTLB miss penalty, measured
 * with a poll-mode user-level I/O rig (ibverbs on the real system).
 * Two experiments: (1) transmit from a random member of a large pool
 * of premapped buffers (IOTLB almost always misses), and (2) reuse a
 * single buffer (IOTLB always hits). The latency difference is the
 * miss cost — the paper measures ~1,532 cycles (~0.5 us), i.e. a
 * 4-level dependent walk. The rIOMMU's prefetched flat-table
 * translation is shown for contrast.
 */
#include "bench_common.h"

#include "base/rng.h"
#include "dma/dma_context.h"
#include "riommu/rdevice.h"

using namespace rio;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::printHeader("Sec 5.3: IOTLB miss penalty (poll-mode rig)");

    const u64 iterations = bench::scaled(200000);
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    const auto &cost = ctx.cost();
    iommu::Bdf bdf{0, 3, 0};

    // Baseline IOMMU: premap a pool far larger than the IOTLB.
    auto handle = ctx.makeHandle(dma::ProtectionMode::kStrict, bdf, &acct);
    const unsigned pool = 4096;
    std::vector<dma::DmaMapping> mappings;
    for (unsigned i = 0; i < pool; ++i) {
        const PhysAddr pa = ctx.memory().allocFrame();
        mappings.push_back(
            handle->map(0, pa, 2048, iommu::DmaDir::kToDevice).value());
    }

    Rng rng(7);
    u8 buf[64];
    auto measure = [&](bool random_pool) {
        ctx.iommu().iotlb().resetStats();
        Cycles hw = 0;
        for (u64 i = 0; i < iterations; ++i) {
            const dma::DmaMapping &m =
                random_pool ? mappings[rng.below(pool)] : mappings[0];
            auto t = ctx.iommu().translate(bdf, m.device_addr,
                                           iommu::Access::kRead);
            RIO_ASSERT(t.isOk(), "translate failed");
            hw += t.value().hw_cycles;
            (void)buf;
        }
        return static_cast<double>(hw) / static_cast<double>(iterations);
    };

    const double miss_heavy = measure(true);
    const double hit_only = measure(false);
    const auto &stats = ctx.iommu().iotlb().stats();
    (void)stats;

    Table t({"experiment", "avg hw cycles / translation", "us @3.1GHz"});
    t.addRow("random pool (misses)", {miss_heavy, miss_heavy / 3100.0}, 2);
    t.addRow("single buffer (hits)", {hit_only, hit_only / 3100.0}, 3);
    t.addRow("difference = miss penalty",
             {miss_heavy - hit_only, (miss_heavy - hit_only) / 3100.0},
             3);
    t.addRow("paper measured", {1532.0, 0.494}, 3);
    std::printf("%s\n", t.toString().c_str());

    // rIOMMU contrast: sequential ring accesses ride the prefetched
    // next-rPTE and avoid the walk entirely.
    riommu::RDevice rdev(ctx.riommu(), ctx.memory(), iommu::Bdf{0, 4, 0},
                         std::vector<u32>{1024}, true, cost, &acct);
    std::vector<riommu::RIova> iovas;
    const PhysAddr rbuf = ctx.memory().allocContiguous(kPageSize);
    for (u32 i = 0; i < 1024; ++i)
        iovas.push_back(
            rdev.map(0, rbuf, 64, iommu::DmaDir::kToDevice).value());
    Cycles rhw = 0;
    u64 rn = 0;
    for (u64 lap = 0; lap * 1024 < iterations; ++lap) {
        for (u32 i = 0; i < 1024; ++i, ++rn) {
            auto t = ctx.riommu().translate(iommu::Bdf{0, 4, 0}, iovas[i],
                                            iommu::Access::kRead, 1);
            RIO_ASSERT(t.isOk(), "rtranslate failed");
            rhw += t.value().hw_cycles;
        }
    }
    const double riommu_hw =
        static_cast<double>(rhw) / static_cast<double>(rn);
    std::printf("rIOMMU sequential translation: %.1f hw cycles avg "
                "(prefetch hit rate %.1f%%)\n",
                riommu_hw,
                100.0 *
                    static_cast<double>(
                        ctx.riommu().riotlb().stats().prefetch_hits) /
                    static_cast<double>(std::max<u64>(rn, 1)));
    bench::JsonWriter json("sec53_iotlb_miss", args.threads);
    json.addTable(t);
    json.beginRow();
    json.add("experiment", "riommu sequential");
    json.add("avg hw cycles / translation", riommu_hw);
    json.add("us @3.1GHz", riommu_hw / 3100.0);
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
