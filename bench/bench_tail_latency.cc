/**
 * @file
 * Tail-latency attribution bench: loss x incast x the seven
 * protection modes, reported as EXACT per-op order statistics
 * (obs::SloReport over the recorders' per-op records, not histogram
 * buckets) — p50/p99/p999/max plus "which cycles::Cat dominates the
 * ops at or above p99".
 *
 * The claim under test: rIOMMU's tail is structurally flat — its
 * per-op DMA work is a constant-cost rRING update, so p999 tracks
 * p50 and the tail is owned by the wire (retransmits, ingress
 * queueing), not by the IOMMU. The strict modes' tails are
 * walk/invalidation-dominated: the synchronous per-op invalidation +
 * IOVA bookkeeping piles into exactly the ops that already hit loss
 * or congestion, so p999 diverges from p50 and the top tail
 * contributor is a DMA category rather than generic processing.
 *
 * Grid: loss 0 (lossless wire) anchors the structural gap; loss > 0
 * adds go-back-N retransmit episodes; incast adds a bounded ingress
 * port collapsing at machine 0. Exact quantiles make the small-
 * sample quick runs meaningful: every op is recorded, nothing is
 * bucketed away.
 */
#include "bench_common.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "base/logging.h"
#include "cycles/cycle_account.h"
#include "sys/cluster.h"
#include "workloads/fleet.h"

using namespace rio;

namespace {

workloads::FleetParams
baseParams(bool quick)
{
    workloads::FleetParams p;
    p.connections = 64;
    p.credits = 16;
    p.warmup_ops = quick ? 100 : 300;
    p.measure_ops = quick ? 500 : 3000;
    p.seed = 3;
    return p;
}

/** Sum of the DMA-management categories (map/unmap bookkeeping, the
 * IOMMU's share of an op) in a per-Cat cycle vector. */
u64
dmaCycles(const std::array<u64, obs::kSloMaxCats> &cats)
{
    u64 n = 0;
    for (const cycles::Cat c :
         {cycles::Cat::kMapIovaAlloc, cycles::Cat::kMapPageTable,
          cycles::Cat::kMapOther, cycles::Cat::kUnmapIovaFind,
          cycles::Cat::kUnmapIovaFree, cycles::Cat::kUnmapPageTable,
          cycles::Cat::kUnmapIotlbInv, cycles::Cat::kUnmapOther})
        n += cats[static_cast<size_t>(c)];
    return n;
}

workloads::FleetReport
runPoint(dma::ProtectionMode mode, double loss, bool incast,
         unsigned machines, unsigned threads, bool quick)
{
    workloads::FleetParams p = baseParams(quick);
    sys::ClusterConfig cfg;
    cfg.machines = machines;
    cfg.threads = threads;
    cfg.mode = mode;
    if (loss > 0.0) {
        // The wire-storm fabric: loss + duplicate/straggler tail,
        // churn with app-death aborts feeding late arrivals.
        p.churn_period_ops = 25;
        p.churn_abort_fraction = 0.5;
        cfg.wire.drop_rate = loss;
        cfg.wire.dup_rate = std::min(0.25, 3 * loss);
        cfg.wire.delay_rate = std::min(0.5, 10 * loss);
        cfg.wire.delay_max_ns = 60000;
        cfg.reliability.enabled = true;
    }
    if (incast) {
        p.incast_period_ops = 50;
        p.incast_burst = 12;
        cfg.wire.ingress_cap = 16;
        cfg.reliability.enabled = true; // armed wire requires it
    }
    cfg.max_qps = workloads::fleetMaxQps(p, machines);

    sys::Cluster cluster(cfg);
    const workloads::FleetReport rep = workloads::runFleet(cluster, p);
    const char *name = dma::modeName(mode);
    RIO_ASSERT(rep.slo_valid, "SLO recording was off for ", name);
    RIO_ASSERT(rep.slo.dropped == 0, "SLO recorder overflowed at ",
               name, " (", rep.slo.dropped, " ops lost)");
    RIO_ASSERT(rep.completions == rep.posts,
               "CQE conservation broke at ", name, " loss=", loss);
    RIO_ASSERT(rep.slo.count == rep.completions,
               "SLO records must cover every completion at ", name,
               ": ", rep.slo.count, " records for ", rep.completions,
               " CQEs");
    RIO_ASSERT(rep.leaks_clean, "leaked mappings at ", name);
    return rep;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    // Exact per-op records are this bench's entire point: recording is
    // forced on, `--slo` is accepted for uniformity with other benches.
    obs::setSloRecording(true);
    bool quick = false;
    unsigned machines = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--quick")
            quick = true;
        else if (arg == "--machines" && i + 1 < argc)
            machines = static_cast<unsigned>(
                std::max(2, std::atoi(argv[i + 1])));
    }

    const std::vector<double> losses =
        quick ? std::vector<double>{0.0, 0.02}
              : std::vector<double>{0.0, 0.02, 0.05};

    bench::printHeader(strprintf(
        "Tail latency: %u machines, 64 QPs/machine, loss x incast x "
        "mode — exact p50/p99/p999 with per-Cat p99 attribution",
        machines));

    Table t({"mode", "loss", "incast", "ops", "p50 us", "p99 us",
             "p999 us", "max us", "top cat @p99", "share",
             "tail rtx/op"});
    bench::JsonWriter json("tail_latency", args.threads);
    // Reports of the lossless/no-incast anchor, keyed by mode name,
    // for the structural-tail assertions below.
    std::map<std::string, workloads::FleetReport> anchor;
    for (const double loss : losses) {
        for (const bool incast : {false, true}) {
            for (const dma::ProtectionMode mode :
                 bench::evaluatedModes()) {
                const workloads::FleetReport rep = runPoint(
                    mode, loss, incast, machines, args.threads, quick);
                const obs::SloReport &s = rep.slo;
                const char *top =
                    cycles::catName(static_cast<cycles::Cat>(s.top_cat));
                const double tail_rtx =
                    s.tail_ops ? static_cast<double>(s.tail_retransmits) /
                                     static_cast<double>(s.tail_ops)
                               : 0.0;
                if (loss == 0.0 && !incast)
                    anchor.emplace(dma::modeName(mode), rep);
                t.addRow({dma::modeName(mode), Table::num(loss, 3),
                          incast ? "yes" : "no",
                          Table::num(static_cast<double>(s.count), 0),
                          Table::num(static_cast<double>(s.p50) / 1e3, 3),
                          Table::num(static_cast<double>(s.p99) / 1e3, 3),
                          Table::num(static_cast<double>(s.p999) / 1e3, 3),
                          Table::num(static_cast<double>(s.max) / 1e3, 3),
                          top, Table::num(s.top_cat_share, 3),
                          Table::num(tail_rtx, 3)});
                json.beginRow();
                json.add("mode", dma::modeName(mode));
                json.add("loss", loss);
                json.add("incast", static_cast<u64>(incast));
                json.add("machines", static_cast<u64>(machines));
                json.add("count", s.count);
                json.add("errors", s.errors);
                json.add("p50_ns", static_cast<u64>(s.p50));
                json.add("p99_ns", static_cast<u64>(s.p99));
                json.add("p999_ns", static_cast<u64>(s.p999));
                json.add("max_ns", static_cast<u64>(s.max));
                json.add("mean_ns", s.mean_ns);
                json.add("top_cat", top);
                json.add("top_cat_share", s.top_cat_share);
                json.add("tail_ops", s.tail_ops);
                json.add("tail_retransmits", s.tail_retransmits);
                json.add("cycles_per_op", rep.cycles_per_op);
                json.add("completions", rep.completions);
                json.add("retransmits", rep.retransmits);
                json.add("qp_errors", rep.qp_errors);
            }
        }
    }
    std::printf("%s\n", t.toString().c_str());

    // The structural claim, pinned at the lossless/no-incast anchor
    // where nothing but the IOMMU differs between modes: rIOMMU's
    // exact tail sits below strict's, and strict's tail ops burn more
    // of their cycles in DMA management than rIOMMU's do.
    {
        const workloads::FleetReport &rio = anchor.at("riommu");
        const workloads::FleetReport &strict = anchor.at("strict");
        RIO_ASSERT(rio.slo.p99 < strict.slo.p99,
                   "rIOMMU p99 must undercut strict: ", rio.slo.p99,
                   " vs ", strict.slo.p99);
        RIO_ASSERT(rio.slo.p999 < strict.slo.p999,
                   "rIOMMU p999 must undercut strict: ", rio.slo.p999,
                   " vs ", strict.slo.p999);
        const u64 rio_total = std::max<u64>(
            1, std::accumulate(rio.slo.tail_cat_cycles.begin(),
                               rio.slo.tail_cat_cycles.end(), u64{0}));
        const u64 strict_total = std::max<u64>(
            1, std::accumulate(strict.slo.tail_cat_cycles.begin(),
                               strict.slo.tail_cat_cycles.end(), u64{0}));
        const double rio_dma =
            static_cast<double>(dmaCycles(rio.slo.tail_cat_cycles)) /
            static_cast<double>(rio_total);
        const double strict_dma =
            static_cast<double>(dmaCycles(strict.slo.tail_cat_cycles)) /
            static_cast<double>(strict_total);
        RIO_ASSERT(strict_dma > rio_dma,
                   "strict's tail must be DMA-dominated relative to "
                   "rIOMMU: ",
                   strict_dma, " vs ", rio_dma);
        std::printf("tail DMA-cycle share at p99 (loss 0): "
                    "strict %.1f%%, riommu %.1f%%\n",
                    100.0 * strict_dma, 100.0 * rio_dma);
    }

    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
