/**
 * @file
 * Reproduces Figure 8 of the paper: Netperf stream throughput as a
 * function of the average cycles C spent processing one packet.
 * Three series are printed, which should coincide:
 *
 *  1. the analytic model Gbps(C) = payload_bits * S / C,
 *  2. the none mode with C artificially lengthened by a controlled
 *     busy-wait per packet (the paper's thin line), and
 *  3. the seven IOMMU modes as measured (the paper's cross points).
 */
#include "bench_common.h"

using namespace rio;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::printHeader("Figure 8: throughput vs. cycles per packet "
                       "(model validation)");

    const double ghz = cycles::defaultCostModel().core_ghz;
    const double payload_bits = static_cast<double>(net::kMss) * 8;

    // Series 2: none + busy-wait sweep.
    Table sweep({"busy-wait", "C (measured)", "Gbps (measured)",
                 "Gbps (model)", "model/measured"});
    for (Cycles extra : {0ULL, 1000ULL, 2000ULL, 4000ULL, 8000ULL,
                         12000ULL, 16000ULL}) {
        workloads::StreamParams p =
            workloads::streamParamsFor(nic::mlxProfile());
        p.measure_packets = bench::scaled(30000);
        p.warmup_packets = bench::scaled(8000);
        p.per_packet_cycles += extra; // controlled busy-wait loop
        const auto r = workloads::runStream(dma::ProtectionMode::kNone,
                                            nic::mlxProfile(), p);
        const double model_gbps =
            payload_bits * ghz / r.cycles_per_packet;
        sweep.addRow(Table::num(static_cast<double>(extra), 0),
                     {r.cycles_per_packet, r.throughput_gbps, model_gbps,
                      model_gbps / r.throughput_gbps},
                     2);
    }
    std::printf("%s\n", sweep.toString().c_str());

    // Series 3: the modes as measured, against the same model.
    Table modes({"mode", "C (measured)", "Gbps (measured)",
                 "Gbps (model)", "model/measured"});
    for (dma::ProtectionMode mode : bench::evaluatedModes()) {
        workloads::StreamParams p =
            workloads::streamParamsFor(nic::mlxProfile());
        p.measure_packets = bench::scaled(30000);
        p.warmup_packets = bench::scaled(8000);
        const auto r = workloads::runStream(mode, nic::mlxProfile(), p);
        const double model_gbps =
            payload_bits * ghz / r.cycles_per_packet;
        modes.addRow(dma::modeName(mode),
                     {r.cycles_per_packet, r.throughput_gbps, model_gbps,
                      model_gbps / r.throughput_gbps},
                     2);
    }
    std::printf("%s\n", modes.toString().c_str());
    std::printf("the model column should track the measured column "
                "within a few percent (paper: the thick line, thin "
                "line and crosses coincide)\n");
    bench::JsonWriter json("fig8_model_validation", args.threads);
    json.addTable(sweep, "series", "busywait_sweep");
    json.addTable(modes, "series", "modes");
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
