/**
 * @file
 * Lifecycle churn: cycles/packet under surprise hot-unplug/replug
 * storms. Sweeps unplug rates (default 0 / 0.5 / 2 events per
 * millisecond of virtual time) over the seven evaluated protection
 * modes running the Netperf stream workload on the mlx setup, with
 * the same measurement window as bench_fig7.
 *
 * Expected shape: at rate 0 the churn subsystem draws no random
 * numbers and schedules nothing, so the numbers are bit-identical to
 * bench_fig7 — the rate-0 JSON rows deliberately carry fig7's exact
 * fields and a golden ctest diffs the two files. With churn on, every
 * mode completes with zero leaked mappings; the strict modes pay the
 * most per event because recovering a vanished device's mappings eats
 * a synchronous invalidation time-out per unmapped ring entry, while
 * the deferred and rIOMMU modes never spin on the dead device — the
 * rIOMMU modes re-walk just one ring per unplug.
 */
#include "bench_common.h"

#include <cstring>
#include <string>
#include <vector>

#include "base/logging.h"
#include "cycles/cycle_account.h"

using namespace rio;
using cycles::Cat;

namespace {

struct Row
{
    dma::ProtectionMode mode;
    double rate; //!< churn events per millisecond
    double inv, pt, iova, lifecycle, other, total, ratio;
    workloads::RunResult r;
};

std::vector<double>
parseRates(const char *spec)
{
    std::vector<double> rates;
    std::string s(spec);
    size_t pos = 0;
    while (pos < s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        rates.push_back(std::atof(s.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
    }
    RIO_ASSERT(!rates.empty(), "--rate needs a comma-separated list");
    return rates;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const char *rate_spec = "0,0.5,2";
    u64 churn_seed = 1;
    Nanos down_ns = 20000;
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--rate"))
            rate_spec = argv[i + 1];
        else if (!std::strcmp(argv[i], "--seed"))
            churn_seed = std::strtoull(argv[i + 1], nullptr, 10);
        else if (!std::strcmp(argv[i], "--down"))
            down_ns = std::strtoull(argv[i + 1], nullptr, 10);
    }
    const std::vector<double> rates = parseRates(rate_spec);

    bench::printHeader("Lifecycle churn: cycles/packet vs surprise "
                       "unplug/replug rate, Netperf stream on mlx");

    workloads::StreamParams params =
        workloads::streamParamsFor(nic::mlxProfile());
    params.measure_packets = bench::scaled(40000);
    params.warmup_packets = bench::scaled(10000);

    std::vector<Row> rows;
    for (double rate : rates) {
        for (dma::ProtectionMode mode : bench::evaluatedModes()) {
            workloads::StreamParams p = params;
            p.churn_per_ms = rate;
            p.churn_seed = churn_seed;
            p.churn_down_ns = down_ns;
            Row row;
            row.mode = mode;
            row.rate = rate;
            row.r = workloads::runStream(mode, nic::mlxProfile(), p);
            const double pkts = static_cast<double>(row.r.tx_packets);
            row.inv = static_cast<double>(
                          row.r.acct.get(Cat::kUnmapIotlbInv)) /
                      pkts;
            row.pt = static_cast<double>(
                         row.r.acct.get(Cat::kMapPageTable) +
                         row.r.acct.get(Cat::kUnmapPageTable)) /
                     pkts;
            row.iova = static_cast<double>(
                           row.r.acct.get(Cat::kMapIovaAlloc) +
                           row.r.acct.get(Cat::kUnmapIovaFind) +
                           row.r.acct.get(Cat::kUnmapIovaFree)) /
                       pkts;
            row.lifecycle =
                static_cast<double>(row.r.acct.get(Cat::kLifecycle)) /
                pkts;
            row.total = row.r.cycles_per_packet;
            row.other = row.total - row.inv - row.pt - row.iova -
                        row.lifecycle;
            rows.push_back(row);
        }
        // none runs last within each rate group, as in fig7.
        const double c_none = rows.back().total;
        for (size_t i = rows.size() - bench::evaluatedModes().size();
             i < rows.size(); ++i)
            rows[i].ratio = rows[i].total / c_none;
    }

    Table t({"rate/ms", "mode", "iotlb inv", "page table", "iova",
             "lifecycle", "other", "C (total)", "C/C_none", "unplugs",
             "replugs", "detach flt", "Gbps"});
    for (const Row &row : rows)
        t.addRow({Table::num(row.rate, 1), dma::modeName(row.mode),
                  Table::num(row.inv, 0), Table::num(row.pt, 0),
                  Table::num(row.iova, 0),
                  Table::num(row.lifecycle, 0),
                  Table::num(row.other, 0), Table::num(row.total, 0),
                  Table::num(row.ratio, 2),
                  strprintf("%llu",
                            (unsigned long long)row.r.surprise_unplugs),
                  strprintf("%llu", (unsigned long long)row.r.replugs),
                  strprintf("%llu",
                            (unsigned long long)row.r.detach_faults),
                  Table::num(row.r.throughput_gbps, 2)});
    std::printf("%s\n", t.toString().c_str());
    std::printf("expected: rate 0 matches bench_fig7 exactly (zero "
                "unplugs, zero lifecycle cycles); with churn on, the "
                "strict modes pay a large lifecycle bar (a synchronous "
                "invalidation time-out per orphaned mapping), while "
                "the deferred and riommu modes recover without "
                "spinning (zero lifecycle cycles; riommu re-walks one "
                "ring per unplug) and slower modes absorb more events "
                "per packet because churn runs in virtual time\n");

    bench::JsonWriter json("lifecycle_churn", args.threads);
    for (const Row &row : rows) {
        json.beginRow();
        // Rate-0 rows carry exactly fig7's fields, in fig7's order:
        // tests/golden_lifecycle.sh diffs `--rate 0` output against
        // bench_fig7's JSON byte-for-byte (modulo the bench name).
        json.add("mode", dma::modeName(row.mode));
        json.add("iotlb_inv", row.inv);
        json.add("page_table", row.pt);
        json.add("iova", row.iova);
        json.add("other", row.other);
        json.add("total", row.total);
        json.add("ratio_vs_none", row.ratio);
        if (row.rate > 0) {
            json.add("rate_per_ms", row.rate);
            json.add("lifecycle", row.lifecycle);
            json.add("surprise_unplugs", row.r.surprise_unplugs);
            json.add("replugs", row.r.replugs);
            json.add("detach_faults", row.r.detach_faults);
            json.add("throughput_gbps", row.r.throughput_gbps);
        }
    }
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
