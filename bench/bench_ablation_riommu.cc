/**
 * @file
 * Ablations of the rIOMMU design choices called out in §4:
 *
 *  A. next-rPTE prefetch on/off — the design "works just as well
 *     without it" for throughput (only device-side walk latency
 *     changes), shown via hardware-walk counts and throughput;
 *  B. coherent vs. non-coherent table walks (riommu vs. riommu-) —
 *     the ~1.1K extra cycles per mlx packet from the 4 extra
 *     barrier+flush pairs;
 *  C. end-of-burst invalidation vs. invalidating on *every* unmap —
 *     how much the single-entry-per-ring amortization buys;
 *  D. rRING sizing: N >= L or the driver sees (legal) overflow.
 */
#include "bench_common.h"

#include "dma/dma_context.h"
#include "riommu/rdevice.h"

using namespace rio;

namespace {

void
ablationPrefetch(bench::JsonWriter &json)
{
    bench::printHeader("A: rIOTLB next-rPTE prefetch on/off");
    Table t({"prefetch", "tput (Gbps)", "C (cycles/pkt)",
             "hw walks / translation", "prefetch hit rate (%)"});
    for (bool on : {true, false}) {
        // Drive a private context so riotlb stats are isolated.
        dma::DmaContext ctx;
        ctx.riommu().setPrefetchEnabled(on);
        cycles::CycleAccount acct;
        riommu::RDevice dev(ctx.riommu(), ctx.memory(),
                            iommu::Bdf{0, 3, 0}, std::vector<u32>{512}, true, ctx.cost(),
                            &acct);
        const PhysAddr buf = ctx.memory().allocContiguous(kPageSize);
        // Map/translate/unmap in ring order for many laps.
        const u64 laps = bench::scaled(200);
        std::vector<riommu::RIova> iovas;
        for (u32 i = 0; i < 512; ++i)
            iovas.push_back(
                dev.map(0, buf, 64, iommu::DmaDir::kToDevice).value());
        for (u64 lap = 0; lap < laps; ++lap) {
            for (u32 i = 0; i < 512; ++i) {
                auto tr = ctx.riommu().translate(
                    iommu::Bdf{0, 3, 0}, iovas[i], iommu::Access::kRead,
                    1);
                RIO_ASSERT(tr.isOk(), "translate failed");
                RIO_ASSERT(
                    dev.unmap(iovas[i], /*end_of_burst=*/i == 511).isOk(),
                    "unmap failed");
                iovas[i] =
                    dev.map(0, buf, 64, iommu::DmaDir::kToDevice).value();
            }
        }
        const auto &st = ctx.riommu().riotlb().stats();
        const double n = static_cast<double>(st.lookups);
        // Throughput model: translation is off the core's critical
        // path, so only the hw walk count changes.
        workloads::StreamParams p =
            workloads::streamParamsFor(nic::mlxProfile());
        p.measure_packets = bench::scaled(20000);
        p.warmup_packets = bench::scaled(5000);
        // (runStream uses its own context; prefetch only affects the
        // device side there, demonstrating throughput-neutrality.)
        auto r = workloads::runStream(dma::ProtectionMode::kRiommu,
                                      nic::mlxProfile(), p);
        t.addRow(on ? "on" : "off",
                 {r.throughput_gbps, r.cycles_per_packet,
                  static_cast<double>(st.walks) / n,
                  100.0 * static_cast<double>(st.prefetch_hits) / n},
                 2);
    }
    std::printf("%s\n", t.toString().c_str());
    json.addTable(t, "ablation", "prefetch");
}

void
ablationCoherence(bench::JsonWriter &json)
{
    bench::printHeader("B: coherent vs non-coherent walks "
                       "(riommu vs riommu-)");
    Table t({"mode", "tput (Gbps)", "C (cycles/pkt)", "delta vs coherent"});
    double base = 0;
    for (dma::ProtectionMode mode :
         {dma::ProtectionMode::kRiommu, dma::ProtectionMode::kRiommuNc}) {
        workloads::StreamParams p =
            workloads::streamParamsFor(nic::mlxProfile());
        p.measure_packets = bench::scaled(20000);
        p.warmup_packets = bench::scaled(5000);
        auto r = workloads::runStream(mode, nic::mlxProfile(), p);
        if (mode == dma::ProtectionMode::kRiommu)
            base = r.cycles_per_packet;
        t.addRow(dma::modeName(mode),
                 {r.throughput_gbps, r.cycles_per_packet,
                  r.cycles_per_packet - base},
                 1);
    }
    std::printf("%s\n", t.toString().c_str());
    json.addTable(t, "ablation", "coherence");
    std::printf("paper: riommu- pays ~1.1K extra cycles/packet (4 "
                "barriers + 4 flushes)\n\n");
}

void
ablationBurst(bench::JsonWriter &json)
{
    bench::printHeader("C: end-of-burst invalidation vs invalidate on "
                       "every unmap");
    dma::DmaContext ctx;
    Table t({"policy", "burst", "invalidation cycles / unmap"});
    for (bool every : {false, true}) {
        for (u32 burst : {1u, 8u, 64u, 200u}) {
            cycles::CycleAccount acct;
            riommu::RDevice dev(ctx.riommu(), ctx.memory(),
                                iommu::Bdf{0, static_cast<u8>(burst % 31),
                                           every},
                                std::vector<u32>{4096}, true, ctx.cost(), &acct);
            const PhysAddr buf = ctx.memory().allocContiguous(kPageSize);
            const u64 rounds = 50;
            for (u64 round = 0; round < rounds; ++round) {
                std::vector<riommu::RIova> iovas;
                for (u32 i = 0; i < burst; ++i)
                    iovas.push_back(
                        dev.map(0, buf, 64, iommu::DmaDir::kToDevice)
                            .value());
                for (u32 i = 0; i < burst; ++i) {
                    const bool eob = every || i + 1 == burst;
                    RIO_ASSERT(dev.unmap(iovas[i], eob).isOk(),
                               "unmap failed");
                }
            }
            t.addRow({every ? "every unmap" : "end-of-burst",
                      std::to_string(burst),
                      Table::num(
                          static_cast<double>(
                              acct.get(cycles::Cat::kUnmapIotlbInv)) /
                              static_cast<double>(
                                  acct.ops(cycles::Cat::kUnmapIovaFree)),
                          1)});
        }
    }
    std::printf("%s\n", t.toString().c_str());
    json.addTable(t, "ablation", "burst");
}

void
ablationRingSize(bench::JsonWriter &json)
{
    bench::printHeader("D: rRING sizing — overflow is legal "
                       "backpressure (N >= L, Sec. 4)");
    dma::DmaContext ctx;
    Table t({"rRING size N", "in-flight L", "overflows / 1000 maps"});
    for (u32 n : {64u, 128u, 256u}) {
        for (u32 l : {32u, 128u, 192u}) {
            cycles::CycleAccount acct;
            riommu::RDevice dev(ctx.riommu(), ctx.memory(),
                                iommu::Bdf{1, static_cast<u8>(n % 31),
                                           static_cast<u8>(l % 7)},
                                std::vector<u32>{n}, true, ctx.cost(), &acct);
            const PhysAddr buf = ctx.memory().allocContiguous(kPageSize);
            std::deque<riommu::RIova> live;
            u64 overflows = 0;
            for (u32 i = 0; i < 1000; ++i) {
                auto m = dev.map(0, buf, 64, iommu::DmaDir::kToDevice);
                if (!m.isOk()) {
                    ++overflows;
                    // Backpressure: retire the oldest and retry.
                    RIO_ASSERT(!live.empty(), "overflow with empty ring");
                    RIO_ASSERT(dev.unmap(live.front(), true).isOk(),
                               "unmap failed");
                    live.pop_front();
                    m = dev.map(0, buf, 64, iommu::DmaDir::kToDevice);
                    RIO_ASSERT(m.isOk(), "retry failed");
                }
                live.push_back(m.value());
                while (live.size() > l) {
                    RIO_ASSERT(dev.unmap(live.front(), live.size() == 1)
                                   .isOk(),
                               "unmap failed");
                    live.pop_front();
                }
            }
            t.addRow({std::to_string(n), std::to_string(l),
                      Table::num(static_cast<double>(overflows), 0)});
        }
    }
    std::printf("%s\n", t.toString().c_str());
    json.addTable(t, "ablation", "ring_size");
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::JsonWriter json("ablation_riommu", args.threads);
    ablationPrefetch(json);
    ablationCoherence(json);
    ablationBurst(json);
    ablationRingSize(json);
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
