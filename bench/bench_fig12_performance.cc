/**
 * @file
 * Reproduces Figure 12 of the paper: throughput and CPU consumption
 * of all seven IOMMU modes on both setups (mlx 40 Gbps top, brcm
 * 10 GbE bottom) across the five benchmarks: Netperf TCP stream,
 * Netperf UDP RR, Apache 1 MB, Apache 1 KB, and Memcached.
 *
 * Expected shape (paper §5.2):
 *  - mlx/stream: CPU-bound everywhere; throughput ordered
 *    strict < strict+ < defer < defer+ < riommu- < riommu < none.
 *  - brcm/stream: every mode except strict saturates the 10 GbE
 *    line; CPU consumption becomes the differentiator.
 *  - RR: small differences (CPU is not the bottleneck).
 *  - Apache 1MB behaves like stream; Apache 1KB is dominated by HTTP
 *    processing; Memcached is ~10x Apache-1KB's request rate with
 *    more pronounced mode differences.
 */
#include "bench_common.h"

using namespace rio;

namespace {

struct Cell
{
    double metric = 0; // Gbps or K-requests/s
    double cpu = 0;
};

Cell
runCell(const std::string &bench, dma::ProtectionMode mode,
        const nic::NicProfile &profile)
{
    Cell c;
    if (bench == "stream") {
        workloads::StreamParams p = workloads::streamParamsFor(profile);
        p.measure_packets = bench::scaled(40000);
        p.warmup_packets = bench::scaled(10000);
        auto r = workloads::runStream(mode, profile, p);
        c.metric = r.throughput_gbps;
        c.cpu = r.cpu;
    } else if (bench == "rr") {
        workloads::RrParams p = workloads::rrParamsFor(profile);
        p.measure_transactions = bench::scaled(4000);
        p.warmup_transactions = bench::scaled(500);
        auto r = workloads::runNetperfRr(mode, profile, p);
        c.metric = r.transactions_per_sec / 1e3; // K transactions/s
        c.cpu = r.cpu;
    } else if (bench == "apache 1M") {
        workloads::RequestLoadParams p =
            workloads::apacheParams(u64{1} << 20);
        p.measure_requests = bench::scaled(600);
        p.warmup_requests = bench::scaled(100);
        auto r = workloads::runRequestLoad(mode, profile, p);
        c.metric = r.throughput_gbps;
        c.cpu = r.cpu;
    } else if (bench == "apache 1K") {
        workloads::RequestLoadParams p = workloads::apacheParams(1024);
        p.measure_requests = bench::scaled(3000);
        p.warmup_requests = bench::scaled(300);
        auto r = workloads::runRequestLoad(mode, profile, p);
        c.metric = r.transactions_per_sec / 1e3; // K requests/s
        c.cpu = r.cpu;
    } else { // memcached
        workloads::RequestLoadParams p = workloads::memcachedParams();
        p.measure_requests = bench::scaled(20000);
        p.warmup_requests = bench::scaled(2000);
        auto r = workloads::runRequestLoad(mode, profile, p);
        c.metric = r.transactions_per_sec / 1e3; // K requests/s
        c.cpu = r.cpu;
    }
    return c;
}

const char *
metricName(const std::string &bench)
{
    if (bench == "stream" || bench == "apache 1M")
        return "Gbps";
    return "K/s";
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bench::JsonWriter json("fig12_performance", args.threads);
    const std::vector<std::string> benches = {"stream", "rr", "apache 1M",
                                              "apache 1K", "memcached"};
    for (const nic::NicProfile *profile :
         {&nic::mlxProfile(), &nic::brcmProfile()}) {
        for (const std::string &bench : benches) {
            bench::printHeader("Figure 12 [" + std::string(profile->name) +
                               " / " + bench + "]");
            Table t({"mode", std::string("throughput (") +
                                 metricName(bench) + ")",
                     "cpu (%)"});
            for (dma::ProtectionMode mode : bench::evaluatedModes()) {
                const Cell c = runCell(bench, mode, *profile);
                t.addRow(dma::modeName(mode),
                         {c.metric, c.cpu * 100.0}, 2);
            }
            std::printf("%s", t.toString().c_str());
            json.addTable(t, "cell",
                          std::string(profile->name) + "/" + bench);
        }
    }
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
