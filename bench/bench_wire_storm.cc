/**
 * @file
 * Hostile-wire storm bench: the fleet workload on a lossy/congested
 * fabric (sys::WireFaultConfig) with the RoCE-style reliability layer
 * on — loss rate x incast x the seven protection modes. Reported per
 * point: goodput, retransmits/op, p99 op latency, and the protection
 * counters the paper's safety story turns on: how many *late* data
 * packets (retransmit duplicates and delayed stragglers arriving
 * after their QP died or was rebound) were stopped by the target-side
 * IOMMU vs landed in memory.
 *
 * The headline, in three tiers. The rIOMMU modes leave no stale
 * window — every late arrival faults (late_landed == 0, asserted):
 * ring-coded rIOVAs make the guarantee structural, since a recycled
 * QP slot regenerates the identical address (a matching rkey IS the
 * current translation) and a non-matching one belongs to no ring.
 * The strict modes close the stale-translation window (synchronous
 * invalidation) but not the IOVA-*reuse* window: under churn a freed
 * range re-allocated to a live mapping lets a stale rkey land —
 * their late_landed column measures that reuse exposure. The defer
 * modes batch invalidations (250 frees per flush), so a late packet
 * can additionally hit a still-cached translation and silently land:
 * the paper's deferred-invalidation hole, now measured under a
 * hostile wire instead of argued. Mode kNone cannot fault at all
 * (late_faulted == 0, asserted) — every straggler lands.
 *
 * Conservation gate on every point: completions == posts. A lost
 * packet either recovers by retransmit or surfaces as a QP error that
 * flushes its WQEs as error CQEs — no post may vanish.
 *
 * `--loss 0` emits compat rows instead: the exact
 * bench_cluster_rdma base rows (lossless wire, reliability off,
 * 2 machines, 64 QPs) — the golden_wire ctest diffs them against the
 * checked-in cluster golden to prove the hostile-wire subsystem is
 * bit-for-bit inert when disarmed.
 */
#include "bench_common.h"

#include <algorithm>
#include <string>
#include <vector>

#include "base/logging.h"
#include "sys/cluster.h"
#include "workloads/fleet.h"

using namespace rio;

namespace {

workloads::FleetParams
baseParams(bool quick)
{
    // Mirrors bench_cluster_rdma's 64-connection point exactly; the
    // compat rows below must be byte-identical to its golden.
    workloads::FleetParams p;
    p.connections = 64;
    p.credits = 16;
    p.warmup_ops = quick ? 100 : 300;
    p.measure_ops = quick ? 500 : 3000;
    p.seed = 3;
    return p;
}

struct StormPoint
{
    dma::ProtectionMode mode;
    double loss = 0;
    bool incast = false;
    workloads::FleetReport rep;
};

StormPoint
runStorm(dma::ProtectionMode mode, double loss, bool incast,
         unsigned machines, unsigned threads, bool quick)
{
    workloads::FleetParams p = baseParams(quick);
    p.churn_period_ops = 25; // rebind QPs: stale rkeys for stragglers
    p.churn_abort_fraction = 0.5; // half the churn is app death
    if (incast) {
        p.incast_period_ops = 50;
        p.incast_burst = 12;
    }

    sys::ClusterConfig cfg;
    cfg.machines = machines;
    cfg.threads = threads;
    cfg.mode = mode;
    cfg.max_qps = workloads::fleetMaxQps(p, machines);
    cfg.wire.drop_rate = loss;
    // Dup and delay rates ride well above the drop rate: duplicates
    // of already-acked packets and long-tail stragglers are the only
    // packets that can lose the race against a QP-abort notify, so
    // they are what populates the late-arrival columns.
    cfg.wire.dup_rate = std::min(0.25, 3 * loss);
    cfg.wire.delay_rate = std::min(0.5, 10 * loss);
    // Straggler tail must outlive a QP abort (error notify + drain),
    // or no delayed packet ever meets a dead QP and the late-arrival
    // columns stay zero.
    cfg.wire.delay_max_ns = 60000;
    if (incast)
        cfg.wire.ingress_cap = 16; // bounded port: incast tail-drops
    cfg.reliability.enabled = true;

    sys::Cluster cluster(cfg);
    StormPoint pt;
    pt.mode = mode;
    pt.loss = loss;
    pt.incast = incast;
    pt.rep = workloads::runFleet(cluster, p);

    // One CQE per post: every loss recovers or errors, none vanish.
    RIO_ASSERT(pt.rep.completions == pt.rep.posts,
               "CQE conservation broke at ", dma::modeName(mode),
               " loss=", loss, ": ", pt.rep.completions, " CQEs for ",
               pt.rep.posts, " posts");
    // The protection claim under loss (file header). Scoped to the
    // rIOMMU modes: they close the stale window *structurally* — a
    // recycled QP slot regenerates the identical ring-coded rIOVA
    // (so a matching rkey is the current translation, not a stale
    // one), and a non-matching rIOVA can belong to no other ring.
    // The strict modes close the stale-translation window too, but
    // stay exposed to IOVA reuse under churn: a freed range
    // re-allocated to a live mapping lets a stale rkey land. Their
    // late_landed is reported, not asserted — it is the reuse
    // window's size.
    const char *name = dma::modeName(mode);
    const std::string_view n(name);
    if (n == "riommu-" || n == "riommu") {
        RIO_ASSERT(pt.rep.late_landed == 0, name,
                   " must stop every late arrival, but ",
                   pt.rep.late_landed, " landed");
    }
    if (n == "none") {
        RIO_ASSERT(pt.rep.late_faulted == 0,
                   "mode none cannot fault, but ", pt.rep.late_faulted,
                   " late arrivals faulted");
    }
    RIO_ASSERT(pt.rep.leaks_clean, "leaked mappings at ", name,
               " loss=", loss);
    return pt;
}

/** The bench_cluster_rdma base rows, for the golden_wire diff. */
int
runCompat(const bench::BenchArgs &args, unsigned machines, bool quick)
{
    bench::printHeader(
        "Wire storm, --loss 0: lossless-wire compat rows "
        "(byte-identical to bench_cluster_rdma; golden_wire gate)");
    const workloads::FleetParams p = baseParams(quick);

    Table t({"mode", "conns", "cycles/op", "avg burst"});
    bench::JsonWriter json("wire_storm_compat", args.threads);
    for (const dma::ProtectionMode mode : bench::evaluatedModes()) {
        sys::ClusterConfig cfg;
        cfg.machines = machines;
        cfg.threads = args.threads;
        cfg.mode = mode;
        cfg.max_qps = workloads::fleetMaxQps(p, machines);
        sys::Cluster cluster(cfg);
        const workloads::FleetReport rep =
            workloads::runFleet(cluster, p);
        RIO_ASSERT(rep.leaks_clean && rep.comp_errors == 0 &&
                       rep.remote_faults == 0,
                   "compat row must match the lossless fabric at ",
                   dma::modeName(mode));
        const double hitrate =
            rep.rdcache.fetches
                ? 100.0 * static_cast<double>(rep.rdcache.hot_hits) /
                      static_cast<double>(rep.rdcache.fetches)
                : 0.0;
        t.addRow(dma::modeName(mode),
                 {static_cast<double>(p.connections),
                  rep.cycles_per_op, rep.avg_burst},
                 2);
        json.beginRow();
        json.add("mode", dma::modeName(mode));
        json.add("variant", "base");
        json.add("connections", static_cast<u64>(p.connections));
        json.add("cycles_per_op", rep.cycles_per_op);
        json.add("avg_burst", rep.avg_burst);
        json.add("measured_ops", rep.measured_ops);
        json.add("completions", rep.completions);
        json.add("posts_blocked", rep.posts_blocked);
        json.add("eob_unmaps", rep.eob_unmaps);
        json.add("riotlb_invalidations", rep.riotlb.invalidations);
        json.add("riotlb_walks", rep.riotlb.walks);
        json.add("rdcache_fetches", rep.rdcache.fetches);
        json.add("rdcache_hot_hits", rep.rdcache.hot_hits);
        json.add("rdcache_hit_rate", hitrate);
    }
    std::printf("%s\n", t.toString().c_str());
    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    bool quick = false;
    double loss = -1.0;
    unsigned machines = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--quick")
            quick = true;
        else if (arg == "--loss" && i + 1 < argc)
            loss = std::atof(argv[i + 1]);
        else if (arg == "--machines" && i + 1 < argc)
            machines = static_cast<unsigned>(
                std::max(2, std::atoi(argv[i + 1])));
    }

    if (loss == 0.0)
        return runCompat(args, /*machines=*/2, quick);

    std::vector<double> losses;
    if (loss > 0.0)
        losses.push_back(loss);
    else if (quick)
        losses = {0.02};
    else
        losses = {0.005, 0.02, 0.05};

    bench::printHeader(strprintf(
        "Wire storm: %u machines, 64 QPs/machine, loss x incast x "
        "mode — goodput, retransmits, p99, protection faults",
        machines));

    Table t({"mode", "loss", "incast", "cycles/op", "goodput kop/s",
             "rtx/op", "p99 us", "late flt", "late land", "cong drop",
             "qp err"});
    bench::JsonWriter json("wire_storm", args.threads);
    for (const double l : losses) {
        for (const bool incast : {false, true}) {
            for (const dma::ProtectionMode mode :
                 bench::evaluatedModes()) {
                const StormPoint pt = runStorm(
                    mode, l, incast, machines, args.threads, quick);
                const workloads::FleetReport &r = pt.rep;
                const double good = static_cast<double>(
                    r.completions - r.comp_errors);
                const double goodput_kops =
                    r.end_ns ? good /
                                   (static_cast<double>(r.end_ns) * 1e-9) /
                                   1e3
                             : 0.0;
                const double rtx_per_op =
                    r.completions ? static_cast<double>(r.retransmits) /
                                        static_cast<double>(r.completions)
                                  : 0.0;
                t.addRow(dma::modeName(mode),
                         {l, static_cast<double>(incast),
                          r.cycles_per_op, goodput_kops, rtx_per_op,
                          static_cast<double>(r.p99_latency_ns) / 1e3,
                          static_cast<double>(r.late_faulted),
                          static_cast<double>(r.late_landed),
                          static_cast<double>(r.wire_congestion_drops),
                          static_cast<double>(r.qp_errors)},
                         3);
                json.beginRow();
                json.add("mode", dma::modeName(pt.mode));
                json.add("variant", "storm");
                json.add("loss", l);
                json.add("incast", static_cast<u64>(incast));
                json.add("machines", static_cast<u64>(machines));
                json.add("cycles_per_op", r.cycles_per_op);
                json.add("completions", r.completions);
                json.add("posts", r.posts);
                json.add("comp_errors", r.comp_errors);
                json.add("goodput_kops", goodput_kops);
                json.add("retransmits", r.retransmits);
                json.add("rto_fires", r.rto_fires);
                json.add("nak_seq", r.nak_seq);
                json.add("qp_errors", r.qp_errors);
                json.add("qp_error_recovered", r.qp_error_recovered);
                json.add("late_arrivals", r.late_arrivals);
                json.add("late_faulted", r.late_faulted);
                json.add("late_landed", r.late_landed);
                json.add("wire_drops", r.wire_drops);
                json.add("wire_dups", r.wire_dups);
                json.add("wire_delays", r.wire_delays);
                json.add("wire_congestion_drops",
                         r.wire_congestion_drops);
                json.add("p50_ns", static_cast<u64>(r.p50_latency_ns));
                json.add("p99_ns", static_cast<u64>(r.p99_latency_ns));
            }
        }
    }
    std::printf("%s\n", t.toString().c_str());

    if (!json.writeTo(args.json_path))
        return 1;
    bench::finishBench(args);
    return 0;
}
