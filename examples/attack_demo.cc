/**
 * @file
 * Attack demo: three DMA attack scenarios from the paper's threat
 * model (§1, §2.1, §4), each attempted against every protection mode.
 *
 *  1. Errant DMA — a rogue/buggy device touches memory the OS never
 *     mapped for it (the classic firewire-style attack).
 *  2. Use-after-unmap — the device touches a buffer after the driver
 *     released it (the deferred modes' stale-IOTLB window).
 *  3. Sub-page overreach — the device reaches a neighbouring buffer
 *     on the same page through a still-valid mapping (closed only by
 *     the rIOMMU's byte-granular rPTEs).
 *
 * Usage: ./build/examples/attack_demo
 */
#include <cstdio>
#include <vector>

#include "cycles/cycle_account.h"
#include "dma/dma_context.h"

using namespace rio;

namespace {

const char *
verdict(bool blocked)
{
    return blocked ? "BLOCKED" : "succeeded";
}

struct Row
{
    dma::ProtectionMode mode;
    bool errant_blocked;
    bool stale_blocked;
    bool subpage_blocked;
};

Row
attack(dma::ProtectionMode mode)
{
    dma::DmaContext ctx;
    cycles::CycleAccount acct;
    auto handle =
        ctx.makeHandle(mode, iommu::Bdf{0, 3, 0}, &acct, {64});

    Row row{mode, false, false, false};
    u64 loot = 0;

    // 1. Errant DMA to a never-mapped secret.
    const PhysAddr secret = ctx.memory().allocFrame();
    ctx.memory().write64(secret, 0x5ec2e7);
    row.errant_blocked = !handle->deviceRead(secret, &loot, 8).isOk();

    // 2. Use-after-unmap. Touch the buffer first so the translation
    //    is cached, then unmap and try again.
    const PhysAddr buf = ctx.memory().allocFrame();
    auto m = handle->map(0, buf, 512, iommu::DmaDir::kBidir).value();
    (void)handle->deviceRead(m.device_addr, &loot, 8);
    (void)handle->unmap(m, /*end_of_burst=*/true);
    row.stale_blocked = !handle->deviceRead(m.device_addr, &loot, 8).isOk();

    // 3. Sub-page overreach: two 1 KB buffers share a page; the first
    //    is unmapped; reach its bytes through the second's mapping.
    const PhysAddr page = ctx.memory().allocFrame();
    auto victim = handle->map(0, page, 1024, iommu::DmaDir::kBidir).value();
    auto neighbour =
        handle->map(0, page + 1024, 1024, iommu::DmaDir::kBidir).value();
    (void)handle->unmap(victim, true);
    // Craft an address that points at the victim's bytes but is
    // derived from the neighbour's still-valid mapping.
    bool reached;
    if (dma::modeUsesRiommu(mode)) {
        // rIOVA offsets are bounded by rPTE.size; overreach = offset
        // beyond the neighbour's 1024 bytes.
        reached = handle->deviceRead(neighbour.device_addr, &loot, 1025)
                      .isOk();
    } else {
        // Page-granular modes: back up from the neighbour's IOVA to
        // the victim's bytes on the same IOVA page.
        const u64 addr = (neighbour.device_addr & ~kPageMask);
        reached = handle->deviceRead(addr, &loot, 8).isOk();
    }
    row.subpage_blocked = !reached;
    return row;
}

} // namespace

int
main()
{
    std::printf("DMA attack matrix (paper threat model):\n\n");
    std::printf("%-9s %-12s %-16s %-12s\n", "mode", "errant DMA",
                "use-after-unmap", "sub-page");
    std::printf("%.60s\n",
                "------------------------------------------------------------");
    for (dma::ProtectionMode mode :
         {dma::ProtectionMode::kNone, dma::ProtectionMode::kDefer,
          dma::ProtectionMode::kStrict, dma::ProtectionMode::kRiommu}) {
        const Row r = attack(mode);
        std::printf("%-9s %-12s %-16s %-12s\n", dma::modeName(r.mode),
                    verdict(r.errant_blocked), verdict(r.stale_blocked),
                    verdict(r.subpage_blocked));
    }
    std::printf(
        "\nexpected: none blocks nothing; defer leaves the stale "
        "window; strict still leaks sub-page neighbours;\n"
        "only the rIOMMU blocks all three (byte-granular rPTEs, §4).\n");
    return 0;
}
