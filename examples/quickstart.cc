/**
 * @file
 * Quickstart: the core library in ~60 lines.
 *
 * Creates a simulated machine (memory + IOMMUs), attaches a device
 * under the rIOMMU protection mode, maps a buffer, lets the "device"
 * DMA into it, unmaps, and shows that the device can no longer touch
 * the buffer — the end-to-end protection story of the paper.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "cycles/cycle_account.h"
#include "dma/dma_context.h"

using namespace rio;

int
main()
{
    // One machine's memory + baseline IOMMU + rIOMMU.
    dma::DmaContext ctx;
    cycles::CycleAccount acct; // driver-side cycles accumulate here

    // A device handle under the rIOMMU mode. The rIOMMU needs the
    // rRING geometry up front: one ring of 256 flat-table entries.
    iommu::Bdf device{0, 3, 0};
    auto handle = ctx.makeHandle(dma::ProtectionMode::kRiommu, device,
                                 &acct, /*ring_sizes=*/{256});

    // The OS allocates a target buffer and maps it for the device.
    const PhysAddr buffer = ctx.memory().allocFrame();
    auto mapping = handle->map(/*rid=*/0, buffer, /*size=*/1500,
                               iommu::DmaDir::kBidir);
    if (!mapping.isOk()) {
        std::fprintf(stderr, "map failed: %s\n",
                     mapping.status().toString().c_str());
        return 1;
    }
    std::printf("mapped pa=%#llx -> device address %#llx (rIOVA)\n",
                static_cast<unsigned long long>(buffer),
                static_cast<unsigned long long>(
                    mapping.value().device_addr));

    // The device DMAs a payload in through the rIOMMU translation.
    const char payload[] = "hello from the device";
    Status wr = handle->deviceWrite(mapping.value().device_addr, payload,
                                    sizeof(payload));
    std::printf("device write while mapped: %s\n", wr.toString().c_str());

    char check[sizeof(payload)] = {};
    ctx.memory().read(buffer, check, sizeof(check));
    std::printf("memory now holds: \"%s\"\n", check);

    // Unmap (end of burst -> the ring's rIOTLB entry is dropped).
    Status um = handle->unmap(mapping.value(), /*end_of_burst=*/true);
    std::printf("unmap: %s\n", um.toString().c_str());

    // The very same DMA now faults: intra-OS protection at work.
    Status attack = handle->deviceWrite(mapping.value().device_addr,
                                        payload, sizeof(payload));
    std::printf("device write after unmap: %s\n",
                attack.toString().c_str());
    std::printf("faults recorded by the rIOMMU: %zu\n",
                ctx.riommu().faults().size());

    // What did DMA management cost the core? (Figure 11's point:
    // almost nothing — two integer bumps, one rPTE write, a barrier.)
    std::printf("driver-side cycles: map=%llu unmap=%llu\n",
                static_cast<unsigned long long>(acct.mapTotal()),
                static_cast<unsigned long long>(acct.unmapTotal()));
    return attack.isOk() ? 1 : 0; // the attack must have failed
}
