/**
 * @file
 * A realistic packet pipeline on the simulated NIC: brings up the
 * mlx-profile NIC under a protection mode of your choice, blasts a
 * Netperf-style TCP stream through it, and reports throughput, CPU
 * and the cycles-per-packet breakdown — the workload from the
 * paper's headline result.
 *
 * Usage: ./build/examples/packet_pipeline [mode] [packets]
 *   mode: strict | strict+ | defer | defer+ | riommu- | riommu | none
 *         (default: riommu)
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/strings.h"
#include "cycles/cycle_account.h"
#include "dma/protection_mode.h"
#include "nic/profile.h"
#include "workloads/stream.h"

using namespace rio;
using cycles::Cat;

int
main(int argc, char **argv)
{
    dma::ProtectionMode mode = dma::ProtectionMode::kRiommu;
    if (argc > 1) {
        auto parsed = dma::parseMode(argv[1]);
        if (!parsed) {
            std::fprintf(stderr, "unknown mode '%s'\n", argv[1]);
            return 1;
        }
        mode = *parsed;
    }
    u64 packets = 40000;
    if (argc > 2)
        packets = std::strtoull(argv[2], nullptr, 10);

    workloads::StreamParams params =
        workloads::streamParamsFor(nic::mlxProfile());
    params.measure_packets = packets;
    params.warmup_packets = packets / 4;

    std::printf("running Netperf-stream on the mlx NIC under '%s' "
                "(%llu packets)...\n",
                dma::modeName(mode),
                static_cast<unsigned long long>(packets));
    const workloads::RunResult r =
        workloads::runStream(mode, nic::mlxProfile(), params);

    std::printf("\nthroughput: %s  (cpu %.0f%%)\n",
                formatBitRate(r.throughput_gbps * 1e9).c_str(),
                r.cpu * 100);
    std::printf("packets:    %llu tx, %llu rx (acks), avg completion "
                "burst %.0f\n",
                static_cast<unsigned long long>(r.tx_packets),
                static_cast<unsigned long long>(r.rx_packets),
                r.avg_unmap_burst);
    std::printf("cycles per packet: %.0f\n", r.cycles_per_packet);

    const double pkts = static_cast<double>(r.tx_packets);
    std::printf("  iotlb invalidation : %8.0f\n",
                static_cast<double>(r.acct.get(Cat::kUnmapIotlbInv)) /
                    pkts);
    std::printf("  page-table updates : %8.0f\n",
                static_cast<double>(r.acct.get(Cat::kMapPageTable) +
                                    r.acct.get(Cat::kUnmapPageTable)) /
                    pkts);
    std::printf("  iova (de)allocation: %8.0f\n",
                static_cast<double>(r.acct.get(Cat::kMapIovaAlloc) +
                                    r.acct.get(Cat::kUnmapIovaFind) +
                                    r.acct.get(Cat::kUnmapIovaFree)) /
                    pkts);
    std::printf("  protocol + app     : %8.0f\n",
                static_cast<double>(r.acct.get(Cat::kProcessing)) / pkts);
    return 0;
}
