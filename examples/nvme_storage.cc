/**
 * @file
 * NVMe storage under rIOMMU protection: the paper (§4) argues PCIe
 * SSDs are natural rIOMMU clients because NVMe mandates ring-shaped
 * queues with strict (un)mapping order. This example writes a data
 * set through the simulated NVMe device, reads it back, verifies
 * integrity, and compares the driver-side DMA-management cycles of
 * strict vs. rIOMMU protection for the same I/O stream.
 *
 * Usage: ./build/examples/nvme_storage [num_blocks]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>

#include "cycles/cycle_account.h"
#include "dma/dma_context.h"
#include "nvme/nvme.h"

using namespace rio;

namespace {

struct IoStats
{
    Cycles dma_cycles = 0;
    double wall_ms = 0;
    bool ok = true;
};

IoStats
runWorkload(dma::ProtectionMode mode, u64 blocks)
{
    des::Simulator sim;
    dma::DmaContext ctx;
    des::Core core(sim, ctx.cost());
    auto handle = ctx.makeHandle(mode, iommu::Bdf{0, 6, 0}, &core.acct(),
                                 nvme::NvmeDevice::riommuRingSizes());
    nvme::NvmeDevice ssd(sim, core, ctx.memory(), *handle);
    ssd.bringUp();

    // Staging buffers in "host memory".
    const u32 block = 4096;
    const PhysAddr staging = ctx.memory().allocContiguous(8 * block);

    u64 submitted = 0;
    u64 completed = 0;
    bool ok = true;
    bool reading = false;

    // Write all blocks (pattern = block index), then read them back.
    std::function<void()> pump = [&] {
        // Keep at most 8 I/Os in flight: each owns a staging buffer.
        while (submitted < blocks && ssd.submitSpace() > 0 &&
               submitted - completed < 8) {
            const PhysAddr buf = staging + (submitted % 8) * block;
            if (!reading) {
                std::vector<u8> pattern(block,
                                        static_cast<u8>(submitted * 13));
                ctx.memory().write(buf, pattern.data(), pattern.size());
            }
            auto cid = ssd.submit(reading ? nvme::Opcode::kRead
                                          : nvme::Opcode::kWrite,
                                  submitted, 1, buf);
            if (!cid.isOk()) {
                ok = false;
                return;
            }
            ++submitted;
        }
    };
    ssd.setCompletionCallback([&](u32, Status s) {
        if (!s)
            ok = false;
        ++completed;
        if (!reading && completed == blocks) {
            reading = true;
            submitted = 0;
            completed = 0;
        }
        pump();
    });
    core.post(pump);
    sim.run();

    // Verify the flash contents directly.
    for (u64 b = 0; b < blocks && ok; ++b) {
        auto data = ssd.flashRead(b, 1);
        if (data[0] != static_cast<u8>(b * 13))
            ok = false;
    }
    ssd.shutDown();

    IoStats st;
    st.dma_cycles = core.acct().dmaTotal();
    st.wall_ms = static_cast<double>(sim.now()) * 1e-6;
    st.ok = ok && completed == blocks;
    return st;
}

} // namespace

int
main(int argc, char **argv)
{
    u64 blocks = 2000;
    if (argc > 1)
        blocks = std::strtoull(argv[1], nullptr, 10);

    std::printf("NVMe: writing + reading back %llu 4K blocks...\n\n",
                static_cast<unsigned long long>(blocks));
    for (dma::ProtectionMode mode :
         {dma::ProtectionMode::kStrict, dma::ProtectionMode::kRiommu,
          dma::ProtectionMode::kNone}) {
        const IoStats st = runWorkload(mode, blocks);
        std::printf("%-8s integrity=%s  simulated time %.1f ms  "
                    "driver DMA-management cycles %llu (%.0f / IO)\n",
                    dma::modeName(mode), st.ok ? "OK " : "BAD",
                    st.wall_ms,
                    static_cast<unsigned long long>(st.dma_cycles),
                    static_cast<double>(st.dma_cycles) /
                        static_cast<double>(2 * blocks));
        if (!st.ok)
            return 1;
    }
    std::printf("\nNVMe queues are rings: the rIOMMU manages the same "
                "I/O for a fraction of strict's cycles.\n");
    return 0;
}
