/**
 * @file
 * The §4 extension in action: an AHCI/NCQ-style disk that completes
 * commands in arbitrary order, running fully protected behind the
 * rIOMMU through a *free-list* rRING (the work mode the paper said
 * would be "easy to extend" to). Also demonstrates the
 * scatter-gather mapping API on the baseline IOMMU for contrast.
 *
 * Usage: ./build/examples/out_of_order_disk [ios]
 */
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "ahci/ahci.h"
#include "base/rng.h"
#include "cycles/cycle_account.h"
#include "dma/baseline_handle.h"
#include "dma/dma_context.h"

using namespace rio;

int
main(int argc, char **argv)
{
    u64 total_ios = 500;
    if (argc > 1)
        total_ios = std::strtoull(argv[1], nullptr, 10);

    // --- part 1: out-of-order disk behind a free-list rRING -------------
    des::Simulator sim;
    dma::DmaContext ctx;
    des::Core core(sim, ctx.cost());
    auto handle = ctx.makeHandleWithSpecs(
        dma::ProtectionMode::kRiommu, iommu::Bdf{0, 5, 0}, &core.acct(),
        {riommu::RingSpec{ahci::AhciDevice::kSlots,
                          riommu::RingMode::kFreeList}});
    ahci::AhciDevice disk(sim, core, ctx.memory(), *handle);

    const PhysAddr buf = ctx.memory().allocContiguous(64 * kPageSize);
    Rng rng(11);
    u64 issued = 0, done = 0, reordered = 0;
    u32 last_slot = 0;
    std::function<void()> fill = [&] {
        while (issued < total_ios && disk.freeSlots() > 0) {
            auto r = disk.issue(rng.chance(0.3), rng.below(1000000) * 8,
                                4, buf);
            if (!r.isOk())
                break;
            ++issued;
        }
    };
    disk.setCompletionCallback([&](u32 slot, Status s) {
        if (!s.isOk()) {
            std::fprintf(stderr, "I/O failed: %s\n", s.toString().c_str());
            std::exit(1);
        }
        if (done > 0 && slot != (last_slot + 1) % ahci::AhciDevice::kSlots)
            ++reordered;
        last_slot = slot;
        ++done;
        fill();
    });
    core.post(fill);
    sim.run();

    std::printf("out-of-order disk under rIOMMU (free-list rRING):\n");
    std::printf("  %llu random 16K I/Os, %llu completed out of slot "
                "order, 0 faults: %s\n",
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(reordered),
                ctx.riommu().faults().empty() ? "OK" : "FAULTS!");
    std::printf("  driver DMA cycles/IO: %.0f (every unmap invalidates "
                "- no burst to amortize over)\n\n",
                static_cast<double>(core.acct().dmaTotal()) /
                    static_cast<double>(done));

    // --- part 2: scatter-gather on the baseline IOMMU --------------------
    cycles::CycleAccount sg_acct;
    auto base = ctx.makeHandle(dma::ProtectionMode::kStrict,
                               iommu::Bdf{0, 7, 0}, &sg_acct);
    std::vector<dma::SgEntry> sg;
    for (int i = 0; i < 8; ++i)
        sg.push_back(dma::SgEntry{ctx.memory().allocFrame(), 4096});
    auto mapped = base->mapSg(0, sg, iommu::DmaDir::kBidir);
    if (!mapped.isOk()) {
        std::fprintf(stderr, "mapSg failed\n");
        return 1;
    }
    std::printf("scatter-gather on the baseline IOMMU:\n");
    std::printf("  8 x 4K elements -> one IOVA range, %llu allocator "
                "call(s); element device addresses:\n   ",
                static_cast<unsigned long long>(
                    sg_acct.ops(cycles::Cat::kMapIovaAlloc)));
    for (const auto &m : mapped.value())
        std::printf(" %#llx", static_cast<unsigned long long>(m.device_addr));
    std::printf("\n");
    (void)base->unmapSg(mapped.value(), true);
    return 0;
}
