#!/usr/bin/env bash
# Cluster/RDMA lane under AddressSanitizer: the fabric's lifecycle
# surface (QP connect/teardown churn, incast bursts, fault-injected
# NAK paths, end-of-run force-quiesce) is exactly where use-after-free
# and leak bugs would hide, so the whole lane runs on an ASan+UBSan
# build. Covers the cluster unit/property suite, a ClusterFuzz soak
# with seeds only this lane runs, the thread-invariance golden, and
# an erosion sweep up to 1K QPs/machine to walk the high-ring-count
# paths (rDEVICE fetch model + hot tier included).
#
# Run from the repo root:
#
#   scripts/ci_cluster.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-cluster-asan}"

cmake -B "$BUILD_DIR" -S . -DRIO_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" -- \
    cluster_test fuzz_test bench_cluster_rdma

export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="print_stacktrace=1"

"$BUILD_DIR/tests/cluster_test"

# ClusterFuzz soak: churn x incast x fault injection across the mode
# cross-section, every campaign replayed on 1 and 3 worker threads
# and compared field for field.
export RIO_CLUSTER_EXTRA_SEEDS="1299709,15485863,32452843"
"$BUILD_DIR/tests/fuzz_test" --gtest_filter='*ClusterFuzz*'
unset RIO_CLUSTER_EXTRA_SEEDS

# Determinism golden (threads 1 == threads 4 == checked-in JSON),
# under ASan for good measure.
bash tests/golden_cluster.sh "$BUILD_DIR/bench/bench_cluster_rdma" \
    tests/golden/cluster_rdma_64_quick.json

# Erosion sweep through 1024 QPs/machine: thousands of live rRING
# mappings, the fetch-model ablations, and the crossover assertion
# all exercised with sanitizers watching.
RIO_BENCH_QUICK=1 "$BUILD_DIR/bench/bench_cluster_rdma" \
    --connections 1024 --quick > /dev/null

echo "cluster lane passed"
