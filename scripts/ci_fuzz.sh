#!/usr/bin/env bash
# Extended randomized campaign: the oracle fuzz suites (translation
# and fault-injection) with a larger seed set than the default ctest
# run, plus the fault unit suite. Run from the repo root:
#
#   scripts/ci_fuzz.sh [build-dir] [extra-seeds]
#
# extra-seeds is a comma-separated list appended to the compiled-in
# seeds of the FaultFuzz campaign (default below). A plain optimized
# build is enough; use ci_sanitize.sh for the ASan/UBSan variant.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
EXTRA_SEEDS="${2:-11213,19937,2203,86243,216091}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)" --target fuzz_test fault_test

export RIO_FUZZ_EXTRA_SEEDS="$EXTRA_SEEDS"
# The cluster campaign (churn x incast x faults, replayed across
# thread counts) soaks on its own extra seeds in the same run.
export RIO_CLUSTER_EXTRA_SEEDS="104651,611953"
"$BUILD_DIR/tests/fuzz_test"
"$BUILD_DIR/tests/fault_test"

echo "fuzz campaign passed (extra seeds: $EXTRA_SEEDS)"
