#!/usr/bin/env bash
# Live-migration lane under AddressSanitizer: pre-copy chunk queues,
# the inflight map keyed by reused WQE slots, QP-error re-queue on the
# migration stream, the blackout teardown (quiesce without detach) and
# the target-side sink applies are exactly the paths where a dangling
# Chunk, a double-applied page or a use-after-quiesce mapping would
# hide, so the whole lane runs on an ASan+UBSan build. Covers the
# migration suite, a MigrateFuzz soak with seeds only this lane runs,
# and the golden_migrate inertness/determinism gate.
#
# Run from the repo root:
#
#   scripts/ci_migrate.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-migrate-asan}"

cmake -B "$BUILD_DIR" -S . -DRIO_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" -- \
    migrate_test fuzz_test bench_migration

export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="print_stacktrace=1"

"$BUILD_DIR/tests/migrate_test"

# MigrateFuzz soak: platform x dirty x loss x stream-abort campaigns,
# each seed replayed on 1 and 2 worker threads and compared field for
# field (arena hashes and the migrated-away ledger included).
export RIO_MIGRATE_EXTRA_SEEDS="424243,797003,1299709"
"$BUILD_DIR/tests/fuzz_test" --gtest_filter='*MigrateFuzz*'
unset RIO_MIGRATE_EXTRA_SEEDS

# Inertness + determinism gate (disabled overlay == cluster golden;
# armed sweep byte-identical across thread counts), under ASan.
bash tests/golden_migrate.sh "$BUILD_DIR/bench/bench_migration" \
    tests/golden/cluster_rdma_64_quick.json

echo "migrate lane passed"
