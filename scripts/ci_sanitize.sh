#!/usr/bin/env bash
# Tier-1 test suite under AddressSanitizer + UBSan, then the threaded
# suites under ThreadSanitizer (both via the RIO_SANITIZE CMake
# option). Run from the repo root:
#
#   scripts/ci_sanitize.sh [build-dir] [tsan-build-dir]
#
# Benches are built too but not run (they are deterministic replays of
# the same code paths the tests cover; full runs under ASan are slow).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
TSAN_DIR="${2:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DRIO_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

# abort_on_error makes ASan failures fail ctest rather than just log.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="print_stacktrace=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Second pass over the randomized suites with extra seeds that only
# this lane runs: the fault-injection campaign stresses the recovery
# paths (PTE save/restore, log drain, latch clear) where ASan/UBSan
# have the most to find.
export RIO_FUZZ_EXTRA_SEEDS="7001,7919,104729"
"$BUILD_DIR/tests/fuzz_test" --gtest_filter='*FaultFuzz*:*IommuFuzz*:*RiommuFuzz*'
"$BUILD_DIR/tests/fault_test"

# Lifecycle churn under the sanitizers: surprise unplug/replug walks
# teardown and recovery paths (orphaned-mapping unmap, ITE time-out
# spin, head-skip) where use-after-free bugs would hide.
export RIO_CHURN_EXTRA_SEEDS="5501,7703"
"$BUILD_DIR/tests/fuzz_test" --gtest_filter='*LifecycleFuzz*'
"$BUILD_DIR/tests/lifecycle_test"

# Guest fuzz under the sanitizers: the vIOMMU trap bindings and the
# stage-2 fill path see bursts, direct maps and surprise unplug across
# all three strategies with seeds only this lane runs.
export RIO_VIRT_EXTRA_SEEDS="6007,28657"
"$BUILD_DIR/tests/fuzz_test" --gtest_filter='*VirtFuzz*'
"$BUILD_DIR/tests/virt_test"
"$BUILD_DIR/tests/magazine_churn_test"

# ---- ThreadSanitizer lane (RIO_SANITIZE=thread) --------------------
# Everything that actually runs worker threads: the parallel engine's
# determinism suite, the obs layer's concurrent-update test (atomic
# counters/gauges, spin-locked histograms, locked registry), and a
# real threaded sweep via bench_selfperf — four lanes on four workers
# with batched accounting on, the PR's headline configuration.
cmake -B "$TSAN_DIR" -S . -DRIO_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j "$(nproc)" -- \
    parallel_test obs_test des_test spinlock_test magazine_churn_test \
    bench_selfperf fuzz_test bench_cluster_rdma bench_tail_latency

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
"$TSAN_DIR/tests/parallel_test"
"$TSAN_DIR/tests/obs_test"
"$TSAN_DIR/tests/des_test"
"$TSAN_DIR/tests/spinlock_test"
"$TSAN_DIR/tests/magazine_churn_test"
RIO_BENCH_QUICK=1 "$TSAN_DIR/bench/bench_selfperf" --threads 4 --quick
# Cluster fabric across real worker threads: the ClusterFuzz campaign
# (each seed replayed on 1 and 3 workers) and a threaded fabric sweep
# — cross-lane mail hand-off and the barrier drain are the only
# inter-thread channels, and TSan holds them to that.
"$TSAN_DIR/tests/fuzz_test" --gtest_filter='*ClusterFuzz*'
RIO_BENCH_QUICK=1 "$TSAN_DIR/bench/bench_cluster_rdma" \
    --connections 64 --quick --threads 4 > /dev/null
# Exact SLO recording + trace-context propagation across worker
# threads: per-lane recorders and the TLS trace slot are the new
# cross-thread surfaces this PR adds.
RIO_BENCH_QUICK=1 "$TSAN_DIR/bench/bench_tail_latency" \
    --quick --slo --threads 4 > /dev/null 2>&1
unset TSAN_OPTIONS

# Observability lane: zero-cost goldens + timeline export validation
# (its own build dir; obs is ON by default but the lane pins it).
scripts/ci_obs.sh

# Virtualization lane: virt suites, bare-platform no-op golden, guest
# fuzz soak and the full platform sweep (its own Release build dir).
scripts/ci_virt.sh

# Cluster/RDMA lane: fabric lifecycle suites, ClusterFuzz soak, the
# thread-invariance golden and a 1K-QP erosion sweep, all under ASan
# (its own build dir).
scripts/ci_cluster.sh

# Hostile-wire lane: lossy/congested fabric with the reliability
# layer on — WireFuzz soak, the golden_wire inertness gate and the
# full storm sweep, all under ASan (its own build dir).
scripts/ci_wire.sh

# Live-migration lane: pre-copy over the hostile wire, blackout
# teardown, per-platform state replay — migration suite, MigrateFuzz
# soak and the golden_migrate gate, all under ASan (its own build
# dir).
scripts/ci_migrate.sh

echo "sanitized tier-1 suite passed"
