#!/usr/bin/env bash
# Virtualization lane: build the virt subsystem in Release, run its
# unit/property suites plus the bare-platform golden (an idle guest
# layer must be a perfect no-op), soak the guest fuzz campaign with
# extra seeds only this lane runs, and then do a full four-platform
# bench sweep to prove the headline ordering holds end to end:
# the rIOMMU advantage under nested paging must be strictly larger
# than on bare metal (the 2-D walk multiplies radix misses ~6x while
# the flat table stays at one rPTE fetch).
#
# Run from the repo root:
#
#   scripts/ci_virt.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-virt}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

# The virt-specific suites plus the no-op golden. magazine_churn_test
# rides in this lane because strict+/defer+ inside a guest lean on the
# same surprise-unplug recovery the churn scenario pins down.
ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'virt_test|magazine_churn_test|golden_virt'

# Guest fuzz soak: extra seeds on top of the default campaign, across
# all three vIOMMU strategies and the mode cross-section.
export RIO_VIRT_EXTRA_SEEDS="9001,31337"
"$BUILD_DIR/tests/fuzz_test" --gtest_filter='*VirtFuzz*'
unset RIO_VIRT_EXTRA_SEEDS

# End-to-end sweep: all platforms, stream + RR, and the advantage
# check (bench_virt exits nonzero if nested does not widen the gap).
RIO_BENCH_QUICK=1 "$BUILD_DIR/bench/bench_virt" > /dev/null

echo "virtualization lane passed"
