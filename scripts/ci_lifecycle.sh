#!/usr/bin/env bash
# Lifecycle churn soak: the surprise-unplug/replug campaign beyond the
# default ctest run. Run from the repo root:
#
#   scripts/ci_lifecycle.sh [build-dir] [extra-seeds]
#
# extra-seeds is a comma-separated list appended (via
# RIO_CHURN_EXTRA_SEEDS) to the compiled-in seeds of the LifecycleFuzz
# campaign; the same list seeds extra bench_lifecycle_churn sweeps so
# the full-stack churn path — quiesce, ITE time-out recovery, replug —
# soaks under several independent event schedules.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
EXTRA_SEEDS="${2:-401,1201,9001}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target lifecycle_test fuzz_test bench_lifecycle_churn \
    bench_fig7_cycles_per_packet

# Unit + fuzz layers, widened by the extra seeds.
export RIO_CHURN_EXTRA_SEEDS="$EXTRA_SEEDS"
"$BUILD_DIR/tests/lifecycle_test"
"$BUILD_DIR/tests/fuzz_test" --gtest_filter='*LifecycleFuzz*'

# Full-stack soak: one churn sweep per extra seed, quick scale.
for seed in ${EXTRA_SEEDS//,/ }; do
    RIO_BENCH_QUICK=1 "$BUILD_DIR/bench/bench_lifecycle_churn" \
        --rate 0.5,2 --seed "$seed" > /dev/null
    echo "churn soak seed $seed passed"
done

# Rate-0 no-op pin: churn disarmed must replay bench_fig7 exactly.
bash tests/golden_lifecycle.sh \
    "$BUILD_DIR/bench/bench_lifecycle_churn" \
    "$BUILD_DIR/bench/bench_fig7_cycles_per_packet"

echo "lifecycle churn campaign passed (extra seeds: $EXTRA_SEEDS)"
